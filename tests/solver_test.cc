// Tests for the branch-and-bound assignment solver (Medea's ILP substrate),
// including a parameterized comparison against brute force.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/solver/assignment_solver.h"
#include "src/stats/rng.h"

namespace optum::solver {
namespace {

TEST(AssignmentSolverTest, SingleItemPicksBestBin) {
  AssignmentProblem p;
  p.demands = {{0.5, 0.5}};
  p.capacities = {{1, 1}, {1, 1}, {1, 1}};
  p.scores = {{1.0, 3.0, 2.0}};
  const AssignmentSolution s = AssignmentSolver().Solve(p);
  EXPECT_TRUE(s.optimal);
  EXPECT_EQ(s.assignment[0], 1);
  EXPECT_DOUBLE_EQ(s.objective, 3.0);
}

TEST(AssignmentSolverTest, CapacityForcesSplit) {
  AssignmentProblem p;
  p.demands = {{0.6, 0.1}, {0.6, 0.1}};
  p.capacities = {{1, 1}, {1, 1}};
  p.scores = {{5.0, 1.0}, {5.0, 1.0}};
  const AssignmentSolution s = AssignmentSolver().Solve(p);
  EXPECT_TRUE(s.optimal);
  // Both want bin 0 but cannot share it: optimal is 5 + 1.
  EXPECT_DOUBLE_EQ(s.objective, 6.0);
  EXPECT_NE(s.assignment[0], s.assignment[1]);
}

TEST(AssignmentSolverTest, UnassignedWhenNothingFits) {
  AssignmentProblem p;
  p.demands = {{2.0, 2.0}};
  p.capacities = {{1, 1}};
  p.scores = {{10.0}};
  const AssignmentSolution s = AssignmentSolver().Solve(p);
  EXPECT_EQ(s.assignment[0], -1);
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

TEST(AssignmentSolverTest, ForbiddenAssignmentsSkipped) {
  AssignmentProblem p;
  p.demands = {{0.1, 0.1}};
  p.capacities = {{1, 1}, {1, 1}};
  p.scores = {{-1e18, 2.0}};
  const AssignmentSolution s = AssignmentSolver().Solve(p);
  EXPECT_EQ(s.assignment[0], 1);
}

TEST(AssignmentSolverTest, PrefersLeavingItemOutWhenScoreNegative) {
  AssignmentProblem p;
  p.demands = {{0.1, 0.1}};
  p.capacities = {{1, 1}};
  p.scores = {{-5.0}};
  const AssignmentSolution s = AssignmentSolver().Solve(p);
  EXPECT_EQ(s.assignment[0], -1);  // unassigned scores 0 > -5
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

TEST(AssignmentSolverTest, BudgetExhaustionReported) {
  // Many items and bins with a tiny node budget.
  AssignmentProblem p;
  Rng rng(1);
  for (int i = 0; i < 12; ++i) {
    p.demands.push_back({0.3, 0.3});
  }
  for (int b = 0; b < 10; ++b) {
    p.capacities.push_back({1, 1});
  }
  for (int i = 0; i < 12; ++i) {
    std::vector<double> row;
    for (int b = 0; b < 10; ++b) {
      row.push_back(rng.Uniform(0, 1));
    }
    p.scores.push_back(row);
  }
  const AssignmentSolution s = AssignmentSolver(/*node_budget=*/50).Solve(p);
  EXPECT_FALSE(s.optimal);
  EXPECT_LE(s.nodes_explored, 51);
}

TEST(AssignmentSolverTest, SolutionRespectsCapacities) {
  AssignmentProblem p;
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    p.demands.push_back({rng.Uniform(0.1, 0.5), rng.Uniform(0.1, 0.5)});
  }
  for (int b = 0; b < 4; ++b) {
    p.capacities.push_back({1, 1});
  }
  for (int i = 0; i < 10; ++i) {
    std::vector<double> row;
    for (int b = 0; b < 4; ++b) {
      row.push_back(rng.Uniform(0, 2));
    }
    p.scores.push_back(row);
  }
  const AssignmentSolution s = AssignmentSolver().Solve(p);
  std::vector<Resources> used(4);
  for (size_t i = 0; i < p.demands.size(); ++i) {
    if (s.assignment[i] >= 0) {
      used[static_cast<size_t>(s.assignment[i])] += p.demands[i];
    }
  }
  for (const auto& u : used) {
    EXPECT_LE(u.cpu, 1.0 + 1e-9);
    EXPECT_LE(u.mem, 1.0 + 1e-9);
  }
}

// Brute force reference for small instances.
double BruteForce(const AssignmentProblem& p) {
  const size_t n = p.demands.size();
  const size_t bins = p.capacities.size();
  double best = 0.0;
  std::vector<int> assignment(n, -1);
  std::vector<Resources> remaining = p.capacities;
  std::function<void(size_t, double)> rec = [&](size_t item, double score) {
    if (item == n) {
      best = std::max(best, score);
      return;
    }
    rec(item + 1, score);  // leave out
    for (size_t b = 0; b < bins; ++b) {
      const double v = p.scores[item][b];
      if (v <= -1e17 || !p.demands[item].FitsWithin(remaining[b])) {
        continue;
      }
      remaining[b] -= p.demands[item];
      rec(item + 1, score + v);
      remaining[b] += p.demands[item];
    }
  };
  rec(0, 0.0);
  return best;
}

class SolverVsBruteForce : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverVsBruteForce, MatchesOptimalOnRandomInstances) {
  Rng rng(GetParam());
  AssignmentProblem p;
  const int items = static_cast<int>(rng.UniformInt(2, 6));
  const int bins = static_cast<int>(rng.UniformInt(2, 4));
  for (int i = 0; i < items; ++i) {
    p.demands.push_back({rng.Uniform(0.1, 0.7), rng.Uniform(0.1, 0.7)});
  }
  for (int b = 0; b < bins; ++b) {
    p.capacities.push_back({rng.Uniform(0.5, 1.5), rng.Uniform(0.5, 1.5)});
  }
  for (int i = 0; i < items; ++i) {
    std::vector<double> row;
    for (int b = 0; b < bins; ++b) {
      row.push_back(rng.Bernoulli(0.15) ? -1e18 : rng.Uniform(-0.5, 2.0));
    }
    p.scores.push_back(row);
  }
  const AssignmentSolution s = AssignmentSolver().Solve(p);
  ASSERT_TRUE(s.optimal);
  EXPECT_NEAR(s.objective, BruteForce(p), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SolverVsBruteForce,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace optum::solver
