// Failure-injection and robustness tests: malformed trace files, corrupted
// inputs, degenerate configurations, and cross-path consistency checks.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/optum.h"

namespace optum {
namespace {

namespace fs = std::filesystem;

class TraceIoRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs test processes in parallel, and a shared
    // directory races with other instances' TearDown remove_all.
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("optum_robustness_") + info->name() + "_" +
             std::to_string(static_cast<long>(::getpid()))))
               .string();
    // Write a valid bundle first.
    TraceBundle bundle;
    bundle.nodes.push_back(NodeMeta{0, kUnitResources});
    PodMeta pod;
    pod.pod_id = 1;
    pod.app_id = 2;
    pod.slo = SloClass::kBe;
    pod.request = {0.1, 0.05};
    pod.limit = {0.2, 0.1};
    bundle.pods.push_back(pod);
    bundle.node_usage.push_back(NodeUsageRecord{0, 0, 0.5, 0.4, 0, 0});
    ASSERT_TRUE(WriteTraceBundle(bundle, dir_));
  }
  void TearDown() override { fs::remove_all(dir_); }

  void Corrupt(const std::string& file, const std::string& line) {
    std::ofstream out(dir_ + "/" + file, std::ios::app);
    out << line << "\n";
  }

  std::string dir_;
};

TEST_F(TraceIoRobustnessTest, ValidBundleLoads) {
  TraceBundle loaded;
  EXPECT_TRUE(ReadTraceBundle(dir_, &loaded));
  EXPECT_EQ(loaded.pods.size(), 1u);
}

TEST_F(TraceIoRobustnessTest, WrongColumnCountRejected) {
  Corrupt("pods.csv", "1,2,3");  // 3 fields instead of 9
  TraceBundle loaded;
  EXPECT_FALSE(ReadTraceBundle(dir_, &loaded));
}

TEST_F(TraceIoRobustnessTest, GarbageRowRejected) {
  Corrupt("node_usage.csv", "not,numbers,at,all,xx,yy");
  TraceBundle loaded;
  EXPECT_FALSE(ReadTraceBundle(dir_, &loaded));
}

TEST_F(TraceIoRobustnessTest, MissingFileRejected) {
  fs::remove(dir_ + "/lifecycles.csv");
  TraceBundle loaded;
  EXPECT_FALSE(ReadTraceBundle(dir_, &loaded));
}

TEST_F(TraceIoRobustnessTest, BlankLinesTolerated) {
  Corrupt("pods.csv", "");
  TraceBundle loaded;
  EXPECT_TRUE(ReadTraceBundle(dir_, &loaded));
  EXPECT_EQ(loaded.pods.size(), 1u);
}

// --- Degenerate configurations ------------------------------------------------

TEST(DegenerateConfigTest, ProfilerOnEmptyTrace) {
  core::OfflineProfiler profiler;
  const core::OptumProfiles profiles = profiler.BuildProfiles(TraceBundle{});
  EXPECT_EQ(profiles.apps.size(), 0u);
  EXPECT_EQ(profiles.ero.size(), 0u);
}

TEST(DegenerateConfigTest, OptumWithEmptyProfilesStillSchedules) {
  core::OptumConfig config;
  config.sample_fraction = 1.0;
  config.min_candidates = 2;
  core::OptumScheduler scheduler(core::OptumProfiles{}, config);
  ClusterState cluster(2, kUnitResources, 8);
  AppProfile app;
  app.id = 0;
  app.slo = SloClass::kBe;
  app.request = {0.1, 0.05};
  app.limit = {0.2, 0.1};
  PodSpec pod;
  pod.id = 1;
  pod.app = 0;
  pod.slo = SloClass::kBe;
  pod.request = app.request;
  pod.limit = app.limit;
  const PlacementDecision d = scheduler.Place(pod, app, cluster);
  EXPECT_TRUE(d.placed());
}

TEST(DegenerateConfigTest, SimulatorWithOneHostOnePod) {
  WorkloadConfig config;
  config.num_hosts = 1;
  config.horizon = 20;
  config.num_ls_apps = 1;
  config.num_lsr_apps = 1;
  config.num_be_apps = 1;
  config.num_system_apps = 0;
  config.num_vmenv_apps = 0;
  config.num_unknown_apps = 0;
  config.initial_ls_request_load = 0.1;
  config.seed = 1;
  const Workload workload = WorkloadGenerator(config).Generate();
  AlibabaBaseline scheduler;
  SimConfig sim_config;
  const SimResult result = Simulator(workload, sim_config, scheduler).Run();
  EXPECT_GT(result.scheduled_pods, 0);
}

TEST(DegenerateConfigTest, EmptyBatchDistributedScheduling) {
  core::DistributedCoordinator coordinator(core::OptumProfiles{}, {});
  ClusterState cluster(2, kUnitResources, 8);
  const core::DistributedOutcome outcome = coordinator.ScheduleBatch(
      {}, cluster, [](const core::ScheduleProposal&) { FAIL(); });
  EXPECT_TRUE(outcome.placed.empty());
  EXPECT_TRUE(outcome.unplaced.empty());
  EXPECT_EQ(outcome.rounds_used, 0);
}

// --- Cross-path consistency -----------------------------------------------------

TEST(ConsistencyTest, OnlineAndOfflineEroAgreeOnSameObservations) {
  // Feed identical co-location observations through the offline profiler
  // (trace records) and the online observer (cluster state): the resulting
  // pair values must match.
  const AppId app_a = 0, app_b = 1;
  const double cpu_a = 0.06, cpu_b = 0.03;
  const Resources req_a{0.2, 0.05}, req_b{0.1, 0.05};

  // Offline: one trace sample.
  TraceBundle trace;
  trace.nodes.push_back(NodeMeta{0, kUnitResources});
  for (int p = 0; p < 2; ++p) {
    PodMeta meta;
    meta.pod_id = p;
    meta.app_id = p == 0 ? app_a : app_b;
    meta.slo = SloClass::kBe;
    meta.request = p == 0 ? req_a : req_b;
    meta.limit = meta.request * 2.0;
    trace.pods.push_back(meta);
    PodUsageRecord rec;
    rec.pod_id = p;
    rec.host = 0;
    rec.collect_tick = 0;
    rec.cpu_usage = p == 0 ? cpu_a : cpu_b;
    rec.mem_usage = 0.01;
    trace.pod_usage.push_back(rec);
  }
  const EroTable offline = core::OfflineProfiler().BuildEroTable(trace);

  // Online: equivalent cluster state.
  core::OptumScheduler scheduler(core::OptumProfiles{}, {});
  ClusterState cluster(1, kUnitResources, 8);
  AppProfile profile_a, profile_b;
  profile_a.id = app_a;
  profile_a.slo = SloClass::kBe;
  profile_a.request = req_a;
  profile_b.id = app_b;
  profile_b.slo = SloClass::kBe;
  profile_b.request = req_b;
  PodSpec pod_a, pod_b;
  pod_a.id = 0;
  pod_a.app = app_a;
  pod_a.slo = SloClass::kBe;
  pod_a.request = req_a;
  pod_b.id = 1;
  pod_b.app = app_b;
  pod_b.slo = SloClass::kBe;
  pod_b.request = req_b;
  PodRuntime* rt_a = cluster.Place(pod_a, &profile_a, 0, 0);
  PodRuntime* rt_b = cluster.Place(pod_b, &profile_b, 0, 0);
  rt_a->cpu_usage = cpu_a;
  rt_b->cpu_usage = cpu_b;
  scheduler.ObserveColocation(cluster, 100);

  EXPECT_NEAR(offline.Get(app_a, app_b),
              scheduler.profiles().ero.Get(app_a, app_b), 1e-12);
  EXPECT_NEAR(offline.Get(app_a, app_b), (cpu_a + cpu_b) / (req_a.cpu + req_b.cpu),
              1e-12);
}

TEST(ConsistencyTest, UmbrellaHeaderCompilesAndExposesApi) {
  // Touch one symbol from each major subsystem through the umbrella header.
  EXPECT_STREQ(ToString(SloClass::kBe), "BE");
  EXPECT_STREQ(ToString(Scenario::kCalibrated), "calibrated");
  EXPECT_EQ(MakeBorgLike()->name(), "Borg-like");
  EXPECT_EQ(core::OptumScheduler(core::OptumProfiles{}, {}).name(), "Optum");
}

}  // namespace
}  // namespace optum
