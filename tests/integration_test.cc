// End-to-end integration tests: the full baseline-run -> offline-profiling
// -> Optum-run pipeline on a small cluster, plus trace persistence through
// the profilers.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "src/stats/descriptive.h"

#include "src/core/offline_profiler.h"
#include "src/core/optum_scheduler.h"
#include "src/sched/baselines.h"
#include "src/sim/simulator.h"
#include "src/trace/trace_io.h"
#include "src/trace/workload_generator.h"

namespace optum {
namespace {

WorkloadConfig PipelineConfig() {
  WorkloadConfig config;
  config.num_hosts = 24;
  config.horizon = 360;  // 3 simulated hours
  config.seed = 42;
  return config;
}

SimConfig FastSim() {
  SimConfig config;
  config.pod_usage_period = 4;
  config.max_attempts_per_tick = 1000;
  return config;
}

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(WorkloadGenerator(PipelineConfig()).Generate());
    AlibabaBaseline baseline;
    baseline_result_ = new SimResult(Simulator(*workload_, FastSim(), baseline).Run());
    core::OfflineProfilerConfig prof_config;
    prof_config.max_train_samples = 800;
    profiles_ = new core::OptumProfiles(
        core::OfflineProfiler(prof_config).BuildProfiles(baseline_result_->trace));
  }
  static void TearDownTestSuite() {
    delete profiles_;
    delete baseline_result_;
    delete workload_;
    profiles_ = nullptr;
    baseline_result_ = nullptr;
    workload_ = nullptr;
  }

  static Workload* workload_;
  static SimResult* baseline_result_;
  static core::OptumProfiles* profiles_;
};

Workload* PipelineTest::workload_ = nullptr;
SimResult* PipelineTest::baseline_result_ = nullptr;
core::OptumProfiles* PipelineTest::profiles_ = nullptr;

TEST_F(PipelineTest, BaselineRunProducesTrace) {
  EXPECT_GT(baseline_result_->scheduled_pods, 100);
  EXPECT_FALSE(baseline_result_->trace.pod_usage.empty());
  EXPECT_FALSE(baseline_result_->trace.node_usage.empty());
  EXPECT_LT(baseline_result_->violation_rate(), 0.02);
}

TEST_F(PipelineTest, ProfilesCoverApplications) {
  EXPECT_GT(profiles_->apps.size(), 20u);
  EXPECT_GT(profiles_->ero.size(), 100u);
  int usable = 0;
  for (const auto& [id, model] : profiles_->apps) {
    usable += model.usable() ? 1 : 0;
  }
  EXPECT_GT(usable, 5);
}

TEST_F(PipelineTest, EroValuesWithinUnitInterval) {
  for (const auto& a : workload_->apps) {
    for (const auto& b : workload_->apps) {
      const double v = profiles_->ero.Get(a.id, b.id);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST_F(PipelineTest, OptumMatchesOrBeatsBaselineUtilization) {
  core::OptumProfiles copy;
  copy.ero = profiles_->ero;
  for (const auto& [id, model] : profiles_->apps) {
    core::AppModel m;
    m.stats = model.stats;
    m.discretizer = model.discretizer;
    copy.apps.emplace(id, std::move(m));
  }
  // Re-train is avoided: run Optum with stats-only profiles (no
  // interference models) — packing still comes from ERO. This keeps the
  // test fast and deterministic.
  core::OptumConfig config;
  config.min_candidates = 16;
  core::OptumScheduler optum(std::move(copy), config);
  SimConfig sim_config = FastSim();
  sim_config.on_tick_end = [&optum](const ClusterState& cluster, Tick now) {
    optum.ObserveColocation(cluster, now);
  };
  const SimResult optum_result = Simulator(*workload_, sim_config, optum).Run();
  EXPECT_GE(optum_result.MeanCpuUtilNonIdle(),
            baseline_result_->MeanCpuUtilNonIdle() * 0.98);
  EXPECT_LE(optum_result.violation_rate(), 0.01);
  EXPECT_GE(optum_result.scheduled_pods, baseline_result_->scheduled_pods * 9 / 10);
}

TEST_F(PipelineTest, TraceRoundTripPreservesProfilingInputs) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "optum_integration_trace").string();
  ASSERT_TRUE(WriteTraceBundle(baseline_result_->trace, dir));
  TraceBundle loaded;
  ASSERT_TRUE(ReadTraceBundle(dir, &loaded));
  EXPECT_EQ(loaded.pods.size(), baseline_result_->trace.pods.size());
  EXPECT_EQ(loaded.pod_usage.size(), baseline_result_->trace.pod_usage.size());
  // The ERO table built from the round-tripped trace matches closely.
  core::OfflineProfiler profiler;
  const EroTable original = profiler.BuildEroTable(baseline_result_->trace);
  const EroTable reloaded = profiler.BuildEroTable(loaded);
  EXPECT_EQ(original.size(), reloaded.size());
  for (const auto& a : workload_->apps) {
    for (const auto& b : workload_->apps) {
      if (a.id <= b.id && original.Contains(a.id, b.id)) {
        EXPECT_NEAR(original.Get(a.id, b.id), reloaded.Get(a.id, b.id), 1e-4);
      }
    }
  }
  std::filesystem::remove_all(dir);
}

TEST_F(PipelineTest, WaitingTimesHeavierForBeThanLsr) {
  // Paper §3.1.3: LSR pods wait less than BE pods (preemption).
  std::vector<double> be_waits, lsr_waits;
  for (const auto& rec : baseline_result_->trace.lifecycles) {
    if (rec.schedule_tick < 0) {
      continue;
    }
    if (rec.slo == SloClass::kBe) {
      be_waits.push_back(rec.waiting_seconds);
    } else if (rec.slo == SloClass::kLsr) {
      lsr_waits.push_back(rec.waiting_seconds);
    }
  }
  ASSERT_FALSE(be_waits.empty());
  ASSERT_FALSE(lsr_waits.empty());
  EXPECT_GE(Mean(be_waits), Mean(lsr_waits));
}

TEST_F(PipelineTest, EqThreeInequalityHoldsInTrace) {
  // Property from Eq. 3: max_t(a+b) <= max_t(a) + max_t(b) for co-located
  // pod usage series. Verify on the recorded trace.
  // Build per-pod series on host 0.
  std::map<PodId, std::map<Tick, double>> series;
  for (const auto& rec : baseline_result_->trace.pod_usage) {
    if (rec.host == 0) {
      series[rec.pod_id][rec.collect_tick] = rec.cpu_usage;
    }
  }
  std::vector<PodId> ids;
  for (const auto& [id, s] : series) {
    if (s.size() > 10) {
      ids.push_back(id);
    }
  }
  if (ids.size() < 2) {
    GTEST_SKIP() << "not enough co-located pods on host 0";
  }
  const auto& sa = series[ids[0]];
  const auto& sb = series[ids[1]];
  double max_a = 0, max_b = 0, max_sum = 0;
  for (const auto& [t, va] : sa) {
    max_a = std::max(max_a, va);
    const auto it = sb.find(t);
    if (it != sb.end()) {
      max_sum = std::max(max_sum, va + it->second);
    }
  }
  for (const auto& [t, vb] : sb) {
    max_b = std::max(max_b, vb);
  }
  EXPECT_LE(max_sum, max_a + max_b + 1e-12);
}

}  // namespace
}  // namespace optum
