// Coverage for SampleHosts/SampleHostsInto beyond the basic size checks in
// sched_test: distribution sanity (every host reachable, no duplicates,
// roughly uniform), boundary sizes, scratch-reuse equivalence, and
// determinism under fixed per-pod RNG streams — the contract the ROADMAP's
// rolling power-of-two-choices sampler will have to preserve.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/sched/common.h"
#include "src/sim/cluster.h"
#include "src/stats/rng.h"

namespace optum {
namespace {

ClusterState MakeCluster(int hosts) { return ClusterState(hosts, kUnitResources, 8); }

TEST(SampleHostsDistributionTest, EveryHostReachableAndNeverDuplicated) {
  const ClusterState cluster = MakeCluster(40);
  Rng rng(11);
  std::vector<int> seen(40, 0);
  for (int draw = 0; draw < 2000; ++draw) {
    const std::vector<HostId> sample = SampleHosts(cluster, 0.2, 8, rng);
    ASSERT_EQ(sample.size(), 8u);
    std::set<HostId> unique(sample.begin(), sample.end());
    ASSERT_EQ(unique.size(), sample.size()) << "duplicate host in sample";
    for (const HostId h : sample) {
      ASSERT_GE(h, 0);
      ASSERT_LT(h, 40);
      ++seen[static_cast<size_t>(h)];
    }
  }
  // 2000 draws x 8 hosts / 40 hosts = 400 expected appearances per host.
  // A fair without-replacement sampler concentrates tightly around that;
  // the loose 2x band only rules out unreachable or heavily biased hosts.
  for (int h = 0; h < 40; ++h) {
    EXPECT_GT(seen[static_cast<size_t>(h)], 200) << "host " << h << " under-sampled";
    EXPECT_LT(seen[static_cast<size_t>(h)], 800) << "host " << h << " over-sampled";
  }
}

TEST(SampleHostsDistributionTest, SingleHostCluster) {
  const ClusterState cluster = MakeCluster(1);
  Rng rng(5);
  const std::vector<HostId> sample = SampleHosts(cluster, 0.05, 1, rng);
  ASSERT_EQ(sample.size(), 1u);
  EXPECT_EQ(sample[0], 0);
}

TEST(SampleHostsDistributionTest, SampleAtLeastHostCountReturnsAll) {
  const ClusterState cluster = MakeCluster(12);
  Rng rng(5);
  // min_count above the cluster size clamps to a full scan...
  const std::vector<HostId> all = SampleHosts(cluster, 0.1, 100, rng);
  ASSERT_EQ(all.size(), 12u);
  EXPECT_EQ(std::set<HostId>(all.begin(), all.end()).size(), 12u);
  // ...and a full scan draws nothing from the rng (identity order), so the
  // stream is untouched for the next pod.
  Rng fresh(5);
  EXPECT_EQ(fresh.NextU64(), rng.NextU64());
}

TEST(SampleHostsDistributionTest, ZeroRequestYieldsEmptySample) {
  const ClusterState cluster = MakeCluster(9);
  Rng rng(2);
  EXPECT_TRUE(SampleHosts(cluster, 0.0, 0, rng).empty());
}

TEST(SampleHostsIntoTest, MatchesAllocatingOverloadDrawForDraw) {
  const ClusterState cluster = MakeCluster(200);
  Rng rng_a(31);
  Rng rng_b(31);
  std::vector<HostId> scratch;
  std::vector<HostId> out;
  for (int draw = 0; draw < 50; ++draw) {
    const std::vector<HostId> allocating = SampleHosts(cluster, 0.05, 16, rng_a);
    SampleHostsInto(cluster, 0.05, 16, rng_b, &scratch, &out);
    ASSERT_EQ(allocating, out) << "draw " << draw;
  }
  // The scratch permutation keeps its full-cluster working size between
  // calls (that is the allocation being saved).
  EXPECT_EQ(scratch.size(), cluster.num_hosts());
}

TEST(SampleHostsDeterminismTest, FixedPerPodStreamsAreOrderIndependent) {
  // Groundwork for per-pod sampling streams: when each pod derives its own
  // rng via Split(pod_id), its sample is a pure function of (seed, pod_id)
  // — independent of the order pods are scheduled in.
  const ClusterState cluster = MakeCluster(64);
  const auto sample_for_pod = [&](uint64_t pod_id) {
    Rng base(97);
    Rng stream = base.Split(pod_id);
    return SampleHosts(cluster, 0.1, 8, stream);
  };

  std::vector<std::vector<HostId>> forward;
  for (uint64_t pod = 0; pod < 32; ++pod) {
    forward.push_back(sample_for_pod(pod));
  }
  for (uint64_t pod = 32; pod-- > 0;) {  // reverse order
    EXPECT_EQ(sample_for_pod(pod), forward[pod]) << "pod " << pod;
  }
  // Distinct pods get distinct streams (overwhelmingly distinct samples).
  int identical_pairs = 0;
  for (size_t a = 0; a < forward.size(); ++a) {
    for (size_t b = a + 1; b < forward.size(); ++b) {
      identical_pairs += forward[a] == forward[b] ? 1 : 0;
    }
  }
  EXPECT_LT(identical_pairs, 3);
}

TEST(SampleHostsDeterminismTest, SameSeedSameSequence) {
  const ClusterState cluster = MakeCluster(500);
  Rng a(123);
  Rng b(123);
  for (int draw = 0; draw < 20; ++draw) {
    EXPECT_EQ(SampleHosts(cluster, 0.05, 32, a), SampleHosts(cluster, 0.05, 32, b));
  }
}

}  // namespace
}  // namespace optum
