// Property-based sweeps over the stats layer: invariants that must hold
// for arbitrary (seeded) random inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/stats/cdf.h"
#include "src/stats/descriptive.h"
#include "src/stats/patterns.h"
#include "src/stats/rng.h"

namespace optum {
namespace {

std::vector<double> RandomSamples(uint64_t seed, size_t n, double lo = -10, double hi = 10) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = rng.Uniform(lo, hi);
  }
  return xs;
}

class StatsPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsPropertySweep, PercentileMonotonicInQ) {
  const std::vector<double> xs = RandomSamples(GetParam(), 137);
  double prev = -1e18;
  for (double q = 0; q <= 100; q += 2.5) {
    const double v = Percentile(xs, q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), Min(xs));
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), Max(xs));
}

TEST_P(StatsPropertySweep, MeanWithinMinMax) {
  const std::vector<double> xs = RandomSamples(GetParam(), 64);
  const double m = Mean(xs);
  EXPECT_GE(m, Min(xs));
  EXPECT_LE(m, Max(xs));
}

TEST_P(StatsPropertySweep, StdDevShiftInvariantScaleEquivariant) {
  const std::vector<double> xs = RandomSamples(GetParam(), 80);
  std::vector<double> shifted(xs), scaled(xs);
  for (auto& v : shifted) {
    v += 42.0;
  }
  for (auto& v : scaled) {
    v *= -3.0;
  }
  EXPECT_NEAR(StdDev(shifted), StdDev(xs), 1e-9);
  EXPECT_NEAR(StdDev(scaled), 3.0 * StdDev(xs), 1e-9);
}

TEST_P(StatsPropertySweep, CorrelationBounds) {
  Rng rng(GetParam());
  std::vector<double> xs(100), ys(100);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Gaussian(0, 1);
    ys[i] = 0.5 * xs[i] + rng.Gaussian(0, 1);
  }
  const double pearson = PearsonCorrelation(xs, ys);
  const double spearman = SpearmanCorrelation(xs, ys);
  EXPECT_GE(pearson, -1.0 - 1e-12);
  EXPECT_LE(pearson, 1.0 + 1e-12);
  EXPECT_GE(spearman, -1.0 - 1e-12);
  EXPECT_LE(spearman, 1.0 + 1e-12);
  EXPECT_GT(pearson, 0.0);  // positive by construction
}

TEST_P(StatsPropertySweep, SpearmanInvariantUnderMonotoneTransform) {
  Rng rng(GetParam());
  std::vector<double> xs(60), ys(60);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Uniform(0.1, 5.0);
    ys[i] = rng.Uniform(0.1, 5.0);
  }
  const double base = SpearmanCorrelation(xs, ys);
  std::vector<double> exp_x(xs);
  for (auto& v : exp_x) {
    v = std::exp(v);  // strictly monotone
  }
  EXPECT_NEAR(SpearmanCorrelation(exp_x, ys), base, 1e-9);
}

TEST_P(StatsPropertySweep, CdfInverseConsistency) {
  EmpiricalCdf cdf(RandomSamples(GetParam(), 211));
  for (double q : {5.0, 25.0, 50.0, 75.0, 95.0}) {
    const double v = cdf.ValueAtPercentile(q);
    const double frac = cdf.FractionAtOrBelow(v);
    // At least q% of the mass lies at or below the q-th percentile value.
    EXPECT_GE(frac * 100.0, q - 1.0);
  }
}

TEST_P(StatsPropertySweep, CdfFractionMonotonic) {
  EmpiricalCdf cdf(RandomSamples(GetParam(), 99));
  double prev = -1.0;
  for (double x = -12; x <= 12; x += 0.5) {
    const double f = cdf.FractionAtOrBelow(x);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST_P(StatsPropertySweep, OnlineStatsOrderInvariant) {
  std::vector<double> xs = RandomSamples(GetParam(), 50);
  OnlineStats forward, backward;
  for (double x : xs) {
    forward.Add(x);
  }
  std::reverse(xs.begin(), xs.end());
  for (double x : xs) {
    backward.Add(x);
  }
  EXPECT_NEAR(forward.mean(), backward.mean(), 1e-9);
  EXPECT_NEAR(forward.variance(), backward.variance(), 1e-9);
}

TEST_P(StatsPropertySweep, RngSplitStreamsDecorrelated) {
  Rng parent(GetParam());
  Rng a = parent.Split(1);
  Rng b = parent.Split(2);
  std::vector<double> xs(500), ys(500);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = a.NextDouble();
    ys[i] = b.NextDouble();
  }
  EXPECT_LT(std::fabs(PearsonCorrelation(xs, ys)), 0.15);
}

TEST_P(StatsPropertySweep, DiurnalIntegralMatchesMeanOfFloorAndPeak) {
  Rng rng(GetParam());
  const double floor = rng.Uniform(0.0, 0.9);
  const DiurnalPattern p(floor, rng.Uniform(0, 1));
  double acc = 0.0;
  for (Tick t = 0; t < kTicksPerDay; ++t) {
    const double v = p.At(t);
    EXPECT_GE(v, floor - 1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
    acc += v;
  }
  // Raised cosine averages to the midpoint of floor and 1.
  EXPECT_NEAR(acc / kTicksPerDay, (floor + 1.0) / 2.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertySweep, ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace optum
