// Property-based sweeps over the simulator: invariants that must hold for
// any seeded workload under any of the library's schedulers.
#include <gtest/gtest.h>

#include <set>

#include "src/sched/baselines.h"
#include "src/sched/medea.h"
#include "src/sim/simulator.h"
#include "src/trace/workload_generator.h"

namespace optum {
namespace {

Workload SeededWorkload(uint64_t seed) {
  WorkloadConfig config;
  config.num_hosts = 16;
  config.horizon = 240;  // 2 simulated hours
  config.num_ls_apps = 6;
  config.num_lsr_apps = 2;
  config.num_be_apps = 10;
  config.num_system_apps = 1;
  config.num_vmenv_apps = 1;
  config.num_unknown_apps = 3;
  config.seed = seed;
  return WorkloadGenerator(config).Generate();
}

class SimPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimPropertySweep, InvariantsUnderReferenceScheduler) {
  const Workload workload = SeededWorkload(GetParam());
  SimConfig config;
  int64_t checked_ticks = 0;
  config.on_tick_end = [&](const ClusterState& cluster, Tick now) {
    (void)now;
    ++checked_ticks;
    for (const Host& host : cluster.hosts()) {
      // CPU usage is work-conserving: never exceeds capacity.
      EXPECT_LE(host.usage.cpu, host.capacity.cpu + 1e-9);
      // Memory demand never exceeds capacity after OOM handling.
      EXPECT_LE(host.demand.mem, host.capacity.mem + 1e-9);
      // Cached request sums match the pod list.
      Resources sum;
      for (const PodRuntime* pod : host.pods) {
        sum += pod->spec.request;
        EXPECT_EQ(pod->host, host.id);
      }
      EXPECT_NEAR(sum.cpu, host.request_sum.cpu, 1e-9);
      EXPECT_NEAR(sum.mem, host.request_sum.mem, 1e-9);
    }
  };
  AlibabaBaseline scheduler;
  const SimResult result = Simulator(workload, config, scheduler).Run();
  EXPECT_EQ(checked_ticks, workload.config.horizon);
  EXPECT_GT(result.scheduled_pods, 0);
}

TEST_P(SimPropertySweep, EveryPodHasExactlyOneLifecycleRecord) {
  const Workload workload = SeededWorkload(GetParam());
  SimConfig config;
  AlibabaBaseline scheduler;
  const SimResult result = Simulator(workload, config, scheduler).Run();
  std::set<PodId> seen;
  for (const auto& rec : result.trace.lifecycles) {
    EXPECT_TRUE(seen.insert(rec.pod_id).second)
        << "pod " << rec.pod_id << " has multiple lifecycle records";
  }
  EXPECT_EQ(seen.size(), workload.pods.size());
}

TEST_P(SimPropertySweep, LifecycleTimesOrdered) {
  const Workload workload = SeededWorkload(GetParam());
  SimConfig config;
  AlibabaBaseline scheduler;
  const SimResult result = Simulator(workload, config, scheduler).Run();
  for (const auto& rec : result.trace.lifecycles) {
    if (rec.schedule_tick >= 0) {
      EXPECT_GE(rec.schedule_tick, rec.submit_tick);
    }
    if (rec.finish_tick >= 0) {
      EXPECT_GE(rec.finish_tick, rec.schedule_tick);
    }
    EXPECT_GE(rec.waiting_seconds, 0.0);
  }
}

TEST_P(SimPropertySweep, ViolationAccountingConsistent) {
  const Workload workload = SeededWorkload(GetParam());
  SimConfig config;
  AlibabaBaseline scheduler;
  const SimResult result = Simulator(workload, config, scheduler).Run();
  EXPECT_GE(result.nonidle_host_ticks, result.violation_host_ticks);
  EXPECT_GE(result.violation_rate(), 0.0);
  EXPECT_LE(result.violation_rate(), 1.0);
}

TEST_P(SimPropertySweep, SchedulersNeverViolateOwnFeasibilityAtCommit) {
  // Wrap each baseline and re-validate the invariants its rule promises at
  // decision time (memory guard by requests is common to all).
  const Workload workload = SeededWorkload(GetParam());
  for (int which = 0; which < 3; ++which) {
    std::unique_ptr<PlacementPolicy> inner;
    if (which == 0) {
      inner = std::make_unique<AlibabaBaseline>();
    } else if (which == 1) {
      inner = MakeBorgLike();
    } else {
      inner = MakeResourceCentralLike();
    }
    class Validator : public PlacementPolicy {
     public:
      explicit Validator(PlacementPolicy& inner) : inner_(inner) {}
      PlacementDecision Place(const PodSpec& pod, const AppProfile& app,
                              const ClusterState& cluster) override {
        const PlacementDecision d = inner_.Place(pod, app, cluster);
        if (d.placed()) {
          const Host& h = cluster.host(d.host);
          // Memory is committed against requests for every baseline.
          EXPECT_LE(h.request_sum.mem + pod.request.mem, h.capacity.mem + 1e-9)
              << inner_.name();
          EXPECT_TRUE(AffinityAllows(pod, h)) << inner_.name();
        }
        return d;
      }
      std::string name() const override { return inner_.name(); }

     private:
      PlacementPolicy& inner_;
    };
    Validator validator(*inner);
    SimConfig config;
    Simulator(workload, config, validator).Run();
  }
}

TEST_P(SimPropertySweep, MedeaRunsCleanly) {
  const Workload workload = SeededWorkload(GetParam());
  SimConfig config;
  Medea medea;
  const SimResult result = Simulator(workload, config, medea).Run();
  EXPECT_GT(result.scheduled_pods, 0);
  // Medea is request-based everywhere: capacity violations require demand
  // bursts beyond requests, which the generator's limits forbid.
  EXPECT_LE(result.violation_rate(), 0.05);
}

TEST_P(SimPropertySweep, DisablingPreemptionNeverIncreasesLsrScheduled) {
  const Workload workload = SeededWorkload(GetParam());
  auto count_lsr = [](const SimResult& result) {
    int64_t scheduled = 0;
    for (const auto& rec : result.trace.lifecycles) {
      if (rec.slo == SloClass::kLsr && rec.schedule_tick >= 0) {
        ++scheduled;
      }
    }
    return scheduled;
  };
  SimConfig with;
  with.enable_lsr_preemption = true;
  SimConfig without;
  without.enable_lsr_preemption = false;
  AlibabaBaseline s1, s2;
  const int64_t preempting = count_lsr(Simulator(workload, with, s1).Run());
  const int64_t plain = count_lsr(Simulator(workload, without, s2).Run());
  EXPECT_GE(preempting, plain);
}

TEST_P(SimPropertySweep, RecordCadenceHonored) {
  const Workload workload = SeededWorkload(GetParam());
  SimConfig config;
  config.node_usage_period = 6;
  config.pod_usage_period = 12;
  AlibabaBaseline scheduler;
  const SimResult result = Simulator(workload, config, scheduler).Run();
  for (const auto& rec : result.trace.node_usage) {
    EXPECT_EQ(rec.collect_tick % 6, 0);
  }
  for (const auto& rec : result.trace.pod_usage) {
    EXPECT_EQ(rec.collect_tick % 12, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimPropertySweep, ::testing::Values(1, 7, 21, 42, 1337));

}  // namespace
}  // namespace optum
