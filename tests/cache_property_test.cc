// Property and stress tests for the scoring-cache layer:
//  - PredictionCache against a reference map under randomized
//    Insert/Find/Clear interleavings that force Grow() rehashes;
//  - the by-value Find() contract: lookups stay valid across inserts (the
//    old pointer-returning API dangled across an Insert-triggered Grow);
//  - lane-sharded InterferencePredictor caches hammered from concurrent
//    threads (distinct lanes) with results identical to serial lane 0;
//  - the epoch-keyed host-baseline cache: randomized Place/Remove/Observe/
//    InvalidateAll interleavings must never let a stale prediction survive
//    a Host::change_epoch or EroTable::version bump.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/interference_predictor.h"
#include "src/core/prediction_cache.h"
#include "src/core/resource_usage_predictor.h"
#include "src/ml/linear.h"
#include "src/stats/rng.h"
#include "src/trace/workload_generator.h"

namespace optum::core {
namespace {

// Keys mimic the real packing: AppId in the high word (never all-ones).
uint64_t RandomKey(Rng& rng) {
  const uint64_t app = rng.NextBelow(1u << 20);
  const uint64_t bucket = rng.NextBelow(1u << 24);
  return (app << 32) | bucket;
}

TEST(PredictionCachePropertyTest, MatchesReferenceMapUnderRandomOps) {
  Rng rng(1234);
  PredictionCache cache;
  std::unordered_map<uint64_t, double> reference;
  std::vector<uint64_t> inserted;

  for (int step = 0; step < 60000; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.55) {
      // Insert a fresh key (the documented find-miss-compute-insert use).
      uint64_t key = RandomKey(rng);
      while (reference.count(key) != 0) {
        key = RandomKey(rng);
      }
      const double value = rng.NextDouble();
      cache.Insert(key, value);
      reference.emplace(key, value);
      inserted.push_back(key);
    } else if (roll < 0.9 && !inserted.empty()) {
      // Find a known key: must hit with the exact stored value.
      const uint64_t key = inserted[rng.NextBelow(inserted.size())];
      const auto found = cache.Find(key);
      ASSERT_TRUE(found.has_value());
      ASSERT_EQ(*found, reference.at(key));
    } else if (roll < 0.98) {
      // Find a key that was never inserted: must miss.
      uint64_t key = RandomKey(rng);
      while (reference.count(key) != 0) {
        key = RandomKey(rng);
      }
      ASSERT_FALSE(cache.Find(key).has_value());
    } else if (step < 20000) {
      // Clears only in the first third: the long tail of uninterrupted
      // inserts then has to push the table through several Grow() rehashes.
      cache.Clear();
      reference.clear();
      inserted.clear();
    }
    ASSERT_EQ(cache.size(), reference.size());
  }
  // The op mix must have grown the table at least once for the test to have
  // covered rehashing (55% of 60k steps >> the 4096-slot initial capacity).
  EXPECT_GT(cache.capacity(), 4096u);
  // Post-run sweep: every surviving key still maps to its exact value.
  for (const auto& [key, value] : reference) {
    const auto found = cache.Find(key);
    ASSERT_TRUE(found.has_value());
    ASSERT_EQ(*found, value);
  }
}

TEST(PredictionCachePropertyTest, FindResultsSurviveInsertTriggeredGrow) {
  // The old API returned a pointer into the table; Insert() can Grow() and
  // relocate every slot, leaving that pointer dangling. Find() now returns
  // by value, so a lookup taken before an arbitrary number of inserts must
  // stay exact — this pins the contract (and ASan would catch a regression
  // to reference-returning semantics).
  PredictionCache cache;
  cache.Insert(42, 0.125);
  const auto before_grow = cache.Find(42);
  ASSERT_TRUE(before_grow.has_value());

  const size_t capacity_before = cache.capacity();
  for (uint64_t i = 0; i < 8192; ++i) {
    cache.Insert((i << 32) | 7u, static_cast<double>(i));
  }
  ASSERT_GT(cache.capacity(), capacity_before);  // Grow() really happened.

  EXPECT_EQ(*before_grow, 0.125);
  const auto after_grow = cache.Find(42);
  ASSERT_TRUE(after_grow.has_value());
  EXPECT_EQ(*after_grow, 0.125);
}

TEST(PredictionCachePropertyTest, ClearKeepsCapacityAndForgetsKeys) {
  PredictionCache cache;
  for (uint64_t i = 0; i < 5000; ++i) {
    cache.Insert(i << 32, static_cast<double>(i));
  }
  const size_t grown = cache.capacity();
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.capacity(), grown);
  for (uint64_t i = 0; i < 5000; ++i) {
    EXPECT_FALSE(cache.Find(i << 32).has_value());
  }
}

// --- Lane-sharded predictor stress -------------------------------------------

std::unique_ptr<ml::Regressor> TrainedLsModel() {
  ml::Dataset d(kLsFeatureCount);
  for (double util = 0.0; util <= 2.0; util += 0.05) {
    const double features[kLsFeatureCount] = {0.5, 0.5, util, 0.3, 1.0};
    d.Add(features, 0.4 * util);
  }
  auto model = std::make_unique<ml::LinearRegressor>();
  model->Fit(d);
  return model;
}

OptumProfiles MakeLaneProfiles(int num_apps) {
  OptumProfiles profiles;
  for (AppId app = 0; app < num_apps; ++app) {
    AppModel m;
    m.stats.slo = SloClass::kLs;
    m.stats.max_pod_cpu_util = 0.5;
    m.stats.max_pod_mem_util = 0.5;
    m.discretizer = ml::Discretizer(0.0, 1.0, 25);
    m.model = TrainedLsModel();
    profiles.apps.emplace(app, std::move(m));
  }
  return profiles;
}

TEST(LaneShardedPredictorTest, ConcurrentLanesMatchSerialLaneZero) {
  constexpr int kApps = 16;
  const OptumProfiles profiles = MakeLaneProfiles(kApps);
  InterferencePredictor predictor(&profiles);

  // Query grid: (app, cpu, mem) tuples covering many cache buckets, with
  // repeats so every lane sees both cold misses and warm hits.
  struct Query {
    AppId app;
    double cpu;
    double mem;
  };
  std::vector<Query> queries;
  Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    queries.push_back(Query{static_cast<AppId>(rng.NextBelow(kApps)),
                            rng.NextDouble() * 2.0, rng.NextDouble() * 2.0});
  }

  // Serial ground truth through lane 0.
  std::vector<double> expected(queries.size());
  std::vector<double> expected_raw(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    expected[i] = predictor.Predict(queries[i].app, queries[i].cpu, queries[i].mem);
    expected_raw[i] =
        predictor.PredictRaw(queries[i].app, queries[i].cpu, queries[i].mem);
  }

  // Fresh predictor (cold caches), hammered from 8 lanes concurrently.
  // Cached values are pure functions of their keys, so every lane must
  // reproduce lane 0's serial answers exactly — and TSan must see no
  // cross-lane writes.
  InterferencePredictor sharded(&profiles);
  ThreadPool pool(7);
  sharded.set_num_lanes(pool.num_lanes());
  ASSERT_EQ(sharded.num_lanes(), 8u);
  std::vector<double> got(queries.size());
  std::vector<double> got_raw(queries.size());
  for (int round = 0; round < 2; ++round) {  // round 2 hits warm lane caches
    pool.ParallelForLane(queries.size(), [&](size_t lane, size_t i) {
      got[i] = sharded.Predict(queries[i].app, queries[i].cpu, queries[i].mem, lane);
      got_raw[i] =
          sharded.PredictRaw(queries[i].app, queries[i].cpu, queries[i].mem, lane);
    });
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(got[i], expected[i]) << "query " << i << " round " << round;
      ASSERT_EQ(got_raw[i], expected_raw[i]) << "query " << i << " round " << round;
    }
  }

  // ClearCache drops every lane's shard, not just lane 0.
  sharded.ClearCache();
  EXPECT_EQ(sharded.cache_size(), 0u);
  pool.ParallelForLane(queries.size(), [&](size_t lane, size_t i) {
    got[i] = sharded.Predict(queries[i].app, queries[i].cpu, queries[i].mem, lane);
  });
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(got[i], expected[i]) << "after ClearCache, query " << i;
  }
}

// --- Epoch-keyed host-baseline cache -----------------------------------------

TEST(HostBaselineCacheStressTest, NoStaleHitSurvivesEpochOrVersionBumps) {
  WorkloadConfig wconfig;
  wconfig.num_hosts = 6;
  wconfig.horizon = kTicksPerHour;
  wconfig.seed = 19;
  const Workload workload = WorkloadGenerator(wconfig).Generate();

  OptumProfiles profiles;
  ClusterState cluster(6, kUnitResources, 16);
  ResourceUsagePredictor predictor(&profiles);
  ASSERT_TRUE(predictor.cache_enabled());

  Rng rng(4321);
  std::vector<PodRuntime*> placed;
  size_t next_spec = 0;
  uint64_t epoch_bumps = 0;
  uint64_t version_bumps = 0;
  for (int step = 0; step < 1500; ++step) {
    // Warm the cache for every host before mutating, so a broken
    // invalidation check would serve the pre-mutation (stale) baseline.
    for (const Host& host : cluster.hosts()) {
      (void)predictor.PredictHost(host, nullptr);
    }

    const double roll = rng.NextDouble();
    if (roll < 0.45 && next_spec < workload.pods.size()) {
      const PodSpec& spec = workload.pods[next_spec++];
      const HostId host = static_cast<HostId>(rng.NextBelow(6));
      const uint64_t before = cluster.host(host).change_epoch;
      placed.push_back(cluster.Place(spec, &AppOf(workload, spec.app), host, 0));
      ASSERT_GT(cluster.host(host).change_epoch, before);
      ++epoch_bumps;
    } else if (roll < 0.65 && !placed.empty()) {
      const size_t victim = rng.NextBelow(placed.size());
      cluster.Remove(placed[victim]);
      placed[victim] = placed.back();
      placed.pop_back();
      ++epoch_bumps;
    } else if (roll < 0.95) {
      // Online ERO churn; version() bumps only when a coefficient rises.
      const uint64_t before = profiles.ero.version();
      profiles.ero.Observe(static_cast<AppId>(rng.NextBelow(10)),
                           static_cast<AppId>(rng.NextBelow(10)), rng.NextDouble());
      version_bumps += profiles.ero.version() != before ? 1 : 0;
    } else {
      predictor.InvalidateAll();
    }

    // After every mutation, cached predictions must equal a from-scratch
    // rescan for every host, as-is and with a hypothetical incoming pod.
    const PodSpec& probe = workload.pods[rng.NextBelow(workload.pods.size())];
    for (const Host& host : cluster.hosts()) {
      const Resources base_cached = predictor.PredictHost(host, nullptr);
      const Resources base_rescan = predictor.PredictHostRescan(host, nullptr);
      ASSERT_EQ(base_cached.cpu, base_rescan.cpu) << "host " << host.id;
      ASSERT_EQ(base_cached.mem, base_rescan.mem) << "host " << host.id;
      const Resources inc_cached = predictor.PredictHost(host, &probe);
      const Resources inc_rescan = predictor.PredictHostRescan(host, &probe);
      ASSERT_EQ(inc_cached.cpu, inc_rescan.cpu) << "host " << host.id;
      ASSERT_EQ(inc_cached.mem, inc_rescan.mem) << "host " << host.id;
    }
  }
  // The interleaving must actually have exercised both invalidation axes.
  EXPECT_GT(epoch_bumps, 100u);
  EXPECT_GT(version_bumps, 10u);
}

TEST(HostBaselineCacheStressTest, ParallelDistinctHostPredictionsAreSafe) {
  // PlaceScored's contract: candidates are distinct hosts, so concurrent
  // PredictHost calls touch distinct cache slots. Drive that pattern through
  // a real pool (TSan-verifiable) and check values against serial rescans.
  WorkloadConfig wconfig;
  wconfig.num_hosts = 64;
  wconfig.horizon = kTicksPerHour;
  wconfig.seed = 3;
  const Workload workload = WorkloadGenerator(wconfig).Generate();

  OptumProfiles profiles;
  ClusterState cluster(64, kUnitResources, 16);
  size_t next_spec = 0;
  for (HostId h = 0; h < 64; ++h) {
    for (int k = 0; k < 3 && next_spec < workload.pods.size(); ++k) {
      const PodSpec& spec = workload.pods[next_spec++];
      cluster.Place(spec, &AppOf(workload, spec.app), h, 0);
    }
  }

  ResourceUsagePredictor predictor(&profiles);
  predictor.ReserveHosts(cluster.num_hosts());
  const PodSpec& probe = workload.pods.front();
  ThreadPool pool(4);
  std::vector<Resources> predicted(cluster.num_hosts());
  pool.ParallelForLane(cluster.num_hosts(), [&](size_t lane, size_t i) {
    (void)lane;
    predicted[i] = predictor.PredictHost(cluster.host(static_cast<HostId>(i)), &probe);
  });
  for (size_t i = 0; i < cluster.num_hosts(); ++i) {
    const Resources rescan =
        predictor.PredictHostRescan(cluster.host(static_cast<HostId>(i)), &probe);
    ASSERT_EQ(predicted[i].cpu, rescan.cpu) << "host " << i;
    ASSERT_EQ(predicted[i].mem, rescan.mem) << "host " << i;
  }
}

}  // namespace
}  // namespace optum::core
