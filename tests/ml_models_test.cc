// Tests for the regression model zoo (paper Fig. 18 families): linear,
// ridge, decision tree, random forest, MLP, and linear SVR.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "src/ml/decision_tree.h"
#include "src/ml/gradient_boosting.h"
#include "src/ml/linear.h"
#include "src/ml/metrics.h"
#include "src/ml/mlp.h"
#include "src/ml/random_forest.h"
#include "src/ml/svr.h"
#include "src/stats/rng.h"

namespace optum::ml {
namespace {

// y = 2 x0 - 3 x1 + 1 + noise.
Dataset LinearData(size_t n, double noise_sd, uint64_t seed) {
  Dataset d(2);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-2, 2);
    const double x1 = rng.Uniform(-2, 2);
    const double y = 2 * x0 - 3 * x1 + 1 + rng.Gaussian(0, noise_sd);
    d.Add(std::vector<double>{x0, x1}, y);
  }
  return d;
}

// Step function: y = 1 when x0 > 0.5 else 0 (tree-friendly).
Dataset StepData(size_t n, uint64_t seed) {
  Dataset d(1);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 1);
    d.Add(std::vector<double>{x}, x > 0.5 ? 1.0 : 0.0);
  }
  return d;
}

// Smooth nonlinear target with interaction.
Dataset NonlinearData(size_t n, uint64_t seed) {
  Dataset d(2);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(0, 1);
    const double x1 = rng.Uniform(0, 1);
    const double y = std::sin(3 * x0) + x0 * x1 + rng.Gaussian(0, 0.02);
    d.Add(std::vector<double>{x0, x1}, y);
  }
  return d;
}

TEST(LinearRegressorTest, RecoversCoefficients) {
  const Dataset d = LinearData(500, 0.0, 1);
  LinearRegressor lr;
  lr.Fit(d);
  EXPECT_NEAR(lr.weights()[0], 2.0, 1e-9);
  EXPECT_NEAR(lr.weights()[1], -3.0, 1e-9);
  EXPECT_NEAR(lr.intercept(), 1.0, 1e-9);
}

TEST(LinearRegressorTest, PredictsNoiselessExactly) {
  const Dataset d = LinearData(200, 0.0, 2);
  LinearRegressor lr;
  lr.Fit(d);
  EXPECT_NEAR(lr.Predict(std::vector<double>{1.0, 1.0}), 0.0, 1e-9);
  EXPECT_NEAR(lr.Predict(std::vector<double>{0.0, 0.0}), 1.0, 1e-9);
}

TEST(LinearRegressorTest, RobustToNoise) {
  const Dataset d = LinearData(5000, 0.5, 3);
  LinearRegressor lr;
  lr.Fit(d);
  EXPECT_NEAR(lr.weights()[0], 2.0, 0.1);
  EXPECT_NEAR(lr.weights()[1], -3.0, 0.1);
}

TEST(RidgeRegressorTest, ShrinksWeights) {
  const Dataset d = LinearData(100, 0.1, 4);
  LinearRegressor lr;
  lr.Fit(d);
  RidgeRegressor heavy(100.0);
  heavy.Fit(d);
  EXPECT_LT(std::fabs(heavy.weights()[0]), std::fabs(lr.weights()[0]));
  EXPECT_LT(std::fabs(heavy.weights()[1]), std::fabs(lr.weights()[1]));
}

TEST(RidgeRegressorTest, HandlesCollinearFeatures) {
  // x1 = x0 duplicated: OLS normal equations are singular; ridge is stable.
  Dataset d(2);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Uniform(-1, 1);
    d.Add(std::vector<double>{x, x}, 3 * x);
  }
  RidgeRegressor ridge(0.01);
  ridge.Fit(d);
  EXPECT_NEAR(ridge.Predict(std::vector<double>{0.5, 0.5}), 1.5, 0.05);
}

TEST(DecisionTreeTest, LearnsStepFunction) {
  const Dataset d = StepData(400, 6);
  DecisionTreeRegressor tree;
  tree.Fit(d);
  EXPECT_NEAR(tree.Predict(std::vector<double>{0.1}), 0.0, 0.05);
  EXPECT_NEAR(tree.Predict(std::vector<double>{0.9}), 1.0, 0.05);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  TreeParams params;
  params.max_depth = 2;
  DecisionTreeRegressor tree(params, 1);
  tree.Fit(NonlinearData(500, 7));
  EXPECT_LE(tree.depth(), 2);
  EXPECT_LE(tree.node_count(), 7u);  // binary tree of depth 2
}

TEST(DecisionTreeTest, PureTargetsYieldSingleLeaf) {
  Dataset d(1);
  for (int i = 0; i < 50; ++i) {
    d.Add(std::vector<double>{static_cast<double>(i)}, 5.0);
  }
  DecisionTreeRegressor tree;
  tree.Fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict(std::vector<double>{17.0}), 5.0);
}

TEST(DecisionTreeTest, MinSamplesLeafEnforced) {
  TreeParams params;
  params.min_samples_leaf = 20;
  params.min_samples_split = 40;
  DecisionTreeRegressor tree(params, 1);
  const Dataset d = StepData(60, 8);
  tree.Fit(d);
  // With 60 samples, at most one split is possible.
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(DecisionTreeTest, FitOnIndicesSubset) {
  Dataset d(1);
  for (int i = 0; i < 100; ++i) {
    d.Add(std::vector<double>{static_cast<double>(i)}, i < 50 ? 0.0 : 1.0);
  }
  // Train only on the first half: predictions stay near 0 everywhere.
  DecisionTreeRegressor tree;
  std::vector<size_t> idx(50);
  std::iota(idx.begin(), idx.end(), 0u);
  tree.FitOnIndices(d, std::move(idx));
  EXPECT_NEAR(tree.Predict(std::vector<double>{99.0}), 0.0, 1e-9);
}

TEST(RandomForestTest, BeatsOrMatchesSingleTreeOnNoisyData) {
  Dataset train = NonlinearData(800, 9);
  Dataset test = NonlinearData(200, 10);
  DecisionTreeRegressor tree(TreeParams{.max_depth = 10}, 1);
  tree.Fit(train);
  RandomForestRegressor forest([]{ ForestParams p; p.num_trees = 25; return p; }(), 1);
  forest.Fit(train);
  auto rmse = [&](const Regressor& m) {
    return RootMeanSquaredError(test.targets(), PredictAll(m, test));
  };
  EXPECT_LE(rmse(forest), rmse(tree) * 1.15);
  EXPECT_LT(rmse(forest), 0.12);
}

TEST(RandomForestTest, DeterministicForSeed) {
  const Dataset d = NonlinearData(300, 11);
  RandomForestRegressor f1([]{ ForestParams p; p.num_trees = 10; return p; }(), 42);
  RandomForestRegressor f2([]{ ForestParams p; p.num_trees = 10; return p; }(), 42);
  f1.Fit(d);
  f2.Fit(d);
  for (double x = 0.05; x < 1.0; x += 0.1) {
    const std::vector<double> features = {x, 1 - x};
    EXPECT_DOUBLE_EQ(f1.Predict(features), f2.Predict(features));
  }
}

TEST(RandomForestTest, NumTreesHonored) {
  RandomForestRegressor forest([]{ ForestParams p; p.num_trees = 7; return p; }(), 1);
  forest.Fit(StepData(100, 12));
  EXPECT_EQ(forest.num_trees(), 7u);
}

TEST(MlpTest, LearnsLinearFunction) {
  const Dataset d = LinearData(1500, 0.05, 13);
  MlpRegressor mlp(MlpParams{.hidden = {16}, .epochs = 80}, 1);
  mlp.Fit(d);
  const double mape = EvaluateMape(mlp, LinearData(200, 0.0, 14));
  EXPECT_LT(MeanAbsoluteError(
                std::vector<double>{mlp.Predict(std::vector<double>{1.0, 0.0})},
                std::vector<double>{3.0}),
            0.4);
  (void)mape;
}

TEST(MlpTest, LearnsNonlinearInteraction) {
  const Dataset train = NonlinearData(2000, 15);
  MlpRegressor mlp(MlpParams{}, 2);
  mlp.Fit(train);
  const Dataset test = NonlinearData(300, 16);
  EXPECT_LT(RootMeanSquaredError(test.targets(), PredictAll(mlp, test)), 0.15);
}

TEST(SvrTest, LearnsLinearFunctionApproximately) {
  const Dataset d = LinearData(2000, 0.05, 17);
  LinearSvr svr(SvrParams{.epsilon = 0.01, .c = 10.0, .epochs = 60}, 1);
  svr.Fit(d);
  EXPECT_NEAR(svr.Predict(std::vector<double>{1.0, 1.0}), 0.0, 0.5);
  EXPECT_NEAR(svr.Predict(std::vector<double>{-1.0, 1.0}), -4.0, 0.6);
}

TEST(SvrTest, InsensitiveToSmallNoiseInTube) {
  // Constant target with tiny noise: SVR should predict near the constant.
  Dataset d(1);
  Rng rng(18);
  for (int i = 0; i < 500; ++i) {
    d.Add(std::vector<double>{rng.Uniform(0, 1)}, 5.0 + rng.Gaussian(0, 0.005));
  }
  LinearSvr svr(SvrParams{}, 1);
  svr.Fit(d);
  EXPECT_NEAR(svr.Predict(std::vector<double>{0.5}), 5.0, 0.2);
}

TEST(GradientBoostingTest, LearnsStepFunction) {
  const Dataset d = StepData(400, 21);
  GradientBoostingRegressor gbt(BoostingParams{}, 1);
  gbt.Fit(d);
  EXPECT_NEAR(gbt.Predict(std::vector<double>{0.1}), 0.0, 0.08);
  EXPECT_NEAR(gbt.Predict(std::vector<double>{0.9}), 1.0, 0.08);
  EXPECT_EQ(gbt.num_rounds(), BoostingParams{}.num_rounds);
}

TEST(GradientBoostingTest, PredictBatchBitIdenticalToPerRowPredict) {
  // The batched override accumulates tree-outer but per row in the same
  // order as Predict, so the Regressor batch contract holds exactly.
  const Dataset train = StepData(300, 24);
  const Dataset test = StepData(75, 25);
  GradientBoostingRegressor gbt(BoostingParams{}, 2);
  gbt.Fit(train);
  const std::vector<double> batched = PredictAll(gbt, test);
  ASSERT_EQ(batched.size(), test.size());
  for (size_t i = 0; i < test.size(); ++i) {
    EXPECT_EQ(batched[i], gbt.Predict(test.Features(i))) << "row " << i;
  }
}

TEST(GradientBoostingTest, LearnsNonlinearInteraction) {
  const Dataset train = NonlinearData(800, 22);
  const Dataset test = NonlinearData(200, 23);
  GradientBoostingRegressor gbt(BoostingParams{}, 1);
  gbt.Fit(train);
  EXPECT_LT(RootMeanSquaredError(test.targets(), PredictAll(gbt, test)), 0.1);
}

TEST(GradientBoostingTest, MoreRoundsReduceTrainingError) {
  const Dataset d = NonlinearData(400, 24);
  auto train_rmse = [&](size_t rounds) {
    BoostingParams params;
    params.num_rounds = rounds;
    params.subsample = 1.0;
    GradientBoostingRegressor gbt(params, 1);
    gbt.Fit(d);
    return RootMeanSquaredError(d.targets(), PredictAll(gbt, d));
  };
  EXPECT_LT(train_rmse(60), train_rmse(5));
}

TEST(GradientBoostingTest, DeterministicPerSeed) {
  const Dataset d = NonlinearData(300, 25);
  GradientBoostingRegressor a(BoostingParams{}, 9), b(BoostingParams{}, 9);
  a.Fit(d);
  b.Fit(d);
  EXPECT_DOUBLE_EQ(a.Predict(std::vector<double>{0.4, 0.6}),
                   b.Predict(std::vector<double>{0.4, 0.6}));
}

TEST(RegressorFactoryTest, AllKindsConstructAndFit) {
  const Dataset d = LinearData(300, 0.1, 19);
  for (const RegressorKind kind :
       {RegressorKind::kLinear, RegressorKind::kRidge, RegressorKind::kRandomForest,
        RegressorKind::kMlp, RegressorKind::kSvr}) {
    auto model = MakeRegressor(kind, 7);
    ASSERT_NE(model, nullptr) << ToString(kind);
    model->Fit(d);
    const double pred = model->Predict(std::vector<double>{0.5, -0.5});
    EXPECT_TRUE(std::isfinite(pred)) << ToString(kind);
    // Truth is 2*0.5 + 3*0.5 + 1 = 3.5; all families should be in range.
    EXPECT_NEAR(pred, 3.5, 1.5) << ToString(kind);
  }
}

TEST(RegressorFactoryTest, NamesMatchKinds) {
  EXPECT_STREQ(ToString(RegressorKind::kRandomForest), "RF");
  EXPECT_EQ(MakeRegressor(RegressorKind::kSvr, 1)->name(), "SVR");
  EXPECT_EQ(MakeRegressor(RegressorKind::kLinear, 1)->name(), "LR");
  EXPECT_EQ(MakeRegressor(RegressorKind::kRidge, 1)->name(), "Ridge");
  EXPECT_EQ(MakeRegressor(RegressorKind::kMlp, 1)->name(), "MLP");
}

TEST(RegressorFactoryTest, KindSeedOverloadMatchesDefaultSpec) {
  // MakeRegressor(kind, seed) must stay a pure alias for a default-params
  // spec: same family, same seed, bit-identical predictions.
  const Dataset d = NonlinearData(300, 26);
  for (const RegressorKind kind :
       {RegressorKind::kLinear, RegressorKind::kRidge, RegressorKind::kRandomForest,
        RegressorKind::kMlp, RegressorKind::kSvr}) {
    auto legacy = MakeRegressor(kind, 11);
    RegressorSpec spec;
    spec.kind = kind;
    spec.seed = 11;
    auto from_spec = MakeRegressor(spec);
    legacy->Fit(d);
    from_spec->Fit(d);
    const std::vector<double> probe = {0.3, 0.8};
    EXPECT_EQ(legacy->Predict(probe), from_spec->Predict(probe)) << ToString(kind);
  }
}

TEST(RegressorFactoryTest, SpecForestOverridesHonored) {
  RegressorSpec spec;
  spec.kind = RegressorKind::kRandomForest;
  spec.seed = 3;
  spec.forest.num_trees = 4;
  spec.forest.tree.max_depth = 2;
  auto model = MakeRegressor(spec);
  model->Fit(NonlinearData(200, 27));
  const auto& forest = dynamic_cast<const RandomForestRegressor&>(*model);
  EXPECT_EQ(forest.num_trees(), 4u);
  for (size_t t = 0; t < forest.num_trees(); ++t) {
    EXPECT_LE(forest.tree(t).depth(), 2);
  }
}

TEST(RegressorFactoryTest, SpecRidgeAlphaHonored) {
  // A huge alpha shrinks weights toward zero, so predictions collapse
  // toward the target mean — distinguishable from the default alpha.
  const Dataset d = LinearData(200, 0.0, 28);
  RegressorSpec weak;
  weak.kind = RegressorKind::kRidge;
  RegressorSpec strong = weak;
  strong.ridge_alpha = 1e6;
  auto weak_model = MakeRegressor(weak);
  auto strong_model = MakeRegressor(strong);
  weak_model->Fit(d);
  strong_model->Fit(d);
  const std::vector<double> probe = {2.0, -2.0};
  EXPECT_GT(std::fabs(weak_model->Predict(probe)),
            std::fabs(strong_model->Predict(probe)) + 1.0);
}

// Paper ordering sanity (Fig. 18): on contention-style data (piecewise
// saturating response), RF should beat the linear families.
TEST(ModelComparisonTest, ForestBeatsLinearOnSaturatingResponse) {
  Dataset train(1);
  Dataset test(1);
  Rng rng(20);
  auto target = [](double x) { return x < 0.55 ? 0.0 : (x - 0.55) / 0.45; };
  for (int i = 0; i < 1200; ++i) {
    const double x = rng.Uniform(0, 1);
    Dataset& dst = i % 4 == 0 ? test : train;
    dst.Add(std::vector<double>{x}, target(x) + rng.Gaussian(0, 0.01));
  }
  RandomForestRegressor forest(ForestParams{}, 1);
  forest.Fit(train);
  LinearRegressor lr;
  lr.Fit(train);
  auto rmse = [&](const Regressor& m) {
    return RootMeanSquaredError(test.targets(), PredictAll(m, test));
  };
  EXPECT_LT(rmse(forest), rmse(lr) * 0.6);
}

}  // namespace
}  // namespace optum::ml
