// Tests for the named workload scenarios and the generator knobs they use.
#include <gtest/gtest.h>

#include "src/sched/baselines.h"
#include "src/sim/simulator.h"
#include "src/trace/scenarios.h"

namespace optum {
namespace {

TEST(ScenariosTest, AllScenariosHaveNamesAndConfigs) {
  for (const Scenario scenario : AllScenarios()) {
    EXPECT_STRNE(ToString(scenario), "?");
    const WorkloadConfig config = MakeScenarioConfig(scenario, 32, 120);
    EXPECT_EQ(config.num_hosts, 32);
    EXPECT_EQ(config.horizon, 120);
    // Every scenario must generate a valid workload.
    const Workload workload = WorkloadGenerator(config).Generate();
    EXPECT_GT(workload.pods.size(), 100u);
  }
}

TEST(ScenariosTest, LsHeavyRaisesLsRequestMass) {
  const Workload calibrated = WorkloadGenerator(
      MakeScenarioConfig(Scenario::kCalibrated, 32, 120)).Generate();
  const Workload heavy = WorkloadGenerator(
      MakeScenarioConfig(Scenario::kLsHeavy, 32, 120)).Generate();
  auto ls_mass = [](const Workload& w) {
    double mass = 0;
    for (const PodSpec& pod : w.pods) {
      if (pod.submit_tick == 0 && IsLatencySensitive(pod.slo)) {
        mass += pod.request.cpu;
      }
    }
    return mass;
  };
  EXPECT_GT(ls_mass(heavy), 1.3 * ls_mass(calibrated));
}

TEST(ScenariosTest, BurstyHasHeavierArrivalTail) {
  const Workload calibrated = WorkloadGenerator(
      MakeScenarioConfig(Scenario::kCalibrated, 48, kTicksPerDay / 2)).Generate();
  const Workload bursty = WorkloadGenerator(
      MakeScenarioConfig(Scenario::kBursty, 48, kTicksPerDay / 2)).Generate();
  auto max_per_minute = [](const Workload& w) {
    std::vector<int> bins(static_cast<size_t>(w.config.horizon / kTicksPerMinute) + 1, 0);
    for (const PodSpec& pod : w.pods) {
      if (pod.submit_tick > 0) {
        ++bins[static_cast<size_t>(pod.submit_tick / kTicksPerMinute)];
      }
    }
    return *std::max_element(bins.begin(), bins.end());
  };
  EXPECT_GT(max_per_minute(bursty), max_per_minute(calibrated));
}

TEST(ScenariosTest, MemoryTightScalesMemoryRequests) {
  const Workload calibrated = WorkloadGenerator(
      MakeScenarioConfig(Scenario::kCalibrated, 32, 120)).Generate();
  const Workload tight = WorkloadGenerator(
      MakeScenarioConfig(Scenario::kMemoryTight, 32, 120)).Generate();
  // App populations are generated with the same seed: compare app-wise.
  ASSERT_EQ(calibrated.apps.size(), tight.apps.size());
  int larger = 0;
  for (size_t i = 0; i < calibrated.apps.size(); ++i) {
    EXPECT_GE(tight.apps[i].request.mem, calibrated.apps[i].request.mem - 1e-12);
    larger += tight.apps[i].request.mem > calibrated.apps[i].request.mem ? 1 : 0;
    EXPECT_GE(tight.apps[i].limit.mem, tight.apps[i].request.mem * 0.999);
    EXPECT_LE(tight.apps[i].request.mem, 1.0);
  }
  EXPECT_GT(larger, static_cast<int>(calibrated.apps.size() / 2));
}

TEST(ScenariosTest, MemRequestScaleClampsAtHostCapacity) {
  WorkloadConfig config = MakeScenarioConfig(Scenario::kCalibrated, 16, 60);
  config.mem_request_scale = 100.0;
  const Workload workload = WorkloadGenerator(config).Generate();
  for (const AppProfile& app : workload.apps) {
    EXPECT_LE(app.request.mem, 1.0);
    EXPECT_LE(app.limit.mem, 1.0);
  }
}

TEST(ScenariosTest, BeSaturatedKeepsReferenceBusy) {
  const Workload workload = WorkloadGenerator(
      MakeScenarioConfig(Scenario::kBeSaturated, 24, 240)).Generate();
  AlibabaBaseline scheduler;
  SimConfig config;
  const SimResult result = Simulator(workload, config, scheduler).Run();
  // Saturated: a backlog exists and utilization is well above calibrated.
  EXPECT_GT(result.MeanCpuUtilNonIdle(), 0.3);
}

}  // namespace
}  // namespace optum
