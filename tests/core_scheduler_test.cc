// Tests for Optum's online components: interference predictor (Eq. 9-10),
// node selector / scheduler (Eq. 11), and the deployment module (§4.4).
#include <gtest/gtest.h>

#include <memory>

#include "src/core/deployment.h"
#include "src/core/interference_predictor.h"
#include "src/core/optum_scheduler.h"
#include "src/ml/linear.h"

namespace optum::core {
namespace {

// A fake "model": linear in host CPU utilization so interference predictions
// are easy to reason about. Trained on two points.
std::unique_ptr<ml::Regressor> LinearPsiModel(double slope) {
  ml::Dataset d(kLsFeatureCount);
  // psi = slope * host_cpu_util; other features held at reference values.
  for (double util = 0.0; util <= 1.0; util += 0.1) {
    const double features[kLsFeatureCount] = {0.5, 0.5, util, 0.3, 1.0};
    d.Add(features, slope * util);
  }
  auto model = std::make_unique<ml::LinearRegressor>();
  model->Fit(d);
  return model;
}

std::unique_ptr<ml::Regressor> LinearCtModel(double base, double slope) {
  ml::Dataset d(kBeFeatureCount);
  for (double util = 0.0; util <= 1.0; util += 0.1) {
    const double features[kBeFeatureCount] = {0.5, 0.5, util, 0.3};
    d.Add(features, base + slope * util);
  }
  auto model = std::make_unique<ml::LinearRegressor>();
  model->Fit(d);
  return model;
}

OptumProfiles MakeProfiles() {
  OptumProfiles profiles;
  AppModel ls;
  ls.stats.slo = SloClass::kLs;
  ls.stats.max_pod_cpu_util = 0.5;
  ls.stats.max_pod_mem_util = 0.5;
  ls.stats.mem_profile = 0.5;
  ls.discretizer = ml::Discretizer(0.0, 1.0, 25);
  ls.model = LinearPsiModel(0.8);
  profiles.apps.emplace(0, std::move(ls));

  AppModel be;
  be.stats.slo = SloClass::kBe;
  be.stats.max_pod_cpu_util = 0.5;
  be.stats.max_pod_mem_util = 0.5;
  be.stats.mem_profile = 0.9;
  be.discretizer = ml::Discretizer(0.0, 1.0, 25);
  be.model = LinearCtModel(0.3, 0.4);
  profiles.apps.emplace(1, std::move(be));

  profiles.ero.Observe(0, 0, 0.3);
  profiles.ero.Observe(0, 1, 0.35);
  profiles.ero.Observe(1, 1, 0.4);
  return profiles;
}

AppProfile MakeApp(AppId id, SloClass slo, Resources request) {
  AppProfile app;
  app.id = id;
  app.slo = slo;
  app.request = request;
  app.limit = request * 2.0;
  return app;
}

class InterferencePredictorTest : public ::testing::Test {
 protected:
  InterferencePredictorTest()
      : profiles_(MakeProfiles()),
        predictor_(&profiles_),
        cluster_(2, kUnitResources, 8),
        ls_app_(MakeApp(0, SloClass::kLs, {0.2, 0.1})),
        be_app_(MakeApp(1, SloClass::kBe, {0.1, 0.05})) {}

  OptumProfiles profiles_;
  InterferencePredictor predictor_;
  ClusterState cluster_;
  AppProfile ls_app_, be_app_;
};

TEST_F(InterferencePredictorTest, LsPredictionRisesWithUtil) {
  const double low = predictor_.Predict(0, 0.1, 0.3);
  const double high = predictor_.Predict(0, 0.9, 0.3);
  EXPECT_LT(low, high);
  // Discretized to 25-bucket upper bounds.
  EXPECT_NEAR(high, 0.72, 0.08);
}

TEST_F(InterferencePredictorTest, UnknownAppPredictsZero) {
  EXPECT_DOUBLE_EQ(predictor_.Predict(99, 0.9, 0.9), 0.0);
}

TEST_F(InterferencePredictorTest, CachingIsStableAndBucketed) {
  const double a = predictor_.Predict(0, 0.501, 0.3);
  const size_t size_after_first = predictor_.cache_size();
  const double b = predictor_.Predict(0, 0.502, 0.3);  // same bucket
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_EQ(predictor_.cache_size(), size_after_first);
  predictor_.ClearCache();
  EXPECT_EQ(predictor_.cache_size(), 0u);
}

TEST_F(InterferencePredictorTest, TotalInterferenceWeightsClasses) {
  cluster_.Place(MakePodSpec(1, ls_app_), &ls_app_, 0, 0);
  cluster_.Place(MakePodSpec(2, be_app_), &be_app_, 0, 0);
  const PodSpec incoming = MakePodSpec(3, be_app_);
  const double ls_only =
      predictor_.TotalInterference(cluster_.host(0), incoming, 0.9, 0.5, 1.0, 0.0);
  const double be_only =
      predictor_.TotalInterference(cluster_.host(0), incoming, 0.9, 0.5, 0.0, 1.0);
  const double both =
      predictor_.TotalInterference(cluster_.host(0), incoming, 0.9, 0.5, 1.0, 1.0);
  EXPECT_NEAR(ls_only + be_only, both, 1e-9);
  EXPECT_GT(ls_only, 0.0);
  EXPECT_GT(be_only, 0.0);
}

TEST_F(InterferencePredictorTest, MarginalInterferenceIgnoresConstantPart) {
  // Existing BE pods have a large constant CT component (base 0.3); the
  // marginal form should charge only the utilization-driven increment.
  for (int i = 0; i < 10; ++i) {
    cluster_.Place(MakePodSpec(10 + i, be_app_), &be_app_, 0, 0);
  }
  const PodSpec incoming = MakePodSpec(99, be_app_);
  const double absolute =
      predictor_.TotalInterference(cluster_.host(0), incoming, 0.5, 0.3, 0.7, 0.3);
  const double marginal = predictor_.MarginalInterference(
      cluster_.host(0), incoming, 0.5, 0.3, 0.5, 0.3, 0.7, 0.3);
  // Same before/after utilization: marginal = just the incoming pod's RI.
  EXPECT_LT(marginal, absolute);
  EXPECT_GT(marginal, 0.0);
}

TEST_F(InterferencePredictorTest, MarginalGrowsWithUtilDelta) {
  for (int i = 0; i < 5; ++i) {
    cluster_.Place(MakePodSpec(10 + i, ls_app_), &ls_app_, 0, 0);
  }
  const PodSpec incoming = MakePodSpec(99, ls_app_);
  const double small_delta = predictor_.MarginalInterference(
      cluster_.host(0), incoming, 0.5, 0.3, 0.55, 0.3, 1.0, 0.0);
  const double large_delta = predictor_.MarginalInterference(
      cluster_.host(0), incoming, 0.5, 0.3, 0.95, 0.3, 1.0, 0.0);
  EXPECT_GT(large_delta, small_delta);
}

// --- OptumScheduler -----------------------------------------------------------

class OptumSchedulerTest : public ::testing::Test {
 protected:
  OptumSchedulerTest()
      : cluster_(4, kUnitResources, 8),
        ls_app_(MakeApp(0, SloClass::kLs, {0.2, 0.1})),
        be_app_(MakeApp(1, SloClass::kBe, {0.1, 0.05})) {}

  OptumConfig FullScanConfig() {
    OptumConfig config;
    config.sample_fraction = 1.0;
    config.min_candidates = 4;
    return config;
  }

  ClusterState cluster_;
  AppProfile ls_app_, be_app_;
};

TEST_F(OptumSchedulerTest, PacksOntoUtilizedHost) {
  OptumScheduler sched(MakeProfiles(), FullScanConfig());
  cluster_.Place(MakePodSpec(10, ls_app_), &ls_app_, 2, 0);
  const PlacementDecision d = sched.Place(MakePodSpec(1, be_app_), be_app_, cluster_);
  ASSERT_TRUE(d.placed());
  EXPECT_EQ(d.host, 2);  // highest utilization product
}

TEST_F(OptumSchedulerTest, MemoryCapRejects) {
  OptumConfig config = FullScanConfig();
  config.mem_util_limit = 0.5;
  OptumScheduler sched(MakeProfiles(), config);
  // Fill all hosts to predicted mem 0.5: LS profile 0.5 x 0.1 mem request
  // per pod -> 10 pods = 0.5 predicted.
  for (HostId h = 0; h < 4; ++h) {
    for (int i = 0; i < 10; ++i) {
      cluster_.Place(MakePodSpec(100 + h * 10 + i, ls_app_), &ls_app_, h, 0);
    }
  }
  const PlacementDecision d = sched.Place(MakePodSpec(1, ls_app_), ls_app_, cluster_);
  EXPECT_FALSE(d.placed());
  EXPECT_EQ(d.reason, WaitReason::kInsufficientMem);
}

TEST_F(OptumSchedulerTest, CpuFeasibilityUsesPoc) {
  OptumScheduler sched(MakeProfiles(), FullScanConfig());
  // ERO(0,0)=0.3: pairs of LS pods cost 0.3*0.4=0.12 POC. 16 pods = 8 pairs
  // = 0.96 POC; one more pod (odd) pushes past 1.0.
  for (HostId h = 0; h < 4; ++h) {
    for (int i = 0; i < 16; ++i) {
      cluster_.Place(MakePodSpec(100 + h * 20 + i, ls_app_), &ls_app_, h, 0);
    }
  }
  const PlacementDecision d = sched.Place(MakePodSpec(1, ls_app_), ls_app_, cluster_);
  EXPECT_FALSE(d.placed());
  // CPU must be implicated (memory may saturate simultaneously at this
  // packing depth).
  EXPECT_TRUE(d.reason == WaitReason::kInsufficientCpu ||
              d.reason == WaitReason::kInsufficientCpuAndMem);
}

TEST_F(OptumSchedulerTest, ScoreHostExposed) {
  OptumScheduler sched(MakeProfiles(), FullScanConfig());
  cluster_.Place(MakePodSpec(10, ls_app_), &ls_app_, 0, 0);
  double score_loaded = 0.0, score_empty = 0.0;
  EXPECT_TRUE(sched.ScoreHost(MakePodSpec(1, be_app_), cluster_.host(0), &score_loaded));
  EXPECT_TRUE(sched.ScoreHost(MakePodSpec(1, be_app_), cluster_.host(1), &score_empty));
  EXPECT_GT(score_loaded, score_empty);
}

TEST_F(OptumSchedulerTest, AffinityHonored) {
  OptumScheduler sched(MakeProfiles(), FullScanConfig());
  PodSpec pod = MakePodSpec(1, ls_app_);
  pod.max_pods_per_host = 1;
  for (HostId h = 0; h < 4; ++h) {
    PodSpec existing = MakePodSpec(100 + h, ls_app_);
    existing.max_pods_per_host = 1;
    cluster_.Place(existing, &ls_app_, h, 0);
  }
  const PlacementDecision d = sched.Place(pod, ls_app_, cluster_);
  EXPECT_FALSE(d.placed());
}

TEST_F(OptumSchedulerTest, MultithreadedScoringMatchesSequential) {
  OptumConfig seq = FullScanConfig();
  OptumConfig par = FullScanConfig();
  par.num_threads = 2;
  par.min_candidates = 4;
  OptumScheduler s1(MakeProfiles(), seq);
  OptumScheduler s2(MakeProfiles(), par);
  cluster_.Place(MakePodSpec(10, ls_app_), &ls_app_, 1, 0);
  cluster_.Place(MakePodSpec(11, ls_app_), &ls_app_, 1, 0);
  cluster_.Place(MakePodSpec(12, be_app_), &be_app_, 3, 0);
  const PlacementDecision d1 = s1.Place(MakePodSpec(1, be_app_), be_app_, cluster_);
  const PlacementDecision d2 = s2.Place(MakePodSpec(1, be_app_), be_app_, cluster_);
  EXPECT_EQ(d1.host, d2.host);
}

TEST_F(OptumSchedulerTest, PaperAbsoluteModeAlsoPlaces) {
  OptumConfig config = FullScanConfig();
  config.score_mode = ScoreMode::kPaperAbsolute;
  OptumScheduler sched(MakeProfiles(), config);
  const PlacementDecision d = sched.Place(MakePodSpec(1, ls_app_), ls_app_, cluster_);
  EXPECT_TRUE(d.placed());
}

TEST_F(OptumSchedulerTest, ObserveColocationTightensEro) {
  OptumScheduler sched(MakeProfiles(), FullScanConfig());
  // Co-locate two apps with no prior ERO entry: app 5 and app 6.
  AppProfile a5 = MakeApp(5, SloClass::kBe, {0.2, 0.05});
  AppProfile a6 = MakeApp(6, SloClass::kBe, {0.2, 0.05});
  PodRuntime* p5 = cluster_.Place(MakePodSpec(50, a5), &a5, 0, 0);
  PodRuntime* p6 = cluster_.Place(MakePodSpec(60, a6), &a6, 0, 0);
  p5->cpu_usage = 0.05;
  p6->cpu_usage = 0.07;
  EXPECT_DOUBLE_EQ(sched.profiles().ero.Get(5, 6), 1.0);
  sched.ObserveColocation(cluster_, 100);
  EXPECT_NEAR(sched.profiles().ero.Get(5, 6), 0.12 / 0.4, 1e-9);
  // Rate limiting: a second observation within the period is skipped.
  p5->cpu_usage = 0.2;
  sched.ObserveColocation(cluster_, 101);
  EXPECT_NEAR(sched.profiles().ero.Get(5, 6), 0.12 / 0.4, 1e-9);
  // After the period it updates (max semantics).
  sched.ObserveColocation(cluster_, 111);
  EXPECT_NEAR(sched.profiles().ero.Get(5, 6), 0.27 / 0.4, 1e-9);
}

// --- DeploymentModule ----------------------------------------------------------

TEST(DeploymentModuleTest, NoConflictAllCommit) {
  DeploymentModule dm;
  const DeploymentOutcome out =
      dm.Resolve({{1, 0, 0.5}, {2, 1, 0.3}, {3, 2, 0.9}});
  EXPECT_EQ(out.committed.size(), 3u);
  EXPECT_TRUE(out.redispatched.empty());
}

TEST(DeploymentModuleTest, HighestScoreWinsConflict) {
  DeploymentModule dm;
  const DeploymentOutcome out = dm.Resolve({{1, 0, 0.5}, {2, 0, 0.8}, {3, 0, 0.2}});
  ASSERT_EQ(out.committed.size(), 1u);
  EXPECT_EQ(out.committed[0].pod, 2);
  EXPECT_EQ(out.redispatched.size(), 2u);
}

TEST(DeploymentModuleTest, TieBreaksTowardLowerPodId) {
  DeploymentModule dm;
  const DeploymentOutcome out = dm.Resolve({{7, 0, 0.5}, {3, 0, 0.5}});
  ASSERT_EQ(out.committed.size(), 1u);
  EXPECT_EQ(out.committed[0].pod, 3);
}

TEST(DeploymentModuleTest, MixedConflicts) {
  DeploymentModule dm;
  const DeploymentOutcome out =
      dm.Resolve({{1, 0, 0.1}, {2, 0, 0.9}, {3, 1, 0.5}, {4, 1, 0.4}, {5, 2, 0.0}});
  EXPECT_EQ(out.committed.size(), 3u);
  EXPECT_EQ(out.redispatched.size(), 2u);
  for (const auto& c : out.committed) {
    for (const auto& r : out.redispatched) {
      if (c.host == r.host) {
        EXPECT_GE(c.score, r.score);
      }
    }
  }
}

TEST(DeploymentModuleTest, EmptyInput) {
  DeploymentModule dm;
  const DeploymentOutcome out = dm.Resolve({});
  EXPECT_TRUE(out.committed.empty());
  EXPECT_TRUE(out.redispatched.empty());
}

}  // namespace
}  // namespace optum::core
