// Tests for src/predict: the four industry usage predictors (§3.2.2) and
// the Fig. 11 error-scoring harness.
#include <gtest/gtest.h>

#include "src/predict/predictor_eval.h"
#include "src/predict/usage_predictor.h"
#include "src/sim/cluster.h"

namespace optum {
namespace {

AppProfile TestApp() {
  AppProfile app;
  app.id = 0;
  app.slo = SloClass::kBe;
  app.request = {0.2, 0.1};
  app.limit = {0.4, 0.15};
  return app;
}

PodSpec TestPod(PodId id, const AppProfile& app) {
  PodSpec pod;
  pod.id = id;
  pod.app = app.id;
  pod.slo = app.slo;
  pod.request = app.request;
  pod.limit = app.limit;
  return pod;
}

class PredictorFixture : public ::testing::Test {
 protected:
  PredictorFixture() : cluster_(1, kUnitResources, 32), app_(TestApp()) {
    pod1_ = cluster_.Place(TestPod(1, app_), &app_, 0, 0);
    pod2_ = cluster_.Place(TestPod(2, app_), &app_, 0, 0);
  }

  ClusterState cluster_;
  AppProfile app_;
  PodRuntime* pod1_;
  PodRuntime* pod2_;
};

TEST_F(PredictorFixture, BorgDefaultScalesRequests) {
  BorgDefaultPredictor borg(0.9);
  // Two pods x 0.2 CPU request = 0.4; x 0.9 = 0.36.
  EXPECT_NEAR(borg.PredictHostCpu(cluster_.host(0)), 0.36, 1e-12);
  BorgDefaultPredictor conservative(1.0);
  EXPECT_NEAR(conservative.PredictHostCpu(cluster_.host(0)), 0.4, 1e-12);
}

TEST_F(PredictorFixture, ResourceCentralSumsPodPercentiles) {
  Rng rng(1);
  // pod1 usage mostly 0.05 with occasional 0.15; pod2 flat 0.02.
  for (int i = 0; i < 99; ++i) {
    pod1_->RecordCpuSample(0.05, rng);
  }
  pod1_->RecordCpuSample(0.15, rng);
  for (int i = 0; i < 100; ++i) {
    pod2_->RecordCpuSample(0.02, rng);
  }
  ResourceCentralPredictor rc(99.0);
  const double predicted = rc.PredictHostCpu(cluster_.host(0));
  EXPECT_GT(predicted, 0.05 + 0.02 - 1e-9);
  EXPECT_LT(predicted, 0.15 + 0.02 + 1e-9);
}

TEST_F(PredictorFixture, ResourceCentralFallsBackToCurrentUsage) {
  pod1_->cpu_usage = 0.07;
  pod2_->cpu_usage = 0.03;
  ResourceCentralPredictor rc(99.0);
  EXPECT_NEAR(rc.PredictHostCpu(cluster_.host(0)), 0.10, 1e-12);
}

TEST_F(PredictorFixture, NSigmaUsesHostHistory) {
  Host& host = cluster_.mutable_host(0);
  // Alternating utilization 0.2 / 0.4: mean 0.3, stddev 0.1.
  for (int i = 0; i < 50; ++i) {
    host.PushHistory(0.2, 100);
    host.PushHistory(0.4, 100);
  }
  NSigmaPredictor nsigma(5.0);
  EXPECT_NEAR(nsigma.PredictHostCpu(host), 0.3 + 5 * 0.1, 1e-9);
}

TEST_F(PredictorFixture, NSigmaEmptyHistoryPredictsZero) {
  NSigmaPredictor nsigma(5.0);
  EXPECT_DOUBLE_EQ(nsigma.PredictHostCpu(cluster_.host(0)), 0.0);
}

TEST_F(PredictorFixture, MaxPredictorTakesMaximum) {
  Host& host = cluster_.mutable_host(0);
  for (int i = 0; i < 100; ++i) {
    host.PushHistory(0.01, 100);
  }
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    pod1_->RecordCpuSample(0.02, rng);
    pod2_->RecordCpuSample(0.02, rng);
  }
  MaxPredictor max_pred;
  // Borg (0.36) dominates RC (0.04) and N-sigma (0.01).
  EXPECT_NEAR(max_pred.PredictHostCpu(host), 0.36, 1e-9);
}

TEST_F(PredictorFixture, DefaultMemPredictionIsRequestSum) {
  BorgDefaultPredictor borg;
  EXPECT_NEAR(borg.PredictHostMem(cluster_.host(0)), 0.2, 1e-12);
}

TEST(PeakOracleTest, PeakOverWindow) {
  // Host 0 usage series sampled every 2 ticks: 0.1, 0.5, 0.3, 0.2.
  PeakOracle oracle({{0.1, 0.5, 0.3, 0.2}}, /*period=*/2);
  // After tick 0, window 4 ticks -> samples at indices 1..2 -> peak 0.5.
  EXPECT_DOUBLE_EQ(oracle.PeakAfter(0, 0, 4), 0.5);
  // After tick 2 -> indices 2..3 -> peak 0.3.
  EXPECT_DOUBLE_EQ(oracle.PeakAfter(0, 2, 4), 0.3);
  // Unknown host or beyond series -> negative.
  EXPECT_LT(oracle.PeakAfter(5, 0, 4), 0.0);
  EXPECT_LT(oracle.PeakAfter(0, 100, 4), 0.0);
}

TEST(ScorePredictionsTest, SplitsOverAndUnderEstimation) {
  PeakOracle oracle({{1.0, 1.0, 1.0, 1.0, 1.0}}, 1);
  std::vector<PredictionSample> samples = {
      {0, 0, 1.5},  // +50%
      {0, 1, 0.8},  // -20%
      {0, 2, 1.0},  // 0% -> counted as over (>= 0)
  };
  const PredictorErrorSummary summary = ScorePredictions("test", samples, oracle, 2);
  EXPECT_EQ(summary.over_errors.size(), 2u);
  EXPECT_EQ(summary.under_errors.size(), 1u);
  EXPECT_NEAR(summary.max_over, 50.0, 1e-9);
  EXPECT_NEAR(summary.max_under, -20.0, 1e-9);
}

TEST(ScorePredictionsTest, UnderestimationTailFraction) {
  PeakOracle oracle({{1.0, 1.0, 1.0, 1.0, 1.0, 1.0}}, 1);
  std::vector<PredictionSample> samples = {
      {0, 0, 0.5},   // -50% (beyond -10%)
      {0, 1, 0.95},  // -5% (within)
      {0, 2, 1.2},   // +20%
      {0, 3, 0.85},  // -15% (beyond)
  };
  const PredictorErrorSummary summary = ScorePredictions("test", samples, oracle, 1);
  EXPECT_NEAR(summary.frac_under_below_minus_10, 0.5, 1e-9);
}

TEST(ScorePredictionsTest, SkipsIdleHosts) {
  PeakOracle oracle({{0.0, 0.0, 0.0}}, 1);
  std::vector<PredictionSample> samples = {{0, 0, 0.5}};
  const PredictorErrorSummary summary = ScorePredictions("test", samples, oracle, 1);
  EXPECT_EQ(summary.over_errors.size() + summary.under_errors.size(), 0u);
}

}  // namespace
}  // namespace optum
