// Tests for the distributed scheduling coordinator (§4.4) and the
// triple-wise ERO extension (§4.2.2).
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "src/core/distributed.h"
#include "src/core/offline_profiler.h"
#include "src/core/resource_usage_predictor.h"
#include "src/obs/metrics.h"
#include "src/obs/span_log.h"

namespace optum::core {
namespace {

AppProfile MakeApp(AppId id, SloClass slo, Resources request) {
  AppProfile app;
  app.id = id;
  app.slo = slo;
  app.request = request;
  app.limit = request * 2.0;
  return app;
}

OptumProfiles SimpleProfiles() {
  OptumProfiles profiles;
  AppModel be;
  be.stats.slo = SloClass::kBe;
  be.stats.mem_profile = 0.9;
  profiles.apps.emplace(0, std::move(be));
  profiles.ero.Observe(0, 0, 0.4);
  return profiles;
}

// --- Triple-wise ERO ---------------------------------------------------------

TEST(EroTripleTest, ObserveAndGet) {
  EroTable ero;
  EXPECT_LT(ero.GetTriple(1, 2, 3), 0.0);  // unobserved
  EXPECT_FALSE(ero.ContainsTriple(1, 2, 3));
  ero.ObserveTriple(1, 2, 3, 0.35);
  EXPECT_TRUE(ero.ContainsTriple(1, 2, 3));
  EXPECT_DOUBLE_EQ(ero.GetTriple(1, 2, 3), 0.35);
  // Keeps the maximum, order-free.
  ero.ObserveTriple(3, 1, 2, 0.5);
  EXPECT_DOUBLE_EQ(ero.GetTriple(2, 3, 1), 0.5);
  ero.ObserveTriple(2, 1, 3, 0.2);
  EXPECT_DOUBLE_EQ(ero.GetTriple(1, 2, 3), 0.5);
  EXPECT_EQ(ero.triple_size(), 1u);
}

TEST(EroTripleTest, TripleKeysDistinct) {
  EroTable ero;
  ero.ObserveTriple(1, 2, 3, 0.3);
  ero.ObserveTriple(1, 2, 4, 0.6);
  EXPECT_DOUBLE_EQ(ero.GetTriple(1, 2, 3), 0.3);
  EXPECT_DOUBLE_EQ(ero.GetTriple(1, 2, 4), 0.6);
  EXPECT_EQ(ero.triple_size(), 2u);
}

TEST(TripleUsagePredictorTest, UsesObservedTriple) {
  OptumProfiles profiles;
  for (AppId id = 0; id < 3; ++id) {
    AppModel m;
    m.stats.slo = SloClass::kBe;
    m.stats.mem_profile = 1.0;
    profiles.apps.emplace(id, std::move(m));
  }
  profiles.ero.Observe(0, 1, 0.5);
  profiles.ero.Observe(1, 2, 0.5);
  profiles.ero.Observe(0, 2, 0.5);
  profiles.ero.ObserveTriple(0, 1, 2, 0.3);

  ClusterState cluster(1, kUnitResources, 8);
  const AppProfile a = MakeApp(0, SloClass::kBe, {0.1, 0.05});
  const AppProfile b = MakeApp(1, SloClass::kBe, {0.1, 0.05});
  const AppProfile c = MakeApp(2, SloClass::kBe, {0.1, 0.05});
  cluster.Place(MakePodSpec(1, a), &a, 0, 0);
  cluster.Place(MakePodSpec(2, b), &b, 0, 0);
  cluster.Place(MakePodSpec(3, c), &c, 0, 0);

  ResourceUsagePredictor pairwise(&profiles);
  ResourceUsagePredictor triple(&profiles,
                                ResourceUsagePredictor::Grouping::kTripleWise);
  // Pairwise: 0.5*(0.1+0.1) + 0.1 (odd) = 0.2.
  EXPECT_NEAR(pairwise.PredictHost(cluster.host(0), nullptr).cpu, 0.2, 1e-12);
  // Triple: 0.3 * 0.3 = 0.09 — strictly tighter.
  EXPECT_NEAR(triple.PredictHost(cluster.host(0), nullptr).cpu, 0.09, 1e-12);
}

TEST(TripleUsagePredictorTest, FallbackUsesBestPairing) {
  OptumProfiles profiles;
  for (AppId id = 0; id < 3; ++id) {
    AppModel m;
    m.stats.slo = SloClass::kBe;
    m.stats.mem_profile = 1.0;
    profiles.apps.emplace(id, std::move(m));
  }
  // Only pair (1,2) is tight; the fallback should group it and leave app 0
  // at its full request: 0.2 + 0.2*(0.1+0.1) = 0.24.
  profiles.ero.Observe(1, 2, 0.2);

  ClusterState cluster(1, kUnitResources, 8);
  const AppProfile a = MakeApp(0, SloClass::kBe, {0.2, 0.05});
  const AppProfile b = MakeApp(1, SloClass::kBe, {0.1, 0.05});
  const AppProfile c = MakeApp(2, SloClass::kBe, {0.1, 0.05});
  cluster.Place(MakePodSpec(1, a), &a, 0, 0);
  cluster.Place(MakePodSpec(2, b), &b, 0, 0);
  cluster.Place(MakePodSpec(3, c), &c, 0, 0);

  ResourceUsagePredictor triple(&profiles,
                                ResourceUsagePredictor::Grouping::kTripleWise);
  EXPECT_NEAR(triple.PredictHost(cluster.host(0), nullptr).cpu, 0.24, 1e-12);
}

TEST(TripleUsagePredictorTest, TripleNeverExceedsRequestSum) {
  OptumProfiles profiles;  // empty: every pair/triple defaults conservative
  ClusterState cluster(1, kUnitResources, 8);
  std::vector<AppProfile> apps;
  for (int i = 0; i < 5; ++i) {
    apps.push_back(MakeApp(i, SloClass::kBe, {0.05 + 0.01 * i, 0.02}));
  }
  double request_sum = 0.0;
  for (int i = 0; i < 5; ++i) {
    cluster.Place(MakePodSpec(10 + i, apps[static_cast<size_t>(i)]),
                  &apps[static_cast<size_t>(i)], 0, 0);
    request_sum += apps[static_cast<size_t>(i)].request.cpu;
  }
  ResourceUsagePredictor triple(&profiles,
                                ResourceUsagePredictor::Grouping::kTripleWise);
  EXPECT_LE(triple.PredictHost(cluster.host(0), nullptr).cpu, request_sum + 1e-12);
}

TEST(OfflineProfilerTripleTest, CollectsTriplesWhenEnabled) {
  // Craft a trace with three apps co-located on one host.
  TraceBundle trace;
  trace.nodes.push_back(NodeMeta{0, kUnitResources});
  for (int p = 0; p < 3; ++p) {
    PodMeta meta;
    meta.pod_id = p;
    meta.app_id = p;
    meta.slo = SloClass::kBe;
    meta.request = {0.1, 0.05};
    meta.limit = {0.2, 0.1};
    trace.pods.push_back(meta);
  }
  for (Tick t = 0; t < 50; ++t) {
    trace.node_usage.push_back(NodeUsageRecord{0, t, 0.1, 0.1, 0, 0});
    for (int p = 0; p < 3; ++p) {
      PodUsageRecord rec;
      rec.pod_id = p;
      rec.host = 0;
      rec.collect_tick = t;
      rec.cpu_usage = 0.02 * (p + 1);
      rec.mem_usage = 0.02;
      trace.pod_usage.push_back(rec);
    }
  }
  OfflineProfilerConfig config;
  config.enable_triple_ero = true;
  OfflineProfiler profiler(config);
  const EroTable ero = profiler.BuildEroTable(trace);
  ASSERT_TRUE(ero.ContainsTriple(0, 1, 2));
  // (0.02 + 0.04 + 0.06) / 0.3 = 0.4.
  EXPECT_NEAR(ero.GetTriple(0, 1, 2), 0.4, 1e-9);
  // Disabled by default.
  const EroTable no_triples = OfflineProfiler().BuildEroTable(trace);
  EXPECT_EQ(no_triples.triple_size(), 0u);
}

// --- DistributedCoordinator ----------------------------------------------------

TEST(DistributedTest, SingleShardPlacesWholeBatch) {
  const OptumProfiles profiles = SimpleProfiles();
  const AppProfile app = MakeApp(0, SloClass::kBe, {0.05, 0.02});
  std::vector<PodSpec> pods;
  for (int i = 0; i < 20; ++i) {
    pods.push_back(MakePodSpec(i, app));
  }
  std::vector<const PodSpec*> batch;
  for (const auto& p : pods) {
    batch.push_back(&p);
  }
  ClusterState cluster(8, kUnitResources, 8);
  DistributedConfig config;
  config.num_schedulers = 1;
  config.scheduler_config.sample_fraction = 1.0;
  config.scheduler_config.min_candidates = 8;
  DistributedCoordinator coordinator(profiles, config);
  const DistributedOutcome outcome =
      coordinator.ScheduleBatch(batch, cluster, [&](const ScheduleProposal& w) {
        cluster.Place(pods[static_cast<size_t>(w.pod)], &app, w.host, 0);
      });
  EXPECT_EQ(outcome.placed.size(), 20u);
  EXPECT_TRUE(outcome.unplaced.empty());
  EXPECT_EQ(outcome.conflicts_resolved, 0);  // single scheduler: no conflicts
  EXPECT_EQ(outcome.rounds_used, 20);
}

TEST(DistributedTest, ParallelShardsResolveConflicts) {
  const OptumProfiles profiles = SimpleProfiles();
  const AppProfile app = MakeApp(0, SloClass::kBe, {0.05, 0.02});
  std::vector<PodSpec> pods;
  for (int i = 0; i < 40; ++i) {
    pods.push_back(MakePodSpec(i, app));
  }
  std::vector<const PodSpec*> batch;
  for (const auto& p : pods) {
    batch.push_back(&p);
  }
  ClusterState cluster(8, kUnitResources, 8);
  DistributedConfig config;
  config.num_schedulers = 4;
  config.max_attempts_per_pod = 8;
  config.scheduler_config.sample_fraction = 1.0;
  config.scheduler_config.min_candidates = 8;
  DistributedCoordinator coordinator(profiles, config);
  int64_t commits = 0;
  const DistributedOutcome outcome =
      coordinator.ScheduleBatch(batch, cluster, [&](const ScheduleProposal& w) {
        ++commits;
        cluster.Place(pods[static_cast<size_t>(w.pod)], &app, w.host, 0);
      });
  EXPECT_EQ(static_cast<int64_t>(outcome.placed.size()), commits);
  EXPECT_EQ(outcome.placed.size() + outcome.unplaced.size(), 40u);
  // Identical pods against the same snapshot: conflicts must occur with
  // 4 parallel shards (with full-scan scoring every shard picks the same
  // best host, so the worst case degenerates to one commit per round).
  EXPECT_GT(outcome.conflicts_resolved, 0);
  EXPECT_LE(outcome.rounds_used, 40);
  // No host may hold two commits from the same round: per-host commit
  // uniqueness is per round, so total placed per host is bounded by rounds.
  std::set<std::pair<int64_t, HostId>> seen;
  for (const auto& p : outcome.placed) {
    EXPECT_TRUE(seen.insert({p.pod, p.host}).second);
  }
}

// Metrics on the distributed conflict path: the coordinator's counters must
// agree with the outcome it returns, and every shard's per-lane scheduler
// counters must merge into one batch-wide total (shard s writes at registry
// lane s, so the merged sums only hold once the batch has quiesced).
TEST(DistributedTest, MetricSinksCountRoundsCommitsAndConflicts) {
  const OptumProfiles profiles = SimpleProfiles();
  const AppProfile app = MakeApp(0, SloClass::kBe, {0.05, 0.02});
  std::vector<PodSpec> pods;
  for (int i = 0; i < 40; ++i) {
    pods.push_back(MakePodSpec(i, app));
  }
  std::vector<const PodSpec*> batch;
  for (const auto& p : pods) {
    batch.push_back(&p);
  }
  ClusterState cluster(8, kUnitResources, 8);
  DistributedConfig config;
  config.num_schedulers = 4;
  config.max_attempts_per_pod = 8;
  config.scheduler_config.sample_fraction = 1.0;
  config.scheduler_config.min_candidates = 8;
  DistributedCoordinator coordinator(profiles, config);
  obs::MetricRegistry registry;
  obs::Sinks metric_sinks;
  metric_sinks.metrics = &registry;
  coordinator.AttachSinks(metric_sinks);
  EXPECT_GE(registry.num_lanes(), 4u);
  const DistributedOutcome outcome =
      coordinator.ScheduleBatch(batch, cluster, [&](const ScheduleProposal& w) {
        cluster.Place(pods[static_cast<size_t>(w.pod)], &app, w.host, 0);
      });
  EXPECT_EQ(registry.counter("dist.rounds")->Value(),
            static_cast<uint64_t>(outcome.rounds_used));
  EXPECT_EQ(registry.counter("dist.commits")->Value(), outcome.placed.size());
  EXPECT_EQ(registry.counter("dist.conflicts")->Value(),
            static_cast<uint64_t>(outcome.conflicts_resolved));
  EXPECT_EQ(registry.histogram("dist.round_seconds")->Count(),
            static_cast<uint64_t>(outcome.rounds_used));
  // Shard-level placements sum to commits + lost conflicts + ... — at
  // minimum every commit came from some shard's placement.
  uint64_t shard_placements = 0;
  for (size_t s = 0; s < coordinator.num_schedulers(); ++s) {
    shard_placements +=
        registry.counter("optum.shard" + std::to_string(s) + ".placements")->Value();
  }
  EXPECT_GE(shard_placements, outcome.placed.size());
  // The per-shard predictor gauges publish through collectors on export.
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("optum.shard0.pred_cache_hit_rate"), std::string::npos);
  EXPECT_NE(json.find("optum.shard3.forest_evals"), std::string::npos);
}

// Span emission on the distributed path: only the coordinator's serial
// conflict-resolution phase appends (committed winners as `placed` in commit
// order, losers as `conflict_retried`), so the span counts must agree
// exactly with the outcome the coordinator returns.
TEST(DistributedTest, SpanLogTracesCommitsAndConflicts) {
  const OptumProfiles profiles = SimpleProfiles();
  const AppProfile app = MakeApp(0, SloClass::kBe, {0.05, 0.02});
  std::vector<PodSpec> pods;
  for (int i = 0; i < 40; ++i) {
    pods.push_back(MakePodSpec(i, app));
  }
  std::vector<const PodSpec*> batch;
  for (const auto& p : pods) {
    batch.push_back(&p);
  }
  ClusterState cluster(8, kUnitResources, 8);
  DistributedConfig config;
  config.num_schedulers = 4;
  config.max_attempts_per_pod = 8;
  config.scheduler_config.sample_fraction = 1.0;
  config.scheduler_config.min_candidates = 8;
  DistributedCoordinator coordinator(profiles, config);
  obs::MetricRegistry registry;
  const std::string path = ::testing::TempDir() + "/dist_spans.jsonl";
  DistributedOutcome outcome;
  {
    obs::SpanLog span_log(path);
    ASSERT_TRUE(span_log.ok());
    span_log.AttachMetrics(&registry);
    obs::Sinks sinks;
    sinks.span_log = &span_log;
    coordinator.AttachSinks(sinks);
    outcome =
        coordinator.ScheduleBatch(batch, cluster, [&](const ScheduleProposal& w) {
          cluster.Place(pods[static_cast<size_t>(w.pod)], &app, w.host, 0);
        });
  }
  ASSERT_GT(outcome.conflicts_resolved, 0);
  EXPECT_EQ(registry.counter("spans.placed")->Value(), outcome.placed.size());
  EXPECT_EQ(registry.counter("spans.conflict_retried")->Value(),
            static_cast<uint64_t>(outcome.conflicts_resolved));
  // Commit order in the file matches the outcome's placed order.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 20, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  size_t cursor = 0;
  for (const ScheduleProposal& p : outcome.placed) {
    const std::string needle = "\"pod\":" + std::to_string(p.pod) +
                               ",\"phase\":\"placed\",\"host\":" +
                               std::to_string(p.host);
    cursor = contents.find(needle, cursor);
    ASSERT_NE(cursor, std::string::npos) << needle;
  }
}

TEST(DistributedTest, UnplaceableBatchReturnsReasons) {
  const OptumProfiles profiles = SimpleProfiles();
  // Pod bigger than any host: nothing can place.
  const AppProfile app = MakeApp(0, SloClass::kBe, {1.5, 0.02});
  std::vector<PodSpec> pods = {MakePodSpec(0, app), MakePodSpec(1, app)};
  std::vector<const PodSpec*> batch = {&pods[0], &pods[1]};
  ClusterState cluster(4, kUnitResources, 8);
  DistributedConfig config;
  config.num_schedulers = 2;
  config.max_attempts_per_pod = 2;
  DistributedCoordinator coordinator(profiles, config);
  const DistributedOutcome outcome = coordinator.ScheduleBatch(
      batch, cluster, [](const ScheduleProposal&) { FAIL() << "must not commit"; });
  EXPECT_TRUE(outcome.placed.empty());
  ASSERT_EQ(outcome.unplaced.size(), 2u);
  for (const auto& [pod, reason] : outcome.unplaced) {
    EXPECT_EQ(reason, WaitReason::kInsufficientCpu);
  }
}

TEST(DistributedTest, CommitsVisibleToLaterRounds) {
  const OptumProfiles profiles = SimpleProfiles();
  // Each host fits exactly two pods by memory cap: 0.8 / 0.36 = 2.2.
  AppProfile app = MakeApp(0, SloClass::kBe, {0.05, 0.4});
  std::vector<PodSpec> pods;
  for (int i = 0; i < 8; ++i) {
    pods.push_back(MakePodSpec(i, app));
  }
  std::vector<const PodSpec*> batch;
  for (const auto& p : pods) {
    batch.push_back(&p);
  }
  ClusterState cluster(4, kUnitResources, 8);
  DistributedConfig config;
  config.num_schedulers = 2;
  config.max_attempts_per_pod = 16;
  config.scheduler_config.sample_fraction = 1.0;
  config.scheduler_config.min_candidates = 4;
  DistributedCoordinator coordinator(profiles, config);
  const DistributedOutcome outcome =
      coordinator.ScheduleBatch(batch, cluster, [&](const ScheduleProposal& w) {
        cluster.Place(pods[static_cast<size_t>(w.pod)], &app, w.host, 0);
      });
  // Capacity is 4 hosts x 2 pods = 8: every pod fits only if later rounds
  // saw earlier commits (otherwise the mem cap would be violated).
  EXPECT_EQ(outcome.placed.size(), 8u);
  for (const Host& h : cluster.hosts()) {
    EXPECT_LE(h.pods.size(), 2u);
  }
}

TEST(DistributedTest, ShardAccessors) {
  const OptumProfiles profiles = SimpleProfiles();
  DistributedConfig config;
  config.num_schedulers = 3;
  DistributedCoordinator coordinator(profiles, config);
  EXPECT_EQ(coordinator.num_schedulers(), 3u);
  EXPECT_EQ(coordinator.shard(0).name(), "Optum");
}

}  // namespace
}  // namespace optum::core
