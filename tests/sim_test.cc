// Tests for src/sim: PSI ground-truth model, cluster bookkeeping, and the
// end-to-end simulator loop.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/sim/cluster.h"
#include "src/sim/psi_model.h"
#include "src/sim/simulator.h"
#include "src/trace/workload_generator.h"

namespace optum {
namespace {

AppProfile LsApp(AppId id = 0) {
  AppProfile app;
  app.id = id;
  app.slo = SloClass::kLs;
  app.request = {0.1, 0.05};
  app.limit = {0.2, 0.08};
  app.qps_base = 100;
  app.psi_sensitivity = 1.0;
  return app;
}

AppProfile BeApp(AppId id = 1) {
  AppProfile app;
  app.id = id;
  app.slo = SloClass::kBe;
  app.request = {0.05, 0.02};
  app.limit = {0.1, 0.03};
  app.work_mean_ticks = 10;
  app.slowdown_sensitivity = 1.5;
  return app;
}

PodSpec MakePod(PodId id, const AppProfile& app, Tick submit = 0) {
  PodSpec pod;
  pod.id = id;
  pod.app = app.id;
  pod.slo = app.slo;
  pod.request = app.request;
  pod.limit = app.limit;
  pod.submit_tick = submit;
  pod.long_running = app.slo != SloClass::kBe;
  pod.behavior.work_ticks = app.work_mean_ticks;
  return pod;
}

// --- PsiModel ---------------------------------------------------------------

TEST(PsiModelTest, NoContentionBelowKnee) {
  PsiModel model;
  EXPECT_DOUBLE_EQ(model.CpuContention(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.CpuContention(0.5), 0.0);
  EXPECT_GT(model.CpuContention(0.8), 0.0);
}

TEST(PsiModelTest, ContentionMonotonic) {
  PsiModel model;
  double prev = -1;
  for (double ratio = 0.0; ratio <= 2.0; ratio += 0.05) {
    const double c = model.CpuContention(ratio);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(PsiModelTest, PsiBoundedAndRisesWithContention) {
  PsiModel model(PsiModelParams{.psi_noise = 0.0});
  const AppProfile app = LsApp();
  Rng noise(1);
  const double low = model.CpuPsi60(app, 0.4, 0.8, 1.0, noise);
  const double high = model.CpuPsi60(app, 1.2, 0.8, 1.0, noise);
  EXPECT_LT(low, 0.06);  // only the mild sub-knee component
  EXPECT_GT(high, 0.1);
  EXPECT_LE(high, 1.0);
}

TEST(PsiModelTest, PsiScalesWithPodUtilAndQps) {
  PsiModel model(PsiModelParams{.psi_noise = 0.0});
  const AppProfile app = LsApp();
  Rng noise(1);
  const double busy = model.CpuPsi60(app, 1.0, 1.0, 1.0, noise);
  const double idle_pod = model.CpuPsi60(app, 1.0, 0.0, 1.0, noise);
  const double low_qps = model.CpuPsi60(app, 1.0, 1.0, 0.0, noise);
  EXPECT_GT(busy, idle_pod);
  EXPECT_GT(busy, low_qps);
}

TEST(PsiModelTest, Psi300IsSmoothed) {
  PsiModel model;
  double p300 = 0.0;
  p300 = model.CpuPsi300(p300, 1.0);
  EXPECT_LT(p300, 1.0);
  EXPECT_GT(p300, 0.0);
  // Converges toward the steady value.
  for (int i = 0; i < 100; ++i) {
    p300 = model.CpuPsi300(p300, 1.0);
  }
  EXPECT_NEAR(p300, 1.0, 0.01);
}

TEST(PsiModelTest, MemPsiOnlyUnderMemoryPressure) {
  PsiModel model(PsiModelParams{.psi_noise = 0.0});
  Rng noise(1);
  EXPECT_DOUBLE_EQ(model.MemPsiSome60(0.5, noise), 0.0);
  EXPECT_GT(model.MemPsiSome60(0.99, noise), 0.0);
  EXPECT_LT(model.MemPsiFull60(0.5), 0.5);
}

TEST(PsiModelTest, BeProgressRateBounds) {
  PsiModel model;
  const AppProfile app = BeApp();
  // Mild sub-knee slowdown only.
  EXPECT_GT(model.BeProgressRate(app, 0.1, 0.1), 0.9);
  EXPECT_GT(model.BeProgressRate(app, 0.3, 0.3), model.BeProgressRate(app, 0.5, 0.3));
  const double slowed = model.BeProgressRate(app, 1.5, 0.95);
  EXPECT_LT(slowed, 1.0);
  EXPECT_GT(slowed, 0.0);
}

TEST(PsiModelTest, ResponseTimeGrowsWithPsi) {
  PsiModel model;
  const AppProfile app = LsApp();
  // Average over many draws (the dependency term is heavy-tailed).
  auto mean_rt = [&](double psi) {
    Rng noise(5);
    double acc = 0;
    for (int i = 0; i < 4000; ++i) {
      acc += model.ResponseTime(app, psi, 1.0, noise);
    }
    return acc / 4000;
  };
  EXPECT_GT(mean_rt(0.8), 1.5 * mean_rt(0.0));
}

// --- ClusterState -----------------------------------------------------------

TEST(ClusterStateTest, PlaceAndRemoveBookkeeping) {
  ClusterState cluster(2, kUnitResources, 16);
  const AppProfile app = LsApp();
  const PodSpec pod = MakePod(1, app);
  PodRuntime* rt = cluster.Place(pod, &app, 0, 5);
  EXPECT_EQ(cluster.num_running_pods(), 1u);
  EXPECT_EQ(cluster.host(0).pods.size(), 1u);
  EXPECT_DOUBLE_EQ(cluster.host(0).request_sum.cpu, 0.1);
  EXPECT_DOUBLE_EQ(cluster.host(0).limit_sum.mem, 0.08);
  EXPECT_EQ(rt->scheduled_at, 5);
  cluster.Remove(rt);
  EXPECT_EQ(cluster.num_running_pods(), 0u);
  EXPECT_TRUE(cluster.host(0).pods.empty());
  EXPECT_NEAR(cluster.host(0).request_sum.cpu, 0.0, 1e-12);
}

TEST(ClusterStateTest, PodRuntimeRecycling) {
  ClusterState cluster(1, kUnitResources, 16);
  const AppProfile app = BeApp();
  PodRuntime* first = cluster.Place(MakePod(1, app), &app, 0, 0);
  cluster.Remove(first);
  PodRuntime* second = cluster.Place(MakePod(2, app), &app, 0, 1);
  EXPECT_EQ(first, second);  // recycled slot
  EXPECT_EQ(second->spec.id, 2);
  EXPECT_DOUBLE_EQ(second->progress, 0.0);  // state fully reset
}

TEST(ClusterStateTest, HostHistoryRollingWindow) {
  Host host;
  for (int i = 0; i < 10; ++i) {
    host.PushHistory(1.0, 4);
  }
  double mean = 0, sd = 0;
  host.HistoryStats(&mean, &sd);
  EXPECT_DOUBLE_EQ(mean, 1.0);
  EXPECT_DOUBLE_EQ(sd, 0.0);
  host.PushHistory(0.0, 4);
  host.PushHistory(0.0, 4);
  host.HistoryStats(&mean, &sd);
  EXPECT_DOUBLE_EQ(mean, 0.5);  // window holds {1,1,0,0}
}

TEST(ClusterStateTest, AffinityAllowsLimits) {
  ClusterState cluster(1, kUnitResources, 16);
  const AppProfile app = LsApp();
  PodSpec pod = MakePod(1, app);
  pod.max_pods_per_host = 2;
  EXPECT_TRUE(AffinityAllows(pod, cluster.host(0)));
  cluster.Place(pod, &app, 0, 0);
  EXPECT_TRUE(AffinityAllows(pod, cluster.host(0)));
  cluster.Place(pod, &app, 0, 0);
  EXPECT_FALSE(AffinityAllows(pod, cluster.host(0)));
  // Unlimited pods are always allowed.
  pod.max_pods_per_host = 0;
  EXPECT_TRUE(AffinityAllows(pod, cluster.host(0)));
}

TEST(ClusterStateTest, CpuPercentileCacheInvalidation) {
  PodRuntime pod;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    pod.RecordCpuSample(static_cast<double>(i), rng);
  }
  const double p99_before = pod.CpuUsagePercentile(99);
  EXPECT_NEAR(p99_before, 98.0, 1.1);
  // Adding samples must invalidate the cache.
  pod.RecordCpuSample(1000.0, rng);
  const double p99_after = pod.CpuUsagePercentile(99);
  EXPECT_GE(p99_after, p99_before);
  // Different quantiles recompute.
  EXPECT_LT(pod.CpuUsagePercentile(10), pod.CpuUsagePercentile(90));
}

// --- Simulator ---------------------------------------------------------------

// Trivial policy: first host with request room (both dimensions).
class FirstFitPolicy : public PlacementPolicy {
 public:
  PlacementDecision Place(const PodSpec& pod, const AppProfile& app,
                          const ClusterState& cluster) override {
    (void)app;
    for (const Host& h : cluster.hosts()) {
      if (!AffinityAllows(pod, h)) {
        continue;
      }
      if ((h.request_sum + pod.request).FitsWithin(h.capacity)) {
        return PlacementDecision::Accept(h.id);
      }
    }
    return PlacementDecision::Reject(WaitReason::kInsufficientCpuAndMem);
  }
  std::string name() const override { return "FirstFit"; }
};

Workload TinyWorkload(int hosts = 8, Tick horizon = 200) {
  WorkloadConfig config;
  config.num_hosts = hosts;
  config.horizon = horizon;
  config.num_ls_apps = 4;
  config.num_lsr_apps = 2;
  config.num_be_apps = 6;
  config.num_system_apps = 1;
  config.num_vmenv_apps = 1;
  config.num_unknown_apps = 2;
  config.seed = 11;
  return WorkloadGenerator(config).Generate();
}

TEST(SimulatorTest, RunsAndSchedulesPods) {
  const Workload w = TinyWorkload();
  SimConfig config;
  FirstFitPolicy policy;
  Simulator sim(w, config, policy);
  const SimResult result = sim.Run();
  EXPECT_GT(result.scheduled_pods, 0);
  EXPECT_EQ(result.trace.nodes.size(), 8u);
  EXPECT_FALSE(result.trace.lifecycles.empty());
  EXPECT_FALSE(result.util_series.empty());
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  const Workload w = TinyWorkload();
  SimConfig config;
  FirstFitPolicy p1, p2;
  const SimResult r1 = Simulator(w, config, p1).Run();
  const SimResult r2 = Simulator(w, config, p2).Run();
  EXPECT_EQ(r1.scheduled_pods, r2.scheduled_pods);
  EXPECT_EQ(r1.trace.lifecycles.size(), r2.trace.lifecycles.size());
  EXPECT_DOUBLE_EQ(r1.MeanCpuUtilNonIdle(), r2.MeanCpuUtilNonIdle());
}

TEST(SimulatorTest, BeCompletionRecorded) {
  const Workload w = TinyWorkload(8, 400);
  SimConfig config;
  FirstFitPolicy policy;
  const SimResult result = Simulator(w, config, policy).Run();
  int completed = 0;
  for (const auto& rec : result.trace.lifecycles) {
    if (rec.slo == SloClass::kBe && rec.finish_tick >= 0) {
      ++completed;
      EXPECT_GE(rec.schedule_tick, rec.submit_tick);
      EXPECT_GT(rec.finish_tick, rec.schedule_tick - 1);
      EXPECT_GT(rec.ideal_completion_ticks, 0.0);
      // Contention can only slow pods down (ticks are integral, so allow
      // the ceiling of the ideal time).
      EXPECT_GE(rec.actual_completion_ticks + 1.0, rec.ideal_completion_ticks);
    }
  }
  EXPECT_GT(completed, 10);
}

TEST(SimulatorTest, LongRunningPodsSurviveToHorizon) {
  const Workload w = TinyWorkload();
  SimConfig config;
  FirstFitPolicy policy;
  const SimResult result = Simulator(w, config, policy).Run();
  int running_at_end = 0;
  for (const auto& rec : result.trace.lifecycles) {
    if (IsLatencySensitive(rec.slo)) {
      EXPECT_EQ(rec.finish_tick, -1);
      ++running_at_end;
    }
  }
  EXPECT_GT(running_at_end, 0);
}

TEST(SimulatorTest, WaitingTimesConsistent) {
  const Workload w = TinyWorkload();
  SimConfig config;
  FirstFitPolicy policy;
  const SimResult result = Simulator(w, config, policy).Run();
  for (const auto& rec : result.trace.lifecycles) {
    if (rec.schedule_tick >= 0) {
      EXPECT_NEAR(rec.waiting_seconds,
                  (rec.schedule_tick - rec.submit_tick) * kSecondsPerTick, 1e-9);
      EXPECT_GE(rec.waiting_seconds, 0.0);
    }
  }
}

TEST(SimulatorTest, UtilizationSeriesWithinBounds) {
  const Workload w = TinyWorkload();
  SimConfig config;
  FirstFitPolicy policy;
  const SimResult result = Simulator(w, config, policy).Run();
  for (const auto& s : result.util_series) {
    EXPECT_GE(s.avg_cpu_nonidle, 0.0);
    EXPECT_LE(s.avg_cpu_nonidle, 1.0 + 1e-9);
    EXPECT_LE(s.max_cpu, 1.0 + 1e-9);  // usage is capacity-clamped
    EXPECT_GE(s.frac_hosts_nonidle, 0.0);
    EXPECT_LE(s.frac_hosts_nonidle, 1.0);
  }
}

TEST(SimulatorTest, ObserverInvokedEveryTick) {
  const Workload w = TinyWorkload(4, 50);
  SimConfig config;
  int calls = 0;
  Tick last = -1;
  config.on_tick_end = [&](const ClusterState&, Tick t) {
    ++calls;
    EXPECT_EQ(t, last + 1);
    last = t;
  };
  FirstFitPolicy policy;
  Simulator(w, config, policy).Run();
  EXPECT_EQ(calls, 50);
}

TEST(SimulatorTest, PodUsageRecordsCarryHost) {
  const Workload w = TinyWorkload();
  SimConfig config;
  config.pod_usage_period = 4;
  FirstFitPolicy policy;
  const SimResult result = Simulator(w, config, policy).Run();
  ASSERT_FALSE(result.trace.pod_usage.empty());
  for (const auto& rec : result.trace.pod_usage) {
    EXPECT_GE(rec.host, 0);
    EXPECT_LT(rec.host, 8);
    EXPECT_GE(rec.cpu_usage, 0.0);
    EXPECT_GE(rec.cpu_psi_60, 0.0);
    EXPECT_LE(rec.cpu_psi_60, 1.0);
  }
}

// Policy that rejects everything: pods must accumulate as never-scheduled.
class RejectAllPolicy : public PlacementPolicy {
 public:
  PlacementDecision Place(const PodSpec&, const AppProfile&,
                          const ClusterState&) override {
    return PlacementDecision::Reject(WaitReason::kInsufficientCpu);
  }
  std::string name() const override { return "RejectAll"; }
};

TEST(SimulatorTest, RejectAllLeavesEverythingPending) {
  const Workload w = TinyWorkload(4, 60);
  SimConfig config;
  config.enable_lsr_preemption = false;
  RejectAllPolicy policy;
  const SimResult result = Simulator(w, config, policy).Run();
  EXPECT_EQ(result.scheduled_pods, 0);
  EXPECT_GT(result.never_scheduled_pods, 0);
  EXPECT_FALSE(result.waits.empty());
  for (const auto& wait : result.waits) {
    EXPECT_EQ(wait.reason, WaitReason::kInsufficientCpu);
    EXPECT_GT(wait.waited_seconds, 0.0);
  }
}

// Policy that always picks host 0: forces memory oversubscription -> OOM.
class PackHostZeroPolicy : public PlacementPolicy {
 public:
  PlacementDecision Place(const PodSpec&, const AppProfile&,
                          const ClusterState&) override {
    return PlacementDecision::Accept(0);
  }
  std::string name() const override { return "PackZero"; }
};

TEST(SimulatorTest, MemoryOversubscriptionTriggersOomKills) {
  WorkloadConfig config;
  config.num_hosts = 2;
  config.horizon = 100;
  config.num_ls_apps = 2;
  config.num_lsr_apps = 1;
  config.num_be_apps = 4;
  config.num_system_apps = 0;
  config.num_vmenv_apps = 0;
  config.num_unknown_apps = 0;
  config.initial_ls_request_load = 4.0;  // far beyond one host
  config.seed = 3;
  const Workload w = WorkloadGenerator(config).Generate();
  SimConfig sim_config;
  sim_config.enable_lsr_preemption = false;
  PackHostZeroPolicy policy;
  const SimResult result = Simulator(w, sim_config, policy).Run();
  EXPECT_GT(result.oom_kills, 0);
}

TEST(SimulatorTest, LsrPreemptionEvictsBe) {
  // Fill one host with BE pods via first-fit, then submit an LSR pod that
  // does not fit by requests: preemption must evict BE and place it.
  WorkloadConfig config;
  config.num_hosts = 1;
  config.horizon = 50;
  config.num_ls_apps = 1;
  config.num_lsr_apps = 1;
  config.num_be_apps = 2;
  config.num_system_apps = 0;
  config.num_vmenv_apps = 0;
  config.num_unknown_apps = 0;
  config.initial_ls_request_load = 0.4;
  config.be_target_request_load = 3.0;  // saturate with BE
  config.seed = 5;
  const Workload w = WorkloadGenerator(config).Generate();
  SimConfig sim_config;  // preemption enabled by default
  FirstFitPolicy policy;
  const SimResult result = Simulator(w, sim_config, policy).Run();
  // LSR pods in this workload should mostly get scheduled.
  int lsr_scheduled = 0, lsr_total = 0;
  for (const auto& rec : result.trace.lifecycles) {
    if (rec.slo == SloClass::kLsr) {
      ++lsr_total;
      lsr_scheduled += rec.schedule_tick >= 0 ? 1 : 0;
    }
  }
  if (lsr_total > 0) {
    EXPECT_GT(lsr_scheduled, 0);
  }
  // Preemption may or may not fire depending on packing; this checks the
  // accounting does not go negative and the sim stays consistent.
  EXPECT_GE(result.preemptions, 0);
}

TEST(SimulatorTest, RunTwiceForbidden) {
  const Workload w = TinyWorkload(2, 10);
  SimConfig config;
  FirstFitPolicy policy;
  Simulator sim(w, config, policy);
  sim.Run();
  EXPECT_DEATH(sim.Run(), "once");
}

}  // namespace
}  // namespace optum
