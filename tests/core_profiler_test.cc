// Tests for src/core profiling: the ERO table, offline profiler extraction,
// memory-stability gate, MAPE gate, and the pairwise usage predictor
// arithmetic (Eq. 7-8).
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/ero_table.h"
#include "src/core/offline_profiler.h"
#include "src/core/resource_usage_predictor.h"
#include "src/sim/cluster.h"

namespace optum::core {
namespace {

TEST(EroTableTest, DefaultsToOne) {
  EroTable ero;
  EXPECT_DOUBLE_EQ(ero.Get(1, 2), 1.0);
  EXPECT_FALSE(ero.Contains(1, 2));
}

TEST(EroTableTest, KeepsMaximum) {
  EroTable ero;
  ero.Observe(1, 2, 0.3);
  EXPECT_DOUBLE_EQ(ero.Get(1, 2), 0.3);
  ero.Observe(1, 2, 0.5);
  EXPECT_DOUBLE_EQ(ero.Get(1, 2), 0.5);
  ero.Observe(1, 2, 0.2);
  EXPECT_DOUBLE_EQ(ero.Get(1, 2), 0.5);
}

TEST(EroTableTest, Symmetric) {
  EroTable ero;
  ero.Observe(3, 7, 0.4);
  EXPECT_DOUBLE_EQ(ero.Get(7, 3), 0.4);
  EXPECT_TRUE(ero.Contains(7, 3));
}

TEST(EroTableTest, ClampsToUnitInterval) {
  EroTable ero;
  ero.Observe(1, 1, 1.7);
  EXPECT_DOUBLE_EQ(ero.Get(1, 1), 1.0);
  ero.Observe(2, 2, -0.5);
  EXPECT_DOUBLE_EQ(ero.Get(2, 2), 0.0);
}

TEST(EroTableTest, SelfPairsSupported) {
  EroTable ero;
  ero.Observe(5, 5, 0.25);
  EXPECT_DOUBLE_EQ(ero.Get(5, 5), 0.25);
  EXPECT_EQ(ero.size(), 1u);
}

// --- Offline profiler on a hand-crafted trace --------------------------------

// Builds a trace with two apps co-located on one host:
//   app 0 (LS): 2 pods, request 0.2 CPU / 0.1 mem
//   app 1 (BE): 2 pods, request 0.1 CPU / 0.05 mem
TraceBundle CraftedTrace() {
  TraceBundle trace;
  trace.nodes.push_back(NodeMeta{0, kUnitResources});
  auto add_pod = [&](PodId id, AppId app, SloClass slo, Resources request) {
    PodMeta meta;
    meta.pod_id = id;
    meta.app_id = app;
    meta.slo = slo;
    meta.request = request;
    meta.limit = request * 2.0;
    meta.original_machine_id = 0;
    trace.pods.push_back(meta);
  };
  add_pod(0, 0, SloClass::kLs, {0.2, 0.1});
  add_pod(1, 0, SloClass::kLs, {0.2, 0.1});
  add_pod(2, 1, SloClass::kBe, {0.1, 0.05});
  add_pod(3, 1, SloClass::kBe, {0.1, 0.05});

  // 200 ticks of records; usage constant per pod.
  const double cpu[4] = {0.05, 0.06, 0.03, 0.02};
  const double mem[4] = {0.05, 0.05, 0.045, 0.045};
  for (Tick t = 0; t < 200; ++t) {
    double host_cpu = 0, host_mem = 0;
    for (int p = 0; p < 4; ++p) {
      host_cpu += cpu[p];
      host_mem += mem[p];
    }
    trace.node_usage.push_back(NodeUsageRecord{0, t, host_cpu, host_mem, 0, 0});
    for (int p = 0; p < 4; ++p) {
      PodUsageRecord rec;
      rec.pod_id = p;
      rec.host = 0;
      rec.collect_tick = t;
      rec.cpu_usage = cpu[p];
      rec.mem_usage = mem[p];
      rec.cpu_psi_60 = p < 2 ? 0.2 : 0.0;  // LS pods see some pressure
      rec.qps = p < 2 ? 100 : 0;
      trace.pod_usage.push_back(rec);
    }
  }
  // BE lifecycles.
  for (int p = 2; p < 4; ++p) {
    PodLifecycleRecord rec;
    rec.pod_id = p;
    rec.app_id = 1;
    rec.slo = SloClass::kBe;
    rec.submit_tick = 0;
    rec.schedule_tick = 0;
    rec.finish_tick = 100 + p;
    rec.actual_completion_ticks = 100 + p;
    rec.ideal_completion_ticks = 90;
    trace.lifecycles.push_back(rec);
  }
  return trace;
}

TEST(OfflineProfilerTest, EroFromCraftedTrace) {
  OfflineProfiler profiler;
  const EroTable ero = profiler.BuildEroTable(CraftedTrace());
  // Cross pair: reps are pod1 (0.06) and pod2 (0.03):
  // RO = (0.06+0.03)/(0.2+0.1) = 0.3.
  EXPECT_NEAR(ero.Get(0, 1), 0.3, 1e-9);
  // Same-app pair for app 0: (0.06+0.05)/0.4 = 0.275.
  EXPECT_NEAR(ero.Get(0, 0), 0.275, 1e-9);
  // Same-app pair for app 1: (0.03+0.02)/0.2 = 0.25.
  EXPECT_NEAR(ero.Get(1, 1), 0.25, 1e-9);
}

TEST(OfflineProfilerTest, ExtractsDatasetsWithCorrectShapes) {
  OfflineProfiler profiler;
  const AppDatasets datasets = profiler.ExtractDatasets(CraftedTrace());
  ASSERT_TRUE(datasets.ls.count(0));
  ASSERT_TRUE(datasets.be.count(1));
  const ml::Dataset& ls = datasets.ls.at(0);
  EXPECT_EQ(ls.num_features(), kLsFeatureCount);
  EXPECT_EQ(ls.size(), 400u);  // 2 pods x 200 ticks
  const ml::Dataset& be = datasets.be.at(1);
  EXPECT_EQ(be.num_features(), kBeFeatureCount);
  EXPECT_EQ(be.size(), 2u);  // one sample per completed pod
}

TEST(OfflineProfilerTest, AppStatsMaxima) {
  OfflineProfiler profiler;
  const AppDatasets datasets = profiler.ExtractDatasets(CraftedTrace());
  const AppStats& ls = datasets.stats.at(0);
  EXPECT_NEAR(ls.max_pod_cpu_util, 0.06 / 0.2, 1e-9);
  EXPECT_NEAR(ls.max_qps, 100, 1e-9);
  const AppStats& be = datasets.stats.at(1);
  EXPECT_NEAR(be.max_completion_ticks, 103, 1e-9);
}

TEST(OfflineProfilerTest, MemProfileGate) {
  OfflineProfiler profiler;
  const AppDatasets datasets = profiler.ExtractDatasets(CraftedTrace());
  // Both apps have perfectly stable memory: profile = max utilization.
  EXPECT_NEAR(datasets.stats.at(0).mem_profile, 0.05 / 0.1, 1e-9);
  EXPECT_NEAR(datasets.stats.at(1).mem_profile, 0.045 / 0.05, 1e-9);
}

TEST(OfflineProfilerTest, UnstableMemoryGetsConservativeProfile) {
  TraceBundle trace = CraftedTrace();
  // Make app 0's pods diverge in memory (CoV >> 0.01).
  for (auto& rec : trace.pod_usage) {
    if (rec.pod_id == 0) {
      rec.mem_usage = 0.02;
    } else if (rec.pod_id == 1) {
      rec.mem_usage = 0.09;
    }
  }
  OfflineProfiler profiler;
  const AppDatasets datasets = profiler.ExtractDatasets(trace);
  EXPECT_DOUBLE_EQ(datasets.stats.at(0).mem_profile, 1.0);
}

TEST(OfflineProfilerTest, BuildProfilesTrainsLsModel) {
  OfflineProfilerConfig config;
  config.min_samples = 50;
  config.evaluate_holdout = false;
  OfflineProfiler profiler(config);
  const OptumProfiles profiles = profiler.BuildProfiles(CraftedTrace());
  const AppModel* ls = profiles.Find(0);
  ASSERT_NE(ls, nullptr);
  EXPECT_TRUE(ls->usable());
  // Prediction near the constant 0.2 PSI (discretized to 0.2 with 25
  // buckets: bucket upper bound of 0.2 is 0.2).
  const double features[kLsFeatureCount] = {0.3, 0.5, 0.16, 0.19, 1.0};
  EXPECT_NEAR(ls->model->Predict(features), 0.2, 0.05);
}

TEST(OfflineProfilerTest, TooFewSamplesYieldsNoModel) {
  OfflineProfilerConfig config;
  config.min_samples = 10;  // BE app has only 2 samples
  OfflineProfiler profiler(config);
  const OptumProfiles profiles = profiler.BuildProfiles(CraftedTrace());
  const AppModel* be = profiles.Find(1);
  ASSERT_NE(be, nullptr);
  EXPECT_FALSE(be->usable());
  // Stats still available for the usage predictor.
  EXPECT_GT(be->stats.mem_profile, 0.0);
}

TEST(OfflineProfilerTest, UnknownAppAbsent) {
  OfflineProfiler profiler;
  const OptumProfiles profiles = profiler.BuildProfiles(CraftedTrace());
  EXPECT_EQ(profiles.Find(999), nullptr);
}

// --- ResourceUsagePredictor (Eq. 7-8) ----------------------------------------

class UsagePredictorFixture : public ::testing::Test {
 protected:
  UsagePredictorFixture() : cluster_(1, kUnitResources, 8) {
    app_a_.id = 0;
    app_a_.slo = SloClass::kLs;
    app_a_.request = {0.2, 0.1};
    app_b_.id = 1;
    app_b_.slo = SloClass::kBe;
    app_b_.request = {0.1, 0.05};

    profiles_.ero.Observe(0, 1, 0.4);
    profiles_.ero.Observe(0, 0, 0.3);
    AppModel model_a;
    model_a.stats.slo = SloClass::kLs;
    model_a.stats.mem_profile = 0.5;
    profiles_.apps.emplace(0, std::move(model_a));
    AppModel model_b;
    model_b.stats.slo = SloClass::kBe;
    model_b.stats.mem_profile = 0.9;
    profiles_.apps.emplace(1, std::move(model_b));
  }

  PodSpec Pod(PodId id, const AppProfile& app) {
    PodSpec pod;
    pod.id = id;
    pod.app = app.id;
    pod.slo = app.slo;
    pod.request = app.request;
    pod.limit = app.request * 2.0;
    return pod;
  }

  ClusterState cluster_;
  AppProfile app_a_, app_b_;
  OptumProfiles profiles_;
};

TEST_F(UsagePredictorFixture, EmptyHostWithIncomingIsFullRequest) {
  ResourceUsagePredictor predictor(&profiles_);
  const PodSpec pod = Pod(1, app_a_);
  const Resources predicted = predictor.PredictHost(cluster_.host(0), &pod);
  // Single (odd) pod: full CPU request; memory via profile 0.5.
  EXPECT_NEAR(predicted.cpu, 0.2, 1e-12);
  EXPECT_NEAR(predicted.mem, 0.05, 1e-12);
}

TEST_F(UsagePredictorFixture, PairUsesEro) {
  cluster_.Place(Pod(1, app_a_), &app_a_, 0, 0);
  ResourceUsagePredictor predictor(&profiles_);
  const PodSpec incoming = Pod(2, app_b_);
  const Resources predicted = predictor.PredictHost(cluster_.host(0), &incoming);
  // Pair (A,B): ERO 0.4 * (0.2 + 0.1) = 0.12.
  EXPECT_NEAR(predicted.cpu, 0.12, 1e-12);
  // Memory: 0.5*0.1 + 0.9*0.05.
  EXPECT_NEAR(predicted.mem, 0.095, 1e-12);
}

TEST_F(UsagePredictorFixture, OddPodContributesFullRequest) {
  cluster_.Place(Pod(1, app_a_), &app_a_, 0, 0);
  cluster_.Place(Pod(2, app_a_), &app_a_, 0, 0);
  ResourceUsagePredictor predictor(&profiles_);
  const PodSpec incoming = Pod(3, app_b_);
  const Resources predicted = predictor.PredictHost(cluster_.host(0), &incoming);
  // Pair (A,A): 0.3 * 0.4 = 0.12; odd B: 0.1 full.
  EXPECT_NEAR(predicted.cpu, 0.22, 1e-12);
}

TEST_F(UsagePredictorFixture, UnknownPairDefaultsToFullRequests) {
  AppProfile stranger;
  stranger.id = 42;
  stranger.slo = SloClass::kBe;
  stranger.request = {0.3, 0.1};
  cluster_.Place(Pod(1, stranger), &stranger, 0, 0);
  ResourceUsagePredictor predictor(&profiles_);
  const PodSpec incoming = Pod(2, app_a_);
  const Resources predicted = predictor.PredictHost(cluster_.host(0), &incoming);
  // ERO(42, 0) unseen -> 1.0: full 0.3 + 0.2.
  EXPECT_NEAR(predicted.cpu, 0.5, 1e-12);
  // Unknown app memory profile defaults to 1.0.
  EXPECT_NEAR(predicted.mem, 0.1 + 0.05, 1e-12);
}

TEST_F(UsagePredictorFixture, PredictWithoutIncoming) {
  cluster_.Place(Pod(1, app_a_), &app_a_, 0, 0);
  cluster_.Place(Pod(2, app_b_), &app_b_, 0, 0);
  ResourceUsagePredictor predictor(&profiles_);
  const Resources predicted = predictor.PredictHost(cluster_.host(0), nullptr);
  EXPECT_NEAR(predicted.cpu, 0.4 * 0.3, 1e-12);
}

TEST_F(UsagePredictorFixture, PocNeverExceedsRequestSum) {
  // Property: with all ERO <= 1, POC <= sum of requests (Eq. 3).
  cluster_.Place(Pod(1, app_a_), &app_a_, 0, 0);
  cluster_.Place(Pod(2, app_b_), &app_b_, 0, 0);
  cluster_.Place(Pod(3, app_a_), &app_a_, 0, 0);
  ResourceUsagePredictor predictor(&profiles_);
  const PodSpec incoming = Pod(4, app_b_);
  const Resources predicted = predictor.PredictHost(cluster_.host(0), &incoming);
  const double request_sum = 0.2 + 0.1 + 0.2 + 0.1;
  EXPECT_LE(predicted.cpu, request_sum + 1e-12);
}

TEST_F(UsagePredictorFixture, AdapterMatchesImpl) {
  cluster_.Place(Pod(1, app_a_), &app_a_, 0, 0);
  OptumUsagePredictorAdapter adapter(&profiles_);
  ResourceUsagePredictor impl(&profiles_);
  EXPECT_DOUBLE_EQ(adapter.PredictHostCpu(cluster_.host(0)),
                   impl.PredictHost(cluster_.host(0), nullptr).cpu);
  EXPECT_EQ(adapter.name(), "Optum");
}

}  // namespace
}  // namespace optum::core
