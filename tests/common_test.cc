// Tests for src/common: resource vectors, SLO classes, thread pool, and the
// table printer.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <string>

#include "src/common/table_printer.h"
#include "src/common/thread_pool.h"
#include "src/common/types.h"

namespace optum {
namespace {

TEST(ResourcesTest, ArithmeticOperators) {
  const Resources a{0.5, 0.25};
  const Resources b{0.25, 0.5};
  EXPECT_EQ(a + b, (Resources{0.75, 0.75}));
  EXPECT_EQ(a - b, (Resources{0.25, -0.25}));
  EXPECT_EQ(a * 2.0, (Resources{1.0, 0.5}));
}

TEST(ResourcesTest, CompoundAssignment) {
  Resources r{0.1, 0.2};
  r += Resources{0.2, 0.3};
  EXPECT_DOUBLE_EQ(r.cpu, 0.3);
  EXPECT_DOUBLE_EQ(r.mem, 0.5);
  r -= Resources{0.1, 0.1};
  EXPECT_NEAR(r.cpu, 0.2, 1e-12);
  EXPECT_NEAR(r.mem, 0.4, 1e-12);
}

TEST(ResourcesTest, FitsWithinIsComponentWise) {
  const Resources cap{1.0, 1.0};
  EXPECT_TRUE((Resources{0.5, 0.5}).FitsWithin(cap));
  EXPECT_TRUE((Resources{1.0, 1.0}).FitsWithin(cap));
  EXPECT_FALSE((Resources{1.1, 0.2}).FitsWithin(cap));
  EXPECT_FALSE((Resources{0.2, 1.1}).FitsWithin(cap));
}

TEST(ResourcesTest, DotProduct) {
  EXPECT_DOUBLE_EQ((Resources{2.0, 3.0}).Dot(Resources{4.0, 5.0}), 23.0);
  EXPECT_DOUBLE_EQ(kZeroResources.Dot(Resources{1.0, 1.0}), 0.0);
}

TEST(ResourcesTest, Clamped) {
  const Resources r{-0.5, 1.5};
  const Resources c = r.Clamped(0.0, 1.0);
  EXPECT_DOUBLE_EQ(c.cpu, 0.0);
  EXPECT_DOUBLE_EQ(c.mem, 1.0);
}

TEST(ResourcesTest, MaxIsComponentWise) {
  const Resources m = Resources{0.2, 0.8}.Max(Resources{0.5, 0.1});
  EXPECT_DOUBLE_EQ(m.cpu, 0.5);
  EXPECT_DOUBLE_EQ(m.mem, 0.8);
}

TEST(ResourcesTest, ToStringContainsBothDimensions) {
  const std::string s = Resources{0.25, 0.75}.ToString();
  EXPECT_NE(s.find("0.25"), std::string::npos);
  EXPECT_NE(s.find("0.75"), std::string::npos);
}

TEST(SloClassTest, ToStringRoundTrip) {
  EXPECT_STREQ(ToString(SloClass::kBe), "BE");
  EXPECT_STREQ(ToString(SloClass::kLs), "LS");
  EXPECT_STREQ(ToString(SloClass::kLsr), "LSR");
  EXPECT_STREQ(ToString(SloClass::kSystem), "SYSTEM");
  EXPECT_STREQ(ToString(SloClass::kVmEnv), "VMEnv");
  EXPECT_STREQ(ToString(SloClass::kUnknown), "Unknown");
}

TEST(SloClassTest, LatencySensitiveClasses) {
  EXPECT_TRUE(IsLatencySensitive(SloClass::kLs));
  EXPECT_TRUE(IsLatencySensitive(SloClass::kLsr));
  EXPECT_FALSE(IsLatencySensitive(SloClass::kBe));
  EXPECT_FALSE(IsLatencySensitive(SloClass::kSystem));
  EXPECT_FALSE(IsLatencySensitive(SloClass::kUnknown));
}

TEST(SloClassTest, SchedulingPriorityOrdering) {
  // LSR > LS > BE (paper §3.1.3: LSR can preempt BE).
  EXPECT_GT(SchedulingPriority(SloClass::kLsr), SchedulingPriority(SloClass::kLs));
  EXPECT_GT(SchedulingPriority(SloClass::kLs), SchedulingPriority(SloClass::kBe));
}

TEST(TickConstantsTest, DayArithmetic) {
  EXPECT_EQ(kTicksPerDay, 24 * kTicksPerHour);
  EXPECT_EQ(kTicksPerHour, 60 * kTicksPerMinute);
  EXPECT_DOUBLE_EQ(kSecondsPerTick * kTicksPerMinute, 60.0);
}

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, ReusableAcrossRounds) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(50, [&counter](size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 250);
}

TEST(TablePrinterTest, FormatsAlignedColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({std::string("a"), std::string("1")});
  table.AddRow({1.23456789, 2.0}, 4);
  // Render to a memory stream.
  char* buffer = nullptr;
  size_t size = 0;
  FILE* mem = open_memstream(&buffer, &size);
  ASSERT_NE(mem, nullptr);
  table.Print(mem);
  std::fclose(mem);
  const std::string out(buffer, size);
  free(buffer);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("1.235"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, FormatDoubleCompact) {
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(1234.5678, 6), "1234.57");
  EXPECT_EQ(FormatDouble(0.000012, 2), "1.2e-05");
}

}  // namespace
}  // namespace optum
