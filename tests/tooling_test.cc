// Tests for the tooling layer: command-line flag parsing, the trace
// analysis helpers used by tools/trace_summary and tools/runsim, and the
// shared JSONL reader behind slo_report / series_plot / profile_report.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/obs/json_reader.h"
#include "src/sched/baselines.h"
#include "src/sim/simulator.h"
#include "src/trace/trace_stats.h"
#include "src/trace/workload_generator.h"

namespace optum {
namespace {

// --- ForEachJsonlRow -----------------------------------------------------------

std::string WriteTempFile(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr) << path;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return path;
}

TEST(ForEachJsonlRowTest, MissingFileIsAnError) {
  const std::string err = obs::ForEachJsonlRow(
      "/nonexistent/rows.jsonl", "optum.series.v1",
      [](const obs::JsonValue&) { FAIL() << "row on missing file"; });
  EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

TEST(ForEachJsonlRowTest, EmptyFileIsAnError) {
  const std::string path = WriteTempFile("jsonl_empty.jsonl", "");
  const std::string err = obs::ForEachJsonlRow(
      path, "optum.series.v1",
      [](const obs::JsonValue&) { FAIL() << "row on empty file"; });
  std::remove(path.c_str());
  EXPECT_NE(err.find("is empty"), std::string::npos) << err;
}

TEST(ForEachJsonlRowTest, SchemaMismatchIsAnError) {
  const std::string path = WriteTempFile(
      "jsonl_wrong_schema.jsonl", "{\"schema\":\"optum.spans.v1\"}\n");
  const std::string err = obs::ForEachJsonlRow(
      path, "optum.series.v1",
      [](const obs::JsonValue&) { FAIL() << "row on wrong schema"; });
  std::remove(path.c_str());
  EXPECT_NE(err.find("is not an optum.series.v1 stream"), std::string::npos)
      << err;
}

TEST(ForEachJsonlRowTest, HeaderOnlyStreamSucceedsWithZeroRows) {
  // Zero data rows is the caller's call: a hotspot stream with no episodes
  // is a valid export, so the reader reports it via stats instead of
  // failing.
  const std::string path = WriteTempFile(
      "jsonl_header_only.jsonl", "{\"schema\":\"optum.hotspot.v1\"}\n");
  obs::JsonlReadStats stats;
  const std::string err = obs::ForEachJsonlRow(
      path, "optum.hotspot.v1",
      [](const obs::JsonValue&) { FAIL() << "row on header-only file"; },
      &stats);
  std::remove(path.c_str());
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(stats.data_rows, 0);
}

TEST(ForEachJsonlRowTest, FinalLineWithoutNewlineIsProcessed) {
  // A complete last line missing its '\n' (writer killed between the line
  // and the newline) must still reach the callback — never a silent drop.
  const std::string path = WriteTempFile(
      "jsonl_no_trailing_newline.jsonl",
      "{\"schema\":\"optum.series.v1\"}\n{\"tick\":0}\n{\"tick\":1}");
  obs::JsonlReadStats stats;
  std::vector<int64_t> ticks;
  const std::string err = obs::ForEachJsonlRow(
      path, "optum.series.v1",
      [&](const obs::JsonValue& row) {
        ticks.push_back(row.Find("tick")->AsInt());
      },
      &stats);
  std::remove(path.c_str());
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(stats.data_rows, 2);
  EXPECT_EQ(ticks, (std::vector<int64_t>{0, 1}));
}

TEST(ForEachJsonlRowTest, TruncatedFinalLineIsAParseError) {
  const std::string path = WriteTempFile(
      "jsonl_truncated.jsonl",
      "{\"schema\":\"optum.series.v1\"}\n{\"tick\":0}\n{\"tick\":1,\"gau");
  obs::JsonlReadStats stats;
  const std::string err = obs::ForEachJsonlRow(
      path, "optum.series.v1", [](const obs::JsonValue&) {}, &stats);
  std::remove(path.c_str());
  EXPECT_FALSE(err.empty());
  EXPECT_NE(err.find(path), std::string::npos) << err;
  EXPECT_EQ(stats.data_rows, 1);  // the good row before the truncation
}

TEST(ForEachJsonlRowTest, BlankAndCrlfLinesAreTolerated) {
  const std::string path = WriteTempFile(
      "jsonl_crlf.jsonl",
      "{\"schema\":\"optum.series.v1\"}\r\n\r\n{\"tick\":5}\r\n\n");
  obs::JsonlReadStats stats;
  int64_t last_tick = -1;
  const std::string err = obs::ForEachJsonlRow(
      path, "optum.series.v1",
      [&](const obs::JsonValue& row) {
        last_tick = row.Find("tick")->AsInt();
      },
      &stats);
  std::remove(path.c_str());
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(stats.data_rows, 1);
  EXPECT_EQ(last_tick, 5);
}

// --- FlagParser ----------------------------------------------------------------

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return argv;
}

TEST(FlagParserTest, EqualsForm) {
  FlagParser flags;
  const auto argv = Argv({"--hosts=64", "--name=optum"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(flags.GetInt("hosts", 0), 64);
  EXPECT_EQ(flags.GetString("name", ""), "optum");
}

TEST(FlagParserTest, SpaceForm) {
  FlagParser flags;
  const auto argv = Argv({"--hosts", "128", "--rate", "0.25"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(flags.GetInt("hosts", 0), 128);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0), 0.25);
}

TEST(FlagParserTest, BooleanSwitches) {
  FlagParser flags;
  const auto argv = Argv({"--verbose", "--dry-run", "--enabled=false"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.GetBool("dry-run", false));
  EXPECT_FALSE(flags.GetBool("enabled", true));
  EXPECT_FALSE(flags.GetBool("absent", false));
  EXPECT_TRUE(flags.GetBool("absent", true));
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser flags;
  const auto argv = Argv({"input.csv", "--out", "dir", "more"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "more");
  EXPECT_EQ(flags.GetString("out", ""), "dir");
}

TEST(FlagParserTest, MalformedNumbersFallBackToDefault) {
  FlagParser flags;
  const auto argv = Argv({"--hosts=abc", "--rate=1.5x"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(flags.GetInt("hosts", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.5), 0.5);
}

TEST(FlagParserTest, EmptyFlagNameRejected) {
  FlagParser flags;
  const auto argv = Argv({"--"});
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagParserTest, LastValueWins) {
  FlagParser flags;
  const auto argv = Argv({"--x=1", "--x=2"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(flags.GetInt("x", 0), 2);
}

// --- Trace stats ----------------------------------------------------------------

class TraceStatsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.num_hosts = 16;
    config.horizon = 240;
    config.seed = 5;
    workload_ = new Workload(WorkloadGenerator(config).Generate());
    AlibabaBaseline scheduler;
    SimConfig sim_config;
    sim_config.pod_usage_period = 4;
    result_ = new SimResult(Simulator(*workload_, sim_config, scheduler).Run());
  }
  static void TearDownTestSuite() {
    delete result_;
    delete workload_;
    result_ = nullptr;
    workload_ = nullptr;
  }
  static Workload* workload_;
  static SimResult* result_;
};

Workload* TraceStatsTest::workload_ = nullptr;
SimResult* TraceStatsTest::result_ = nullptr;

TEST_F(TraceStatsTest, PodIndexResolvesEveryPod) {
  const PodIndex index(result_->trace);
  for (const PodMeta& meta : result_->trace.pods) {
    const PodMeta* found = index.Find(meta.pod_id);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->app_id, meta.app_id);
    EXPECT_EQ(index.SloOf(meta.pod_id), meta.slo);
  }
  EXPECT_EQ(index.Find(999999), nullptr);
  EXPECT_EQ(index.SloOf(999999), SloClass::kUnknown);
}

TEST_F(TraceStatsTest, HostUsageIndexMatchesRecords) {
  const HostUsageIndex index(result_->trace);
  int checked = 0;
  for (const NodeUsageRecord& rec : result_->trace.node_usage) {
    const NodeUsageRecord* found = index.Find(rec.machine_id, rec.collect_tick);
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->cpu_usage, rec.cpu_usage);
    if (++checked > 500) {
      break;
    }
  }
  EXPECT_EQ(index.Find(0, 999999), nullptr);
}

TEST_F(TraceStatsTest, SummaryCountsConsistent) {
  const TraceSummary summary = Summarize(result_->trace);
  EXPECT_EQ(summary.hosts, 16);
  int64_t class_pods = 0;
  for (const ClassSummary& c : summary.classes) {
    class_pods += c.pods;
    EXPECT_GE(c.pods, c.scheduled >= c.pods ? c.pods : 0);  // sched <= pods
    EXPECT_LE(c.finished, c.scheduled);
  }
  EXPECT_EQ(class_pods, summary.pods);
  EXPECT_GE(summary.max_host_cpu, summary.mean_host_cpu);
  EXPECT_GT(summary.last_tick, summary.first_tick);
}

TEST_F(TraceStatsTest, RenderSummaryMentionsEveryActiveClass) {
  const std::string report = RenderSummary(Summarize(result_->trace));
  EXPECT_NE(report.find("BE"), std::string::npos);
  EXPECT_NE(report.find("LS"), std::string::npos);
  EXPECT_NE(report.find("host utilization"), std::string::npos);
}

TEST_F(TraceStatsTest, WaitingTimeCdfPerClass) {
  const EmpiricalCdf be = WaitingTimeCdf(result_->trace, SloClass::kBe);
  EXPECT_FALSE(be.empty());
  EXPECT_GE(be.min(), 0.0);
  const EmpiricalCdf system_cdf = WaitingTimeCdf(result_->trace, SloClass::kSystem);
  // System pods exist in the workload, so they have lifecycle records.
  EXPECT_FALSE(system_cdf.empty());
}

}  // namespace
}  // namespace optum
