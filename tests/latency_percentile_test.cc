// Property tests for the serve-layer latency estimators (src/serve/latency):
// the exact ring and the streaming geometric-bucket histogram must agree —
// within the histogram's documented error contract — on adversarial
// distributions (bimodal with an empty gap, heavy tail, constant), and
// merged per-shard histograms must produce bit-identical percentiles for
// every merge order. Runs under the sanitizer presets via the `concurrency`
// label (tools/sanitize_runner.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/serve/latency.h"
#include "src/stats/rng.h"

namespace optum::serve {
namespace {

// The shared percentile definition (nearest-rank order statistic), computed
// directly: ground truth for both estimators.
double NearestRank(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double fraction = std::clamp(q, 0.0, 100.0) / 100.0;
  const size_t rank = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(fraction * static_cast<double>(values.size()))));
  return values[std::min(rank, values.size()) - 1];
}

// Asserts the histogram's estimate of q honors the documented contract
// against the true nearest-rank value of `samples`.
void ExpectWithinContract(const LatencyHistogram& hist,
                          const std::vector<double>& samples, double q) {
  const LatencyHistogram::Options& opt = hist.options();
  const double truth = NearestRank(samples, q);
  const double estimate = hist.Percentile(q);
  const double range_max =
      opt.min_value * std::pow(opt.growth, static_cast<double>(opt.num_buckets));
  if (truth < opt.min_value) {
    // Underflow bucket: estimated as exactly 0.0 (abs error <= min_value).
    EXPECT_EQ(estimate, 0.0) << "q=" << q << " truth=" << truth;
  } else if (truth >= range_max) {
    // Overflow: clamps to the range edge.
    EXPECT_EQ(estimate, range_max) << "q=" << q << " truth=" << truth;
  } else {
    // In range: relative error at most sqrt(growth) - 1 (plus fp slop for
    // samples landing exactly on a bucket edge).
    const double bound = std::sqrt(opt.growth) - 1.0 + 1e-9;
    EXPECT_NEAR(estimate / truth, 1.0, bound) << "q=" << q << " truth=" << truth;
  }
}

void ExpectContractAtStandardQuantiles(const LatencyHistogram& hist,
                                       const std::vector<double>& samples) {
  for (const double q : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    ExpectWithinContract(hist, samples, q);
  }
}

TEST(ExactLatencyRingTest, NearestRankDefinition) {
  ExactLatencyRing ring(16);
  for (const double v : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    ring.Record(v);
  }
  EXPECT_EQ(ring.count(), 5);
  EXPECT_EQ(ring.retained(), 5u);
  EXPECT_EQ(ring.Percentile(0.0), 1.0);    // rank clamps to 1
  EXPECT_EQ(ring.Percentile(50.0), 3.0);   // ceil(2.5) = 3rd smallest
  EXPECT_EQ(ring.Percentile(60.0), 3.0);   // ceil(3.0) = 3rd smallest
  EXPECT_EQ(ring.Percentile(61.0), 4.0);   // ceil(3.05) = 4th
  EXPECT_EQ(ring.Percentile(99.0), 5.0);
  EXPECT_EQ(ring.Percentile(100.0), 5.0);
}

TEST(ExactLatencyRingTest, RetainsOnlyTheLatestWindow) {
  ExactLatencyRing ring(4);
  for (int i = 1; i <= 8; ++i) {
    ring.Record(static_cast<double>(i));
  }
  EXPECT_EQ(ring.count(), 8);
  EXPECT_EQ(ring.retained(), 4u);
  // Window is {5,6,7,8}: p50 = ceil(2) = 2nd smallest.
  EXPECT_EQ(ring.Percentile(50.0), 6.0);
  EXPECT_EQ(ring.Percentile(100.0), 8.0);
}

TEST(ExactLatencyRingTest, EmptyReturnsZero) {
  ExactLatencyRing ring(8);
  EXPECT_EQ(ring.Percentile(50.0), 0.0);
  EXPECT_EQ(ring.count(), 0);
}

TEST(LatencyHistogramTest, ConstantDistribution) {
  LatencyHistogram hist;
  std::vector<double> samples(1000, 7.7);
  for (const double v : samples) {
    hist.Record(v);
  }
  EXPECT_EQ(hist.count(), 1000);
  EXPECT_EQ(hist.max_recorded(), 7.7);
  ExpectContractAtStandardQuantiles(hist, samples);
}

// Bimodal with a five-decade empty gap between the modes: the adversarial
// case for interpolating estimators (any interpolation across the gap lands
// far from every sample) — nearest-rank stays inside one mode by
// construction, so the bucket contract must hold at every quantile.
TEST(LatencyHistogramTest, BimodalWithEmptyGap) {
  LatencyHistogram hist;
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    samples.push_back(0.001);  // below min_value: underflow mode
  }
  for (int i = 0; i < 500; ++i) {
    samples.push_back(1000.0);
  }
  for (const double v : samples) {
    hist.Record(v);
  }
  ExpectContractAtStandardQuantiles(hist, samples);
  // p50 lands in the underflow mode (rank 500 of 1000), p51 in the upper.
  EXPECT_EQ(hist.Percentile(50.0), 0.0);
  EXPECT_NEAR(hist.Percentile(51.0) / 1000.0, 1.0, std::sqrt(1.05) - 1.0 + 1e-9);
}

TEST(LatencyHistogramTest, HeavyTailPareto) {
  LatencyHistogram hist;
  Rng rng(1234);
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(rng.Pareto(2.0, 1.2));  // alpha 1.2: very heavy tail
    hist.Record(samples.back());
  }
  ExpectContractAtStandardQuantiles(hist, samples);
}

TEST(LatencyHistogramTest, LogNormalSpread) {
  LatencyHistogram hist;
  Rng rng(99);
  std::vector<double> samples;
  for (int i = 0; i < 10000; ++i) {
    samples.push_back(rng.LogNormal(std::log(30.0), 2.0));
    hist.Record(samples.back());
  }
  ExpectContractAtStandardQuantiles(hist, samples);
}

TEST(LatencyHistogramTest, UnderflowAndOverflowEdges) {
  LatencyHistogram::Options opt;
  opt.min_value = 0.5;
  opt.growth = 1.1;
  opt.num_buckets = 64;
  LatencyHistogram hist(opt);
  const double range_max = 0.5 * std::pow(1.1, 64.0);
  hist.Record(-3.0);      // negative: underflow
  hist.Record(0.0);       // zero queue wait: underflow
  hist.Record(1e9);       // far past the range: overflow
  hist.Record(std::nan(""));  // dropped entirely
  EXPECT_EQ(hist.count(), 3);
  EXPECT_EQ(hist.Percentile(1.0), 0.0);
  EXPECT_EQ(hist.Percentile(100.0), range_max);
  EXPECT_EQ(hist.max_recorded(), 1e9);  // max tracks the true value
}

// Merging per-shard histograms is integer-count addition, so every merge
// order must yield bit-identical percentiles — the property that makes the
// serve layer's p999 independent of shard iteration order.
TEST(LatencyHistogramTest, MergeOrderInvariance) {
  constexpr size_t kShards = 8;
  std::vector<LatencyHistogram> shards(kShards);
  Rng rng(7);
  for (int i = 0; i < 40000; ++i) {
    shards[static_cast<size_t>(i) % kShards].Record(
        rng.LogNormal(std::log(5.0), 1.5));
  }

  std::vector<size_t> order(kShards);
  std::iota(order.begin(), order.end(), size_t{0});
  const auto merge_in = [&](const std::vector<size_t>& sequence) {
    LatencyHistogram merged;
    for (const size_t s : sequence) {
      merged.Merge(shards[s]);
    }
    return merged;
  };

  const LatencyHistogram forward = merge_in(order);
  std::reverse(order.begin(), order.end());
  const LatencyHistogram reverse = merge_in(order);
  // A few deterministic shuffles via rotation + interleave.
  std::rotate(order.begin(), order.begin() + 3, order.end());
  const LatencyHistogram rotated = merge_in(order);

  EXPECT_EQ(forward.count(), 40000);
  for (const double q : {50.0, 90.0, 99.0, 99.9, 100.0}) {
    const double reference = forward.Percentile(q);
    EXPECT_EQ(reference, reverse.Percentile(q)) << "q=" << q;
    EXPECT_EQ(reference, rotated.Percentile(q)) << "q=" << q;
  }
  EXPECT_EQ(forward.max_recorded(), reverse.max_recorded());
  EXPECT_EQ(forward.max_recorded(), rotated.max_recorded());

  // Pairwise (tree) merging — associativity, not just commutativity.
  LatencyHistogram left, right;
  for (size_t s = 0; s < kShards / 2; ++s) {
    left.Merge(shards[s]);
  }
  for (size_t s = kShards / 2; s < kShards; ++s) {
    right.Merge(shards[s]);
  }
  left.Merge(right);
  for (const double q : {50.0, 99.0, 99.9}) {
    EXPECT_EQ(left.Percentile(q), forward.Percentile(q)) << "q=" << q;
  }
}

// The merged histogram must agree with one histogram fed the full stream:
// sharding the recording is invisible to the percentiles.
TEST(LatencyHistogramTest, ShardedRecordingEqualsUnsharded) {
  LatencyHistogram whole;
  std::vector<LatencyHistogram> shards(4);
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Pareto(1.0, 1.5);
    whole.Record(v);
    shards[static_cast<size_t>(i) % 4].Record(v);
  }
  LatencyHistogram merged;
  for (const LatencyHistogram& s : shards) {
    merged.Merge(s);
  }
  EXPECT_EQ(merged.count(), whole.count());
  for (const double q : {1.0, 50.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(merged.Percentile(q), whole.Percentile(q)) << "q=" << q;
  }
  EXPECT_EQ(merged.max_recorded(), whole.max_recorded());
}

TEST(LatencyRowTest, RenderIsDeterministic) {
  LatencyRow row;
  row.hosts = 6000;
  row.shards = 4;
  row.offered_pods_per_sec = 3000.0;
  row.rounds = 20;
  row.arrivals = 60000;
  row.admitted = 58000;
  row.rejected_full = 2000;
  row.placed = 57000;
  row.dropped = 1000;
  row.conflicts = 123;
  row.latency_s_p50 = 0.0;
  row.latency_s_p99 = 2.5;
  row.latency_s_p999 = 6.125;
  row.latency_s_max = 9.0;
  row.latency_s_mean = 0.75;
  const std::string line = RenderLatencyRow(row);
  EXPECT_EQ(line, RenderLatencyRow(row));
  EXPECT_NE(line.find("\"latency_s_p999\":6.125"), std::string::npos) << line;
  EXPECT_NE(line.find("\"process\":\"poisson\""), std::string::npos) << line;
  EXPECT_NE(RenderLatencyHeader().find("optum.latency.v1"), std::string::npos);
}

}  // namespace
}  // namespace optum::serve
