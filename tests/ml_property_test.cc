// Property-based sweeps over the ML layer.
#include <gtest/gtest.h>

#include <cmath>

#include "src/ml/decision_tree.h"
#include "src/ml/linear.h"
#include "src/ml/metrics.h"
#include "src/ml/random_forest.h"
#include "src/ml/svr.h"
#include "src/stats/descriptive.h"
#include "src/stats/rng.h"

namespace optum::ml {
namespace {

Dataset RandomDataset(uint64_t seed, size_t n, size_t features) {
  Rng rng(seed);
  Dataset d(features);
  std::vector<double> x(features);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : x) {
      v = rng.Uniform(-2, 2);
    }
    double y = rng.Gaussian(0, 0.1);
    for (size_t f = 0; f < features; ++f) {
      y += (f % 2 == 0 ? 1.0 : -0.5) * x[f];
    }
    d.Add(x, y);
  }
  return d;
}

class MlPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MlPropertySweep, TreePredictionsWithinTargetRange) {
  // A regression tree averages training targets: predictions can never
  // leave the observed target range.
  const Dataset d = RandomDataset(GetParam(), 300, 3);
  const double lo = Min(d.targets());
  const double hi = Max(d.targets());
  DecisionTreeRegressor tree(TreeParams{}, GetParam());
  tree.Fit(d);
  Rng rng(GetParam() + 99);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x = {rng.Uniform(-5, 5), rng.Uniform(-5, 5),
                                   rng.Uniform(-5, 5)};
    const double pred = tree.Predict(x);
    EXPECT_GE(pred, lo - 1e-9);
    EXPECT_LE(pred, hi + 1e-9);
  }
}

TEST_P(MlPropertySweep, ForestPredictionsWithinTargetRange) {
  const Dataset d = RandomDataset(GetParam(), 200, 2);
  const double lo = Min(d.targets());
  const double hi = Max(d.targets());
  RandomForestRegressor forest([]{ ForestParams p; p.num_trees = 8; return p; }(), GetParam());
  forest.Fit(d);
  Rng rng(GetParam() + 7);
  for (int i = 0; i < 30; ++i) {
    const std::vector<double> x = {rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const double pred = forest.Predict(x);
    EXPECT_GE(pred, lo - 1e-9);
    EXPECT_LE(pred, hi + 1e-9);
  }
}

TEST_P(MlPropertySweep, RidgeShrinkageMonotonicInAlpha) {
  const Dataset d = RandomDataset(GetParam(), 150, 3);
  double prev_norm = 1e18;
  for (double alpha : {0.0, 1.0, 10.0, 100.0, 1000.0}) {
    RidgeRegressor ridge(alpha);
    ridge.Fit(d);
    double norm = 0.0;
    for (double w : ridge.weights()) {
      norm += w * w;
    }
    EXPECT_LE(norm, prev_norm + 1e-9);
    prev_norm = norm;
  }
}

TEST_P(MlPropertySweep, LinearFitResidualsOrthogonalToFeatures) {
  // Normal equations: residuals are orthogonal to every feature column.
  const Dataset d = RandomDataset(GetParam(), 120, 2);
  LinearRegressor lr;
  lr.Fit(d);
  double dot0 = 0, dot1 = 0, sum = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    const double r = d.Target(i) - lr.Predict(d.Features(i));
    dot0 += r * d.Features(i)[0];
    dot1 += r * d.Features(i)[1];
    sum += r;
  }
  EXPECT_NEAR(dot0, 0.0, 1e-6);
  EXPECT_NEAR(dot1, 0.0, 1e-6);
  EXPECT_NEAR(sum, 0.0, 1e-6);  // intercept column
}

TEST_P(MlPropertySweep, MapeZeroIffExact) {
  const Dataset d = RandomDataset(GetParam(), 40, 1);
  std::vector<double> truth(d.targets().begin(), d.targets().end());
  EXPECT_DOUBLE_EQ(Mape(truth, truth), 0.0);
  std::vector<double> off(truth);
  off[0] += 1.0;
  EXPECT_GT(Mape(truth, off), 0.0);
}

TEST_P(MlPropertySweep, RSquaredNeverExceedsOneForFittedModels) {
  const Dataset d = RandomDataset(GetParam(), 100, 2);
  LinearRegressor lr;
  lr.Fit(d);
  const double r2 = RSquared(d.targets(), PredictAll(lr, d));
  EXPECT_LE(r2, 1.0 + 1e-12);
  EXPECT_GE(r2, 0.0);  // OLS cannot do worse than the mean on train data
}

TEST_P(MlPropertySweep, PredictBatchAgreesWithPredictAcrossFamilies) {
  // The batch interface is a pure re-layering: for every family (compiled
  // forest kernel or default loop), PredictBatch over the dataset must
  // reproduce per-row Predict bit-for-bit.
  const Dataset d = RandomDataset(GetParam(), 150, 3);
  for (const RegressorKind kind :
       {RegressorKind::kLinear, RegressorKind::kRidge, RegressorKind::kRandomForest,
        RegressorKind::kMlp, RegressorKind::kSvr}) {
    auto model = MakeRegressor(kind, GetParam());
    model->Fit(d);
    const std::vector<double> batched = PredictAll(*model, d);
    ASSERT_EQ(batched.size(), d.size());
    for (size_t i = 0; i < d.size(); ++i) {
      EXPECT_EQ(batched[i], model->Predict(d.Features(i))) << ToString(kind);
    }
  }
}

TEST_P(MlPropertySweep, BootstrapDrawsFromOriginalRows) {
  const Dataset d = RandomDataset(GetParam(), 50, 1);
  Rng rng(GetParam() + 3);
  const Dataset b = d.Bootstrap(rng);
  // Every bootstrap target must exist in the original target multiset.
  std::vector<double> originals(d.targets().begin(), d.targets().end());
  std::sort(originals.begin(), originals.end());
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_TRUE(std::binary_search(originals.begin(), originals.end(), b.Target(i)));
  }
}

TEST_P(MlPropertySweep, SvrDeterministicPerSeed) {
  const Dataset d = RandomDataset(GetParam(), 200, 2);
  LinearSvr a(SvrParams{}, 5), b(SvrParams{}, 5);
  a.Fit(d);
  b.Fit(d);
  const std::vector<double> x = {0.3, -0.7};
  EXPECT_DOUBLE_EQ(a.Predict(x), b.Predict(x));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlPropertySweep, ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace optum::ml
