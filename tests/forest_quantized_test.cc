// Quantized compiled-forest suite (DESIGN.md §10): the float32-threshold
// layout is NOT bit-identical to exact mode — it may flip a branch when a
// row lies between a threshold and that threshold's float rounding — so its
// contract is different and tested here separately:
//
//  * against a pointer-tree reference that descends with the same promoted
//    comparison `x <= double(float(threshold))`, the quantized engine IS
//    bit-identical (the quantization error lives entirely in the threshold
//    rounding, never in the kernel);
//  * against exact mode, the max abs error over any row set is bounded by
//    (1/T) * sum_t (leaf spread of tree t) — each flipped tree contributes
//    at most its own leaf spread to the pre-division sum;
//  * narrow (16-bit) and wide (32-bit) link encodings are bit-identical to
//    each other.
//
// Labeled `concurrency` so the tsan/asan-ubsan presets cover the quantized
// shared-read inference path too (tools/sanitize_runner.sh builds it).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/ml/compiled_forest.h"
#include "src/ml/random_forest.h"
#include "src/stats/rng.h"

namespace optum::ml {
namespace {

Dataset RandomDataset(uint64_t seed, size_t n, size_t features) {
  Rng rng(seed);
  Dataset d(features);
  std::vector<double> x(features);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : x) {
      v = rng.Uniform(-3, 3);
    }
    double y = rng.Gaussian(0, 0.2);
    for (size_t f = 0; f < features; ++f) {
      y += (f % 2 == 0 ? 1.5 : -0.7) * x[f] + (x[f] > 0.8 ? 1.0 : 0.0);
    }
    d.Add(x, y);
  }
  return d;
}

std::vector<double> RandomRows(uint64_t seed, size_t rows, size_t features) {
  Rng rng(seed);
  std::vector<double> block(rows * features);
  for (auto& v : block) {
    v = rng.Uniform(-6, 6);
  }
  return block;
}

// Pointer-tree descent with the quantized comparison: thresholds rounded to
// float and promoted back, exactly as the compiled quantized layout stores
// them. This is the independent reference the engine must match bit for bit.
double QuantizedReferencePredict(const RandomForestRegressor& forest,
                                 std::span<const double> row) {
  double acc = 0.0;
  for (size_t t = 0; t < forest.num_trees(); ++t) {
    const std::span<const DecisionTreeRegressor::Node> nodes = forest.tree(t).nodes();
    int32_t i = 0;
    while (nodes[static_cast<size_t>(i)].feature >= 0) {
      const DecisionTreeRegressor::Node& n = nodes[static_cast<size_t>(i)];
      const double t32 = static_cast<double>(static_cast<float>(n.threshold));
      i = row[static_cast<size_t>(n.feature)] <= t32 ? n.left : n.right;
    }
    acc += nodes[static_cast<size_t>(i)].value;
  }
  return acc / static_cast<double>(forest.num_trees());
}

// (1/T) * sum of per-tree leaf spreads: an upper bound on |quantized -
// exact| no matter how many trees a row flips in.
double FlipErrorBound(const RandomForestRegressor& forest) {
  double sum_spread = 0.0;
  for (size_t t = 0; t < forest.num_trees(); ++t) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const DecisionTreeRegressor::Node& n : forest.tree(t).nodes()) {
      if (n.feature < 0) {
        lo = std::min(lo, n.value);
        hi = std::max(hi, n.value);
      }
    }
    sum_spread += hi - lo;
  }
  return sum_spread / static_cast<double>(forest.num_trees());
}

TEST(ForestQuantizedTest, BitIdenticalToPromotedFloatReferenceDescent) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const Dataset d = RandomDataset(seed * 17, 260, 4);
    RandomForestRegressor forest(ForestParams{}, seed);
    forest.Fit(d);
    const CompiledForest quantized =
        CompiledForest::Compile(forest, {.quantized_thresholds = true});
    EXPECT_TRUE(quantized.quantized());

    const std::vector<double> rows = RandomRows(seed * 19, 120, 4);
    std::vector<double> batch(120);
    quantized.PredictBatch(rows, 4, batch);
    for (size_t i = 0; i < batch.size(); ++i) {
      const std::span<const double> row(rows.data() + i * 4, 4);
      const double reference = QuantizedReferencePredict(forest, row);
      EXPECT_EQ(reference, quantized.Predict(row)) << "row " << i;
      EXPECT_EQ(reference, batch[i]) << "row " << i;
    }
  }
}

TEST(ForestQuantizedTest, ToleranceAgainstExactOnFlipProneRows) {
  // Rows placed exactly at split thresholds are the adversarial case: when
  // float rounding moves a threshold below the row value, the quantized
  // descent flips where exact descent goes left. The deviation must stay
  // within the per-tree leaf-spread bound — and must be nonzero for at
  // least one constructed row, or this test isn't exercising anything.
  const Dataset d = RandomDataset(77, 400, 3);
  RandomForestRegressor forest(ForestParams{}, 77);
  forest.Fit(d);
  const CompiledForest exact = CompiledForest::Compile(forest);
  const CompiledForest quantized =
      CompiledForest::Compile(forest, {.quantized_thresholds = true});

  // Every split threshold of every tree becomes a candidate row value; the
  // row repeats it across all features so it straddles as many splits as
  // possible. Random rows are appended as the non-adversarial control.
  std::vector<double> rows;
  for (size_t t = 0; t < forest.num_trees(); ++t) {
    for (const DecisionTreeRegressor::Node& n : forest.tree(t).nodes()) {
      if (n.feature >= 0) {
        rows.insert(rows.end(), {n.threshold, n.threshold, n.threshold});
      }
    }
  }
  const std::vector<double> control = RandomRows(78, 200, 3);
  rows.insert(rows.end(), control.begin(), control.end());

  const size_t n = rows.size() / 3;
  std::vector<double> out_exact(n);
  std::vector<double> out_quant(n);
  exact.PredictBatch(rows, 3, out_exact);
  quantized.PredictBatch(rows, 3, out_quant);

  const double bound = FlipErrorBound(forest);
  double max_abs_err = 0.0;
  for (size_t i = 0; i < n; ++i) {
    max_abs_err = std::max(max_abs_err, std::fabs(out_quant[i] - out_exact[i]));
  }
  EXPECT_LE(max_abs_err, bound + 1e-12);
  EXPECT_GT(max_abs_err, 0.0)
      << "threshold-straddling rows never flipped; adversarial set is dead";
}

TEST(ForestQuantizedTest, NarrowAndWideLinkLayoutsBitIdentical) {
  const Dataset d = RandomDataset(91, 300, 4);
  RandomForestRegressor forest(ForestParams{}, 91);
  forest.Fit(d);
  const CompiledForest narrow =
      CompiledForest::Compile(forest, {.quantized_thresholds = true});
  const CompiledForest wide = CompiledForest::Compile(
      forest, {.quantized_thresholds = true, .force_wide_links = true});
  ASSERT_TRUE(narrow.narrow_links());  // test forests easily fit 16 bits
  ASSERT_FALSE(wide.narrow_links());

  const std::vector<double> rows = RandomRows(92, 150, 4);
  std::vector<double> out_narrow(150);
  std::vector<double> out_wide(150);
  narrow.PredictBatch(rows, 4, out_narrow);
  wide.PredictBatch(rows, 4, out_wide);
  EXPECT_EQ(out_narrow, out_wide);
}

TEST(ForestQuantizedTest, NonFiniteFeaturesMatchReferenceDescent) {
  const Dataset d = RandomDataset(7, 300, 4);
  RandomForestRegressor forest(ForestParams{}, 7);
  forest.Fit(d);
  const CompiledForest quantized =
      CompiledForest::Compile(forest, {.quantized_thresholds = true});

  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> rows = RandomRows(8, 64, 4);
  Rng rng(9);
  for (auto& v : rows) {
    const double roll = rng.Uniform(0, 1);
    if (roll < 0.15) {
      v = kNan;
    } else if (roll < 0.25) {
      v = kInf;
    } else if (roll < 0.35) {
      v = -kInf;
    }
  }
  for (size_t f = 0; f < 4; ++f) {
    rows[f] = kNan;  // row 0: every feature NaN, descent always goes right
  }
  std::vector<double> batch(64);
  quantized.PredictBatch(rows, 4, batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    const std::span<const double> row(rows.data() + i * 4, 4);
    EXPECT_EQ(QuantizedReferencePredict(forest, row), batch[i]) << "row " << i;
    EXPECT_EQ(batch[i], quantized.Predict(row)) << "row " << i;
  }
}

TEST(ForestQuantizedTest, StumpForestQuantized) {
  // Constant targets: every tree is a single self-looping leaf; the
  // quantized layout must survive trees with no internal node at all.
  Dataset d(2);
  for (int i = 0; i < 60; ++i) {
    d.Add(std::vector<double>{static_cast<double>(i), static_cast<double>(-i)}, 4.25);
  }
  ForestParams params;
  params.num_trees = 5;
  RandomForestRegressor forest(params, 3);
  forest.Fit(d);
  const CompiledForest quantized =
      CompiledForest::Compile(forest, {.quantized_thresholds = true});
  EXPECT_EQ(quantized.num_nodes(), quantized.num_trees());
  EXPECT_TRUE(quantized.narrow_links());
  EXPECT_EQ(quantized.Predict(std::vector<double>{1e9, -1e9}), 4.25);
  std::vector<double> out(10);
  quantized.PredictBatch(RandomRows(4, 10, 2), 2, out);
  for (const double v : out) {
    EXPECT_EQ(v, 4.25);
  }
}

TEST(ForestQuantizedTest, ForestParamsQuantizedInferenceKeepsBatchContract) {
  // With ForestParams::quantized_inference set, RandomForestRegressor serves
  // BOTH Predict and PredictBatch from the quantized engine, so the
  // Regressor contract (batch == loop of Predict, bitwise) still holds.
  ForestParams params;
  params.quantized_inference = true;
  const Dataset d = RandomDataset(101, 280, 3);
  RandomForestRegressor forest(params, 101);
  forest.Fit(d);
  ASSERT_TRUE(forest.compiled().quantized());

  const std::vector<double> rows = RandomRows(102, 90, 3);
  std::vector<double> out(90);
  forest.PredictBatch(rows, 3, out);
  for (size_t i = 0; i < out.size(); ++i) {
    const std::span<const double> row(rows.data() + i * 3, 3);
    EXPECT_EQ(out[i], forest.Predict(row)) << "row " << i;
    EXPECT_EQ(out[i], QuantizedReferencePredict(forest, row)) << "row " << i;
  }
}

}  // namespace
}  // namespace optum::ml
