// Tests for src/ml linear algebra, datasets, metrics, and the discretizer.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/ml/dataset.h"
#include "src/ml/discretizer.h"
#include "src/ml/linalg.h"
#include "src/ml/metrics.h"
#include "src/stats/descriptive.h"
#include "src/stats/rng.h"

namespace optum::ml {
namespace {

TEST(MatrixTest, MulKnownValues) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  Matrix b(3, 2);
  b(0, 0) = 7;
  b(0, 1) = 8;
  b(1, 0) = 9;
  b(1, 1) = 10;
  b(2, 0) = 11;
  b(2, 1) = 12;
  const Matrix c = a.Mul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatrixTest, TransposedSwapsIndices) {
  Matrix a(2, 3);
  a(0, 2) = 5.0;
  a(1, 0) = -2.0;
  const Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(0, 1), -2.0);
}

TEST(MatrixTest, GramMatchesExplicitProduct) {
  Rng rng(1);
  Matrix a(5, 3);
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      a(r, c) = rng.Gaussian(0, 1);
    }
  }
  const Matrix g = a.Gram();
  const Matrix expected = a.Transposed().Mul(a);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(g(r, c), expected(r, c), 1e-12);
    }
  }
}

TEST(MatrixTest, MulVecAndTransposedMulVec) {
  Matrix a(2, 3);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      a(r, c) = static_cast<double>(r * 3 + c + 1);
    }
  }
  const std::vector<double> v = {1, 0, -1};
  const std::vector<double> out = a.MulVec(v);
  EXPECT_DOUBLE_EQ(out[0], 1 - 3);
  EXPECT_DOUBLE_EQ(out[1], 4 - 6);
  const std::vector<double> w = {1, 2};
  const std::vector<double> tout = a.TransposedMulVec(w);
  EXPECT_DOUBLE_EQ(tout[0], 1 + 8);
  EXPECT_DOUBLE_EQ(tout[1], 2 + 10);
  EXPECT_DOUBLE_EQ(tout[2], 3 + 12);
}

TEST(CholeskyTest, SolvesKnownSpdSystem) {
  // A = [[4, 2], [2, 3]], b = [6, 5] -> x = [1, 1].
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  std::vector<double> b = {6, 5};
  ASSERT_TRUE(CholeskySolveInPlace(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 1.0, 1e-12);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // indefinite
  std::vector<double> b = {1, 1};
  EXPECT_FALSE(CholeskySolveInPlace(a, b));
}

TEST(CholeskyTest, SolveSpdRegularizesSingular) {
  // Rank-deficient matrix; SolveSpd must still return a finite solution.
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 1;
  const std::vector<double> x = SolveSpd(a, std::vector<double>{2, 2});
  EXPECT_TRUE(std::isfinite(x[0]));
  EXPECT_TRUE(std::isfinite(x[1]));
  // A x should be close to b despite regularization.
  EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);
}

// Property sweep: random SPD systems solve accurately.
class CholeskyRandomSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CholeskyRandomSweep, RandomSpdSolve) {
  Rng rng(GetParam());
  const size_t n = 6;
  Matrix m(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      m(r, c) = rng.Gaussian(0, 1);
    }
  }
  Matrix a = m.Gram();  // SPD (a.s.)
  for (size_t i = 0; i < n; ++i) {
    a(i, i) += 0.5;
  }
  std::vector<double> x_true(n);
  for (auto& v : x_true) {
    v = rng.Gaussian(0, 2);
  }
  const std::vector<double> b = a.MulVec(x_true);
  const std::vector<double> x = SolveSpd(a, b);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskyRandomSweep, ::testing::Range<uint64_t>(1, 9));

TEST(DatasetTest, AddAndAccess) {
  Dataset d(2, {"a", "b"});
  d.Add(std::vector<double>{1.0, 2.0}, 3.0);
  d.Add(std::vector<double>{4.0, 5.0}, 6.0);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.Features(1)[0], 4.0);
  EXPECT_DOUBLE_EQ(d.Target(0), 3.0);
  EXPECT_EQ(d.feature_names()[1], "b");
}

TEST(DatasetTest, TrainTestSplitProportionsAndDisjoint) {
  Dataset d(1);
  for (int i = 0; i < 100; ++i) {
    d.Add(std::vector<double>{static_cast<double>(i)}, i);
  }
  Rng rng(4);
  const auto split = d.TrainTestSplit(0.25, rng);
  EXPECT_EQ(split.test.size(), 25u);
  EXPECT_EQ(split.train.size(), 75u);
  // Disjoint and complete: targets are unique ids.
  std::vector<bool> seen(100, false);
  for (size_t i = 0; i < split.train.size(); ++i) {
    seen[static_cast<size_t>(split.train.Target(i))] = true;
  }
  for (size_t i = 0; i < split.test.size(); ++i) {
    const size_t id = static_cast<size_t>(split.test.Target(i));
    EXPECT_FALSE(seen[id]) << "duplicate sample " << id;
    seen[id] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(DatasetTest, SplitDeterministicForSeed) {
  Dataset d(1);
  for (int i = 0; i < 50; ++i) {
    d.Add(std::vector<double>{0.0}, i);
  }
  Rng r1(9), r2(9);
  const auto s1 = d.TrainTestSplit(0.2, r1);
  const auto s2 = d.TrainTestSplit(0.2, r2);
  for (size_t i = 0; i < s1.test.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1.test.Target(i), s2.test.Target(i));
  }
}

TEST(DatasetTest, BootstrapPreservesSize) {
  Dataset d(1);
  for (int i = 0; i < 30; ++i) {
    d.Add(std::vector<double>{1.0}, i);
  }
  Rng rng(2);
  const Dataset b = d.Bootstrap(rng);
  EXPECT_EQ(b.size(), d.size());
}

TEST(DatasetTest, StandardizerZeroMeanUnitVariance) {
  Dataset d(2);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    d.Add(std::vector<double>{rng.Gaussian(10, 3), rng.Gaussian(-5, 0.5)}, 0.0);
  }
  const auto s = d.FitStandardizer();
  const Dataset z = d.Standardized(s);
  optum::OnlineStats col0, col1;
  for (size_t i = 0; i < z.size(); ++i) {
    col0.Add(z.Features(i)[0]);
    col1.Add(z.Features(i)[1]);
  }
  EXPECT_NEAR(col0.mean(), 0.0, 1e-9);
  EXPECT_NEAR(col0.stddev(), 1.0, 1e-9);
  EXPECT_NEAR(col1.mean(), 0.0, 1e-9);
  EXPECT_NEAR(col1.stddev(), 1.0, 1e-9);
}

TEST(DatasetTest, StandardizerConstantColumnSafe) {
  Dataset d(1);
  for (int i = 0; i < 10; ++i) {
    d.Add(std::vector<double>{7.0}, 0.0);
  }
  const auto s = d.FitStandardizer();
  const auto z = s.Apply(std::vector<double>{7.0});
  EXPECT_TRUE(std::isfinite(z[0]));
  EXPECT_DOUBLE_EQ(z[0], 0.0);
}

TEST(MetricsTest, MapeKnownValue) {
  const std::vector<double> truth = {1.0, 2.0, 4.0};
  const std::vector<double> pred = {1.1, 1.8, 5.0};
  EXPECT_NEAR(Mape(truth, pred), (0.1 + 0.1 + 0.25) / 3.0, 1e-12);
}

TEST(MetricsTest, MapeFloorsZeroTruth) {
  const std::vector<double> truth = {0.0};
  const std::vector<double> pred = {0.5};
  const double m = Mape(truth, pred, 0.25);
  EXPECT_DOUBLE_EQ(m, 2.0);  // 0.5/0.25
}

TEST(MetricsTest, MaeRmse) {
  const std::vector<double> truth = {0, 0, 0, 0};
  const std::vector<double> pred = {1, -1, 1, -1};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(truth, pred), 1.0);
  EXPECT_DOUBLE_EQ(RootMeanSquaredError(truth, pred), 1.0);
}

TEST(MetricsTest, RSquared) {
  const std::vector<double> truth = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(RSquared(truth, truth), 1.0);
  const std::vector<double> mean_pred = {2.5, 2.5, 2.5, 2.5};
  EXPECT_DOUBLE_EQ(RSquared(truth, mean_pred), 0.0);
}

TEST(DiscretizerTest, UpperBoundMapping) {
  // Paper example (§4.2.1): ten buckets over [0,1], a prediction in the
  // 0.2-0.3 bucket maps to 0.3.
  const Discretizer d(0.0, 1.0, 10);
  EXPECT_NEAR(d.ToUpperBound(0.25), 0.3, 1e-12);
  EXPECT_NEAR(d.ToUpperBound(0.91), 1.0, 1e-12);
}

TEST(DiscretizerTest, BottomBucketMapsToZero) {
  const Discretizer d(0.0, 1.0, 25);
  EXPECT_DOUBLE_EQ(d.ToUpperBound(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.ToUpperBound(0.01), 0.0);
}

TEST(DiscretizerTest, ClampsOutOfRange) {
  const Discretizer d(0.0, 1.0, 10);
  EXPECT_DOUBLE_EQ(d.ToUpperBound(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(d.ToUpperBound(5.0), 1.0);
  EXPECT_EQ(d.BucketOf(-5.0), 0u);
  EXPECT_EQ(d.BucketOf(5.0), 9u);
}

TEST(DiscretizerTest, IdempotentOnUpperBounds) {
  const Discretizer d(0.0, 1.0, 25);
  for (double v = 0.0; v <= 1.0; v += 0.013) {
    const double once = d.ToUpperBound(v);
    EXPECT_DOUBLE_EQ(d.ToUpperBound(once), once);
  }
}

class DiscretizerBucketSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(DiscretizerBucketSweep, BucketsPartitionRange) {
  const size_t buckets = GetParam();
  const Discretizer d(0.0, 1.0, buckets);
  for (double v = 0.0; v < 1.0; v += 0.001) {
    const size_t b = d.BucketOf(v);
    EXPECT_LT(b, buckets);
    // Value lies inside its bucket.
    EXPECT_GE(v, static_cast<double>(b) * d.bucket_width() - 1e-12);
    EXPECT_LE(v, static_cast<double>(b + 1) * d.bucket_width() + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(BucketCounts, DiscretizerBucketSweep,
                         ::testing::Values(1, 2, 5, 10, 25, 100));

}  // namespace
}  // namespace optum::ml
