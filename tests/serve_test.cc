// End-to-end tests for the open-loop placement service (src/serve,
// DESIGN.md §12): deterministic open-loop replay, bounded-admission
// backpressure accounting, shutdown-drains-the-queue semantics, and the two
// invariances the serve layer exports rows under — latency rows bit-identical
// across DistributedConfig::shard_num_threads, and placed-pod sets stable
// across scheduler shard counts. Labeled `concurrency` so the whole suite
// also runs under TSan / ASan+UBSan via tools/sanitize_runner.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/offline_profiler.h"
#include "src/obs/metrics.h"
#include "src/obs/span_log.h"
#include "src/sched/baselines.h"
#include "src/serve/placement_service.h"
#include "src/sim/simulator.h"
#include "src/trace/workload_generator.h"

namespace optum {
namespace {

using core::OptumProfiles;

Workload MakeWorkload(int hosts, Tick horizon, uint64_t seed) {
  WorkloadConfig config;
  config.num_hosts = hosts;
  config.horizon = horizon;
  config.seed = seed;
  return WorkloadGenerator(config).Generate();
}

// Shared world: profiles are trained once (a reference simulator run plus
// the offline profiler) and reused by every service test below.
struct ServeWorld {
  Workload workload;
  OptumProfiles profiles;
};

const ServeWorld& World() {
  static const ServeWorld* world = [] {
    auto* w = new ServeWorld;
    w->workload = MakeWorkload(64, 3 * kTicksPerHour, 23);
    SimConfig sim_config;
    sim_config.pod_usage_period = 5;
    sim_config.max_attempts_per_tick = 1500;
    AlibabaBaseline reference;
    const SimResult ref = Simulator(w->workload, sim_config, reference).Run();
    core::OfflineProfilerConfig prof;
    prof.max_train_samples = 600;
    w->profiles = core::OfflineProfiler(prof).BuildProfiles(ref.trace);
    return w;
  }();
  return *world;
}

serve::ServeConfig BaseConfig() {
  serve::ServeConfig config;
  config.arrival.offered_pods_per_sec = 40.0;
  config.arrival.round_seconds = 1.0;
  config.distributed.num_schedulers = 2;
  config.distributed.max_attempts_per_pod = 8;
  config.queue_capacity_per_shard = 1024;
  config.max_schedule_per_round = 256;
  config.max_requeues = 8;
  config.keep_exact_latencies = true;
  return config;
}

// --- Admission queue unit tests ---------------------------------------------

serve::ServePod MakeQueuePod(PodId id) {
  serve::ServePod pod;
  pod.spec.id = id;
  return pod;
}

TEST(AdmissionQueueTest, BoundsAndBackpressureAccounting) {
  serve::AdmissionQueue queue(/*capacity_per_shard=*/2, /*num_shards=*/2);
  std::vector<serve::ServePod> pods;
  pods.reserve(8);
  for (PodId id = 0; id < 6; ++id) {
    pods.push_back(MakeQueuePod(id));
  }
  // Shard 0 gets ids {0,2,4}, shard 1 gets {1,3,5}; capacity 2 each, so the
  // third offer to each shard bounces.
  EXPECT_TRUE(queue.Offer(&pods[0]));
  EXPECT_TRUE(queue.Offer(&pods[1]));
  EXPECT_TRUE(queue.Offer(&pods[2]));
  EXPECT_TRUE(queue.Offer(&pods[3]));
  EXPECT_FALSE(queue.Offer(&pods[4]));
  EXPECT_FALSE(queue.Offer(&pods[5]));
  EXPECT_EQ(queue.depth(), 4u);
  EXPECT_EQ(queue.shard_depth(0), 2u);
  EXPECT_EQ(queue.shard_depth(1), 2u);
  const serve::AdmissionStats& stats = queue.stats();
  EXPECT_EQ(stats.offered, 6);
  EXPECT_EQ(stats.admitted, 4);
  EXPECT_EQ(stats.rejected_full, 2);
  EXPECT_EQ(stats.peak_depth, 4u);

  // Requeue is capacity-exempt: already-admitted work re-enters even when
  // the shard is nominally full.
  pods.push_back(MakeQueuePod(6));
  queue.Requeue(&pods[6]);
  EXPECT_EQ(queue.shard_depth(0), 3u);
  EXPECT_EQ(queue.stats().requeued, 1);
  EXPECT_EQ(queue.stats().peak_depth, 5u);
}

TEST(AdmissionQueueTest, PopBatchRoundRobinsAcrossShards) {
  serve::AdmissionQueue queue(/*capacity_per_shard=*/8, /*num_shards=*/2);
  std::vector<serve::ServePod> pods;
  pods.reserve(6);
  // Shard 0: ids 0,2,4. Shard 1: id 1 only — a deep shard must not
  // monopolize the batch.
  for (const PodId id : {0, 2, 4, 1}) {
    pods.push_back(MakeQueuePod(id));
  }
  for (serve::ServePod& pod : pods) {
    ASSERT_TRUE(queue.Offer(&pod));
  }
  std::vector<serve::ServePod*> batch;
  EXPECT_EQ(queue.PopBatch(3, &batch), 3u);
  ASSERT_EQ(batch.size(), 3u);
  // Round-robin starting at shard 0: 0 (s0), 1 (s1), 2 (s0).
  EXPECT_EQ(batch[0]->spec.id, 0);
  EXPECT_EQ(batch[1]->spec.id, 1);
  EXPECT_EQ(batch[2]->spec.id, 2);
  batch.clear();
  EXPECT_EQ(queue.PopBatch(8, &batch), 1u);
  EXPECT_EQ(batch[0]->spec.id, 4);
  EXPECT_TRUE(queue.empty());
}

// --- Arrival driver ----------------------------------------------------------

TEST(ArrivalDriverTest, PoissonDrawMatchesMean) {
  Rng rng(5);
  const double lambda = 2000.0;
  int64_t total = 0;
  const int draws = 200;
  for (int i = 0; i < draws; ++i) {
    total += serve::PoissonDraw(rng, lambda);
  }
  const double mean = static_cast<double>(total) / draws;
  // Mean of 200 draws has sd sqrt(lambda/200) ~= 3.2; allow 5 sd.
  EXPECT_NEAR(mean, lambda, 16.0);
  EXPECT_EQ(serve::PoissonDraw(rng, 0.0), 0);
  EXPECT_EQ(serve::PoissonDraw(rng, -1.0), 0);
}

TEST(ArrivalDriverTest, EqualConfigsReplayIdenticalStreams) {
  const ServeWorld& world = World();
  serve::ArrivalConfig config;
  config.offered_pods_per_sec = 50.0;
  serve::ArrivalDriver a(world.workload, config);
  serve::ArrivalDriver b(world.workload, config);
  std::vector<PodSpec> out_a;
  std::vector<PodSpec> out_b;
  for (int64_t round = 0; round < 20; ++round) {
    a.EmitRound(round, &out_a);
    b.EmitRound(round, &out_b);
  }
  EXPECT_GT(out_a.size(), 0u);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a[i].id, out_b[i].id);
    EXPECT_EQ(out_a[i].app, out_b[i].app);
    EXPECT_EQ(out_a[i].submit_tick, out_b[i].submit_tick);
  }
  // Ids are dense from 0 and submit_tick is the emitting round.
  for (size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a[i].id, static_cast<PodId>(i));
  }
}

TEST(ArrivalDriverTest, DiurnalRateAveragesToOfferedLoad) {
  const ServeWorld& world = World();
  serve::ArrivalConfig config;
  config.process = serve::ArrivalProcess::kDiurnal;
  config.offered_pods_per_sec = 100.0;
  config.round_seconds = 30.0;  // one day = 2880 rounds at 30 s
  serve::ArrivalDriver driver(world.workload, config);
  double sum = 0.0;
  double lo = 1e300;
  double hi = 0.0;
  const int64_t day_rounds = 2880;
  for (int64_t round = 0; round < day_rounds; ++round) {
    const double rate = driver.RoundRate(round);
    sum += rate;
    lo = std::min(lo, rate);
    hi = std::max(hi, rate);
  }
  // Normalized to the configured day-average rate, and actually modulated.
  EXPECT_NEAR(sum / static_cast<double>(day_rounds), 100.0, 2.0);
  EXPECT_LT(lo, 80.0);
  EXPECT_GT(hi, 120.0);
}

// --- Placement service -------------------------------------------------------

TEST(PlacementServiceTest, DeterministicOpenLoopReplay) {
  const ServeWorld& world = World();
  const serve::ServeConfig config = BaseConfig();

  std::string first_row;
  std::vector<PodId> first_placed;
  for (int run = 0; run < 2; ++run) {
    ClusterState cluster(200, kUnitResources, /*history_window=*/64);
    serve::PlacementService service(world.workload, world.profiles, &cluster,
                                    config);
    service.RunRounds(15);
    service.Drain();
    const std::string row = serve::RenderLatencyRow(service.MakeLatencyRow());
    const std::vector<PodId> placed = service.PlacedPodIds();
    if (run == 0) {
      first_row = row;
      first_placed = placed;
      EXPECT_GT(service.counters().placed, 0);
    } else {
      EXPECT_EQ(row, first_row);
      EXPECT_EQ(placed, first_placed);
    }
  }
}

TEST(PlacementServiceTest, ShutdownDrainsQueueAndBalancesAccounting) {
  const ServeWorld& world = World();
  serve::ServeConfig config = BaseConfig();
  // Saturated regime: offered load far above the per-round service cap with
  // a small bounded queue, so backpressure must engage.
  config.arrival.offered_pods_per_sec = 300.0;
  config.max_schedule_per_round = 60;
  config.queue_capacity_per_shard = 64;
  config.mean_residency_rounds = 20.0;

  ClusterState cluster(400, kUnitResources, /*history_window=*/64);
  serve::PlacementService service(world.workload, world.profiles, &cluster,
                                  config);
  service.RunRounds(12);
  EXPECT_GT(service.queue_depth(), 0u);
  const int64_t drain_rounds = service.Drain();
  EXPECT_GT(drain_rounds, 0);
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_TRUE(service.counters().rounds >= 12 + drain_rounds);

  // Conservation: every arrival is admitted or rejected; every admitted pod
  // ends placed or dropped once the queue is drained.
  const serve::AdmissionStats& stats = service.admission_stats();
  const serve::ServeCounters& counters = service.counters();
  EXPECT_EQ(counters.arrivals, stats.admitted + stats.rejected_full);
  EXPECT_GT(stats.rejected_full, 0);
  EXPECT_EQ(stats.admitted, counters.placed + counters.dropped);
  EXPECT_LE(counters.departed, counters.placed);
  EXPECT_LE(stats.peak_depth,
            config.queue_capacity_per_shard * 2 +
                static_cast<size_t>(config.max_schedule_per_round));

  // Saturation shows up in the tail: queue waits are nonzero, and the
  // histogram percentiles agree with the exact ring within the documented
  // bucket contract.
  const serve::LatencyRow row = service.MakeLatencyRow();
  EXPECT_GT(row.latency_s_max, 0.0);
  const serve::ExactLatencyRing* exact = service.exact_latencies();
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(exact->count(), counters.placed);
  const serve::LatencyHistogram merged = service.MergedLatency();
  const double bound = std::sqrt(merged.options().growth) - 1.0 + 1e-9;
  for (const double q : {50.0, 99.0, 99.9}) {
    const double truth = exact->Percentile(q);
    const double estimate = merged.Percentile(q);
    if (truth < merged.options().min_value) {
      EXPECT_EQ(estimate, 0.0) << "q=" << q;
    } else {
      EXPECT_NEAR(estimate / truth, 1.0, bound) << "q=" << q;
    }
  }
}

TEST(PlacementServiceTest, LatencyRowsBitIdenticalAcrossShardThreadCounts) {
  const ServeWorld& world = World();
  std::string reference_row;
  std::vector<PodId> reference_placed;
  bool first = true;
  for (const size_t threads : {size_t{0}, size_t{1}, size_t{2}, size_t{8}}) {
    serve::ServeConfig config = BaseConfig();
    config.arrival.offered_pods_per_sec = 120.0;
    config.max_schedule_per_round = 48;  // mild overload: nonzero waits
    config.distributed.shard_num_threads = threads;
    ClusterState cluster(300, kUnitResources, /*history_window=*/64);
    serve::PlacementService service(world.workload, world.profiles, &cluster,
                                    config);
    service.RunRounds(10);
    service.Drain();
    const std::string row = serve::RenderLatencyRow(service.MakeLatencyRow());
    const std::vector<PodId> placed = service.PlacedPodIds();
    if (first) {
      reference_row = row;
      reference_placed = placed;
      first = false;
      EXPECT_GT(service.counters().placed, 0);
    } else {
      EXPECT_EQ(row, reference_row) << "threads=" << threads;
      EXPECT_EQ(placed, reference_placed) << "threads=" << threads;
    }
  }
}

TEST(PlacementServiceTest, PlacedSetStableAcrossShardCounts) {
  const ServeWorld& world = World();
  std::set<PodId> reference;
  bool first = true;
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    serve::ServeConfig config = BaseConfig();
    // Ample capacity: every arrival can place, so the *set* of placed pods
    // must not depend on how the fleet is sharded (individual host choices
    // may differ — shard streams are salted by shard id).
    config.arrival.offered_pods_per_sec = 25.0;
    config.max_schedule_per_round = 512;
    config.distributed.num_schedulers = shards;
    ClusterState cluster(300, kUnitResources, /*history_window=*/64);
    serve::PlacementService service(world.workload, world.profiles, &cluster,
                                    config);
    service.RunRounds(12);
    service.Drain();
    EXPECT_EQ(service.counters().dropped, 0) << "shards=" << shards;
    EXPECT_EQ(service.admission_stats().rejected_full, 0) << "shards=" << shards;
    EXPECT_EQ(service.num_shards(), shards);
    const std::vector<PodId> placed_vec = service.PlacedPodIds();
    std::set<PodId> placed(placed_vec.begin(), placed_vec.end());
    EXPECT_EQ(placed.size(), placed_vec.size());  // no duplicates, sorted
    if (first) {
      reference = placed;
      first = false;
      EXPECT_EQ(static_cast<int64_t>(placed.size()),
                service.counters().arrivals);
    } else {
      EXPECT_EQ(placed, reference) << "shards=" << shards;
    }
  }
}

TEST(PlacementServiceTest, DeparturesFreeCapacityAndEmitFinishedSpans) {
  const ServeWorld& world = World();
  serve::ServeConfig config = BaseConfig();
  config.arrival.offered_pods_per_sec = 60.0;
  config.mean_residency_rounds = 5.0;  // short-lived pods

  const std::string span_path = testing::TempDir() + "/serve_spans.jsonl";
  obs::SpanLog span_log(span_path);
  ASSERT_TRUE(span_log.ok());
  obs::MetricRegistry registry(/*num_lanes=*/1);
  span_log.AttachMetrics(&registry);

  ClusterState cluster(200, kUnitResources, /*history_window=*/64);
  serve::PlacementService service(world.workload, world.profiles, &cluster,
                                  config);
  obs::Sinks sinks;
  sinks.span_log = &span_log;
  sinks.metrics = &registry;
  service.AttachSinks(sinks);
  service.RunRounds(40);
  service.Drain();
  span_log.Flush();

  const serve::ServeCounters& counters = service.counters();
  EXPECT_GT(counters.departed, 0);
  EXPECT_LE(counters.departed, counters.placed);

  // Span stream mirrors the counters exactly: one submitted per arrival,
  // one placed per placement, one finished per departure.
  EXPECT_EQ(registry.counter("spans.submitted")->Value(),
            static_cast<uint64_t>(counters.arrivals));
  EXPECT_EQ(registry.counter("spans.placed")->Value(),
            static_cast<uint64_t>(counters.placed));
  EXPECT_EQ(registry.counter("spans.finished")->Value(),
            static_cast<uint64_t>(counters.departed));

  // serve.* counters match the service's own view.
  EXPECT_EQ(registry.counter("serve.arrivals")->Value(),
            static_cast<uint64_t>(counters.arrivals));
  EXPECT_EQ(registry.counter("serve.placed")->Value(),
            static_cast<uint64_t>(counters.placed));
  EXPECT_EQ(registry.counter("serve.departed")->Value(),
            static_cast<uint64_t>(counters.departed));
}

TEST(PlacementServiceTest, ResidencyDrawsAreIndependentOfPlacementOrder) {
  const ServeWorld& world = World();
  // Two runs whose scheduling differs (different shard counts ⇒ different
  // placement order and hosts) must still depart pods on the same schedule:
  // residency is seeded per pod id, not per placement event. Under ample
  // capacity every pod places in its submit round in both runs, so the
  // departed count after the same horizon must match exactly.
  int64_t reference_departed = -1;
  for (const size_t shards : {size_t{1}, size_t{4}}) {
    serve::ServeConfig config = BaseConfig();
    config.arrival.offered_pods_per_sec = 20.0;
    config.max_schedule_per_round = 512;
    config.distributed.num_schedulers = shards;
    config.mean_residency_rounds = 8.0;
    ClusterState cluster(300, kUnitResources, /*history_window=*/64);
    serve::PlacementService service(world.workload, world.profiles, &cluster,
                                    config);
    service.RunRounds(30);
    EXPECT_GT(service.counters().departed, 0);
    if (reference_departed < 0) {
      reference_departed = service.counters().departed;
    } else {
      EXPECT_EQ(service.counters().departed, reference_departed)
          << "shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace optum
