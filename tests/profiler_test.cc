// Round profiler (DESIGN.md §14): golden optum.profile.v1 renders, the
// critical-path / idle attribution rules, window cadence, and the
// determinism contract — the profile's *count* fields (window ids, rounds,
// shards, per-phase counts) are bit-identical across every
// {pipeline_depth} × {shard_num_threads} × {ingest_threads} combination,
// exactly like the placed-pod sets the pipelined serve tests pin. The ns
// fields are wall-clock-derived and excluded. Labeled `observability` so
// the suite also runs under TSan / ASan+UBSan via tools/sanitize_runner.sh.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/offline_profiler.h"
#include "src/obs/json_reader.h"
#include "src/obs/profiler.h"
#include "src/obs/schema.h"
#include "src/sched/baselines.h"
#include "src/serve/placement_service.h"
#include "src/sim/simulator.h"
#include "src/trace/workload_generator.h"

namespace optum {
namespace {

using obs::ProfileCriticalPathRow;
using obs::ProfileLog;
using obs::ProfilePhase;
using obs::ProfilePhaseRow;
using obs::ProfileWindowRow;
using obs::RoundProfiler;

std::string ReadFileOrDie(const std::string& path) {
  std::string out;
  EXPECT_TRUE(obs::ReadWholeFile(path, &out)) << path;
  return out;
}

// ---------------------------------------------------------- golden renders

TEST(ProfileLogTest, GoldenHeaderAndRows) {
  EXPECT_EQ(ProfileLog::RenderHeader(),
            R"({"schema":"optum.profile.v1","clock":"ns"})");
  EXPECT_EQ(
      ProfileLog::Render(ProfileWindowRow{.window = 3, .rounds = 64,
                                          .shards = 2, .barrier_ns = 12345}),
      R"({"window":3,"rounds":64,"shards":2,"barrier_ns":12345})");
  EXPECT_EQ(
      ProfileLog::Render(ProfilePhaseRow{.window = 3, .shard = 1,
                                         .phase = ProfilePhase::kSpecScore,
                                         .count = 40, .total_ns = 900,
                                         .max_ns = 70}),
      R"({"window":3,"shard":1,"phase":"spec_score","count":40,)"
      R"("total_ns":900,"max_ns":70})");
  EXPECT_EQ(
      ProfileLog::Render(ProfileCriticalPathRow{
          .window = 3, .shard = 0,
          .phase = ProfilePhase::kFinalizeRevalidate, .rounds_bound = 5,
          .bound_ns = 1000, .idle_ns = 250}),
      R"({"window":3,"cp_shard":0,"cp_phase":"finalize_revalidate",)"
      R"("rounds_bound":5,"bound_ns":1000,"idle_ns":250})");
}

TEST(ProfileLogTest, PhaseNamesAreStable) {
  EXPECT_STREQ(ProfilePhaseName(ProfilePhase::kIngestWait), "ingest_wait");
  EXPECT_STREQ(ProfilePhaseName(ProfilePhase::kSpecScore), "spec_score");
  EXPECT_STREQ(ProfilePhaseName(ProfilePhase::kFinalizeRevalidate),
               "finalize_revalidate");
  EXPECT_STREQ(ProfilePhaseName(ProfilePhase::kResolve), "resolve");
  EXPECT_STREQ(ProfilePhaseName(ProfilePhase::kCommit), "commit");
  EXPECT_STREQ(ProfilePhaseName(ProfilePhase::kPressureSweep),
               "pressure_sweep");
  EXPECT_STREQ(ProfilePhaseName(ProfilePhase::kIdle), "idle");
  EXPECT_TRUE(obs::IsBarrierPhase(ProfilePhase::kSpecScore));
  EXPECT_TRUE(obs::IsBarrierPhase(ProfilePhase::kFinalizeRevalidate));
  EXPECT_FALSE(obs::IsBarrierPhase(ProfilePhase::kResolve));
  EXPECT_FALSE(obs::IsBarrierPhase(ProfilePhase::kIdle));
}

// ------------------------------------------------------- attribution rules

TEST(RoundProfilerTest, NullScopeIsANoOp) {
  // The disabled path: scopes against a null profiler must be safe and
  // side-effect free (one branch, no clock read).
  RoundProfiler::Scope outer(nullptr, ProfilePhase::kSpecScore, 7);
  RoundProfiler::Scope inner(nullptr, ProfilePhase::kCommit, 0);
}

TEST(RoundProfilerTest, CriticalPathIdleAndExactFileBytes) {
  const std::string path = ::testing::TempDir() + "/profile_synthetic.jsonl";
  ProfileLog log(path);
  ASSERT_TRUE(log.ok());

  RoundProfiler::Options options;
  options.window_rounds = 1;
  RoundProfiler profiler(options);
  profiler.set_log(&log);
  profiler.set_num_lanes(2);

  // Lane 1's finalize (300ns) bounds the 400ns barrier; lane 0 stalls for
  // 300ns, lane 1 for 100ns, and only lane 0's stall is charged to the
  // bounding row.
  profiler.RecordNs(ProfilePhase::kSpecScore, 0, 100);
  profiler.RecordNs(ProfilePhase::kFinalizeRevalidate, 1, 300);
  profiler.RecordNs(ProfilePhase::kCommit, 0, 50);
  profiler.EndRound(/*barrier_ns=*/400);
  profiler.Finalize();

  EXPECT_EQ(profiler.rounds_profiled(), 1);
  EXPECT_EQ(profiler.windows_flushed(), 1);
  EXPECT_EQ(profiler.barrier_ns_total(), 400);
  EXPECT_EQ(profiler.total_ns(ProfilePhase::kIdle), 400);  // 300 + 100
  EXPECT_EQ(profiler.count(ProfilePhase::kIdle), 2);       // both lanes active
  EXPECT_EQ(profiler.total_ns(ProfilePhase::kCommit), 50);

  const std::string expected =
      R"({"schema":"optum.profile.v1","clock":"ns"})" "\n"
      R"({"window":0,"rounds":1,"shards":2,"barrier_ns":400})" "\n"
      R"({"window":0,"shard":0,"phase":"spec_score","count":1,)"
      R"("total_ns":100,"max_ns":100})" "\n"
      R"({"window":0,"shard":0,"phase":"commit","count":1,)"
      R"("total_ns":50,"max_ns":50})" "\n"
      R"({"window":0,"shard":0,"phase":"idle","count":1,)"
      R"("total_ns":300,"max_ns":300})" "\n"
      R"({"window":0,"shard":1,"phase":"finalize_revalidate","count":1,)"
      R"("total_ns":300,"max_ns":300})" "\n"
      R"({"window":0,"shard":1,"phase":"idle","count":1,)"
      R"("total_ns":100,"max_ns":100})" "\n"
      R"({"window":0,"cp_shard":1,"cp_phase":"finalize_revalidate",)"
      R"("rounds_bound":1,"bound_ns":400,"idle_ns":300})" "\n";
  log.Flush();
  EXPECT_EQ(ReadFileOrDie(path), expected);
  std::remove(path.c_str());

  // The deterministic projection carries counts only — never ns.
  EXPECT_EQ(profiler.RenderCounts(),
            "window 0 rounds 1 shards 2\n"
            "window 0 shard 0 phase spec_score count 1\n"
            "window 0 shard 0 phase commit count 1\n"
            "window 0 shard 0 phase idle count 1\n"
            "window 0 shard 1 phase finalize_revalidate count 1\n"
            "window 0 shard 1 phase idle count 1\n");
  EXPECT_EQ(profiler.RenderCounts().find("_ns"), std::string::npos);
}

TEST(RoundProfilerTest, ZeroBarrierSubstitutesMaxLaneBusy) {
  RoundProfiler::Options options;
  options.window_rounds = 1;
  RoundProfiler profiler(options);
  profiler.set_num_lanes(2);
  profiler.RecordNs(ProfilePhase::kSpecScore, 0, 120);
  profiler.RecordNs(ProfilePhase::kSpecScore, 1, 500);
  profiler.EndRound(/*barrier_ns=*/0);  // simulator path: no measured wall
  profiler.Finalize();
  // Max busy (500) substitutes; lane 0 stalls 380, lane 1 not at all.
  EXPECT_EQ(profiler.barrier_ns_total(), 500);
  EXPECT_EQ(profiler.total_ns(ProfilePhase::kIdle), 380);
}

TEST(RoundProfilerTest, BarrierClampsUpToMaxBusyOnFewCores) {
  // On a time-sliced single core the measured wall can only exceed lane
  // busy; if clock slew ever reports less, idle must not go negative.
  RoundProfiler::Options options;
  options.window_rounds = 1;
  RoundProfiler profiler(options);
  profiler.RecordNs(ProfilePhase::kFinalizeRevalidate, 0, 900);
  profiler.EndRound(/*barrier_ns=*/100);
  profiler.Finalize();
  EXPECT_EQ(profiler.barrier_ns_total(), 900);
  EXPECT_EQ(profiler.total_ns(ProfilePhase::kIdle), 0);
}

TEST(RoundProfilerTest, LanesWithoutBarrierRecordsAreNotStalled) {
  RoundProfiler::Options options;
  options.window_rounds = 1;
  RoundProfiler profiler(options);
  profiler.set_num_lanes(3);
  // Lane 2 had no pod this round: no barrier records, so it is
  // idle-by-design, not stalled — no idle charge, no count.
  profiler.RecordNs(ProfilePhase::kSpecScore, 0, 200);
  profiler.RecordNs(ProfilePhase::kSpecScore, 1, 100);
  profiler.EndRound(/*barrier_ns=*/250);
  profiler.Finalize();
  EXPECT_EQ(profiler.count(ProfilePhase::kIdle), 2);
  EXPECT_EQ(profiler.total_ns(ProfilePhase::kIdle), 50 + 150);
}

TEST(RoundProfilerTest, SerialOnlyRoundHasNoCriticalPath) {
  const std::string path = ::testing::TempDir() + "/profile_serial.jsonl";
  ProfileLog log(path);
  ASSERT_TRUE(log.ok());
  RoundProfiler::Options options;
  options.window_rounds = 1;
  RoundProfiler profiler(options);
  profiler.set_log(&log);
  profiler.RecordNs(ProfilePhase::kCommit, 0, 70);
  profiler.EndRound(/*barrier_ns=*/999);  // no barrier records: wall ignored
  profiler.Finalize();
  EXPECT_EQ(profiler.barrier_ns_total(), 0);
  EXPECT_EQ(profiler.count(ProfilePhase::kIdle), 0);
  log.Flush();
  const std::string text = ReadFileOrDie(path);
  std::remove(path.c_str());
  EXPECT_EQ(text.find("cp_shard"), std::string::npos);
  EXPECT_NE(text.find(R"("phase":"commit","count":1)"), std::string::npos);
}

TEST(RoundProfilerTest, TiesBreakToLowestLaneAndLowerPhase) {
  const std::string path = ::testing::TempDir() + "/profile_ties.jsonl";
  ProfileLog log(path);
  ASSERT_TRUE(log.ok());
  RoundProfiler::Options options;
  options.window_rounds = 1;
  RoundProfiler profiler(options);
  profiler.set_log(&log);
  profiler.set_num_lanes(2);
  // Equal lane busy and, within lane 0, equal spec/finalize time: lane 0
  // bounds (lowest lane) via spec_score (lower enum).
  profiler.RecordNs(ProfilePhase::kSpecScore, 0, 100);
  profiler.RecordNs(ProfilePhase::kFinalizeRevalidate, 0, 100);
  profiler.RecordNs(ProfilePhase::kSpecScore, 1, 200);
  profiler.EndRound(/*barrier_ns=*/200);
  profiler.Finalize();
  log.Flush();
  const std::string text = ReadFileOrDie(path);
  std::remove(path.c_str());
  EXPECT_NE(text.find(R"("cp_shard":0,"cp_phase":"spec_score")"),
            std::string::npos);
}

TEST(RoundProfilerTest, WindowCadenceAndFinalizeIdempotence) {
  RoundProfiler::Options options;
  options.window_rounds = 4;
  RoundProfiler profiler(options);
  for (int round = 0; round < 10; ++round) {
    profiler.RecordNs(ProfilePhase::kSpecScore, 0, 10);
    profiler.EndRound(10);
  }
  EXPECT_EQ(profiler.windows_flushed(), 2);  // rounds 0-3 and 4-7
  EXPECT_EQ(profiler.rounds_profiled(), 10);
  profiler.Finalize();  // flushes the partial 2-round window
  EXPECT_EQ(profiler.windows_flushed(), 3);
  const std::string after_first = profiler.RenderCounts();
  profiler.Finalize();  // idempotent: nothing pending, nothing emitted
  EXPECT_EQ(profiler.windows_flushed(), 3);
  EXPECT_EQ(profiler.RenderCounts(), after_first);
  // Rounds keep working after a finalize (early-exit callers re-finalize).
  profiler.RecordNs(ProfilePhase::kCommit, 0, 5);
  profiler.EndRound(0);
  profiler.Finalize();
  EXPECT_EQ(profiler.windows_flushed(), 4);
  EXPECT_EQ(profiler.count(ProfilePhase::kSpecScore), 10);
}

TEST(RoundProfilerTest, WriteCollapsedEmitsCumulativeStacks) {
  const std::string path = ::testing::TempDir() + "/profile.folded";
  RoundProfiler::Options options;
  options.window_rounds = 1;
  RoundProfiler profiler(options);
  profiler.set_num_lanes(2);
  profiler.RecordNs(ProfilePhase::kSpecScore, 0, 40);
  profiler.RecordNs(ProfilePhase::kResolve, 0, 25);
  profiler.RecordNs(ProfilePhase::kFinalizeRevalidate, 1, 60);
  profiler.EndRound(60);
  profiler.Finalize();
  ASSERT_TRUE(profiler.WriteCollapsed(path));
  const std::string text = ReadFileOrDie(path);
  std::remove(path.c_str());
  EXPECT_NE(text.find("round;shard0;spec_score 40\n"), std::string::npos);
  EXPECT_NE(text.find("round;shard0;resolve 25\n"), std::string::npos);
  EXPECT_NE(text.find("round;shard1;finalize_revalidate 60\n"),
            std::string::npos);
  // Idle is a real stack too: lane 0 stalled 20ns behind lane 1.
  EXPECT_NE(text.find("round;shard0;idle 20\n"), std::string::npos);
  EXPECT_FALSE(profiler.WriteCollapsed("/nonexistent-dir/x/profile.folded"));
}

// ------------------------------------------------- serve determinism matrix

Workload MakeWorkload(int hosts, Tick horizon, uint64_t seed) {
  WorkloadConfig config;
  config.num_hosts = hosts;
  config.horizon = horizon;
  config.seed = seed;
  return WorkloadGenerator(config).Generate();
}

struct ServeWorld {
  Workload workload;
  core::OptumProfiles profiles;
};

const ServeWorld& World() {
  static const ServeWorld* world = [] {
    auto* w = new ServeWorld;
    w->workload = MakeWorkload(64, 3 * kTicksPerHour, 23);
    SimConfig sim_config;
    sim_config.pod_usage_period = 5;
    sim_config.max_attempts_per_tick = 1500;
    AlibabaBaseline reference;
    const SimResult ref = Simulator(w->workload, sim_config, reference).Run();
    core::OfflineProfilerConfig prof;
    prof.max_train_samples = 600;
    w->profiles = core::OfflineProfiler(prof).BuildProfiles(ref.trace);
    return w;
  }();
  return *world;
}

struct ProfiledRun {
  std::string counts;           // RoundProfiler::RenderCounts projection
  std::vector<PodId> placed;    // cross-check against the PR-9 invariant
  int64_t windows = 0;
  int64_t rounds = 0;
};

// Mirrors serve_pipeline_test's mild-overload regime, with the profiler
// attached through the Sinks bundle. A small window keeps several windows
// in a 10-round run.
ProfiledRun RunProfiled(size_t pipeline_depth, size_t shard_threads,
                        size_t ingest_threads, ProfileLog* log = nullptr) {
  const ServeWorld& world = World();
  serve::ServeConfig config;
  config.arrival.offered_pods_per_sec = 120.0;
  config.arrival.round_seconds = 1.0;
  config.distributed.num_schedulers = 2;
  config.distributed.max_attempts_per_pod = 8;
  config.distributed.shard_num_threads = shard_threads;
  config.queue_capacity_per_shard = 1024;
  config.max_schedule_per_round = 48;
  config.max_requeues = 8;
  config.mean_residency_rounds = 12.0;
  config.pipeline_depth = pipeline_depth;
  config.ingest_threads = ingest_threads;

  RoundProfiler::Options popts;
  popts.window_rounds = 8;
  RoundProfiler profiler(popts);
  profiler.set_log(log);

  ClusterState cluster(300, kUnitResources, /*history_window=*/64);
  serve::PlacementService service(world.workload, world.profiles, &cluster,
                                  config);
  obs::Sinks sinks;
  sinks.profile = &profiler;
  service.AttachSinks(sinks);
  service.RunRounds(10);
  service.Drain();
  profiler.Finalize();

  ProfiledRun out;
  out.counts = profiler.RenderCounts();
  out.placed = service.PlacedPodIds();
  out.windows = profiler.windows_flushed();
  out.rounds = profiler.rounds_profiled();
  return out;
}

// The tentpole invariant: profile count fields are bit-identical across the
// full pipeline/thread/ingest matrix, like every other export.
TEST(ProfilerServeTest, CountsBitIdenticalAcrossPipelineMatrix) {
  const ProfiledRun base = RunProfiled(/*pipeline_depth=*/1,
                                       /*shard_threads=*/0,
                                       /*ingest_threads=*/0);
  ASSERT_GT(base.rounds, 0);
  ASSERT_GT(base.windows, 0);
  ASSERT_FALSE(base.counts.empty());
  ASSERT_FALSE(base.placed.empty());
  for (const size_t depth : {size_t{1}, size_t{2}, size_t{3}}) {
    for (const size_t threads : {size_t{0}, size_t{1}, size_t{2}, size_t{8}}) {
      for (const size_t ingest : {size_t{0}, size_t{1}}) {
        if (depth == 1 && threads == 0 && ingest == 0) {
          continue;
        }
        const ProfiledRun run = RunProfiled(depth, threads, ingest);
        SCOPED_TRACE("depth=" + std::to_string(depth) +
                     " threads=" + std::to_string(threads) +
                     " ingest=" + std::to_string(ingest));
        EXPECT_EQ(run.placed, base.placed);
        EXPECT_EQ(run.counts, base.counts);
      }
    }
  }
}

TEST(ProfilerServeTest, ProfileFileParsesAndWindowsHaveCriticalPath) {
  const std::string path = ::testing::TempDir() + "/serve_profile.jsonl";
  {
    ProfileLog log(path);
    ASSERT_TRUE(log.ok());
    const ProfiledRun run = RunProfiled(/*pipeline_depth=*/2,
                                        /*shard_threads=*/2,
                                        /*ingest_threads=*/1, &log);
    ASSERT_GT(run.windows, 0);
  }
  std::map<int64_t, int64_t> window_barriers;  // window -> barrier_ns
  std::map<int64_t, int64_t> window_cp_rows;
  int64_t phase_rows = 0;
  const std::string err = obs::ForEachJsonlRow(
      path, obs::kProfileSchema, [&](const obs::JsonValue& row) {
        if (const obs::JsonValue* cp = row.Find("cp_shard"); cp != nullptr) {
          ++window_cp_rows[row.Find("window")->AsInt()];
          EXPECT_GT(row.Find("rounds_bound")->AsInt(), 0);
          return;
        }
        if (row.Find("shard") != nullptr) {
          ++phase_rows;
          EXPECT_GT(row.Find("count")->AsInt(), 0);
          return;
        }
        window_barriers[row.Find("window")->AsInt()] =
            row.Find("barrier_ns")->AsInt();
      });
  std::remove(path.c_str());
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_FALSE(window_barriers.empty());
  EXPECT_GT(phase_rows, 0);
  // Every window that saw barrier work has critical-path attribution.
  for (const auto& [window, barrier_ns] : window_barriers) {
    if (barrier_ns > 0) {
      EXPECT_GT(window_cp_rows[window], 0) << "window " << window;
    }
  }
}

// --------------------------------------------------------- simulator ticks

TEST(ProfilerSimTest, TickPhasesProfileThroughSinks) {
  const Workload workload = MakeWorkload(48, kTicksPerHour, 7);
  RoundProfiler::Options popts;
  popts.window_rounds = 64;
  RoundProfiler profiler(popts);

  AlibabaBaseline policy;
  SimConfig sim_config;
  sim_config.pod_usage_period = 5;
  sim_config.sinks.profile = &profiler;
  const SimResult result = Simulator(workload, sim_config, policy).Run();
  ASSERT_GT(result.scheduled_pods, 0);

  // Simulator::Run finalizes at the horizon: one round per tick, every tick
  // scoped through schedule/usage/completion phases.
  EXPECT_GT(profiler.rounds_profiled(), 0);
  EXPECT_GT(profiler.windows_flushed(), 0);
  EXPECT_EQ(profiler.count(ProfilePhase::kSpecScore),
            profiler.rounds_profiled());
  EXPECT_EQ(profiler.count(ProfilePhase::kResolve),
            profiler.rounds_profiled());
  EXPECT_EQ(profiler.count(ProfilePhase::kCommit), profiler.rounds_profiled());
  EXPECT_EQ(profiler.count(ProfilePhase::kIngestWait),
            profiler.rounds_profiled());
  // Single-lane: the scheduling phase substitutes for the barrier wall.
  EXPECT_GT(profiler.barrier_ns_total(), 0);
  EXPECT_EQ(profiler.count(ProfilePhase::kIdle), profiler.rounds_profiled());
  EXPECT_EQ(profiler.total_ns(ProfilePhase::kIdle), 0);
}

}  // namespace
}  // namespace optum
