// Equivalence and determinism guarantees for the performance architecture:
//  - the incremental host-scoring cache is bit-identical to full rescans,
//    at the predictor level and end-to-end (identical placement sequences
//    and headline aggregates on a seeded workload);
//  - the parallel simulator tick is bit-identical to the serial tick;
//  - the incrementally maintained per-host app counts and BE-mass index
//    match a from-scratch rebuild after arbitrary place/remove sequences.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "src/core/offline_profiler.h"
#include "src/core/optum_scheduler.h"
#include "src/core/resource_usage_predictor.h"
#include "src/sched/baselines.h"
#include "src/sim/simulator.h"
#include "src/stats/rng.h"
#include "src/trace/workload_generator.h"

namespace optum {
namespace {

using core::OptumConfig;
using core::OptumProfiles;
using core::OptumScheduler;
using core::ResourceUsagePredictor;
using core::ScoreMode;

// --- Shared fixtures ---------------------------------------------------------

Workload MakeWorkload(int hosts, Tick horizon, uint64_t seed) {
  WorkloadConfig config;
  config.num_hosts = hosts;
  config.horizon = horizon;
  config.seed = seed;
  return WorkloadGenerator(config).Generate();
}

SimConfig MakeSimConfig() {
  SimConfig config;
  config.pod_usage_period = 5;
  config.max_attempts_per_tick = 1500;
  return config;
}

OptumProfiles TrainProfiles(const Workload& workload, const SimConfig& sim_config,
                            bool with_triples) {
  AlibabaBaseline reference;
  const SimResult ref = Simulator(workload, sim_config, reference).Run();
  core::OfflineProfilerConfig prof;
  prof.max_train_samples = 600;
  prof.enable_triple_ero = with_triples;
  return core::OfflineProfiler(prof).BuildProfiles(ref.trace);
}

SimResult RunOptum(const Workload& workload, const SimConfig& sim_config,
                   OptumProfiles profiles, const OptumConfig& optum_config) {
  OptumScheduler optum(std::move(profiles), optum_config);
  SimConfig config = sim_config;
  config.on_tick_end = [&optum](const ClusterState& cluster, Tick now) {
    optum.ObserveColocation(cluster, now);
  };
  return Simulator(workload, config, optum).Run();
}

// Every decision and every headline aggregate must match exactly.
void ExpectIdenticalResults(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.trace.pods.size(), b.trace.pods.size());
  for (size_t i = 0; i < a.trace.pods.size(); ++i) {
    EXPECT_EQ(a.trace.pods[i].pod_id, b.trace.pods[i].pod_id) << "at " << i;
    EXPECT_EQ(a.trace.pods[i].original_machine_id, b.trace.pods[i].original_machine_id)
        << "placement diverged at decision " << i;
  }
  EXPECT_EQ(a.scheduled_pods, b.scheduled_pods);
  EXPECT_EQ(a.never_scheduled_pods, b.never_scheduled_pods);
  EXPECT_EQ(a.oom_kills, b.oom_kills);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.violation_host_ticks, b.violation_host_ticks);
  EXPECT_EQ(a.nonidle_host_ticks, b.nonidle_host_ticks);
  EXPECT_DOUBLE_EQ(a.MeanCpuUtilNonIdle(), b.MeanCpuUtilNonIdle());
  EXPECT_DOUBLE_EQ(a.MeanMemUtilNonIdle(), b.MeanMemUtilNonIdle());
  ASSERT_EQ(a.util_series.size(), b.util_series.size());
  for (size_t i = 0; i < a.util_series.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.util_series[i].avg_cpu_nonidle, b.util_series[i].avg_cpu_nonidle);
    EXPECT_DOUBLE_EQ(a.util_series[i].max_cpu, b.util_series[i].max_cpu);
  }
  ASSERT_EQ(a.trace.lifecycles.size(), b.trace.lifecycles.size());
  ASSERT_EQ(a.waits.size(), b.waits.size());
}

// --- Cached vs uncached scoring, end-to-end ----------------------------------

class CacheEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<ScoreMode, bool>> {};

TEST_P(CacheEquivalenceTest, IdenticalDecisionsAndAggregates) {
  const auto [score_mode, use_triple] = GetParam();
  const Workload workload = MakeWorkload(200, 3 * kTicksPerHour, 29);
  const SimConfig sim_config = MakeSimConfig();
  const OptumProfiles profiles = TrainProfiles(workload, sim_config, use_triple);

  OptumConfig cached;
  cached.score_mode = score_mode;
  cached.use_triple_ero = use_triple;
  cached.use_incremental_cache = true;
  OptumConfig uncached = cached;
  uncached.use_incremental_cache = false;

  const SimResult with_cache = RunOptum(workload, sim_config, profiles, cached);
  const SimResult without_cache = RunOptum(workload, sim_config, profiles, uncached);
  ExpectIdenticalResults(with_cache, without_cache);
  EXPECT_GT(with_cache.scheduled_pods, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, CacheEquivalenceTest,
    ::testing::Values(std::make_tuple(ScoreMode::kPaperAbsolute, false),
                      std::make_tuple(ScoreMode::kPaperAbsolute, true),
                      std::make_tuple(ScoreMode::kMarginal, false),
                      std::make_tuple(ScoreMode::kMarginal, true)));

// --- Predictor-level equivalence under mutation ------------------------------

TEST(IncrementalPredictorTest, MatchesRescanUnderPlacementAndEroChurn) {
  const Workload workload = MakeWorkload(8, kTicksPerHour, 11);
  for (const auto grouping : {ResourceUsagePredictor::Grouping::kPairwise,
                              ResourceUsagePredictor::Grouping::kTripleWise}) {
    OptumProfiles profiles;
    ClusterState cluster(8, kUnitResources, 16);
    ResourceUsagePredictor cached(&profiles, grouping);
    ASSERT_TRUE(cached.cache_enabled());

    Rng rng(123);
    std::vector<PodRuntime*> placed;
    size_t next_spec = 0;
    for (int step = 0; step < 400; ++step) {
      // Interleave placements, removals, and online ERO observations —
      // exactly the mutations the cache must invalidate on.
      const double roll = rng.NextDouble();
      if (roll < 0.55 && next_spec < workload.pods.size()) {
        const PodSpec& spec = workload.pods[next_spec++];
        const HostId host = static_cast<HostId>(rng.NextBelow(8));
        placed.push_back(cluster.Place(spec, &AppOf(workload, spec.app), host, 0));
      } else if (roll < 0.75 && !placed.empty()) {
        const size_t victim = rng.NextBelow(placed.size());
        cluster.Remove(placed[victim]);
        placed[victim] = placed.back();
        placed.pop_back();
      } else {
        const AppId a = static_cast<AppId>(rng.NextBelow(12));
        const AppId b = static_cast<AppId>(rng.NextBelow(12));
        profiles.ero.Observe(a, b, rng.NextDouble());
        if (grouping == ResourceUsagePredictor::Grouping::kTripleWise) {
          profiles.ero.ObserveTriple(a, b, static_cast<AppId>(rng.NextBelow(12)),
                                     rng.NextDouble());
        }
      }
      // Every host, as-is and with a hypothetical incoming pod: the cached
      // prediction must be bit-identical to the full rescan.
      const PodSpec& probe = workload.pods[rng.NextBelow(workload.pods.size())];
      for (const Host& host : cluster.hosts()) {
        const Resources base_cached = cached.PredictHost(host, nullptr);
        const Resources base_rescan = cached.PredictHostRescan(host, nullptr);
        EXPECT_DOUBLE_EQ(base_cached.cpu, base_rescan.cpu);
        EXPECT_DOUBLE_EQ(base_cached.mem, base_rescan.mem);
        const Resources inc_cached = cached.PredictHost(host, &probe);
        const Resources inc_rescan = cached.PredictHostRescan(host, &probe);
        EXPECT_DOUBLE_EQ(inc_cached.cpu, inc_rescan.cpu);
        EXPECT_DOUBLE_EQ(inc_cached.mem, inc_rescan.mem);
      }
    }
  }
}

TEST(IncrementalPredictorTest, InvalidateAllPicksUpProfileSwaps) {
  OptumProfiles profiles;
  ClusterState cluster(1, kUnitResources, 16);
  const Workload workload = MakeWorkload(1, kTicksPerHour, 3);
  const PodSpec& spec = workload.pods.front();
  cluster.Place(spec, &AppOf(workload, spec.app), 0, 0);

  ResourceUsagePredictor predictor(&profiles);
  const Resources before = predictor.PredictHost(cluster.host(0), nullptr);

  // Mutate the memory profile behind the predictor's back (what
  // ReplaceProfiles does wholesale) — the cache must be told.
  core::AppModel model;
  model.stats.mem_profile = 0.25;
  profiles.apps.emplace(spec.app, std::move(model));
  predictor.InvalidateAll();
  const Resources after = predictor.PredictHost(cluster.host(0), nullptr);
  EXPECT_DOUBLE_EQ(after.mem, 0.25 * spec.request.mem);
  EXPECT_NE(before.mem, after.mem);
  EXPECT_DOUBLE_EQ(after.cpu, predictor.PredictHostRescan(cluster.host(0), nullptr).cpu);
}

// --- Parallel tick determinism ----------------------------------------------

TEST(ParallelTickTest, BitIdenticalToSerial) {
  const Workload workload = MakeWorkload(96, 2 * kTicksPerHour, 17);
  SimConfig serial_config = MakeSimConfig();
  serial_config.num_threads = 0;
  SimConfig parallel_config = MakeSimConfig();
  parallel_config.num_threads = 4;

  AlibabaBaseline policy_serial;
  AlibabaBaseline policy_parallel;
  const SimResult serial = Simulator(workload, serial_config, policy_serial).Run();
  const SimResult parallel =
      Simulator(workload, parallel_config, policy_parallel).Run();
  ExpectIdenticalResults(serial, parallel);

  // Per-pod state must match too, not just aggregates.
  ASSERT_EQ(serial.trace.pod_usage.size(), parallel.trace.pod_usage.size());
  for (size_t i = 0; i < serial.trace.pod_usage.size(); ++i) {
    EXPECT_EQ(serial.trace.pod_usage[i].pod_id, parallel.trace.pod_usage[i].pod_id);
    EXPECT_DOUBLE_EQ(serial.trace.pod_usage[i].cpu_usage,
                     parallel.trace.pod_usage[i].cpu_usage);
    EXPECT_DOUBLE_EQ(serial.trace.pod_usage[i].cpu_psi_60,
                     parallel.trace.pod_usage[i].cpu_psi_60);
  }
}

// --- Incremental host-state maintenance --------------------------------------

TEST(HostStateMaintenanceTest, AppCountsAndBeMassMatchRebuild) {
  const Workload workload = MakeWorkload(6, kTicksPerHour, 5);
  ClusterState cluster(6, kUnitResources, 16);
  Rng rng(9);
  std::vector<PodRuntime*> placed;
  size_t next_spec = 0;
  for (int step = 0; step < 300; ++step) {
    if ((rng.NextDouble() < 0.6 && next_spec < workload.pods.size()) ||
        placed.empty()) {
      if (next_spec >= workload.pods.size()) {
        break;
      }
      const PodSpec& spec = workload.pods[next_spec++];
      placed.push_back(cluster.Place(spec, &AppOf(workload, spec.app),
                                     static_cast<HostId>(rng.NextBelow(6)), 0));
    } else {
      const size_t victim = rng.NextBelow(placed.size());
      cluster.Remove(placed[victim]);
      placed[victim] = placed.back();
      placed.pop_back();
    }

    size_t hosts_with_be_expected = 0;
    for (const Host& host : cluster.hosts()) {
      // Rebuild app counts from the pod list and compare.
      std::vector<HostAppCount> rebuilt;
      double be_cpu = 0.0;
      int be_count = 0;
      for (const PodRuntime* pod : host.pods) {
        auto it = std::find_if(rebuilt.begin(), rebuilt.end(), [&](const auto& c) {
          return c.app == pod->spec.app;
        });
        if (it == rebuilt.end()) {
          rebuilt.push_back(HostAppCount{pod->spec.app, pod->spec.slo, 1});
        } else {
          ++it->count;
        }
        if (pod->spec.slo == SloClass::kBe) {
          be_cpu += pod->spec.request.cpu;
          ++be_count;
        }
      }
      ASSERT_EQ(host.app_counts.size(), rebuilt.size()) << "host " << host.id;
      for (const auto& expected : rebuilt) {
        auto it = std::find_if(
            host.app_counts.begin(), host.app_counts.end(),
            [&](const auto& c) { return c.app == expected.app; });
        ASSERT_NE(it, host.app_counts.end());
        EXPECT_EQ(it->count, expected.count);
      }
      // Sorted-by-app invariant (interference sums rely on a canonical
      // iteration order).
      for (size_t i = 1; i < host.app_counts.size(); ++i) {
        EXPECT_LT(host.app_counts[i - 1].app, host.app_counts[i].app);
      }
      EXPECT_EQ(host.be_pod_count, be_count);
      EXPECT_NEAR(host.be_request_cpu, be_cpu, 1e-12);
      if (be_count > 0) {
        ++hosts_with_be_expected;
        EXPECT_NE(std::find(cluster.hosts_with_be().begin(),
                            cluster.hosts_with_be().end(), host.id),
                  cluster.hosts_with_be().end());
      }
    }
    EXPECT_EQ(cluster.hosts_with_be().size(), hosts_with_be_expected);
  }
}

// --- Wait-reason classification (single-computation restructure) -------------

class WaitReasonTest : public ::testing::TestWithParam<bool> {};

TEST_P(WaitReasonTest, ClassificationUnchangedByCache) {
  const bool use_cache = GetParam();
  // One tiny host; profiles empty so predictions fall back to full requests
  // (ERO = 1.0, mem_profile = 1.0) and classification is exact.
  OptumProfiles profiles;
  OptumConfig config;
  config.use_incremental_cache = use_cache;
  config.min_candidates = 1;
  OptumScheduler optum(std::move(profiles), config);
  ClusterState cluster(1, Resources{1.0, 1.0}, 16);

  AppProfile app;
  app.id = 4;
  app.slo = SloClass::kLs;

  auto decide = [&](Resources request) {
    PodSpec pod;
    pod.id = 1;
    pod.app = app.id;
    pod.slo = app.slo;
    pod.request = request;
    pod.limit = request;
    return optum.Place(pod, app, cluster);
  };

  EXPECT_EQ(decide({1.5, 0.1}).reason, WaitReason::kInsufficientCpu);
  EXPECT_EQ(decide({0.1, 0.95}).reason, WaitReason::kInsufficientMem);  // > 0.8 cap
  EXPECT_EQ(decide({1.5, 0.95}).reason, WaitReason::kInsufficientCpuAndMem);
  EXPECT_TRUE(decide({0.3, 0.3}).placed());

  // Anti-affinity with room left on the host: reason must be kOther.
  PodSpec limited;
  limited.id = 2;
  limited.app = app.id;
  limited.slo = app.slo;
  limited.request = {0.1, 0.1};
  limited.limit = {0.1, 0.1};
  limited.max_pods_per_host = 1;
  const PodSpec first = limited;
  cluster.Place(first, &app, 0, 0);
  EXPECT_EQ(optum.Place(limited, app, cluster).reason, WaitReason::kOther);
}

INSTANTIATE_TEST_SUITE_P(CachedAndUncached, WaitReasonTest, ::testing::Bool());

}  // namespace
}  // namespace optum
