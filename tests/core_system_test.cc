// Tests for the Fig. 17 closed loop: TracingCoordinator and OptumSystem.
#include <gtest/gtest.h>

#include "src/core/optum_system.h"
#include "src/sched/baselines.h"
#include "src/sim/simulator.h"
#include "src/trace/workload_generator.h"

namespace optum::core {
namespace {

Workload SmallWorkload(Tick horizon = 300) {
  WorkloadConfig config;
  config.num_hosts = 16;
  config.horizon = horizon;
  config.num_ls_apps = 5;
  config.num_lsr_apps = 2;
  config.num_be_apps = 8;
  config.num_system_apps = 1;
  config.num_vmenv_apps = 1;
  config.num_unknown_apps = 2;
  config.seed = 13;
  return WorkloadGenerator(config).Generate();
}

TEST(TracingCoordinatorTest, CollectsSamplesAtConfiguredCadence) {
  const Workload workload = SmallWorkload(120);
  TracingConfig config;
  config.node_sample_period = 4;
  config.pod_sample_period = 6;
  config.window = 1000;
  TracingCoordinator coordinator(config);
  SimConfig sim_config;
  sim_config.on_tick_end = [&](const ClusterState& cluster, Tick now) {
    coordinator.OnTick(cluster, now);
  };
  AlibabaBaseline scheduler;
  Simulator(workload, sim_config, scheduler).Run();

  const TraceBundle snapshot = coordinator.Snapshot();
  EXPECT_EQ(snapshot.nodes.size(), 16u);
  ASSERT_FALSE(snapshot.node_usage.empty());
  ASSERT_FALSE(snapshot.pod_usage.empty());
  for (const auto& rec : snapshot.node_usage) {
    EXPECT_EQ(rec.collect_tick % 4, 0);
  }
  for (const auto& rec : snapshot.pod_usage) {
    EXPECT_EQ(rec.collect_tick % 6, 0);
    EXPECT_GE(rec.host, 0);
    // Metadata exists for every sampled pod.
    bool found = false;
    for (const auto& meta : snapshot.pods) {
      if (meta.pod_id == rec.pod_id) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "pod " << rec.pod_id;
    if (!found) {
      break;
    }
  }
}

TEST(TracingCoordinatorTest, WindowEvictsOldRecords) {
  const Workload workload = SmallWorkload(240);
  TracingConfig config;
  config.window = 60;  // half an hour
  TracingCoordinator coordinator(config);
  SimConfig sim_config;
  Tick last = 0;
  sim_config.on_tick_end = [&](const ClusterState& cluster, Tick now) {
    coordinator.OnTick(cluster, now);
    last = now;
  };
  AlibabaBaseline scheduler;
  Simulator(workload, sim_config, scheduler).Run();

  const TraceBundle snapshot = coordinator.Snapshot();
  for (const auto& rec : snapshot.node_usage) {
    EXPECT_GE(rec.collect_tick, last - config.window);
  }
  for (const auto& rec : snapshot.pod_usage) {
    EXPECT_GE(rec.collect_tick, last - config.window);
  }
}

TEST(TracingCoordinatorTest, DetectsCompletions) {
  const Workload workload = SmallWorkload(240);
  TracingCoordinator coordinator(TracingConfig{.window = 10000});
  SimConfig sim_config;
  sim_config.on_tick_end = [&](const ClusterState& cluster, Tick now) {
    coordinator.OnTick(cluster, now);
  };
  AlibabaBaseline scheduler;
  const SimResult result = Simulator(workload, sim_config, scheduler).Run();

  // The coordinator's completion count tracks the simulator's BE finishes
  // (OOM/preemption churn can add extra exit events).
  int64_t finished_be = 0;
  for (const auto& rec : result.trace.lifecycles) {
    if (rec.slo == SloClass::kBe && rec.finish_tick >= 0) {
      ++finished_be;
    }
  }
  EXPECT_GE(static_cast<int64_t>(coordinator.lifecycle_records()), finished_be);
  const TraceBundle snapshot = coordinator.Snapshot();
  for (const auto& rec : snapshot.lifecycles) {
    EXPECT_GE(rec.finish_tick, rec.schedule_tick);
    EXPECT_GT(rec.actual_completion_ticks, 0.0);
  }
}

TEST(OptumSystemTest, ColdStartSchedulesSafely) {
  const Workload workload = SmallWorkload(240);
  OptumSystemConfig config;
  config.reprofile_period = 0;  // no background profiling
  OptumSystem system(config);
  SimConfig sim_config;
  sim_config.on_tick_end = [&](const ClusterState& cluster, Tick now) {
    system.OnTickEnd(cluster, now);
  };
  const SimResult result = Simulator(workload, sim_config, system).Run();
  EXPECT_GT(result.scheduled_pods, 0);
  EXPECT_EQ(system.reprofile_count(), 0);
  EXPECT_LE(result.violation_rate(), 0.01);
}

TEST(OptumSystemTest, BackgroundReprofilingFires) {
  const Workload workload = SmallWorkload(360);
  OptumSystemConfig config;
  config.reprofile_period = 100;
  config.warmup = 50;
  config.profiler.max_train_samples = 200;
  config.profiler.min_samples = 20;
  OptumSystem system(config);
  SimConfig sim_config;
  sim_config.on_tick_end = [&](const ClusterState& cluster, Tick now) {
    system.OnTickEnd(cluster, now);
  };
  Simulator(workload, sim_config, system).Run();
  // Warmup 50, period 100, horizon 360 -> passes at ~50, 150, 250, 350.
  EXPECT_GE(system.reprofile_count(), 3);
  // Profiles now carry trained per-app entries.
  EXPECT_GT(system.scheduler().profiles().apps.size(), 0u);
}

TEST(OptumSystemTest, ReprofilingPreservesEroMaxima) {
  const Workload workload = SmallWorkload(300);
  OptumSystemConfig config;
  config.reprofile_period = 80;
  config.warmup = 40;
  config.profiler.min_samples = 1000000;  // models never train; ERO only
  OptumSystem system(config);
  SimConfig sim_config;
  double ero_before = -1;
  AppId a = -1, b = -1;
  sim_config.on_tick_end = [&](const ClusterState& cluster, Tick now) {
    system.OnTickEnd(cluster, now);
    if (now == 200) {
      // Pick any observed pair and remember its value.
      for (const Host& host : cluster.hosts()) {
        if (host.pods.size() >= 2) {
          a = host.pods[0]->spec.app;
          b = host.pods[1]->spec.app;
          ero_before = system.scheduler().profiles().ero.Get(a, b);
          break;
        }
      }
    }
  };
  Simulator(workload, sim_config, system).Run();
  ASSERT_GE(ero_before, 0.0);
  // ERO keeps maxima across reprofiling: it can only rise afterwards.
  EXPECT_GE(system.scheduler().profiles().ero.Get(a, b), ero_before - 1e-12);
}

TEST(OptumSystemTest, ReplaceProfilesInvalidatesPredictions) {
  OptumProfiles initial;
  AppModel be;
  be.stats.slo = SloClass::kBe;
  be.stats.mem_profile = 0.5;
  initial.apps.emplace(0, std::move(be));
  initial.ero.Observe(0, 0, 0.2);
  OptumConfig config;
  config.sample_fraction = 1.0;
  config.min_candidates = 2;
  OptumScheduler scheduler(std::move(initial), config);
  EXPECT_DOUBLE_EQ(scheduler.profiles().ero.Get(0, 0), 0.2);

  OptumProfiles fresh;
  fresh.ero.Observe(0, 0, 0.7);
  scheduler.ReplaceProfiles(std::move(fresh));
  EXPECT_DOUBLE_EQ(scheduler.profiles().ero.Get(0, 0), 0.7);
  EXPECT_EQ(scheduler.profiles().Find(0), nullptr);  // fresh had no models
}

}  // namespace
}  // namespace optum::core
