// Tests for the observability layer (DESIGN.md §9): metric registry
// semantics (lane-sharded counters merged on read, last-write-wins gauges,
// log-scale histogram bucketing) and the pinned export schemas — the
// registry JSON dump and the JSONL decision-log line format — so downstream
// consumers can rely on them.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/decision_log.h"
#include "src/obs/hotspot.h"
#include "src/obs/json_writer.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/schema.h"
#include "src/obs/slo.h"
#include "src/obs/span_log.h"
#include "src/obs/timer.h"
#include "src/obs/timeseries.h"
#include "src/serve/latency.h"
#include "src/trace/trace_stats.h"

namespace optum::obs {
namespace {

// ---------------------------------------------------------------- Counter

TEST(CounterTest, MergesAcrossLanes) {
  MetricRegistry registry(/*num_lanes=*/4);
  Counter* c = registry.counter("c");
  c->Inc(0);
  c->Inc(1, 10);
  c->Inc(2, 100);
  c->Inc(3, 1000);
  c->Inc(3);
  EXPECT_EQ(c->Value(), 1112u);
}

TEST(CounterTest, LookupIsIdempotent) {
  MetricRegistry registry;
  Counter* a = registry.counter("same");
  a->Inc();
  Counter* b = registry.counter("same");
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->Value(), 1u);
}

TEST(CounterTest, ParallelLaneUpdatesLoseNothing) {
  constexpr size_t kLanes = 8;
  constexpr uint64_t kPerLane = 20000;
  MetricRegistry registry(kLanes);
  Counter* c = registry.counter("c");
  std::vector<std::thread> threads;
  for (size_t lane = 0; lane < kLanes; ++lane) {
    threads.emplace_back([c, lane] {
      for (uint64_t i = 0; i < kPerLane; ++i) {
        c->Inc(lane);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(c->Value(), kLanes * kPerLane);
}

TEST(CounterTest, SetNumLanesGrowsExistingMetrics) {
  MetricRegistry registry(1);
  Counter* c = registry.counter("c");
  c->Inc(0, 5);
  registry.set_num_lanes(4);
  c->Inc(3, 7);  // would be out of bounds without the grow
  EXPECT_EQ(c->Value(), 12u);
  // Grow-only: shrinking is a no-op.
  registry.set_num_lanes(2);
  EXPECT_EQ(registry.num_lanes(), 4u);
}

// ------------------------------------------------------------------ Gauge

TEST(GaugeTest, LastWriteWinsAcrossLanes) {
  MetricRegistry registry(4);
  Gauge* g = registry.gauge("g");
  EXPECT_FALSE(g->ever_set());
  EXPECT_EQ(g->Value(), 0.0);
  g->Set(1.5, 0);
  g->Set(2.5, 3);  // later write on a different lane wins
  EXPECT_EQ(g->Value(), 2.5);
  g->Set(0.5, 1);
  EXPECT_EQ(g->Value(), 0.5);
  EXPECT_TRUE(g->ever_set());
}

// -------------------------------------------------------------- Histogram

TEST(HistogramTest, BucketBoundaries) {
  // Bucket i covers [2^(i-30), 2^(i-29)); 1.0 == 2^0 opens bucket 30.
  EXPECT_EQ(Histogram::BucketIndex(1.0), 30u);
  EXPECT_EQ(Histogram::BucketLowerBound(30), 1.0);
  EXPECT_EQ(Histogram::BucketIndex(1.999), 30u);
  EXPECT_EQ(Histogram::BucketIndex(2.0), 31u);
  // Bucket 0 lower bound is 2^-30; everything at or below clamps to 0.
  EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(0)), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1e-12), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-3.0), 0u);
  // Exact powers of two open their bucket; the value just below falls in
  // the previous one.
  EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(17)), 17u);
  // The top bucket absorbs everything beyond the table.
  EXPECT_EQ(Histogram::BucketIndex(1e30), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, MergedAggregatesAcrossLanes) {
  MetricRegistry registry(2);
  Histogram* h = registry.histogram("h");
  h->Record(1.0, 0);
  h->Record(4.0, 1);
  h->Record(16.0, 1);
  EXPECT_EQ(h->Count(), 3u);
  EXPECT_DOUBLE_EQ(h->Sum(), 21.0);
  EXPECT_DOUBLE_EQ(h->Max(), 16.0);
  EXPECT_DOUBLE_EQ(h->Mean(), 7.0);
  const auto buckets = h->MergedBuckets();
  EXPECT_EQ(buckets[Histogram::BucketIndex(1.0)], 1u);
  EXPECT_EQ(buckets[Histogram::BucketIndex(4.0)], 1u);
  EXPECT_EQ(buckets[Histogram::BucketIndex(16.0)], 1u);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  MetricRegistry registry;
  Histogram* h = registry.histogram("h");
  EXPECT_EQ(h->Percentile(50), 0.0);  // empty
  h->Record(1.0);
  // One sample in [1, 2): p50 lands halfway through the bucket.
  EXPECT_DOUBLE_EQ(h->Percentile(50), 1.5);
  EXPECT_DOUBLE_EQ(h->Percentile(100), 2.0);
  // Percentiles are monotone in p.
  for (int i = 0; i < 256; ++i) {
    h->Record(static_cast<double>(i % 16) + 0.5);
  }
  double prev = 0.0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double v = h->Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

// ------------------------------------------------------------ ScopedTimer

TEST(ScopedTimerTest, NullSinkRecordsNothingAndIsCheap) {
  { ScopedTimer t(nullptr); }  // must not crash, no clock reads
  MetricRegistry registry;
  Histogram* h = registry.histogram("t");
  { ScopedTimer t(h); }
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_GE(h->Sum(), 0.0);
}

// ----------------------------------------------------------- JSON exports

TEST(MetricRegistryTest, ToJsonGolden) {
  MetricRegistry registry;
  registry.counter("c")->Inc(0, 3);
  Gauge* g = registry.gauge("g");
  g->Set(2.5);
  registry.histogram("h")->Record(1.0);
  const std::string json = registry.ToJson();
  // v2 of the schema: no embedded "series" section — time series stream to
  // JSONL through TimeSeriesRecorder instead of accumulating in the registry.
  EXPECT_EQ(json,
            std::string("{\"schema\":\"") + kMetricsSchema + "\"," +
            "\"counters\":{\"c\":3},"
            "\"gauges\":{\"g\":2.5},"
            "\"histograms\":{\"h\":{\"count\":1,\"sum\":1,\"mean\":1,\"max\":1,"
            "\"p50\":1.5,\"p90\":1.9,\"p99\":1.99,\"buckets\":[[1,1]]}}}");
}

TEST(SchemaTableTest, ListsEveryTagExactlyOnce) {
  std::vector<std::string> tags;
  for (const SchemaInfo& s : kSchemas) {
    EXPECT_NE(s.producer, nullptr);
    tags.emplace_back(s.tag);
  }
  ASSERT_EQ(tags.size(), 9u);
  EXPECT_NE(std::find(tags.begin(), tags.end(), kMetricsSchema), tags.end());
  EXPECT_NE(std::find(tags.begin(), tags.end(), kRunsimSchema), tags.end());
  EXPECT_NE(std::find(tags.begin(), tags.end(), kSummarySchema), tags.end());
  EXPECT_NE(std::find(tags.begin(), tags.end(), kSpansSchema), tags.end());
  EXPECT_NE(std::find(tags.begin(), tags.end(), kSeriesSchema), tags.end());
  EXPECT_NE(std::find(tags.begin(), tags.end(), kLatencySchema), tags.end());
  EXPECT_NE(std::find(tags.begin(), tags.end(), kHotspotSchema), tags.end());
  EXPECT_NE(std::find(tags.begin(), tags.end(), kSloSchema), tags.end());
  EXPECT_NE(std::find(tags.begin(), tags.end(), kProfileSchema), tags.end());
  for (const std::string& tag : tags) {
    EXPECT_EQ(tag.rfind("optum.", 0), 0u) << tag;
    // Every tag ends in an explicit version: ".v<digit>".
    ASSERT_GE(tag.size(), 3u);
    EXPECT_EQ(tag.substr(tag.size() - 3, 2), ".v") << tag;
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(tag.back()))) << tag;
    EXPECT_EQ(std::count(tags.begin(), tags.end(), tag), 1) << tag;
  }
}

// Registry discipline: every schema in kSchemas[] must have a golden render
// here, produced by the real exporter, that carries the tag. Adding a tenth
// schema without registering its renderer fails this test — the map is the
// checklist, not a convention.
TEST(SchemaTableTest, EveryTagHasAGoldenRender) {
  std::map<std::string, std::string> goldens;
  goldens[kMetricsSchema] = MetricRegistry().ToJson();
  // optum.runsim.v1 is rendered inline by the runsim tool (no library
  // renderer); its shape is pinned by tooling_test's --json run.
  goldens[kRunsimSchema] = R"({"schema":"optum.runsim.v1")";
  goldens[kSummarySchema] = ::optum::RenderSummaryJson(::optum::TraceSummary());
  goldens[kSpansSchema] = SpanLog::RenderHeader();
  goldens[kSeriesSchema] = TimeSeriesRecorder::RenderHeader(1);
  goldens[kLatencySchema] = serve::RenderLatencyHeader();
  goldens[kHotspotSchema] = HotspotLog::RenderHeader();
  goldens[kSloSchema] = SloAccumulator().RenderJson(1.0);
  goldens[kProfileSchema] = ProfileLog::RenderHeader();
  for (const SchemaInfo& s : kSchemas) {
    const auto it = goldens.find(s.tag);
    ASSERT_NE(it, goldens.end()) << "no golden render registered for " << s.tag;
    EXPECT_NE(it->second.find(std::string("\"schema\":\"") + s.tag + "\""),
              std::string::npos)
        << s.tag << " render does not carry its schema tag: " << it->second;
  }
  EXPECT_EQ(goldens.size(), std::size(kSchemas));
}

TEST(MetricRegistryTest, CollectGaugesAppendsNamesCreatedMidRun) {
  MetricRegistry registry;
  registry.gauge("early")->Set(1.0);
  std::vector<std::string> names;
  std::vector<double> values;
  registry.CollectGauges(&names, &values);
  ASSERT_EQ(names, (std::vector<std::string>{"early"}));
  EXPECT_EQ(values, (std::vector<double>{1.0}));
  // A gauge created after the first collection appends its name (the caller's
  // column order stays stable) and its value shows up from then on.
  registry.gauge("late")->Set(9.0);
  registry.CollectGauges(&names, &values);
  EXPECT_EQ(names, (std::vector<std::string>{"early", "late"}));
  EXPECT_EQ(values, (std::vector<double>{1.0, 9.0}));
}

TEST(MetricRegistryTest, CollectorsRunOnCollectAndExport) {
  MetricRegistry registry;
  int runs = 0;
  registry.AddCollector([&runs](MetricRegistry* r) {
    ++runs;
    r->gauge("pulled")->Set(static_cast<double>(runs));
  });
  std::vector<std::string> names;
  std::vector<double> values;
  registry.CollectGauges(&names, &values);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(values, (std::vector<double>{1.0}));
  const std::string json = registry.ToJson();
  EXPECT_EQ(runs, 2);
  EXPECT_NE(json.find("\"pulled\":2"), std::string::npos) << json;
}

TEST(MetricRegistryTest, WriteJsonFileRoundTrips) {
  MetricRegistry registry;
  registry.counter("c")->Inc();
  const std::string path = ::testing::TempDir() + "/obs_metrics.json";
  ASSERT_TRUE(registry.WriteJsonFile(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 12, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, registry.ToJson() + "\n");
}

// ----------------------------------------------------------- JsonWriter

TEST(JsonWriterTest, EscapesAndFormats) {
  JsonWriter w;
  w.BeginObject();
  w.KV("s", "a\"b\\c\nd");
  w.KV("nan", std::nan(""));
  w.KV("neg", static_cast<int64_t>(-7));
  w.Key("raw").RawValue("[1,2]");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\",\"nan\":null,\"neg\":-7,\"raw\":[1,2]}");
}

// ---------------------------------------------------------- Decision log

DecisionTrace MakeTrace() {
  DecisionTrace trace;
  trace.tick = 42;
  trace.pod = 7;
  trace.app = 3;
  trace.slo = SloClass::kLs;
  trace.candidates_sampled = 5;
  trace.candidates_feasible = 2;
  trace.chosen = 11;
  trace.chosen_score = 0.25;
  trace.reject_reason = "None";
  CandidateTrace c;
  c.host = 11;
  c.feasible = true;
  c.score = 0.25;
  c.cpu_util = 0.5;
  c.mem_util = 0.75;
  c.usage_fit = 0.375;
  c.interference = 0.125;
  c.cache_misses = 4;
  trace.top.push_back(c);
  return trace;
}

TEST(DecisionLogTest, RenderGolden) {
  // The JSONL schema is load-bearing for downstream analysis: pin it.
  EXPECT_EQ(DecisionLog::Render(MakeTrace()),
            "{\"tick\":42,\"pod\":7,\"app\":3,\"slo\":\"LS\","
            "\"sampled\":5,\"feasible\":2,\"chosen\":11,\"score\":0.25,"
            "\"reason\":\"None\",\"top\":[{\"host\":11,\"score\":0.25,"
            "\"cpu_util\":0.5,\"mem_util\":0.75,\"usage_fit\":0.375,"
            "\"interference\":0.125,\"cache_misses\":4}]}");
}

TEST(DecisionLogTest, AppendWritesOneLinePerRecord) {
  const std::string path = ::testing::TempDir() + "/obs_decisions.jsonl";
  {
    DecisionLog log(path);
    ASSERT_TRUE(log.ok());
    log.Append(MakeTrace());
    log.Append(MakeTrace());
    EXPECT_EQ(log.records_written(), 2);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 14, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  const std::string line = DecisionLog::Render(MakeTrace()) + "\n";
  EXPECT_EQ(contents, line + line);
}

}  // namespace
}  // namespace optum::obs
