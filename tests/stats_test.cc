// Tests for src/stats: RNG, descriptive statistics, CDFs, and temporal
// patterns. Includes parameterized property sweeps across seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/stats/cdf.h"
#include "src/stats/descriptive.h"
#include "src/stats/patterns.h"
#include "src/stats/rng.h"

namespace optum {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++seen[rng.NextBelow(10)];
  }
  for (int count : seen) {
    EXPECT_GT(count, 800);  // ~1000 expected per bucket
    EXPECT_LT(count, 1200);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.Gaussian(2.0, 3.0));
  }
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(42);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.Exponential(4.0));
  }
  EXPECT_NEAR(stats.mean(), 0.25, 0.02);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(42);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(rng.LogNormal(1.0, 0.5));
  }
  // Median of lognormal(mu, sigma) is e^mu.
  EXPECT_NEAR(Percentile(samples, 50), std::exp(1.0), 0.1);
}

TEST(RngTest, ParetoBoundsAndHeavyTail) {
  Rng rng(42);
  double max_seen = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.Pareto(1.0, 2.0);
    EXPECT_GE(v, 1.0);
    max_seen = std::max(max_seen, v);
  }
  EXPECT_GT(max_seen, 10.0);  // Heavy tail reaches far.
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(42);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.Split(1);
  Rng parent2(9);
  Rng child2 = parent2.Split(1);
  // Same lineage -> same child stream.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(child.NextU64(), child2.NextU64());
  }
  // Different salt -> different stream.
  Rng parent3(9);
  Rng other = parent3.Split(2);
  Rng parent4(9);
  Rng ref = parent4.Split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += other.NextU64() == ref.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

// Property sweep: distribution sanity across seeds.
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, UnitUniformMeanNearHalf) {
  Rng rng(GetParam());
  double acc = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    acc += rng.NextDouble();
  }
  EXPECT_NEAR(acc / kN, 0.5, 0.02);
}

TEST_P(RngSeedSweep, GaussianSymmetry) {
  Rng rng(GetParam());
  int positive = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    positive += rng.NextGaussian() > 0 ? 1 : 0;
  }
  EXPECT_NEAR(positive / static_cast<double>(kN), 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 17, 99, 12345, 0xdeadbeef));

TEST(DescriptiveTest, MeanAndStdDev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);  // classic example
}

TEST(DescriptiveTest, EmptyAndSingletonEdges) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  const std::vector<double> one = {5.0};
  EXPECT_DOUBLE_EQ(Mean(one), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(one), 0.0);
}

TEST(DescriptiveTest, CoefficientOfVariation) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(CoefficientOfVariation(xs), 2.0 / 5.0);
  const std::vector<double> zeros = {0, 0, 0};
  EXPECT_DOUBLE_EQ(CoefficientOfVariation(zeros), 0.0);
}

TEST(DescriptiveTest, PercentileInterpolation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 1.75);
}

TEST(DescriptiveTest, PercentileUnsortedInput) {
  const std::vector<double> xs = {9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 5.0);
}

TEST(DescriptiveTest, MinMax) {
  const std::vector<double> xs = {3, -1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 5.0);
}

TEST(DescriptiveTest, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  std::vector<double> neg(ys.rbegin(), ys.rend());
  EXPECT_NEAR(PearsonCorrelation(xs, neg), -1.0, 1e-12);
}

TEST(DescriptiveTest, PearsonConstantSeriesIsZero) {
  const std::vector<double> xs = {1, 1, 1, 1};
  const std::vector<double> ys = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(xs, ys), 0.0);
}

TEST(DescriptiveTest, SpearmanMonotonicNonlinear) {
  // y = x^3 is monotonic: Spearman must be exactly 1, Pearson below 1.
  std::vector<double> xs, ys;
  for (int i = -5; i <= 5; ++i) {
    xs.push_back(i);
    ys.push_back(std::pow(i, 3));
  }
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(xs, ys), 1.0);
}

TEST(DescriptiveTest, FractionalRanksWithTies) {
  const std::vector<double> xs = {10, 20, 20, 30};
  const std::vector<double> ranks = FractionalRanks(xs);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(DescriptiveTest, OnlineStatsMatchesBatch) {
  Rng rng(3);
  std::vector<double> xs;
  OnlineStats online;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    xs.push_back(v);
    online.Add(v);
  }
  EXPECT_NEAR(online.mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(online.stddev(), StdDev(xs), 1e-9);
  EXPECT_DOUBLE_EQ(online.min(), Min(xs));
  EXPECT_DOUBLE_EQ(online.max(), Max(xs));
  EXPECT_EQ(online.count(), 1000);
}

TEST(CdfTest, FractionAtOrBelow) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(10.0), 1.0);
}

TEST(CdfTest, AddAndFinalize) {
  EmpiricalCdf cdf;
  cdf.Add(3.0);
  cdf.Add(1.0);
  cdf.Add(2.0);
  cdf.Finalize();
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.ValueAtPercentile(50), 2.0);
}

TEST(CdfTest, SummaryContainsQuantiles) {
  EmpiricalCdf cdf({1, 2, 3, 4, 5});
  const std::string s = cdf.Summary(std::vector<double>{50.0});
  EXPECT_NE(s.find("p50"), std::string::npos);
}

TEST(CdfTest, DefaultQuantilesSortedAndInRange) {
  const auto qs = DefaultQuantiles();
  EXPECT_TRUE(std::is_sorted(qs.begin(), qs.end()));
  EXPECT_GE(qs.front(), 0.0);
  EXPECT_LE(qs.back(), 100.0);
}

TEST(PatternsTest, DiurnalBounds) {
  const DiurnalPattern p(0.4, 0.0);
  for (Tick t = 0; t < kTicksPerDay; t += 7) {
    const double v = p.At(t);
    EXPECT_GE(v, 0.4 - 1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(PatternsTest, DiurnalPeriodicity) {
  const DiurnalPattern p(0.3, 0.17);
  for (Tick t = 0; t < kTicksPerDay; t += 100) {
    EXPECT_NEAR(p.At(t), p.At(t + kTicksPerDay), 1e-12);
  }
}

TEST(PatternsTest, AntiDiurnalOpposesDiurnal) {
  const DiurnalPattern day(0.0, 0.0);
  const AntiDiurnalPattern night(0.0, 0.0);
  // Where one peaks the other troughs.
  EXPECT_NEAR(day.At(0), 1.0, 1e-9);
  EXPECT_NEAR(night.At(0), 0.0, 1e-9);
  EXPECT_NEAR(night.At(kTicksPerDay / 2), 1.0, 1e-9);
}

TEST(PatternsTest, PhaseShiftsPeak) {
  const DiurnalPattern p(0.0, 0.25);  // peak shifted by a quarter day
  double best = -1.0;
  Tick best_t = 0;
  for (Tick t = 0; t < kTicksPerDay; ++t) {
    if (p.At(t) > best) {
      best = p.At(t);
      best_t = t;
    }
  }
  EXPECT_NEAR(static_cast<double>(best_t), 0.75 * kTicksPerDay, 2.0);
}

}  // namespace
}  // namespace optum
