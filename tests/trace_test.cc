// Tests for src/trace: application models, the calibrated workload
// generator, and CSV trace I/O.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "src/stats/descriptive.h"
#include "src/trace/app_model.h"
#include "src/trace/trace_io.h"
#include "src/trace/workload_generator.h"

namespace optum {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig config;
  config.num_hosts = 24;
  config.horizon = kTicksPerDay / 4;
  config.seed = 7;
  return config;
}

TEST(AppModelTest, PodBehaviorUnitMeanScales) {
  AppProfile app;
  app.slo = SloClass::kBe;
  app.cpu_pod_cov = 0.3;
  app.work_mean_ticks = 50;
  app.work_cov = 0.2;
  Rng rng(1);
  OnlineStats cpu_scales, works;
  for (int i = 0; i < 5000; ++i) {
    const PodBehavior b = SamplePodBehavior(app, rng);
    cpu_scales.Add(b.cpu_scale);
    works.Add(b.work_ticks);
  }
  EXPECT_NEAR(cpu_scales.mean(), 1.0, 0.05);
  EXPECT_NEAR(cpu_scales.stddev(), 0.3, 0.05);
  EXPECT_NEAR(works.mean(), 50.0, 2.0);
}

TEST(AppModelTest, CpuDemandRespectsCeiling) {
  AppProfile app;
  app.slo = SloClass::kLs;
  app.request = {0.1, 0.05};
  app.cpu_usage_fraction = 0.3;
  app.cpu_usage_ceiling = 0.5;
  Rng rng(2);
  PodBehavior b = SamplePodBehavior(app, rng);
  b.cpu_scale = 10.0;  // extreme pod: ceiling must clamp
  Rng noise(3);
  for (Tick t = 0; t < 200; ++t) {
    EXPECT_LE(PodCpuDemand(app, b, t, noise), 0.5 * 0.1 + 1e-12);
  }
}

TEST(AppModelTest, LsCpuFollowsDiurnalQps) {
  AppProfile app;
  app.slo = SloClass::kLs;
  app.request = {0.1, 0.05};
  app.cpu_usage_fraction = 0.3;
  app.cpu_usage_ceiling = 1.0;
  app.qps_base = 100;
  app.qps_pattern = DiurnalPattern(0.2, 0.0);
  Rng rng(4);
  const PodBehavior b = SamplePodBehavior(app, rng);
  // Average demand at the peak vs the trough.
  auto mean_demand = [&](Tick t) {
    Rng noise(5);
    double acc = 0;
    for (int i = 0; i < 500; ++i) {
      acc += PodCpuDemand(app, b, t, noise);
    }
    return acc / 500;
  };
  EXPECT_GT(mean_demand(0), 2.0 * mean_demand(kTicksPerDay / 2));
}

TEST(AppModelTest, MemoryIsStable) {
  AppProfile app;
  app.slo = SloClass::kBe;
  app.request = {0.05, 0.04};
  app.mem_usage_fraction = 0.9;
  Rng rng(6);
  const PodBehavior b = SamplePodBehavior(app, rng);
  Rng noise(7);
  std::vector<double> series;
  for (Tick t = 0; t < 500; ++t) {
    series.push_back(PodMemDemand(app, b, t, noise));
  }
  EXPECT_LT(CoefficientOfVariation(series), 0.02);
}

TEST(AppModelTest, QpsZeroForBatch) {
  AppProfile app;
  app.slo = SloClass::kBe;
  Rng rng(8);
  const PodBehavior b = SamplePodBehavior(app, rng);
  Rng noise(9);
  EXPECT_DOUBLE_EQ(PodQps(app, b, 100, noise), 0.0);
}

TEST(WorkloadGeneratorTest, PodsSortedBySubmitTick) {
  const Workload w = WorkloadGenerator(SmallConfig()).Generate();
  for (size_t i = 1; i < w.pods.size(); ++i) {
    EXPECT_LE(w.pods[i - 1].submit_tick, w.pods[i].submit_tick);
  }
}

TEST(WorkloadGeneratorTest, PodIdsDenseAndAppIdsValid) {
  const Workload w = WorkloadGenerator(SmallConfig()).Generate();
  std::vector<bool> seen(w.pods.size(), false);
  for (const PodSpec& pod : w.pods) {
    ASSERT_GE(pod.id, 0);
    ASSERT_LT(static_cast<size_t>(pod.id), w.pods.size());
    EXPECT_FALSE(seen[static_cast<size_t>(pod.id)]);
    seen[static_cast<size_t>(pod.id)] = true;
    ASSERT_GE(pod.app, 0);
    ASSERT_LT(static_cast<size_t>(pod.app), w.apps.size());
    EXPECT_EQ(AppOf(w, pod.app).id, pod.app);
    EXPECT_EQ(AppOf(w, pod.app).slo, pod.slo);
  }
}

TEST(WorkloadGeneratorTest, DeterministicForSeed) {
  const Workload a = WorkloadGenerator(SmallConfig()).Generate();
  const Workload b = WorkloadGenerator(SmallConfig()).Generate();
  ASSERT_EQ(a.pods.size(), b.pods.size());
  for (size_t i = 0; i < a.pods.size(); i += 97) {
    EXPECT_EQ(a.pods[i].app, b.pods[i].app);
    EXPECT_EQ(a.pods[i].submit_tick, b.pods[i].submit_tick);
    EXPECT_DOUBLE_EQ(a.pods[i].behavior.cpu_scale, b.pods[i].behavior.cpu_scale);
  }
}

TEST(WorkloadGeneratorTest, SloMixMatchesFig2b) {
  // BE+LS+LSR should dominate (~70% in Fig. 2b) and BE pods far outnumber
  // LS pods (Fig. 3a).
  WorkloadConfig config = SmallConfig();
  config.horizon = kTicksPerDay;
  const Workload w = WorkloadGenerator(config).Generate();
  std::map<SloClass, int> counts;
  for (const PodSpec& pod : w.pods) {
    ++counts[pod.slo];
  }
  const double total = static_cast<double>(w.pods.size());
  const double explicit_slo =
      counts[SloClass::kBe] + counts[SloClass::kLs] + counts[SloClass::kLsr];
  EXPECT_GT(explicit_slo / total, 0.6);
  EXPECT_GT(counts[SloClass::kBe], 3 * (counts[SloClass::kLs] + counts[SloClass::kLsr]));
  EXPECT_GT(counts[SloClass::kUnknown], 0);
}

TEST(WorkloadGeneratorTest, RequestsExceedTypicalUsage) {
  // Fig. 6: requests are a multiple of actual usage.
  const Workload w = WorkloadGenerator(SmallConfig()).Generate();
  for (const AppProfile& app : w.apps) {
    EXPECT_LE(app.cpu_usage_fraction, 0.75) << "app " << app.id;
    EXPECT_GE(app.request.cpu, 0.0);
    EXPECT_GE(app.limit.cpu, app.request.cpu);
    EXPECT_GE(app.limit.mem, app.request.mem * 0.999);
  }
}

TEST(WorkloadGeneratorTest, LsSubmissionRateNearConstantBeBursty) {
  WorkloadConfig config = SmallConfig();
  config.num_hosts = 48;
  config.horizon = kTicksPerDay;
  const Workload w = WorkloadGenerator(config).Generate();
  // Per-10-minute bins, skipping the t=0 initial fleet.
  const Tick bin = 20;
  std::map<Tick, int> ls_bins, be_bins;
  for (const PodSpec& pod : w.pods) {
    if (pod.submit_tick == 0) {
      continue;
    }
    if (IsLatencySensitive(pod.slo)) {
      ++ls_bins[pod.submit_tick / bin];
    } else if (pod.slo == SloClass::kBe) {
      ++be_bins[pod.submit_tick / bin];
    }
  }
  std::vector<double> ls_counts, be_counts;
  for (Tick b = 0; b < config.horizon / bin; ++b) {
    ls_counts.push_back(ls_bins.count(b) ? ls_bins[b] : 0);
    be_counts.push_back(be_bins.count(b) ? be_bins[b] : 0);
  }
  EXPECT_GT(Mean(be_counts), 10 * Mean(ls_counts));
  // BE is burstier than LS in relative terms.
  EXPECT_GT(Max(be_counts) / std::max(1.0, Mean(be_counts)), 1.5);
}

TEST(WorkloadGeneratorTest, AffinityLimitsSet) {
  const Workload w = WorkloadGenerator(SmallConfig()).Generate();
  int limited = 0;
  for (const AppProfile& app : w.apps) {
    if (IsLatencySensitive(app.slo)) {
      EXPECT_GE(app.max_pods_per_host, 2);
      EXPECT_LE(app.max_pods_per_host, 4);
      ++limited;
    }
    if (app.slo == SloClass::kSystem || app.slo == SloClass::kVmEnv) {
      EXPECT_EQ(app.max_pods_per_host, 1);  // daemon-like
    }
  }
  EXPECT_GT(limited, 0);
}

TEST(WorkloadGeneratorTest, ScalesWithClusterSize) {
  WorkloadConfig small = SmallConfig();
  WorkloadConfig big = SmallConfig();
  big.num_hosts = 96;
  const size_t n_small = WorkloadGenerator(small).Generate().pods.size();
  const size_t n_big = WorkloadGenerator(big).Generate().pods.size();
  EXPECT_GT(n_big, 2 * n_small);
}

TEST(TraceIoTest, RoundTripPreservesRecords) {
  TraceBundle bundle;
  bundle.nodes.push_back(NodeMeta{3, {1.0, 1.0}});
  PodMeta pod;
  pod.pod_id = 42;
  pod.app_id = 7;
  pod.slo = SloClass::kLs;
  pod.request = {0.25, 0.125};
  pod.limit = {0.5, 0.25};
  pod.submit_tick = 100;
  pod.original_machine_id = 3;
  bundle.pods.push_back(pod);
  bundle.node_usage.push_back(NodeUsageRecord{3, 100, 0.5, 0.25, 0.1, 0.05});
  PodUsageRecord usage;
  usage.pod_id = 42;
  usage.host = 3;
  usage.collect_tick = 100;
  usage.cpu_usage = 0.2;
  usage.mem_usage = 0.1;
  usage.cpu_psi_60 = 0.15;
  usage.qps = 120;
  usage.response_time = 9.5;
  bundle.pod_usage.push_back(usage);
  PodLifecycleRecord life;
  life.pod_id = 42;
  life.app_id = 7;
  life.slo = SloClass::kLs;
  life.submit_tick = 100;
  life.schedule_tick = 102;
  life.finish_tick = -1;
  life.host = 3;
  life.waiting_seconds = 60;
  life.max_cpu_psi = 0.3;
  bundle.lifecycles.push_back(life);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "optum_trace_io_test").string();
  ASSERT_TRUE(WriteTraceBundle(bundle, dir));
  TraceBundle loaded;
  ASSERT_TRUE(ReadTraceBundle(dir, &loaded));

  ASSERT_EQ(loaded.nodes.size(), 1u);
  EXPECT_EQ(loaded.nodes[0].machine_id, 3);
  ASSERT_EQ(loaded.pods.size(), 1u);
  EXPECT_EQ(loaded.pods[0].pod_id, 42);
  EXPECT_EQ(loaded.pods[0].slo, SloClass::kLs);
  EXPECT_DOUBLE_EQ(loaded.pods[0].request.cpu, 0.25);
  ASSERT_EQ(loaded.node_usage.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.node_usage[0].cpu_usage, 0.5);
  ASSERT_EQ(loaded.pod_usage.size(), 1u);
  EXPECT_EQ(loaded.pod_usage[0].host, 3);
  EXPECT_NEAR(loaded.pod_usage[0].cpu_psi_60, 0.15, 1e-6);
  EXPECT_NEAR(loaded.pod_usage[0].response_time, 9.5, 1e-6);
  ASSERT_EQ(loaded.lifecycles.size(), 1u);
  EXPECT_EQ(loaded.lifecycles[0].finish_tick, -1);
  EXPECT_NEAR(loaded.lifecycles[0].waiting_seconds, 60, 1e-6);
  std::filesystem::remove_all(dir);
}

TEST(TraceIoTest, MissingDirectoryFails) {
  TraceBundle out;
  EXPECT_FALSE(ReadTraceBundle("/nonexistent/optum/dir", &out));
}

TEST(TraceIoTest, EmptyBundleRoundTrips) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "optum_trace_io_empty").string();
  ASSERT_TRUE(WriteTraceBundle(TraceBundle{}, dir));
  TraceBundle loaded;
  ASSERT_TRUE(ReadTraceBundle(dir, &loaded));
  EXPECT_TRUE(loaded.pods.empty());
  EXPECT_TRUE(loaded.node_usage.empty());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace optum
