// Tests for the pod-lifecycle span log and the streaming gauge time series
// (DESIGN.md §11): pinned JSONL schemas (header + line goldens), per-phase
// metric feeding, the checked-sink failure path, bounded ring memory on long
// runs, and end-to-end emission through the simulator. Registered under the
// `observability` ctest label so tools/sanitize_runner.sh covers it.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/metrics.h"
#include "src/obs/schema.h"
#include "src/obs/span_log.h"
#include "src/obs/timeseries.h"
#include "src/sched/baselines.h"
#include "src/sim/simulator.h"
#include "src/trace/workload_generator.h"

namespace optum::obs {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string contents;
  char buf[1 << 14];
  size_t n;
  while (f != nullptr && (n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  if (f != nullptr) {
    std::fclose(f);
  }
  return contents;
}

int64_t CountLines(const std::string& text) {
  int64_t lines = 0;
  for (const char c : text) {
    lines += c == '\n' ? 1 : 0;
  }
  return lines;
}

// ---------------------------------------------------------------- SpanLog

TEST(SpanLogTest, ToStringCoversEveryPhase) {
  std::set<std::string> names;
  for (int i = 0; i < kNumSpanPhases; ++i) {
    const std::string name = ToString(static_cast<SpanPhase>(i));
    EXPECT_NE(name, "unknown") << i;
    names.insert(name);
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumSpanPhases));
}

TEST(SpanLogTest, RenderHeaderGolden) {
  EXPECT_EQ(SpanLog::RenderHeader(),
            "{\"schema\":\"optum.spans.v1\",\"clock\":\"ticks\"}");
}

TEST(SpanLogTest, RenderGolden) {
  // The JSONL line format is load-bearing for downstream analysis: pin each
  // optional-field combination. Fields absent from the event are absent from
  // the line, not null.
  EXPECT_EQ(SpanLog::Render({.tick = 5, .pod = 7}),
            "{\"tick\":5,\"pod\":7,\"phase\":\"submitted\"}");
  EXPECT_EQ(SpanLog::Render({.tick = 9, .pod = 7, .phase = SpanPhase::kPlaced,
                             .host = 3, .wait_ticks = 4}),
            "{\"tick\":9,\"pod\":7,\"phase\":\"placed\",\"host\":3,\"wait\":4}");
  EXPECT_EQ(SpanLog::Render({.tick = 9, .pod = 7, .phase = SpanPhase::kScored,
                             .count = 2, .has_score = true, .score = 0.25}),
            "{\"tick\":9,\"pod\":7,\"phase\":\"scored\",\"count\":2,"
            "\"score\":0.25}");
  EXPECT_EQ(SpanLog::Render({.tick = 9, .pod = 7, .phase = SpanPhase::kQueued,
                             .reason = "Resources"}),
            "{\"tick\":9,\"pod\":7,\"phase\":\"queued\",\"reason\":\"Resources\"}");
  EXPECT_EQ(SpanLog::Render({.tick = 12, .pod = 7, .phase = SpanPhase::kEvicted,
                             .host = 3, .reason = "OOM"}),
            "{\"tick\":12,\"pod\":7,\"phase\":\"evicted\",\"host\":3,"
            "\"reason\":\"OOM\"}");
}

TEST(SpanLogTest, AppendWritesHeaderThenOneLinePerRecord) {
  const std::string path = ::testing::TempDir() + "/spans_roundtrip.jsonl";
  const SpanEvent event{.tick = 1, .pod = 2, .phase = SpanPhase::kSampled,
                        .count = 60};
  {
    SpanLog log(path);
    ASSERT_TRUE(log.ok());
    log.Append(event);
    log.Append(event);
    EXPECT_EQ(log.records_written(), 2);
  }
  const std::string contents = ReadFileOrDie(path);
  std::remove(path.c_str());
  const std::string line = SpanLog::Render(event) + "\n";
  EXPECT_EQ(contents, SpanLog::RenderHeader() + "\n" + line + line);
}

TEST(SpanLogTest, AttachMetricsFeedsPhaseCountersAndQueueWait) {
  MetricRegistry registry;
  SpanLog log(::testing::TempDir() + "/spans_metrics.jsonl");
  log.AttachMetrics(&registry);
  log.Append({.tick = 0, .pod = 1, .phase = SpanPhase::kSubmitted});
  log.Append({.tick = 4, .pod = 1, .phase = SpanPhase::kPlaced, .host = 0,
              .wait_ticks = 4});
  log.Append({.tick = 6, .pod = 1, .phase = SpanPhase::kFinished, .host = 0});
  EXPECT_EQ(registry.counter("spans.submitted")->Value(), 1u);
  EXPECT_EQ(registry.counter("spans.placed")->Value(), 1u);
  EXPECT_EQ(registry.counter("spans.finished")->Value(), 1u);
  EXPECT_EQ(registry.counter("spans.evicted")->Value(), 0u);
  // 4 ticks of queueing delay = 4 * 30 s (the Fig. 8 waiting-time metric).
  Histogram* wait = registry.histogram("spans.queue_wait_seconds");
  EXPECT_EQ(wait->Count(), 1u);
  EXPECT_DOUBLE_EQ(wait->Sum(), 4.0 * kSecondsPerTick);
  // Detaching restores the null-sink fast path without touching the file.
  log.AttachMetrics(nullptr);
  log.Append({.tick = 7, .pod = 2, .phase = SpanPhase::kSubmitted});
  EXPECT_EQ(registry.counter("spans.submitted")->Value(), 1u);
  EXPECT_EQ(log.records_written(), 4);
}

TEST(SpanLogTest, UnwritablePathReportsNotOkButStillCountsMetrics) {
  MetricRegistry registry;
  SpanLog log("/nonexistent-dir-for-span-test/spans.jsonl");
  EXPECT_FALSE(log.ok());
  log.AttachMetrics(&registry);
  log.Append({.tick = 0, .pod = 1, .phase = SpanPhase::kSubmitted});
  log.Flush();  // must be a no-op, not a crash
  EXPECT_EQ(log.records_written(), 0);
  EXPECT_EQ(registry.counter("spans.submitted")->Value(), 1u);
}

// ----------------------------------------------------- TimeSeriesRecorder

TEST(TimeSeriesTest, RenderHeaderGolden) {
  EXPECT_EQ(TimeSeriesRecorder::RenderHeader(5),
            "{\"schema\":\"optum.series.v1\",\"interval_ticks\":5}");
}

TEST(TimeSeriesTest, RenderSampleGolden) {
  const std::vector<std::string> names = {"a", "b"};
  EXPECT_EQ(TimeSeriesRecorder::RenderSample(3, names, {1.0, 2.5}),
            "{\"tick\":3,\"gauges\":{\"a\":1,\"b\":2.5}}");
  // Rows captured before a gauge existed are shorter than `names` and render
  // only the columns that existed then.
  EXPECT_EQ(TimeSeriesRecorder::RenderSample(3, names, {1.0}),
            "{\"tick\":3,\"gauges\":{\"a\":1}}");
}

TEST(TimeSeriesTest, RingStaysBoundedWhileFileGrows) {
  // The ROADMAP item this subsystem closes: a long run must hold O(ring)
  // samples resident while the JSONL file takes the rest. 10k ticks with an
  // 8-slot ring leaves at most 8 rows in memory at any point.
  constexpr int64_t kTicks = 10000;
  constexpr size_t kRing = 8;
  const std::string path = ::testing::TempDir() + "/series_longrun.jsonl";
  MetricRegistry registry;
  Gauge* gauge = registry.gauge("g");
  {
    TimeSeriesRecorder recorder(&registry, path, kRing);
    ASSERT_TRUE(recorder.ok());
    for (int64_t tick = 0; tick < kTicks; ++tick) {
      gauge->Set(static_cast<double>(tick));
      recorder.Sample(tick);
      ASSERT_LE(recorder.buffered(), kRing) << "tick " << tick;
      ASSERT_EQ(recorder.samples_written() +
                    static_cast<int64_t>(recorder.buffered()),
                tick + 1);
    }
    recorder.Flush();
    EXPECT_EQ(recorder.samples_written(), kTicks);
    EXPECT_EQ(recorder.buffered(), 0u);
  }
  const std::string contents = ReadFileOrDie(path);
  std::remove(path.c_str());
  EXPECT_EQ(CountLines(contents), kTicks + 1);  // header + one line per tick
  EXPECT_EQ(contents.rfind(TimeSeriesRecorder::RenderHeader(1) + "\n", 0), 0u);
  // Spot-check the last flushed line carries the last tick's gauge value.
  EXPECT_NE(contents.find("{\"tick\":9999,\"gauges\":{\"g\":9999}}\n"),
            std::string::npos);
}

TEST(TimeSeriesTest, GaugesCreatedMidRunAppendColumns) {
  const std::string path = ::testing::TempDir() + "/series_midrun.jsonl";
  MetricRegistry registry;
  registry.gauge("early")->Set(1.0);
  {
    TimeSeriesRecorder recorder(&registry, path, /*ring_capacity=*/64);
    ASSERT_TRUE(recorder.ok());
    recorder.Sample(1);
    registry.gauge("late")->Set(9.0);
    recorder.Sample(2);
  }
  const std::string contents = ReadFileOrDie(path);
  std::remove(path.c_str());
  EXPECT_NE(contents.find("{\"tick\":1,\"gauges\":{\"early\":1}}\n"),
            std::string::npos);
  EXPECT_NE(
      contents.find("{\"tick\":2,\"gauges\":{\"early\":1,\"late\":9}}\n"),
      std::string::npos);
}

// --------------------------------------------- Simulator span integration

TEST(SpanIntegrationTest, SimulatorEmitsFullLifecycleChain) {
  WorkloadConfig workload_config;
  workload_config.num_hosts = 16;
  workload_config.horizon = 2 * kTicksPerHour;
  workload_config.seed = 11;
  const Workload workload = WorkloadGenerator(workload_config).Generate();

  const std::string span_path = ::testing::TempDir() + "/sim_spans.jsonl";
  const std::string series_path = ::testing::TempDir() + "/sim_series.jsonl";
  MetricRegistry registry;
  SpanLog span_log(span_path);
  ASSERT_TRUE(span_log.ok());
  span_log.AttachMetrics(&registry);
  TimeSeriesRecorder series(&registry, series_path, /*ring_capacity=*/32);
  ASSERT_TRUE(series.ok());

  Sinks sinks;
  sinks.metrics = &registry;
  sinks.span_log = &span_log;
  sinks.series = &series;
  AlibabaBaseline policy;
  policy.AttachSinks(sinks);
  SimConfig sim_config;
  sim_config.pod_usage_period = 5;
  sim_config.sinks = sinks;
  const SimResult result = Simulator(workload, sim_config, policy).Run();
  ASSERT_GT(result.scheduled_pods, 0);
  span_log.Flush();
  series.Flush();

  const std::string spans = ReadFileOrDie(span_path);
  std::remove(span_path.c_str());
  const std::string series_text = ReadFileOrDie(series_path);
  std::remove(series_path.c_str());

  // Every phase the run exercised shows up, and the span counters agree
  // with the simulator's own tallies where the mapping is exact.
  for (const char* phase : {"\"phase\":\"submitted\"", "\"phase\":\"sampled\"",
                            "\"phase\":\"scored\"", "\"phase\":\"placed\"",
                            "\"phase\":\"finished\""}) {
    EXPECT_NE(spans.find(phase), std::string::npos) << phase;
  }
  EXPECT_EQ(spans.rfind(SpanLog::RenderHeader() + "\n", 0), 0u);
  uint64_t arriving = 0;
  for (const PodSpec& pod : workload.pods) {
    arriving += pod.submit_tick < workload.config.horizon ? 1u : 0u;
  }
  EXPECT_EQ(registry.counter("spans.submitted")->Value(), arriving);
  // CommitPlacement increments both in lockstep (re-placements included).
  EXPECT_EQ(registry.counter("spans.placed")->Value(),
            static_cast<uint64_t>(result.scheduled_pods));

  // The series export sampled once per tick with the sim.* gauge columns.
  EXPECT_EQ(series.samples_written(), workload.config.horizon);
  EXPECT_EQ(series_text.rfind(TimeSeriesRecorder::RenderHeader(1) + "\n", 0),
            0u);
  EXPECT_NE(series_text.find("\"sim.pending_pods\":"), std::string::npos);
}

}  // namespace
}  // namespace optum::obs
