// Tests for the host-pressure sensing / hotspot detection / SLO accounting
// subsystem (src/obs/pressure.h, hotspot.h, slo.h — DESIGN.md §13) and the
// arrival driver's anomaly-storm overlay (DESIGN.md §12):
//
//   * hysteresis properties — a pressure signal oscillating inside the
//     [clear, onset) band or spiking/dipping for less than the dwell never
//     starts, ends, or chatters an episode;
//   * SLO tick conservation (compliant + violation == observed) and
//     merge-order invariance, byte-equal through RenderJson;
//   * golden optum.hotspot.v1 / optum.slo.v1 renders;
//   * serve-layer integration — hotspot and SLO exports bit-identical
//     across DistributedConfig::shard_num_threads, storms produce episodes,
//     a calm run produces none;
//   * burst overlay determinism (pure function of the round, equal configs
//     replay identical streams, disabled by default).
//
// Labeled `observability` so the suite also runs under TSan / ASan+UBSan
// via tools/sanitize_runner.sh.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/offline_profiler.h"
#include "src/obs/hotspot.h"
#include "src/obs/pressure.h"
#include "src/obs/slo.h"
#include "src/sched/baselines.h"
#include "src/serve/placement_service.h"
#include "src/sim/simulator.h"
#include "src/trace/workload_generator.h"

namespace optum {
namespace {

using obs::HostPressureInput;
using obs::HostPressureMonitor;
using obs::HotspotConfig;
using obs::HotspotDetector;
using obs::HotspotEvent;
using obs::HotspotLog;
using obs::PressureConfig;
using obs::PressureTracker;
using obs::RawPressure;
using obs::SloAccumulator;

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string contents;
  char buf[1 << 14];
  size_t n;
  while (f != nullptr && (n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  if (f != nullptr) {
    std::fclose(f);
  }
  return contents;
}

// --- Pressure signal --------------------------------------------------------

TEST(PressureTest, RawPressureCombinesCapacityAndInterference) {
  PressureConfig config;  // mem_weight 0.7, interference_weight 0.5
  HostPressureInput in;
  in.cpu_util = 0.6;
  in.mem_util = 0.5;
  // CPU dominates 0.7 * 0.5 = 0.35.
  EXPECT_DOUBLE_EQ(RawPressure(config, in), 0.6);
  in.mem_util = 1.0;  // now memory dominates: 0.7 > 0.6
  EXPECT_DOUBLE_EQ(RawPressure(config, in), 0.7);
  in.interference = 0.4;
  EXPECT_DOUBLE_EQ(RawPressure(config, in), 0.7 + 0.5 * 0.4);
}

TEST(PressureTest, TrackerSeedsThenSmoothsWithEwma) {
  PressureConfig config;
  config.ewma_alpha = 0.5;
  config.interference_weight = 0.0;
  PressureTracker tracker(/*num_hosts=*/2, config);
  HostPressureInput in;
  in.cpu_util = 0.8;
  // First observation seeds the EWMA with the raw value.
  EXPECT_DOUBLE_EQ(tracker.Observe(0, in), 0.8);
  in.cpu_util = 0.4;
  EXPECT_DOUBLE_EQ(tracker.Observe(0, in), 0.5 * 0.4 + 0.5 * 0.8);
  // Host 1 is independent state.
  EXPECT_DOUBLE_EQ(tracker.Observe(1, in), 0.4);
  EXPECT_DOUBLE_EQ(tracker.signal(0).raw, 0.4);
}

// --- Hotspot hysteresis -----------------------------------------------------

HotspotConfig TightConfig() {
  HotspotConfig config;
  config.onset_threshold = 0.85;
  config.clear_threshold = 0.70;
  config.min_onset_ticks = 3;
  config.min_clear_ticks = 3;
  return config;
}

TEST(HotspotDetectorTest, BandOscillationNeverChatters) {
  // Property: any signal that stays inside [clear, onset) can neither start
  // nor end an episode, no matter how wildly it oscillates.
  HotspotDetector detector(1, TightConfig());
  for (Tick t = 0; t < 200; ++t) {
    const double p = (t % 2 == 0) ? 0.7049 : 0.8499;  // full band sweep
    detector.Observe(0, t, p, 1, 1, 0);
    EXPECT_EQ(detector.hosts_hot(), 0) << "tick " << t;
  }
  detector.Finalize(199);
  EXPECT_TRUE(detector.events().empty());
}

TEST(HotspotDetectorTest, ShortSpikesAndDipsAreIgnored) {
  HotspotDetector detector(1, TightConfig());
  Tick t = 0;
  // Two-tick spikes never reach min_onset_ticks = 3.
  for (int rep = 0; rep < 10; ++rep) {
    detector.Observe(0, t++, 0.9, 0, 1, 0);
    detector.Observe(0, t++, 0.9, 0, 1, 0);
    detector.Observe(0, t++, 0.1, 0, 1, 0);
  }
  EXPECT_EQ(detector.hosts_hot(), 0);
  // Qualify an onset, then dip for two ticks at a time: the episode must
  // stay open (min_clear_ticks = 3 never reached).
  for (int i = 0; i < 3; ++i) {
    detector.Observe(0, t++, 0.95, 0, 1, 0);
  }
  EXPECT_EQ(detector.hosts_hot(), 1);
  for (int rep = 0; rep < 10; ++rep) {
    detector.Observe(0, t++, 0.1, 0, 1, 0);
    detector.Observe(0, t++, 0.1, 0, 1, 0);
    detector.Observe(0, t++, 0.9, 0, 1, 0);
  }
  EXPECT_EQ(detector.hosts_hot(), 1);
  EXPECT_TRUE(detector.events().empty());
  detector.Finalize(t - 1);
  ASSERT_EQ(detector.events().size(), 1u);
  EXPECT_TRUE(detector.events()[0].open);
}

TEST(HotspotDetectorTest, EpisodeCarriesOnsetClearPeakAndPodMix) {
  HotspotDetector detector(2, TightConfig());
  // Host 0: 4 ticks cold, 5 ticks hot (peak 0.97 at tick 6), then cold.
  const double signal[] = {0.2, 0.2, 0.2, 0.2, 0.9, 0.9, 0.97, 0.9, 0.9,
                           0.1, 0.1, 0.1, 0.1};
  for (Tick t = 0; t < static_cast<Tick>(std::size(signal)); ++t) {
    detector.Observe(0, t, signal[t], /*pods_be=*/static_cast<int32_t>(t),
                     /*pods_ls=*/2, /*pods_lsr=*/1);
    detector.Observe(1, t, 0.0, 0, 0, 0);  // never hot
  }
  ASSERT_EQ(detector.events().size(), 1u);
  const HotspotEvent& e = detector.events()[0];
  EXPECT_EQ(e.host, 0);
  EXPECT_EQ(e.onset_tick, 4);   // first tick of the qualifying run
  EXPECT_EQ(e.clear_tick, 9);   // first tick of the qualifying cool-down
  EXPECT_EQ(e.duration_ticks(), 5);
  EXPECT_DOUBLE_EQ(e.peak_pressure, 0.97);
  EXPECT_EQ(e.peak_tick, 6);
  EXPECT_EQ(e.pods_be, 6);  // pod mix snapshot at the peak tick
  EXPECT_EQ(e.pods_ls, 2);
  EXPECT_EQ(e.pods_lsr, 1);
  EXPECT_FALSE(e.open);
  EXPECT_EQ(detector.hosts_hot(), 0);
}

TEST(HotspotLogTest, GoldenHeaderAndEventRender) {
  EXPECT_EQ(HotspotLog::RenderHeader(),
            "{\"schema\":\"optum.hotspot.v1\",\"clock\":\"ticks\"}");
  HotspotEvent e;
  e.host = 7;
  e.onset_tick = 40;
  e.clear_tick = 55;
  e.peak_pressure = 0.9375;
  e.peak_tick = 44;
  e.pods_be = 3;
  e.pods_ls = 12;
  e.pods_lsr = 2;
  EXPECT_EQ(HotspotLog::Render(e),
            "{\"host\":7,\"onset\":40,\"clear\":55,\"duration\":15,"
            "\"peak_pressure\":0.9375,\"peak_tick\":44,\"pods_be\":3,"
            "\"pods_ls\":12,\"pods_lsr\":2}");
  e.open = true;
  EXPECT_EQ(HotspotLog::Render(e),
            "{\"host\":7,\"onset\":40,\"clear\":55,\"duration\":15,"
            "\"peak_pressure\":0.9375,\"peak_tick\":44,\"pods_be\":3,"
            "\"pods_ls\":12,\"pods_lsr\":2,\"open\":true}");
}

TEST(HotspotLogTest, FileCarriesHeaderThenOneLinePerEpisode) {
  const std::string path = ::testing::TempDir() + "/hotspots_roundtrip.jsonl";
  HotspotEvent e;
  e.host = 1;
  e.onset_tick = 2;
  e.clear_tick = 6;
  e.peak_pressure = 0.5;
  e.peak_tick = 3;
  {
    HotspotLog log(path);
    ASSERT_TRUE(log.ok());
    log.Append(e);
    log.Append(e);
    EXPECT_EQ(log.events_written(), 2);
  }
  const std::string contents = ReadFileOrDie(path);
  std::remove(path.c_str());
  const std::string line = HotspotLog::Render(e) + "\n";
  EXPECT_EQ(contents, HotspotLog::RenderHeader() + "\n" + line + line);
}

// --- SLO accounting ---------------------------------------------------------

TEST(SloAccumulatorTest, TickConservationPerClass) {
  SloAccumulator slo;
  // Deterministic pseudo-random observation mix.
  uint64_t x = 12345;
  int64_t expect_observed[kNumSloClasses] = {};
  int64_t expect_violation[kNumSloClasses] = {};
  for (int i = 0; i < 1000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const SloClass slo_class = static_cast<SloClass>((x >> 33) % 3);
    const int64_t ticks = static_cast<int64_t>((x >> 20) % 7);
    const bool violated = (x >> 50) % 4 == 0;
    slo.Observe(slo_class, ticks, violated);
    expect_observed[static_cast<size_t>(slo_class)] += ticks;
    if (violated) {
      expect_violation[static_cast<size_t>(slo_class)] += ticks;
    }
  }
  int64_t total = 0;
  for (const SloClass c : {SloClass::kBe, SloClass::kLs, SloClass::kLsr}) {
    const size_t i = static_cast<size_t>(c);
    EXPECT_EQ(slo.observed_ticks(c), expect_observed[i]);
    EXPECT_EQ(slo.violation_ticks(c), expect_violation[i]);
    // Conservation: compliant + violation == observed, per class.
    EXPECT_EQ(slo.compliant_ticks(c) + slo.violation_ticks(c),
              slo.observed_ticks(c));
    total += expect_observed[i];
  }
  EXPECT_EQ(slo.total_observed_ticks(), total);
}

TEST(SloAccumulatorTest, MergeIsOrderInvariant) {
  // Three shards with distinct tallies: every merge order must agree, both
  // structurally and byte-for-byte through RenderJson.
  SloAccumulator a, b, c;
  a.Observe(SloClass::kBe, 10, true);
  a.Observe(SloClass::kLs, 7, false);
  b.Observe(SloClass::kLs, 3, true);
  b.Observe(SloClass::kLsr, 20, false);
  c.Observe(SloClass::kBe, 1, false);
  c.Observe(SloClass::kLsr, 2, true);

  SloAccumulator abc = a;
  abc.Merge(b);
  abc.Merge(c);
  SloAccumulator cba = c;
  cba.Merge(b);
  cba.Merge(a);
  SloAccumulator bca = b;
  bca.Merge(c);
  bca.Merge(a);
  EXPECT_TRUE(abc == cba);
  EXPECT_TRUE(abc == bca);
  EXPECT_EQ(abc.RenderJson(30.0), cba.RenderJson(30.0));
  EXPECT_EQ(abc.RenderJson(30.0), bca.RenderJson(30.0));
  EXPECT_EQ(abc.total_observed_ticks(), 43);
  EXPECT_EQ(abc.total_violation_ticks(), 15);
}

TEST(SloAccumulatorTest, GoldenRenderJson) {
  SloAccumulator slo;
  slo.Observe(SloClass::kBe, 4, true);
  slo.Observe(SloClass::kBe, 6, false);
  slo.Observe(SloClass::kLs, 5, false);
  EXPECT_EQ(slo.RenderJson(2.0),
            "{\"schema\":\"optum.slo.v1\",\"seconds_per_tick\":2,\"classes\":["
            "{\"class\":\"BE\",\"observed_ticks\":10,\"violation_ticks\":4,"
            "\"observed_seconds\":20,\"violation_seconds\":8},"
            "{\"class\":\"LS\",\"observed_ticks\":5,\"violation_ticks\":0,"
            "\"observed_seconds\":10,\"violation_seconds\":0},"
            "{\"class\":\"LSR\",\"observed_ticks\":0,\"violation_ticks\":0,"
            "\"observed_seconds\":0,\"violation_seconds\":0}]}");
  // Classes beyond BE/LS/LSR appear only once observed.
  slo.Observe(SloClass::kSystem, 3, true);
  EXPECT_NE(slo.RenderJson(2.0).find("\"class\":\"SYSTEM\""), std::string::npos);
}

// --- Monitor: sharded accounting behind the per-tick API --------------------

TEST(HostPressureMonitorTest, MergedSloInvariantAcrossShardCounts) {
  // The same observation stream accounted under 1, 2, and 5 SLO shards must
  // merge to the same totals (shard of a host is id % num_slo_shards).
  std::vector<SloAccumulator> merged;
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{5}}) {
    HostPressureMonitor::Options options;
    options.pressure.ewma_alpha = 1.0;  // no smoothing: direct control
    options.pressure.interference_weight = 0.0;
    options.num_slo_shards = shards;
    HostPressureMonitor monitor(/*num_hosts=*/10, options);
    for (Tick t = 0; t < 20; ++t) {
      monitor.BeginTick(t);
      for (HostId h = 0; h < 10; ++h) {
        HostPressureInput in;
        // Hosts 7..9 run violated (cpu 0.9 >= slo_threshold 0.8).
        in.cpu_util = h >= 7 ? 0.9 : 0.3;
        in.pods_be = 1;
        in.pods_ls = 2;
        in.pods_lsr = h % 2;
        monitor.ObserveHost(h, in);
      }
      monitor.EndTick();
    }
    monitor.Finalize();
    EXPECT_EQ(monitor.num_slo_shards(), shards);
    merged.push_back(monitor.MergedSlo());
  }
  EXPECT_TRUE(merged[0] == merged[1]);
  EXPECT_TRUE(merged[0] == merged[2]);
  // 3 violated hosts × 20 ticks × 2 LS pods.
  EXPECT_EQ(merged[0].violation_ticks(SloClass::kLs), 3 * 20 * 2);
  // All hosts observed: 10 × 20 × 2 LS pod-ticks.
  EXPECT_EQ(merged[0].observed_ticks(SloClass::kLs), 10 * 20 * 2);
}

// --- Burst overlay ----------------------------------------------------------

Workload SmallWorkload() {
  WorkloadConfig config;
  config.num_hosts = 16;
  config.horizon = kTicksPerHour;
  config.seed = 5;
  return WorkloadGenerator(config).Generate();
}

TEST(ArrivalBurstTest, DisabledByDefaultAndPureFunctionOfRound) {
  const Workload workload = SmallWorkload();
  serve::ArrivalConfig config;
  config.offered_pods_per_sec = 50.0;
  serve::ArrivalDriver plain(workload, config);
  EXPECT_FALSE(config.burst_enabled());
  for (int64_t round = 0; round < 50; ++round) {
    EXPECT_FALSE(plain.InBurst(round));
    EXPECT_DOUBLE_EQ(plain.RoundRate(round), 50.0);
  }

  config.burst_amplitude = 6.0;
  config.burst_duration_rounds = 4;
  config.burst_interval_rounds = 20;
  serve::ArrivalDriver stormy(workload, config);
  ASSERT_TRUE(config.burst_enabled());
  // Every window holds exactly one storm of exactly duration rounds, and
  // the rate inside it is amplitude × base.
  for (int64_t window = 0; window < 5; ++window) {
    int64_t in_burst = 0;
    for (int64_t r = window * 20; r < (window + 1) * 20; ++r) {
      if (stormy.InBurst(r)) {
        ++in_burst;
        EXPECT_DOUBLE_EQ(stormy.RoundRate(r), 6.0 * 50.0);
      } else {
        EXPECT_DOUBLE_EQ(stormy.RoundRate(r), 50.0);
      }
    }
    EXPECT_EQ(in_burst, 4) << "window " << window;
  }
  // Pure function of (config, round): a second driver agrees round by round.
  serve::ArrivalDriver replay(workload, config);
  for (int64_t round = 0; round < 100; ++round) {
    EXPECT_EQ(stormy.InBurst(round), replay.InBurst(round)) << round;
  }
}

TEST(ArrivalBurstTest, EqualConfigsReplayIdenticalStreams) {
  const Workload workload = SmallWorkload();
  serve::ArrivalConfig config;
  config.offered_pods_per_sec = 30.0;
  config.burst_amplitude = 5.0;
  config.burst_duration_rounds = 3;
  config.burst_interval_rounds = 12;
  serve::ArrivalDriver a(workload, config);
  serve::ArrivalDriver b(workload, config);
  std::vector<PodSpec> out_a, out_b;
  for (int64_t round = 0; round < 36; ++round) {
    out_a.clear();
    out_b.clear();
    a.EmitRound(round, &out_a);
    b.EmitRound(round, &out_b);
    ASSERT_EQ(out_a.size(), out_b.size()) << round;
    for (size_t i = 0; i < out_a.size(); ++i) {
      EXPECT_EQ(out_a[i].id, out_b[i].id);
      EXPECT_EQ(out_a[i].app, out_b[i].app);
    }
  }
  EXPECT_GT(a.pods_emitted(), 0);
}

// --- Serve-layer integration ------------------------------------------------

struct ServeWorld {
  Workload workload;
  core::OptumProfiles profiles;
};

const ServeWorld& World() {
  static const ServeWorld* world = [] {
    auto* w = new ServeWorld;
    WorkloadConfig config;
    config.num_hosts = 64;
    config.horizon = 3 * kTicksPerHour;
    config.seed = 23;
    w->workload = WorkloadGenerator(config).Generate();
    SimConfig sim_config;
    sim_config.pod_usage_period = 5;
    sim_config.max_attempts_per_tick = 1500;
    AlibabaBaseline reference;
    const SimResult ref = Simulator(w->workload, sim_config, reference).Run();
    core::OfflineProfilerConfig prof;
    prof.max_train_samples = 600;
    w->profiles = core::OfflineProfiler(prof).BuildProfiles(ref.trace);
    return w;
  }();
  return *world;
}

struct StormRun {
  std::string hotspot_bytes;
  std::string slo_json;
  int64_t episodes = 0;
  int64_t placed = 0;
};

// One stormy overloaded run against a small cluster: arrivals outpace the
// service during the bursts, request utilization saturates, and hotspot
// episodes appear. `threads` is the shard worker pool whose size must not
// leak into any exported byte.
StormRun RunStorm(size_t threads) {
  const ServeWorld& world = World();
  serve::ServeConfig config;
  config.arrival.offered_pods_per_sec = 150.0;
  config.arrival.seed = 11;
  config.arrival.burst_amplitude = 8.0;
  config.arrival.burst_duration_rounds = 6;
  config.arrival.burst_interval_rounds = 15;
  config.distributed.num_schedulers = 2;
  config.distributed.shard_num_threads = threads;
  config.queue_capacity_per_shard = 4096;
  config.max_schedule_per_round = 256;
  config.mean_residency_rounds = 0.0;  // pods stay: pressure builds
  ClusterState cluster(40, kUnitResources, /*history_window=*/64);
  serve::PlacementService service(world.workload, world.profiles, &cluster,
                                  config);

  HostPressureMonitor::Options options;
  options.pressure.ewma_alpha = 0.5;
  options.num_slo_shards = config.distributed.num_schedulers;
  options.seconds_per_tick = config.arrival.round_seconds;
  HostPressureMonitor monitor(40, options);
  const std::string path = ::testing::TempDir() + "/storm_hotspots_" +
                           std::to_string(threads) + ".jsonl";
  StormRun run;
  {
    HotspotLog log(path);
    EXPECT_TRUE(log.ok());
    obs::Sinks sinks;
    sinks.hotspot_log = &log;
    monitor.AttachSinks(sinks, "serve");
    service.set_pressure_monitor(&monitor);
    service.RunRounds(40);
    service.Drain();
    monitor.Finalize();
  }
  run.hotspot_bytes = ReadFileOrDie(path);
  std::remove(path.c_str());
  run.slo_json = monitor.MergedSlo().RenderJson(monitor.seconds_per_tick());
  run.episodes = monitor.detector().events_emitted();
  run.placed = service.counters().placed;
  return run;
}

TEST(ServePressureTest, StormExportsBitIdenticalAcrossShardThreadCounts) {
  StormRun reference;
  bool first = true;
  for (const size_t threads : {size_t{0}, size_t{1}, size_t{2}, size_t{8}}) {
    StormRun run = RunStorm(threads);
    if (first) {
      reference = run;
      first = false;
      EXPECT_GT(run.placed, 0);
      // The storm must actually produce hotspot episodes — otherwise the
      // bit-identity assertions compare empty streams.
      EXPECT_GT(run.episodes, 0);
      EXPECT_NE(run.slo_json.find("\"violation_ticks\""), std::string::npos);
    } else {
      EXPECT_EQ(run.hotspot_bytes, reference.hotspot_bytes)
          << "threads=" << threads;
      EXPECT_EQ(run.slo_json, reference.slo_json) << "threads=" << threads;
      EXPECT_EQ(run.episodes, reference.episodes) << "threads=" << threads;
    }
  }
}

// --- Simulator-layer storm acceptance --------------------------------------

// Runs one simulator pass with the pressure monitor riding the tick loop
// (the runsim wiring) and returns the monitor for inspection.
struct SimPressureRun {
  int64_t episodes = 0;
  int64_t violation_ticks = 0;
  int64_t observed_ticks = 0;
  double max_pressure = 0.0;
};

SimPressureRun RunSimWithMonitor(const Workload& workload) {
  SimConfig sim_config;
  sim_config.pod_usage_period = 5;
  HostPressureMonitor monitor(
      static_cast<size_t>(workload.config.num_hosts),
      HostPressureMonitor::Options{});
  sim_config.pressure = &monitor;
  AlibabaBaseline policy;
  Simulator(workload, sim_config, policy).Run();
  SimPressureRun run;
  run.episodes = monitor.detector().events_emitted();
  const SloAccumulator slo = monitor.MergedSlo();
  run.violation_ticks = slo.total_violation_ticks();
  run.observed_ticks = slo.total_observed_ticks();
  run.max_pressure = monitor.last_max_pressure();
  return run;
}

TEST(SimStormTest, OverlayCreatesHotspotsWhileCalmStaysSilent) {
  // The acceptance scenario in miniature: identical workload generation,
  // one copy with the anomaly-storm overlay injected. Storm pods carry
  // inflated CPU-demand behaviors (requests untouched), so the admission
  // gate lets them through and colocated hosts' demand — the sim-side
  // pressure basis — spikes past the detector onset. Calm demand plateaus
  // in the high-0.8s at worst, under the 0.95 default onset.
  WorkloadConfig config;
  config.num_hosts = 64;
  config.horizon = 2 * kTicksPerHour;
  config.seed = 31;
  const Workload calm = WorkloadGenerator(config).Generate();
  Workload stormy = WorkloadGenerator(config).Generate();

  serve::ArrivalConfig burst;
  burst.offered_pods_per_sec = 0.5;  // ~15 extra pods/tick while storming
  burst.round_seconds = kSecondsPerTick;
  burst.seed = 7;
  burst.burst_amplitude = 6.0;
  burst.burst_duration_rounds = 10;
  burst.burst_interval_rounds = 60;
  const int64_t added =
      serve::AppendStormOverlay(burst, config.horizon, /*cpu_scale=*/4.0,
                                &stormy);
  ASSERT_GT(added, 0);
  ASSERT_EQ(stormy.pods.size(), calm.pods.size() + static_cast<size_t>(added));

  // The overlay must preserve the simulator's workload invariants: dense
  // pod ids (wait bookkeeping indexes by id) and submit_tick order.
  std::vector<bool> seen(stormy.pods.size(), false);
  for (size_t i = 0; i < stormy.pods.size(); ++i) {
    const PodSpec& pod = stormy.pods[i];
    ASSERT_GE(pod.id, 0);
    ASSERT_LT(static_cast<size_t>(pod.id), stormy.pods.size());
    ASSERT_FALSE(seen[static_cast<size_t>(pod.id)]);
    seen[static_cast<size_t>(pod.id)] = true;
    if (i > 0) {
      ASSERT_LE(stormy.pods[i - 1].submit_tick, pod.submit_tick);
    }
  }

  // Equal configs inject identical overlays (determinism of the storm).
  Workload stormy_again = WorkloadGenerator(config).Generate();
  serve::AppendStormOverlay(burst, config.horizon, /*cpu_scale=*/4.0,
                            &stormy_again);
  ASSERT_EQ(stormy_again.pods.size(), stormy.pods.size());
  for (size_t i = 0; i < stormy.pods.size(); ++i) {
    EXPECT_EQ(stormy_again.pods[i].id, stormy.pods[i].id);
    EXPECT_EQ(stormy_again.pods[i].submit_tick, stormy.pods[i].submit_tick);
    EXPECT_EQ(stormy_again.pods[i].behavior.cpu_scale,
              stormy.pods[i].behavior.cpu_scale);
  }

  const SimPressureRun calm_run = RunSimWithMonitor(calm);
  EXPECT_EQ(calm_run.episodes, 0);
  EXPECT_LT(calm_run.max_pressure, 0.95);
  EXPECT_GT(calm_run.observed_ticks, 0);

  const SimPressureRun storm_run = RunSimWithMonitor(stormy);
  EXPECT_GT(storm_run.episodes, 0);
  EXPECT_GT(storm_run.max_pressure, 0.95);
  EXPECT_GT(storm_run.violation_ticks, calm_run.violation_ticks);
}

TEST(ServePressureTest, CalmRunEmitsNoEpisodes) {
  // Storms off, light load on an ample cluster: the detector stays armed but
  // silent, and no SLO-violation time accrues.
  const ServeWorld& world = World();
  serve::ServeConfig config;
  config.arrival.offered_pods_per_sec = 20.0;
  config.distributed.num_schedulers = 2;
  config.max_schedule_per_round = 512;
  config.mean_residency_rounds = 10.0;
  ClusterState cluster(200, kUnitResources, /*history_window=*/64);
  serve::PlacementService service(world.workload, world.profiles, &cluster,
                                  config);
  HostPressureMonitor::Options options;
  options.num_slo_shards = 2;
  HostPressureMonitor monitor(200, options);
  service.set_pressure_monitor(&monitor);
  service.RunRounds(30);
  service.Drain();
  monitor.Finalize();
  EXPECT_GT(service.counters().placed, 0);
  EXPECT_EQ(monitor.detector().events_emitted(), 0);
  const SloAccumulator slo = monitor.MergedSlo();
  EXPECT_GT(slo.total_observed_ticks(), 0);
  EXPECT_EQ(slo.total_violation_ticks(), 0);
  EXPECT_LT(monitor.last_max_pressure(), 0.85);
}

}  // namespace
}  // namespace optum
