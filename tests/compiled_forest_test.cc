// CompiledForest equivalence suite (DESIGN.md §10): the compiled SoA engine
// must be BIT-IDENTICAL to RandomForestRegressor's pointer-tree descent —
// the scheduler swaps it onto the scoring hot path, so any drift would
// change placements and break the lane-sharded cache determinism
// guarantees. Labeled `concurrency` so the tsan/asan-ubsan presets cover
// the shared-read inference path.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "src/ml/compiled_forest.h"
#include "src/ml/metrics.h"
#include "src/ml/random_forest.h"
#include "src/stats/rng.h"

namespace optum::ml {
namespace {

Dataset RandomDataset(uint64_t seed, size_t n, size_t features) {
  Rng rng(seed);
  Dataset d(features);
  std::vector<double> x(features);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : x) {
      v = rng.Uniform(-3, 3);
    }
    double y = rng.Gaussian(0, 0.2);
    for (size_t f = 0; f < features; ++f) {
      y += (f % 2 == 0 ? 1.5 : -0.7) * x[f] + (x[f] > 0.8 ? 1.0 : 0.0);
    }
    d.Add(x, y);
  }
  return d;
}

// Random query block, row-major; deliberately wider-ranged than training.
std::vector<double> RandomRows(uint64_t seed, size_t rows, size_t features) {
  Rng rng(seed);
  std::vector<double> block(rows * features);
  for (auto& v : block) {
    v = rng.Uniform(-6, 6);
  }
  return block;
}

void ExpectBitIdentical(const RandomForestRegressor& forest,
                        const CompiledForest& compiled,
                        const std::vector<double>& rows, size_t stride) {
  const size_t n = rows.size() / stride;
  std::vector<double> batch(n);
  compiled.PredictBatch(rows, stride, batch);
  for (size_t i = 0; i < n; ++i) {
    const std::span<const double> row(rows.data() + i * stride, stride);
    const double reference = forest.Predict(row);
    // Exact double equality, not EXPECT_DOUBLE_EQ's 4-ulp tolerance.
    EXPECT_EQ(reference, compiled.Predict(row)) << "row " << i;
    EXPECT_EQ(reference, batch[i]) << "row " << i;
  }
}

TEST(CompiledForestTest, BitIdenticalOnRandomizedDatasets) {
  for (const uint64_t seed : {1u, 2u, 3u, 4u}) {
    for (const size_t features : {size_t{1}, size_t{3}, size_t{5}}) {
      const Dataset d = RandomDataset(seed * 11, 240, features);
      ForestParams params;
      params.num_trees = 3 + seed % 4;
      RandomForestRegressor forest(params, seed);
      forest.Fit(d);
      const CompiledForest compiled = CompiledForest::Compile(forest);
      EXPECT_EQ(compiled.num_trees(), forest.num_trees());
      ExpectBitIdentical(forest, compiled,
                         RandomRows(seed * 13 + features, 100, features), features);
    }
  }
}

TEST(CompiledForestTest, NanAndInfinityFeaturesMatchPointerDescent) {
  const Dataset d = RandomDataset(7, 300, 4);
  RandomForestRegressor forest(ForestParams{}, 7);
  forest.Fit(d);
  const CompiledForest compiled = CompiledForest::Compile(forest);

  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> rows = RandomRows(8, 64, 4);
  // Sprinkle non-finite values over every column, including all-NaN rows
  // (NaN compares false against any threshold, so descent always goes
  // right — the compiled engine must reproduce that path exactly).
  Rng rng(9);
  for (size_t i = 0; i < rows.size(); ++i) {
    const double roll = rng.Uniform(0, 1);
    if (roll < 0.15) {
      rows[i] = kNan;
    } else if (roll < 0.25) {
      rows[i] = kInf;
    } else if (roll < 0.35) {
      rows[i] = -kInf;
    }
  }
  for (size_t f = 0; f < 4; ++f) {
    rows[f] = kNan;  // row 0: every feature NaN
  }
  ExpectBitIdentical(forest, compiled, rows, 4);
}

TEST(CompiledForestTest, SingleNodeStumpTrees) {
  // Constant targets: every tree is a pure single-leaf stump.
  Dataset d(2);
  for (int i = 0; i < 60; ++i) {
    d.Add(std::vector<double>{static_cast<double>(i), static_cast<double>(-i)}, 4.25);
  }
  ForestParams params;
  params.num_trees = 5;
  RandomForestRegressor forest(params, 3);
  forest.Fit(d);
  const CompiledForest compiled = CompiledForest::Compile(forest);
  EXPECT_EQ(compiled.num_nodes(), compiled.num_trees());  // one leaf per tree
  ExpectBitIdentical(forest, compiled, RandomRows(4, 32, 2), 2);
  EXPECT_EQ(compiled.Predict(std::vector<double>{1e9, -1e9}), 4.25);
}

TEST(CompiledForestTest, BatchSizesAcrossBlockBoundaryAndPaddedStride) {
  const Dataset d = RandomDataset(21, 200, 3);
  RandomForestRegressor forest(ForestParams{}, 21);
  forest.Fit(d);
  const CompiledForest compiled = CompiledForest::Compile(forest);

  // Batch sizes straddling the internal row block (64), plus stride padding:
  // rows carry 5 doubles but the model reads only its 3 features.
  for (const size_t n : {size_t{1}, size_t{2}, size_t{63}, size_t{64}, size_t{65},
                         size_t{130}}) {
    const size_t stride = 5;
    std::vector<double> rows = RandomRows(100 + n, n, stride);
    std::vector<double> out(n);
    compiled.PredictBatch(rows, stride, out);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i],
                forest.Predict(std::span<const double>(rows.data() + i * stride, 3)))
          << "n=" << n << " row " << i;
    }
  }
}

TEST(CompiledForestTest, OddBatchSizesThroughInterleavedAndTailPaths) {
  // PredictBatch interleaves groups of rows per tree and finishes the
  // remainder with scalar descent. Odd batch sizes exercise every split of
  // work between the two paths — including all-tail (n below the interleave
  // width) and exactly-one-group — and must stay bit-identical to Predict
  // even with non-finite features flowing through the lockstep kernel.
  const Dataset d = RandomDataset(61, 260, 4);
  RandomForestRegressor forest(ForestParams{}, 61);
  forest.Fit(d);
  const CompiledForest compiled = CompiledForest::Compile(forest);

  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (const size_t n : {size_t{1}, size_t{3}, size_t{5}, size_t{7}, size_t{9},
                         size_t{15}, size_t{16}, size_t{17}, size_t{31}}) {
    std::vector<double> rows = RandomRows(200 + n, n, 4);
    Rng rng(300 + n);
    for (auto& v : rows) {
      const double roll = rng.Uniform(0, 1);
      if (roll < 0.1) {
        v = kNan;
      } else if (roll < 0.15) {
        v = rng.Uniform(0, 1) < 0.5 ? kInf : -kInf;
      }
    }
    ExpectBitIdentical(forest, compiled, rows, 4);
  }
}

TEST(CompiledForestTest, ForestPredictBatchServedByCompiledEngine) {
  // RandomForestRegressor::PredictBatch (built at Fit time) must agree with
  // row-at-a-time pointer descent — this is the path AppModel consumers use.
  const Dataset d = RandomDataset(31, 250, 4);
  RandomForestRegressor forest(ForestParams{}, 31);
  forest.Fit(d);
  EXPECT_TRUE(forest.compiled().compiled());
  const std::vector<double> rows = RandomRows(32, 90, 4);
  std::vector<double> out(90);
  forest.PredictBatch(rows, 4, out);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], forest.Predict(std::span<const double>(rows.data() + i * 4, 4)));
  }
}

TEST(CompiledForestTest, PredictAllMatchesPerRowLoopForAllFamilies) {
  // The default PredictBatch (loop-over-Predict) keeps every non-forest
  // family on the batch interface with unchanged results.
  const Dataset train = RandomDataset(41, 300, 2);
  const Dataset test = RandomDataset(42, 50, 2);
  for (const RegressorKind kind :
       {RegressorKind::kLinear, RegressorKind::kRidge, RegressorKind::kRandomForest,
        RegressorKind::kMlp, RegressorKind::kSvr}) {
    auto model = MakeRegressor(kind, 5);
    model->Fit(train);
    const std::vector<double> batched = PredictAll(*model, test);
    ASSERT_EQ(batched.size(), test.size());
    for (size_t i = 0; i < test.size(); ++i) {
      EXPECT_EQ(batched[i], model->Predict(test.Features(i))) << ToString(kind);
    }
  }
}

TEST(CompiledForestTest, ConcurrentReadersGetIdenticalResults) {
  // Inference is const shared-state only; concurrent PredictBatch calls on
  // one engine must be race-free (exercised under TSan via the concurrency
  // label) and return the serial answers.
  const Dataset d = RandomDataset(51, 300, 3);
  RandomForestRegressor forest(ForestParams{}, 51);
  forest.Fit(d);
  const CompiledForest compiled = CompiledForest::Compile(forest);
  const std::vector<double> rows = RandomRows(52, 200, 3);
  std::vector<double> serial(200);
  compiled.PredictBatch(rows, 3, serial);

  constexpr int kThreads = 4;
  std::vector<std::vector<double>> results(kThreads, std::vector<double>(200));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { compiled.PredictBatch(rows, 3, results[static_cast<size_t>(t)]); });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(results[static_cast<size_t>(t)], serial);
  }
}

}  // namespace
}  // namespace optum::ml
