// Pipelined serve rounds (DESIGN.md §12): the two-stage round loop —
// speculative shard scoring against an epoch-snapshotted host view plus the
// multi-threaded ingest hand-off — must be a pure wall-clock optimization.
// These tests pin the contract: optum.latency.v1 rows, placed-pod sets,
// admission accounting, serve counters, and SLO-violation accounting are
// bit-identical across every {pipeline_depth} × {shard_num_threads} ×
// {ingest_threads} combination; the admission queue survives genuinely
// concurrent offers; and a speculative score finalized after cluster
// mutation equals a fresh PlaceScored. Labeled `concurrency` so the suite
// also runs under TSan / ASan+UBSan via tools/sanitize_runner.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "src/core/offline_profiler.h"
#include "src/core/optum_scheduler.h"
#include "src/obs/metrics.h"
#include "src/obs/pressure.h"
#include "src/obs/span_log.h"
#include "src/sched/baselines.h"
#include "src/serve/placement_service.h"
#include "src/sim/simulator.h"
#include "src/trace/workload_generator.h"

namespace optum {
namespace {

using core::OptumProfiles;
using core::OptumScheduler;

Workload MakeWorkload(int hosts, Tick horizon, uint64_t seed) {
  WorkloadConfig config;
  config.num_hosts = hosts;
  config.horizon = horizon;
  config.seed = seed;
  return WorkloadGenerator(config).Generate();
}

// Shared world: profiles trained once, reused by every test below.
struct ServeWorld {
  Workload workload;
  OptumProfiles profiles;
};

const ServeWorld& World() {
  static const ServeWorld* world = [] {
    auto* w = new ServeWorld;
    w->workload = MakeWorkload(64, 3 * kTicksPerHour, 23);
    SimConfig sim_config;
    sim_config.pod_usage_period = 5;
    sim_config.max_attempts_per_tick = 1500;
    AlibabaBaseline reference;
    const SimResult ref = Simulator(w->workload, sim_config, reference).Run();
    core::OfflineProfilerConfig prof;
    prof.max_train_samples = 600;
    w->profiles = core::OfflineProfiler(prof).BuildProfiles(ref.trace);
    return w;
  }();
  return *world;
}

// Everything a pipelined run can observably produce.
struct RunResult {
  std::string row;              // RenderLatencyRow — the exported JSONL row
  std::vector<PodId> placed;    // placed-pod set, ascending
  std::string slo_json;         // merged optum.slo.v1 document
  serve::AdmissionStats stats;
  serve::ServeCounters counters;
  uint64_t memo_hits = 0;       // summed over shards
};

// One service run in a mild-overload regime with departures, so requeues,
// waits, epoch churn, and SLO violations all occur — the paths speculation
// has to get right.
RunResult RunPipelined(size_t pipeline_depth, size_t shard_threads,
                       size_t ingest_threads) {
  const ServeWorld& world = World();
  serve::ServeConfig config;
  config.arrival.offered_pods_per_sec = 120.0;
  config.arrival.round_seconds = 1.0;
  config.distributed.num_schedulers = 2;
  config.distributed.max_attempts_per_pod = 8;
  config.distributed.shard_num_threads = shard_threads;
  config.queue_capacity_per_shard = 1024;
  config.max_schedule_per_round = 48;  // mild overload: nonzero waits
  config.max_requeues = 8;
  config.mean_residency_rounds = 12.0;  // departures churn host epochs
  config.keep_exact_latencies = true;
  config.pipeline_depth = pipeline_depth;
  config.ingest_threads = ingest_threads;

  obs::HostPressureMonitor::Options mopts;
  mopts.num_slo_shards = config.distributed.num_schedulers;
  mopts.seconds_per_tick = config.arrival.round_seconds;
  mopts.pressure.slo_threshold = 0.5;  // low bar so violation time accrues
  obs::HostPressureMonitor monitor(300, mopts);

  ClusterState cluster(300, kUnitResources, /*history_window=*/64);
  serve::PlacementService service(world.workload, world.profiles, &cluster,
                                  config);
  service.set_pressure_monitor(&monitor);
  service.RunRounds(10);
  service.Drain();
  monitor.Finalize();

  RunResult out;
  out.row = serve::RenderLatencyRow(service.MakeLatencyRow());
  out.placed = service.PlacedPodIds();
  out.slo_json = monitor.MergedSlo().RenderJson(monitor.seconds_per_tick());
  out.stats = service.admission_stats();
  out.counters = service.counters();
  for (size_t s = 0; s < service.coordinator().num_schedulers(); ++s) {
    out.memo_hits += service.coordinator().shard(s).eval_memo_hits();
  }
  return out;
}

// The tentpole invariant: the serial depth-1 single-threaded inline-ingest
// loop and every pipelined/threaded variant export the same bytes.
TEST(PipelinedServeTest, RowsPlacedSetsAndSloBitIdenticalAcrossMatrix) {
  const RunResult base = RunPipelined(/*pipeline_depth=*/1,
                                      /*shard_threads=*/0,
                                      /*ingest_threads=*/0);
  EXPECT_GT(base.counters.placed, 0);
  EXPECT_GT(base.counters.departed, 0);
  EXPECT_GT(base.counters.conflicts, 0);
  EXPECT_EQ(base.memo_hits, 0u);  // depth 1 never touches the memo

  uint64_t pipelined_memo_hits = 0;
  constexpr size_t kThreads[] = {0, 1, 2, 8};
  for (const size_t depth : {size_t{1}, size_t{2}, size_t{3}}) {
    for (size_t t = 0; t < 4; ++t) {
      const size_t threads = kThreads[t];
      const size_t ingest = t % 2;  // alternate inline / producer ingest
      if (depth == 1 && threads == 0 && ingest == 0) {
        continue;  // the baseline itself
      }
      const RunResult r = RunPipelined(depth, threads, ingest);
      const std::string label = "depth=" + std::to_string(depth) +
                                " threads=" + std::to_string(threads) +
                                " ingest=" + std::to_string(ingest);
      EXPECT_EQ(r.row, base.row) << label;
      EXPECT_EQ(r.placed, base.placed) << label;
      EXPECT_EQ(r.slo_json, base.slo_json) << label;
      EXPECT_EQ(r.stats.offered, base.stats.offered) << label;
      EXPECT_EQ(r.stats.admitted, base.stats.admitted) << label;
      EXPECT_EQ(r.stats.rejected_full, base.stats.rejected_full) << label;
      EXPECT_EQ(r.stats.requeued, base.stats.requeued) << label;
      EXPECT_EQ(r.stats.peak_depth, base.stats.peak_depth) << label;
      EXPECT_EQ(r.counters.rounds, base.counters.rounds) << label;
      EXPECT_EQ(r.counters.arrivals, base.counters.arrivals) << label;
      EXPECT_EQ(r.counters.placed, base.counters.placed) << label;
      EXPECT_EQ(r.counters.dropped, base.counters.dropped) << label;
      EXPECT_EQ(r.counters.departed, base.counters.departed) << label;
      EXPECT_EQ(r.counters.conflicts, base.counters.conflicts) << label;
      EXPECT_EQ(r.counters.schedule_rounds, base.counters.schedule_rounds)
          << label;
      if (depth > 1) {
        pipelined_memo_hits += r.memo_hits;
      }
    }
  }
  // The pipeline must actually be working, not silently degrading to the
  // serial path: speculative rounds reuse memoized evaluations.
  EXPECT_GT(pipelined_memo_hits, 0u);
}

// A shard with a decision log attached declines to speculate (per-candidate
// cache-miss tagging would be skewed by the memo) but must stay
// bit-identical through the coordinator's PlaceScored fallback.
TEST(PipelinedServeTest, DecisionLogShardFallsBackBitIdentically) {
  const RunResult base = RunPipelined(1, 0, 0);

  const ServeWorld& world = World();
  serve::ServeConfig config;
  config.arrival.offered_pods_per_sec = 120.0;
  config.arrival.round_seconds = 1.0;
  config.distributed.num_schedulers = 2;
  config.distributed.max_attempts_per_pod = 8;
  config.queue_capacity_per_shard = 1024;
  config.max_schedule_per_round = 48;
  config.max_requeues = 8;
  config.mean_residency_rounds = 12.0;
  config.keep_exact_latencies = true;
  config.pipeline_depth = 2;
  obs::HostPressureMonitor::Options mopts;
  mopts.num_slo_shards = config.distributed.num_schedulers;
  mopts.seconds_per_tick = config.arrival.round_seconds;
  mopts.pressure.slo_threshold = 0.5;
  obs::HostPressureMonitor monitor(300, mopts);
  ClusterState cluster(300, kUnitResources, /*history_window=*/64);
  serve::PlacementService service(world.workload, world.profiles, &cluster,
                                  config);
  service.set_pressure_monitor(&monitor);
  obs::DecisionLog decision_log("/dev/null");
  ASSERT_TRUE(decision_log.ok());
  obs::Sinks shard_sinks;
  shard_sinks.decision_log = &decision_log;
  service.coordinator().shard(0).AttachSinks(shard_sinks);
  EXPECT_FALSE(service.coordinator().shard(0).speculation_supported());
  service.RunRounds(10);
  service.Drain();
  monitor.Finalize();
  EXPECT_EQ(serve::RenderLatencyRow(service.MakeLatencyRow()), base.row);
  EXPECT_EQ(service.PlacedPodIds(), base.placed);
  EXPECT_EQ(monitor.MergedSlo().RenderJson(monitor.seconds_per_tick()),
            base.slo_json);
  EXPECT_EQ(service.coordinator().shard(0).eval_memo_hits(), 0u);
  EXPECT_GT(decision_log.records_written(), 0);
}

// BeginSpeculative → cluster mutation → FinalizeSpeculative must equal a
// fresh PlaceScored issued at finalize time, including when the mutation
// invalidates candidates the speculation already scored.
TEST(SpeculativeSchedulerTest, FinalizeMatchesFreshPlaceScoredAfterMutation) {
  const ServeWorld& world = World();
  const std::vector<const AppProfile*> catalog =
      SchedulableApps(world.workload);
  ASSERT_FALSE(catalog.empty());

  core::OptumConfig config;
  config.sample_fraction = 0.25;
  config.min_candidates = 16;
  OptumScheduler speculative(world.profiles, config);
  OptumScheduler fresh(world.profiles, config);
  ASSERT_TRUE(speculative.speculation_supported());

  // A small app rotation so (app, host) pairs recur against unchanged host
  // epochs — the condition under which the direct-mapped memo can hit.
  const size_t num_apps = catalog.size() < 3 ? catalog.size() : size_t{3};

  constexpr int kHosts = 64;
  ClusterState cluster(kHosts, kUnitResources, /*history_window=*/64);
  PodId next_id = 0;
  std::vector<PodRuntime*> live;
  for (int h = 0; h < kHosts; ++h) {
    for (int k = 0; k < 4; ++k) {
      const AppProfile& app =
          *catalog[static_cast<size_t>(next_id) % num_apps];
      live.push_back(cluster.Place(MakePodSpec(next_id, app), &app, h, 0));
      ++next_id;
    }
  }

  OptumScheduler::SpeculativeScore spec;
  int agreements = 0;
  for (int i = 0; i < 120; ++i) {
    const AppProfile& app = *catalog[static_cast<size_t>(next_id) % num_apps];
    const PodSpec pod = MakePodSpec(next_id, app);
    ++next_id;

    speculative.BeginSpeculative(pod, cluster, &spec);

    // Mutate the cluster between speculation and finalize: place one filler
    // pod and evict one old pod, bumping the touched hosts' change epochs.
    const AppProfile& filler_app =
        *catalog[static_cast<size_t>(next_id) % num_apps];
    const PodSpec filler = MakePodSpec(next_id, filler_app);
    ++next_id;
    live.push_back(
        cluster.Place(filler, &filler_app, static_cast<HostId>(i % kHosts), 0));
    if (i % 3 == 0 && !live.empty()) {
      cluster.Remove(live.front());
      live.erase(live.begin());
    }

    // Both schedulers share one sampling-stream history (one draw per pod),
    // so the fresh scheduler sees the identical candidate sample — and the
    // post-mutation cluster, exactly what FinalizeSpeculative must match.
    double fresh_score = 0.0;
    const PlacementDecision fresh_decision =
        fresh.PlaceScored(pod, cluster, &fresh_score);
    double spec_score = 0.0;
    const PlacementDecision spec_decision =
        speculative.FinalizeSpeculative(pod, cluster, &spec, &spec_score);

    EXPECT_EQ(spec_decision.host, fresh_decision.host) << "pod " << pod.id;
    EXPECT_EQ(spec_decision.reason, fresh_decision.reason) << "pod " << pod.id;
    EXPECT_EQ(spec_score, fresh_score) << "pod " << pod.id;
    if (spec_decision.host != kInvalidHostId) {
      live.push_back(cluster.Place(pod, &app, spec_decision.host, 0));
      ++agreements;
    }
    spec.Clear();
  }
  EXPECT_GT(agreements, 0);
  // Repeated apps against unmoved hosts hit the epoch-stamped memo.
  EXPECT_GT(speculative.eval_memo_hits(), 0u);
}

// The queue's counters were plain ints once; under concurrent Offer they
// must neither lose increments nor admit past capacity.
TEST(AdmissionQueueConcurrencyTest, ConcurrentOffersAccountExactly) {
  constexpr size_t kShards = 4;
  constexpr size_t kCapacity = 64;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  serve::AdmissionQueue queue(kCapacity, kShards);

  std::deque<serve::ServePod> pods;
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    serve::ServePod pod;
    pod.spec.id = i;
    pods.push_back(pod);
  }

  std::atomic<int64_t> admitted{0};
  std::atomic<int64_t> rejected{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        serve::ServePod* pod = &pods[static_cast<size_t>(t * kPerThread + i)];
        if (queue.Offer(pod)) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }

  const serve::AdmissionStats stats = queue.stats();
  EXPECT_EQ(stats.offered, int64_t{kThreads} * kPerThread);
  EXPECT_EQ(stats.admitted, admitted.load());
  EXPECT_EQ(stats.rejected_full, rejected.load());
  EXPECT_EQ(stats.admitted + stats.rejected_full, stats.offered);
  EXPECT_EQ(queue.depth(), static_cast<size_t>(admitted.load()));
  EXPECT_LE(queue.depth(), kShards * kCapacity);
  EXPECT_GE(stats.peak_depth, queue.depth());
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_LE(queue.shard_depth(s), kCapacity) << "shard " << s;
  }

  // Single-consumer drain sees exactly the admitted pods.
  std::vector<serve::ServePod*> batch;
  size_t drained = 0;
  while (queue.PopBatch(128, &batch) > 0) {
    drained += batch.size();
    batch.clear();
  }
  EXPECT_EQ(drained, static_cast<size_t>(admitted.load()));
  EXPECT_TRUE(queue.empty());
}

// AttachSinks semantics: one call attaches every slot at once and all stay
// live together; re-attaching with a field nulled detaches just that sink.
TEST(SinksAttachTest, FullBundleAttachesAndNulledFieldDetaches) {
  const ServeWorld& world = World();
  const std::vector<const AppProfile*> catalog =
      SchedulableApps(world.workload);
  ASSERT_FALSE(catalog.empty());

  core::OptumConfig config;
  config.sample_fraction = 0.5;
  OptumScheduler scheduler(world.profiles, config);
  ClusterState cluster(32, kUnitResources, /*history_window=*/64);

  const std::string span_path =
      ::testing::TempDir() + "/forwarder_spans.jsonl";
  obs::SpanLog span_log(span_path);
  ASSERT_TRUE(span_log.ok());
  obs::MetricRegistry registry;

  obs::DecisionLog decision_log("/dev/null");
  ASSERT_TRUE(decision_log.ok());
  obs::Sinks sinks;
  sinks.span_log = &span_log;
  sinks.metrics = &registry;
  sinks.decision_log = &decision_log;
  scheduler.AttachSinks(sinks);
  EXPECT_EQ(scheduler.attached_sinks().span_log, &span_log);

  PodId id = 0;
  int placed = 0;
  auto place_some = [&] {
    for (int i = 0; i < 16; ++i) {
      const AppProfile& app = *catalog[static_cast<size_t>(id) % catalog.size()];
      const PodSpec pod = MakePodSpec(id, app);
      ++id;
      double score = 0.0;
      const PlacementDecision decision = scheduler.PlaceScored(pod, cluster, &score);
      if (decision.host != kInvalidHostId) {
        cluster.Place(pod, &app, decision.host, 0);
        ++placed;
      }
    }
  };
  place_some();
  span_log.Flush();
  ASSERT_GT(placed, 0);
  EXPECT_GT(span_log.records_written(), 0);         // span slot live
  EXPECT_GT(decision_log.records_written(), 0);     // decision slot live
  EXPECT_EQ(registry.counter("optum.placements")->Value(),
            static_cast<uint64_t>(placed));         // metrics slot live

  // Re-attach with the span log nulled: that sink detaches, the rest stay.
  const int64_t spans_before = span_log.records_written();
  const int64_t decisions_before = decision_log.records_written();
  obs::Sinks without_spans = scheduler.attached_sinks();
  without_spans.span_log = nullptr;
  scheduler.AttachSinks(without_spans);
  place_some();
  span_log.Flush();
  EXPECT_EQ(span_log.records_written(), spans_before);   // detached
  EXPECT_GT(decision_log.records_written(), decisions_before);  // still live
  EXPECT_EQ(registry.counter("optum.placements")->Value(),
            static_cast<uint64_t>(placed));
  std::remove(span_path.c_str());
}

}  // namespace
}  // namespace optum
