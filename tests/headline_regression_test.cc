// Guardrail for the paper's headline claims at a small, seed-pinned scale:
// Optum must beat the reference scheduler's utilization by a clear margin
// with zero capacity violations and no stranded pods. If a change breaks
// the Fig. 19 result, this test fails before the bench suite runs.
#include <gtest/gtest.h>

#include "src/core/offline_profiler.h"
#include "src/core/optum_scheduler.h"
#include "src/sched/baselines.h"
#include "src/sim/simulator.h"
#include "src/trace/workload_generator.h"

namespace optum {
namespace {

TEST(HeadlineRegressionTest, OptumBeatsReferenceUtilizationSafely) {
  WorkloadConfig config;
  config.num_hosts = 64;
  config.horizon = 4 * kTicksPerHour;
  config.seed = 42;
  const Workload workload = WorkloadGenerator(config).Generate();

  SimConfig sim_config;
  sim_config.pod_usage_period = 5;
  sim_config.max_attempts_per_tick = 1500;

  AlibabaBaseline reference;
  const SimResult ref_result = Simulator(workload, sim_config, reference).Run();

  core::OfflineProfilerConfig prof_config;
  prof_config.max_train_samples = 800;
  core::OptumProfiles profiles =
      core::OfflineProfiler(prof_config).BuildProfiles(ref_result.trace);
  core::OptumScheduler optum(std::move(profiles));
  SimConfig optum_config = sim_config;
  optum_config.on_tick_end = [&optum](const ClusterState& cluster, Tick now) {
    optum.ObserveColocation(cluster, now);
  };
  const SimResult optum_result = Simulator(workload, optum_config, optum).Run();

  // The paper reports up to +15%; at this scale the margin is larger, so
  // +5% is a conservative regression floor.
  EXPECT_GT(optum_result.MeanCpuUtilNonIdle(),
            1.05 * ref_result.MeanCpuUtilNonIdle())
      << "optum=" << optum_result.MeanCpuUtilNonIdle()
      << " reference=" << ref_result.MeanCpuUtilNonIdle();
  EXPECT_DOUBLE_EQ(optum_result.violation_rate(), 0.0);
  EXPECT_EQ(optum_result.never_scheduled_pods, 0);
  // Performance discipline: Optum schedules at least as many pods.
  EXPECT_GE(optum_result.scheduled_pods, ref_result.scheduled_pods);
}

TEST(HeadlineRegressionTest, OptumPredictorSaferThanResourceCentral) {
  // Fig. 11's dangerous side: Optum's under-estimation tail must be
  // smaller than Resource Central's on the same run (deterministic).
  WorkloadConfig config;
  config.num_hosts = 32;
  config.horizon = 8 * kTicksPerHour;
  config.seed = 7;
  const Workload workload = WorkloadGenerator(config).Generate();

  SimConfig sim_config;
  sim_config.pod_usage_period = 5;

  AlibabaBaseline reference;
  const SimResult profiling_run = Simulator(workload, sim_config, reference).Run();
  core::OfflineProfilerConfig prof_config;
  prof_config.max_train_samples = 300;
  prof_config.evaluate_holdout = false;
  const core::OptumProfiles profiles =
      core::OfflineProfiler(prof_config).BuildProfiles(profiling_run.trace);

  // Second identical run: snapshot both predictors hourly and compare the
  // count of deep under-estimations against the realized 2-hour peak.
  core::OptumUsagePredictorAdapter optum_predictor(&profiles);
  ResourceCentralPredictor rc_predictor(99.0);
  std::vector<std::vector<double>> usage(32);
  struct Sample {
    HostId host;
    Tick tick;
    double optum;
    double rc;
  };
  std::vector<Sample> samples;
  SimConfig eval_config = sim_config;
  eval_config.on_tick_end = [&](const ClusterState& cluster, Tick now) {
    for (const Host& host : cluster.hosts()) {
      usage[static_cast<size_t>(host.id)].push_back(host.usage.cpu);
      if (now % kTicksPerHour == 0 && now > 0 && !host.IsIdle()) {
        samples.push_back(Sample{host.id, now, optum_predictor.PredictHostCpu(host),
                                 rc_predictor.PredictHostCpu(host)});
      }
    }
  };
  AlibabaBaseline scheduler;
  Simulator(workload, eval_config, scheduler).Run();

  int optum_deep_under = 0, rc_deep_under = 0;
  for (const Sample& s : samples) {
    double peak = 0.0;
    const auto& series = usage[static_cast<size_t>(s.host)];
    const size_t begin = static_cast<size_t>(s.tick);
    for (size_t i = begin; i < std::min(series.size(), begin + 2 * kTicksPerHour); ++i) {
      peak = std::max(peak, series[i]);
    }
    if (peak <= 1e-6) {
      continue;
    }
    optum_deep_under += s.optum < 0.9 * peak ? 1 : 0;
    rc_deep_under += s.rc < 0.9 * peak ? 1 : 0;
  }
  EXPECT_LE(optum_deep_under, rc_deep_under);
}

}  // namespace
}  // namespace optum
