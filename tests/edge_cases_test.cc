// Edge-case coverage: solver stress, Medea stale-solution handling, and
// thread-pool concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/thread_pool.h"
#include "src/sched/medea.h"
#include "src/solver/assignment_solver.h"
#include "src/stats/rng.h"

namespace optum {
namespace {

TEST(SolverStressTest, LargeFeasibleInstanceSolvesWithinBudget) {
  // 15 items x 40 bins — the Medea sub-problem size from the paper (§5.1).
  solver::AssignmentProblem p;
  Rng rng(1);
  for (int i = 0; i < 15; ++i) {
    p.demands.push_back({rng.Uniform(0.05, 0.2), rng.Uniform(0.05, 0.2)});
  }
  for (int b = 0; b < 40; ++b) {
    p.capacities.push_back({1, 1});
  }
  for (int i = 0; i < 15; ++i) {
    std::vector<double> row;
    for (int b = 0; b < 40; ++b) {
      row.push_back(1.0 + rng.Uniform(0, 1));
    }
    p.scores.push_back(row);
  }
  const solver::AssignmentSolution s = solver::AssignmentSolver(500'000).Solve(p);
  // All items fit easily; every one must be assigned.
  for (int assignment : s.assignment) {
    EXPECT_GE(assignment, 0);
  }
  EXPECT_GT(s.objective, 15.0);
}

TEST(SolverStressTest, TightPackingStillOptimal) {
  // Two bins, four items of 0.5: optimal packs all four.
  solver::AssignmentProblem p;
  for (int i = 0; i < 4; ++i) {
    p.demands.push_back({0.5, 0.1});
  }
  p.capacities = {{1, 1}, {1, 1}};
  for (int i = 0; i < 4; ++i) {
    p.scores.push_back({1.0, 1.0});
  }
  const solver::AssignmentSolution s = solver::AssignmentSolver().Solve(p);
  EXPECT_TRUE(s.optimal);
  EXPECT_DOUBLE_EQ(s.objective, 4.0);
}

TEST(MedeaEdgeTest, StaleSolutionIsRevalidated) {
  // Medea solves a batch, but the chosen host fills up before the pod's
  // decision is consumed: the stale mapping must not be committed.
  AppProfile ls_app;
  ls_app.id = 0;
  ls_app.slo = SloClass::kLs;
  ls_app.request = {0.4, 0.1};
  ls_app.limit = {0.5, 0.2};
  auto make_pod = [&](PodId id) {
    PodSpec pod;
    pod.id = id;
    pod.app = 0;
    pod.slo = SloClass::kLs;
    pod.request = ls_app.request;
    pod.limit = ls_app.limit;
    return pod;
  };
  ClusterState cluster(1, kUnitResources, 8);
  MedeaOptions options;
  options.max_pods = 2;
  Medea medea(options);
  // Batch two pods; the solve assigns both to host 0 (0.8 total).
  EXPECT_FALSE(medea.Place(make_pod(1), ls_app, cluster).placed());
  const PlacementDecision d2 = medea.Place(make_pod(2), ls_app, cluster);
  ASSERT_TRUE(d2.placed());
  // Fill host 0 beyond capacity before pod 1 returns for its decision.
  cluster.Place(make_pod(2), &ls_app, 0, 0);
  cluster.Place(make_pod(10), &ls_app, 0, 0);
  // Pod 1's stored solution no longer fits: Medea must reject/re-batch
  // rather than return the stale host.
  const PlacementDecision d1 = medea.Place(make_pod(1), ls_app, cluster);
  EXPECT_FALSE(d1.placed());
}

TEST(ThreadPoolStressTest, ManyConcurrentParallelFors) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(997, [&total](size_t i) { total.fetch_add(static_cast<int64_t>(i)); });
  }
  EXPECT_EQ(total.load(), 20LL * (996LL * 997LL / 2));
}

TEST(ThreadPoolStressTest, SubmitFromMultipleThreads) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 100; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 400);
}

}  // namespace
}  // namespace optum
