// Thread-count invariance of Optum's candidate scoring: PlaceScored must
// produce bit-identical placement decisions, node scores, and aggregate
// cluster state for every OptumConfig::num_threads value. Parallel scoring
// gives each thread-pool lane a private prediction-cache shard whose values
// are pure functions of their keys, so lane assignment (and therefore
// thread timing) can never leak into a score — these tests prove it at the
// scheduler level on a >= 1,000-host cluster and end-to-end through the
// simulator. Run them under the `tsan` preset (tools/sanitize_runner.sh) to
// also prove the absence of data races, not just of nondeterminism.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/offline_profiler.h"
#include "src/core/optum_scheduler.h"
#include "src/obs/decision_log.h"
#include "src/obs/metrics.h"
#include "src/obs/span_log.h"
#include "src/sched/baselines.h"
#include "src/sim/simulator.h"
#include "src/trace/workload_generator.h"

namespace optum {
namespace {

using core::OptumConfig;
using core::OptumProfiles;
using core::OptumScheduler;
using core::ScoreMode;

Workload MakeWorkload(int hosts, Tick horizon, uint64_t seed) {
  WorkloadConfig config;
  config.num_hosts = hosts;
  config.horizon = horizon;
  config.seed = seed;
  return WorkloadGenerator(config).Generate();
}

SimConfig MakeSimConfig() {
  SimConfig config;
  config.pod_usage_period = 5;
  config.max_attempts_per_tick = 1500;
  return config;
}

OptumProfiles TrainProfiles(const Workload& workload, const SimConfig& sim_config) {
  AlibabaBaseline reference;
  const SimResult ref = Simulator(workload, sim_config, reference).Run();
  core::OfflineProfilerConfig prof;
  prof.max_train_samples = 600;
  return core::OfflineProfiler(prof).BuildProfiles(ref.trace);
}

// --- Scheduler-level thread-count invariance ---------------------------------

// Everything a placement stream can observably produce: the decision and
// Eq. 11 score per pod, plus the final per-host cluster aggregates the
// stream's commits built up.
struct StreamResult {
  std::vector<HostId> hosts;
  std::vector<WaitReason> reasons;
  std::vector<double> scores;
  std::vector<size_t> pods_per_host;
  std::vector<double> request_cpu_per_host;
  std::vector<uint64_t> change_epochs;
};

// Steady-state scheduling loop on a prefilled cluster: every placement is
// committed, and one older pod is removed every third submission so host
// epochs churn and the incremental caches keep revalidating. Mirrors the
// bench_hotpath loop so the tested path is the benchmarked path.
StreamResult StreamPlacements(const OptumProfiles& profiles,
                              const std::vector<const AppProfile*>& catalog,
                              int num_hosts, int prefill_per_host, int stream,
                              size_t num_threads, ScoreMode score_mode,
                              obs::MetricRegistry* registry = nullptr,
                              obs::DecisionLog* decision_log = nullptr,
                              obs::SpanLog* span_log = nullptr) {
  ClusterState cluster(num_hosts, kUnitResources, /*history_window=*/64);
  PodId next_id = 0;
  std::vector<PodRuntime*> live;
  for (int h = 0; h < num_hosts; ++h) {
    for (int k = 0; k < prefill_per_host; ++k) {
      const AppProfile& app = *catalog[static_cast<size_t>(next_id) % catalog.size()];
      live.push_back(cluster.Place(MakePodSpec(next_id, app), &app, h, 0));
      ++next_id;
    }
  }

  OptumConfig config;
  config.num_threads = num_threads;
  config.score_mode = score_mode;
  OptumScheduler scheduler(profiles, config);
  obs::Sinks sinks;
  sinks.metrics = registry;
  sinks.decision_log = decision_log;
  sinks.span_log = span_log;
  scheduler.AttachSinks(sinks);

  StreamResult result;
  size_t evict_cursor = 0;
  for (int i = 0; i < stream; ++i) {
    const AppProfile& app = *catalog[static_cast<size_t>(next_id) % catalog.size()];
    const PodSpec spec = MakePodSpec(next_id, app);
    ++next_id;
    double score = 0.0;
    const PlacementDecision decision = scheduler.PlaceScored(spec, cluster, &score);
    result.hosts.push_back(decision.host);
    result.reasons.push_back(decision.reason);
    result.scores.push_back(decision.placed() ? score : 0.0);
    if (decision.placed()) {
      live.push_back(cluster.Place(spec, &app, decision.host, 0));
    }
    if (i % 3 == 0 && !live.empty()) {
      evict_cursor = (evict_cursor + 1) % live.size();
      cluster.Remove(live[evict_cursor]);
      live[evict_cursor] = live.back();
      live.pop_back();
    }
  }

  for (const Host& host : cluster.hosts()) {
    result.pods_per_host.push_back(host.pods.size());
    result.request_cpu_per_host.push_back(host.request_sum.cpu);
    result.change_epochs.push_back(host.change_epoch);
  }
  return result;
}

// Bit-identical: EXPECT_EQ on doubles is exact equality, not ULP-tolerant.
void ExpectIdenticalStreams(const StreamResult& a, const StreamResult& b,
                            size_t num_threads) {
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (size_t i = 0; i < a.hosts.size(); ++i) {
    ASSERT_EQ(a.hosts[i], b.hosts[i])
        << "placement diverged at pod " << i << " with num_threads=" << num_threads;
    ASSERT_EQ(a.reasons[i], b.reasons[i]) << "at pod " << i;
    ASSERT_EQ(a.scores[i], b.scores[i])
        << "score diverged at pod " << i << " with num_threads=" << num_threads;
  }
  ASSERT_EQ(a.pods_per_host, b.pods_per_host);
  ASSERT_EQ(a.request_cpu_per_host, b.request_cpu_per_host);
  ASSERT_EQ(a.change_epochs, b.change_epochs);
}

class ThreadCountInvarianceTest : public ::testing::TestWithParam<ScoreMode> {};

TEST_P(ThreadCountInvarianceTest, PlaceScoredBitIdenticalAcrossThreadCounts) {
  const ScoreMode score_mode = GetParam();
  // Profiles train on a small reference run; the scoring cluster is
  // paper-scale-ish (>= 1,000 hosts) so the parallel path really engages
  // (candidates per pod = 0.05 * 1200 = 60 >= 2 * num_threads).
  const Workload workload = MakeWorkload(64, 3 * kTicksPerHour, 23);
  const SimConfig sim_config = MakeSimConfig();
  const OptumProfiles profiles = TrainProfiles(workload, sim_config);
  const std::vector<const AppProfile*> catalog = SchedulableApps(workload);
  ASSERT_FALSE(catalog.empty());

  constexpr int kHosts = 1200;
  constexpr int kPrefillPerHost = 4;
  constexpr int kStream = 400;
  const StreamResult serial = StreamPlacements(profiles, catalog, kHosts,
                                               kPrefillPerHost, kStream,
                                               /*num_threads=*/0, score_mode);
  // The stream must actually schedule for the equivalence to mean anything.
  size_t placed = 0;
  for (HostId h : serial.hosts) {
    placed += h != kInvalidHostId ? 1 : 0;
  }
  ASSERT_GT(placed, static_cast<size_t>(kStream) / 2);

  for (const size_t num_threads : {size_t{1}, size_t{2}, size_t{8}}) {
    const StreamResult threaded = StreamPlacements(profiles, catalog, kHosts,
                                                   kPrefillPerHost, kStream,
                                                   num_threads, score_mode);
    ExpectIdenticalStreams(serial, threaded, num_threads);
  }
}

INSTANTIATE_TEST_SUITE_P(BothScoreModes, ThreadCountInvarianceTest,
                         ::testing::Values(ScoreMode::kMarginal,
                                           ScoreMode::kPaperAbsolute));

// Attaching the full observability stack — registry counters/timers,
// predictor-cache gauges, and the per-placement decision log — must not
// perturb a single placement or score: metric updates never feed back into
// Eq. 11, and the decision log is rendered on the serial reduction path.
// Baseline is metrics-OFF serial, so the test catches observer effects in
// both the serial and the parallel scoring paths.
TEST(ThreadCountInvarianceTest, MetricsOnBitIdenticalAcrossThreadCounts) {
  const Workload workload = MakeWorkload(64, 3 * kTicksPerHour, 23);
  const SimConfig sim_config = MakeSimConfig();
  const OptumProfiles profiles = TrainProfiles(workload, sim_config);
  const std::vector<const AppProfile*> catalog = SchedulableApps(workload);
  ASSERT_FALSE(catalog.empty());

  constexpr int kHosts = 1200;
  constexpr int kPrefillPerHost = 4;
  constexpr int kStream = 400;
  const StreamResult bare = StreamPlacements(profiles, catalog, kHosts,
                                             kPrefillPerHost, kStream,
                                             /*num_threads=*/0, ScoreMode::kMarginal);
  size_t placed = 0;
  for (HostId h : bare.hosts) {
    placed += h != kInvalidHostId ? 1 : 0;
  }
  ASSERT_GT(placed, static_cast<size_t>(kStream) / 2);

  const std::string log_path = ::testing::TempDir() + "/concurrency_decisions.jsonl";
  for (const size_t num_threads : {size_t{0}, size_t{1}, size_t{2}, size_t{8}}) {
    obs::MetricRegistry registry;
    obs::DecisionLog decision_log(log_path);
    ASSERT_TRUE(decision_log.ok());
    const StreamResult observed =
        StreamPlacements(profiles, catalog, kHosts, kPrefillPerHost, kStream,
                         num_threads, ScoreMode::kMarginal, &registry, &decision_log);
    ExpectIdenticalStreams(bare, observed, num_threads);
    // The instrumentation must have actually been live, not silently off.
    EXPECT_EQ(registry.counter("optum.placements")->Value(), placed)
        << "num_threads=" << num_threads;
    EXPECT_EQ(registry.counter("optum.rejections")->Value(), kStream - placed);
    EXPECT_EQ(registry.histogram("optum.sample_seconds")->Count(),
              static_cast<uint64_t>(kStream));
    EXPECT_EQ(decision_log.records_written(), kStream);
  }
  std::remove(log_path.c_str());
}

// The span log renders on the serial reduction path from deterministic
// fields only (ticks, ids, counts, scores — never wall clock), so the JSONL
// byte stream must be identical for every thread count. This is the
// load-bearing guarantee that makes span files diffable across runs.
TEST(ThreadCountInvarianceTest, SpanLogBitIdenticalAcrossThreadCounts) {
  const Workload workload = MakeWorkload(64, 3 * kTicksPerHour, 23);
  const SimConfig sim_config = MakeSimConfig();
  const OptumProfiles profiles = TrainProfiles(workload, sim_config);
  const std::vector<const AppProfile*> catalog = SchedulableApps(workload);
  ASSERT_FALSE(catalog.empty());

  constexpr int kHosts = 1200;
  constexpr int kPrefillPerHost = 4;
  constexpr int kStream = 400;
  const auto read_file = [](const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::string contents;
    char buf[1 << 14];
    size_t n;
    while (f != nullptr && (n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      contents.append(buf, n);
    }
    if (f != nullptr) {
      std::fclose(f);
    }
    return contents;
  };

  std::string baseline_bytes;
  for (const size_t num_threads : {size_t{0}, size_t{1}, size_t{2}, size_t{8}}) {
    const std::string path = ::testing::TempDir() + "/concurrency_spans_" +
                             std::to_string(num_threads) + ".jsonl";
    {
      obs::SpanLog span_log(path);
      ASSERT_TRUE(span_log.ok());
      StreamPlacements(profiles, catalog, kHosts, kPrefillPerHost, kStream,
                       num_threads, ScoreMode::kMarginal, /*registry=*/nullptr,
                       /*decision_log=*/nullptr, &span_log);
      // Two spans per PlaceScored call: sampled + scored.
      EXPECT_EQ(span_log.records_written(), 2 * kStream);
    }
    const std::string bytes = read_file(path);
    std::remove(path.c_str());
    ASSERT_FALSE(bytes.empty());
    if (num_threads == 0) {
      baseline_bytes = bytes;
      // Sanity: the stream starts with the schema header line.
      EXPECT_EQ(bytes.rfind(obs::SpanLog::RenderHeader() + "\n", 0), 0u);
    } else {
      ASSERT_EQ(bytes, baseline_bytes)
          << "span stream diverged with num_threads=" << num_threads;
    }
  }
}

// --- End-to-end simulator equivalence ----------------------------------------

SimResult RunOptum(const Workload& workload, const SimConfig& sim_config,
                   OptumProfiles profiles, size_t num_threads) {
  OptumConfig optum_config;
  optum_config.num_threads = num_threads;
  OptumScheduler optum(std::move(profiles), optum_config);
  SimConfig config = sim_config;
  // Online ERO observation churns EroTable::version mid-run, so the test
  // also covers cache invalidation while worker lanes are alive.
  config.on_tick_end = [&optum](const ClusterState& cluster, Tick now) {
    optum.ObserveColocation(cluster, now);
  };
  return Simulator(workload, config, optum).Run();
}

TEST(ThreadCountInvarianceTest, FullSimulationMatchesSerial) {
  const Workload workload = MakeWorkload(200, 2 * kTicksPerHour, 31);
  const SimConfig sim_config = MakeSimConfig();
  const OptumProfiles profiles = TrainProfiles(workload, sim_config);

  const SimResult serial = RunOptum(workload, sim_config, profiles, 0);
  EXPECT_GT(serial.scheduled_pods, 0);
  for (const size_t num_threads : {size_t{2}, size_t{8}}) {
    const SimResult threaded = RunOptum(workload, sim_config, profiles, num_threads);
    ASSERT_EQ(serial.trace.pods.size(), threaded.trace.pods.size());
    for (size_t i = 0; i < serial.trace.pods.size(); ++i) {
      ASSERT_EQ(serial.trace.pods[i].pod_id, threaded.trace.pods[i].pod_id);
      ASSERT_EQ(serial.trace.pods[i].original_machine_id,
                threaded.trace.pods[i].original_machine_id)
          << "placement diverged at decision " << i
          << " with num_threads=" << num_threads;
    }
    EXPECT_EQ(serial.scheduled_pods, threaded.scheduled_pods);
    EXPECT_EQ(serial.never_scheduled_pods, threaded.never_scheduled_pods);
    EXPECT_EQ(serial.oom_kills, threaded.oom_kills);
    EXPECT_EQ(serial.preemptions, threaded.preemptions);
    EXPECT_EQ(serial.violation_host_ticks, threaded.violation_host_ticks);
    EXPECT_EQ(serial.nonidle_host_ticks, threaded.nonidle_host_ticks);
    EXPECT_EQ(serial.MeanCpuUtilNonIdle(), threaded.MeanCpuUtilNonIdle());
    EXPECT_EQ(serial.MeanMemUtilNonIdle(), threaded.MeanMemUtilNonIdle());
  }
}

// --- ThreadPool lane contract -------------------------------------------------

TEST(ParallelForLaneTest, CoversEveryIndexOnceWithValidLanes) {
  ThreadPool pool(3);
  ASSERT_EQ(pool.num_lanes(), 4u);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  std::vector<std::atomic<int>> lane_hits(pool.num_lanes());
  pool.ParallelForLane(kN, [&](size_t lane, size_t i) {
    ASSERT_LT(lane, pool.num_lanes());
    visits[i].fetch_add(1);
    lane_hits[lane].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
  // Every claimed index was charged to some valid lane. (Lane 0 — the
  // calling thread — offers to work but may find the range already drained
  // by workers, so no single lane is guaranteed a nonzero share.)
  uint64_t total_hits = 0;
  for (size_t lane = 0; lane < pool.num_lanes(); ++lane) {
    total_hits += static_cast<uint64_t>(lane_hits[lane].load());
  }
  EXPECT_EQ(total_hits, kN);
}

TEST(ParallelForLaneTest, LaneLocalStateNeverShared) {
  // Each lane owns one slot; concurrent shard bodies may only ever touch
  // their own slot. A TSan run turns any violation into a hard error; the
  // unsynchronized counters below would also go inconsistent under races.
  ThreadPool pool(4);
  std::vector<uint64_t> per_lane_counts(pool.num_lanes(), 0);
  constexpr size_t kN = 50000;
  pool.ParallelForLane(kN, [&](size_t lane, size_t i) {
    (void)i;
    ++per_lane_counts[lane];  // no atomics: correctness relies on lane privacy
  });
  uint64_t total = 0;
  for (uint64_t c : per_lane_counts) {
    total += c;
  }
  EXPECT_EQ(total, kN);
}

TEST(ParallelForLaneTest, EmptyAndSmallRanges) {
  ThreadPool pool(2);
  pool.ParallelForLane(0, [&](size_t, size_t) { FAIL() << "n == 0 must not call fn"; });
  std::vector<std::atomic<int>> visits(2);
  pool.ParallelForLane(2, [&](size_t lane, size_t i) {
    ASSERT_LT(lane, 2u);  // shards = min(n, lanes) caps the lane ids
    visits[i].fetch_add(1);
  });
  EXPECT_EQ(visits[0].load(), 1);
  EXPECT_EQ(visits[1].load(), 1);
}

}  // namespace
}  // namespace optum
