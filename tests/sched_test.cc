// Tests for src/sched: shared helpers, the baseline schedulers, and Medea.
#include <gtest/gtest.h>

#include "src/sched/baselines.h"
#include "src/sched/common.h"
#include "src/sched/medea.h"
#include "src/sim/cluster.h"

namespace optum {
namespace {

TEST(ClassifyShortfallTest, AllCombinations) {
  EXPECT_EQ(ClassifyShortfall(true, true), WaitReason::kInsufficientCpuAndMem);
  EXPECT_EQ(ClassifyShortfall(true, false), WaitReason::kInsufficientCpu);
  EXPECT_EQ(ClassifyShortfall(false, true), WaitReason::kInsufficientMem);
  EXPECT_EQ(ClassifyShortfall(false, false), WaitReason::kOther);
}

TEST(AlignmentScoreTest, InnerProduct) {
  EXPECT_DOUBLE_EQ(AlignmentScore({0.5, 0.5}, {0.4, 0.2}), 0.3);
  EXPECT_DOUBLE_EQ(AlignmentScore(kZeroResources, {1, 1}), 0.0);
}

TEST(AlignmentRankTest, RankOfSelectedHost) {
  const Resources request{1.0, 0.0};
  const std::vector<Resources> loads = {{0.9, 0}, {0.5, 0}, {0.7, 0}};
  EXPECT_EQ(AlignmentRank(request, loads, 0), 1u);  // highest load
  EXPECT_EQ(AlignmentRank(request, loads, 2), 2u);
  EXPECT_EQ(AlignmentRank(request, loads, 1), 3u);
}

TEST(SampleHostsTest, FullFractionReturnsAll) {
  ClusterState cluster(10, kUnitResources, 8);
  Rng rng(1);
  const auto ids = SampleHosts(cluster, 1.0, 1, rng);
  EXPECT_EQ(ids.size(), 10u);
}

TEST(SampleHostsTest, FractionWithMinimum) {
  ClusterState cluster(100, kUnitResources, 8);
  Rng rng(1);
  const auto ids = SampleHosts(cluster, 0.05, 8, rng);
  EXPECT_EQ(ids.size(), 8u);  // max(5, 8)
  const auto ids2 = SampleHosts(cluster, 0.5, 8, rng);
  EXPECT_EQ(ids2.size(), 50u);
  // No duplicates.
  std::vector<bool> seen(100, false);
  for (HostId id : ids2) {
    EXPECT_FALSE(seen[static_cast<size_t>(id)]);
    seen[static_cast<size_t>(id)] = true;
  }
}

TEST(SampleHostsTest, MinCountAboveClusterIsClamped) {
  ClusterState cluster(4, kUnitResources, 8);
  Rng rng(1);
  EXPECT_EQ(SampleHosts(cluster, 0.1, 100, rng).size(), 4u);
}

// --- Fixture with a small cluster --------------------------------------------

class SchedulerFixture : public ::testing::Test {
 protected:
  SchedulerFixture() : cluster_(4, kUnitResources, 32) {
    ls_app_.id = 0;
    ls_app_.slo = SloClass::kLs;
    ls_app_.request = {0.2, 0.1};
    ls_app_.limit = {0.3, 0.15};
    be_app_.id = 1;
    be_app_.slo = SloClass::kBe;
    be_app_.request = {0.1, 0.05};
    be_app_.limit = {0.2, 0.06};
  }

  PodSpec LsPod(PodId id) const {
    PodSpec pod;
    pod.id = id;
    pod.app = ls_app_.id;
    pod.slo = SloClass::kLs;
    pod.request = ls_app_.request;
    pod.limit = ls_app_.limit;
    pod.long_running = true;
    return pod;
  }
  PodSpec BePod(PodId id) const {
    PodSpec pod;
    pod.id = id;
    pod.app = be_app_.id;
    pod.slo = SloClass::kBe;
    pod.request = be_app_.request;
    pod.limit = be_app_.limit;
    pod.behavior.work_ticks = 10;
    return pod;
  }

  ClusterState cluster_;
  AppProfile ls_app_;
  AppProfile be_app_;
};

TEST_F(SchedulerFixture, AlibabaPlacesLsByRequestsAlignment) {
  AlibabaBaseline sched;
  // Preload host 2 with one LS pod: highest request alignment.
  cluster_.Place(LsPod(100), &ls_app_, 2, 0);
  const PlacementDecision d = sched.Place(LsPod(1), ls_app_, cluster_);
  ASSERT_TRUE(d.placed());
  EXPECT_EQ(d.host, 2);
}

TEST_F(SchedulerFixture, AlibabaLsRequestCapEnforced) {
  AlibabaBaseline sched;
  // Fill every host to request capacity with LS pods.
  for (HostId h = 0; h < 4; ++h) {
    for (int i = 0; i < 5; ++i) {
      cluster_.Place(LsPod(100 + h * 10 + i), &ls_app_, h, 0);
    }
  }
  const PlacementDecision d = sched.Place(LsPod(1), ls_app_, cluster_);
  EXPECT_FALSE(d.placed());
  EXPECT_EQ(d.reason, WaitReason::kInsufficientCpu);
}

TEST_F(SchedulerFixture, AlibabaOvercommitsBeAgainstUsage) {
  AlibabaBaseline sched;
  // Hosts carry LS request mass 1.0 but near-zero usage: BE still fits.
  for (HostId h = 0; h < 4; ++h) {
    for (int i = 0; i < 5; ++i) {
      PodRuntime* pod = cluster_.Place(LsPod(100 + h * 10 + i), &ls_app_, h, 0);
      pod->cpu_usage = 0.01;
    }
    cluster_.mutable_host(h).usage = {0.05, 0.3};
  }
  const PlacementDecision d = sched.Place(BePod(1), be_app_, cluster_);
  EXPECT_TRUE(d.placed());
}

TEST_F(SchedulerFixture, AlibabaMemoryGuardBlocks) {
  BaselineOptions options;
  options.mem_guard = 0.5;
  AlibabaBaseline sched(options);
  // Memory requests at 0.45 per host: a 0.1-mem pod busts the 0.5 guard.
  PodSpec big = LsPod(1);
  big.request.mem = 0.45;
  for (HostId h = 0; h < 4; ++h) {
    cluster_.Place(big, &ls_app_, h, 0);
  }
  PodSpec pod = LsPod(2);
  pod.request.mem = 0.1;
  const PlacementDecision d = sched.Place(pod, ls_app_, cluster_);
  EXPECT_FALSE(d.placed());
  EXPECT_EQ(d.reason, WaitReason::kInsufficientMem);
}

TEST_F(SchedulerFixture, BorgLikeBestFitPicksTightestHost) {
  auto sched = MakeBorgLike();
  // Host 1 has more committed requests: best fit must choose it.
  cluster_.Place(LsPod(100), &ls_app_, 1, 0);
  cluster_.Place(LsPod(101), &ls_app_, 1, 0);
  cluster_.Place(LsPod(102), &ls_app_, 3, 0);
  const PlacementDecision d = sched->Place(LsPod(1), ls_app_, cluster_);
  ASSERT_TRUE(d.placed());
  EXPECT_EQ(d.host, 1);
}

TEST_F(SchedulerFixture, BorgLikeRejectsWhenPredictionExceedsCapacity) {
  auto sched = MakeBorgLike();
  // 0.9 * sum(requests) + request > 1.0 on every host.
  for (HostId h = 0; h < 4; ++h) {
    for (int i = 0; i < 5; ++i) {
      cluster_.Place(LsPod(100 + h * 10 + i), &ls_app_, h, 0);
    }
  }
  const PlacementDecision d = sched->Place(LsPod(1), ls_app_, cluster_);
  EXPECT_FALSE(d.placed());
}

TEST_F(SchedulerFixture, ResourceCentralRespectsOvercommitCap) {
  auto sched = MakeResourceCentralLike();
  // Host with tiny p99 usage but requests at 1.15: the 1.2 ratio cap blocks
  // a 0.2-request pod.
  for (int i = 0; i < 11; ++i) {
    PodRuntime* pod = cluster_.Place(BePod(200 + i), &be_app_, 0, 0);
    Rng rng(1);
    for (int s = 0; s < 50; ++s) {
      pod->RecordCpuSample(0.001, rng);
    }
  }
  // Other hosts are empty; the pod must not land on host 0 once above cap.
  PodSpec pod = LsPod(1);
  pod.request.cpu = 0.2;
  const PlacementDecision d = sched->Place(pod, ls_app_, cluster_);
  ASSERT_TRUE(d.placed());
  EXPECT_NE(d.host, 0);
}

TEST_F(SchedulerFixture, NSigmaUsesHistory) {
  auto sched = MakeNSigmaScheduler();
  // Host 0: volatile history -> high prediction; host 1: flat low usage.
  Host& h0 = cluster_.mutable_host(0);
  Host& h1 = cluster_.mutable_host(1);
  for (int i = 0; i < 100; ++i) {
    h0.PushHistory(i % 2 == 0 ? 0.1 : 0.9, 128);
    h1.PushHistory(0.3, 128);
  }
  // Occupy hosts 2,3 fully by requests so best-fit focuses on 0 vs 1.
  for (HostId h = 2; h < 4; ++h) {
    for (int i = 0; i < 5; ++i) {
      cluster_.Place(LsPod(100 + h * 10 + i), &ls_app_, h, 0);
    }
    cluster_.mutable_host(h).PushHistory(1.0, 128);
  }
  const PlacementDecision d = sched->Place(LsPod(1), ls_app_, cluster_);
  ASSERT_TRUE(d.placed());
  // h1 prediction = 0.3; h0 = 0.5 + 5*0.4 = 2.5 (infeasible): choose 1.
  EXPECT_EQ(d.host, 1);
}

TEST_F(SchedulerFixture, AffinityRespectedByBaselines) {
  AlibabaBaseline alibaba;
  PodSpec pod = LsPod(1);
  pod.max_pods_per_host = 1;
  // One replica already on every host.
  for (HostId h = 0; h < 4; ++h) {
    PodSpec existing = LsPod(100 + h);
    existing.max_pods_per_host = 1;
    cluster_.Place(existing, &ls_app_, h, 0);
  }
  const PlacementDecision d = alibaba.Place(pod, ls_app_, cluster_);
  EXPECT_FALSE(d.placed());
  EXPECT_EQ(d.reason, WaitReason::kOther);
}

// --- Medea -------------------------------------------------------------------

TEST_F(SchedulerFixture, MedeaShortRunningPlacesImmediately) {
  Medea medea;
  const PlacementDecision d = medea.Place(BePod(1), be_app_, cluster_);
  EXPECT_TRUE(d.placed());
}

TEST_F(SchedulerFixture, MedeaBatchesLongRunning) {
  MedeaOptions options;
  options.max_pods = 3;
  Medea medea(options);
  // First two long pods are batched (rejected with kOther).
  EXPECT_FALSE(medea.Place(LsPod(1), ls_app_, cluster_).placed());
  EXPECT_FALSE(medea.Place(LsPod(2), ls_app_, cluster_).placed());
  // Third fills the batch: the ILP solves and this pod places.
  const PlacementDecision d = medea.Place(LsPod(3), ls_app_, cluster_);
  EXPECT_TRUE(d.placed());
  // Earlier batch members get their solved hosts on retry.
  EXPECT_TRUE(medea.Place(LsPod(1), ls_app_, cluster_).placed());
  EXPECT_TRUE(medea.Place(LsPod(2), ls_app_, cluster_).placed());
}

TEST_F(SchedulerFixture, MedeaSolvesAgedBatch) {
  Medea medea;  // max_batch_delay = 1 tick
  cluster_.set_now(10);
  EXPECT_FALSE(medea.Place(LsPod(1), ls_app_, cluster_).placed());
  cluster_.set_now(11);
  // One tick later the batch is aged: solve now.
  EXPECT_TRUE(medea.Place(LsPod(1), ls_app_, cluster_).placed());
}

TEST_F(SchedulerFixture, MedeaIlpRespectsCapacity) {
  MedeaOptions options;
  options.max_pods = 2;
  Medea medea(options);
  // Fill hosts 1-3 completely; host 0 has room for two more pods with
  // slack (2 x 0.2 committed, 2 x 0.2 incoming, capacity 1.0).
  for (HostId h = 1; h < 4; ++h) {
    for (int i = 0; i < 5; ++i) {
      cluster_.Place(LsPod(100 + h * 10 + i), &ls_app_, h, 0);
    }
  }
  for (int i = 0; i < 2; ++i) {
    cluster_.Place(LsPod(200 + i), &ls_app_, 0, 0);
  }
  EXPECT_FALSE(medea.Place(LsPod(1), ls_app_, cluster_).placed());
  const PlacementDecision d2 = medea.Place(LsPod(2), ls_app_, cluster_);
  ASSERT_TRUE(d2.placed());
  EXPECT_EQ(d2.host, 0);
}

TEST(WaitReasonTest, ToStringAll) {
  EXPECT_STREQ(ToString(WaitReason::kNone), "None");
  EXPECT_STREQ(ToString(WaitReason::kInsufficientCpu), "CPU");
  EXPECT_STREQ(ToString(WaitReason::kInsufficientMem), "Mem");
  EXPECT_STREQ(ToString(WaitReason::kInsufficientCpuAndMem), "CPU&Mem");
  EXPECT_STREQ(ToString(WaitReason::kOther), "Other");
}

}  // namespace
}  // namespace optum
