// Robustness ablation: does the headline result (Optum's utilization gain
// at zero violations, paper Fig. 19) survive perturbations of the workload
// calibration? Runs the reference scheduler and Optum across the named
// scenarios of src/trace/scenarios.h.
#include "bench/bench_common.h"
#include "src/trace/scenarios.h"

using namespace optum;

int main() {
  bench::PrintFigureHeader("Ablation", "Workload-calibration robustness (Fig. 19 claim)");

  TablePrinter table({"scenario", "ref util", "optum util", "improve(%)",
                      "ref viol", "optum viol", "ref pending", "optum pending"});

  for (const Scenario scenario : AllScenarios()) {
    const WorkloadConfig config =
        MakeScenarioConfig(scenario, /*num_hosts=*/64, /*horizon=*/8 * kTicksPerHour);
    const Workload workload = WorkloadGenerator(config).Generate();
    const SimConfig sim_config = bench::DefaultSimConfig();

    AlibabaBaseline reference = bench::MakeReferenceScheduler();
    const SimResult ref_result = Simulator(workload, sim_config, reference).Run();

    core::OptumProfiles profiles = bench::BuildProfiles(ref_result.trace, 800);
    core::OptumScheduler optum(std::move(profiles));
    SimConfig optum_config = sim_config;
    optum_config.on_tick_end = [&optum](const ClusterState& cluster, Tick now) {
      optum.ObserveColocation(cluster, now);
    };
    const SimResult optum_result = Simulator(workload, optum_config, optum).Run();

    const double ref_util = ref_result.MeanCpuUtilNonIdle();
    const double optum_util = optum_result.MeanCpuUtilNonIdle();
    table.AddRow({ToString(scenario), FormatDouble(ref_util, 4),
                  FormatDouble(optum_util, 4),
                  FormatDouble((optum_util / std::max(1e-9, ref_util) - 1.0) * 100.0, 3),
                  FormatDouble(ref_result.violation_rate(), 3),
                  FormatDouble(optum_result.violation_rate(), 3),
                  FormatDouble(ref_result.never_scheduled_pods, 9),
                  FormatDouble(optum_result.never_scheduled_pods, 9)});
  }
  table.Print();
  std::printf(
      "\nReading guide: the gain is largest under LS-heavy request pressure\n"
      "(the reference cannot over-commit LS at all) and persists in every\n"
      "scenario except be-saturated, where an unbounded batch backlog rewards\n"
      "the reference's usage-based BE packing over Optum's peak-bounded POC —\n"
      "the safety/throughput trade Fig. 11 prices. Optum's violation rate\n"
      "stays at or below the reference's everywhere.\n");
  return 0;
}
