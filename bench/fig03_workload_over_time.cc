// Reproduces paper Fig. 3: (a) numbers of submitted pods over time (BE much
// larger and bursty, LS near-constant) and (b) the periodic average QPS of
// LS pods.
#include <map>

#include "bench/bench_common.h"
#include "src/stats/descriptive.h"

using namespace optum;

int main() {
  bench::PrintFigureHeader("Fig. 3", "Workloads over time");

  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(64, 2 * kTicksPerDay)).Generate();

  // (a) submissions per 10-minute interval.
  const Tick bin = 20;  // 10 minutes
  const size_t num_bins = static_cast<size_t>(workload.config.horizon / bin);
  std::vector<double> be(num_bins, 0.0), ls(num_bins, 0.0);
  for (const PodSpec& pod : workload.pods) {
    if (pod.submit_tick == 0) {
      continue;  // initial fleet, not part of the arrival process
    }
    const size_t b = static_cast<size_t>(pod.submit_tick / bin);
    if (pod.slo == SloClass::kBe) {
      ++be[b];
    } else if (IsLatencySensitive(pod.slo)) {
      ++ls[b];
    }
  }

  std::printf("(a) Submitted pods per 10-minute interval (2 simulated days)\n");
  TablePrinter submissions({"class", "mean", "p50", "p95", "max", "CoV"});
  for (const auto& [label, series] : {std::pair<const char*, std::vector<double>&>{
                                          "BE", be},
                                      {"LS+LSR", ls}}) {
    submissions.AddRow({std::string(label), FormatDouble(Mean(series), 4),
                        FormatDouble(Percentile(series, 50), 4),
                        FormatDouble(Percentile(series, 95), 4),
                        FormatDouble(Max(series), 4),
                        FormatDouble(CoefficientOfVariation(series), 3)});
  }
  submissions.Print();
  std::printf("Shape check: BE mean >> LS mean; BE bursty (heavy tail), LS steady.\n\n");

  // (b) average QPS of LS pods per hour, from the application QPS model.
  std::printf("(b) Average QPS across LS applications, hourly (day 1)\n");
  TablePrinter qps({"hour", "avg QPS"});
  double qps_min = 1e18, qps_max = 0.0;
  for (int hour = 0; hour < 24; ++hour) {
    const Tick t = hour * kTicksPerHour;
    double acc = 0.0;
    int n = 0;
    for (const AppProfile& app : workload.apps) {
      if (IsLatencySensitive(app.slo) && app.qps_base > 0) {
        acc += app.qps_base * app.qps_pattern.At(t);
        ++n;
      }
    }
    const double avg = acc / n;
    qps_min = std::min(qps_min, avg);
    qps_max = std::max(qps_max, avg);
    qps.AddRow({FormatDouble(hour, 3), FormatDouble(avg, 5)});
  }
  qps.Print();
  std::printf("Diurnal peak/trough ratio: %.2f (paper Fig. 3b: ~2-3x swing)\n",
              qps_max / qps_min);
  return 0;
}
