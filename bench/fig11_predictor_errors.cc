// Reproduces paper Fig. 11: CPU usage prediction errors of the five
// predictors — Borg Default, Resource Central, N-sigma, Max Predictor, and
// the Optum (pairwise-ERO) predictor — against the realized peak usage.
// Expected shape: Borg Default and Max Predictor over-estimate severely;
// N-sigma under-estimates; Resource Central and Optum are both accurate on
// average but Optum has smaller error tails on both sides.
#include <memory>

#include "bench/bench_common.h"
#include "src/core/resource_usage_predictor.h"
#include "src/predict/predictor_eval.h"
#include "src/predict/usage_predictor.h"

using namespace optum;

int main() {
  bench::PrintFigureHeader("Fig. 11", "CPU usage prediction error by predictor");

  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(64, 2 * kTicksPerDay)).Generate();

  // Pass 1: profiling run (builds the ERO table and memory profiles from
  // trace records, as the Offline Profiler does in production).
  SimConfig sim_config = bench::DefaultSimConfig();
  core::OptumProfiles profiles;
  {
    AlibabaBaseline scheduler = bench::MakeReferenceScheduler();
    const SimResult result = Simulator(workload, sim_config, scheduler).Run();
    core::OfflineProfilerConfig prof_config;
    prof_config.max_train_samples = 500;
    prof_config.evaluate_holdout = false;  // only ERO/memory needed here
    profiles = core::OfflineProfiler(prof_config).BuildProfiles(result.trace);
  }

  // Pass 2: identical (deterministic) run; snapshot predictions hourly and
  // record the dense usage series for the peak oracle.
  std::vector<std::unique_ptr<UsagePredictor>> predictors;
  predictors.push_back(std::make_unique<BorgDefaultPredictor>(0.9));
  predictors.push_back(std::make_unique<ResourceCentralPredictor>(99.0));
  predictors.push_back(std::make_unique<NSigmaPredictor>(5.0));
  predictors.push_back(std::make_unique<MaxPredictor>());
  predictors.push_back(std::make_unique<core::OptumUsagePredictorAdapter>(&profiles));

  std::vector<std::vector<PredictionSample>> samples(predictors.size());
  std::vector<std::vector<double>> usage_series(64);

  SimConfig eval_config = sim_config;
  eval_config.on_tick_end = [&](const ClusterState& cluster, Tick now) {
    for (const Host& host : cluster.hosts()) {
      usage_series[static_cast<size_t>(host.id)].push_back(host.usage.cpu);
    }
    // Hourly snapshots after a warmup day (N-sigma needs history).
    if (now < kTicksPerDay || now % kTicksPerHour != 0) {
      return;
    }
    for (const Host& host : cluster.hosts()) {
      if (host.IsIdle()) {
        continue;
      }
      for (size_t p = 0; p < predictors.size(); ++p) {
        samples[p].push_back(
            PredictionSample{host.id, now, predictors[p]->PredictHostCpu(host)});
      }
    }
  };
  AlibabaBaseline scheduler = bench::MakeReferenceScheduler();
  Simulator(workload, eval_config, scheduler).Run();

  const PeakOracle oracle(std::move(usage_series), /*period=*/1);
  const Tick window = kTicksPerDay;  // predicted peak over the next day (§3.2.2)

  const std::vector<double> over_quantiles = {50, 75, 90, 99};
  const std::vector<double> under_quantiles = {1, 10, 25, 50};
  std::printf("(a) Over-estimation error (%%), P(over), and tails\n");
  TablePrinter over_table({"predictor", "P(over)", "median", "p90", "max over"});
  std::printf("(collected %zu prediction samples per predictor)\n", samples[0].size());
  std::vector<PredictorErrorSummary> summaries;
  for (size_t p = 0; p < predictors.size(); ++p) {
    summaries.push_back(
        ScorePredictions(predictors[p]->name(), samples[p], oracle, window));
  }
  for (const auto& s : summaries) {
    const double total = static_cast<double>(s.over_errors.size() + s.under_errors.size());
    over_table.AddRow(
        {s.predictor, FormatDouble(s.over_errors.size() / std::max(1.0, total), 3),
         s.over_errors.empty() ? "-" : FormatDouble(s.over_errors.ValueAtPercentile(50), 4),
         s.over_errors.empty() ? "-" : FormatDouble(s.over_errors.ValueAtPercentile(90), 4),
         FormatDouble(s.max_over, 4)});
  }
  over_table.Print();

  std::printf("\n(b) Under-estimation error (%%) and tails\n");
  TablePrinter under_table(
      {"predictor", "P(under)", "median", "p10 (deep)", "max under", "P(under<-10%)"});
  for (const auto& s : summaries) {
    const double total = static_cast<double>(s.over_errors.size() + s.under_errors.size());
    under_table.AddRow(
        {s.predictor, FormatDouble(s.under_errors.size() / std::max(1.0, total), 3),
         s.under_errors.empty() ? "-"
                                : FormatDouble(s.under_errors.ValueAtPercentile(50), 4),
         s.under_errors.empty() ? "-"
                                : FormatDouble(s.under_errors.ValueAtPercentile(10), 4),
         FormatDouble(s.max_under, 4), FormatDouble(s.frac_under_below_minus_10, 4)});
  }
  under_table.Print();

  std::printf(
      "\nShape checks vs the paper:\n"
      " * Borg Default: severe over-estimation (paper: >=50%% with prob 0.5).\n"
      " * Max Predictor: the highest over-estimation of all predictors.\n"
      " * N-sigma: carries an under-estimation tail (paper: up to ~-25%%).\n"
      " * Optum vs Resource Central: both accurate on average; Optum's\n"
      "   dangerous side is markedly safer — smaller max under-estimation and\n"
      "   a lower P(under < -10%%) (paper: 3x lower; see EXPERIMENTS.md for\n"
      "   the over-estimation-tail deviation).\n");
  return 0;
}
