// Reproduces paper Fig. 19: (a) the improvement of resource utilization of
// each scheduler over the original (Alibaba-like) unified scheduler, and
// (b) the resource usage violation rate. Expected shape: Optum improves the
// most (paper: up to ~15%) with a violation rate at or below everyone
// else's; the other baselines land in the ~±5% band; all violation rates
// stay below 0.01.
#include <memory>

#include "bench/bench_common.h"
#include "src/sched/medea.h"

using namespace optum;

int main() {
  bench::PrintFigureHeader("Fig. 19", "Utilization improvement and violation rate");

  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(96, 8 * kTicksPerHour)).Generate();
  const SimConfig sim_config = bench::DefaultSimConfig();

  // Reference run + profiling for Optum.
  AlibabaBaseline reference = bench::MakeReferenceScheduler();
  const SimResult ref_result = Simulator(workload, sim_config, reference).Run();
  core::OptumProfiles profiles = bench::BuildProfiles(ref_result.trace);

  struct Row {
    std::string name;
    SimResult result;
  };
  std::vector<Row> rows;
  {
    auto p = MakeBorgLike();
    rows.push_back({p->name(), Simulator(workload, sim_config, *p).Run()});
  }
  {
    auto p = MakeNSigmaScheduler();
    rows.push_back({p->name(), Simulator(workload, sim_config, *p).Run()});
  }
  {
    auto p = MakeResourceCentralLike();
    rows.push_back({p->name(), Simulator(workload, sim_config, *p).Run()});
  }
  {
    Medea medea;
    rows.push_back({medea.name(), Simulator(workload, sim_config, medea).Run()});
  }
  core::OptumScheduler optum(std::move(profiles));
  SimConfig optum_config = sim_config;
  optum_config.on_tick_end = [&optum](const ClusterState& cluster, Tick now) {
    optum.ObserveColocation(cluster, now);
  };
  rows.push_back({optum.name(), Simulator(workload, optum_config, optum).Run()});

  const double ref_util = ref_result.MeanCpuUtilNonIdle();
  std::printf("(a) Average CPU utilization and improvement over the reference\n");
  TablePrinter util_table(
      {"scheduler", "avg CPU util", "improvement (%)", "scheduled", "pending@end"});
  util_table.AddRow({std::string("Alibaba (ref)"), FormatDouble(ref_util, 4),
                     std::string("+0.0"), FormatDouble(ref_result.scheduled_pods, 9),
                     FormatDouble(ref_result.never_scheduled_pods, 9)});
  for (const Row& row : rows) {
    const double util = row.result.MeanCpuUtilNonIdle();
    util_table.AddRow({row.name, FormatDouble(util, 4),
                       FormatDouble((util / ref_util - 1.0) * 100.0, 3),
                       FormatDouble(row.result.scheduled_pods, 9),
                       FormatDouble(row.result.never_scheduled_pods, 9)});
  }
  util_table.Print();

  // Improvement over time (Optum vs reference), hourly.
  std::printf("\nOptum utilization improvement over time (stabilizes, paper: up to 15%%)\n");
  TablePrinter series({"hour", "improvement (%)"});
  const auto& optum_series = rows.back().result.util_series;
  const auto& ref_series = ref_result.util_series;
  const size_t n = std::min(optum_series.size(), ref_series.size());
  const size_t per_hour = static_cast<size_t>(kTicksPerHour / sim_config.node_usage_period);
  for (size_t start = 0; start + per_hour <= n; start += 2 * per_hour) {
    double optum_acc = 0, ref_acc = 0;
    for (size_t i = start; i < start + per_hour; ++i) {
      optum_acc += optum_series[i].avg_cpu_nonidle;
      ref_acc += ref_series[i].avg_cpu_nonidle;
    }
    series.AddRow({FormatDouble(start / per_hour, 3),
                   FormatDouble((optum_acc / std::max(1e-9, ref_acc) - 1.0) * 100.0, 3)});
  }
  series.Print();

  std::printf("\n(b) Resource usage violation rate (host CPU demand above capacity)\n");
  TablePrinter violation_table({"scheduler", "violation rate", "OOM kills"});
  violation_table.AddRow({std::string("Alibaba (ref)"),
                          FormatDouble(ref_result.violation_rate(), 4),
                          FormatDouble(ref_result.oom_kills, 9)});
  for (const Row& row : rows) {
    violation_table.AddRow({row.name, FormatDouble(row.result.violation_rate(), 4),
                            FormatDouble(row.result.oom_kills, 9)});
  }
  violation_table.Print();
  std::printf("Shape check: all rates below 0.01 (paper Fig. 19b); Optum among the\n"
              "lowest while achieving the highest utilization.\n");
  return 0;
}
