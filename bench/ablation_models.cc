// Extension study: would a different model family beat the paper's Random
// Forest choice for the Interference Profiler? Compares RF against
// gradient-boosted trees (not in the paper's zoo) and the strongest
// Fig. 18 runners-up on the same per-application profiling datasets, on
// accuracy AND on the costs that matter to a scheduler (training time,
// prediction latency).
#include <chrono>

#include "bench/bench_common.h"
#include "src/ml/gradient_boosting.h"
#include "src/ml/metrics.h"
#include "src/ml/mlp.h"
#include "src/ml/random_forest.h"

using namespace optum;

namespace {

struct ModelScore {
  std::string name;
  EmpiricalCdf mape;
  double train_ms = 0.0;
  double predict_ns = 0.0;
  int64_t predictions = 0;
};

}  // namespace

int main() {
  bench::PrintFigureHeader("Extension", "Interference-model families beyond Fig. 18");

  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(64, kTicksPerDay / 2)).Generate();
  AlibabaBaseline scheduler = bench::MakeReferenceScheduler();
  SimConfig sim_config = bench::DefaultSimConfig();
  sim_config.pod_usage_period = 4;
  sim_config.node_usage_period = 4;
  const SimResult result = Simulator(workload, sim_config, scheduler).Run();
  core::AppDatasets datasets = core::OfflineProfiler().ExtractDatasets(result.trace);

  auto make_model = [](const std::string& which,
                       uint64_t seed) -> std::unique_ptr<ml::Regressor> {
    if (which == "RF") {
      return std::make_unique<ml::RandomForestRegressor>(ml::ForestParams{}, seed);
    }
    if (which == "GBT") {
      return std::make_unique<ml::GradientBoostingRegressor>(ml::BoostingParams{}, seed);
    }
    return std::make_unique<ml::MlpRegressor>(ml::MlpParams{}, seed);
  };

  std::vector<ModelScore> scores;
  for (const std::string which : {"RF", "GBT", "MLP"}) {
    ModelScore score;
    score.name = which;
    const ml::Discretizer discretizer(0.0, 1.0, 25);
    for (const auto& [app_id, data] : datasets.ls) {
      if (data.size() < 80) {
        continue;
      }
      // Subsample large datasets for a fair, bounded comparison.
      Rng rng(static_cast<uint64_t>(app_id) * 17 + 3);
      ml::Dataset working(data.num_features(), data.feature_names());
      const double keep = std::min(1.0, 800.0 / static_cast<double>(data.size()));
      for (size_t i = 0; i < data.size(); ++i) {
        if (rng.Bernoulli(keep)) {
          working.Add(data.Features(i), discretizer.ToUpperBound(data.Target(i)));
        }
      }
      const auto split = working.TrainTestSplit(0.25, rng);
      if (split.train.empty() || split.test.empty()) {
        continue;
      }
      auto model = make_model(which, rng.NextU64());
      const auto train_start = std::chrono::steady_clock::now();
      model->Fit(split.train);
      score.train_ms += std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - train_start)
                            .count();
      // Batched inference path (PredictAll → PredictBatch): RF rows go
      // through the compiled engine here, so the ns/sample column reflects
      // what the scheduler hot path actually pays per model family.
      const auto predict_start = std::chrono::steady_clock::now();
      std::vector<double> pred = ml::PredictAll(*model, split.test);
      score.predict_ns += std::chrono::duration<double, std::nano>(
                              std::chrono::steady_clock::now() - predict_start)
                              .count();
      for (double& p : pred) {
        p = discretizer.ToUpperBound(p);
      }
      score.predictions += static_cast<int64_t>(split.test.size());
      score.mape.Add(ml::Mape(split.test.targets(), pred, 0.1));
    }
    score.mape.Finalize();
    scores.push_back(std::move(score));
  }

  TablePrinter table({"model", "apps", "median MAPE", "p90 MAPE", "P(MAPE<0.1)",
                      "train ms (total)", "predict ns/sample"});
  for (const ModelScore& s : scores) {
    table.AddRow({s.name, FormatDouble(s.mape.size(), 4),
                  s.mape.empty() ? "-" : FormatDouble(s.mape.ValueAtPercentile(50), 3),
                  s.mape.empty() ? "-" : FormatDouble(s.mape.ValueAtPercentile(90), 3),
                  s.mape.empty() ? "-" : FormatDouble(s.mape.FractionAtOrBelow(0.1), 3),
                  FormatDouble(s.train_ms, 4),
                  FormatDouble(s.predict_ns / std::max<int64_t>(1, s.predictions), 4)});
  }
  table.Print();
  std::printf(
      "\nReading guide: the paper picked RF for accuracy; this study adds the\n"
      "training/prediction cost axis that a production profiler also cares\n"
      "about. GBT typically matches RF accuracy with cheaper prediction\n"
      "(shallower trees) but costlier sequential training.\n");
  return 0;
}
