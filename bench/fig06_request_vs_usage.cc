// Reproduces paper Fig. 6: the distribution of resource requests and actual
// usage across all pods, by class. Expected: usage far below request for
// CPU (BE ~3x gap, LS ~5x gap); BE memory nearly fully used, LS memory
// under-utilized.
#include <unordered_map>

#include "bench/bench_common.h"
#include "src/stats/descriptive.h"

using namespace optum;

int main() {
  bench::PrintFigureHeader("Fig. 6", "Resource requests vs actual usage across pods");

  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(64, kTicksPerDay)).Generate();
  AlibabaBaseline scheduler = bench::MakeReferenceScheduler();
  const SimResult result =
      Simulator(workload, bench::DefaultSimConfig(), scheduler).Run();

  std::vector<SloClass> slo_of(workload.pods.size());
  std::vector<Resources> request_of(workload.pods.size());
  for (const PodSpec& pod : workload.pods) {
    slo_of[static_cast<size_t>(pod.id)] = pod.slo;
    request_of[static_cast<size_t>(pod.id)] = pod.request;
  }

  // Mean usage per pod from the OS-level records.
  struct Acc {
    double cpu = 0, mem = 0;
    int n = 0;
  };
  std::unordered_map<PodId, Acc> usage;
  for (const auto& rec : result.trace.pod_usage) {
    Acc& a = usage[rec.pod_id];
    a.cpu += rec.cpu_usage;
    a.mem += rec.mem_usage;
    ++a.n;
  }

  EmpiricalCdf be_req_cpu, be_used_cpu, ls_req_cpu, ls_used_cpu;
  EmpiricalCdf be_req_mem, be_used_mem, ls_req_mem, ls_used_mem;
  for (const auto& [pod_id, acc] : usage) {
    if (acc.n == 0) {
      continue;
    }
    const size_t id = static_cast<size_t>(pod_id);
    const double cpu = acc.cpu / acc.n;
    const double mem = acc.mem / acc.n;
    if (slo_of[id] == SloClass::kBe) {
      be_req_cpu.Add(request_of[id].cpu);
      be_used_cpu.Add(cpu);
      be_req_mem.Add(request_of[id].mem);
      be_used_mem.Add(mem);
    } else if (IsLatencySensitive(slo_of[id])) {
      ls_req_cpu.Add(request_of[id].cpu);
      ls_used_cpu.Add(cpu);
      ls_req_mem.Add(request_of[id].mem);
      ls_used_mem.Add(mem);
    }
  }
  for (EmpiricalCdf* cdf : {&be_req_cpu, &be_used_cpu, &ls_req_cpu, &ls_used_cpu,
                            &be_req_mem, &be_used_mem, &ls_req_mem, &ls_used_mem}) {
    cdf->Finalize();
  }

  const std::vector<double> quantiles = {25, 50, 75, 90, 99};
  std::printf("(a) Normalized CPU cores\n");
  TablePrinter cpu_table(bench::QuantileHeaders("series", quantiles));
  bench::PrintCdfRow(cpu_table, "BE Req", be_req_cpu, quantiles);
  bench::PrintCdfRow(cpu_table, "BE Used", be_used_cpu, quantiles);
  bench::PrintCdfRow(cpu_table, "LS Req", ls_req_cpu, quantiles);
  bench::PrintCdfRow(cpu_table, "LS Used", ls_used_cpu, quantiles);
  cpu_table.Print();
  std::printf("Median request/usage gap: BE %.1fx (paper ~3x), LS %.1fx (paper ~5x)\n\n",
              be_req_cpu.ValueAtPercentile(50) / be_used_cpu.ValueAtPercentile(50),
              ls_req_cpu.ValueAtPercentile(50) / ls_used_cpu.ValueAtPercentile(50));

  std::printf("(b) Normalized memory\n");
  TablePrinter mem_table(bench::QuantileHeaders("series", quantiles));
  bench::PrintCdfRow(mem_table, "BE Req", be_req_mem, quantiles);
  bench::PrintCdfRow(mem_table, "BE Used", be_used_mem, quantiles);
  bench::PrintCdfRow(mem_table, "LS Req", ls_req_mem, quantiles);
  bench::PrintCdfRow(mem_table, "LS Used", ls_used_mem, quantiles);
  mem_table.Print();
  std::printf("Median memory utilization: BE %.0f%% (paper: nearly full), LS %.0f%% "
              "(paper: under-utilized)\n",
              100 * be_used_mem.ValueAtPercentile(50) / be_req_mem.ValueAtPercentile(50),
              100 * ls_used_mem.ValueAtPercentile(50) / ls_req_mem.ValueAtPercentile(50));
  return 0;
}
