// Reproduces paper Fig. 10: the rank (by multi-resource alignment score) of
// the host the scheduler actually selected, under two over-commitment
// lenses — (a) scoring hosts by actual usage, (b) scoring hosts by resource
// requests. Expected: BE placements rank high under the usage lens and low
// under the request lens; LS placements show the opposite, revealing that
// the production scheduler over-commits BE on usage but LS on requests.
#include "bench/bench_common.h"
#include "src/sched/common.h"

using namespace optum;

namespace {

// Decorator that records the alignment rank of every accepted placement.
class RankProbe : public PlacementPolicy {
 public:
  explicit RankProbe(PlacementPolicy& inner) : inner_(inner) {}

  PlacementDecision Place(const PodSpec& pod, const AppProfile& app,
                          const ClusterState& cluster) override {
    const PlacementDecision d = inner_.Place(pod, app, cluster);
    if (d.placed() && (pod.slo == SloClass::kBe || IsLatencySensitive(pod.slo))) {
      std::vector<Resources> usage_loads, request_loads;
      usage_loads.reserve(cluster.num_hosts());
      request_loads.reserve(cluster.num_hosts());
      for (const Host& h : cluster.hosts()) {
        usage_loads.push_back(h.usage);
        request_loads.push_back(h.request_sum);
      }
      const double n = static_cast<double>(cluster.num_hosts());
      const double usage_rank =
          static_cast<double>(AlignmentRank(pod.request, usage_loads, d.host)) / n;
      const double request_rank =
          static_cast<double>(AlignmentRank(pod.request, request_loads, d.host)) / n;
      if (pod.slo == SloClass::kBe) {
        be_usage_rank.Add(usage_rank);
        be_request_rank.Add(request_rank);
      } else {
        ls_usage_rank.Add(usage_rank);
        ls_request_rank.Add(request_rank);
      }
    }
    return d;
  }
  std::string name() const override { return inner_.name(); }

  EmpiricalCdf be_usage_rank, be_request_rank, ls_usage_rank, ls_request_rank;

 private:
  PlacementPolicy& inner_;
};

}  // namespace

int main() {
  bench::PrintFigureHeader("Fig. 10", "Rank of selected hosts by alignment score");

  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(64, kTicksPerDay)).Generate();
  AlibabaBaseline inner = bench::MakeReferenceScheduler();
  RankProbe probe(inner);
  Simulator(workload, bench::DefaultSimConfig(), probe).Run();
  probe.be_usage_rank.Finalize();
  probe.be_request_rank.Finalize();
  probe.ls_usage_rank.Finalize();
  probe.ls_request_rank.Finalize();

  auto top_quarter = [](const EmpiricalCdf& cdf) {
    return cdf.empty() ? 0.0 : cdf.FractionAtOrBelow(0.25);
  };

  const std::vector<double> quantiles = {25, 50, 75, 90};
  std::printf("(a) Rank by actual resource usage (normalized rank, lower = better)\n");
  TablePrinter usage_table(bench::QuantileHeaders("class", quantiles));
  bench::PrintCdfRow(usage_table, "BE", probe.be_usage_rank, quantiles, 3);
  bench::PrintCdfRow(usage_table, "LS", probe.ls_usage_rank, quantiles, 3);
  usage_table.Print();
  std::printf("Fraction of placements in the top 1/4: BE %.2f (paper: >0.60), LS %.2f\n\n",
              top_quarter(probe.be_usage_rank), top_quarter(probe.ls_usage_rank));

  std::printf("(b) Rank by resource requests\n");
  TablePrinter request_table(bench::QuantileHeaders("class", quantiles));
  bench::PrintCdfRow(request_table, "BE", probe.be_request_rank, quantiles, 3);
  bench::PrintCdfRow(request_table, "LS", probe.ls_request_rank, quantiles, 3);
  request_table.Print();
  std::printf("Fraction of placements in the top 1/4: BE %.2f (paper: ~0.20), LS %.2f\n",
              top_quarter(probe.be_request_rank), top_quarter(probe.ls_request_rank));
  std::printf("Shape check: BE ranks high under the usage lens, LS under the request\n"
              "lens — the production policy over-commits BE but hardly LS.\n");
  return 0;
}
