// Reproduces paper Fig. 12: the distribution of the coefficient of
// variation (CoV) of pod behaviour within each application. Expected: for
// LS apps, CPU/memory usage and QPS are consistent (CoV < 1 for >90% of
// apps; QPS CoV < 0.1) while RT is inconsistent (only ~40% below 1); for BE
// apps, completion time and memory are consistent while CPU varies more.
#include <unordered_map>

#include "bench/bench_common.h"
#include "src/stats/descriptive.h"

using namespace optum;

int main() {
  bench::PrintFigureHeader("Fig. 12", "CoV of pod behaviour within applications");

  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(64, kTicksPerDay)).Generate();
  AlibabaBaseline scheduler = bench::MakeReferenceScheduler();
  SimConfig sim_config = bench::DefaultSimConfig();
  sim_config.pod_usage_period = 4;
  const SimResult result = Simulator(workload, sim_config, scheduler).Run();

  std::vector<AppId> app_of(workload.pods.size());
  std::vector<SloClass> slo_of(workload.pods.size());
  std::vector<double> mem_request(workload.pods.size(), 1.0);
  for (const PodSpec& pod : workload.pods) {
    app_of[static_cast<size_t>(pod.id)] = pod.app;
    slo_of[static_cast<size_t>(pod.id)] = pod.slo;
    mem_request[static_cast<size_t>(pod.id)] = pod.request.mem;
  }

  // Per-pod lifetime averages.
  struct PodAcc {
    double cpu = 0, mem_util = 0, rt = 0, qps = 0;
    int n = 0, rt_n = 0;
  };
  std::unordered_map<PodId, PodAcc> pods;
  for (const auto& rec : result.trace.pod_usage) {
    PodAcc& acc = pods[rec.pod_id];
    acc.cpu += rec.cpu_usage;
    acc.mem_util += rec.mem_usage / mem_request[static_cast<size_t>(rec.pod_id)];
    ++acc.n;
    if (rec.response_time > 0) {
      acc.rt += rec.response_time;
      acc.qps += rec.qps;
      ++acc.rt_n;
    }
  }

  // Group per app.
  struct AppSeries {
    std::vector<double> cpu, mem, rt, qps, ct;
  };
  std::unordered_map<AppId, AppSeries> apps;
  for (const auto& [pod_id, acc] : pods) {
    if (acc.n == 0) {
      continue;
    }
    AppSeries& s = apps[app_of[static_cast<size_t>(pod_id)]];
    s.cpu.push_back(acc.cpu / acc.n);
    s.mem.push_back(acc.mem_util / acc.n);
    if (acc.rt_n > 0) {
      s.rt.push_back(acc.rt / acc.rt_n);
      s.qps.push_back(acc.qps / acc.rt_n);
    }
  }
  for (const auto& rec : result.trace.lifecycles) {
    if (rec.slo == SloClass::kBe && rec.finish_tick >= 0) {
      apps[rec.app_id].ct.push_back(rec.actual_completion_ticks);
    }
  }

  // CoV per app per metric.
  EmpiricalCdf ls_cpu, ls_mem, ls_rt, ls_qps, be_cpu, be_mem, be_ct;
  for (const auto& [app_id, s] : apps) {
    const SloClass slo = workload.apps[static_cast<size_t>(app_id)].slo;
    if (IsLatencySensitive(slo) && s.cpu.size() >= 5) {
      ls_cpu.Add(CoefficientOfVariation(s.cpu));
      ls_mem.Add(CoefficientOfVariation(s.mem));
      if (s.rt.size() >= 5) {
        ls_rt.Add(CoefficientOfVariation(s.rt));
        ls_qps.Add(CoefficientOfVariation(s.qps));
      }
    } else if (slo == SloClass::kBe && s.cpu.size() >= 5) {
      be_cpu.Add(CoefficientOfVariation(s.cpu));
      be_mem.Add(CoefficientOfVariation(s.mem));
      if (s.ct.size() >= 5) {
        be_ct.Add(CoefficientOfVariation(s.ct));
      }
    }
  }
  for (EmpiricalCdf* cdf : {&ls_cpu, &ls_mem, &ls_rt, &ls_qps, &be_cpu, &be_mem, &be_ct}) {
    cdf->Finalize();
  }

  auto frac_below = [](const EmpiricalCdf& cdf, double x) {
    return cdf.empty() ? 0.0 : cdf.FractionAtOrBelow(x);
  };
  const std::vector<double> quantiles = {25, 50, 75, 90};

  std::printf("(a) Latency-sensitive applications (CoV across pods)\n");
  TablePrinter ls_table(bench::QuantileHeaders("metric", quantiles));
  bench::PrintCdfRow(ls_table, "CPU used", ls_cpu, quantiles, 3);
  bench::PrintCdfRow(ls_table, "Mem util", ls_mem, quantiles, 3);
  bench::PrintCdfRow(ls_table, "RT", ls_rt, quantiles, 3);
  bench::PrintCdfRow(ls_table, "QPS", ls_qps, quantiles, 3);
  ls_table.Print();
  std::printf("P(CoV < 1): CPU %.2f (paper >0.9)  RT %.2f (paper ~0.4)  "
              "P(QPS CoV < 0.1): %.2f (paper: most)\n\n",
              frac_below(ls_cpu, 1.0), frac_below(ls_rt, 1.0), frac_below(ls_qps, 0.1));

  std::printf("(b) Best-effort applications (CoV across pods)\n");
  TablePrinter be_table(bench::QuantileHeaders("metric", quantiles));
  bench::PrintCdfRow(be_table, "CPU used", be_cpu, quantiles, 3);
  bench::PrintCdfRow(be_table, "Mem util", be_mem, quantiles, 3);
  bench::PrintCdfRow(be_table, "Completion time", be_ct, quantiles, 3);
  be_table.Print();
  std::printf("Shape check: BE CPU varies more than BE memory (input-size effect);\n"
              "completion time stays consistent (median CoV %.2f).\n",
              be_ct.empty() ? 0.0 : be_ct.ValueAtPercentile(50));
  return 0;
}
