// Reproduces paper Fig. 8: the distribution of scheduling waiting time per
// SLO class under the reference scheduler. Expected: heavy-tailed; LS has a
// longer tail than BE (conservative LS over-commitment); LSR waits least
// (it can preempt BE).
#include "bench/bench_common.h"
#include "src/stats/descriptive.h"

using namespace optum;

int main() {
  bench::PrintFigureHeader("Fig. 8", "Waiting time by SLO class");

  // Push the cluster into contention so queueing delays appear: higher LS
  // mass than the default calibration.
  WorkloadConfig config = bench::DefaultWorkloadConfig(64, kTicksPerDay);
  config.initial_ls_request_load = 0.85;
  config.be_target_request_load = 1.3;
  const Workload workload = WorkloadGenerator(config).Generate();

  AlibabaBaseline scheduler = bench::MakeReferenceScheduler();
  const SimResult result =
      Simulator(workload, bench::DefaultSimConfig(), scheduler).Run();

  EmpiricalCdf be, ls, lsr;
  for (const auto& rec : result.trace.lifecycles) {
    // Include never-scheduled pods (their wait is censored at the horizon),
    // matching the heavy upper tail in the paper.
    const double wait = rec.waiting_seconds;
    if (rec.slo == SloClass::kBe) {
      be.Add(wait);
    } else if (rec.slo == SloClass::kLs) {
      ls.Add(wait);
    } else if (rec.slo == SloClass::kLsr) {
      lsr.Add(wait);
    }
  }
  be.Finalize();
  ls.Finalize();
  lsr.Finalize();

  const std::vector<double> quantiles = {50, 75, 90, 95, 99, 99.9, 100};
  TablePrinter table(bench::QuantileHeaders("waiting time (s)", quantiles));
  bench::PrintCdfRow(table, "BE", be, quantiles, 4);
  bench::PrintCdfRow(table, "LS", ls, quantiles, 4);
  bench::PrintCdfRow(table, "LSR", lsr, quantiles, 4);
  table.Print();

  auto frac_over = [](const EmpiricalCdf& cdf, double seconds) {
    return cdf.empty() ? 0.0 : 1.0 - cdf.FractionAtOrBelow(seconds);
  };
  std::printf("\nP(wait > 100 s): BE %.3f (paper: >0.10), LS %.3f, LSR %.3f\n",
              frac_over(be, 100), frac_over(ls, 100), frac_over(lsr, 100));
  std::printf("Shape check: LS tail heavier than BE tail (p99.9: LS %.0f s vs BE %.0f s);\n"
              "LSR waits least thanks to BE preemption.\n",
              ls.empty() ? 0.0 : ls.ValueAtPercentile(99.9),
              be.empty() ? 0.0 : be.ValueAtPercentile(99.9));
  return 0;
}
