// Reproduces paper Fig. 2(b): the distribution of pod SLO classes among
// pods deployed in the data center. Expected shape: BE + LS + LSR account
// for ~70% of pods, LS + LSR alone exceed 35%, and the rest are
// Unknown/System/VMEnv pods without explicit SLO requirements.
//
// The trace counts deployed pods, so this bench samples the running pod
// population hourly from a reference-scheduler run (submission counts would
// be dominated by short-lived BE churn).
#include <map>

#include "bench/bench_common.h"

using namespace optum;

int main() {
  bench::PrintFigureHeader("Fig. 2(b)", "Pod SLO distribution (deployed pods)");

  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(64, kTicksPerDay)).Generate();
  AlibabaBaseline scheduler = bench::MakeReferenceScheduler();
  SimConfig sim_config = bench::DefaultSimConfig();

  std::map<SloClass, int64_t> counts;
  int64_t total = 0;
  sim_config.on_tick_end = [&](const ClusterState& cluster, Tick now) {
    if (now % kTicksPerHour != 0) {
      return;
    }
    for (const Host& host : cluster.hosts()) {
      for (const PodRuntime* pod : host.pods) {
        ++counts[pod->spec.slo];
        ++total;
      }
    }
  };
  Simulator(workload, sim_config, scheduler).Run();

  TablePrinter table({"SLO type", "pod samples", "share (%)"});
  double explicit_share = 0.0, ls_share = 0.0;
  for (const SloClass slo : {SloClass::kUnknown, SloClass::kSystem, SloClass::kVmEnv,
                             SloClass::kLsr, SloClass::kLs, SloClass::kBe}) {
    const double share = 100.0 * counts[slo] / static_cast<double>(total);
    table.AddRow({ToString(slo), FormatDouble(counts[slo], 9), FormatDouble(share, 3)});
    if (slo == SloClass::kBe || slo == SloClass::kLs || slo == SloClass::kLsr) {
      explicit_share += share;
    }
    if (slo == SloClass::kLs || slo == SloClass::kLsr) {
      ls_share += share;
    }
  }
  table.Print();
  std::printf("\nBE+LS+LSR share of deployed pods: %.1f%% (paper: ~70%%)\n",
              explicit_share);
  std::printf("LS+LSR share of deployed pods:    %.1f%% (paper: >35%%)\n", ls_share);
  return 0;
}
