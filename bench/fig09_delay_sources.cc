// Reproduces paper Fig. 9: (a) average waiting time of pods grouped by CPU
// request size, per SLO class, and (b) the breakdown of the resource type
// blocking delayed pods (CPU&Mem / Mem / Other).
#include <map>

#include "bench/bench_common.h"
#include "src/stats/descriptive.h"

using namespace optum;

namespace {

const char* SizeBucket(double cpu_request) {
  if (cpu_request < 0.02) return "Low";
  if (cpu_request < 0.04) return "Med";
  if (cpu_request < 0.08) return "High";
  return "VeryHigh";
}

}  // namespace

int main() {
  bench::PrintFigureHeader("Fig. 9", "Waiting time by request size and delay source");

  WorkloadConfig config = bench::DefaultWorkloadConfig(64, kTicksPerDay);
  config.initial_ls_request_load = 0.85;
  config.be_target_request_load = 1.3;
  const Workload workload = WorkloadGenerator(config).Generate();
  AlibabaBaseline scheduler = bench::MakeReferenceScheduler();
  const SimResult result =
      Simulator(workload, bench::DefaultSimConfig(), scheduler).Run();

  std::vector<Resources> request_of(workload.pods.size());
  for (const PodSpec& pod : workload.pods) {
    request_of[static_cast<size_t>(pod.id)] = pod.request;
  }

  // (a) average waiting time by (class, request-size bucket).
  std::map<std::pair<std::string, std::string>, std::pair<double, int64_t>> wait_acc;
  for (const auto& rec : result.trace.lifecycles) {
    if (rec.slo != SloClass::kBe && rec.slo != SloClass::kLs &&
        rec.slo != SloClass::kLsr) {
      continue;
    }
    const auto key = std::make_pair(
        std::string(ToString(rec.slo)),
        std::string(SizeBucket(request_of[static_cast<size_t>(rec.pod_id)].cpu)));
    wait_acc[key].first += rec.waiting_seconds;
    ++wait_acc[key].second;
  }
  std::printf("(a) Average waiting time (s) by CPU request size\n");
  TablePrinter wait_table({"request size", "BE", "LS", "LSR"});
  for (const char* bucket : {"Low", "Med", "High", "VeryHigh"}) {
    std::vector<std::string> row{bucket};
    for (const char* slo : {"BE", "LS", "LSR"}) {
      const auto it = wait_acc.find({slo, bucket});
      row.push_back(it == wait_acc.end() || it->second.second == 0
                        ? "-"
                        : FormatDouble(it->second.first / it->second.second, 4));
    }
    wait_table.AddRow(std::move(row));
  }
  wait_table.Print();
  std::printf("Shape check (paper): small BE pods wait longer than large BE pods,\n"
              "against the LS/LSR trend.\n\n");

  // (b) source of delay: the final blocking reason per delayed pod.
  std::printf("(b) Source of scheduling delay (share of delayed pods)\n");
  std::map<std::string, std::map<WaitReason, int64_t>> reasons;
  std::map<std::string, int64_t> totals;
  for (const auto& wait : result.waits) {
    if (wait.slo != SloClass::kBe && wait.slo != SloClass::kLs &&
        wait.slo != SloClass::kLsr) {
      continue;
    }
    ++reasons[ToString(wait.slo)][wait.reason];
    ++totals[ToString(wait.slo)];
  }
  TablePrinter reason_table({"class", "CPU&Mem", "CPU", "Mem", "Other"});
  for (const char* slo : {"BE", "LS", "LSR"}) {
    const double total = static_cast<double>(std::max<int64_t>(1, totals[slo]));
    auto share = [&](WaitReason r) {
      return FormatDouble(100.0 * reasons[slo][r] / total, 3) + "%";
    };
    reason_table.AddRow({slo, share(WaitReason::kInsufficientCpuAndMem),
                         share(WaitReason::kInsufficientCpu),
                         share(WaitReason::kInsufficientMem), share(WaitReason::kOther)});
  }
  reason_table.Print();
  std::printf("Shape check (paper): BE delays dominated by CPU&Mem; LS delays mainly\n"
              "memory or other (affinity); LSR blocked by CPU and memory.\n");
  return 0;
}
