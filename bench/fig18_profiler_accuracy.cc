// Reproduces paper Fig. 18: per-application profiling accuracy (MAPE) under
// five learning models — RF, LR, Ridge, SVR, MLP — for LS applications
// (predicting CPU PSI) and BE applications (predicting normalized
// completion time). Expected: Random Forest achieves the lowest errors;
// >90% of LS apps below MAPE 0.1 under RF; ~70% of BE apps below MAPE 1,
// ~20% of BE apps below 0.2. Also sweeps the discretization bucket count
// (ablation of the paper's 25-bucket choice).
#include "bench/bench_common.h"
#include "src/ml/metrics.h"

using namespace optum;

namespace {

struct ModelScore {
  EmpiricalCdf ls_mape;
  EmpiricalCdf be_mape;
};

// The spec's seed field is ignored; the model seed derives from `seed` so
// results are reproducible per (app, model) pair regardless of overrides.
double EvaluateApp(const ml::Dataset& data, ml::RegressorSpec spec, size_t buckets,
                   double mape_floor, uint64_t seed) {
  Rng rng(seed);
  const ml::Discretizer discretizer(0.0, 1.0, buckets);
  ml::Dataset discretized(data.num_features(), data.feature_names());
  for (size_t i = 0; i < data.size(); ++i) {
    discretized.Add(data.Features(i), discretizer.ToUpperBound(data.Target(i)));
  }
  const auto split = discretized.TrainTestSplit(0.25, rng);
  if (split.train.empty() || split.test.empty()) {
    return -1.0;
  }
  spec.seed = rng.NextU64();
  auto model = ml::MakeRegressor(spec);
  model->Fit(split.train);
  std::vector<double> pred = ml::PredictAll(*model, split.test);
  for (double& p : pred) {
    p = discretizer.ToUpperBound(p);
  }
  return ml::Mape(split.test.targets(), pred, mape_floor);
}

}  // namespace

int main() {
  bench::PrintFigureHeader("Fig. 18", "Profiling accuracy by learning model (MAPE)");

  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(64, kTicksPerDay)).Generate();
  AlibabaBaseline scheduler = bench::MakeReferenceScheduler();
  SimConfig sim_config = bench::DefaultSimConfig();
  sim_config.pod_usage_period = 4;
  sim_config.node_usage_period = 4;
  const SimResult result = Simulator(workload, sim_config, scheduler).Run();

  core::OfflineProfiler profiler;
  core::AppDatasets datasets = profiler.ExtractDatasets(result.trace);

  // Subsample large LS datasets so the five-model sweep stays fast.
  Rng subsample_rng(7);
  for (auto& [app_id, data] : datasets.ls) {
    if (data.size() > 1200) {
      ml::Dataset smaller(data.num_features(), data.feature_names());
      const double keep = 1200.0 / static_cast<double>(data.size());
      for (size_t i = 0; i < data.size(); ++i) {
        if (subsample_rng.Bernoulli(keep)) {
          smaller.Add(data.Features(i), data.Target(i));
        }
      }
      data = std::move(smaller);
    }
  }

  const std::vector<ml::RegressorKind> kinds = {
      ml::RegressorKind::kRandomForest, ml::RegressorKind::kLinear,
      ml::RegressorKind::kRidge, ml::RegressorKind::kSvr, ml::RegressorKind::kMlp};

  std::vector<ModelScore> scores(kinds.size());
  for (size_t k = 0; k < kinds.size(); ++k) {
    for (const auto& [app_id, data] : datasets.ls) {
      if (data.size() < 80) {
        continue;
      }
      const double mape = EvaluateApp(data, ml::RegressorSpec{.kind = kinds[k]}, 25,
                                      0.1, static_cast<uint64_t>(app_id) * 31 + k);
      if (mape >= 0) {
        scores[k].ls_mape.Add(mape);
      }
    }
    for (const auto& [app_id, data] : datasets.be) {
      if (data.size() < 60) {
        continue;
      }
      const double mape = EvaluateApp(data, ml::RegressorSpec{.kind = kinds[k]}, 25,
                                      0.05, static_cast<uint64_t>(app_id) * 37 + k);
      if (mape >= 0) {
        scores[k].be_mape.Add(mape);
      }
    }
    scores[k].ls_mape.Finalize();
    scores[k].be_mape.Finalize();
  }

  std::printf("(a) Latency-sensitive applications: PSI prediction MAPE\n");
  TablePrinter ls_table({"model", "apps", "median", "p90", "P(MAPE<0.1)", "P(MAPE<0.5)"});
  for (size_t k = 0; k < kinds.size(); ++k) {
    const EmpiricalCdf& cdf = scores[k].ls_mape;
    ls_table.AddRow({ToString(kinds[k]), FormatDouble(cdf.size(), 4),
                     cdf.empty() ? "-" : FormatDouble(cdf.ValueAtPercentile(50), 3),
                     cdf.empty() ? "-" : FormatDouble(cdf.ValueAtPercentile(90), 3),
                     cdf.empty() ? "-" : FormatDouble(cdf.FractionAtOrBelow(0.1), 3),
                     cdf.empty() ? "-" : FormatDouble(cdf.FractionAtOrBelow(0.5), 3)});
  }
  ls_table.Print();
  std::printf("Shape check (paper): RF best; >90%% of LS apps below MAPE 0.1.\n\n");

  std::printf("(b) Best-effort applications: normalized completion-time MAPE\n");
  TablePrinter be_table({"model", "apps", "median", "p90", "P(MAPE<0.2)", "P(MAPE<1)"});
  for (size_t k = 0; k < kinds.size(); ++k) {
    const EmpiricalCdf& cdf = scores[k].be_mape;
    be_table.AddRow({ToString(kinds[k]), FormatDouble(cdf.size(), 4),
                     cdf.empty() ? "-" : FormatDouble(cdf.ValueAtPercentile(50), 3),
                     cdf.empty() ? "-" : FormatDouble(cdf.ValueAtPercentile(90), 3),
                     cdf.empty() ? "-" : FormatDouble(cdf.FractionAtOrBelow(0.2), 3),
                     cdf.empty() ? "-" : FormatDouble(cdf.FractionAtOrBelow(1.0), 3)});
  }
  be_table.Print();
  std::printf("Shape check (paper): ~70%% of BE apps below MAPE 1; Optum optimizes only\n"
              "the ~20%% with MAPE < 0.2.\n\n");

  // Ablation: discretization bucket count for the RF model on LS apps.
  std::printf("Ablation — discretization buckets (RF, LS apps, median MAPE)\n");
  TablePrinter buckets_table({"buckets", "median MAPE", "P(MAPE<0.1)"});
  for (const size_t buckets : {5u, 10u, 25u, 50u, 100u}) {
    EmpiricalCdf cdf;
    for (const auto& [app_id, data] : datasets.ls) {
      if (data.size() < 80) {
        continue;
      }
      const double mape =
          EvaluateApp(data, ml::RegressorSpec{.kind = ml::RegressorKind::kRandomForest},
                      buckets, 0.1, static_cast<uint64_t>(app_id) * 41 + buckets);
      if (mape >= 0) {
        cdf.Add(mape);
      }
    }
    cdf.Finalize();
    buckets_table.AddRow({FormatDouble(buckets, 4),
                          cdf.empty() ? "-" : FormatDouble(cdf.ValueAtPercentile(50), 3),
                          cdf.empty() ? "-" : FormatDouble(cdf.FractionAtOrBelow(0.1), 3)});
  }
  buckets_table.Print();

  // Ablation: RF ensemble size via RegressorSpec overrides (LS apps,
  // 25 buckets). The paper fixes the forest size; this shows the accuracy
  // plateau that justifies the default.
  std::printf("\nAblation — RF ensemble size (LS apps, 25 buckets)\n");
  TablePrinter trees_table({"trees", "median MAPE", "P(MAPE<0.1)"});
  for (const size_t trees : {5u, 15u, 30u, 60u}) {
    ml::RegressorSpec spec;
    spec.kind = ml::RegressorKind::kRandomForest;
    spec.forest.num_trees = trees;
    EmpiricalCdf cdf;
    for (const auto& [app_id, data] : datasets.ls) {
      if (data.size() < 80) {
        continue;
      }
      const double mape = EvaluateApp(data, spec, 25, 0.1,
                                      static_cast<uint64_t>(app_id) * 43 + trees);
      if (mape >= 0) {
        cdf.Add(mape);
      }
    }
    cdf.Finalize();
    trees_table.AddRow({FormatDouble(trees, 4),
                        cdf.empty() ? "-" : FormatDouble(cdf.ValueAtPercentile(50), 3),
                        cdf.empty() ? "-" : FormatDouble(cdf.FractionAtOrBelow(0.1), 3)});
  }
  trees_table.Print();
  return 0;
}
