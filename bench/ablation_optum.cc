// Ablation bench for the design choices called out in DESIGN.md §5:
//   1. pairwise vs triple-wise ERO (paper §4.2.2 extension)
//   2. marginal vs literal-Eq.-11 interference scoring
//   3. node-sampling fraction (the POP/scalability knob, §4.3.4)
// All variants run the same workload against the same reference profiles;
// rows report utilization, violations, and placement completeness.
#include "bench/bench_common.h"

using namespace optum;

namespace {

struct Variant {
  std::string name;
  core::OptumConfig config;
  bool triple_profiles = false;
};

}  // namespace

int main() {
  bench::PrintFigureHeader("Ablation", "Optum design choices (DESIGN.md §5)");

  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(96, 8 * kTicksPerHour)).Generate();
  const SimConfig sim_config = bench::DefaultSimConfig();

  AlibabaBaseline reference = bench::MakeReferenceScheduler();
  const SimResult ref_result = Simulator(workload, sim_config, reference).Run();
  const double ref_util = ref_result.MeanCpuUtilNonIdle();

  // Two profile sets: pairwise-only and with triple-wise ERO.
  core::OfflineProfilerConfig pairwise_config;
  pairwise_config.max_train_samples = 1000;
  core::OfflineProfilerConfig triple_config = pairwise_config;
  triple_config.enable_triple_ero = true;
  const core::OptumProfiles pairwise_profiles =
      core::OfflineProfiler(pairwise_config).BuildProfiles(ref_result.trace);
  const core::OptumProfiles triple_profiles =
      core::OfflineProfiler(triple_config).BuildProfiles(ref_result.trace);
  std::printf("profiles: %zu ERO pairs, %zu ERO triples (top-%zu apps per host sample)\n",
              triple_profiles.ero.size(), triple_profiles.ero.triple_size(),
              triple_config.triple_top_k);

  std::vector<Variant> variants;
  {
    Variant v{"pairwise + marginal (default)", {}, false};
    variants.push_back(v);
  }
  {
    Variant v{"triple-wise ERO", {}, true};
    v.config.use_triple_ero = true;
    variants.push_back(v);
  }
  {
    Variant v{"literal Eq. 11 (absolute RI)", {}, false};
    v.config.score_mode = core::ScoreMode::kPaperAbsolute;
    variants.push_back(v);
  }
  {
    Variant v{"sampling 100% (no POP)", {}, false};
    v.config.sample_fraction = 1.0;
    variants.push_back(v);
  }
  {
    Variant v{"sampling 5%, min 8 (paper)", {}, false};
    v.config.sample_fraction = 0.05;
    v.config.min_candidates = 8;
    variants.push_back(v);
  }
  {
    Variant v{"no interference term (w=0)", {}, false};
    v.config.omega_o = 0.0;
    v.config.omega_b = 0.0;
    variants.push_back(v);
  }

  TablePrinter table({"variant", "cpu util", "improve(%)", "violation", "pending@end"});
  table.AddRow({std::string("Alibaba reference"), FormatDouble(ref_util, 4),
                std::string("+0.0"), FormatDouble(ref_result.violation_rate(), 3),
                FormatDouble(ref_result.never_scheduled_pods, 9)});
  for (const Variant& variant : variants) {
    core::OptumScheduler optum(
        variant.triple_profiles ? triple_profiles : pairwise_profiles, variant.config);
    SimConfig run_config = sim_config;
    run_config.on_tick_end = [&optum](const ClusterState& cluster, Tick now) {
      optum.ObserveColocation(cluster, now);
    };
    const SimResult result = Simulator(workload, run_config, optum).Run();
    const double util = result.MeanCpuUtilNonIdle();
    table.AddRow({variant.name, FormatDouble(util, 4),
                  FormatDouble((util / ref_util - 1.0) * 100.0, 3),
                  FormatDouble(result.violation_rate(), 3),
                  FormatDouble(result.never_scheduled_pods, 9)});
  }
  table.Print();
  std::printf(
      "\nReading guide: triple-wise ERO tightens POC and should match or edge out\n"
      "pairwise utilization; disabling the interference term shows the guardrail\n"
      "cost; 100%% sampling shows placement quality with no POP scalability cut.\n");
  return 0;
}
