// Reproduces paper Fig. 5: the distribution of the resource over-commitment
// rate across hosts — sum(requests)/capacity and sum(limits)/capacity for
// CPU and memory. Expected: CPU commonly over-committed (rate > 1, tail to
// ~4 for requests, higher for limits); memory rarely over-committed.
#include "bench/bench_common.h"

using namespace optum;

int main() {
  bench::PrintFigureHeader("Fig. 5", "Resource over-commitment rate across hosts");

  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(64, kTicksPerDay)).Generate();
  AlibabaBaseline scheduler = bench::MakeReferenceScheduler();
  SimConfig sim_config = bench::DefaultSimConfig();

  EmpiricalCdf cpu_request, cpu_limit, mem_request, mem_limit;
  int64_t hosts_cpu_over = 0, hosts_mem_over = 0, host_samples = 0;
  sim_config.on_tick_end = [&](const ClusterState& cluster, Tick now) {
    if (now % kTicksPerHour != 0) {
      return;
    }
    for (const Host& host : cluster.hosts()) {
      if (host.IsIdle()) {
        continue;
      }
      ++host_samples;
      cpu_request.Add(host.request_sum.cpu / host.capacity.cpu);
      cpu_limit.Add(host.limit_sum.cpu / host.capacity.cpu);
      mem_request.Add(host.request_sum.mem / host.capacity.mem);
      mem_limit.Add(host.limit_sum.mem / host.capacity.mem);
      hosts_cpu_over += host.request_sum.cpu > host.capacity.cpu ? 1 : 0;
      hosts_mem_over += host.request_sum.mem > host.capacity.mem ? 1 : 0;
    }
  };
  Simulator(workload, sim_config, scheduler).Run();
  cpu_request.Finalize();
  cpu_limit.Finalize();
  mem_request.Finalize();
  mem_limit.Finalize();

  const std::vector<double> quantiles = {10, 25, 50, 75, 90, 99, 100};
  TablePrinter table(bench::QuantileHeaders("over-commitment rate", quantiles));
  bench::PrintCdfRow(table, "CPU request", cpu_request, quantiles, 3);
  bench::PrintCdfRow(table, "CPU limit", cpu_limit, quantiles, 3);
  bench::PrintCdfRow(table, "Mem request", mem_request, quantiles, 3);
  bench::PrintCdfRow(table, "Mem limit", mem_limit, quantiles, 3);
  table.Print();

  std::printf("\nP(host over-commits CPU requests) = %.3f (paper: > 0.25)\n",
              static_cast<double>(hosts_cpu_over) / host_samples);
  std::printf("P(host over-commits memory requests) = %.3f (paper: < 0.03)\n",
              static_cast<double>(hosts_mem_over) / host_samples);
  return 0;
}
