// Reproduces paper Fig. 20: per-pod performance under each new scheduler
// relative to the reference scheduler — (a) the CDF of the relative PSI
// increase for LS pods (paper: >=97% of LS pods see no degradation under
// Optum; ~98% within +40%), and (b) the per-application violation rate of
// BE completion times (fraction of pods finishing later than under the
// reference; paper: Optum lowest at ~0.0013). Also reports the §5.4
// scheduling-delay claim (<10 s for all pods under Optum).
#include <memory>
#include <unordered_map>

#include "bench/bench_common.h"
#include "src/sched/medea.h"
#include "src/stats/descriptive.h"

using namespace optum;

namespace {

struct PerfBaseline {
  std::unordered_map<PodId, double> ls_max_psi;
  std::unordered_map<PodId, double> be_ct;
  std::unordered_map<PodId, AppId> be_app;
};

PerfBaseline ExtractPerf(const SimResult& result) {
  PerfBaseline out;
  for (const auto& rec : result.trace.lifecycles) {
    if (IsLatencySensitive(rec.slo) && rec.schedule_tick >= 0) {
      out.ls_max_psi[rec.pod_id] = rec.max_cpu_psi;
    } else if (rec.slo == SloClass::kBe && rec.finish_tick >= 0) {
      out.be_ct[rec.pod_id] = rec.actual_completion_ticks;
      out.be_app[rec.pod_id] = rec.app_id;
    }
  }
  return out;
}

struct Comparison {
  double frac_no_degradation = 0.0;  // PSI(new) <= PSI(ref)
  double frac_within_40pct = 0.0;
  double be_violation_rate = 0.0;        // share of pods >5% slower
  double be_violation_rate_severe = 0.0;  // share of pods >20% slower
  double max_wait_seconds = 0.0;
  int64_t compared_ls = 0;
  int64_t compared_be = 0;
};

Comparison Compare(const PerfBaseline& ref, const SimResult& result) {
  Comparison out;
  int64_t no_degradation = 0, within_40 = 0;
  struct BeCount {
    int64_t slower = 0;
    int64_t much_slower = 0;
    int64_t total = 0;
  };
  std::unordered_map<AppId, BeCount> be_counts;
  for (const auto& rec : result.trace.lifecycles) {
    out.max_wait_seconds = std::max(
        out.max_wait_seconds, rec.schedule_tick >= 0 ? rec.waiting_seconds : 0.0);
    if (IsLatencySensitive(rec.slo) && rec.schedule_tick >= 0) {
      const auto it = ref.ls_max_psi.find(rec.pod_id);
      if (it == ref.ls_max_psi.end()) {
        continue;
      }
      ++out.compared_ls;
      // Tolerance of one discretization bucket (the scheduler's own PSI
      // resolution, 25 buckets over [0,1]).
      if (rec.max_cpu_psi <= it->second + 0.04) {
        ++no_degradation;
      }
      if (rec.max_cpu_psi <= it->second * 1.4 + 0.04) {
        ++within_40;
      }
    } else if (rec.slo == SloClass::kBe && rec.finish_tick >= 0) {
      const auto it = ref.be_ct.find(rec.pod_id);
      if (it == ref.be_ct.end()) {
        continue;
      }
      ++out.compared_be;
      auto& counts = be_counts[rec.app_id];
      // Violations beyond the 30 s tick quantization, at two severities.
      counts.slower += rec.actual_completion_ticks > it->second * 1.05 + 1.0 ? 1 : 0;
      counts.much_slower +=
          rec.actual_completion_ticks > it->second * 1.20 + 1.0 ? 1 : 0;
      ++counts.total;
    }
  }
  if (out.compared_ls > 0) {
    out.frac_no_degradation = static_cast<double>(no_degradation) / out.compared_ls;
    out.frac_within_40pct = static_cast<double>(within_40) / out.compared_ls;
  }
  double acc = 0.0, acc_severe = 0.0;
  int napps = 0;
  for (const auto& [app, counts] : be_counts) {
    if (counts.total >= 10) {
      acc += static_cast<double>(counts.slower) / counts.total;
      acc_severe += static_cast<double>(counts.much_slower) / counts.total;
      ++napps;
    }
  }
  out.be_violation_rate = napps > 0 ? acc / napps : 0.0;
  out.be_violation_rate_severe = napps > 0 ? acc_severe / napps : 0.0;
  return out;
}

}  // namespace

int main() {
  bench::PrintFigureHeader("Fig. 20", "Pod performance relative to the reference");

  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(96, 8 * kTicksPerHour)).Generate();
  const SimConfig sim_config = bench::DefaultSimConfig();

  AlibabaBaseline reference = bench::MakeReferenceScheduler();
  const SimResult ref_result = Simulator(workload, sim_config, reference).Run();
  const PerfBaseline ref_perf = ExtractPerf(ref_result);
  core::OptumProfiles profiles = bench::BuildProfiles(ref_result.trace);

  struct Row {
    std::string name;
    Comparison comparison;
  };
  std::vector<Row> rows;
  {
    auto p = MakeResourceCentralLike();
    rows.push_back({p->name(), Compare(ref_perf, Simulator(workload, sim_config, *p).Run())});
  }
  {
    auto p = MakeBorgLike();
    rows.push_back({p->name(), Compare(ref_perf, Simulator(workload, sim_config, *p).Run())});
  }
  {
    auto p = MakeNSigmaScheduler();
    rows.push_back({p->name(), Compare(ref_perf, Simulator(workload, sim_config, *p).Run())});
  }
  {
    Medea medea;
    rows.push_back({medea.name(), Compare(ref_perf, Simulator(workload, sim_config, medea).Run())});
  }
  core::OptumScheduler optum(std::move(profiles));
  SimConfig optum_config = sim_config;
  optum_config.on_tick_end = [&optum](const ClusterState& cluster, Tick now) {
    optum.ObserveColocation(cluster, now);
  };
  rows.push_back({optum.name(), Compare(ref_perf, Simulator(workload, optum_config, optum).Run())});

  std::printf("(a) LS pod PSI relative to the reference scheduler\n");
  TablePrinter ls_table({"scheduler", "LS pods compared", "P(no degradation)",
                         "P(increase <= 40%)"});
  for (const Row& row : rows) {
    ls_table.AddRow({row.name, FormatDouble(row.comparison.compared_ls, 9),
                     FormatDouble(row.comparison.frac_no_degradation, 4),
                     FormatDouble(row.comparison.frac_within_40pct, 4)});
  }
  ls_table.Print();
  std::printf("Shape check (paper): under Optum >=97%% of LS pods see no degradation\n"
              "and ~98%% stay within +40%%.\n\n");

  std::printf("(b) BE completion-time violation rate (per-app average)\n");
  TablePrinter be_table(
      {"scheduler", "BE pods compared", ">5% slower", ">20% slower"});
  for (const Row& row : rows) {
    be_table.AddRow({row.name, FormatDouble(row.comparison.compared_be, 9),
                     FormatDouble(row.comparison.be_violation_rate, 4),
                     FormatDouble(row.comparison.be_violation_rate_severe, 4)});
  }
  be_table.Print();
  std::printf(
      "Shape check (paper): Optum's violation rate is the lowest (~1e-3). Our\n"
      "live simulation exposes causal slowdowns on densely packed hosts that\n"
      "the paper's trace-replay lookup cannot produce, so Optum (and N-sigma,\n"
      "the other dense packer) shows mild (<20%%) slowdowns on a fraction of BE\n"
      "pods; severe slowdowns stay rare. See EXPERIMENTS.md.\n\n");

  std::printf("Scheduling delay under Optum (paper §5.4: < 10 s for all pods):\n"
              "  max waiting time of scheduled pods = %.1f s\n",
              rows.back().comparison.max_wait_seconds);
  return 0;
}
