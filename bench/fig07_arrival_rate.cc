// Reproduces paper Fig. 7: the distribution of the number of pods to be
// scheduled per minute. Expected: heavy-tailed — usually low, with bursts
// an order of magnitude above the median.
#include "bench/bench_common.h"
#include "src/stats/descriptive.h"

using namespace optum;

int main() {
  bench::PrintFigureHeader("Fig. 7", "Pods to be scheduled per minute");

  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(64, 2 * kTicksPerDay)).Generate();

  const size_t minutes = static_cast<size_t>(workload.config.horizon / kTicksPerMinute);
  std::vector<double> per_minute(minutes, 0.0);
  for (const PodSpec& pod : workload.pods) {
    if (pod.submit_tick == 0) {
      continue;  // initial fleet
    }
    ++per_minute[static_cast<size_t>(pod.submit_tick / kTicksPerMinute)];
  }
  EmpiricalCdf cdf(per_minute);

  const std::vector<double> quantiles = {50, 90, 98, 99, 99.5, 99.9, 100};
  TablePrinter table(bench::QuantileHeaders("series", quantiles));
  bench::PrintCdfRow(table, "pods/minute", cdf, quantiles, 4);
  table.Print();

  const double mean = Mean(per_minute);
  std::printf("\nmean=%.2f  max=%.0f  max/mean=%.1fx  CoV=%.2f\n", mean, cdf.max(),
              cdf.max() / mean, CoefficientOfVariation(per_minute));
  std::printf("Shape check: heavy tail — the top 1%% of minutes carries bursts several\n"
              "times the median (paper: <100 typical, occasionally >1000 at 6k hosts).\n");
  return 0;
}
