// Hot-path throughput benchmark (not a paper figure): tracks the two loops
// that dominate trace-run wall clock so future PRs can see the trajectory.
//
//   1. Scheduler scoring: pods placed per second through
//      OptumScheduler::PlaceScored on a prefilled cluster, with the
//      incremental host-baseline cache ON vs OFF. The OFF configuration is
//      the pre-change behaviour (full Eq. 8 rescan per candidate), so the
//      ratio is the speedup delivered by the cache.
//   2. Simulator tick: ticks per second of a full reference-scheduler run,
//      serial vs parallel UpdateUsageAndPerformance (bit-identical results;
//      wall-clock gain requires a multi-core machine — the JSON records
//      hardware_concurrency so numbers are comparable across machines).
//   3. Forest inference: ns/row of pointer-tree descent
//      (RandomForestRegressor::Predict) vs the compiled SoA engine
//      (CompiledForest::PredictBatch, DESIGN.md §10) across a batch-size
//      sweep. Outputs are bit-identical; the sweep shows where batching
//      starts paying beyond the layout win.
//   4. Placement service: the open-loop serve layer (DESIGN.md §12) at
//      6,000 hosts — offered load × shard count sweep, reporting
//      deterministic model-time placement-latency percentiles
//      (optum.latency.v1 fields) plus wall-clock placement throughput.
//
// Emits BENCH_hotpath.json (path = argv[1], default ./BENCH_hotpath.json).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/ml/compiled_forest.h"
#include "src/serve/placement_service.h"
#include "src/ml/random_forest.h"
#include "src/obs/decision_log.h"
#include "src/obs/hotspot.h"
#include "src/obs/metrics.h"
#include "src/obs/pressure.h"
#include "src/obs/profiler.h"
#include "src/obs/span_log.h"
#include "src/obs/timeseries.h"
#include "src/sim/cluster.h"
#include "src/stats/rng.h"

namespace optum {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct ScoringRow {
  int hosts = 0;
  int pods = 0;
  size_t candidates_per_pod = 0;
  double pods_per_sec_baseline = 0.0;  // cache OFF (pre-change rescan path)
  double pods_per_sec_cached = 0.0;    // cache ON
  double speedup = 0.0;
};

// Steady-state scheduling loop: prefilled cluster, every placement is
// committed, and one older pod is removed every third submission so host
// epochs keep churning (the cache must keep revalidating, as in a real run).
double MeasureScoring(const core::OptumProfiles& profiles,
                      const std::vector<const AppProfile*>& catalog, int num_hosts,
                      int prefill_per_host, int warmup, int stream, bool cached,
                      size_t num_threads = 0,
                      obs::MetricRegistry* registry = nullptr,
                      obs::DecisionLog* decision_log = nullptr,
                      obs::SpanLog* span_log = nullptr,
                      obs::TimeSeriesRecorder* series = nullptr,
                      obs::HostPressureMonitor* pressure = nullptr,
                      obs::RoundProfiler* profiler = nullptr,
                      core::InterferencePredictor::CacheStats* stats_out = nullptr) {
  ClusterState cluster(num_hosts, kUnitResources, /*history_window=*/64);
  PodId next_id = 0;
  std::vector<PodRuntime*> live;
  live.reserve(static_cast<size_t>(num_hosts) * static_cast<size_t>(prefill_per_host));
  for (int h = 0; h < num_hosts; ++h) {
    for (int k = 0; k < prefill_per_host; ++k) {
      const AppProfile& app = *catalog[static_cast<size_t>(next_id) % catalog.size()];
      live.push_back(cluster.Place(MakePodSpec(next_id, app), &app, h, 0));
      ++next_id;
    }
  }

  core::OptumConfig config;
  config.use_incremental_cache = cached;
  config.num_threads = num_threads;
  core::OptumScheduler scheduler(profiles, config);
  obs::Sinks sinks;
  sinks.metrics = registry;
  sinks.decision_log = decision_log;
  sinks.span_log = span_log;
  scheduler.AttachSinks(sinks);

  // A simulator tick schedules a few dozen pods, so sampling the series once
  // per kSeriesPeriod placements reproduces the per-tick cadence runsim uses.
  constexpr int kSeriesPeriod = 64;
  // The pressure sweep runs at the placement service's round cadence
  // (DESIGN.md §13): one full host sweep per ~kPressurePeriod placements.
  constexpr int kPressurePeriod = 512;
  size_t evict_cursor = 0;
  Tick pressure_tick = 0;  // monitor ticks must be strictly increasing
  const auto run_segment = [&](int pods) {
    for (int i = 0; i < pods; ++i) {
      const AppProfile& app = *catalog[static_cast<size_t>(next_id) % catalog.size()];
      const PodSpec spec = MakePodSpec(next_id, app);
      ++next_id;
      double score = 0.0;
      PlacementDecision decision;
      {
        // Round-profiler cadence: in this loop one placement IS the round's
        // barrier work, so each PlaceScored runs under the settle phase and
        // EndRound closes at the bottom of the iteration — the worst case
        // for profiler overhead (a serve round amortizes one EndRound over
        // dozens of placements).
        obs::RoundProfiler::Scope settle(
            profiler, obs::ProfilePhase::kFinalizeRevalidate, 0);
        decision = scheduler.PlaceScored(spec, cluster, &score);
      }
      if (decision.placed()) {
        live.push_back(cluster.Place(spec, &app, decision.host, 0));
        if (span_log != nullptr) {
          // The simulator's serial commit span (lifecycle tracing active).
          span_log->Append({.tick = static_cast<Tick>(i), .pod = spec.id,
                            .phase = obs::SpanPhase::kPlaced,
                            .host = decision.host, .wait_ticks = 0});
        }
      }
      if (series != nullptr && i % kSeriesPeriod == 0) {
        series->Sample(static_cast<Tick>(i));
      }
      if (pressure != nullptr && i % kPressurePeriod == 0) {
        // Mirrors PlacementService::SamplePressure: a full serial host sweep
        // with the resident-interference term, once per placement round. The
        // serve layer samples pressure at round granularity (several hundred
        // placements at production offered rates), not per sim tick — the
        // simulator's per-tick sweep rides a tick that already does O(hosts)
        // usage work, so the per-64-placement series cadence would charge
        // the sensor against a baseline that bears none of that cost.
        pressure->BeginTick(pressure_tick++);
        for (const Host& host : cluster.hosts()) {
          obs::HostPressureInput in;
          const Resources predicted =
              scheduler.usage_predictor().PredictHost(host, /*incoming=*/nullptr);
          in.cpu_util = host.capacity.cpu > 0.0
                            ? predicted.cpu / host.capacity.cpu
                            : 0.0;
          in.mem_util = host.capacity.mem > 0.0
                            ? predicted.mem / host.capacity.mem
                            : 0.0;
          int32_t counts[kNumSloClasses];
          CountPodsBySlo(host, counts);
          in.pods_be = counts[static_cast<size_t>(SloClass::kBe)];
          in.pods_ls = counts[static_cast<size_t>(SloClass::kLs)];
          in.pods_lsr = counts[static_cast<size_t>(SloClass::kLsr)];
          const int32_t ls_pods = in.pods_ls + in.pods_lsr;
          if (ls_pods > 0) {
            in.interference = scheduler.interference_predictor()
                                  .ResidentInterference(
                                      host, in.cpu_util, in.mem_util,
                                      /*weight_ls=*/1.0, /*weight_be=*/0.0,
                                      /*lane=*/0) /
                              static_cast<double>(ls_pods);
          }
          pressure->ObserveHost(host.id, in);
        }
        pressure->EndTick();
      }
      if (i % 3 == 0 && !live.empty()) {
        evict_cursor = (evict_cursor + 1) % live.size();
        cluster.Remove(live[evict_cursor]);
        live[evict_cursor] = live.back();
        live.pop_back();
      }
      if (profiler != nullptr) {
        profiler->EndRound();
      }
    }
  };

  run_segment(warmup);
  // Best of three timed segments: the box this runs on may be noisy, and
  // throughput (not latency) is the metric, so the cleanest segment is the
  // most faithful one.
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const Clock::time_point start = Clock::now();
    run_segment(stream);
    best = std::max(best, static_cast<double>(stream) / SecondsSince(start));
  }
  if (stats_out != nullptr) {
    *stats_out = scheduler.interference_predictor().cache_stats();
  }
  return best;
}

ScoringRow RunScoringBench(const core::OptumProfiles& profiles,
                           const std::vector<const AppProfile*>& catalog, int num_hosts,
                           int stream) {
  constexpr int kPrefillPerHost = 16;
  // Warm for a full stream length so the measurement reflects steady state:
  // the prediction/slope caches of both configurations start cold, and a
  // long trace run spends almost all its time warm.
  const int warmup = stream;
  ScoringRow row;
  row.hosts = num_hosts;
  row.pods = stream;
  core::OptumConfig defaults;
  row.candidates_per_pod =
      std::max(defaults.min_candidates,
               static_cast<size_t>(defaults.sample_fraction * num_hosts));
  row.pods_per_sec_baseline = MeasureScoring(profiles, catalog, num_hosts,
                                             kPrefillPerHost, warmup, stream,
                                             /*cached=*/false);
  row.pods_per_sec_cached = MeasureScoring(profiles, catalog, num_hosts,
                                           kPrefillPerHost, warmup, stream,
                                           /*cached=*/true);
  row.speedup = row.pods_per_sec_cached / row.pods_per_sec_baseline;
  return row;
}

struct ObsRow {
  int hosts = 0;
  int pods = 0;
  double pods_per_sec_metrics_off = 0.0;  // nullable sinks detached
  double pods_per_sec_metrics_on = 0.0;   // registry + timers + collectors
  double pods_per_sec_decision_log = 0.0; // metrics + per-placement JSONL
  double pods_per_sec_spans = 0.0;        // metrics + span log + series ring
  double pods_per_sec_pressure = 0.0;     // metrics + pressure/hotspot/SLO sensor
  double pods_per_sec_profile = 0.0;      // metrics + round profiler + JSONL log
  double metrics_on_overhead_pct = 0.0;
  double decision_log_overhead_pct = 0.0;
  double spans_overhead_pct = 0.0;             // vs metrics off, like the others
  double spans_incremental_pct = 0.0;          // vs metrics on (the ≤2% budget)
  double pressure_overhead_pct = 0.0;          // vs metrics off
  double pressure_incremental_pct = 0.0;       // vs metrics on (the ≤2% budget)
  double profile_overhead_pct = 0.0;           // vs metrics off
  double profile_incremental_pct = 0.0;        // vs metrics on (the ≤2% budget)
  int64_t profile_windows = 0;
  int64_t span_records = 0;
  int64_t series_samples = 0;
  int64_t hotspot_events = 0;
  int64_t pressure_ticks = 0;
  core::InterferencePredictor::CacheStats cache_stats;
};

// Observability cost on the same steady-state loop. The metrics-off run IS
// the shipped disabled path — every sink is a null pointer, so its
// throughput doubles as the "scoring" section's number for this cluster
// size; comparing the two sections (or this file across commits) bounds the
// disabled-instrumentation overhead, which must stay within ~2%. The
// metrics-on rows quantify what attaching the registry, the decision log,
// the span-log + series-ring pair, and the pressure/hotspot/SLO sensor
// actually cost; the span/series and pressure numbers are also reported
// incrementally against metrics-on, which is the budget each must hold
// (≤2%). Cache hit rates and forest-eval counts come from the metrics-on
// run's predictor tallies.
ObsRow RunObsBench(const core::OptumProfiles& profiles,
                   const std::vector<const AppProfile*>& catalog, int num_hosts,
                   int stream) {
  constexpr int kPrefillPerHost = 16;
  const int warmup = stream;
  ObsRow row;
  row.hosts = num_hosts;
  row.pods = stream;
  // One discarded measurement first: the section's first run pays the
  // allocator/page-cache warm-up for everyone after it and otherwise skews
  // whichever configuration goes first by several percent.
  (void)MeasureScoring(profiles, catalog, num_hosts, kPrefillPerHost, warmup, stream,
                       /*cached=*/true);
  // Interleave the configurations across three passes and keep the best of
  // each: a sustained slowdown of the box (noisy neighbors on a shared
  // container) then biases every configuration equally instead of whichever
  // one it happened to overlap, which matters when the effect under
  // measurement (~2%) is far below the run-to-run noise.
  for (int pass = 0; pass < 3; ++pass) {
    row.pods_per_sec_metrics_off = std::max(
        row.pods_per_sec_metrics_off,
        MeasureScoring(profiles, catalog, num_hosts, kPrefillPerHost, warmup, stream,
                       /*cached=*/true));
    {
      obs::MetricRegistry registry;
      row.pods_per_sec_metrics_on = std::max(
          row.pods_per_sec_metrics_on,
          MeasureScoring(profiles, catalog, num_hosts, kPrefillPerHost, warmup, stream,
                         /*cached=*/true, /*num_threads=*/0, &registry,
                         /*decision_log=*/nullptr, /*span_log=*/nullptr,
                         /*series=*/nullptr, /*pressure=*/nullptr,
                         /*profiler=*/nullptr, &row.cache_stats));
    }
    {
      obs::MetricRegistry registry;
      obs::DecisionLog log("/dev/null");
      row.pods_per_sec_decision_log = std::max(
          row.pods_per_sec_decision_log,
          MeasureScoring(profiles, catalog, num_hosts, kPrefillPerHost, warmup, stream,
                         /*cached=*/true, /*num_threads=*/0, &registry, &log));
    }
    {
      // Span log + streaming series on top of the registry: the lifecycle
      // tracing configuration (`runsim --span-log --series-json`). The span
      // log renders three spans per placement (sampled, scored, placed) plus
      // the phase counters/histogram AttachMetrics wires; the recorder
      // collects the scheduler's gauges through the bounded ring.
      obs::MetricRegistry registry;
      obs::SpanLog span_log("/dev/null");
      span_log.AttachMetrics(&registry);
      obs::TimeSeriesRecorder series(&registry, "/dev/null");
      row.pods_per_sec_spans = std::max(
          row.pods_per_sec_spans,
          MeasureScoring(profiles, catalog, num_hosts, kPrefillPerHost, warmup, stream,
                         /*cached=*/true, /*num_threads=*/0, &registry,
                         /*decision_log=*/nullptr, &span_log, &series));
      span_log.Flush();
      series.Flush();
      row.span_records = span_log.records_written();
      row.series_samples = series.samples_written();
    }
    {
      // Pressure + hotspot + SLO sensing on top of the registry: the sensor
      // configuration (`serve_bench --pressure --hotspot-log`, DESIGN.md
      // §13). Every sampled tick sweeps all hosts through the EWMA tracker,
      // the hysteresis detector, and the sharded SLO accumulators, with the
      // resident-interference term from the lane-0 predictor cache.
      obs::MetricRegistry registry;
      obs::HotspotLog hotspot_log("/dev/null");
      obs::HostPressureMonitor monitor(static_cast<size_t>(num_hosts),
                                       obs::HostPressureMonitor::Options{});
      obs::Sinks pressure_sinks;
      pressure_sinks.hotspot_log = &hotspot_log;
      pressure_sinks.metrics = &registry;
      monitor.AttachSinks(pressure_sinks, "bench");
      row.pods_per_sec_pressure = std::max(
          row.pods_per_sec_pressure,
          MeasureScoring(profiles, catalog, num_hosts, kPrefillPerHost, warmup, stream,
                         /*cached=*/true, /*num_threads=*/0, &registry,
                         /*decision_log=*/nullptr, /*span_log=*/nullptr,
                         /*series=*/nullptr, &monitor));
      monitor.Finalize();
      row.hotspot_events = monitor.detector().events_emitted();
      row.pressure_ticks = monitor.last_tick() + 1;
    }
    {
      // Round profiler on top of the registry: the phase-profiling
      // configuration (`serve_bench --profile-json`, DESIGN.md §14). Worst
      // case by construction — every placement runs a settle scope (two
      // clock reads) and its own EndRound (the serial merge + critical-path
      // pass), where a serve round amortizes one EndRound over dozens of
      // placements. The budget is the same ≤2% vs metrics-on that spans and
      // pressure hold.
      obs::MetricRegistry registry;
      obs::ProfileLog profile_log("/dev/null");
      obs::RoundProfiler profiler;  // default 64-round windows
      profiler.set_log(&profile_log);
      row.pods_per_sec_profile = std::max(
          row.pods_per_sec_profile,
          MeasureScoring(profiles, catalog, num_hosts, kPrefillPerHost, warmup, stream,
                         /*cached=*/true, /*num_threads=*/0, &registry,
                         /*decision_log=*/nullptr, /*span_log=*/nullptr,
                         /*series=*/nullptr, /*pressure=*/nullptr, &profiler));
      profiler.Finalize();
      row.profile_windows = profiler.windows_flushed();
    }
  }
  const auto overhead_pct = [&](double with, double base) {
    return base > 0.0 ? (1.0 - with / base) * 100.0 : 0.0;
  };
  row.metrics_on_overhead_pct =
      overhead_pct(row.pods_per_sec_metrics_on, row.pods_per_sec_metrics_off);
  row.decision_log_overhead_pct =
      overhead_pct(row.pods_per_sec_decision_log, row.pods_per_sec_metrics_off);
  row.spans_overhead_pct =
      overhead_pct(row.pods_per_sec_spans, row.pods_per_sec_metrics_off);
  row.spans_incremental_pct =
      overhead_pct(row.pods_per_sec_spans, row.pods_per_sec_metrics_on);
  row.pressure_overhead_pct =
      overhead_pct(row.pods_per_sec_pressure, row.pods_per_sec_metrics_off);
  row.pressure_incremental_pct =
      overhead_pct(row.pods_per_sec_pressure, row.pods_per_sec_metrics_on);
  row.profile_overhead_pct =
      overhead_pct(row.pods_per_sec_profile, row.pods_per_sec_metrics_off);
  row.profile_incremental_pct =
      overhead_pct(row.pods_per_sec_profile, row.pods_per_sec_metrics_on);
  return row;
}

struct ThreadsRow {
  int hosts = 0;
  int pods = 0;
  size_t threads = 0;       // OptumConfig::num_threads (0 = serial path)
  double pods_per_sec = 0.0;
  double speedup = 0.0;     // vs the threads=0 row of the same cluster size
};

// Thread-count sweep over the same steady-state loop: placements are
// bit-identical for every thread count (lane-sharded key-pure caches), so
// the rows differ only in wall clock.
std::vector<ThreadsRow> RunThreadsSweep(const core::OptumProfiles& profiles,
                                        const std::vector<const AppProfile*>& catalog,
                                        int num_hosts, int stream) {
  constexpr int kPrefillPerHost = 16;
  const int warmup = stream;
  std::vector<ThreadsRow> rows;
  for (const size_t threads : {size_t{0}, size_t{2}, size_t{4}}) {
    std::printf("scoring %d hosts with num_threads=%zu...\n", num_hosts, threads);
    ThreadsRow row;
    row.hosts = num_hosts;
    row.pods = stream;
    row.threads = threads;
    row.pods_per_sec = MeasureScoring(profiles, catalog, num_hosts, kPrefillPerHost,
                                      warmup, stream, /*cached=*/true, threads);
    row.speedup = rows.empty() ? 1.0 : row.pods_per_sec / rows.front().pods_per_sec;
    rows.push_back(row);
  }
  return rows;
}

bool WriteThreadsJson(const std::string& path, const std::vector<ThreadsRow>& rows,
                      unsigned hw_threads) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"hotpath_threads\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw_threads);
  if (hw_threads <= 1) {
    std::fprintf(f,
                 "  \"note\": \"single-core machine: worker threads time-slice one "
                 "core, so speedup ~= 1/(1+overhead); re-run on a multi-core box "
                 "for the parallel scaling number\",\n");
  }
  std::fprintf(f, "  \"scoring_threads\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ThreadsRow& r = rows[i];
    std::fprintf(f,
                 "    {\"hosts\": %d, \"pods\": %d, \"threads\": %zu, "
                 "\"pods_per_sec\": %.1f, \"speedup_vs_serial\": %.2f}%s\n",
                 r.hosts, r.pods, r.threads, r.pods_per_sec, r.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

struct ForestBatchRow {
  size_t batch = 0;
  double ns_row_compiled = 0.0;   // exact (double) engine
  double speedup = 0.0;           // vs the pointer-tree ns/row of the same forest
  double ns_row_quantized = 0.0;  // float32-threshold engine
  double speedup_quantized = 0.0;
};

struct ForestBench {
  size_t trees = 0;
  size_t nodes = 0;
  size_t features = 0;
  size_t rows = 0;
  double ns_row_pointer = 0.0;
  double quantized_max_abs_err = 0.0;  // vs exact, across all rows
  std::vector<ForestBatchRow> batches;
};

// Forest inference microbench: one RF trained on contention-style features
// (utilizations in [0, 1], interference-shaped target), then ns/row of
// row-at-a-time pointer descent vs the compiled engine — exact and
// quantized layouts — at several batch sizes. The pointer number is
// batch-independent, so it is measured once. The exact engine must match
// the pointer checksum bit-for-bit; the quantized engine reports its max
// abs deviation instead.
ForestBench RunForestBench() {
  constexpr size_t kFeatures = 5;  // Eq. 9 width (LS feature vector)
  constexpr size_t kTrain = 2500;
  constexpr size_t kRows = 4096;
  constexpr int kPasses = 8;  // dataset passes per timed segment

  Rng rng(2024);
  ml::Dataset data(kFeatures);
  std::vector<double> x(kFeatures);
  for (size_t i = 0; i < kTrain; ++i) {
    for (auto& v : x) {
      v = rng.Uniform(0, 1);
    }
    const double y = 0.15 * x[0] + 0.4 * x[0] * x[1] + 0.2 * (x[2] > 0.7 ? 1.0 : 0.0) +
                     0.1 * x[3] + rng.Gaussian(0, 0.02);
    data.Add(x, y);
  }
  ml::RandomForestRegressor forest(ml::ForestParams{}, 7);
  forest.Fit(data);
  const ml::CompiledForest& compiled = forest.compiled();
  const ml::CompiledForest quantized =
      ml::CompiledForest::Compile(forest, {.quantized_thresholds = true});

  ForestBench bench;
  bench.trees = compiled.num_trees();
  bench.nodes = compiled.num_nodes();
  bench.features = kFeatures;
  bench.rows = kRows;

  std::vector<double> rows(kRows * kFeatures);
  for (auto& v : rows) {
    v = rng.Uniform(0, 1.2);  // slightly past training range, as live hosts are
  }

  // checksum defeats dead-code elimination and doubles as an equivalence
  // probe: the exact engine must accumulate the same value as pointer
  // descent bit-for-bit.
  double pointer_checksum = 0.0;
  const auto time_ns_per_row = [&](const auto& body) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const Clock::time_point start = Clock::now();
      for (int pass = 0; pass < kPasses; ++pass) {
        body();
      }
      best = std::min(best, SecondsSince(start) * 1e9 /
                                static_cast<double>(kPasses * kRows));
    }
    return best;
  };

  bench.ns_row_pointer = time_ns_per_row([&] {
    double sum = 0.0;
    for (size_t i = 0; i < kRows; ++i) {
      sum += forest.Predict(
          std::span<const double>(rows.data() + i * kFeatures, kFeatures));
    }
    pointer_checksum = sum;
  });

  // Exact reference outputs for the quantized deviation probe.
  std::vector<double> exact_out(kRows);
  compiled.PredictBatch(rows, kFeatures, exact_out);

  std::vector<double> out(kRows);
  const auto run_batched = [&](const ml::CompiledForest& engine, size_t batch) {
    for (size_t begin = 0; begin < kRows; begin += batch) {
      const size_t n = std::min(batch, kRows - begin);
      engine.PredictBatch(
          std::span<const double>(rows.data() + begin * kFeatures, n * kFeatures),
          kFeatures, std::span<double>(out.data() + begin, n));
    }
  };
  for (const size_t batch : {size_t{1}, size_t{8}, size_t{64}, size_t{256}}) {
    ForestBatchRow row;
    row.batch = batch;
    row.ns_row_compiled = time_ns_per_row([&] { run_batched(compiled, batch); });
    double compiled_checksum = 0.0;
    for (const double v : out) {
      compiled_checksum += v;
    }
    if (compiled_checksum != pointer_checksum) {
      std::fprintf(stderr,
                   "forest bench: compiled checksum %.17g != pointer %.17g\n",
                   compiled_checksum, pointer_checksum);
    }
    row.speedup = row.ns_row_compiled > 0.0
                      ? bench.ns_row_pointer / row.ns_row_compiled
                      : 0.0;
    row.ns_row_quantized = time_ns_per_row([&] { run_batched(quantized, batch); });
    for (size_t i = 0; i < kRows; ++i) {
      bench.quantized_max_abs_err =
          std::max(bench.quantized_max_abs_err, std::fabs(out[i] - exact_out[i]));
    }
    row.speedup_quantized = row.ns_row_quantized > 0.0
                                ? bench.ns_row_pointer / row.ns_row_quantized
                                : 0.0;
    bench.batches.push_back(row);
  }
  return bench;
}

struct ServeRow {
  serve::LatencyRow row;           // deterministic model-time telemetry
  size_t pipeline_depth = 1;       // identity key: 1 = serial round loop
  int64_t drain_rounds = 0;
  double pods_per_sec_placed = 0.0;  // wall clock (the only noisy field)
};

// Open-loop placement service at paper scale (§4.4 fleet of parallel
// schedulers against a 6,000-host cluster): offered load × shard count
// sweep, plus pipelined rows (pipeline_depth 2, DESIGN.md §12) at the
// 4-shard points — same latency rows bit-for-bit, higher placements/s.
// Everything in the latency row is model-time round arithmetic and
// therefore bit-deterministic; only pods_per_sec_placed is wall clock, so
// it is the one serve metric the bench_diff threshold actually gates.
std::vector<ServeRow> RunServeBench(const core::OptumProfiles& profiles,
                                    const Workload& workload) {
  constexpr int kHosts = 6000;
  constexpr int kPrefillPerHost = 8;
  constexpr int64_t kRounds = 20;
  const std::vector<const AppProfile*> catalog = SchedulableApps(workload);
  std::vector<ServeRow> rows;
  for (const size_t shards : {size_t{2}, size_t{4}}) {
    for (const double offered : {1000.0, 3000.0}) {
    for (const size_t depth : {size_t{1}, size_t{2}}) {
      // Pipelined rows only where the speedup gate looks: the 4-shard fleet.
      if (depth > 1 && shards != 4) {
        continue;
      }
      std::printf("serve %d hosts, %zu shards, %.0f pods/s offered, depth %zu...\n",
                  kHosts, shards, offered, depth);
      ClusterState cluster(kHosts, kUnitResources, /*history_window=*/64);
      // Prefill ids start far above anything the arrival driver will emit
      // (driver ids are dense from 0).
      PodId prefill_id = 1'000'000'000;
      for (int h = 0; h < kHosts; ++h) {
        for (int k = 0; k < kPrefillPerHost; ++k) {
          const AppProfile& app =
              *catalog[static_cast<size_t>(prefill_id) % catalog.size()];
          cluster.Place(MakePodSpec(prefill_id, app), &app, h, 0);
          ++prefill_id;
        }
      }
      serve::ServeConfig config;
      config.arrival.offered_pods_per_sec = offered;
      config.distributed.num_schedulers = shards;
      config.queue_capacity_per_shard = 4096;
      // Service rate below the 3000/s offered load: that configuration runs
      // saturated, so the sweep covers both an underloaded fleet (waits ~0)
      // and a backlogged one (queueing dominates the tail).
      config.max_schedule_per_round = 1500;
      config.max_requeues = 4;
      config.mean_residency_rounds = 60.0;
      config.pipeline_depth = depth;
      serve::PlacementService service(workload, profiles, &cluster, config);
      const Clock::time_point start = Clock::now();
      service.RunRounds(kRounds);
      ServeRow out;
      out.drain_rounds = service.Drain();
      const double wall = SecondsSince(start);
      out.row = service.MakeLatencyRow();
      out.pipeline_depth = depth;
      out.pods_per_sec_placed =
          wall > 0.0 ? static_cast<double>(service.counters().placed) / wall : 0.0;
      rows.push_back(out);
    }
    }
  }
  return rows;
}

struct TickRow {
  int hosts = 0;
  Tick ticks = 0;
  size_t threads = 0;
  double ticks_per_sec_serial = 0.0;
  double ticks_per_sec_parallel = 0.0;
  double speedup = 0.0;
};

double MeasureTicks(const Workload& workload, size_t num_threads) {
  AlibabaBaseline policy = bench::MakeReferenceScheduler();
  SimConfig config = bench::DefaultSimConfig();
  config.num_threads = num_threads;
  Simulator sim(workload, config, policy);
  const Clock::time_point start = Clock::now();
  sim.Run();
  return static_cast<double>(workload.config.horizon) / SecondsSince(start);
}

TickRow RunTickBench(int num_hosts, Tick horizon, size_t threads) {
  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(num_hosts, horizon)).Generate();
  TickRow row;
  row.hosts = num_hosts;
  row.ticks = horizon;
  row.threads = threads;
  row.ticks_per_sec_serial = MeasureTicks(workload, 0);
  row.ticks_per_sec_parallel = MeasureTicks(workload, threads);
  row.speedup = row.ticks_per_sec_parallel / row.ticks_per_sec_serial;
  return row;
}

bool WriteJson(const std::string& path, const std::vector<ScoringRow>& scoring,
               const std::vector<TickRow>& ticks, const std::vector<ObsRow>& obs,
               const std::vector<ServeRow>& serve, const ForestBench& forest,
               unsigned hw_threads) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"hotpath\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw_threads);
  std::fprintf(f, "  \"scoring\": [\n");
  for (size_t i = 0; i < scoring.size(); ++i) {
    const ScoringRow& r = scoring[i];
    std::fprintf(f,
                 "    {\"hosts\": %d, \"pods\": %d, \"candidates_per_pod\": %zu, "
                 "\"pods_per_sec_baseline\": %.1f, \"pods_per_sec_cached\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 r.hosts, r.pods, r.candidates_per_pod, r.pods_per_sec_baseline,
                 r.pods_per_sec_cached, r.speedup,
                 i + 1 < scoring.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"tick\": [\n");
  for (size_t i = 0; i < ticks.size(); ++i) {
    const TickRow& r = ticks[i];
    std::fprintf(f,
                 "    {\"hosts\": %d, \"ticks\": %lld, \"threads\": %zu, "
                 "\"ticks_per_sec_serial\": %.2f, \"ticks_per_sec_parallel\": %.2f, "
                 "\"speedup\": %.2f}%s\n",
                 r.hosts, static_cast<long long>(r.ticks), r.threads,
                 r.ticks_per_sec_serial, r.ticks_per_sec_parallel, r.speedup,
                 i + 1 < ticks.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"observability\": [\n");
  for (size_t i = 0; i < obs.size(); ++i) {
    const ObsRow& r = obs[i];
    const auto rate = [](uint64_t hits, uint64_t misses) {
      const uint64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
    };
    const core::InterferencePredictor::CacheStats& s = r.cache_stats;
    std::fprintf(f,
                 "    {\"hosts\": %d, \"pods\": %d, "
                 "\"pods_per_sec_metrics_off\": %.1f, "
                 "\"pods_per_sec_metrics_on\": %.1f, "
                 "\"pods_per_sec_decision_log\": %.1f, "
                 "\"metrics_on_overhead_pct\": %.2f, "
                 "\"decision_log_overhead_pct\": %.2f,\n"
                 "     \"spans\": {\"pods_per_sec\": %.1f, \"overhead_pct\": %.2f, "
                 "\"incremental_vs_metrics_on_pct\": %.2f, "
                 "\"span_records\": %lld, \"series_samples\": %lld},\n"
                 "     \"pressure\": {\"pods_per_sec\": %.1f, \"overhead_pct\": %.2f, "
                 "\"incremental_vs_metrics_on_pct\": %.2f, "
                 "\"hotspot_events\": %lld, \"ticks_sampled\": %lld},\n"
                 "     \"profile\": {\"pods_per_sec\": %.1f, \"overhead_pct\": %.2f, "
                 "\"incremental_vs_metrics_on_pct\": %.2f, "
                 "\"windows\": %lld},\n"
                 "     \"pred_cache_hit_rate\": %.4f, \"raw_cache_hit_rate\": %.4f, "
                 "\"slope_cache_hit_rate\": %.4f, \"forest_evals\": %llu, "
                 "\"pred_cache_hits\": %llu, \"pred_cache_misses\": %llu, "
                 "\"slope_cache_misses\": %llu}%s\n",
                 r.hosts, r.pods, r.pods_per_sec_metrics_off,
                 r.pods_per_sec_metrics_on, r.pods_per_sec_decision_log,
                 r.metrics_on_overhead_pct, r.decision_log_overhead_pct,
                 r.pods_per_sec_spans, r.spans_overhead_pct,
                 r.spans_incremental_pct,
                 static_cast<long long>(r.span_records),
                 static_cast<long long>(r.series_samples),
                 r.pods_per_sec_pressure, r.pressure_overhead_pct,
                 r.pressure_incremental_pct,
                 static_cast<long long>(r.hotspot_events),
                 static_cast<long long>(r.pressure_ticks),
                 r.pods_per_sec_profile, r.profile_overhead_pct,
                 r.profile_incremental_pct,
                 static_cast<long long>(r.profile_windows),
                 rate(s.predict_hits, s.predict_misses), rate(s.raw_hits, s.raw_misses),
                 rate(s.slope_hits, s.slope_misses),
                 static_cast<unsigned long long>(s.forest_evals()),
                 static_cast<unsigned long long>(s.predict_hits),
                 static_cast<unsigned long long>(s.predict_misses),
                 static_cast<unsigned long long>(s.slope_misses),
                 i + 1 < obs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"serve\": [\n");
  for (size_t i = 0; i < serve.size(); ++i) {
    const serve::LatencyRow& r = serve[i].row;
    std::fprintf(f,
                 "    {\"hosts\": %d, \"shards\": %zu, "
                 "\"pipeline_depth\": %zu, "
                 "\"offered_pods_per_sec\": %.1f, \"process\": \"%s\", "
                 "\"rounds\": %lld, \"round_seconds\": %.3g,\n"
                 "     \"arrivals\": %lld, \"admitted\": %lld, "
                 "\"rejected_full\": %lld, \"placed\": %lld, \"dropped\": %lld, "
                 "\"conflicts\": %lld, \"drain_rounds\": %lld,\n"
                 "     \"latency_s_p50\": %.6g, \"latency_s_p99\": %.6g, "
                 "\"latency_s_p999\": %.6g, \"latency_s_max\": %.6g, "
                 "\"latency_s_mean\": %.6g, \"pods_per_sec_placed\": %.1f}%s\n",
                 r.hosts, r.shards, serve[i].pipeline_depth,
                 r.offered_pods_per_sec, r.process,
                 static_cast<long long>(r.rounds), r.round_seconds,
                 static_cast<long long>(r.arrivals),
                 static_cast<long long>(r.admitted),
                 static_cast<long long>(r.rejected_full),
                 static_cast<long long>(r.placed),
                 static_cast<long long>(r.dropped),
                 static_cast<long long>(r.conflicts),
                 static_cast<long long>(serve[i].drain_rounds),
                 r.latency_s_p50, r.latency_s_p99, r.latency_s_p999,
                 r.latency_s_max, r.latency_s_mean,
                 serve[i].pods_per_sec_placed, i + 1 < serve.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  if (forest.trees == 0) {
    // Forest section skipped (--serve-only): omit it rather than writing a
    // zeroed object bench_diff would read as a regression to 0 ns/row.
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
    return true;
  }
  std::fprintf(f, ",\n  \"forest\": {\n");
  std::fprintf(f,
               "    \"trees\": %zu, \"nodes\": %zu, \"features\": %zu, "
               "\"rows\": %zu,\n    \"ns_row_pointer\": %.1f,\n"
               "    \"quantized_max_abs_err\": %.3g,\n"
               "    \"batches\": [\n",
               forest.trees, forest.nodes, forest.features, forest.rows,
               forest.ns_row_pointer, forest.quantized_max_abs_err);
  for (size_t i = 0; i < forest.batches.size(); ++i) {
    const ForestBatchRow& r = forest.batches[i];
    std::fprintf(f,
                 "      {\"batch\": %zu, \"ns_row_compiled\": %.1f, "
                 "\"speedup\": %.2f, \"ns_row_quantized\": %.1f, "
                 "\"speedup_quantized\": %.2f}%s\n",
                 r.batch, r.ns_row_compiled, r.speedup, r.ns_row_quantized,
                 r.speedup_quantized, i + 1 < forest.batches.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_hotpath.json";
  bool run_scoring = true;
  bool run_tick = true;
  bool forest_only = false;
  bool serve_only = false;
  bool threads_sweep = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scoring-only") {
      run_tick = false;
    } else if (arg == "--tick-only") {
      run_scoring = false;
    } else if (arg == "--forest-only") {
      // Only the forest-inference microbench: no reference-run training, no
      // cluster sections — a seconds-long loop for descent-kernel iteration
      // (tools/bench_runner.sh --forest-only diffs it against the committed
      // baseline's forest section). Defaults to its own output file so a
      // partial document never overwrites the full committed baseline.
      forest_only = true;
      run_scoring = false;
      run_tick = false;
    } else if (arg == "--serve-only") {
      // Only the open-loop placement-service section (still pays the
      // reference-run profile training, but skips the scoring/tick/forest
      // sections). Defaults to its own output file so a partial document
      // never overwrites the full committed baseline.
      serve_only = true;
      run_scoring = false;
      run_tick = false;
    } else if (arg == "--threads-sweep") {
      // Scoring-throughput sweep over OptumConfig::num_threads {0,2,4};
      // replaces the default sections and writes the threads JSON schema.
      threads_sweep = true;
    } else {
      out_path = arg;
    }
  }
  if (forest_only && out_path == "BENCH_hotpath.json") {
    out_path = "BENCH_hotpath_forest.json";
  }
  if (serve_only && out_path == "BENCH_hotpath.json") {
    out_path = "BENCH_hotpath_serve.json";
  }
  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());

  bench::PrintFigureHeader("bench_hotpath", "scheduler-scoring and tick throughput");

  // Profiles come from the standard reference run (same pipeline the figure
  // benches use), so scoring exercises trained ERO entries and app models.
  // The forest microbench trains its own small model, so --forest-only
  // skips this multi-minute step entirely.
  core::OptumProfiles profiles;
  std::vector<const AppProfile*> catalog;
  Workload reference;
  if (run_scoring || run_tick || threads_sweep || serve_only) {
    std::printf("training profiles from the 64-host reference run...\n");
    reference = WorkloadGenerator(bench::DefaultWorkloadConfig()).Generate();
    AlibabaBaseline reference_policy = bench::MakeReferenceScheduler();
    Simulator reference_sim(reference, bench::DefaultSimConfig(), reference_policy);
    const SimResult reference_result = reference_sim.Run();
    profiles = bench::BuildProfiles(reference_result.trace);
    catalog = SchedulableApps(reference);
  }

  if (threads_sweep) {
    if (out_path == "BENCH_hotpath.json") {
      out_path = "BENCH_hotpath_threads.json";
    }
    const std::vector<ThreadsRow> rows =
        RunThreadsSweep(profiles, catalog, /*num_hosts=*/1000, /*stream=*/4000);
    TablePrinter table({"hosts", "threads", "pods/s", "speedup"});
    for (const ThreadsRow& r : rows) {
      table.AddRow({std::to_string(r.hosts), std::to_string(r.threads),
                    FormatDouble(r.pods_per_sec, 1), FormatDouble(r.speedup, 2)});
    }
    table.Print();
    return WriteThreadsJson(out_path, rows, hw_threads) ? 0 : 1;
  }

  std::vector<ScoringRow> scoring;
  if (run_scoring) {
    for (const auto& [hosts, stream] : {std::pair<int, int>{1000, 4000}, {6000, 1200}}) {
      std::printf("scoring %d hosts (%d pods, cache off then on)...\n", hosts, stream);
      scoring.push_back(RunScoringBench(profiles, catalog, hosts, stream));
    }
  }

  std::vector<ObsRow> obs;
  if (run_scoring) {
    std::printf(
        "scoring 1000 hosts (metrics off, on, on+decision-log, on+spans, "
        "on+pressure, on+profile)...\n");
    obs.push_back(RunObsBench(profiles, catalog, /*num_hosts=*/1000, /*stream=*/4000));
  }

  std::vector<ServeRow> serve;
  if (serve_only || (run_scoring && run_tick)) {
    serve = RunServeBench(profiles, reference);
  }

  ForestBench forest;
  if (!serve_only) {
    std::printf(
        "forest inference (pointer vs compiled exact/quantized, batch sweep)...\n");
    forest = RunForestBench();
  }

  const size_t tick_threads = std::clamp(hw_threads, 2u, 8u);
  std::vector<TickRow> ticks;
  if (run_tick) {
    for (int hosts : {1000, 6000}) {
      std::printf("tick %d hosts (serial then %zu threads)...\n", hosts, tick_threads);
      ticks.push_back(RunTickBench(hosts, /*horizon=*/3 * kTicksPerHour, tick_threads));
    }
  }

  TablePrinter table({"section", "hosts", "base/s", "opt/s", "speedup"});
  for (const ScoringRow& r : scoring) {
    table.AddRow({"scoring", std::to_string(r.hosts),
                  FormatDouble(r.pods_per_sec_baseline, 1),
                  FormatDouble(r.pods_per_sec_cached, 1), FormatDouble(r.speedup, 2)});
  }
  for (const TickRow& r : ticks) {
    table.AddRow({"tick", std::to_string(r.hosts),
                  FormatDouble(r.ticks_per_sec_serial, 2),
                  FormatDouble(r.ticks_per_sec_parallel, 2), FormatDouble(r.speedup, 2)});
  }
  for (const ObsRow& r : obs) {
    table.AddRow({"obs", std::to_string(r.hosts),
                  FormatDouble(r.pods_per_sec_metrics_off, 1),
                  FormatDouble(r.pods_per_sec_metrics_on, 1),
                  FormatDouble(1.0 - r.metrics_on_overhead_pct / 100.0, 2)});
  }
  table.Print();

  if (!serve.empty()) {
    TablePrinter serve_table({"shards", "depth", "offered/s", "placed",
                              "rejected", "p50 s", "p99 s", "p999 s",
                              "placed/s"});
    for (const ServeRow& r : serve) {
      serve_table.AddRow({std::to_string(r.row.shards),
                          std::to_string(r.pipeline_depth),
                          FormatDouble(r.row.offered_pods_per_sec, 0),
                          std::to_string(r.row.placed),
                          std::to_string(r.row.rejected_full),
                          FormatDouble(r.row.latency_s_p50, 2),
                          FormatDouble(r.row.latency_s_p99, 2),
                          FormatDouble(r.row.latency_s_p999, 2),
                          FormatDouble(r.pods_per_sec_placed, 1)});
    }
    serve_table.Print();
  }

  if (forest.trees > 0) {
    // Forest inference: ns/row, so "base" is pointer descent and lower is
    // better — kept in its own table to avoid mixing units with the above.
    TablePrinter forest_table({"batch", "ptr ns/row", "exact ns/row", "speedup",
                               "quant ns/row", "speedup"});
    for (const ForestBatchRow& r : forest.batches) {
      forest_table.AddRow({std::to_string(r.batch),
                           FormatDouble(forest.ns_row_pointer, 1),
                           FormatDouble(r.ns_row_compiled, 1),
                           FormatDouble(r.speedup, 2),
                           FormatDouble(r.ns_row_quantized, 1),
                           FormatDouble(r.speedup_quantized, 2)});
    }
    forest_table.Print();
    std::printf("quantized max abs err vs exact: %.3g\n",
                forest.quantized_max_abs_err);
  }

  return WriteJson(out_path, scoring, ticks, obs, serve, forest, hw_threads) ? 0 : 1;
}

}  // namespace
}  // namespace optum

int main(int argc, char** argv) { return optum::Main(argc, argv); }
