// Reproduces paper Fig. 21: sensitivity of Optum to the objective weights
// (omega_o, omega_b). Expected: small weights maximize utilization gain at
// the cost of some LS/BE degradation; large weights protect performance but
// shrink the gain; (0.7, 0.3) balances the two (the paper's choice).
#include <unordered_map>

#include "bench/bench_common.h"

using namespace optum;

namespace {

struct GridResult {
  double improvement_pct = 0.0;
  double ls_violation = 0.0;  // share of LS pods with PSI degradation
  double be_violation = 0.0;  // per-app mean share of slower BE pods
};

}  // namespace

int main() {
  bench::PrintFigureHeader("Fig. 21", "Sensitivity to omega_o / omega_b");

  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(48, kTicksPerDay / 2)).Generate();
  const SimConfig sim_config = bench::DefaultSimConfig();

  AlibabaBaseline reference = bench::MakeReferenceScheduler();
  const SimResult ref_result = Simulator(workload, sim_config, reference).Run();
  const double ref_util = ref_result.MeanCpuUtilNonIdle();
  const core::OptumProfiles profiles = bench::BuildProfiles(ref_result.trace, 800);

  std::unordered_map<PodId, double> ref_psi;
  std::unordered_map<PodId, double> ref_ct;
  std::unordered_map<PodId, AppId> be_app;
  for (const auto& rec : ref_result.trace.lifecycles) {
    if (IsLatencySensitive(rec.slo) && rec.schedule_tick >= 0) {
      ref_psi[rec.pod_id] = rec.max_cpu_psi;
    } else if (rec.slo == SloClass::kBe && rec.finish_tick >= 0) {
      ref_ct[rec.pod_id] = rec.actual_completion_ticks;
      be_app[rec.pod_id] = rec.app_id;
    }
  }

  const std::vector<double> omegas = {0.1, 0.5, 0.9};
  std::vector<std::vector<GridResult>> grid(omegas.size(),
                                            std::vector<GridResult>(omegas.size()));

  for (size_t i = 0; i < omegas.size(); ++i) {
    for (size_t j = 0; j < omegas.size(); ++j) {
      // Copy profiles per run (models are retrained once; stats/ERO copied,
      // models rebuilt cheaply from the shared table would need cloning —
      // instead rebuild the scheduler with freshly profiled models once per
      // cell using the same trace, which is deterministic).
      core::OptumProfiles cell_profiles = bench::BuildProfiles(ref_result.trace, 600);
      core::OptumConfig config;
      config.omega_o = omegas[i];
      config.omega_b = omegas[j];
      core::OptumScheduler optum(std::move(cell_profiles), config);
      SimConfig cell_sim = sim_config;
      cell_sim.on_tick_end = [&optum](const ClusterState& cluster, Tick now) {
        optum.ObserveColocation(cluster, now);
      };
      const SimResult result = Simulator(workload, cell_sim, optum).Run();

      GridResult& cell = grid[i][j];
      cell.improvement_pct = (result.MeanCpuUtilNonIdle() / ref_util - 1.0) * 100.0;
      int64_t ls_total = 0, ls_degraded = 0;
      std::unordered_map<AppId, std::pair<int64_t, int64_t>> be_counts;
      for (const auto& rec : result.trace.lifecycles) {
        if (IsLatencySensitive(rec.slo) && rec.schedule_tick >= 0) {
          const auto it = ref_psi.find(rec.pod_id);
          if (it != ref_psi.end()) {
            ++ls_total;
            ls_degraded += rec.max_cpu_psi > it->second + 0.04 ? 1 : 0;
          }
        } else if (rec.slo == SloClass::kBe && rec.finish_tick >= 0) {
          const auto it = ref_ct.find(rec.pod_id);
          if (it != ref_ct.end()) {
            auto& counts = be_counts[be_app[rec.pod_id]];
            // Violation: meaningfully slower than the reference (beyond the 30 s
      // tick quantization and 5% measurement tolerance).
      counts.first +=
          rec.actual_completion_ticks > it->second * 1.05 + 1.0 ? 1 : 0;
            ++counts.second;
          }
        }
      }
      cell.ls_violation = ls_total > 0 ? static_cast<double>(ls_degraded) / ls_total : 0;
      double acc = 0;
      int napps = 0;
      for (const auto& [app, counts] : be_counts) {
        if (counts.second >= 10) {
          acc += static_cast<double>(counts.first) / counts.second;
          ++napps;
        }
      }
      cell.be_violation = napps > 0 ? acc / napps : 0;
    }
  }

  auto print_grid = [&](const char* title, auto getter, int precision) {
    std::printf("%s\n", title);
    std::vector<std::string> headers{"omega_o \\ omega_b"};
    for (double wb : omegas) {
      headers.push_back(FormatDouble(wb, 3));
    }
    TablePrinter table(headers);
    for (size_t i = 0; i < omegas.size(); ++i) {
      std::vector<std::string> row{FormatDouble(omegas[i], 3)};
      for (size_t j = 0; j < omegas.size(); ++j) {
        row.push_back(FormatDouble(getter(grid[i][j]), precision));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  };

  print_grid("(a) Average CPU utilization improvement (%)",
             [](const GridResult& g) { return g.improvement_pct; }, 3);
  print_grid("(b) BE performance degradation (per-app violation rate)",
             [](const GridResult& g) { return g.be_violation; }, 3);
  print_grid("(c) LS performance degradation (share of pods with higher PSI)",
             [](const GridResult& g) { return g.ls_violation; }, 3);

  std::printf(
      "Shape check (paper): small omegas give the largest gain with the most\n"
      "degradation; large omegas give ~5%% gain with the smallest violations.\n"
      "Measured: BE degradation falls as omega_b grows (row-wise in (b)); the\n"
      "utilization peak sits at moderate-to-high omega_o — with near-zero\n"
      "omega_o the Eq. 11 score degenerates to pure POC maximization, which\n"
      "prefers badly paired (high-ERO) placements and wastes headroom. The\n"
      "paper's choice (0.7, 0.3) lies in the measured sweet spot.\n");
  return 0;
}
