// Reproduces paper Fig. 4: (a) average pod CPU utilization of BE vs LS over
// time — BE moves opposite to LS (valley filling / peak shaving) — and
// (b) host-level average/max CPU and memory utilization.
#include <map>

#include "bench/bench_common.h"
#include "src/stats/descriptive.h"

using namespace optum;

int main() {
  bench::PrintFigureHeader("Fig. 4", "Resource utilization under unified scheduling");

  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(64, 2 * kTicksPerDay)).Generate();
  AlibabaBaseline scheduler = bench::MakeReferenceScheduler();
  SimConfig sim_config = bench::DefaultSimConfig();
  const SimResult result = Simulator(workload, sim_config, scheduler).Run();

  // Pod slo lookup.
  std::vector<SloClass> pod_slo(workload.pods.size(), SloClass::kUnknown);
  for (const PodSpec& pod : workload.pods) {
    pod_slo[static_cast<size_t>(pod.id)] = pod.slo;
  }

  // (a) aggregate CPU usage per class per hour: the valley-filling signal —
  // BE consumption rises exactly when LS consumption recedes.
  std::vector<SloClass> slo_of(workload.pods.size());
  for (const PodSpec& pod : workload.pods) {
    slo_of[static_cast<size_t>(pod.id)] = pod.slo;
  }
  const int hours = static_cast<int>(workload.config.horizon / kTicksPerHour);
  std::vector<double> be_acc(hours, 0), ls_acc(hours, 0), samples(hours, 0);
  for (const auto& rec : result.trace.pod_usage) {
    const int hour = static_cast<int>(rec.collect_tick / kTicksPerHour);
    const size_t id = static_cast<size_t>(rec.pod_id);
    if (slo_of[id] == SloClass::kBe) {
      be_acc[hour] += rec.cpu_usage;
    } else if (IsLatencySensitive(slo_of[id])) {
      ls_acc[hour] += rec.cpu_usage;
    }
    samples[hour] += 1.0;
  }
  std::printf("(a) Aggregate CPU usage by class per hour (capacity units, cluster-wide)\n");
  TablePrinter util_table({"hour", "BE usage", "LS usage"});
  std::vector<double> be_series, ls_series;
  const double samples_per_hour =
      static_cast<double>(kTicksPerHour / sim_config.pod_usage_period);
  for (int h = 0; h < hours; ++h) {
    const double be_usage = be_acc[h] / samples_per_hour;
    const double ls_usage = ls_acc[h] / samples_per_hour;
    be_series.push_back(be_usage);
    ls_series.push_back(ls_usage);
    if (h % 2 == 0) {
      util_table.AddRow({FormatDouble(h, 3), FormatDouble(be_usage, 4),
                         FormatDouble(ls_usage, 4)});
    }
  }
  util_table.Print();
  std::printf("Correlation(BE usage, LS usage) = %.3f (paper: opposite fluctuation, "
              "negative)\n\n",
              PearsonCorrelation(be_series, ls_series));

  // (b) host-level utilization.
  std::printf("(b) Host resource utilization over the run\n");
  std::vector<double> cpu_avg, mem_avg, cpu_max;
  for (const auto& s : result.util_series) {
    cpu_avg.push_back(s.avg_cpu_nonidle);
    mem_avg.push_back(s.avg_mem_nonidle);
    cpu_max.push_back(s.max_cpu);
  }
  TablePrinter host_table({"metric", "mean", "p95", "max"});
  host_table.AddRow({std::string("CPU avg (non-idle hosts)"),
                     FormatDouble(Mean(cpu_avg), 3), FormatDouble(Percentile(cpu_avg, 95), 3),
                     FormatDouble(Max(cpu_avg), 3)});
  host_table.AddRow({std::string("Mem avg (non-idle hosts)"),
                     FormatDouble(Mean(mem_avg), 3), FormatDouble(Percentile(mem_avg, 95), 3),
                     FormatDouble(Max(mem_avg), 3)});
  host_table.AddRow({std::string("CPU max across hosts"), FormatDouble(Mean(cpu_max), 3),
                     FormatDouble(Percentile(cpu_max, 95), 3),
                     FormatDouble(Max(cpu_max), 3)});
  host_table.Print();
  std::printf("Shape check: avg CPU ~0.3 and mem ~0.4 (paper: <30%% / ~40%%); max host\n"
              "CPU approaches 1.0; memory is steadier than CPU (CoV %.3f vs %.3f).\n",
              CoefficientOfVariation(mem_avg), CoefficientOfVariation(cpu_avg));
  return 0;
}
