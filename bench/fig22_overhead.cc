// Reproduces paper Fig. 22: per-pod scheduling latency versus cluster size
// (1,000-6,000 nodes) for each scheduler, via google-benchmark. Expected
// shape: latency grows ~linearly with node count; Borg-like is cheapest;
// Optum stays below the remaining baselines thanks to host sampling (the
// paper reports 96 ms mean / 132 ms max at 6,000 nodes on their testbed —
// absolute numbers differ on other hardware, the ordering is the claim).
// Also sweeps Optum's sampling fraction (the POP ablation).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_common.h"
#include "src/sched/medea.h"

using namespace optum;

namespace {

// Builds a cluster of `hosts` with a realistic pod population and usage
// history, plus profiles for Optum.
struct OverheadFixture {
  explicit OverheadFixture(int hosts)
      : workload(MakeWorkload(hosts)), cluster(hosts, kUnitResources, 64) {
    Rng rng(7);
    // Place the initial fleet round-robin with jitter; fill usage history.
    size_t cursor = 0;
    for (const PodSpec& pod : workload.pods) {
      if (pod.submit_tick != 0) {
        break;
      }
      const HostId host =
          static_cast<HostId>((cursor + rng.NextBelow(3)) % cluster.num_hosts());
      ++cursor;
      const AppProfile& app = AppOf(workload, pod.app);
      if (!AffinityAllows(pod, cluster.host(host))) {
        continue;
      }
      PodRuntime* rt = cluster.Place(pod, &app, host, 0);
      rt->cpu_usage = app.request.cpu * app.cpu_usage_fraction;
      rt->mem_usage = app.request.mem * app.mem_usage_fraction;
      for (int s = 0; s < 32; ++s) {
        rt->RecordCpuSample(rt->cpu_usage * rng.Uniform(0.8, 1.2), rng);
      }
    }
    for (size_t h = 0; h < cluster.num_hosts(); ++h) {
      Host& host = cluster.mutable_host(static_cast<HostId>(h));
      Resources usage = kZeroResources;
      for (const PodRuntime* pod : host.pods) {
        usage += Resources{pod->cpu_usage, pod->mem_usage};
      }
      host.usage = usage;
      host.demand = usage;
      for (int s = 0; s < 64; ++s) {
        host.PushHistory(usage.cpu * rng.Uniform(0.8, 1.2), 64);
      }
    }
    // Profiles: synthetic ERO/stats (training RF models at 6k-host scale is
    // not what this bench measures; prediction cost is dominated by tree
    // walks which the interference cache amortizes as in production).
    for (const AppProfile& app : workload.apps) {
      core::AppModel model;
      model.stats.slo = app.slo;
      model.stats.max_pod_cpu_util = 0.5;
      model.stats.max_pod_mem_util = 0.8;
      model.stats.mem_profile = app.mem_usage_fraction;
      profiles.apps.emplace(app.id, std::move(model));
      for (const AppProfile& other : workload.apps) {
        if (other.id <= app.id) {
          profiles.ero.Observe(app.id, other.id, 0.4);
        }
      }
    }
  }

  static Workload MakeWorkload(int hosts) {
    WorkloadConfig config;
    config.num_hosts = hosts;
    config.horizon = 10;
    config.seed = 42;
    // Population scale comparable to production density.
    config.initial_ls_request_load = 0.7;
    return WorkloadGenerator(config).Generate();
  }

  PodSpec ProbePod(uint64_t i, SloClass slo = SloClass::kBe) const {
    // Rotate through apps of the requested class for the probe placements.
    std::vector<const AppProfile*> pool;
    for (const AppProfile& app : workload.apps) {
      if (app.slo == slo) {
        pool.push_back(&app);
      }
    }
    const AppProfile& app = *pool[i % pool.size()];
    PodSpec pod;
    pod.id = 1'000'000 + static_cast<PodId>(i);
    pod.app = app.id;
    pod.slo = app.slo;
    pod.request = app.request;
    pod.limit = app.limit;
    return pod;
  }

  Workload workload;
  ClusterState cluster;
  core::OptumProfiles profiles;
};

OverheadFixture& FixtureFor(int hosts) {
  static std::map<int, std::unique_ptr<OverheadFixture>> cache;
  auto& slot = cache[hosts];
  if (!slot) {
    slot = std::make_unique<OverheadFixture>(hosts);
  }
  return *slot;
}

template <typename MakePolicy>
void RunPlacement(benchmark::State& state, MakePolicy make_policy) {
  OverheadFixture& fixture = FixtureFor(static_cast<int>(state.range(0)));
  auto policy = make_policy(fixture);
  uint64_t i = 0;
  for (auto _ : state) {
    const PodSpec pod = fixture.ProbePod(i++);
    const AppProfile& app = AppOf(fixture.workload, pod.app);
    benchmark::DoNotOptimize(policy->Place(pod, app, fixture.cluster));
  }
  state.SetLabel(std::to_string(state.range(0)) + " nodes");
}

void BM_Alibaba(benchmark::State& state) {
  RunPlacement(state, [](OverheadFixture&) { return std::make_unique<AlibabaBaseline>(); });
}
void BM_BorgLike(benchmark::State& state) {
  RunPlacement(state, [](OverheadFixture&) { return MakeBorgLike(); });
}
void BM_NSigma(benchmark::State& state) {
  RunPlacement(state, [](OverheadFixture&) { return MakeNSigmaScheduler(); });
}
void BM_ResourceCentral(benchmark::State& state) {
  RunPlacement(state, [](OverheadFixture&) { return MakeResourceCentralLike(); });
}
void BM_Medea(benchmark::State& state) {
  RunPlacement(state, [](OverheadFixture&) { return std::make_unique<Medea>(); });
}
// Medea's expensive path: long-running pods go through the ILP batch
// (paper Fig. 22 shows Medea as the costliest scheduler).
void BM_MedeaLongRunning(benchmark::State& state) {
  OverheadFixture& fixture = FixtureFor(static_cast<int>(state.range(0)));
  Medea policy;
  uint64_t i = 0;
  for (auto _ : state) {
    const PodSpec pod = fixture.ProbePod(i++, SloClass::kLs);
    benchmark::DoNotOptimize(
        policy.Place(pod, AppOf(fixture.workload, pod.app), fixture.cluster));
  }
  state.SetLabel(std::to_string(state.range(0)) + " nodes (ILP path)");
}
void BM_Optum(benchmark::State& state) {
  RunPlacement(state, [](OverheadFixture& fixture) {
    core::OptumProfiles copy;
    copy.ero = fixture.profiles.ero;
    for (const auto& [id, model] : fixture.profiles.apps) {
      core::AppModel m;
      m.stats = model.stats;
      m.discretizer = model.discretizer;
      copy.apps.emplace(id, std::move(m));
    }
    return std::make_unique<core::OptumScheduler>(std::move(copy));
  });
}
void BM_OptumSamplingSweep(benchmark::State& state) {
  // POP ablation: latency vs sampling fraction at 3,000 nodes.
  OverheadFixture& fixture = FixtureFor(3000);
  core::OptumProfiles copy;
  copy.ero = fixture.profiles.ero;
  for (const auto& [id, model] : fixture.profiles.apps) {
    core::AppModel m;
    m.stats = model.stats;
    m.discretizer = model.discretizer;
    copy.apps.emplace(id, std::move(m));
  }
  core::OptumConfig config;
  config.sample_fraction = static_cast<double>(state.range(0)) / 100.0;
  core::OptumScheduler policy(std::move(copy), config);
  uint64_t i = 0;
  for (auto _ : state) {
    const PodSpec pod = fixture.ProbePod(i++);
    benchmark::DoNotOptimize(policy.Place(pod, AppOf(fixture.workload, pod.app),
                                          fixture.cluster));
  }
  state.SetLabel("sampling " + std::to_string(state.range(0)) + "% @3000 nodes");
}

}  // namespace

BENCHMARK(BM_Alibaba)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(6000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BorgLike)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(6000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NSigma)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(6000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ResourceCentral)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(6000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Medea)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(6000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MedeaLongRunning)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(6000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Optum)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(6000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OptumSamplingSweep)->Arg(1)->Arg(5)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
