// Shared setup for the figure-reproduction benches. Every bench prints the
// rows/series of one paper figure; the workload scale is reduced from the
// paper's ~6,000-host cluster to a laptop-sized cluster (the distributions
// driving each figure are scale-free, see DESIGN.md).
#ifndef OPTUM_BENCH_BENCH_COMMON_H_
#define OPTUM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "src/common/table_printer.h"
#include "src/core/offline_profiler.h"
#include "src/core/optum_scheduler.h"
#include "src/sched/baselines.h"
#include "src/sim/simulator.h"
#include "src/stats/cdf.h"
#include "src/trace/workload_generator.h"

namespace optum::bench {

// Standard bench scale: 64 hosts, one simulated day. Figures that need
// longer horizons or more hosts override locally.
inline WorkloadConfig DefaultWorkloadConfig(int hosts = 64, Tick horizon = kTicksPerDay) {
  WorkloadConfig config;
  config.num_hosts = hosts;
  config.horizon = horizon;
  config.seed = 42;
  return config;
}

inline SimConfig DefaultSimConfig() {
  SimConfig config;
  config.pod_usage_period = 5;
  config.node_usage_period = 2;
  config.max_attempts_per_tick = 1500;
  return config;
}

// The production-like reference scheduler (paper: "original Alibaba
// unified scheduler").
inline AlibabaBaseline MakeReferenceScheduler() { return AlibabaBaseline{}; }

// Profiles Optum from a reference-scheduler trace (paper trains on the
// first seven days; benches profile on the first simulated day).
inline core::OptumProfiles BuildProfiles(const TraceBundle& trace,
                                         size_t max_train_samples = 1500) {
  core::OfflineProfilerConfig config;
  config.max_train_samples = max_train_samples;
  return core::OfflineProfiler(config).BuildProfiles(trace);
}

inline void PrintFigureHeader(const std::string& figure, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("================================================================\n");
}

// Prints a CDF as a quantile table row set.
inline void PrintCdfRow(TablePrinter& table, const std::string& label,
                        const EmpiricalCdf& cdf, const std::vector<double>& quantiles,
                        int precision = 4) {
  std::vector<std::string> row{label};
  for (double q : quantiles) {
    row.push_back(cdf.empty() ? "-" : FormatDouble(cdf.ValueAtPercentile(q), precision));
  }
  table.AddRow(std::move(row));
}

inline std::vector<std::string> QuantileHeaders(const std::string& first,
                                                const std::vector<double>& quantiles) {
  std::vector<std::string> headers{first};
  for (double q : quantiles) {
    headers.push_back("p" + FormatDouble(q, 4));
  }
  return headers;
}

}  // namespace optum::bench

#endif  // OPTUM_BENCH_BENCH_COMMON_H_
