// Reproduces paper Fig. 13-16: per-application correlations between pod
// performance and OS-level metrics.
//   Fig. 13: pod RT vs CPU-PSI windows / utilizations / memory PSI.
//   Fig. 14: pod QPS vs PSI.
//   Fig. 15: PSI vs host CPU utilization and pod CPU utilization.
//   Fig. 16: BE pod completion time vs pod/node utilizations.
#include <unordered_map>

#include "bench/bench_common.h"
#include "src/stats/descriptive.h"

using namespace optum;

namespace {

struct Series {
  std::vector<double> rt, qps, psi10, psi60, psi300, mem_psi;
  std::vector<double> pod_cpu_util, host_cpu_util, host_mem_util;
};

void PrintCorrelationRow(TablePrinter& table, const std::string& label,
                         EmpiricalCdf& cdf) {
  cdf.Finalize();
  if (cdf.empty()) {
    table.AddRow({label, "-", "-", "-", "-"});
    return;
  }
  table.AddRow({label, FormatDouble(cdf.ValueAtPercentile(25), 3),
                FormatDouble(cdf.ValueAtPercentile(50), 3),
                FormatDouble(cdf.ValueAtPercentile(75), 3),
                FormatDouble(1.0 - cdf.FractionAtOrBelow(0.5), 3)});
}

}  // namespace

int main() {
  bench::PrintFigureHeader("Fig. 13-16", "Performance vs OS-level metric correlations");

  const Workload workload =
      WorkloadGenerator(bench::DefaultWorkloadConfig(64, kTicksPerDay)).Generate();
  AlibabaBaseline scheduler = bench::MakeReferenceScheduler();
  SimConfig sim_config = bench::DefaultSimConfig();
  sim_config.pod_usage_period = 4;
  sim_config.node_usage_period = 4;
  const SimResult result = Simulator(workload, sim_config, scheduler).Run();

  std::vector<AppId> app_of(workload.pods.size());
  std::vector<SloClass> slo_of(workload.pods.size());
  std::vector<double> cpu_request(workload.pods.size(), 1.0);
  for (const PodSpec& pod : workload.pods) {
    app_of[static_cast<size_t>(pod.id)] = pod.app;
    slo_of[static_cast<size_t>(pod.id)] = pod.slo;
    cpu_request[static_cast<size_t>(pod.id)] = pod.request.cpu;
  }

  // Host usage lookup.
  std::unordered_map<uint64_t, Resources> host_usage;
  for (const auto& rec : result.trace.node_usage) {
    host_usage[(static_cast<uint64_t>(rec.machine_id) << 40) |
               static_cast<uint64_t>(rec.collect_tick)] =
        Resources{rec.cpu_usage, rec.mem_usage};
  }

  // Per-pod time series (the paper correlates each pod's metrics over time,
  // then reports the per-application average of the correlations).
  std::unordered_map<PodId, Series> pod_series;
  for (const auto& rec : result.trace.pod_usage) {
    const size_t id = static_cast<size_t>(rec.pod_id);
    if (!IsLatencySensitive(slo_of[id]) || rec.response_time <= 0) {
      continue;
    }
    const auto host_it = host_usage.find((static_cast<uint64_t>(rec.host) << 40) |
                                         static_cast<uint64_t>(rec.collect_tick));
    if (host_it == host_usage.end()) {
      continue;
    }
    Series& s = pod_series[rec.pod_id];
    s.rt.push_back(rec.response_time);
    s.qps.push_back(rec.qps);
    s.psi10.push_back(rec.cpu_psi_10);
    s.psi60.push_back(rec.cpu_psi_60);
    s.psi300.push_back(rec.cpu_psi_300);
    s.mem_psi.push_back(rec.mem_psi_some_60);
    s.pod_cpu_util.push_back(rec.cpu_usage / cpu_request[id]);
    s.host_cpu_util.push_back(host_it->second.cpu);
    s.host_mem_util.push_back(host_it->second.mem);
  }

  // Fig. 13 + 14 + 15: per-pod correlations averaged per application, then
  // the distribution across applications.
  struct AppCorrAcc {
    double rt_psi10 = 0, rt_psi60 = 0, rt_psi300 = 0, rt_pod = 0, rt_host = 0,
           rt_mem = 0, qps_psi = 0, psi_host = 0, psi_pod = 0;
    int n = 0;
  };
  std::unordered_map<AppId, AppCorrAcc> app_acc;
  for (const auto& [pod_id, s] : pod_series) {
    if (s.rt.size() < 40) {
      continue;
    }
    AppCorrAcc& acc = app_acc[app_of[static_cast<size_t>(pod_id)]];
    acc.rt_psi10 += PearsonCorrelation(s.rt, s.psi10);
    acc.rt_psi60 += PearsonCorrelation(s.rt, s.psi60);
    acc.rt_psi300 += PearsonCorrelation(s.rt, s.psi300);
    acc.rt_pod += PearsonCorrelation(s.rt, s.pod_cpu_util);
    acc.rt_host += PearsonCorrelation(s.rt, s.host_cpu_util);
    acc.rt_mem += PearsonCorrelation(s.rt, s.mem_psi);
    acc.qps_psi += PearsonCorrelation(s.qps, s.psi60);
    acc.psi_host += PearsonCorrelation(s.psi60, s.host_cpu_util);
    acc.psi_pod += PearsonCorrelation(s.psi60, s.pod_cpu_util);
    ++acc.n;
  }
  EmpiricalCdf rt_psi10, rt_psi60, rt_psi300, rt_pod_util, rt_host_util, rt_mem_psi;
  EmpiricalCdf qps_psi60, psi_host_util, psi_pod_util;
  for (const auto& [app_id, acc] : app_acc) {
    if (acc.n < 3) {
      continue;
    }
    const double n = acc.n;
    rt_psi10.Add(acc.rt_psi10 / n);
    rt_psi60.Add(acc.rt_psi60 / n);
    rt_psi300.Add(acc.rt_psi300 / n);
    rt_pod_util.Add(acc.rt_pod / n);
    rt_host_util.Add(acc.rt_host / n);
    rt_mem_psi.Add(acc.rt_mem / n);
    qps_psi60.Add(acc.qps_psi / n);
    psi_host_util.Add(acc.psi_host / n);
    psi_pod_util.Add(acc.psi_pod / n);
  }

  std::printf("Fig. 13 — correlation of pod RT with OS metrics (across LS apps)\n");
  TablePrinter fig13({"metric", "p25", "median", "p75", "P(corr>0.5)"});
  PrintCorrelationRow(fig13, "CPU PSI 10", rt_psi10);
  PrintCorrelationRow(fig13, "CPU PSI 60", rt_psi60);
  PrintCorrelationRow(fig13, "CPU PSI 300", rt_psi300);
  PrintCorrelationRow(fig13, "Pod CPU util", rt_pod_util);
  PrintCorrelationRow(fig13, "Host CPU util", rt_host_util);
  PrintCorrelationRow(fig13, "Mem PSI 60", rt_mem_psi);
  fig13.Print();
  std::printf("Shape check: CPU PSI correlates with RT far more than raw utilizations;\n"
              "memory PSI shows little correlation.\n\n");

  std::printf("Fig. 14 — correlation of pod QPS with CPU PSI 60\n");
  TablePrinter fig14({"metric", "p25", "median", "p75", "P(corr>0.5)"});
  PrintCorrelationRow(fig14, "QPS vs PSI 60", qps_psi60);
  fig14.Print();
  std::printf("Shape check: positive for most applications (paper: >50%% of apps).\n\n");

  std::printf("Fig. 15 — correlation of CPU PSI 60 with utilizations\n");
  TablePrinter fig15({"metric", "p25", "median", "p75", "P(corr>0.5)"});
  PrintCorrelationRow(fig15, "PSI vs host CPU util", psi_host_util);
  PrintCorrelationRow(fig15, "PSI vs pod CPU util", psi_pod_util);
  fig15.Print();
  std::printf("Shape check: strong positive correlation with host CPU utilization.\n\n");

  // Fig. 16: BE completion time vs utilizations, across BE apps.
  struct BeAgg {
    double max_pod_cpu = 0, max_host_cpu = 0, max_host_mem = 0;
    int n = 0;
  };
  std::unordered_map<PodId, BeAgg> be_pods;
  for (const auto& rec : result.trace.pod_usage) {
    const size_t id = static_cast<size_t>(rec.pod_id);
    if (slo_of[id] != SloClass::kBe) {
      continue;
    }
    const auto host_it = host_usage.find((static_cast<uint64_t>(rec.host) << 40) |
                                         static_cast<uint64_t>(rec.collect_tick));
    if (host_it == host_usage.end()) {
      continue;
    }
    BeAgg& agg = be_pods[rec.pod_id];
    agg.max_pod_cpu = std::max(agg.max_pod_cpu, rec.cpu_usage / cpu_request[id]);
    agg.max_host_cpu = std::max(agg.max_host_cpu, host_it->second.cpu);
    agg.max_host_mem = std::max(agg.max_host_mem, host_it->second.mem);
    ++agg.n;
  }
  std::unordered_map<AppId, std::vector<std::array<double, 4>>> be_apps;
  for (const auto& rec : result.trace.lifecycles) {
    if (rec.slo != SloClass::kBe || rec.finish_tick < 0) {
      continue;
    }
    const auto it = be_pods.find(rec.pod_id);
    if (it == be_pods.end() || it->second.n == 0) {
      continue;
    }
    be_apps[rec.app_id].push_back({rec.actual_completion_ticks, it->second.max_pod_cpu,
                                   it->second.max_host_cpu, it->second.max_host_mem});
  }
  EmpiricalCdf ct_pod_cpu, ct_host_cpu, ct_host_mem;
  for (const auto& [app_id, rows] : be_apps) {
    if (rows.size() < 30) {
      continue;
    }
    std::vector<double> ct, pod_cpu, host_cpu, host_mem;
    for (const auto& r : rows) {
      ct.push_back(r[0]);
      pod_cpu.push_back(r[1]);
      host_cpu.push_back(r[2]);
      host_mem.push_back(r[3]);
    }
    ct_pod_cpu.Add(PearsonCorrelation(ct, pod_cpu));
    ct_host_cpu.Add(PearsonCorrelation(ct, host_cpu));
    ct_host_mem.Add(PearsonCorrelation(ct, host_mem));
  }
  std::printf("Fig. 16 — correlation of BE completion time with utilizations\n");
  TablePrinter fig16({"metric", "p25", "median", "p75", "P(corr>0.5)"});
  PrintCorrelationRow(fig16, "CT vs node CPU util", ct_host_cpu);
  PrintCorrelationRow(fig16, "CT vs node mem util", ct_host_mem);
  PrintCorrelationRow(fig16, "CT vs pod CPU util", ct_pod_cpu);
  fig16.Print();
  std::printf("Shape check: node CPU utilization is the strongest driver of BE\n"
              "completion time (paper: corr > 0.5 for >75%% of BE apps).\n");
  return 0;
}
