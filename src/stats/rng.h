// Deterministic, splittable random number generation (xoshiro256**).
//
// Every stochastic component in the repository draws from an explicitly
// seeded Rng so that workload generation, simulation, and model training are
// bit-reproducible across runs — a requirement for trace-driven evaluation.
#ifndef OPTUM_SRC_STATS_RNG_H_
#define OPTUM_SRC_STATS_RNG_H_

#include <cstdint>

namespace optum {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (cached pair).
  double NextGaussian();

  // Gaussian with the given mean/stddev.
  double Gaussian(double mean, double stddev);

  // Exponential with the given rate (lambda > 0).
  double Exponential(double rate);

  // Lognormal: exp(Gaussian(mu, sigma)).
  double LogNormal(double mu, double sigma);

  // Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed; used for
  // pod waiting times and arrival burst sizes per paper §3.1.3).
  double Pareto(double x_m, double alpha);

  // Bernoulli trial.
  bool Bernoulli(double p);

  // Derives an independent child stream; deterministic in (state, salt).
  Rng Split(uint64_t salt);

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace optum

#endif  // OPTUM_SRC_STATS_RNG_H_
