// Descriptive statistics used throughout the characterization benches:
// mean, standard deviation, coefficient of variation (Fig. 12), percentiles
// (Resource Central's p99), and Pearson/Spearman correlation (Fig. 13-16).
#ifndef OPTUM_SRC_STATS_DESCRIPTIVE_H_
#define OPTUM_SRC_STATS_DESCRIPTIVE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace optum {

double Mean(std::span<const double> xs);

// Population standard deviation (divides by n). Returns 0 for n < 2.
double StdDev(std::span<const double> xs);

// Coefficient of variation = stddev / mean; 0 when the mean is 0.
double CoefficientOfVariation(std::span<const double> xs);

// Linear-interpolated percentile; q in [0, 100]. xs need not be sorted.
double Percentile(std::span<const double> xs, double q);

// As above but for pre-sorted input (no copy).
double PercentileSorted(std::span<const double> sorted, double q);

double Min(std::span<const double> xs);
double Max(std::span<const double> xs);

// Pearson product-moment correlation; 0 when either side is constant.
double PearsonCorrelation(std::span<const double> xs, std::span<const double> ys);

// Spearman rank correlation (average ranks for ties).
double SpearmanCorrelation(std::span<const double> xs, std::span<const double> ys);

// Fractional ranks (1-based, ties averaged), helper for Spearman.
std::vector<double> FractionalRanks(std::span<const double> xs);

// Welford online accumulator for streaming mean/variance/extrema.
class OnlineStats {
 public:
  void Add(double x);
  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0; }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace optum

#endif  // OPTUM_SRC_STATS_DESCRIPTIVE_H_
