// Temporal load patterns. LS application QPS in the trace shows a strong
// diurnal period driven by customer activity (paper Fig. 3b); BE pressure
// moves opposite to LS utilization (Fig. 4a). These generators produce
// those shapes deterministically as functions of the simulation tick.
#ifndef OPTUM_SRC_STATS_PATTERNS_H_
#define OPTUM_SRC_STATS_PATTERNS_H_

#include "src/common/types.h"

namespace optum {

// Smooth diurnal multiplier in [floor, 1]: peaks once per day, with a
// per-entity phase shift so applications do not peak simultaneously.
class DiurnalPattern {
 public:
  DiurnalPattern(double floor, double phase_fraction);

  // Multiplier at the given tick.
  double At(Tick t) const;

  double floor() const { return floor_; }

 private:
  double floor_;
  double phase_radians_;
};

// Anti-diurnal pattern: high where the diurnal one is low (valley filling,
// paper Implication 1). Equivalent to a diurnal pattern shifted by half a
// day, exposed separately for readability at call sites.
class AntiDiurnalPattern {
 public:
  AntiDiurnalPattern(double floor, double phase_fraction);
  double At(Tick t) const;

 private:
  DiurnalPattern shifted_;
};

}  // namespace optum

#endif  // OPTUM_SRC_STATS_PATTERNS_H_
