#include "src/stats/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace optum {
namespace {

// SplitMix64, used to expand the seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) {
    s = SplitMix64(x);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::NextBelow(uint64_t n) {
  OPTUM_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  OPTUM_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) { return mean + stddev * NextGaussian(); }

double Rng::Exponential(double rate) {
  OPTUM_CHECK_GT(rate, 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Gaussian(mu, sigma)); }

double Rng::Pareto(double x_m, double alpha) {
  OPTUM_CHECK_GT(x_m, 0.0);
  OPTUM_CHECK_GT(alpha, 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Split(uint64_t salt) {
  const uint64_t child_seed = NextU64() ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng(child_seed);
}

}  // namespace optum
