// Empirical CDFs. Most of the paper's figures are CDF plots; benches use
// this type to print the same series (value at chosen quantiles, or the
// cumulative fraction at chosen values).
#ifndef OPTUM_SRC_STATS_CDF_H_
#define OPTUM_SRC_STATS_CDF_H_

#include <span>
#include <string>
#include <vector>

namespace optum {

class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  void Add(double x);
  // Must be called after the last Add and before queries; idempotent.
  void Finalize();

  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }

  // P(X <= x).
  double FractionAtOrBelow(double x) const;

  // Inverse CDF; q in [0, 100].
  double ValueAtPercentile(double q) const;

  double min() const;
  double max() const;

  // Prints "q%  value" rows for the provided quantiles.
  std::string Summary(std::span<const double> quantiles) const;

  const std::vector<double>& sorted_samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  bool finalized_ = false;
};

// Standard quantile grid used by bench output.
std::vector<double> DefaultQuantiles();

}  // namespace optum

#endif  // OPTUM_SRC_STATS_CDF_H_
