#include "src/stats/cdf.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"
#include "src/stats/descriptive.h"

namespace optum {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : samples_(std::move(samples)) {
  Finalize();
}

void EmpiricalCdf::Add(double x) {
  samples_.push_back(x);
  finalized_ = false;
}

void EmpiricalCdf::Finalize() {
  if (!finalized_) {
    std::sort(samples_.begin(), samples_.end());
    finalized_ = true;
  }
}

double EmpiricalCdf::FractionAtOrBelow(double x) const {
  OPTUM_CHECK_MSG(finalized_, "call Finalize() first");
  if (samples_.empty()) {
    return 0.0;
  }
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double EmpiricalCdf::ValueAtPercentile(double q) const {
  OPTUM_CHECK_MSG(finalized_, "call Finalize() first");
  return PercentileSorted(samples_, q);
}

double EmpiricalCdf::min() const {
  OPTUM_CHECK(finalized_ && !samples_.empty());
  return samples_.front();
}

double EmpiricalCdf::max() const {
  OPTUM_CHECK(finalized_ && !samples_.empty());
  return samples_.back();
}

std::string EmpiricalCdf::Summary(std::span<const double> quantiles) const {
  std::string out;
  char buf[64];
  for (double q : quantiles) {
    std::snprintf(buf, sizeof(buf), "  p%-5.4g %.6g\n", q, ValueAtPercentile(q));
    out += buf;
  }
  return out;
}

std::vector<double> DefaultQuantiles() { return {1, 5, 10, 25, 50, 75, 90, 95, 99, 99.9}; }

}  // namespace optum
