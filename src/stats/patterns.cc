#include "src/stats/patterns.h"

#include <cmath>

#include "src/common/check.h"

namespace optum {

DiurnalPattern::DiurnalPattern(double floor, double phase_fraction)
    : floor_(floor), phase_radians_(phase_fraction * 2.0 * M_PI) {
  OPTUM_CHECK(floor >= 0.0 && floor <= 1.0);
}

double DiurnalPattern::At(Tick t) const {
  const double day_fraction =
      static_cast<double>(t % kTicksPerDay) / static_cast<double>(kTicksPerDay);
  // Raised cosine: 1 at peak, `floor_` at trough.
  const double wave = 0.5 * (1.0 + std::cos(2.0 * M_PI * day_fraction + phase_radians_));
  return floor_ + (1.0 - floor_) * wave;
}

AntiDiurnalPattern::AntiDiurnalPattern(double floor, double phase_fraction)
    : shifted_(floor, phase_fraction + 0.5) {}

double AntiDiurnalPattern::At(Tick t) const { return shifted_.At(t); }

}  // namespace optum
