#include "src/stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.h"

namespace optum {

double Mean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) {
    acc += (x - m) * (x - m);
  }
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double CoefficientOfVariation(std::span<const double> xs) {
  const double m = Mean(xs);
  if (m == 0.0) {
    return 0.0;
  }
  return StdDev(xs) / std::fabs(m);
}

double PercentileSorted(std::span<const double> sorted, double q) {
  OPTUM_CHECK(!sorted.empty());
  OPTUM_CHECK(q >= 0.0 && q <= 100.0);
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Percentile(std::span<const double> xs, double q) {
  OPTUM_CHECK(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return PercentileSorted(sorted, q);
}

double Min(std::span<const double> xs) {
  OPTUM_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  OPTUM_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double PearsonCorrelation(std::span<const double> xs, std::span<const double> ys) {
  OPTUM_CHECK_EQ(xs.size(), ys.size());
  if (xs.size() < 2) {
    return 0.0;
  }
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> FractionalRanks(std::span<const double> xs) {
  const size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) {
      ++j;
    }
    // Average rank for the tie group [i, j].
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) {
      ranks[order[k]] = avg_rank;
    }
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(std::span<const double> xs, std::span<const double> ys) {
  OPTUM_CHECK_EQ(xs.size(), ys.size());
  if (xs.size() < 2) {
    return 0.0;
  }
  const std::vector<double> rx = FractionalRanks(xs);
  const std::vector<double> ry = FractionalRanks(ys);
  return PearsonCorrelation(rx, ry);
}

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

}  // namespace optum
