#include "src/predict/predictor_eval.h"

#include <algorithm>

#include "src/common/check.h"

namespace optum {

PeakOracle::PeakOracle(std::vector<std::vector<double>> usage, Tick period)
    : usage_(std::move(usage)), period_(period) {
  OPTUM_CHECK_GT(period_, 0);
}

double PeakOracle::PeakAfter(HostId host, Tick tick, Tick window) const {
  if (host < 0 || static_cast<size_t>(host) >= usage_.size()) {
    return -1.0;
  }
  const auto& series = usage_[static_cast<size_t>(host)];
  const size_t begin = static_cast<size_t>(tick / period_) + 1;
  const size_t end = static_cast<size_t>((tick + window) / period_) + 1;
  if (begin >= series.size()) {
    return -1.0;
  }
  double peak = 0.0;
  for (size_t i = begin; i < std::min(end, series.size()); ++i) {
    peak = std::max(peak, series[i]);
  }
  return peak;
}

PredictorErrorSummary ScorePredictions(const std::string& name,
                                       const std::vector<PredictionSample>& samples,
                                       const PeakOracle& oracle, Tick window) {
  PredictorErrorSummary out;
  out.predictor = name;
  int64_t under_total = 0, under_below_10 = 0;
  for (const auto& s : samples) {
    const double truth = oracle.PeakAfter(s.host, s.tick, window);
    if (truth <= 1e-6) {
      continue;  // Idle or unknown host: relative error undefined.
    }
    const double error_pct = (s.predicted - truth) / truth * 100.0;
    if (error_pct >= 0.0) {
      out.over_errors.Add(error_pct);
      out.max_over = std::max(out.max_over, error_pct);
    } else {
      out.under_errors.Add(error_pct);
      out.max_under = std::min(out.max_under, error_pct);
      ++under_total;
      if (error_pct < -10.0) {
        ++under_below_10;
      }
    }
  }
  out.over_errors.Finalize();
  out.under_errors.Finalize();
  const int64_t total =
      static_cast<int64_t>(out.over_errors.size() + out.under_errors.size());
  out.frac_under_below_minus_10 =
      total > 0 ? static_cast<double>(under_below_10) / static_cast<double>(total) : 0.0;
  return out;
}

}  // namespace optum
