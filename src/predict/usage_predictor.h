// Host resource-usage predictors for over-commitment (paper §3.2.2).
// Each predictor estimates the future peak CPU usage of a host (in capacity
// units) from the host's current pods and history. The paper evaluates
// Borg Default, Resource Central, N-sigma, Max Predictor, and Optum's
// pairwise-ERO predictor (the last lives in src/core and implements this
// same interface).
#ifndef OPTUM_SRC_PREDICT_USAGE_PREDICTOR_H_
#define OPTUM_SRC_PREDICT_USAGE_PREDICTOR_H_

#include <memory>
#include <string>

#include "src/sim/cluster.h"

namespace optum {

class UsagePredictor {
 public:
  virtual ~UsagePredictor() = default;

  // Predicted peak CPU usage of the host (fraction-of-capacity * capacity
  // units, i.e. comparable with Host::usage.cpu).
  virtual double PredictHostCpu(const Host& host) const = 0;

  // Predicted peak memory usage; defaults to the sum of requests.
  virtual double PredictHostMem(const Host& host) const;

  virtual std::string name() const = 0;
};

// Borg Default [Borg; Bashir et al.]: lambda * sum(requests). lambda = 1.0
// is fully conservative; 0.9 is "widely used in many real systems".
class BorgDefaultPredictor : public UsagePredictor {
 public:
  explicit BorgDefaultPredictor(double lambda = 0.9) : lambda_(lambda) {}
  double PredictHostCpu(const Host& host) const override;
  std::string name() const override { return "BorgDefault"; }

 private:
  double lambda_;
};

// Resource Central [Cortez et al., SOSP'17]: sum of each pod's k-th
// percentile of observed usage (k = 99 by default).
class ResourceCentralPredictor : public UsagePredictor {
 public:
  explicit ResourceCentralPredictor(double percentile = 99.0)
      : percentile_(percentile) {}
  double PredictHostCpu(const Host& host) const override;
  std::string name() const override { return "ResourceCentral"; }

 private:
  double percentile_;
};

// N-sigma [Bashir et al., EuroSys'21]: mean + N * stddev of the host's
// total usage over the trailing window (N = 5 by default).
class NSigmaPredictor : public UsagePredictor {
 public:
  explicit NSigmaPredictor(double n = 5.0) : n_(n) {}
  double PredictHostCpu(const Host& host) const override;
  std::string name() const override { return "N-Sigma"; }

 private:
  double n_;
};

// Max Predictor [Bashir et al.]: max of the above three predictions.
class MaxPredictor : public UsagePredictor {
 public:
  MaxPredictor();
  double PredictHostCpu(const Host& host) const override;
  std::string name() const override { return "MaxPredictor"; }

 private:
  BorgDefaultPredictor borg_;
  ResourceCentralPredictor resource_central_;
  NSigmaPredictor n_sigma_;
};

}  // namespace optum

#endif  // OPTUM_SRC_PREDICT_USAGE_PREDICTOR_H_
