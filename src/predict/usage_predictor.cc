#include "src/predict/usage_predictor.h"

#include <algorithm>

namespace optum {

double UsagePredictor::PredictHostMem(const Host& host) const {
  return host.request_sum.mem;
}

double BorgDefaultPredictor::PredictHostCpu(const Host& host) const {
  return lambda_ * host.request_sum.cpu;
}

double ResourceCentralPredictor::PredictHostCpu(const Host& host) const {
  double acc = 0.0;
  for (const PodRuntime* pod : host.pods) {
    acc += pod->CpuUsagePercentile(percentile_);
  }
  return acc;
}

double NSigmaPredictor::PredictHostCpu(const Host& host) const {
  double mean = 0.0, stddev = 0.0;
  host.HistoryStats(&mean, &stddev);
  return (mean + n_ * stddev) * host.capacity.cpu;
}

MaxPredictor::MaxPredictor() : borg_(0.9), resource_central_(99.0), n_sigma_(5.0) {}

double MaxPredictor::PredictHostCpu(const Host& host) const {
  return std::max({borg_.PredictHostCpu(host), resource_central_.PredictHostCpu(host),
                   n_sigma_.PredictHostCpu(host)});
}

}  // namespace optum
