// Predictor accuracy evaluation (paper §3.2.2, Fig. 11): signed relative
// error between the predicted host peak usage and the realized peak over an
// evaluation window,  Error = (pred - truth) / truth.
#ifndef OPTUM_SRC_PREDICT_PREDICTOR_EVAL_H_
#define OPTUM_SRC_PREDICT_PREDICTOR_EVAL_H_

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/stats/cdf.h"

namespace optum {

struct PredictionSample {
  HostId host = kInvalidHostId;
  Tick tick = 0;
  double predicted = 0.0;
};

// Realized peak usage per host over (tick, tick + window] given the dense
// per-host usage series; hosts with zero realized usage are skipped.
class PeakOracle {
 public:
  // usage[h] is the usage series of host h sampled every `period` ticks.
  PeakOracle(std::vector<std::vector<double>> usage, Tick period);

  // Peak over the window, or a negative value when unavailable.
  double PeakAfter(HostId host, Tick tick, Tick window) const;

 private:
  std::vector<std::vector<double>> usage_;
  Tick period_;
};

struct PredictorErrorSummary {
  std::string predictor;
  EmpiricalCdf over_errors;   // Error > 0 samples (percent)
  EmpiricalCdf under_errors;  // Error < 0 samples (percent)
  double max_over = 0.0;
  double max_under = 0.0;  // most negative
  double frac_under_below_minus_10 = 0.0;
};

// Scores prediction samples against the oracle.
PredictorErrorSummary ScorePredictions(const std::string& name,
                                       const std::vector<PredictionSample>& samples,
                                       const PeakOracle& oracle, Tick window);

}  // namespace optum

#endif  // OPTUM_SRC_PREDICT_PREDICTOR_EVAL_H_
