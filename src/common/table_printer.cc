#include "src/common/table_printer.h"

#include <algorithm>

namespace optum {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

void TablePrinter::AddRow(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) {
    row.push_back(FormatDouble(c, precision));
  }
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(FILE* out) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::fprintf(out, "|");
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::fprintf(out, " %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  std::fprintf(out, "|");
  for (size_t c = 0; c < widths.size(); ++c) {
    for (size_t i = 0; i < widths[c] + 2; ++i) {
      std::fputc('-', out);
    }
    std::fprintf(out, "|");
  }
  std::fprintf(out, "\n");
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace optum
