#include "src/common/cli_options.h"

namespace optum::cli {

ObsOptions ParseObsOptions(const FlagParser& flags) {
  ObsOptions o;
  o.metrics_json = flags.GetString("metrics-json", "");
  o.span_log = flags.GetString("span-log", "");
  o.series_json = flags.GetString("series-json", "");
  o.series_ring = static_cast<size_t>(flags.GetInt("series-ring", 256));
  o.hotspot_log = flags.GetString("hotspot-log", "");
  o.slo_json = flags.GetString("slo-json", "");
  o.profile_json = flags.GetString("profile-json", "");
  o.profile_collapsed = flags.GetString("profile-collapsed", "");
  return o;
}

BurstOptions ParseBurstOptions(const FlagParser& flags) {
  BurstOptions b;
  b.amplitude = flags.GetDouble("burst-amplitude", 0.0);
  b.duration_rounds = flags.GetInt("burst-duration", 0);
  b.interval_rounds = flags.GetInt("burst-interval", 0);
  b.seed = GetSeed(flags, "burst-seed", 1031);
  b.offered_pods_per_sec = flags.GetDouble("burst-offered", 0.0);
  b.cpu_scale = flags.GetDouble("burst-cpu-scale", 3.0);
  return b;
}

uint64_t GetSeed(const FlagParser& flags, const std::string& name,
                 uint64_t def) {
  return static_cast<uint64_t>(
      flags.GetInt(name, static_cast<int64_t>(def)));
}

const char* ObsOptionsHelp() {
  return
      "  --metrics-json F export final counters/gauges/histograms to F\n"
      "  --span-log F     JSONL pod-lifecycle spans\n"
      "  --series-json F  JSONL per-tick gauge time series, streamed\n"
      "  --series-ring N  series ring-buffer capacity (default 256)\n"
      "  --hotspot-log F  JSONL host-hotspot episodes (optum.hotspot.v1)\n"
      "  --slo-json F     per-class SLO-violation seconds (optum.slo.v1)\n"
      "  --profile-json F JSONL phase/critical-path profile (optum.profile.v1)\n"
      "  --profile-collapsed F  collapsed stacks for flamegraph tooling\n";
}

const char* BurstOptionsHelp() {
  return
      "  --burst-amplitude A  anomaly-storm overlay: rate multiplier (off at 0)\n"
      "  --burst-duration D   storm length in ticks (rounds in serve_bench)\n"
      "  --burst-interval I   one storm per I-tick window (D <= I)\n"
      "  --burst-seed S       storm placement + pod-mix seed (default 1031)\n"
      "  --burst-offered P    overlay base rate, pods/sec (runsim only)\n"
      "  --burst-cpu-scale X  storm pods' CPU-anomaly factor (runsim only)\n";
}

}  // namespace optum::cli
