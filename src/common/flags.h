// Minimal command-line flag parsing for the CLI tools: --name=value and
// --name value forms, with typed accessors and an auto-generated usage
// string. Deliberately tiny — no registry globals, no abbreviations.
#ifndef OPTUM_SRC_COMMON_FLAGS_H_
#define OPTUM_SRC_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace optum {

class FlagParser {
 public:
  // Parses argv. Unrecognized tokens that do not start with "--" are kept
  // as positional arguments. Returns false on malformed input ("--" with
  // no name, or a value-less flag at the end used with --name value form
  // is treated as boolean true).
  bool Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  // Typed accessors with defaults; malformed numbers return the default.
  std::string GetString(const std::string& name, const std::string& def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  // Every value given for a repeatable flag, in argv order, with each value
  // additionally split on commas (`--col a --col b,c` → {a, b, c}). Empty
  // when the flag never appeared. The scalar accessors above keep their
  // last-occurrence-wins behavior.
  std::vector<std::string> GetStringList(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // All parsed flags, for diagnostics.
  const std::map<std::string, std::string>& flags() const { return flags_; }

 private:
  std::map<std::string, std::string> flags_;
  // (name, value) pairs in argv order, for repeatable flags.
  std::vector<std::pair<std::string, std::string>> ordered_;
  std::vector<std::string> positional_;
};

}  // namespace optum

#endif  // OPTUM_SRC_COMMON_FLAGS_H_
