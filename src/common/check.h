// Lightweight CHECK macros. Failures abort with file/line context; these are
// programmer-error assertions, not recoverable error handling, so they stay
// enabled in release builds (Core Guidelines I.6 / E.12 spirit: contracts
// that must not be silently violated in a scheduler controlling placement).
#ifndef OPTUM_SRC_COMMON_CHECK_H_
#define OPTUM_SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define OPTUM_CHECK(cond)                                                               \
  do {                                                                                  \
    if (!(cond)) {                                                                      \
      std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", #cond, __FILE__, __LINE__);   \
      std::abort();                                                                     \
    }                                                                                   \
  } while (0)

#define OPTUM_CHECK_MSG(cond, msg)                                                     \
  do {                                                                                  \
    if (!(cond)) {                                                                      \
      std::fprintf(stderr, "CHECK failed: %s (%s) at %s:%d\n", #cond, msg, __FILE__,    \
                   __LINE__);                                                           \
      std::abort();                                                                     \
    }                                                                                   \
  } while (0)

#define OPTUM_CHECK_GE(a, b) OPTUM_CHECK((a) >= (b))
#define OPTUM_CHECK_GT(a, b) OPTUM_CHECK((a) > (b))
#define OPTUM_CHECK_LE(a, b) OPTUM_CHECK((a) <= (b))
#define OPTUM_CHECK_LT(a, b) OPTUM_CHECK((a) < (b))
#define OPTUM_CHECK_EQ(a, b) OPTUM_CHECK((a) == (b))
#define OPTUM_CHECK_NE(a, b) OPTUM_CHECK((a) != (b))

#endif  // OPTUM_SRC_COMMON_CHECK_H_
