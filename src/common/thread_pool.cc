#include "src/common/thread_pool.h"

#include <atomic>

#include "src/common/check.h"

namespace optum {

ThreadPool::ThreadPool(size_t num_threads) {
  OPTUM_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    OPTUM_CHECK_MSG(!stopping_, "Submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const size_t shards = std::min(n, workers_.size() + 1);
  std::atomic<size_t> next{0};
  auto shard_body = [&] {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      fn(i);
    }
  };
  for (size_t s = 0; s + 1 < shards; ++s) {
    Submit(shard_body);
  }
  shard_body();  // The calling thread also works.
  Wait();
}

void ThreadPool::ParallelForLane(size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const size_t shards = std::min(n, num_lanes());
  std::atomic<size_t> next{0};
  auto shard_body = [&](size_t lane) {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      fn(lane, i);
    }
  };
  for (size_t lane = 1; lane < shards; ++lane) {
    Submit([&shard_body, lane] { shard_body(lane); });
  }
  shard_body(0);  // The calling thread also works, as lane 0.
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping_ and drained.
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace optum
