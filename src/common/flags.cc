#include "src/common/flags.h"

#include <cstdlib>

namespace optum {

bool FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    std::string body = token.substr(2);
    if (body.empty()) {
      return false;
    }
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // --name value form, unless the next token is another flag (then it is
    // a boolean switch).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
  return true;
}

bool FlagParser::Has(const std::string& name) const {
  return flags_.find(name) != flags_.end();
}

std::string FlagParser::GetString(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return def;
  }
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return end != it->second.c_str() && *end == '\0' ? static_cast<int64_t>(v) : def;
}

double FlagParser::GetDouble(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return def;
  }
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end != it->second.c_str() && *end == '\0' ? v : def;
}

bool FlagParser::GetBool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return def;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no") {
    return false;
  }
  return def;
}

}  // namespace optum
