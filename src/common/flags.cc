#include "src/common/flags.h"

#include <cstdlib>

namespace optum {

bool FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    std::string body = token.substr(2);
    if (body.empty()) {
      return false;
    }
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string name = body.substr(0, eq);
      std::string value = body.substr(eq + 1);
      flags_[name] = value;
      ordered_.emplace_back(std::move(name), std::move(value));
      continue;
    }
    // --name value form, unless the next token is another flag (then it is
    // a boolean switch).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
    ordered_.emplace_back(body, flags_[body]);
  }
  return true;
}

std::vector<std::string> FlagParser::GetStringList(const std::string& name) const {
  std::vector<std::string> values;
  for (const auto& [flag, value] : ordered_) {
    if (flag != name) {
      continue;
    }
    size_t start = 0;
    while (start <= value.size()) {
      const size_t comma = value.find(',', start);
      const size_t end = comma == std::string::npos ? value.size() : comma;
      if (end > start) {
        values.push_back(value.substr(start, end - start));
      }
      if (comma == std::string::npos) {
        break;
      }
      start = comma + 1;
    }
  }
  return values;
}

bool FlagParser::Has(const std::string& name) const {
  return flags_.find(name) != flags_.end();
}

std::string FlagParser::GetString(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return def;
  }
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return end != it->second.c_str() && *end == '\0' ? static_cast<int64_t>(v) : def;
}

double FlagParser::GetDouble(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return def;
  }
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end != it->second.c_str() && *end == '\0' ? v : def;
}

bool FlagParser::GetBool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return def;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no") {
    return false;
  }
  return def;
}

}  // namespace optum
