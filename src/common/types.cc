#include "src/common/types.h"

#include <cstdio>

namespace optum {

const char* ToString(SloClass slo) {
  switch (slo) {
    case SloClass::kBe:
      return "BE";
    case SloClass::kLs:
      return "LS";
    case SloClass::kLsr:
      return "LSR";
    case SloClass::kSystem:
      return "SYSTEM";
    case SloClass::kVmEnv:
      return "VMEnv";
    case SloClass::kUnknown:
      return "Unknown";
  }
  return "?";
}

std::string Resources::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{cpu=%.4f, mem=%.4f}", cpu, mem);
  return buf;
}

}  // namespace optum
