// Core value types shared across every Optum library.
//
// All resource quantities are normalized: a host has capacity 1.0 in each
// dimension, and pod requests/usages are fractions of that capacity. This
// mirrors the normalization applied by Alibaba's tracing system (paper §2.2).
#ifndef OPTUM_SRC_COMMON_TYPES_H_
#define OPTUM_SRC_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace optum {

// One simulation tick corresponds to the trace sampling interval of 30 s.
using Tick = int64_t;

inline constexpr Tick kTicksPerMinute = 2;
inline constexpr Tick kTicksPerHour = 120;
inline constexpr Tick kTicksPerDay = 2880;
inline constexpr double kSecondsPerTick = 30.0;

using PodId = int64_t;
using AppId = int32_t;
using HostId = int32_t;

inline constexpr PodId kInvalidPodId = -1;
inline constexpr AppId kInvalidAppId = -1;
inline constexpr HostId kInvalidHostId = -1;

// SLO classes observed in the trace (paper Fig. 2b). LSR binds CPU cores and
// may preempt BE; LS is long-running latency-sensitive; BE is batch.
enum class SloClass : uint8_t {
  kBe = 0,
  kLs = 1,
  kLsr = 2,
  kSystem = 3,
  kVmEnv = 4,
  kUnknown = 5,
};

inline constexpr int kNumSloClasses = 6;

const char* ToString(SloClass slo);

// Returns true for classes with explicit latency SLOs (LS and LSR). The
// characterization (§3.1.1) merges LS and LSR because their utilization
// patterns match; we follow that convention wherever the paper does.
inline bool IsLatencySensitive(SloClass slo) {
  return slo == SloClass::kLs || slo == SloClass::kLsr;
}

// Scheduling priority: larger value is served first (§3.1.3: LSR can preempt
// BE; LS has higher priority than BE).
inline int SchedulingPriority(SloClass slo) {
  switch (slo) {
    case SloClass::kLsr:
      return 3;
    case SloClass::kLs:
      return 2;
    case SloClass::kSystem:
      return 2;
    default:
      return 1;
  }
}

// A two-dimensional resource vector (CPU, memory). The paper's scheduler
// jointly optimizes both dimensions (§4.3.1), so the vector form appears
// throughout the API.
struct Resources {
  double cpu = 0.0;
  double mem = 0.0;

  constexpr Resources() = default;
  constexpr Resources(double cpu_in, double mem_in) : cpu(cpu_in), mem(mem_in) {}

  constexpr Resources operator+(const Resources& o) const { return {cpu + o.cpu, mem + o.mem}; }
  constexpr Resources operator-(const Resources& o) const { return {cpu - o.cpu, mem - o.mem}; }
  constexpr Resources operator*(double s) const { return {cpu * s, mem * s}; }
  Resources& operator+=(const Resources& o) {
    cpu += o.cpu;
    mem += o.mem;
    return *this;
  }
  Resources& operator-=(const Resources& o) {
    cpu -= o.cpu;
    mem -= o.mem;
    return *this;
  }
  constexpr bool operator==(const Resources& o) const = default;

  // Component-wise comparison used by feasibility checks: true iff both
  // dimensions fit within `capacity`.
  constexpr bool FitsWithin(const Resources& capacity) const {
    return cpu <= capacity.cpu && mem <= capacity.mem;
  }

  // Inner product; the alignment score of §3.2.1 is Dot(request, host_load).
  constexpr double Dot(const Resources& o) const { return cpu * o.cpu + mem * o.mem; }

  constexpr Resources Clamped(double lo, double hi) const {
    auto clamp = [lo, hi](double v) { return v < lo ? lo : (v > hi ? hi : v); };
    return {clamp(cpu), clamp(mem)};
  }

  constexpr Resources Max(const Resources& o) const {
    return {cpu > o.cpu ? cpu : o.cpu, mem > o.mem ? mem : o.mem};
  }

  std::string ToString() const;
};

inline constexpr Resources kZeroResources{0.0, 0.0};
inline constexpr Resources kUnitResources{1.0, 1.0};

}  // namespace optum

#endif  // OPTUM_SRC_COMMON_TYPES_H_
