// Fixed-size worker pool used by Optum's node selector ("all components of
// the Online Scheduler work in a multi-threaded mode", paper §4.3.4) and by
// random-forest training.
#ifndef OPTUM_SRC_COMMON_THREAD_POOL_H_
#define OPTUM_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace optum {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Maximum number of tasks a ParallelFor/ParallelForLane can run
  // concurrently: every worker plus the calling thread.
  size_t num_lanes() const { return workers_.size() + 1; }

  // Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  // Runs fn(i) for i in [0, n), partitioned across the pool, and waits for
  // completion. Safe to call with n == 0. The calling thread participates.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // As ParallelFor, but passes each invocation the identity of the task
  // shard executing it: fn(lane, i) with lane in [0, num_lanes()). Each lane
  // value is held by exactly one shard task at a time, so lane-indexed state
  // (e.g. per-lane cache shards) is never touched by two threads at once —
  // regardless of which worker the queue hands a shard to. Work is still
  // claimed dynamically, so which indices a lane processes is timing-
  // dependent; callers needing determinism must make per-index results
  // independent of lane assignment.
  void ParallelForLane(size_t n, const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace optum

#endif  // OPTUM_SRC_COMMON_THREAD_POOL_H_
