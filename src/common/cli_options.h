// Shared command-line option blocks for the CLI tools. runsim and
// serve_bench expose the same observability-sink flags (--metrics-json,
// --span-log, --series-json, --hotspot-log, --slo-json) and the same
// anomaly-storm overlay flags (--burst-*); each tool used to parse and
// document them separately, and the two help texts drifted. This header is
// the single source for both the parsing and the usage lines. The structs
// are plain values — this layer depends only on FlagParser, so the tools
// map fields into SimConfig / ServeConfig / ArrivalConfig themselves.
#ifndef OPTUM_SRC_COMMON_CLI_OPTIONS_H_
#define OPTUM_SRC_COMMON_CLI_OPTIONS_H_

#include <cstdint>
#include <string>

#include "src/common/flags.h"

namespace optum::cli {

// Observability outputs (DESIGN.md §9–§13). An empty path means that sink
// stays off; the tool owns opening the files and wiring obs::Sinks.
struct ObsOptions {
  std::string metrics_json;  // --metrics-json: final counters/gauges/histograms
  std::string span_log;      // --span-log: JSONL pod-lifecycle spans
  std::string series_json;   // --series-json: streamed per-tick gauge series
  size_t series_ring = 256;  // --series-ring: recorder ring capacity
  std::string hotspot_log;   // --hotspot-log: optum.hotspot.v1 episodes
  std::string slo_json;      // --slo-json: optum.slo.v1 violation seconds
  std::string profile_json;  // --profile-json: optum.profile.v1 phase profile
  std::string profile_collapsed;  // --profile-collapsed: flamegraph folded stacks

  // The round profiler is needed to produce either profile output.
  bool wants_profile() const {
    return !profile_json.empty() || !profile_collapsed.empty();
  }

  // A metric registry is needed when counters are exported or the series
  // recorder samples gauges.
  bool wants_metrics() const {
    return !metrics_json.empty() || !series_json.empty();
  }
  // The host-pressure monitor is needed to produce either pressure output.
  bool wants_pressure() const {
    return !hotspot_log.empty() || !slo_json.empty();
  }
};

// Anomaly-storm overlay on the arrival process (DESIGN.md §13). Field
// names mirror serve::ArrivalConfig's burst_* members.
struct BurstOptions {
  double amplitude = 0.0;       // --burst-amplitude: rate multiplier (off at 0)
  int64_t duration_rounds = 0;  // --burst-duration: storm length, ticks/rounds
  int64_t interval_rounds = 0;  // --burst-interval: one storm per window
  uint64_t seed = 1031;         // --burst-seed: storm placement + pod mix
  // Overlay shaping used by runsim's synthetic storm stream; serve_bench
  // ignores these (its storms modulate the service's own arrival process).
  double offered_pods_per_sec = 0.0;  // --burst-offered (0 = tool default)
  double cpu_scale = 3.0;             // --burst-cpu-scale
};

ObsOptions ParseObsOptions(const FlagParser& flags);
BurstOptions ParseBurstOptions(const FlagParser& flags);

// Unsigned seed accessor (FlagParser stores integers signed).
uint64_t GetSeed(const FlagParser& flags, const std::string& name,
                 uint64_t def);

// Usage-text blocks matching the tools' two-column help layout, one flag
// per line, newline-terminated. Print with "%s".
const char* ObsOptionsHelp();
const char* BurstOptionsHelp();

}  // namespace optum::cli

#endif  // OPTUM_SRC_COMMON_CLI_OPTIONS_H_
