// Plain-text table printer used by the bench harness to print the rows and
// series corresponding to each paper figure/table.
#ifndef OPTUM_SRC_COMMON_TABLE_PRINTER_H_
#define OPTUM_SRC_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace optum {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  // Convenience: formats doubles with the given precision.
  void AddRow(const std::vector<double>& cells, int precision = 4);

  // Renders the table to stdout with column alignment.
  void Print(FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double compactly ("%.*g" with sensible width).
std::string FormatDouble(double v, int precision = 4);

}  // namespace optum

#endif  // OPTUM_SRC_COMMON_TABLE_PRINTER_H_
