// Tracing Coordinator (paper Fig. 17, component ❶): collects OS-level and
// application-level metrics from all pods and hosts into a centralized
// store the Offline Profiler can train from. Here the store is a rolling
// in-memory TraceBundle bounded to a configurable window (the paper's
// profilers use "the running data of pods in the first seven days"; a
// deployed system re-profiles from a trailing window).
#ifndef OPTUM_SRC_CORE_TRACING_COORDINATOR_H_
#define OPTUM_SRC_CORE_TRACING_COORDINATOR_H_

#include <deque>
#include <unordered_map>
#include <vector>

#include "src/sim/cluster.h"
#include "src/trace/schema.h"

namespace optum::core {

struct TracingConfig {
  // Sampling cadences, matching the trace's 30 s OS-level interval by
  // default (1 tick = 30 s).
  Tick node_sample_period = 2;
  Tick pod_sample_period = 5;
  // Records older than this are evicted.
  Tick window = 8 * kTicksPerHour;
};

class TracingCoordinator {
 public:
  explicit TracingCoordinator(TracingConfig config = {});

  // Records the current cluster state; call once per tick (e.g. from the
  // simulator's on_tick_end hook).
  void OnTick(const ClusterState& cluster, Tick now);

  // Materializes the current window as a TraceBundle for profiling.
  // Pod metadata covers every pod seen in the window.
  TraceBundle Snapshot() const;

  size_t node_records() const { return node_usage_.size(); }
  size_t pod_records() const { return pod_usage_.size(); }
  size_t lifecycle_records() const { return lifecycles_.size(); }

 private:
  void Evict(Tick now);

  TracingConfig config_;
  std::deque<NodeUsageRecord> node_usage_;
  std::deque<PodUsageRecord> pod_usage_;
  std::deque<PodLifecycleRecord> lifecycles_;
  // Metadata of pods seen in the window (refreshed on every sample).
  std::unordered_map<PodId, PodMeta> pods_;
  std::unordered_map<PodId, Tick> pod_last_seen_;
  // Completion detection: pods present last tick but gone now.
  std::unordered_map<PodId, PodLifecycleRecord> running_;
  std::vector<NodeMeta> nodes_;
  Tick last_tick_ = -1;
};

}  // namespace optum::core

#endif  // OPTUM_SRC_CORE_TRACING_COORDINATOR_H_
