// Optum's Online Scheduler + Node Selector (paper §4.3.1/§4.3.4).
//
// For a newly submitted pod it samples a subset of hosts (POP-style
// partitioning [42], default fraction 0.05), predicts each candidate's
// post-placement utilization (Eq. 7-8) and total interference (Eq. 9-10),
// scores candidates with Eq. 11,
//     Score_h = (POC/CapC) * (POM/CapM) - w_o * sum RI_LS - w_b * sum RI_BE,
// and greedily picks the highest-scoring feasible host. Memory utilization
// per host is capped (default 0.8, §5.1) to avoid OOM cascades.
#ifndef OPTUM_SRC_CORE_OPTUM_SCHEDULER_H_
#define OPTUM_SRC_CORE_OPTUM_SCHEDULER_H_

#include <memory>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/interference_predictor.h"
#include "src/core/profiles.h"
#include "src/core/resource_usage_predictor.h"
#include "src/obs/decision_log.h"
#include "src/obs/metrics.h"
#include "src/obs/span_log.h"
#include "src/sim/placement_policy.h"
#include "src/stats/rng.h"

namespace optum::core {

// How Node Selector aggregates interference into the Eq. 11 score.
enum class ScoreMode {
  // Literal Eq. 11: absolute sum of RI over all pods on the candidate.
  kPaperAbsolute,
  // Greedy-exact form for the Eq. 6 objective: marginal RI increase for
  // existing pods plus the incoming pod's absolute RI (default).
  kMarginal,
};

struct OptumConfig {
  ScoreMode score_mode = ScoreMode::kMarginal;

  // Triple-wise usage prediction (§4.2.2 extension); requires profiles
  // built with OfflineProfilerConfig::enable_triple_ero for real triple
  // data (otherwise the predictor uses its pairwise fallback bound).
  bool use_triple_ero = false;

  // Objective weights for LS and BE interference (paper §5.1: 0.7 / 0.3).
  double omega_o = 0.7;
  double omega_b = 0.3;

  // Host sampling fraction for scalability (paper §4.3.4: 0.05).
  double sample_fraction = 0.05;
  size_t min_candidates = 32;

  // Incremental hot-path structures: the per-host baseline cache for usage
  // prediction (bit-identical to the uncached rescan; see
  // ResourceUsagePredictor) and the incrementally maintained Host::app_counts
  // histogram for interference prediction. Disable only for equivalence
  // testing and benchmark baselines (false = rescan/rebuild per candidate,
  // the pre-incremental behaviour).
  bool use_incremental_cache = true;

  // Per-host memory utilization cap (paper §5.1: 0.8).
  double mem_util_limit = 0.8;

  // Worker threads for candidate scoring; 0 scores on the calling thread.
  // Placements are bit-identical for every value: each thread-pool lane
  // scores against its own private prediction-cache shard, every cached
  // value is a pure function of its key, and the best-candidate reduction
  // runs serially in candidate order.
  size_t num_threads = 0;

  // Ticks between online ERO refreshes in ObserveColocation; 0 disables.
  Tick observe_period = 10;

  uint64_t seed = 97;
};

class OptumScheduler : public PlacementPolicy {
 public:
  // Takes ownership of the profiles produced by OfflineProfiler.
  OptumScheduler(OptumProfiles profiles, OptumConfig config = {});
  ~OptumScheduler() override;

  PlacementDecision Place(const PodSpec& pod, const AppProfile& app,
                          const ClusterState& cluster) override;
  std::string name() const override { return "Optum"; }

  // As Place(), but also returns the Eq. 11 score of the chosen host —
  // the Deployment Module uses it to resolve conflicts between parallel
  // schedulers (§4.4).
  PlacementDecision PlaceScored(const PodSpec& pod, const ClusterState& cluster,
                                double* best_score);

  // Online resource-usage profiling: records co-location observations from
  // the current cluster state into the ERO table (paper §4.2.2 keeps ERO
  // updated whenever observed peaks change; triples too when the scheduler
  // runs in triple-wise mode). Call from the simulator's on_tick_end hook.
  void ObserveColocation(const ClusterState& cluster, Tick now);

  // Full evaluation of one candidate host against one pod: the predicted
  // post-placement resources are computed once and reused for feasibility,
  // shortfall classification, and the Eq. 11 score.
  struct HostEvaluation {
    bool feasible = false;
    // Set for infeasible hosts: which resource dimension blocked placement
    // (both false when only anti-affinity blocked it).
    bool cpu_blocked = false;
    bool mem_blocked = false;
    double score = 0.0;  // valid only when feasible
    // Eq. 11 term breakdown, kept for the decision log (the values are
    // already in registers when the score is formed, so storing them costs
    // nothing measurable): score = cpu_util * mem_util - interference.
    double cpu_util = 0.0;
    double mem_util = 0.0;
    double interference = 0.0;
    // Prediction/slope-cache misses charged while scoring this candidate;
    // tracked only when a decision log is attached (0 otherwise).
    uint64_t cache_misses = 0;
  };
  // `lane` selects the private prediction-cache shard to use; parallel
  // scoring passes each worker's thread-pool lane, serial callers take the
  // default. The result is lane-independent (cached values are pure
  // functions of their keys).
  HostEvaluation EvaluateHost(const PodSpec& pod, const Host& host,
                              size_t lane = 0) const;

  // Scores a single candidate host (Eq. 11); exposed for tests/benches.
  // Returns false when the host is infeasible for the pod.
  bool ScoreHost(const PodSpec& pod, const Host& host, double* score) const;

  const OptumProfiles& profiles() const { return *profiles_; }
  OptumProfiles& mutable_profiles() { return *profiles_; }

  // Swaps in freshly trained profiles (background re-profiling, Fig. 17).
  // Prediction caches are invalidated; in-flight pointers stay valid
  // because the profiles object itself is reused.
  void ReplaceProfiles(OptumProfiles profiles);

  // Attaches the observability registry (nullptr detaches). Creates the
  // scheduler's metrics under `prefix`:
  //   <prefix>.sample_seconds / .score_seconds   phase histograms
  //   <prefix>.forest_eval_seconds               slope-cache-miss latency
  //   <prefix>.placements / .rejections          counters
  //   <prefix>.pred_cache_* / .slope_cache_* / .forest_evals
  //       gauges refreshed by a registered collector from the predictor's
  //       lane-merged CacheStats at every sample/export
  // `lane_base` is the registry shard this scheduler's serial-path updates
  // use; schedulers running concurrently (distributed shards) must use
  // distinct bases. A scheduler with its own scoring pool requires
  // lane_base == 0 and grows the registry to its pool's lane count.
  // Placements are unaffected: metrics never feed back into scoring.
  void AttachMetrics(obs::MetricRegistry* registry, size_t lane_base = 0,
                     const std::string& prefix = "optum");

  // Attaches the per-placement JSONL decision log (nullptr detaches). The
  // log is written on the serial reduction path of PlaceScored; distinct
  // schedulers must use distinct logs.
  void set_decision_log(obs::DecisionLog* log) { decision_log_ = log; }

  // Attaches the pod-lifecycle span log (nullptr detaches). PlaceScored
  // emits a sampled span (count = candidates drawn) and a scored span
  // (count = feasible candidates, score = best Eq. 11 score when any) per
  // pod, both on the serial reduction path — span output is bit-identical
  // for every num_threads. Distinct schedulers must use distinct logs.
  void set_span_log(obs::SpanLog* log) override { span_log_ = log; }

  const InterferencePredictor& interference_predictor() const {
    return interference_predictor_;
  }

  // Read-only view of the Eq. 6 usage model; PredictHost(host, nullptr)
  // gives the predicted-usage basis the feasibility gate evaluates, which
  // is also the utilization measure the pressure monitor samples.
  const ResourceUsagePredictor& usage_predictor() const {
    return usage_predictor_;
  }

 private:
  // Builds and appends the JSONL record for one PlaceScored outcome; runs
  // on the serial path after the best-candidate reduction.
  void LogDecision(const PodSpec& pod, const ClusterState& cluster,
                   const PlacementDecision& decision);

  std::unique_ptr<OptumProfiles> profiles_;
  OptumConfig config_;
  ResourceUsagePredictor usage_predictor_;
  InterferencePredictor interference_predictor_;
  std::unique_ptr<ThreadPool> pool_;
  Rng rng_;
  Tick last_observe_ = -1;

  // Per-scheduler scratch reused across PlaceScored calls (candidate
  // sampling working set, sampled candidates, per-candidate evaluations) so
  // the steady-state hot path allocates nothing.
  std::vector<HostId> sample_scratch_;
  std::vector<HostId> candidates_;
  std::vector<HostEvaluation> scored_;

  // Observability sinks — all nullable; disabled instrumentation costs one
  // branch per site (DESIGN.md §9).
  obs::MetricRegistry* metrics_ = nullptr;
  size_t metrics_lane_base_ = 0;
  obs::Histogram* sample_timer_ = nullptr;
  obs::Histogram* score_timer_ = nullptr;
  obs::Counter* placements_counter_ = nullptr;
  obs::Counter* rejections_counter_ = nullptr;
  obs::DecisionLog* decision_log_ = nullptr;
  obs::SpanLog* span_log_ = nullptr;
};

}  // namespace optum::core

#endif  // OPTUM_SRC_CORE_OPTUM_SCHEDULER_H_
