// Optum's Online Scheduler + Node Selector (paper §4.3.1/§4.3.4).
//
// For a newly submitted pod it samples a subset of hosts (POP-style
// partitioning [42], default fraction 0.05), predicts each candidate's
// post-placement utilization (Eq. 7-8) and total interference (Eq. 9-10),
// scores candidates with Eq. 11,
//     Score_h = (POC/CapC) * (POM/CapM) - w_o * sum RI_LS - w_b * sum RI_BE,
// and greedily picks the highest-scoring feasible host. Memory utilization
// per host is capped (default 0.8, §5.1) to avoid OOM cascades.
#ifndef OPTUM_SRC_CORE_OPTUM_SCHEDULER_H_
#define OPTUM_SRC_CORE_OPTUM_SCHEDULER_H_

#include <memory>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/interference_predictor.h"
#include "src/core/profiles.h"
#include "src/core/resource_usage_predictor.h"
#include "src/obs/decision_log.h"
#include "src/obs/metrics.h"
#include "src/obs/span_log.h"
#include "src/sim/placement_policy.h"
#include "src/stats/rng.h"

namespace optum::core {

// How Node Selector aggregates interference into the Eq. 11 score.
enum class ScoreMode {
  // Literal Eq. 11: absolute sum of RI over all pods on the candidate.
  kPaperAbsolute,
  // Greedy-exact form for the Eq. 6 objective: marginal RI increase for
  // existing pods plus the incoming pod's absolute RI (default).
  kMarginal,
};

struct OptumConfig {
  ScoreMode score_mode = ScoreMode::kMarginal;

  // Triple-wise usage prediction (§4.2.2 extension); requires profiles
  // built with OfflineProfilerConfig::enable_triple_ero for real triple
  // data (otherwise the predictor uses its pairwise fallback bound).
  bool use_triple_ero = false;

  // Objective weights for LS and BE interference (paper §5.1: 0.7 / 0.3).
  double omega_o = 0.7;
  double omega_b = 0.3;

  // Host sampling fraction for scalability (paper §4.3.4: 0.05).
  double sample_fraction = 0.05;
  size_t min_candidates = 32;

  // Incremental hot-path structures: the per-host baseline cache for usage
  // prediction (bit-identical to the uncached rescan; see
  // ResourceUsagePredictor) and the incrementally maintained Host::app_counts
  // histogram for interference prediction. Disable only for equivalence
  // testing and benchmark baselines (false = rescan/rebuild per candidate,
  // the pre-incremental behaviour).
  bool use_incremental_cache = true;

  // Per-host memory utilization cap (paper §5.1: 0.8).
  double mem_util_limit = 0.8;

  // Worker threads for candidate scoring; 0 scores on the calling thread.
  // Placements are bit-identical for every value: each thread-pool lane
  // scores against its own private prediction-cache shard, every cached
  // value is a pure function of its key, and the best-candidate reduction
  // runs serially in candidate order.
  size_t num_threads = 0;

  // Ticks between online ERO refreshes in ObserveColocation; 0 disables.
  Tick observe_period = 10;

  uint64_t seed = 97;
};

class OptumScheduler : public PlacementPolicy {
 public:
  // Takes ownership of the profiles produced by OfflineProfiler.
  OptumScheduler(OptumProfiles profiles, OptumConfig config = {});
  ~OptumScheduler() override;

  PlacementDecision Place(const PodSpec& pod, const AppProfile& app,
                          const ClusterState& cluster) override;
  std::string name() const override { return "Optum"; }

  // As Place(), but also returns the Eq. 11 score of the chosen host —
  // the Deployment Module uses it to resolve conflicts between parallel
  // schedulers (§4.4).
  PlacementDecision PlaceScored(const PodSpec& pod, const ClusterState& cluster,
                                double* best_score);

  // Online resource-usage profiling: records co-location observations from
  // the current cluster state into the ERO table (paper §4.2.2 keeps ERO
  // updated whenever observed peaks change; triples too when the scheduler
  // runs in triple-wise mode). Call from the simulator's on_tick_end hook.
  void ObserveColocation(const ClusterState& cluster, Tick now);

  // Full evaluation of one candidate host against one pod: the predicted
  // post-placement resources are computed once and reused for feasibility,
  // shortfall classification, and the Eq. 11 score.
  struct HostEvaluation {
    bool feasible = false;
    // Set for infeasible hosts: which resource dimension blocked placement
    // (both false when only anti-affinity blocked it).
    bool cpu_blocked = false;
    bool mem_blocked = false;
    double score = 0.0;  // valid only when feasible
    // Eq. 11 term breakdown, kept for the decision log (the values are
    // already in registers when the score is formed, so storing them costs
    // nothing measurable): score = cpu_util * mem_util - interference.
    double cpu_util = 0.0;
    double mem_util = 0.0;
    double interference = 0.0;
    // Prediction/slope-cache misses charged while scoring this candidate;
    // tracked only when a decision log is attached (0 otherwise).
    uint64_t cache_misses = 0;
  };
  // `lane` selects the private prediction-cache shard to use; parallel
  // scoring passes each worker's thread-pool lane, serial callers take the
  // default. The result is lane-independent (cached values are pure
  // functions of their keys).
  HostEvaluation EvaluateHost(const PodSpec& pod, const Host& host,
                              size_t lane = 0) const;

  // --- Speculative scoring (pipelined §4.4 rounds, DESIGN.md §12) ---
  //
  // The pipelined DistributedCoordinator scores a future conflict round's
  // head pod *before* the current round's winners commit. That is sound
  // because the two halves of PlaceScored have different dependencies:
  // candidate sampling depends only on (num_hosts, this scheduler's serial
  // sampling stream) — never on host contents — and each candidate's
  // evaluation is a pure function of (pod spec, host contents), with host
  // contents versioned by Host::change_epoch. BeginSpeculative therefore
  // draws the sample in exactly the order PlaceScored would have and stamps
  // every candidate with its change_epoch — an epoch-snapshotted view of
  // the host subset this decision reads. FinalizeSpeculative later
  // re-scores only the candidates whose epoch moved (hosts the intervening
  // commits touched), runs the standard serial reduction, and emits the
  // same spans/decision records PlaceScored would emit — so the returned
  // decision is bit-identical to calling PlaceScored at finalize time.
  struct SpeculativeScore {
    PodId pod = kInvalidPodId;
    std::vector<HostId> candidates;
    std::vector<uint64_t> epochs;  // change_epoch at speculation time
    std::vector<HostEvaluation> evals;

    void Clear() {
      pod = kInvalidPodId;
      candidates.clear();
      epochs.clear();
      evals.clear();
    }
  };

  // Samples and scores `pod` against the current cluster state into *out
  // (reusing its buffers). Advances the sampling stream exactly once, like
  // PlaceScored; emits no spans or decision records. Requires
  // speculation_supported().
  void BeginSpeculative(const PodSpec& pod, const ClusterState& cluster,
                        SpeculativeScore* out);

  // Validates *spec against the current cluster state (re-scoring epoch-
  // moved candidates), reduces, emits spans, and returns the decision —
  // bit-identical to PlaceScored(pod, cluster, best_score) called now.
  // `pod` must be the spec's pod.
  PlacementDecision FinalizeSpeculative(const PodSpec& pod,
                                        const ClusterState& cluster,
                                        SpeculativeScore* spec,
                                        double* best_score);

  // Speculation defers span emission to finalize time, which reproduces the
  // serial span stream exactly — but the decision log additionally tags
  // per-candidate cache-miss deltas that memoized evaluation would skew, so
  // a scheduler with a decision log attached declines to speculate (the
  // coordinator falls back to in-round PlaceScored, which stays
  // bit-identical and fully logged).
  bool speculation_supported() const { return decision_log_ == nullptr; }

  // Epoch-stamped evaluation memo statistics (speculative paths only; the
  // serial PlaceScored path never consults the memo).
  uint64_t eval_memo_hits() const { return memo_hits_; }
  uint64_t eval_memo_misses() const { return memo_misses_; }

  // Scores a single candidate host (Eq. 11); exposed for tests/benches.
  // Returns false when the host is infeasible for the pod.
  bool ScoreHost(const PodSpec& pod, const Host& host, double* score) const;

  const OptumProfiles& profiles() const { return *profiles_; }
  OptumProfiles& mutable_profiles() { return *profiles_; }

  // Swaps in freshly trained profiles (background re-profiling, Fig. 17).
  // Prediction caches are invalidated; in-flight pointers stay valid
  // because the profiles object itself is reused.
  void ReplaceProfiles(OptumProfiles profiles);

  // Unified sink attach (obs::Sinks contract): wires sinks.metrics,
  // sinks.span_log, and sinks.decision_log in one call; fields left nullptr
  // detach. The overload without lane/prefix attaches at lane_base 0 under
  // "optum".
  //
  //   * sinks.metrics — creates the scheduler's metrics under `prefix`:
  //       <prefix>.sample_seconds / .score_seconds   phase histograms
  //       <prefix>.forest_eval_seconds               slope-cache-miss latency
  //       <prefix>.placements / .rejections          counters
  //       <prefix>.pred_cache_* / .slope_cache_* / .forest_evals
  //           gauges refreshed by a registered collector from the
  //           predictor's lane-merged CacheStats at every sample/export
  //     `lane_base` is the registry shard this scheduler's serial-path
  //     updates use; schedulers running concurrently (distributed shards)
  //     must use distinct bases. A scheduler with its own scoring pool
  //     requires lane_base == 0 and grows the registry to its pool's lane
  //     count.
  //   * sinks.span_log — PlaceScored (and FinalizeSpeculative) emits a
  //     sampled span (count = candidates drawn) and a scored span (count =
  //     feasible candidates, score = best Eq. 11 score when any) per pod,
  //     both on the serial reduction path — span output is bit-identical
  //     for every num_threads. Distinct schedulers must use distinct logs.
  //   * sinks.decision_log — per-placement Eq. 11 JSONL records, written on
  //     the serial reduction path of PlaceScored; a scheduler with a
  //     decision log attached declines speculation (see
  //     speculation_supported()). Distinct schedulers must use distinct
  //     logs.
  // Placements are unaffected: sinks never feed back into scoring.
  void AttachSinks(const obs::Sinks& sinks) override {
    AttachSinks(sinks, /*lane_base=*/0, /*prefix=*/"optum");
  }
  void AttachSinks(const obs::Sinks& sinks, size_t lane_base,
                   const std::string& prefix);

  const InterferencePredictor& interference_predictor() const {
    return interference_predictor_;
  }

  // Read-only view of the Eq. 6 usage model; PredictHost(host, nullptr)
  // gives the predicted-usage basis the feasibility gate evaluates, which
  // is also the utilization measure the pressure monitor samples.
  const ResourceUsagePredictor& usage_predictor() const {
    return usage_predictor_;
  }

 private:
  // Builds and appends the JSONL record for one PlaceScored outcome; runs
  // on the serial path after the best-candidate reduction.
  void LogDecision(const PodSpec& pod, const ClusterState& cluster,
                   const PlacementDecision& decision);

  // --- Epoch-stamped evaluation memo (speculative paths only) ---
  //
  // Same-application pods carry identical specs apart from id/submit time,
  // and EvaluateHost reads neither — so within one service round many
  // (pod, host) evaluations are exact repeats of earlier ones against an
  // unchanged host. The memo is a flat direct-mapped table keyed on every
  // field the evaluation actually depends on: (host id, change_epoch, app,
  // slo, request, per-host affinity limit). A hit returns the stored
  // HostEvaluation, which is bit-identical to recomputing (EvaluateHost is
  // a pure function of the key; PR 2's lane-pure caches guarantee lane
  // independence). Entries whose host epoch moved simply stop matching and
  // are overwritten in place — the table needs no invalidation sweep.
  // Profile swaps (ReplaceProfiles / online ERO refresh) bump the
  // generation stamp, which retires every entry at once.
  // One cache line per entry: the probe loop is DRAM-latency-bound on the
  // multi-MiB table, so an entry that spans two lines doubles the traffic.
  // The memoized evaluation is reduced to the fields ReduceAndLog consumes
  // (feasibility flags + score); the Eq. 11 term breakdown exists only for
  // the decision log, and a decision log disables speculation entirely
  // (speculation_supported()), so no memo-served evaluation ever reaches it.
  struct alignas(64) MemoEntry {
    uint64_t epoch = 0;
    uint64_t ero_version = 0;
    double req_cpu = 0.0;
    double req_mem = 0.0;
    double score = 0.0;
    HostId host = -1;  // -1 = empty slot
    AppId app = kInvalidAppId;
    uint32_t generation = 0;
    int32_t max_pods_per_host = 0;
    SloClass slo = SloClass::kUnknown;
    bool feasible = false;
    bool cpu_blocked = false;
    bool mem_blocked = false;
  };
  static_assert(sizeof(MemoEntry) == 64, "memo entry must stay one line");

  // Scores candidates[i] for every i in [0, candidates.size()) into
  // evals/epochs through the memo, skipping indices where `skip` is set
  // (already valid). Memo probing and insertion run on the calling thread;
  // only the misses' EvaluateHost calls fan out to the scoring pool.
  void ScoreThroughMemo(const PodSpec& pod, const ClusterState& cluster,
                        const std::vector<HostId>& candidates,
                        const std::vector<uint8_t>* skip,
                        std::vector<uint64_t>* epochs,
                        std::vector<HostEvaluation>* evals);

  // Reduction + span emission shared by PlaceScored and FinalizeSpeculative.
  PlacementDecision ReduceAndLog(const PodSpec& pod, const ClusterState& cluster,
                                 const std::vector<HostId>& candidates,
                                 const std::vector<HostEvaluation>& evals,
                                 double* best_score, bool emit_decision_log);

  MemoEntry* MemoSlot(HostId host, AppId app);
  void EnsureMemo(size_t num_hosts);

  std::unique_ptr<OptumProfiles> profiles_;
  OptumConfig config_;
  ResourceUsagePredictor usage_predictor_;
  InterferencePredictor interference_predictor_;
  std::unique_ptr<ThreadPool> pool_;
  Rng rng_;
  Tick last_observe_ = -1;

  // Per-scheduler scratch reused across PlaceScored calls (candidate
  // sampling working set, sampled candidates, per-candidate evaluations) so
  // the steady-state hot path allocates nothing.
  std::vector<HostId> sample_scratch_;
  std::vector<HostId> candidates_;
  std::vector<HostEvaluation> scored_;

  // Evaluation memo (lazily sized on first speculative call) + scratch for
  // the miss indices of one ScoreThroughMemo pass.
  std::vector<MemoEntry> memo_;
  size_t memo_mask_ = 0;
  uint32_t memo_generation_ = 1;
  uint64_t memo_hits_ = 0;
  uint64_t memo_misses_ = 0;
  std::vector<uint32_t> memo_miss_scratch_;
  std::vector<uint8_t> memo_skip_scratch_;

  // Observability sinks — all nullable; disabled instrumentation costs one
  // branch per site (DESIGN.md §9).
  obs::MetricRegistry* metrics_ = nullptr;
  size_t metrics_lane_base_ = 0;
  obs::Histogram* sample_timer_ = nullptr;
  obs::Histogram* score_timer_ = nullptr;
  obs::Counter* placements_counter_ = nullptr;
  obs::Counter* rejections_counter_ = nullptr;
  obs::DecisionLog* decision_log_ = nullptr;
  obs::SpanLog* span_log_ = nullptr;
};

}  // namespace optum::core

#endif  // OPTUM_SRC_CORE_OPTUM_SCHEDULER_H_
