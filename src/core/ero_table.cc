#include "src/core/ero_table.h"

#include <algorithm>

namespace optum {

uint64_t EroTable::Key(AppId a, AppId b) {
  if (a > b) {
    std::swap(a, b);
  }
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(b));
}

void EroTable::Observe(AppId a, AppId b, double ratio) {
  ratio = std::clamp(ratio, 0.0, 1.0);
  auto [it, inserted] = table_.try_emplace(Key(a, b), ratio);
  if (!inserted && ratio > it->second) {
    it->second = ratio;
  } else if (!inserted) {
    return;  // No change: keep cached predictions valid.
  }
  ++version_;
}

double EroTable::Get(AppId a, AppId b) const {
  const auto it = table_.find(Key(a, b));
  return it == table_.end() ? 1.0 : it->second;
}

bool EroTable::Contains(AppId a, AppId b) const {
  return table_.find(Key(a, b)) != table_.end();
}

uint64_t EroTable::TripleKey(AppId a, AppId b, AppId c) {
  // Sort the three ids, then pack into 20-bit fields (app ids are dense and
  // far below 2^20 in any realistic deployment).
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  if (a > b) std::swap(a, b);
  constexpr uint64_t kMask = (1ULL << 20) - 1;
  return ((static_cast<uint64_t>(static_cast<uint32_t>(a)) & kMask) << 40) |
         ((static_cast<uint64_t>(static_cast<uint32_t>(b)) & kMask) << 20) |
         (static_cast<uint64_t>(static_cast<uint32_t>(c)) & kMask);
}

void EroTable::ObserveTriple(AppId a, AppId b, AppId c, double ratio) {
  ratio = std::clamp(ratio, 0.0, 1.0);
  auto [it, inserted] = triple_table_.try_emplace(TripleKey(a, b, c), ratio);
  if (!inserted && ratio > it->second) {
    it->second = ratio;
  } else if (!inserted) {
    return;
  }
  ++version_;
}

double EroTable::GetTriple(AppId a, AppId b, AppId c) const {
  const auto it = triple_table_.find(TripleKey(a, b, c));
  return it == triple_table_.end() ? -1.0 : it->second;
}

bool EroTable::ContainsTriple(AppId a, AppId b, AppId c) const {
  return triple_table_.find(TripleKey(a, b, c)) != triple_table_.end();
}

}  // namespace optum
