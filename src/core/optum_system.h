// OptumSystem: the complete Fig. 17 deployment in one object — Tracing
// Coordinator (❶) feeding a background Offline Profiler (❷❸) that
// periodically refreshes the Online Scheduler's (❹❺❻) profiles while it
// schedules. Use this when you want the paper's full closed loop; use
// OptumScheduler directly when you manage profiling yourself.
#ifndef OPTUM_SRC_CORE_OPTUM_SYSTEM_H_
#define OPTUM_SRC_CORE_OPTUM_SYSTEM_H_

#include <memory>

#include "src/core/offline_profiler.h"
#include "src/core/optum_scheduler.h"
#include "src/core/tracing_coordinator.h"

namespace optum::core {

struct OptumSystemConfig {
  OptumConfig scheduler;
  OfflineProfilerConfig profiler;
  TracingConfig tracing;
  // Ticks between background re-profiling passes; 0 disables (the system
  // then runs on whatever profiles it was constructed with, plus online
  // ERO refreshes).
  Tick reprofile_period = 4 * kTicksPerHour;
  // Skip re-profiling until this much data has been collected.
  Tick warmup = kTicksPerHour;
};

class OptumSystem : public PlacementPolicy {
 public:
  // Starts with empty profiles (fully conservative: ERO defaults to 1.0)
  // unless `bootstrap` profiles are provided.
  explicit OptumSystem(OptumSystemConfig config = {},
                       OptumProfiles bootstrap = OptumProfiles{});

  PlacementDecision Place(const PodSpec& pod, const AppProfile& app,
                          const ClusterState& cluster) override;
  std::string name() const override { return "OptumSystem"; }

  // Wire this into SimConfig::on_tick_end. Records tracing data, refreshes
  // ERO online, and re-trains profiles every reprofile_period ticks.
  void OnTickEnd(const ClusterState& cluster, Tick now);

  const OptumScheduler& scheduler() const { return *scheduler_; }
  const TracingCoordinator& coordinator() const { return coordinator_; }
  int64_t reprofile_count() const { return reprofiles_; }

 private:
  OptumSystemConfig config_;
  TracingCoordinator coordinator_;
  std::unique_ptr<OptumScheduler> scheduler_;
  Tick last_reprofile_ = -1;
  int64_t reprofiles_ = 0;
};

}  // namespace optum::core

#endif  // OPTUM_SRC_CORE_OPTUM_SYSTEM_H_
