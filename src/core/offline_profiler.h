// Offline Profiler (paper §4.2, components 2-3 of Fig. 17): builds the
// pairwise ERO table (Resource Usage Profiler) and per-application
// interference models (Interference Profiler) from trace data.
#ifndef OPTUM_SRC_CORE_OFFLINE_PROFILER_H_
#define OPTUM_SRC_CORE_OFFLINE_PROFILER_H_

#include <unordered_map>
#include <vector>

#include "src/core/profiles.h"
#include "src/ml/dataset.h"
#include "src/trace/schema.h"

namespace optum::core {

struct OfflineProfilerConfig {
  // Model family and hyperparameters for interference profiles; the paper
  // selects Random Forest after comparing LR/Ridge/SVR/MLP (Fig. 18). The
  // spec's seed is ignored — training seeds derive from `seed` below so
  // every model gets an independent stream.
  ml::RegressorSpec model;

  // Discretization buckets for PSI and completion time (paper §5.2: 25).
  size_t num_buckets = 25;

  // Minimum training samples before an application gets a model.
  size_t min_samples = 40;

  // Memory stability gate: apps whose per-pod mean memory utilization has
  // CoV <= this use max utilization as their memory profile; others get a
  // fully conservative profile of 1.0 (paper §4.2.2: 0.01).
  double mem_cov_gate = 0.01;

  // Holdout fraction used to measure per-app MAPE (Fig. 18 / §5.2).
  double holdout_fraction = 0.25;
  bool evaluate_holdout = true;

  // BE accuracy gate (§5.2): Optum only optimizes BE applications whose
  // completion time predicts with MAPE below this; others keep their stats
  // but get no interference model.
  double be_mape_gate = 0.2;

  // Upper bound on per-application training set size; larger datasets are
  // uniformly subsampled (keeps Random Forest training time bounded).
  size_t max_train_samples = 3000;

  // Triple-wise ERO profiling (§4.2.2 extension). Off by default — the
  // paper's deployed configuration is pairwise because triple profiling
  // "can incur large profiling overhead". Triples are collected over the
  // top `triple_top_k` apps (by representative usage) per host sample.
  bool enable_triple_ero = false;
  size_t triple_top_k = 8;

  uint64_t seed = 1234;
};

// Per-application supervised datasets extracted from a trace. Exposed so
// the fig18 bench can train several model families on identical data.
struct AppDatasets {
  // LS/LSR apps: features per kLsFeatureCount, target = CPU PSI (60 s).
  std::unordered_map<AppId, ml::Dataset> ls;
  // BE apps: features per kBeFeatureCount, target = normalized CT.
  std::unordered_map<AppId, ml::Dataset> be;
  // Stats gathered during extraction (max utils, max QPS, max CT, ...).
  std::unordered_map<AppId, AppStats> stats;
};

class OfflineProfiler {
 public:
  explicit OfflineProfiler(OfflineProfilerConfig config = {});

  // Extracts per-application datasets and summary stats from the trace.
  AppDatasets ExtractDatasets(const TraceBundle& trace) const;

  // Builds the ERO table from co-location observations in the trace.
  EroTable BuildEroTable(const TraceBundle& trace) const;

  // Full profiling pass: datasets + models + ERO + memory profiles.
  OptumProfiles BuildProfiles(const TraceBundle& trace) const;

  const OfflineProfilerConfig& config() const { return config_; }

 private:
  OfflineProfilerConfig config_;
};

}  // namespace optum::core

#endif  // OPTUM_SRC_CORE_OFFLINE_PROFILER_H_
