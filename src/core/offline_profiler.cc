#include "src/core/offline_profiler.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/ml/metrics.h"
#include "src/stats/descriptive.h"

namespace optum::core {
namespace {

// Compact pod metadata resolved from the trace (last record wins for pods
// that were rescheduled after preemption/OOM).
struct PodInfo {
  AppId app = kInvalidAppId;
  SloClass slo = SloClass::kUnknown;
  Resources request;
};

std::unordered_map<PodId, PodInfo> IndexPods(const TraceBundle& trace) {
  std::unordered_map<PodId, PodInfo> out;
  out.reserve(trace.pods.size());
  for (const auto& meta : trace.pods) {
    out[meta.pod_id] = PodInfo{meta.app_id, meta.slo, meta.request};
  }
  return out;
}

uint64_t HostTickKey(HostId host, Tick tick) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(host)) << 40) |
         static_cast<uint64_t>(tick & 0xffffffffffLL);
}

std::unordered_map<uint64_t, Resources> IndexHostUsage(const TraceBundle& trace) {
  std::unordered_map<uint64_t, Resources> out;
  out.reserve(trace.node_usage.size());
  for (const auto& rec : trace.node_usage) {
    out[HostTickKey(rec.machine_id, rec.collect_tick)] =
        Resources{rec.cpu_usage, rec.mem_usage};
  }
  return out;
}

// Per-BE-pod aggregates needed for the completion-time dataset (Eq. 2 uses
// maximum pod and host utilizations over the pod's lifetime).
struct BePodAggregate {
  double max_pod_cpu_util = 0.0;
  double max_pod_mem_util = 0.0;
  double max_host_cpu = 0.0;
  double max_host_mem = 0.0;
  int samples = 0;
};

}  // namespace

OfflineProfiler::OfflineProfiler(OfflineProfilerConfig config) : config_(config) {
  OPTUM_CHECK_GT(config_.num_buckets, 0u);
}

AppDatasets OfflineProfiler::ExtractDatasets(const TraceBundle& trace) const {
  AppDatasets out;
  const auto pods = IndexPods(trace);
  const auto host_usage = IndexHostUsage(trace);

  // ---- Pass 1: per-app maxima for normalization -------------------------
  std::unordered_map<AppId, AppStats>& stats = out.stats;
  for (const auto& rec : trace.pod_usage) {
    const auto it = pods.find(rec.pod_id);
    if (it == pods.end()) {
      continue;
    }
    const PodInfo& info = it->second;
    AppStats& s = stats[info.app];
    s.slo = info.slo;
    const double cpu_util =
        info.request.cpu > 0 ? rec.cpu_usage / info.request.cpu : 0.0;
    const double mem_util =
        info.request.mem > 0 ? rec.mem_usage / info.request.mem : 0.0;
    s.max_pod_cpu_util = std::max(s.max_pod_cpu_util, cpu_util);
    s.max_pod_mem_util = std::max(s.max_pod_mem_util, mem_util);
    s.max_qps = std::max(s.max_qps, rec.qps);
  }
  for (const auto& rec : trace.lifecycles) {
    if (rec.slo == SloClass::kBe && rec.finish_tick >= 0 && rec.schedule_tick >= 0) {
      AppStats& s = stats[rec.app_id];
      s.slo = SloClass::kBe;
      s.max_completion_ticks =
          std::max(s.max_completion_ticks, rec.actual_completion_ticks);
    }
  }

  // ---- Pass 2: LS datasets + BE per-pod aggregates -----------------------
  std::unordered_map<PodId, BePodAggregate> be_aggregates;
  // Per-app per-pod mean memory utilization (for the stability gate).
  std::unordered_map<PodId, std::pair<double, int>> pod_mem_acc;

  for (const auto& rec : trace.pod_usage) {
    const auto it = pods.find(rec.pod_id);
    if (it == pods.end()) {
      continue;
    }
    const PodInfo& info = it->second;
    const auto host_it = host_usage.find(HostTickKey(rec.host, rec.collect_tick));
    if (host_it == host_usage.end()) {
      continue;
    }
    const Resources host = host_it->second;
    const double pod_cpu_util =
        info.request.cpu > 0 ? rec.cpu_usage / info.request.cpu : 0.0;
    const double pod_mem_util =
        info.request.mem > 0 ? rec.mem_usage / info.request.mem : 0.0;

    auto& mem_acc = pod_mem_acc[rec.pod_id];
    mem_acc.first += pod_mem_util;
    mem_acc.second += 1;

    if (IsLatencySensitive(info.slo)) {
      AppStats& s = stats[info.app];
      const double qps_norm = s.max_qps > 0 ? rec.qps / s.max_qps : 0.0;
      auto [ds_it, inserted] = out.ls.try_emplace(
          info.app, ml::Dataset(kLsFeatureCount,
                                {"pod_cpu_util", "pod_mem_util", "host_cpu_util",
                                 "host_mem_util", "qps_norm"}));
      const double features[kLsFeatureCount] = {pod_cpu_util, pod_mem_util, host.cpu,
                                                host.mem, qps_norm};
      ds_it->second.Add(features, rec.cpu_psi_60);
      ++s.sample_count;
    } else if (info.slo == SloClass::kBe) {
      BePodAggregate& agg = be_aggregates[rec.pod_id];
      agg.max_pod_cpu_util = std::max(agg.max_pod_cpu_util, pod_cpu_util);
      agg.max_pod_mem_util = std::max(agg.max_pod_mem_util, pod_mem_util);
      agg.max_host_cpu = std::max(agg.max_host_cpu, host.cpu);
      agg.max_host_mem = std::max(agg.max_host_mem, host.mem);
      ++agg.samples;
    }
  }

  // ---- Pass 3: BE datasets from lifecycles --------------------------------
  for (const auto& rec : trace.lifecycles) {
    if (rec.slo != SloClass::kBe || rec.finish_tick < 0 || rec.schedule_tick < 0) {
      continue;
    }
    const auto agg_it = be_aggregates.find(rec.pod_id);
    if (agg_it == be_aggregates.end() || agg_it->second.samples == 0) {
      continue;  // Pod too short-lived to have OS-level samples.
    }
    AppStats& s = stats[rec.app_id];
    if (s.max_completion_ticks <= 0) {
      continue;
    }
    const BePodAggregate& agg = agg_it->second;
    auto [ds_it, inserted] = out.be.try_emplace(
        rec.app_id, ml::Dataset(kBeFeatureCount,
                                {"max_pod_cpu_util", "max_pod_mem_util",
                                 "max_host_cpu_util", "max_host_mem_util"}));
    const double features[kBeFeatureCount] = {agg.max_pod_cpu_util, agg.max_pod_mem_util,
                                              agg.max_host_cpu, agg.max_host_mem};
    const double normalized_ct = rec.actual_completion_ticks / s.max_completion_ticks;
    ds_it->second.Add(features, normalized_ct);
    ++s.sample_count;
  }

  // ---- Memory profiles (stability gate, §4.2.2) ---------------------------
  // Group per-pod mean memory utilizations by app, compute CoV across pods.
  std::unordered_map<AppId, std::vector<double>> app_pod_mem;
  for (const auto& [pod_id, acc] : pod_mem_acc) {
    const auto it = pods.find(pod_id);
    if (it == pods.end() || acc.second == 0) {
      continue;
    }
    app_pod_mem[it->second.app].push_back(acc.first / acc.second);
  }
  for (auto& [app_id, utils] : app_pod_mem) {
    AppStats& s = stats[app_id];
    if (utils.size() >= 2 && CoefficientOfVariation(utils) <= config_.mem_cov_gate) {
      s.mem_profile = std::min(1.0, *std::max_element(utils.begin(), utils.end()));
    } else {
      s.mem_profile = 1.0;
    }
  }
  return out;
}

EroTable OfflineProfiler::BuildEroTable(const TraceBundle& trace) const {
  EroTable ero;
  const auto pods = IndexPods(trace);

  // Group usage records by (tick, host). Records are appended tick-major by
  // the simulator, so a sort by (tick, host) groups them with one pass.
  struct Obs {
    Tick tick;
    HostId host;
    AppId app;
    double cpu;
    double cpu_request;
  };
  std::vector<Obs> observations;
  observations.reserve(trace.pod_usage.size());
  for (const auto& rec : trace.pod_usage) {
    const auto it = pods.find(rec.pod_id);
    if (it == pods.end()) {
      continue;
    }
    observations.push_back(Obs{rec.collect_tick, rec.host, it->second.app, rec.cpu_usage,
                               it->second.request.cpu});
  }
  std::sort(observations.begin(), observations.end(), [](const Obs& a, const Obs& b) {
    if (a.tick != b.tick) return a.tick < b.tick;
    return a.host < b.host;
  });

  // Per group, keep the two highest-usage pods per application. Within an
  // application pod requests are homogeneous, so these representatives
  // realize the max pairwise RO both across applications and within one
  // (the full cross-product would be quadratic in pods per host).
  struct Top2 {
    Obs best;
    bool has_second = false;
    Obs second;
  };
  std::unordered_map<AppId, Top2> reps;
  size_t i = 0;
  while (i < observations.size()) {
    size_t j = i;
    reps.clear();
    while (j < observations.size() && observations[j].tick == observations[i].tick &&
           observations[j].host == observations[i].host) {
      const Obs& o = observations[j];
      auto [it, inserted] = reps.try_emplace(o.app, Top2{o, false, o});
      if (!inserted) {
        Top2& t = it->second;
        if (o.cpu > t.best.cpu) {
          t.second = t.best;
          t.has_second = true;
          t.best = o;
        } else if (!t.has_second || o.cpu > t.second.cpu) {
          t.second = o;
          t.has_second = true;
        }
      }
      ++j;
    }
    // Pairwise RO over application representatives (Eq. 4-5), including
    // same-application pairs (replicas of one service do co-locate).
    for (auto a = reps.begin(); a != reps.end(); ++a) {
      if (a->second.has_second) {
        const double denom = a->second.best.cpu_request + a->second.second.cpu_request;
        if (denom > 0) {
          ero.Observe(a->first, a->first,
                      (a->second.best.cpu + a->second.second.cpu) / denom);
        }
      }
      auto b = a;
      for (++b; b != reps.end(); ++b) {
        const double denom = a->second.best.cpu_request + b->second.best.cpu_request;
        if (denom <= 0) {
          continue;
        }
        ero.Observe(a->first, b->first, (a->second.best.cpu + b->second.best.cpu) / denom);
      }
    }
    // Optional triple-wise profiling (§4.2.2 extension), limited to the
    // heaviest applications in the group to bound the cubic cost.
    if (config_.enable_triple_ero && reps.size() >= 3) {
      std::vector<const Obs*> top;
      top.reserve(reps.size());
      for (const auto& [app, t] : reps) {
        top.push_back(&t.best);
      }
      std::sort(top.begin(), top.end(),
                [](const Obs* x, const Obs* y) { return x->cpu > y->cpu; });
      if (top.size() > config_.triple_top_k) {
        top.resize(config_.triple_top_k);
      }
      for (size_t x = 0; x < top.size(); ++x) {
        for (size_t y = x + 1; y < top.size(); ++y) {
          for (size_t z = y + 1; z < top.size(); ++z) {
            const double denom =
                top[x]->cpu_request + top[y]->cpu_request + top[z]->cpu_request;
            if (denom <= 0) {
              continue;
            }
            ero.ObserveTriple(top[x]->app, top[y]->app, top[z]->app,
                              (top[x]->cpu + top[y]->cpu + top[z]->cpu) / denom);
          }
        }
      }
    }
    i = j;
  }
  return ero;
}

OptumProfiles OfflineProfiler::BuildProfiles(const TraceBundle& trace) const {
  OptumProfiles profiles;
  profiles.ero = BuildEroTable(trace);

  AppDatasets datasets = ExtractDatasets(trace);
  Rng rng(config_.seed);

  auto train_app = [&](AppId app_id, const ml::Dataset& data, double mape_floor,
                       double mape_gate) {
    AppModel model;
    model.stats = datasets.stats[app_id];
    model.discretizer = ml::Discretizer(0.0, 1.0, config_.num_buckets);
    if (data.size() < config_.min_samples) {
      profiles.apps.emplace(app_id, std::move(model));
      return;
    }
    // Train on discretized targets (paper §4.2.1), subsampled when huge.
    ml::Dataset discretized(data.num_features(), data.feature_names());
    Rng sample_rng = rng.Split(static_cast<uint64_t>(app_id) * 2 + 1);
    const double keep = data.size() > config_.max_train_samples
                            ? static_cast<double>(config_.max_train_samples) /
                                  static_cast<double>(data.size())
                            : 1.0;
    for (size_t i = 0; i < data.size(); ++i) {
      if (keep < 1.0 && !sample_rng.Bernoulli(keep)) {
        continue;
      }
      discretized.Add(data.Features(i), model.discretizer.ToUpperBound(data.Target(i)));
    }
    if (config_.evaluate_holdout) {
      Rng split_rng = rng.Split(static_cast<uint64_t>(app_id));
      const auto split = discretized.TrainTestSplit(config_.holdout_fraction, split_rng);
      ml::RegressorSpec eval_spec = config_.model;
      eval_spec.seed = split_rng.NextU64();
      auto eval_model = ml::MakeRegressor(eval_spec);
      if (!split.train.empty() && !split.test.empty()) {
        eval_model->Fit(split.train);
        std::vector<double> pred = ml::PredictAll(*eval_model, split.test);
        for (double& p : pred) {
          p = model.discretizer.ToUpperBound(p);
        }
        model.holdout_mape = ml::Mape(split.test.targets(), pred, mape_floor);
      }
    }
    // Accuracy gate: skip the model when the holdout error is too high
    // (the scheduler then treats the app as "no interference information").
    if (mape_gate > 0.0 && model.holdout_mape >= 0.0 &&
        model.holdout_mape > mape_gate) {
      profiles.apps.emplace(app_id, std::move(model));
      return;
    }
    ml::RegressorSpec train_spec = config_.model;
    train_spec.seed = rng.NextU64();
    auto trained = ml::MakeRegressor(train_spec);
    trained->Fit(discretized);
    model.model = std::move(trained);
    profiles.apps.emplace(app_id, std::move(model));
  };

  for (const auto& [app_id, data] : datasets.ls) {
    train_app(app_id, data, /*mape_floor=*/0.1, /*mape_gate=*/0.0);
  }
  for (const auto& [app_id, data] : datasets.be) {
    train_app(app_id, data, /*mape_floor=*/0.05, config_.be_mape_gate);
  }
  // Apps with stats but no dataset (e.g. short-lived BE pods) still get a
  // profile entry carrying their stats and memory profile.
  for (const auto& [app_id, s] : datasets.stats) {
    if (profiles.apps.find(app_id) == profiles.apps.end()) {
      AppModel model;
      model.stats = s;
      model.discretizer = ml::Discretizer(0.0, 1.0, config_.num_buckets);
      profiles.apps.emplace(app_id, std::move(model));
    }
  }
  return profiles;
}

}  // namespace optum::core
