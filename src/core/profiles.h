// Profile data produced by the Offline Profiler and consumed by the Online
// Scheduler (paper Fig. 17, components 2-5).
#ifndef OPTUM_SRC_CORE_PROFILES_H_
#define OPTUM_SRC_CORE_PROFILES_H_

#include <memory>
#include <unordered_map>

#include "src/common/types.h"
#include "src/core/ero_table.h"
#include "src/ml/discretizer.h"
#include "src/ml/regressor.h"

namespace optum::core {

// Summary statistics of one application's pods, used as prediction-time
// features (Eq. 9 uses the app's max pod CPU/mem utilization and max QPS).
struct AppStats {
  SloClass slo = SloClass::kUnknown;
  double max_pod_cpu_util = 0.0;  // max over pods of cpu_usage / cpu_request
  double max_pod_mem_util = 0.0;
  double max_qps = 0.0;
  double max_completion_ticks = 0.0;  // BE: normalization base for CT
  // Memory profile: predicted fraction of the memory request a pod uses.
  // 1.0 for applications with unstable memory (CoV gate, §4.2.2).
  double mem_profile = 1.0;
  size_t sample_count = 0;
};

// A trained per-application interference model (PSI for LS, normalized
// completion time for BE), plus the discretizer applied to its outputs.
// The regressor is immutable after training and shared, which makes
// AppModel (and OptumProfiles) cheaply copyable — distributed shards
// (§4.4) each hold a copy of the profiles and share the trained models.
struct AppModel {
  AppStats stats;
  std::shared_ptr<const ml::Regressor> model;  // null when too few samples
  ml::Discretizer discretizer{0.0, 1.0, 25};
  double holdout_mape = -1.0;  // filled by profiling evaluation; <0 unknown

  bool usable() const { return model != nullptr; }
};

// Everything the Online Scheduler needs.
struct OptumProfiles {
  EroTable ero;
  std::unordered_map<AppId, AppModel> apps;

  const AppModel* Find(AppId id) const {
    const auto it = apps.find(id);
    return it == apps.end() ? nullptr : &it->second;
  }
};

// Feature layout shared by trainer and predictors.
// LS model inputs (Eq. 1): pod CPU util, pod mem util, host CPU util,
// host mem util, normalized QPS.
inline constexpr size_t kLsFeatureCount = 5;
// BE model inputs (Eq. 2): max pod CPU util, max pod mem util, max host CPU
// util, max host mem util.
inline constexpr size_t kBeFeatureCount = 4;

}  // namespace optum::core

#endif  // OPTUM_SRC_CORE_PROFILES_H_
