// Flat open-addressing map from packed uint64 keys to double values,
// specialized for the interference-prediction caches: insert-only (no
// erase), Clear() keeps capacity, and a lookup is a multiply-shift probe
// into contiguous storage — several times faster than unordered_map on the
// scheduler's candidate-scoring hot path, where every candidate costs a
// handful of cache probes.
//
// Not internally synchronized: a cache instance must only be touched by one
// thread at a time. Parallel candidate scoring gives every thread-pool lane
// its own instance (see InterferencePredictor::set_num_lanes).
#ifndef OPTUM_SRC_CORE_PREDICTION_CACHE_H_
#define OPTUM_SRC_CORE_PREDICTION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace optum::core {

class PredictionCache {
 public:
  PredictionCache() { Rebuild(kInitialCapacity); }

  // Returns the cached value, or nullopt on a miss. The value is returned
  // by copy, never by reference into the table: Insert() can Grow() the
  // backing storage and relocate every slot, so a pointer held across an
  // insertion would dangle (the footgun the previous pointer-returning API
  // left open).
  std::optional<double> Find(uint64_t key) const {
    size_t i = Slot(key);
    while (true) {
      if (keys_[i] == key) {
        return values_[i];
      }
      if (keys_[i] == kEmpty) {
        return std::nullopt;
      }
      i = (i + 1) & mask_;
    }
  }

  // Inserts a new key; the caller guarantees it is absent (the usual
  // find-miss-compute-insert pattern).
  void Insert(uint64_t key, double value) {
    if ((size_ + 1) * 4 > keys_.size() * 3) {
      Grow();
    }
    size_t i = Slot(key);
    while (keys_[i] != kEmpty) {
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    values_[i] = value;
    ++size_;
  }

  void Clear() {
    keys_.assign(keys_.size(), kEmpty);
    size_ = 0;
  }

  size_t size() const { return size_; }
  // Current slot count; doubles when the load factor would exceed 3/4.
  size_t capacity() const { return keys_.size(); }

 private:
  // All real keys pack a non-negative 32-bit AppId in the high word, so the
  // all-ones sentinel can never collide with one.
  static constexpr uint64_t kEmpty = ~0ULL;
  static constexpr size_t kInitialCapacity = 1u << 12;

  size_t Slot(uint64_t key) const {
    return static_cast<size_t>(key * 0x9e3779b97f4a7c15ULL) & mask_;
  }

  void Rebuild(size_t capacity) {
    keys_.assign(capacity, kEmpty);
    values_.assign(capacity, 0.0);
    mask_ = capacity - 1;
  }

  void Grow() {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<double> old_values = std::move(values_);
    Rebuild(old_keys.size() * 2);
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) {
        continue;
      }
      size_t j = Slot(old_keys[i]);
      while (keys_[j] != kEmpty) {
        j = (j + 1) & mask_;
      }
      keys_[j] = old_keys[i];
      values_[j] = old_values[i];
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<double> values_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace optum::core

#endif  // OPTUM_SRC_CORE_PREDICTION_CACHE_H_
