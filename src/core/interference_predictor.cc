#include "src/core/interference_predictor.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace optum::core {

InterferencePredictor::InterferencePredictor(const OptumProfiles* profiles,
                                             size_t cache_buckets)
    : profiles_(profiles), cache_buckets_(cache_buckets) {
  OPTUM_CHECK(profiles != nullptr);
  OPTUM_CHECK_GT(cache_buckets, 0u);
}

uint64_t InterferencePredictor::CacheKey(AppId app, double cpu, double mem,
                                         size_t buckets) const {
  const auto bucket = [buckets](double v) {
    const double clamped = std::clamp(v, 0.0, 2.0) / 2.0;
    return static_cast<uint64_t>(clamped * static_cast<double>(buckets - 1));
  };
  return (static_cast<uint64_t>(static_cast<uint32_t>(app)) << 32) |
         (bucket(cpu) << 16) | bucket(mem);
}

double InterferencePredictor::PredictImpl(AppId app, double host_cpu_util,
                                          double host_mem_util) const {
  const AppModel* model = profiles_->Find(app);
  if (model == nullptr || !model->usable()) {
    return 0.0;
  }
  const AppStats& s = model->stats;
  if (IsLatencySensitive(s.slo)) {
    // Eq. 9: f_S(C^m_p, M^m_p, POC/Cap, POM/Cap, Q^m). QPS enters as the
    // app's maximum, i.e. 1.0 after normalization.
    const double features[kLsFeatureCount] = {s.max_pod_cpu_util, s.max_pod_mem_util,
                                              host_cpu_util, host_mem_util, 1.0};
    return model->model->Predict(features);
  }
  // Eq. 10: f_B(C^m_q, M^m_q, POC/Cap, POM/Cap).
  const double features[kBeFeatureCount] = {s.max_pod_cpu_util, s.max_pod_mem_util,
                                            host_cpu_util, host_mem_util};
  return model->model->Predict(features);
}

double InterferencePredictor::PredictRaw(AppId app, double host_cpu_util,
                                         double host_mem_util) const {
  const AppModel* model = profiles_->Find(app);
  if (model == nullptr || !model->usable()) {
    return 0.0;
  }
  // Fine grid (8x the coarse one) so slope estimation sees real variation.
  const uint64_t key = CacheKey(app, host_cpu_util, host_mem_util, cache_buckets_ * 8);
  if (const auto it = raw_cache_.find(key); it != raw_cache_.end()) {
    return it->second;
  }
  const double prediction = PredictImpl(app, host_cpu_util, host_mem_util);
  raw_cache_.emplace(key, prediction);
  return prediction;
}

double InterferencePredictor::Predict(AppId app, double host_cpu_util,
                                      double host_mem_util) const {
  const AppModel* model = profiles_->Find(app);
  if (model == nullptr || !model->usable()) {
    return 0.0;
  }
  const uint64_t key = CacheKey(app, host_cpu_util, host_mem_util, cache_buckets_);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    return it->second;
  }
  const double prediction =
      model->discretizer.ToUpperBound(PredictImpl(app, host_cpu_util, host_mem_util));
  cache_.emplace(key, prediction);
  return prediction;
}

double InterferencePredictor::TotalInterference(const Host& host, const PodSpec& incoming,
                                                double host_cpu_util, double host_mem_util,
                                                double weight_ls, double weight_be) const {
  // Count pods per application, then one prediction per application.
  // Hosts run at most ~100 pods, so a small flat map suffices.
  struct AppCount {
    AppId app;
    SloClass slo;
    int count;
  };
  std::vector<AppCount> counts;
  counts.reserve(host.pods.size() + 1);
  auto bump = [&counts](AppId app, SloClass slo) {
    for (auto& c : counts) {
      if (c.app == app) {
        ++c.count;
        return;
      }
    }
    counts.push_back(AppCount{app, slo, 1});
  };
  for (const PodRuntime* pod : host.pods) {
    bump(pod->spec.app, pod->spec.slo);
  }
  bump(incoming.app, incoming.slo);

  double total = 0.0;
  for (const auto& c : counts) {
    const double ri = Predict(c.app, host_cpu_util, host_mem_util);
    if (ri == 0.0) {
      continue;
    }
    const double weight = IsLatencySensitive(c.slo) ? weight_ls
                          : c.slo == SloClass::kBe  ? weight_be
                                                    : 0.0;
    total += weight * ri * static_cast<double>(c.count);
  }
  return total;
}

double InterferencePredictor::MarginalInterference(
    const Host& host, const PodSpec& incoming, double cpu_util_before,
    double mem_util_before, double cpu_util_after, double mem_util_after,
    double weight_ls, double weight_be) const {
  auto weight_of = [&](SloClass slo) {
    return IsLatencySensitive(slo) ? weight_ls : slo == SloClass::kBe ? weight_be : 0.0;
  };
  struct AppCount {
    AppId app;
    SloClass slo;
    int count;
  };
  std::vector<AppCount> counts;
  counts.reserve(host.pods.size());
  for (const PodRuntime* pod : host.pods) {
    bool merged = false;
    for (auto& c : counts) {
      if (c.app == pod->spec.app) {
        ++c.count;
        merged = true;
        break;
      }
    }
    if (!merged) {
      counts.push_back(AppCount{pod->spec.app, pod->spec.slo, 1});
    }
  }
  // Wide-span finite difference: a single pod's utilization delta is far
  // below tree granularity, so the slope is sampled over +-kSlopeSpan and
  // rescaled to the actual delta.
  constexpr double kSlopeSpan = 0.06;
  const double cpu_delta = std::max(0.0, cpu_util_after - cpu_util_before);
  double total = 0.0;
  for (const auto& c : counts) {
    const double weight = weight_of(c.slo);
    if (weight == 0.0) {
      continue;
    }
    const double hi = PredictRaw(c.app, cpu_util_after + kSlopeSpan, mem_util_after);
    const double lo = PredictRaw(c.app, std::max(0.0, cpu_util_before - kSlopeSpan),
                                 mem_util_before);
    const double span = (cpu_util_after + kSlopeSpan) -
                        std::max(0.0, cpu_util_before - kSlopeSpan);
    const double slope = span > 1e-9 ? std::max(0.0, (hi - lo) / span) : 0.0;
    total += weight * slope * cpu_delta * static_cast<double>(c.count);
  }
  // The incoming pod's own interference is its absolute prediction (§4.3.3).
  total += weight_of(incoming.slo) *
           Predict(incoming.app, cpu_util_after, mem_util_after);
  return total;
}

}  // namespace optum::core
