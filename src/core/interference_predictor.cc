#include "src/core/interference_predictor.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace optum::core {

namespace {

// Per-host application histogram rebuilt from the pod list — the
// pre-incremental path, retained verbatim so benchmarks can measure the
// baseline cost and equivalence tests can compare against Host::app_counts.
struct RebuiltAppCount {
  AppId app;
  SloClass slo;
  int count;
};

std::vector<RebuiltAppCount> RebuildCounts(const Host& host) {
  std::vector<RebuiltAppCount> counts;
  counts.reserve(host.pods.size() + 1);
  for (const PodRuntime* pod : host.pods) {
    bool merged = false;
    for (auto& c : counts) {
      if (c.app == pod->spec.app) {
        ++c.count;
        merged = true;
        break;
      }
    }
    if (!merged) {
      counts.push_back(RebuiltAppCount{pod->spec.app, pod->spec.slo, 1});
    }
  }
  return counts;
}

double WeightOf(SloClass slo, double weight_ls, double weight_be) {
  return IsLatencySensitive(slo) ? weight_ls : slo == SloClass::kBe ? weight_be : 0.0;
}

}  // namespace

InterferencePredictor::InterferencePredictor(const OptumProfiles* profiles,
                                             size_t cache_buckets,
                                             bool use_host_app_counts)
    : profiles_(profiles),
      cache_buckets_(cache_buckets),
      use_host_app_counts_(use_host_app_counts) {
  OPTUM_CHECK(profiles != nullptr);
  OPTUM_CHECK_GT(cache_buckets, 0u);
  RebuildAppIndex();
}

void InterferencePredictor::RebuildAppIndex() {
  by_app_.clear();
  for (const auto& [app, model] : profiles_->apps) {
    if (app < 0) {
      continue;
    }
    if (static_cast<size_t>(app) >= by_app_.size()) {
      by_app_.resize(static_cast<size_t>(app) + 1, nullptr);
    }
    by_app_[static_cast<size_t>(app)] = &model;
  }
}

void InterferencePredictor::ClearCache() {
  cache_.Clear();
  raw_cache_.Clear();
  slope_cache_.Clear();
  RebuildAppIndex();
}

uint64_t InterferencePredictor::CacheKey(AppId app, double cpu, double mem,
                                         size_t buckets) const {
  const auto bucket = [buckets](double v) {
    const double clamped = std::clamp(v, 0.0, 2.0) / 2.0;
    return static_cast<uint64_t>(clamped * static_cast<double>(buckets - 1));
  };
  return (static_cast<uint64_t>(static_cast<uint32_t>(app)) << 32) |
         (bucket(cpu) << 16) | bucket(mem);
}

double InterferencePredictor::PredictImpl(const AppModel& model, double host_cpu_util,
                                          double host_mem_util) const {
  const AppStats& s = model.stats;
  if (IsLatencySensitive(s.slo)) {
    // Eq. 9: f_S(C^m_p, M^m_p, POC/Cap, POM/Cap, Q^m). QPS enters as the
    // app's maximum, i.e. 1.0 after normalization.
    const double features[kLsFeatureCount] = {s.max_pod_cpu_util, s.max_pod_mem_util,
                                              host_cpu_util, host_mem_util, 1.0};
    return model.model->Predict(features);
  }
  // Eq. 10: f_B(C^m_q, M^m_q, POC/Cap, POM/Cap).
  const double features[kBeFeatureCount] = {s.max_pod_cpu_util, s.max_pod_mem_util,
                                            host_cpu_util, host_mem_util};
  return model.model->Predict(features);
}

double InterferencePredictor::PredictRaw(AppId app, double host_cpu_util,
                                         double host_mem_util) const {
  const AppModel* model = FindModel(app);
  if (model == nullptr || !model->usable()) {
    return 0.0;
  }
  // Fine grid (8x the coarse one) so slope estimation sees real variation.
  const uint64_t key = CacheKey(app, host_cpu_util, host_mem_util, cache_buckets_ * 8);
  if (const double* cached = raw_cache_.Find(key)) {
    return *cached;
  }
  const double prediction = PredictImpl(*model, host_cpu_util, host_mem_util);
  raw_cache_.Insert(key, prediction);
  return prediction;
}

double InterferencePredictor::Predict(AppId app, double host_cpu_util,
                                      double host_mem_util) const {
  const AppModel* model = FindModel(app);
  if (model == nullptr || !model->usable()) {
    return 0.0;
  }
  const uint64_t key = CacheKey(app, host_cpu_util, host_mem_util, cache_buckets_);
  if (const double* cached = cache_.Find(key)) {
    return *cached;
  }
  const double prediction =
      model->discretizer.ToUpperBound(PredictImpl(*model, host_cpu_util, host_mem_util));
  cache_.Insert(key, prediction);
  return prediction;
}

double InterferencePredictor::TotalInterference(const Host& host, const PodSpec& incoming,
                                                double host_cpu_util, double host_mem_util,
                                                double weight_ls, double weight_be) const {
  if (!use_host_app_counts_) {
    // Baseline path: rebuild the histogram from the pod list per call.
    std::vector<RebuiltAppCount> counts = RebuildCounts(host);
    bool merged = false;
    for (auto& c : counts) {
      if (c.app == incoming.app) {
        ++c.count;
        merged = true;
        break;
      }
    }
    if (!merged) {
      counts.push_back(RebuiltAppCount{incoming.app, incoming.slo, 1});
    }
    double total = 0.0;
    for (const auto& c : counts) {
      const double ri = Predict(c.app, host_cpu_util, host_mem_util);
      if (ri == 0.0) {
        continue;
      }
      total += WeightOf(c.slo, weight_ls, weight_be) * ri * static_cast<double>(c.count);
    }
    return total;
  }

  // One prediction per application; the per-host per-app counts are
  // maintained incrementally by ClusterState, so no per-candidate rebuild.
  double total = 0.0;
  bool incoming_merged = false;
  for (const HostAppCount& c : host.app_counts) {
    int count = c.count;
    if (c.app == incoming.app) {
      ++count;
      incoming_merged = true;
    }
    const double ri = Predict(c.app, host_cpu_util, host_mem_util);
    if (ri == 0.0) {
      continue;
    }
    total += WeightOf(c.slo, weight_ls, weight_be) * ri * static_cast<double>(count);
  }
  if (!incoming_merged) {
    const double ri = Predict(incoming.app, host_cpu_util, host_mem_util);
    if (ri != 0.0) {
      total += WeightOf(incoming.slo, weight_ls, weight_be) * ri;
    }
  }
  return total;
}

double InterferencePredictor::MarginalInterference(
    const Host& host, const PodSpec& incoming, double cpu_util_before,
    double mem_util_before, double cpu_util_after, double mem_util_after,
    double weight_ls, double weight_be) const {
  // Wide-span finite difference: a single pod's utilization delta is far
  // below tree granularity, so the slope is sampled over +-kSlopeSpan and
  // rescaled to the actual delta.
  constexpr double kSlopeSpan = 0.06;
  (void)mem_util_before;  // memory barely moves per placement; see below
  const double cpu_delta = std::max(0.0, cpu_util_after - cpu_util_before);

  // The slope itself is cached per (app, CPU midpoint, memory) on a coarse
  // grid: evaluating the forest twice per (app, candidate) dominated scoring
  // cost, and the slope varies on the scale of tree splits, far coarser than
  // this grid. The finite difference is centered on the before/after CPU
  // midpoint; memory moves far less than a bucket per placement, so the
  // post-placement value stands in for both endpoints.
  // Grid granularity matches the discretized Predict cache (64 buckets over
  // [0, 2]): the slope is flat between tree splits, so a finer grid only
  // multiplies cold misses, and each miss costs two forest evaluations.
  const double cpu_mid = 0.5 * (cpu_util_before + cpu_util_after);
  const auto coarse = [](double v) {
    return static_cast<uint64_t>(std::clamp(v, 0.0, 2.0) * 31.5);
  };
  const uint64_t util_key = (coarse(cpu_mid) << 8) | coarse(mem_util_after);

  const auto slope_term = [&](AppId app, SloClass slo, int count) {
    const double weight = WeightOf(slo, weight_ls, weight_be);
    if (weight == 0.0) {
      return 0.0;
    }
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(app)) << 32) | util_key;
    double slope;
    if (const double* cached = slope_cache_.Find(key)) {
      slope = *cached;
    } else {
      const double lo_cpu = std::max(0.0, cpu_mid - kSlopeSpan);
      const double hi = PredictRaw(app, cpu_mid + kSlopeSpan, mem_util_after);
      const double lo = PredictRaw(app, lo_cpu, mem_util_after);
      const double span = (cpu_mid + kSlopeSpan) - lo_cpu;
      slope = span > 1e-9 ? std::max(0.0, (hi - lo) / span) : 0.0;
      slope_cache_.Insert(key, slope);
    }
    return weight * slope * cpu_delta * static_cast<double>(count);
  };

  double total = 0.0;
  if (!use_host_app_counts_) {
    // Baseline path: rebuild the histogram from the pod list per call.
    for (const auto& c : RebuildCounts(host)) {
      total += slope_term(c.app, c.slo, c.count);
    }
  } else {
    for (const HostAppCount& c : host.app_counts) {
      // Skipping profile-less apps adds exactly 0.0 to the sum, so this
      // fast path cannot change the result.
      const AppModel* model = FindModel(c.app);
      if (model == nullptr || !model->usable()) {
        continue;
      }
      total += slope_term(c.app, c.slo, c.count);
    }
  }
  // The incoming pod's own interference is its absolute prediction (§4.3.3).
  total += WeightOf(incoming.slo, weight_ls, weight_be) *
           Predict(incoming.app, cpu_util_after, mem_util_after);
  return total;
}

}  // namespace optum::core
