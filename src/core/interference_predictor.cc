#include "src/core/interference_predictor.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/obs/timer.h"

namespace optum::core {

namespace {

// Per-host application histogram rebuilt from the pod list — the
// pre-incremental path, retained verbatim so benchmarks can measure the
// baseline cost and equivalence tests can compare against Host::app_counts.
struct RebuiltAppCount {
  AppId app;
  SloClass slo;
  int count;
};

std::vector<RebuiltAppCount> RebuildCounts(const Host& host) {
  std::vector<RebuiltAppCount> counts;
  counts.reserve(host.pods.size() + 1);
  for (const PodRuntime* pod : host.pods) {
    bool merged = false;
    for (auto& c : counts) {
      if (c.app == pod->spec.app) {
        ++c.count;
        merged = true;
        break;
      }
    }
    if (!merged) {
      counts.push_back(RebuiltAppCount{pod->spec.app, pod->spec.slo, 1});
    }
  }
  return counts;
}

double WeightOf(SloClass slo, double weight_ls, double weight_be) {
  return IsLatencySensitive(slo) ? weight_ls : slo == SloClass::kBe ? weight_be : 0.0;
}

// Writes the Eq. 9/10 feature row for `model` at the given host utilizations
// into `row` (sized for kLsFeatureCount) and returns the row width. LS adds
// QPS as the app's maximum, i.e. 1.0 after normalization.
size_t FillFeatures(const AppModel& model, double host_cpu_util, double host_mem_util,
                    double* row) {
  const AppStats& s = model.stats;
  row[0] = s.max_pod_cpu_util;
  row[1] = s.max_pod_mem_util;
  row[2] = host_cpu_util;
  row[3] = host_mem_util;
  if (IsLatencySensitive(s.slo)) {
    row[4] = 1.0;
    return kLsFeatureCount;
  }
  return kBeFeatureCount;
}

// Coarse utilization grid of the slope cache; matches the discretized
// Predict cache's default (64 buckets over [0, 2]). The slope is flat
// between tree splits, so a finer grid only multiplies cold misses, and
// each miss costs two forest evaluations.
constexpr size_t kSlopeBuckets = 64;

}  // namespace

InterferencePredictor::InterferencePredictor(const OptumProfiles* profiles,
                                             size_t cache_buckets,
                                             bool use_host_app_counts)
    : profiles_(profiles),
      cache_buckets_(cache_buckets),
      use_host_app_counts_(use_host_app_counts),
      lanes_(1) {
  OPTUM_CHECK(profiles != nullptr);
  OPTUM_CHECK_GT(cache_buckets, 0u);
  RebuildAppIndex();
}

void InterferencePredictor::set_num_lanes(size_t n) {
  OPTUM_CHECK_GE(n, 1u);
  if (n > lanes_.size()) {
    lanes_.resize(n);
  }
}

void InterferencePredictor::RebuildAppIndex() {
  by_app_.clear();
  for (const auto& [app, model] : profiles_->apps) {
    if (app < 0) {
      continue;
    }
    if (static_cast<size_t>(app) >= by_app_.size()) {
      by_app_.resize(static_cast<size_t>(app) + 1, nullptr);
    }
    by_app_[static_cast<size_t>(app)] = &model;
  }
  const size_t cells = by_app_.size() * kResidentBuckets * kResidentBuckets;
  resident_grid_.assign(cells, 0.0);
  resident_grid_valid_.assign(cells, 0);
}

InterferencePredictor::CacheStats InterferencePredictor::cache_stats() const {
  CacheStats stats;
  for (const LaneCaches& lane : lanes_) {
    stats.predict_hits += lane.predict_hits;
    stats.predict_misses += lane.predict_misses;
    stats.raw_hits += lane.raw_hits;
    stats.raw_misses += lane.raw_misses;
    stats.slope_hits += lane.slope_hits;
    stats.slope_misses += lane.slope_misses;
  }
  return stats;
}

void InterferencePredictor::ClearCache() {
  for (LaneCaches& lane : lanes_) {
    lane.cache.Clear();
    lane.raw_cache.Clear();
    lane.slope_cache.Clear();
  }
  resident_memo_.clear();  // stored sums embed predictions from the old models
  RebuildAppIndex();
}

uint64_t InterferencePredictor::UtilBucket(double v, size_t buckets) {
  const double clamped = std::clamp(v, 0.0, 2.0) / 2.0;
  return static_cast<uint64_t>(clamped * static_cast<double>(buckets - 1));
}

double InterferencePredictor::BucketPoint(uint64_t bucket, size_t buckets) {
  const double width = 2.0 / static_cast<double>(buckets - 1);
  return std::min(2.0, (static_cast<double>(bucket) + 0.5) * width);
}

double InterferencePredictor::PredictImpl(const AppModel& model, double host_cpu_util,
                                          double host_mem_util) const {
  // Eq. 9: f_S(C^m_p, M^m_p, POC/Cap, POM/Cap, Q^m) for LS; Eq. 10:
  // f_B(C^m_q, M^m_q, POC/Cap, POM/Cap) for BE. Evaluated through the batch
  // interface so forest models dispatch to the compiled SoA engine
  // (bit-identical to pointer-tree Predict) even for a single row.
  double row[kLsFeatureCount];
  const size_t width = FillFeatures(model, host_cpu_util, host_mem_util, row);
  double out;
  model.model->PredictBatch(std::span<const double>(row, width), width,
                            std::span<double>(&out, 1));
  return out;
}

void InterferencePredictor::PredictRawSpan(AppId app, double cpu_lo, double cpu_hi,
                                           double mem_util, size_t lane,
                                           double* out_lo, double* out_hi) const {
  const AppModel* model = FindModel(app);
  if (model == nullptr || !model->usable()) {
    *out_lo = 0.0;
    *out_hi = 0.0;
    return;
  }
  // Fine grid (8x the coarse one), exactly as PredictRaw uses it.
  const size_t buckets = cache_buckets_ * 8;
  const uint64_t mem_bucket = UtilBucket(mem_util, buckets);
  const double mem_point = BucketPoint(mem_bucket, buckets);
  const uint64_t app_key = static_cast<uint64_t>(static_cast<uint32_t>(app)) << 32;

  struct Endpoint {
    uint64_t key;
    uint64_t cpu_bucket;
    double* out;
  };
  // hi before lo, matching the order the sequential PredictRaw calls used.
  const Endpoint endpoints[2] = {
      {app_key | (UtilBucket(cpu_hi, buckets) << 16) | mem_bucket,
       UtilBucket(cpu_hi, buckets), out_hi},
      {app_key | (UtilBucket(cpu_lo, buckets) << 16) | mem_bucket,
       UtilBucket(cpu_lo, buckets), out_lo},
  };

  LaneCaches& caches = lanes_[lane];
  double rows[2 * kLsFeatureCount];
  double batch_out[2];
  const Endpoint* missed[2];
  size_t misses = 0;
  bool alias = false;
  for (const Endpoint& e : endpoints) {
    if (const auto cached = caches.raw_cache.Find(e.key)) {
      ++caches.raw_hits;
      *e.out = *cached;
      continue;
    }
    if (misses > 0 && e.key == missed[0]->key) {
      // Both endpoints snapped to one fine-grid bucket (possible only if the
      // slope span ever drops below the grid width). Sequential evaluation
      // would hit the freshly inserted value here; mirror that.
      ++caches.raw_hits;
      alias = true;
      continue;
    }
    ++caches.raw_misses;
    missed[misses] = &e;
    ++misses;
  }
  if (misses > 0) {
    // One batched descent for both cold endpoints. Both rows come from one
    // model, so the first fill's feature width is the packing stride.
    const size_t width = FillFeatures(
        *model, BucketPoint(missed[0]->cpu_bucket, buckets), mem_point, rows);
    if (misses == 2) {
      FillFeatures(*model, BucketPoint(missed[1]->cpu_bucket, buckets), mem_point,
                   rows + width);
    }
    model->model->PredictBatch(std::span<const double>(rows, misses * width), width,
                               std::span<double>(batch_out, misses));
    for (size_t i = 0; i < misses; ++i) {
      caches.raw_cache.Insert(missed[i]->key, batch_out[i]);
      *missed[i]->out = batch_out[i];
    }
  }
  if (alias) {
    *endpoints[1].out = *endpoints[0].out;
  }
}

double InterferencePredictor::PredictRaw(AppId app, double host_cpu_util,
                                         double host_mem_util, size_t lane) const {
  const AppModel* model = FindModel(app);
  if (model == nullptr || !model->usable()) {
    return 0.0;
  }
  // Fine grid (8x the coarse one) so slope estimation sees real variation.
  const size_t buckets = cache_buckets_ * 8;
  const uint64_t cpu_bucket = UtilBucket(host_cpu_util, buckets);
  const uint64_t mem_bucket = UtilBucket(host_mem_util, buckets);
  const uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(app)) << 32) |
                       (cpu_bucket << 16) | mem_bucket;
  LaneCaches& caches = lanes_[lane];
  if (const auto cached = caches.raw_cache.Find(key)) {
    ++caches.raw_hits;
    return *cached;
  }
  ++caches.raw_misses;
  const double prediction = PredictImpl(*model, BucketPoint(cpu_bucket, buckets),
                                        BucketPoint(mem_bucket, buckets));
  caches.raw_cache.Insert(key, prediction);
  return prediction;
}

double InterferencePredictor::Predict(AppId app, double host_cpu_util,
                                      double host_mem_util, size_t lane) const {
  const AppModel* model = FindModel(app);
  if (model == nullptr || !model->usable()) {
    return 0.0;
  }
  const uint64_t cpu_bucket = UtilBucket(host_cpu_util, cache_buckets_);
  const uint64_t mem_bucket = UtilBucket(host_mem_util, cache_buckets_);
  const uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(app)) << 32) |
                       (cpu_bucket << 16) | mem_bucket;
  LaneCaches& caches = lanes_[lane];
  if (const auto cached = caches.cache.Find(key)) {
    ++caches.predict_hits;
    return *cached;
  }
  ++caches.predict_misses;
  const double prediction = model->discretizer.ToUpperBound(
      PredictImpl(*model, BucketPoint(cpu_bucket, cache_buckets_),
                  BucketPoint(mem_bucket, cache_buckets_)));
  caches.cache.Insert(key, prediction);
  return prediction;
}

double InterferencePredictor::TotalInterference(const Host& host, const PodSpec& incoming,
                                                double host_cpu_util, double host_mem_util,
                                                double weight_ls, double weight_be,
                                                size_t lane) const {
  if (!use_host_app_counts_) {
    // Baseline path: rebuild the histogram from the pod list per call.
    std::vector<RebuiltAppCount> counts = RebuildCounts(host);
    bool merged = false;
    for (auto& c : counts) {
      if (c.app == incoming.app) {
        ++c.count;
        merged = true;
        break;
      }
    }
    if (!merged) {
      counts.push_back(RebuiltAppCount{incoming.app, incoming.slo, 1});
    }
    double total = 0.0;
    for (const auto& c : counts) {
      const double ri = Predict(c.app, host_cpu_util, host_mem_util, lane);
      if (ri == 0.0) {
        continue;
      }
      total += WeightOf(c.slo, weight_ls, weight_be) * ri * static_cast<double>(c.count);
    }
    return total;
  }

  // One prediction per application; the per-host per-app counts are
  // maintained incrementally by ClusterState, so no per-candidate rebuild.
  double total = 0.0;
  bool incoming_merged = false;
  for (const HostAppCount& c : host.app_counts) {
    int count = c.count;
    if (c.app == incoming.app) {
      ++count;
      incoming_merged = true;
    }
    const double ri = Predict(c.app, host_cpu_util, host_mem_util, lane);
    if (ri == 0.0) {
      continue;
    }
    total += WeightOf(c.slo, weight_ls, weight_be) * ri * static_cast<double>(count);
  }
  if (!incoming_merged) {
    const double ri = Predict(incoming.app, host_cpu_util, host_mem_util, lane);
    if (ri != 0.0) {
      total += WeightOf(incoming.slo, weight_ls, weight_be) * ri;
    }
  }
  return total;
}

double InterferencePredictor::ResidentInterference(const Host& host,
                                                   double host_cpu_util,
                                                   double host_mem_util,
                                                   double weight_ls,
                                                   double weight_be,
                                                   size_t lane) const {
  // The resident sum feeds a per-host pressure signal that rides an EWMA,
  // so it needs far less utilization resolution than candidate scoring.
  // Inputs are snapped to a deliberately coarse grid (cell centers over
  // [0, 2]) before prediction: the sweep can then only ever touch
  // #apps x kResidentBuckets^2 distinct cache keys, so forest evaluations
  // saturate after a short warmup instead of firing on every utilization
  // drift, and the memo below keeps hitting while a host's utilization
  // moves within one cell.
  const uint64_t cpu_bucket = UtilBucket(host_cpu_util, kResidentBuckets);
  const uint64_t mem_bucket = UtilBucket(host_mem_util, kResidentBuckets);
  const double cpu_q = BucketPoint(cpu_bucket, kResidentBuckets);
  const double mem_q = BucketPoint(mem_bucket, kResidentBuckets);
  // Per-(app, cell) value via the flat grid; cold cells go through Predict
  // once, so every stored value matches the lane-cache path bit for bit.
  const auto resident_ri = [&](AppId app) {
    if (app < 0 || static_cast<size_t>(app) >= by_app_.size()) {
      return 0.0;  // no profile -> Predict would return 0 anyway
    }
    const size_t cell =
        (static_cast<size_t>(app) * kResidentBuckets + cpu_bucket) *
            kResidentBuckets +
        mem_bucket;
    if (resident_grid_valid_[cell]) {
      return resident_grid_[cell];
    }
    const double ri = Predict(app, cpu_q, mem_q, lane);
    resident_grid_[cell] = ri;
    resident_grid_valid_[cell] = 1;
    return ri;
  };
  double total = 0.0;
  if (!use_host_app_counts_) {
    for (const auto& c : RebuildCounts(host)) {
      const double ri = resident_ri(c.app);
      if (ri == 0.0) {
        continue;
      }
      total += WeightOf(c.slo, weight_ls, weight_be) * ri *
               static_cast<double>(c.count);
    }
    return total;
  }
  // Pressure sweeps revisit every host each sampled tick, but only the
  // handful that placed or evicted pods since the last sweep can produce a
  // different sum: (change_epoch, coarse buckets, weights) fully determines
  // the result. Memo hits skip the per-app cache walk entirely and are
  // bit-identical to recomputation by key-purity.
  ResidentMemo* memo = nullptr;
  if (host.id >= 0) {
    if (static_cast<size_t>(host.id) >= resident_memo_.size()) {
      resident_memo_.resize(static_cast<size_t>(host.id) + 1);
    }
    memo = &resident_memo_[static_cast<size_t>(host.id)];
    if (memo->epoch == host.change_epoch && memo->cpu_bucket == cpu_bucket &&
        memo->mem_bucket == mem_bucket && memo->weight_ls == weight_ls &&
        memo->weight_be == weight_be) {
      return memo->value;
    }
  }
  for (const HostAppCount& c : host.app_counts) {
    const double ri = resident_ri(c.app);
    if (ri == 0.0) {
      continue;
    }
    total += WeightOf(c.slo, weight_ls, weight_be) * ri *
             static_cast<double>(c.count);
  }
  if (memo != nullptr) {
    *memo = ResidentMemo{host.change_epoch, cpu_bucket, mem_bucket,
                         weight_ls,         weight_be,  total};
  }
  return total;
}

double InterferencePredictor::MarginalInterference(
    const Host& host, const PodSpec& incoming, double cpu_util_before,
    double mem_util_before, double cpu_util_after, double mem_util_after,
    double weight_ls, double weight_be, size_t lane) const {
  // Wide-span finite difference: a single pod's utilization delta is far
  // below tree granularity, so the slope is sampled over +-kSlopeSpan and
  // rescaled to the actual delta.
  constexpr double kSlopeSpan = 0.06;
  (void)mem_util_before;  // memory barely moves per placement; see below
  const double cpu_delta = std::max(0.0, cpu_util_after - cpu_util_before);

  // The slope itself is cached per (app, CPU midpoint, memory) on a coarse
  // grid: evaluating the forest twice per (app, candidate) dominated scoring
  // cost, and the slope varies on the scale of tree splits, far coarser than
  // this grid. The finite difference is centered on the before/after CPU
  // midpoint; memory moves far less than a bucket per placement, so the
  // post-placement value stands in for both endpoints. Both the midpoint
  // and the memory value are snapped to their buckets' canonical points
  // before sampling, so the cached slope — like every other cached value —
  // is a pure function of its key.
  const double cpu_mid = 0.5 * (cpu_util_before + cpu_util_after);
  const uint64_t mid_bucket = UtilBucket(cpu_mid, kSlopeBuckets);
  const uint64_t mem_bucket = UtilBucket(mem_util_after, kSlopeBuckets);
  const uint64_t util_key = (mid_bucket << 8) | mem_bucket;
  const double mid_point = BucketPoint(mid_bucket, kSlopeBuckets);
  const double mem_point = BucketPoint(mem_bucket, kSlopeBuckets);
  PredictionCache& slope_cache = lanes_[lane].slope_cache;

  const auto slope_term = [&](AppId app, SloClass slo, int count) {
    const double weight = WeightOf(slo, weight_ls, weight_be);
    if (weight == 0.0) {
      return 0.0;
    }
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(app)) << 32) | util_key;
    double slope;
    if (const auto cached = slope_cache.Find(key)) {
      ++lanes_[lane].slope_hits;
      slope = *cached;
    } else {
      ++lanes_[lane].slope_misses;
      // The slope-miss path is where forest evaluations concentrate after
      // the caches warm up; time it when a sink is attached. Both endpoints
      // go through one PredictRawSpan call, whose single PredictBatch hands
      // the compiled forest (exact or quantized, per the model's
      // ForestParams) both rows at once.
      obs::ScopedTimer timer(forest_timer_, forest_timer_lane_base_ + lane);
      const double lo_cpu = std::max(0.0, mid_point - kSlopeSpan);
      const double hi_cpu = mid_point + kSlopeSpan;
      double lo, hi;
      PredictRawSpan(app, lo_cpu, hi_cpu, mem_point, lane, &lo, &hi);
      const double span = hi_cpu - lo_cpu;
      slope = span > 1e-9 ? std::max(0.0, (hi - lo) / span) : 0.0;
      slope_cache.Insert(key, slope);
    }
    return weight * slope * cpu_delta * static_cast<double>(count);
  };

  double total = 0.0;
  if (!use_host_app_counts_) {
    // Baseline path: rebuild the histogram from the pod list per call.
    for (const auto& c : RebuildCounts(host)) {
      total += slope_term(c.app, c.slo, c.count);
    }
  } else {
    for (const HostAppCount& c : host.app_counts) {
      // Skipping profile-less apps adds exactly 0.0 to the sum, so this
      // fast path cannot change the result.
      const AppModel* model = FindModel(c.app);
      if (model == nullptr || !model->usable()) {
        continue;
      }
      total += slope_term(c.app, c.slo, c.count);
    }
  }
  // The incoming pod's own interference is its absolute prediction (§4.3.3).
  total += WeightOf(incoming.slo, weight_ls, weight_be) *
           Predict(incoming.app, cpu_util_after, mem_util_after, lane);
  return total;
}

}  // namespace optum::core
