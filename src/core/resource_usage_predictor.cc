#include "src/core/resource_usage_predictor.h"

#include <algorithm>

#include "src/common/check.h"

namespace optum::core {

ResourceUsagePredictor::ResourceUsagePredictor(const OptumProfiles* profiles,
                                               Grouping grouping)
    : profiles_(profiles), grouping_(grouping) {
  OPTUM_CHECK(profiles != nullptr);
}

double ResourceUsagePredictor::TripleCpuEstimate(AppId a, double ra, AppId b, double rb,
                                                 AppId c, double rc) const {
  const double sum = ra + rb + rc;
  const double observed = profiles_->ero.GetTriple(a, b, c);
  if (observed >= 0.0) {
    return observed * sum;
  }
  // Pairwise fallback: group the tightest pair, leftover at full request.
  const double ab = profiles_->ero.Get(a, b) * (ra + rb) + rc;
  const double bc = profiles_->ero.Get(b, c) * (rb + rc) + ra;
  const double ac = profiles_->ero.Get(a, c) * (ra + rc) + rb;
  return std::min({ab, bc, ac, sum});
}

double ResourceUsagePredictor::MemEstimate(AppId app, const Resources& request) const {
  const AppModel* model = profiles_->Find(app);
  const double profile = model != nullptr ? model->stats.mem_profile : 1.0;
  return profile * request.mem;
}

Resources ResourceUsagePredictor::PredictHost(const Host& host,
                                              const PodSpec* incoming) const {
  // Assemble (app, request) in scheduling order, incoming pod last.
  // Pairing follows Eq. 8 exactly.
  double poc = 0.0;
  double pom = 0.0;

  const size_t n = host.pods.size() + (incoming != nullptr ? 1 : 0);
  auto app_of = [&](size_t i) -> AppId {
    return i < host.pods.size() ? host.pods[i]->spec.app : incoming->app;
  };
  auto request_of = [&](size_t i) -> const Resources& {
    return i < host.pods.size() ? host.pods[i]->spec.request : incoming->request;
  };

  size_t i = 0;
  if (grouping_ == Grouping::kTripleWise) {
    for (; i + 2 < n; i += 3) {
      poc += TripleCpuEstimate(app_of(i), request_of(i).cpu, app_of(i + 1),
                               request_of(i + 1).cpu, app_of(i + 2),
                               request_of(i + 2).cpu);
    }
  }
  for (; i + 1 < n; i += 2) {
    const double ero = profiles_->ero.Get(app_of(i), app_of(i + 1));
    poc += ero * (request_of(i).cpu + request_of(i + 1).cpu);
  }
  if (i < n) {
    poc += request_of(i).cpu;  // Odd pod out: full CPU request.
  }
  for (size_t k = 0; k < n; ++k) {
    pom += MemEstimate(app_of(k), request_of(k));
  }
  return Resources{poc, pom};
}

}  // namespace optum::core
