#include "src/core/resource_usage_predictor.h"

#include <algorithm>

#include "src/common/check.h"

namespace optum::core {

ResourceUsagePredictor::ResourceUsagePredictor(const OptumProfiles* profiles,
                                               Grouping grouping)
    : profiles_(profiles), grouping_(grouping) {
  OPTUM_CHECK(profiles != nullptr);
}

double ResourceUsagePredictor::TripleCpuEstimate(AppId a, double ra, AppId b, double rb,
                                                 AppId c, double rc) const {
  const double sum = ra + rb + rc;
  const double observed = profiles_->ero.GetTriple(a, b, c);
  if (observed >= 0.0) {
    return observed * sum;
  }
  // Pairwise fallback: group the tightest pair, leftover at full request.
  const double ab = profiles_->ero.Get(a, b) * (ra + rb) + rc;
  const double bc = profiles_->ero.Get(b, c) * (rb + rc) + ra;
  const double ac = profiles_->ero.Get(a, c) * (ra + rc) + rb;
  return std::min({ab, bc, ac, sum});
}

double ResourceUsagePredictor::MemEstimate(AppId app, const Resources& request) const {
  const AppModel* model = profiles_->Find(app);
  const double profile = model != nullptr ? model->stats.mem_profile : 1.0;
  return profile * request.mem;
}

Resources ResourceUsagePredictor::PredictHostRescan(const Host& host,
                                                    const PodSpec* incoming) const {
  // Assemble (app, request) in scheduling order, incoming pod last.
  // Pairing follows Eq. 8 exactly.
  double poc = 0.0;
  double pom = 0.0;

  const size_t n = host.pods.size() + (incoming != nullptr ? 1 : 0);
  auto app_of = [&](size_t i) -> AppId {
    return i < host.pods.size() ? host.pods[i]->spec.app : incoming->app;
  };
  auto request_of = [&](size_t i) -> const Resources& {
    return i < host.pods.size() ? host.pods[i]->spec.request : incoming->request;
  };

  size_t i = 0;
  if (grouping_ == Grouping::kTripleWise) {
    for (; i + 2 < n; i += 3) {
      poc += TripleCpuEstimate(app_of(i), request_of(i).cpu, app_of(i + 1),
                               request_of(i + 1).cpu, app_of(i + 2),
                               request_of(i + 2).cpu);
    }
  }
  for (; i + 1 < n; i += 2) {
    const double ero = profiles_->ero.Get(app_of(i), app_of(i + 1));
    poc += ero * (request_of(i).cpu + request_of(i + 1).cpu);
  }
  if (i < n) {
    poc += request_of(i).cpu;  // Odd pod out: full CPU request.
  }
  for (size_t k = 0; k < n; ++k) {
    pom += MemEstimate(app_of(k), request_of(k));
  }
  return Resources{poc, pom};
}

void ResourceUsagePredictor::RecomputeBaseline(const Host& host,
                                               HostBaseline* slot) const {
  const size_t n = host.pods.size();
  auto app_of = [&](size_t i) -> AppId { return host.pods[i]->spec.app; };
  auto cpu_of = [&](size_t i) -> double { return host.pods[i]->spec.request.cpu; };

  // Full groups, accumulated in the same left-to-right order as the rescan
  // so cached predictions are bit-identical to uncached ones. In pairwise
  // mode every pair is a full group; in triple-wise mode only triples are
  // (a trailing pair would be regrouped into a triple by an incoming pod).
  double poc = 0.0;
  size_t i = 0;
  if (grouping_ == Grouping::kTripleWise) {
    for (; i + 2 < n; i += 3) {
      poc += TripleCpuEstimate(app_of(i), cpu_of(i), app_of(i + 1), cpu_of(i + 1),
                               app_of(i + 2), cpu_of(i + 2));
    }
  } else {
    for (; i + 1 < n; i += 2) {
      const double ero = profiles_->ero.Get(app_of(i), app_of(i + 1));
      poc += ero * (cpu_of(i) + cpu_of(i + 1));
    }
  }
  slot->poc_groups = poc;

  slot->tail_count = static_cast<int>(n - i);
  OPTUM_CHECK(slot->tail_count >= 0 && slot->tail_count <= 2);
  double tail_poc = 0.0;
  if (slot->tail_count >= 1) {
    slot->tail_app[0] = app_of(i);
    slot->tail_cpu[0] = cpu_of(i);
  }
  if (slot->tail_count == 1) {
    tail_poc = cpu_of(i);
  } else if (slot->tail_count == 2) {
    slot->tail_app[1] = app_of(i + 1);
    slot->tail_cpu[1] = cpu_of(i + 1);
    tail_poc = profiles_->ero.Get(app_of(i), app_of(i + 1)) *
               (cpu_of(i) + cpu_of(i + 1));
  }
  slot->tail_poc = tail_poc;

  double pom = 0.0;
  for (size_t k = 0; k < n; ++k) {
    pom += MemEstimate(host.pods[k]->spec.app, host.pods[k]->spec.request);
  }
  slot->pom = pom;
}

Resources ResourceUsagePredictor::PredictHost(const Host& host,
                                              const PodSpec* incoming) const {
  if (!cache_enabled_ || host.id < 0) {
    return PredictHostRescan(host, incoming);
  }
  const size_t idx = static_cast<size_t>(host.id);
  if (idx >= cache_.size()) {
    cache_.resize(idx + 1);
  }
  HostBaseline& slot = cache_[idx];
  const uint64_t ero_version = profiles_->ero.version();
  if (slot.host_epoch != host.change_epoch || slot.ero_version != ero_version ||
      slot.generation != generation_) {
    RecomputeBaseline(host, &slot);
    slot.host_epoch = host.change_epoch;
    slot.ero_version = ero_version;
    slot.generation = generation_;
  }
  if (incoming == nullptr) {
    return Resources{slot.poc_groups + slot.tail_poc, slot.pom};
  }
  // The incoming pod extends (or starts) the trailing group; everything
  // before it is untouched, so the delta is one group estimate.
  double final_group = 0.0;
  switch (slot.tail_count) {
    case 0:
      final_group = incoming->request.cpu;
      break;
    case 1:
      final_group = profiles_->ero.Get(slot.tail_app[0], incoming->app) *
                    (slot.tail_cpu[0] + incoming->request.cpu);
      break;
    default:  // 2, triple-wise only: the trailing pair becomes a triple.
      final_group =
          TripleCpuEstimate(slot.tail_app[0], slot.tail_cpu[0], slot.tail_app[1],
                            slot.tail_cpu[1], incoming->app, incoming->request.cpu);
      break;
  }
  return Resources{slot.poc_groups + final_group,
                   slot.pom + MemEstimate(incoming->app, incoming->request)};
}

void ResourceUsagePredictor::ReserveHosts(size_t num_hosts) const {
  if (cache_.size() < num_hosts) {
    cache_.resize(num_hosts);
  }
}

void ResourceUsagePredictor::InvalidateAll() { ++generation_; }

}  // namespace optum::core
