// Optum's Resource Usage Predictor (paper §4.3.2, Eq. 7-8).
//
// CPU: pods on a host are paired in scheduling order; each pair's usage is
// estimated as ERO(A_{2i-1}, A_{2i}) * (Cr_{2i-1} + Cr_{2i}), the odd pod
// out contributing its full request:
//     POC_h = sum_i EC(p_{2i-1}, p_{2i}) + ((n+1) mod 2) * Cr_{n+1}.
// Memory: the sum over pods of mem_profile(A_i) * Mr_i (conservative).
#ifndef OPTUM_SRC_CORE_RESOURCE_USAGE_PREDICTOR_H_
#define OPTUM_SRC_CORE_RESOURCE_USAGE_PREDICTOR_H_

#include "src/core/profiles.h"
#include "src/predict/usage_predictor.h"
#include "src/sim/cluster.h"

namespace optum::core {

class ResourceUsagePredictor {
 public:
  // Grouping arity for the CPU estimate: pairs (the paper's deployed
  // configuration) or triples (the §4.2.2 extension; falls back to the
  // pairwise bound for unobserved triples).
  enum class Grouping { kPairwise, kTripleWise };

  // `profiles` must outlive the predictor.
  explicit ResourceUsagePredictor(const OptumProfiles* profiles,
                                  Grouping grouping = Grouping::kPairwise);

  // Predicted (CPU, mem) usage of `host` if `incoming` (optional) were
  // appended to its pod list. Pass nullptr to predict the host as-is.
  Resources PredictHost(const Host& host, const PodSpec* incoming) const;

  Grouping grouping() const { return grouping_; }

 private:
  double MemEstimate(AppId app, const Resources& request) const;
  // Tightest estimate for three pods: the observed triple ERO when
  // available, otherwise min over pairings of ERO(x,y)*(rx+ry) + rz.
  double TripleCpuEstimate(AppId a, double ra, AppId b, double rb, AppId c,
                           double rc) const;

  const OptumProfiles* profiles_;
  Grouping grouping_;
};

// Adapter so the fig11 bench can score Optum's predictor alongside the
// industry baselines through the common UsagePredictor interface.
class OptumUsagePredictorAdapter : public UsagePredictor {
 public:
  explicit OptumUsagePredictorAdapter(const OptumProfiles* profiles)
      : impl_(profiles) {}

  double PredictHostCpu(const Host& host) const override {
    return impl_.PredictHost(host, nullptr).cpu;
  }
  double PredictHostMem(const Host& host) const override {
    return impl_.PredictHost(host, nullptr).mem;
  }
  std::string name() const override { return "Optum"; }

 private:
  ResourceUsagePredictor impl_;
};

}  // namespace optum::core

#endif  // OPTUM_SRC_CORE_RESOURCE_USAGE_PREDICTOR_H_
