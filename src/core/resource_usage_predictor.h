// Optum's Resource Usage Predictor (paper §4.3.2, Eq. 7-8).
//
// CPU: pods on a host are paired in scheduling order; each pair's usage is
// estimated as ERO(A_{2i-1}, A_{2i}) * (Cr_{2i-1} + Cr_{2i}), the odd pod
// out contributing its full request:
//     POC_h = sum_i EC(p_{2i-1}, p_{2i}) + ((n+1) mod 2) * Cr_{n+1}.
// Memory: the sum over pods of mem_profile(A_i) * Mr_i (conservative).
//
// Scoring a candidate host evaluates PredictHost(host, &pod) for every
// sampled candidate, so the predictor keeps a per-host baseline cache: the
// full-group CPU sum, the trailing incomplete group (the only part an
// appended pod can change), and the memory sum. A cached prediction is the
// baseline plus an O(1) final-group delta and is bit-identical to a full
// rescan. Entries are validated against Host::change_epoch (pod placement /
// removal) and EroTable::version() (online ERO observations); profile swaps
// must call InvalidateAll().
#ifndef OPTUM_SRC_CORE_RESOURCE_USAGE_PREDICTOR_H_
#define OPTUM_SRC_CORE_RESOURCE_USAGE_PREDICTOR_H_

#include <cstdint>
#include <vector>

#include "src/core/profiles.h"
#include "src/predict/usage_predictor.h"
#include "src/sim/cluster.h"

namespace optum::core {

class ResourceUsagePredictor {
 public:
  // Grouping arity for the CPU estimate: pairs (the paper's deployed
  // configuration) or triples (the §4.2.2 extension; falls back to the
  // pairwise bound for unobserved triples).
  enum class Grouping { kPairwise, kTripleWise };

  // `profiles` must outlive the predictor.
  explicit ResourceUsagePredictor(const OptumProfiles* profiles,
                                  Grouping grouping = Grouping::kPairwise);

  // Predicted (CPU, mem) usage of `host` if `incoming` (optional) were
  // appended to its pod list. Pass nullptr to predict the host as-is.
  // Amortized O(1) per call when the cache is enabled (default); callers
  // that score candidates in parallel must ReserveHosts() first so no slot
  // allocation happens inside worker threads. Concurrent calls on
  // *distinct* hosts are safe; the same host must not be predicted from two
  // threads at once unless its cache entry is already warm.
  Resources PredictHost(const Host& host, const PodSpec* incoming) const;

  // The uncached reference path: rebuilds the full Eq. 8 pairing. Exposed
  // so equivalence tests (and the hotpath bench baseline) can compare.
  Resources PredictHostRescan(const Host& host, const PodSpec* incoming) const;

  // Pre-sizes the per-host cache so PredictHost never reallocates; call
  // before scoring candidates from multiple threads.
  void ReserveHosts(size_t num_hosts) const;

  // Drops every cached baseline (profile swap: ERO table and memory
  // profiles may both have changed wholesale).
  void InvalidateAll();

  // Disables/enables the baseline cache; disabled mode always rescans.
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }
  bool cache_enabled() const { return cache_enabled_; }

  Grouping grouping() const { return grouping_; }

 private:
  // Cached baseline for one host: POC split into the full-group sum plus
  // the trailing incomplete group (at most grouping-arity - 1 pods), POM as
  // a running sum. An appended pod can only extend the trailing group, so
  // the incremental prediction reuses everything else untouched.
  struct HostBaseline {
    static constexpr uint64_t kNeverComputed = ~0ULL;
    uint64_t host_epoch = kNeverComputed;
    uint64_t ero_version = 0;
    uint64_t generation = 0;
    double poc_groups = 0.0;  // CPU estimate over full groups, in order
    double pom = 0.0;         // memory estimate over all pods
    double tail_poc = 0.0;    // baseline CPU contribution of the tail pods
    int tail_count = 0;       // pods in the trailing incomplete group (0..2)
    AppId tail_app[2] = {kInvalidAppId, kInvalidAppId};
    double tail_cpu[2] = {0.0, 0.0};
  };

  double MemEstimate(AppId app, const Resources& request) const;
  // Tightest estimate for three pods: the observed triple ERO when
  // available, otherwise min over pairings of ERO(x,y)*(rx+ry) + rz.
  double TripleCpuEstimate(AppId a, double ra, AppId b, double rb, AppId c,
                           double rc) const;

  void RecomputeBaseline(const Host& host, HostBaseline* slot) const;

  const OptumProfiles* profiles_;
  Grouping grouping_;
  bool cache_enabled_ = true;
  uint64_t generation_ = 0;
  mutable std::vector<HostBaseline> cache_;
};

// Adapter so the fig11 bench can score Optum's predictor alongside the
// industry baselines through the common UsagePredictor interface.
class OptumUsagePredictorAdapter : public UsagePredictor {
 public:
  explicit OptumUsagePredictorAdapter(const OptumProfiles* profiles)
      : impl_(profiles) {}

  double PredictHostCpu(const Host& host) const override {
    return impl_.PredictHost(host, nullptr).cpu;
  }
  double PredictHostMem(const Host& host) const override {
    return impl_.PredictHost(host, nullptr).mem;
  }
  std::string name() const override { return "Optum"; }

 private:
  ResourceUsagePredictor impl_;
};

}  // namespace optum::core

#endif  // OPTUM_SRC_CORE_RESOURCE_USAGE_PREDICTOR_H_
