#include "src/core/optum_system.h"

namespace optum::core {

OptumSystem::OptumSystem(OptumSystemConfig config, OptumProfiles bootstrap)
    : config_(config), coordinator_(config.tracing) {
  scheduler_ = std::make_unique<OptumScheduler>(std::move(bootstrap), config_.scheduler);
}

PlacementDecision OptumSystem::Place(const PodSpec& pod, const AppProfile& app,
                                     const ClusterState& cluster) {
  return scheduler_->Place(pod, app, cluster);
}

void OptumSystem::OnTickEnd(const ClusterState& cluster, Tick now) {
  coordinator_.OnTick(cluster, now);
  scheduler_->ObserveColocation(cluster, now);

  if (config_.reprofile_period <= 0 || now < config_.warmup) {
    return;
  }
  if (last_reprofile_ >= 0 && now - last_reprofile_ < config_.reprofile_period) {
    return;
  }
  last_reprofile_ = now;

  // Background profiling pass over the tracing window (Fig. 17 ❷❸).
  // The freshly built ERO table starts from this window's observations;
  // merge in the scheduler's online ERO so peaks seen outside the window
  // are not forgotten (ERO keeps maxima, so the merge is a union of maxima
  // realized by re-observing... the scheduler's table is authoritative for
  // pairs the window missed).
  const TraceBundle window = coordinator_.Snapshot();
  if (window.pod_usage.empty()) {
    return;
  }
  OfflineProfiler profiler(config_.profiler);
  OptumProfiles fresh = profiler.BuildProfiles(window);
  // Preserve previously learned pair/triple peaks: ERO semantics are
  // maxima over all history, not just the current window.
  const EroTable& old = scheduler_->profiles().ero;
  // EroTable has no iteration API by design; rather than widen it, keep
  // the stronger table: start from the old one and fold in the window's
  // observations via the fresh table's entries where they are tighter is
  // NOT sound (old maxima must survive). The window rebuild may only
  // *lower* values for pairs whose peak fell outside the window, so keep
  // the old table and let ObserveColocation keep raising it.
  fresh.ero = old;
  scheduler_->ReplaceProfiles(std::move(fresh));
  ++reprofiles_;
}

}  // namespace optum::core
