// Distributed unified scheduling (paper §4.4): "When the data center scale
// is very large, the resource management system may include multiple
// distributed unified schedulers that work in parallel, and each scheduler
// is responsible for scheduling a portion of submitted pods." Decisions can
// conflict — pods landing on the same host simultaneously invalidate each
// other's usage/interference predictions — so the Deployment Module commits
// only the highest-scoring pod per host and re-dispatches the rest.
//
// DistributedCoordinator shards a batch of pending pods round-robin across
// K independent OptumScheduler instances, runs their decisions in parallel
// against a shared read-only cluster snapshot, resolves conflicts, and
// loops re-dispatched pods until the batch is placed or stably rejected.
#ifndef OPTUM_SRC_CORE_DISTRIBUTED_H_
#define OPTUM_SRC_CORE_DISTRIBUTED_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/deployment.h"
#include "src/core/optum_scheduler.h"

namespace optum::core {

struct DistributedConfig {
  // Number of parallel Online Schedulers.
  size_t num_schedulers = 4;
  // Placement attempts per pod (rejections and lost conflicts both count)
  // before the pod is returned as unplaced.
  size_t max_attempts_per_pod = 4;
  // Scoring threads *inside* each shard (0 = serial). Shards always run
  // concurrently with each other on the coordinator pool; this additionally
  // parallelizes candidate scoring within a shard's decision. Scoring is
  // bit-identical across thread counts (OptumConfig::num_threads contract),
  // so this only changes wall-clock, never placements.
  size_t shard_num_threads = 0;
  // Conflict-round pipelining (DESIGN.md §12): with depth D > 1, each shard
  // keeps up to D-1 future head pods speculatively sampled and scored
  // against an epoch-snapshotted host view, and each round merely
  // revalidates the candidates whose hosts the intervening commits touched
  // (epoch-stamped evaluation memo) instead of rescoring from scratch.
  // Placements, scores, spans, and rounds are bit-identical for every
  // depth (OptumScheduler speculation contract); depth 1 is the classic
  // score-then-resolve loop. Shards with a decision log attached decline
  // speculation and fall back to in-round scoring on their own.
  size_t pipeline_depth = 1;
  // Configuration template for each shard scheduler; the seed is salted
  // per shard so the shards sample different host subsets.
  OptumConfig scheduler_config;
};

struct DistributedOutcome {
  // One entry per pod placed this batch, in commit order.
  std::vector<ScheduleProposal> placed;
  // Pods no shard could place (resource shortage), with the last reason.
  std::vector<std::pair<const PodSpec*, WaitReason>> unplaced;
  // Conflicts resolved across all rounds (re-dispatched proposals).
  int64_t conflicts_resolved = 0;
  int64_t rounds_used = 0;
};

class DistributedCoordinator {
 public:
  // Each shard receives its own copy of `profiles` (trained models are
  // shared immutably), so shard decisions are safely parallel.
  DistributedCoordinator(const OptumProfiles& profiles, DistributedConfig config);
  ~DistributedCoordinator();

  // Schedules a batch. Each shard works through its own slice of the batch
  // one pod at a time — exactly one in-flight decision per shard per round,
  // as in a real fleet of parallel schedulers — and `commit` is invoked for
  // every winning proposal, in order; it must apply the placement to the
  // cluster so the next round's decisions see the updated state. The
  // coordinator never mutates the cluster itself.
  DistributedOutcome ScheduleBatch(
      const std::vector<const PodSpec*>& pods, const ClusterState& cluster,
      const std::function<void(const ScheduleProposal&)>& commit);

  size_t num_schedulers() const { return shards_.size(); }
  OptumScheduler& shard(size_t i) { return *shards_[i]; }

  // Unified sink attach (obs::Sinks contract). Adopts:
  //   * sinks.metrics — the coordinator publishes dist.rounds /
  //     dist.commits / dist.conflicts counters and times each
  //     conflict-resolution round into dist.round_seconds; every shard
  //     scheduler attaches (metrics only) at its own registry lane (shard s
  //     uses lane s, the lane its decisions run on), under prefix
  //     "optum.shard<s>" — distinct lanes keep concurrent shard updates on
  //     distinct metric shards.
  //   * sinks.span_log — pod-lifecycle spans. Only the serial
  //     conflict-resolution phase appends — placed spans for committed
  //     winners (in commit order) and conflict_retried spans for proposals
  //     that lost their host (in shard order) — never the parallel shard
  //     decisions, so the file is deterministic for a given batch.
  //   * sinks.profile — phase-level round profiler (DESIGN.md §14). Each
  //     shard task times its head settle (finalize_revalidate) and
  //     speculative top-up (spec_score) into its own profiler lane; the
  //     serial phase times resolve/commit into lane 0, measures the barrier
  //     wall, and closes the round via EndRound. Both scopes run on every
  //     active shard-round regardless of pipeline_depth, so scope counts
  //     stay bit-identical across the depth × thread matrix.
  // Other fields are ignored; shard-level span/decision logs are
  // deliberately NOT forwarded (shards decide on parallel pool tasks —
  // interleaved emission would be nondeterministic). Attach those via
  // shard(i) directly, after this call, only when the caller serializes the
  // shards itself.
  void AttachSinks(const obs::Sinks& sinks);

 private:
  std::vector<std::unique_ptr<OptumScheduler>> shards_;
  DeploymentModule deployment_;
  ThreadPool pool_;
  size_t max_attempts_per_pod_;
  size_t pipeline_depth_;

  // Per-shard speculation pipeline (pipeline_depth > 1): specs[j] holds the
  // speculative score for the j-th pod still waiting in that shard's batch
  // queue, in queue order ("speculation prefix" invariant — requeues append
  // to the back of the queue, so the prefix never needs repair). `free`
  // recycles SpeculativeScore buffers so steady state allocates nothing.
  struct ShardPipeline {
    std::deque<OptumScheduler::SpeculativeScore> specs;
    std::vector<OptumScheduler::SpeculativeScore> free;
  };
  std::vector<ShardPipeline> pipelines_;

  // Nullable observability sinks (single branch when detached).
  obs::Sinks sinks_;
  obs::Counter* rounds_counter_ = nullptr;
  obs::Counter* commits_counter_ = nullptr;
  obs::Counter* conflicts_counter_ = nullptr;
  obs::Histogram* round_timer_ = nullptr;
  obs::SpanLog* span_log_ = nullptr;
  obs::RoundProfiler* profiler_ = nullptr;
};

}  // namespace optum::core

#endif  // OPTUM_SRC_CORE_DISTRIBUTED_H_
