// Optum's Interference Predictor (paper §4.3.3, Eq. 9-10): estimates, for
// every pod on a candidate host, the interference it would suffer after a
// new pod is placed there — the profiled PSI for LS pods, the profiled
// normalized completion time for BE pods. Predictions depend only on the
// pod's application and the host's predicted utilization, so they are
// cached per (app, utilization bucket).
//
// Every cached value is a pure function of its cache key: the model is
// evaluated at the bucket's canonical point, not at the raw utilization
// that happened to trigger the miss. That makes predictions independent of
// cache history (warm vs cold, cleared vs not) and lets parallel candidate
// scoring keep one private cache shard per thread-pool lane while staying
// bit-identical to serial scoring — whichever lane computes a value, it
// computes the same one.
#ifndef OPTUM_SRC_CORE_INTERFERENCE_PREDICTOR_H_
#define OPTUM_SRC_CORE_INTERFERENCE_PREDICTOR_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/core/prediction_cache.h"
#include "src/core/profiles.h"
#include "src/obs/metrics.h"
#include "src/sim/cluster.h"

namespace optum::core {

class InterferencePredictor {
 public:
  // `profiles` must outlive the predictor. cache_buckets controls the
  // utilization-space granularity of the prediction cache.
  //
  // use_host_app_counts selects how the per-host application histogram is
  // obtained: true reads Host::app_counts (maintained incrementally by
  // ClusterState); false rebuilds it from Host::pods on every call — the
  // pre-incremental behaviour, kept as the benchmark baseline and for
  // equivalence testing against the incremental structures.
  explicit InterferencePredictor(const OptumProfiles* profiles,
                                 size_t cache_buckets = 64,
                                 bool use_host_app_counts = true);

  // Creates `n` (>= 1) private cache shards. A `lane` argument below indexes
  // them; concurrent calls are safe iff they use distinct lanes. Existing
  // shards keep their contents; results never depend on lane assignment
  // because cached values are pure functions of their keys.
  void set_num_lanes(size_t n);
  size_t num_lanes() const { return lanes_.size(); }

  // RI for one pod of application `app` on a host whose predicted CPU/mem
  // utilizations (POC/Cap, POM/Cap) are given. Returns 0 when the app has
  // no usable model (no interference information, paper §5.2 optimizes only
  // apps with accurate profiles).
  double Predict(AppId app, double host_cpu_util, double host_mem_util,
                 size_t lane = 0) const;

  // Sum of RI over all pods currently on `host` plus the incoming pod, at
  // the given post-placement utilization (paper Eq. 11, literal form).
  // Pods of the same application share one prediction (their Eq. 9/10
  // features are identical), so cost is O(#distinct apps).
  double TotalInterference(const Host& host, const PodSpec& incoming,
                           double host_cpu_util, double host_mem_util,
                           double weight_ls, double weight_be,
                           size_t lane = 0) const;

  // Sum of RI over the pods already resident on `host` — no incoming pod —
  // at the host's *current* utilization, snapped to a coarse 8-bucket grid
  // (the signal rides an EWMA; candidate-scoring resolution would buy
  // nothing but cache misses). The pressure sensor (DESIGN.md §13) feeds
  // this into the per-host pressure signal; a per-host memo keyed on
  // (change_epoch, coarse buckets, weights) makes repeated sweeps O(1) per
  // unchanged host, and every computed value comes from the key-pure lane
  // cache, so results are independent of cache history and thread count.
  // Serial callers only (see ResidentMemo below).
  double ResidentInterference(const Host& host, double host_cpu_util,
                              double host_mem_util, double weight_ls,
                              double weight_be, size_t lane = 0) const;

  // Marginal form: the increase in interference the incoming pod causes to
  // the pods already on the host (RI at post-placement utilization minus RI
  // at current utilization), plus the incoming pod's own absolute RI. This
  // is the exact greedy step for the global objective of Eq. 6 — the
  // literal Eq. 11 sum adds a per-pod constant that double-counts
  // pre-existing interference across candidate hosts.
  //
  // A single pod shifts host utilization by ~1%, below both the tree
  // granularity of the forest and the output discretization, so the delta
  // is estimated as a finite-difference slope over a wider utilization span
  // on the raw (undiscretized) model output.
  double MarginalInterference(const Host& host, const PodSpec& incoming,
                              double cpu_util_before, double mem_util_before,
                              double cpu_util_after, double mem_util_after,
                              double weight_ls, double weight_be,
                              size_t lane = 0) const;

  // Raw model output (no output discretization), cached on a fine
  // utilization grid; used for slope estimation.
  double PredictRaw(AppId app, double host_cpu_util, double host_mem_util,
                    size_t lane = 0) const;

  // Both endpoints of a finite-difference slope in one call: raw model
  // output at (cpu_lo, mem) and (cpu_hi, mem). Cache-missing endpoints are
  // gathered into one feature block and evaluated with a single
  // PredictBatch, so the forest amortizes tree descent across the pair.
  // Bit-identical to two PredictRaw calls (hi first, then lo).
  void PredictRawSpan(AppId app, double cpu_lo, double cpu_hi, double mem_util,
                      size_t lane, double* out_lo, double* out_hi) const;

  // Drops all cached predictions (every lane) and re-syncs the AppId-indexed
  // model table; call after the profiles object is replaced wholesale.
  void ClearCache();
  size_t cache_size() const { return lanes_[0].cache.size(); }

  // Hit/miss tallies of the three caches, maintained unconditionally (each
  // is one lane-private non-atomic increment on an already-hot line, well
  // inside the observability overhead budget). Merged across lanes; read
  // only while no lane is scoring.
  struct CacheStats {
    uint64_t predict_hits = 0, predict_misses = 0;
    uint64_t raw_hits = 0, raw_misses = 0;
    uint64_t slope_hits = 0, slope_misses = 0;
    // Forest evaluations (DecisionTreeRegressor descents) actually run —
    // every cache miss costs exactly one.
    uint64_t forest_evals() const { return predict_misses + raw_misses; }
    uint64_t hits() const { return predict_hits + raw_hits + slope_hits; }
    uint64_t misses() const { return predict_misses + raw_misses + slope_misses; }
  };
  CacheStats cache_stats() const;
  // Total misses charged to one lane; the scheduler uses before/after
  // deltas to tag decision-log candidates with their cache-miss cost.
  uint64_t lane_misses(size_t lane) const {
    const LaneCaches& l = lanes_[lane];
    return l.predict_misses + l.raw_misses + l.slope_misses;
  }

  // Attaches the forest-evaluation timer: slope-cache misses (two raw-model
  // evaluations each) record their latency into `sink` at shard
  // `lane_base + lane`. The sink must have at least lane_base + num_lanes()
  // shards; nullptr (the default) disables timing entirely.
  void set_forest_timer(obs::Histogram* sink, size_t lane_base = 0) {
    forest_timer_ = sink;
    forest_timer_lane_base_ = lane_base;
  }

 private:
  // One lane's private shard of the three caches. Cache-line aligned so two
  // lanes' hot metadata (size/mask) never share a line across workers.
  struct alignas(64) LaneCaches {
    PredictionCache cache;        // discretized Predict values
    PredictionCache raw_cache;    // undiscretized PredictRaw values
    // Finite-difference slopes for MarginalInterference, keyed on (app,
    // coarse before/after utilization buckets); shared by both histogram
    // paths so the incremental and rebuild modes stay numerically identical.
    PredictionCache slope_cache;
    // Lane-private hit/miss tallies (see CacheStats). Survive Clear() —
    // they count work over the predictor's lifetime, not cache contents.
    uint64_t predict_hits = 0, predict_misses = 0;
    uint64_t raw_hits = 0, raw_misses = 0;
    uint64_t slope_hits = 0, slope_misses = 0;
  };

  // Bucket index of a utilization value on a `buckets`-wide grid over [0, 2]
  // (the packing the cache keys use).
  static uint64_t UtilBucket(double v, size_t buckets);
  // Canonical evaluation point of a bucket: its center, clamped to [0, 2].
  // All cache misses for the bucket evaluate the model here, making the
  // stored value key-pure.
  static double BucketPoint(uint64_t bucket, size_t buckets);

  double PredictImpl(const AppModel& model, double host_cpu_util,
                     double host_mem_util) const;
  // Flat-index lookup; AppIds are dense, so this replaces a hash find on
  // the scoring hot path. Null when the app has no profile.
  const AppModel* FindModel(AppId app) const {
    return app >= 0 && static_cast<size_t>(app) < by_app_.size()
               ? by_app_[static_cast<size_t>(app)]
               : nullptr;
  }
  void RebuildAppIndex();

  // Per-host memo for ResidentInterference (the DESIGN.md §13 pressure
  // sweep). The weighted sum is a pure function of the host's app_counts
  // histogram — versioned by Host::change_epoch — and the coarse
  // utilization buckets Predict quantizes its inputs to, so a sweep only
  // pays the per-app cache walk for hosts that changed since the last one.
  // Lane is deliberately absent from the key: cached Predict values are
  // key-pure, so every lane returns the same number. Callers are the serial
  // pressure paths (simulator tick, placement-service round, bench mirror);
  // concurrent ResidentInterference calls are NOT safe, matching the
  // serial-emission contract of the monitor this feeds.
  struct ResidentMemo {
    uint64_t epoch = std::numeric_limits<uint64_t>::max();  // never a real epoch
    uint64_t cpu_bucket = 0;
    uint64_t mem_bucket = 0;
    double weight_ls = 0.0;
    double weight_be = 0.0;
    double value = 0.0;
  };

  // Side of the coarse utilization grid ResidentInterference snaps its
  // inputs to (see the .cc): kResidentBuckets^2 cells over [0, 2]^2.
  static constexpr size_t kResidentBuckets = 8;

  const OptumProfiles* profiles_;
  size_t cache_buckets_;
  bool use_host_app_counts_;
  // Pointers into profiles_->apps values; valid until the map is mutated
  // (profile replacement calls ClearCache, which rebuilds the index).
  // Read-only during scoring, so safely shared across lanes.
  std::vector<const AppModel*> by_app_;
  mutable std::vector<LaneCaches> lanes_;
  // Indexed by host id, grown on demand; dropped by ClearCache() with the
  // lane caches (model replacement invalidates every stored sum).
  mutable std::vector<ResidentMemo> resident_memo_;
  // Flat per-app cache over the coarse resident grid: cell
  // [app * 64 + cpu_bucket * 8 + mem_bucket] holds exactly what
  // Predict(app, cell center) returns (filled through Predict on first
  // touch, so values stay bit-identical to the lane-cache path). Turns the
  // per-app walk for a changed host into direct loads instead of hash
  // probes. Serial pressure callers only; sized by RebuildAppIndex, cleared
  // with the lane caches.
  mutable std::vector<double> resident_grid_;
  mutable std::vector<uint8_t> resident_grid_valid_;
  // Nullable observability sink (see set_forest_timer).
  obs::Histogram* forest_timer_ = nullptr;
  size_t forest_timer_lane_base_ = 0;
};

}  // namespace optum::core

#endif  // OPTUM_SRC_CORE_INTERFERENCE_PREDICTOR_H_
