// Deployment Module (paper §4.4). When several distributed Online
// Schedulers place pods in parallel, two pods can land on the same host in
// the same round; the Deployment Module commits only the pod with the
// highest Eq. 11 score per host and re-dispatches the rest.
#ifndef OPTUM_SRC_CORE_DEPLOYMENT_H_
#define OPTUM_SRC_CORE_DEPLOYMENT_H_

#include <vector>

#include "src/common/types.h"

namespace optum::core {

struct ScheduleProposal {
  PodId pod = kInvalidPodId;
  HostId host = kInvalidHostId;
  double score = 0.0;
};

struct DeploymentOutcome {
  std::vector<ScheduleProposal> committed;    // at most one per host
  std::vector<ScheduleProposal> redispatched; // losers, back to schedulers
};

class DeploymentModule {
 public:
  // Resolves one round of proposals. Proposals targeting distinct hosts all
  // commit; for each contended host only the highest score commits (ties
  // break toward the lower pod id for determinism).
  DeploymentOutcome Resolve(std::vector<ScheduleProposal> proposals) const;
};

}  // namespace optum::core

#endif  // OPTUM_SRC_CORE_DEPLOYMENT_H_
