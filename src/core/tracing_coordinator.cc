#include "src/core/tracing_coordinator.h"

#include <algorithm>

#include "src/common/check.h"

namespace optum::core {

TracingCoordinator::TracingCoordinator(TracingConfig config) : config_(config) {
  OPTUM_CHECK_GT(config_.window, 0);
}

void TracingCoordinator::Evict(Tick now) {
  const Tick cutoff = now - config_.window;
  while (!node_usage_.empty() && node_usage_.front().collect_tick < cutoff) {
    node_usage_.pop_front();
  }
  while (!pod_usage_.empty() && pod_usage_.front().collect_tick < cutoff) {
    pod_usage_.pop_front();
  }
  while (!lifecycles_.empty() && lifecycles_.front().finish_tick < cutoff) {
    lifecycles_.pop_front();
  }
  // Pod metadata for pods not seen within the window.
  for (auto it = pod_last_seen_.begin(); it != pod_last_seen_.end();) {
    if (it->second < cutoff) {
      pods_.erase(it->first);
      it = pod_last_seen_.erase(it);
    } else {
      ++it;
    }
  }
}

void TracingCoordinator::OnTick(const ClusterState& cluster, Tick now) {
  if (nodes_.empty()) {
    nodes_.reserve(cluster.num_hosts());
    for (const Host& host : cluster.hosts()) {
      nodes_.push_back(NodeMeta{host.id, host.capacity});
    }
  }

  // Track currently running pods and detect departures.
  std::unordered_map<PodId, PodLifecycleRecord> now_running;
  now_running.reserve(cluster.num_running_pods());

  const bool sample_nodes =
      config_.node_sample_period > 0 && now % config_.node_sample_period == 0;
  const bool sample_pods =
      config_.pod_sample_period > 0 && now % config_.pod_sample_period == 0;

  for (const Host& host : cluster.hosts()) {
    if (sample_nodes && !host.IsIdle()) {
      node_usage_.push_back(NodeUsageRecord{host.id, now,
                                            host.usage.cpu / host.capacity.cpu,
                                            host.usage.mem / host.capacity.mem, 0.0, 0.0});
    }
    for (const PodRuntime* pod : host.pods) {
      // Lifecycle bookkeeping.
      auto running_it = running_.find(pod->spec.id);
      if (running_it == running_.end()) {
        PodLifecycleRecord rec;
        rec.pod_id = pod->spec.id;
        rec.app_id = pod->spec.app;
        rec.slo = pod->spec.slo;
        rec.submit_tick = pod->spec.submit_tick;
        rec.schedule_tick = pod->scheduled_at;
        rec.host = host.id;
        rec.waiting_seconds =
            static_cast<double>(pod->scheduled_at - pod->spec.submit_tick) *
            kSecondsPerTick;
        rec.ideal_completion_ticks = pod->spec.behavior.work_ticks;
        now_running.emplace(pod->spec.id, rec);
      } else {
        now_running.emplace(pod->spec.id, running_it->second);
      }
      PodLifecycleRecord& rec = now_running[pod->spec.id];
      rec.max_cpu_psi = std::max(rec.max_cpu_psi, pod->psi60);

      if (sample_pods) {
        // Refresh metadata.
        PodMeta meta;
        meta.pod_id = pod->spec.id;
        meta.app_id = pod->spec.app;
        meta.slo = pod->spec.slo;
        meta.request = pod->spec.request;
        meta.limit = pod->spec.limit;
        meta.submit_tick = pod->spec.submit_tick;
        meta.original_machine_id = host.id;
        pods_[pod->spec.id] = meta;
        pod_last_seen_[pod->spec.id] = now;

        PodUsageRecord usage;
        usage.pod_id = pod->spec.id;
        usage.host = host.id;
        usage.collect_tick = now;
        usage.cpu_usage = pod->cpu_usage;
        usage.mem_usage = pod->mem_usage;
        usage.cpu_psi_60 = pod->psi60;
        usage.cpu_psi_10 = pod->psi60;  // 10 s window unavailable here
        usage.cpu_psi_300 = pod->psi300;
        usage.qps = pod->qps;
        pod_usage_.push_back(usage);
      }
    }
  }

  // Pods that were running last tick but are gone now have completed (or
  // were killed/preempted — indistinguishable from the tracing layer, as in
  // a real cluster where the coordinator sees container exit events).
  for (const auto& [pod_id, rec] : running_) {
    if (now_running.find(pod_id) != now_running.end()) {
      continue;
    }
    PodLifecycleRecord done = rec;
    done.finish_tick = now;
    done.actual_completion_ticks = static_cast<double>(now - done.schedule_tick);
    lifecycles_.push_back(done);
  }
  running_ = std::move(now_running);
  last_tick_ = now;
  Evict(now);
}

TraceBundle TracingCoordinator::Snapshot() const {
  TraceBundle out;
  out.nodes = nodes_;
  out.pods.reserve(pods_.size());
  for (const auto& [id, meta] : pods_) {
    out.pods.push_back(meta);
  }
  out.node_usage.assign(node_usage_.begin(), node_usage_.end());
  out.pod_usage.assign(pod_usage_.begin(), pod_usage_.end());
  out.lifecycles.assign(lifecycles_.begin(), lifecycles_.end());
  return out;
}

}  // namespace optum::core
