#include "src/core/deployment.h"

#include <algorithm>
#include <unordered_map>

namespace optum::core {

DeploymentOutcome DeploymentModule::Resolve(
    std::vector<ScheduleProposal> proposals) const {
  // Winner per host: highest score, ties to the lowest pod id.
  std::unordered_map<HostId, size_t> winner;
  winner.reserve(proposals.size());
  for (size_t i = 0; i < proposals.size(); ++i) {
    const auto [it, inserted] = winner.try_emplace(proposals[i].host, i);
    if (inserted) {
      continue;
    }
    const ScheduleProposal& incumbent = proposals[it->second];
    const ScheduleProposal& challenger = proposals[i];
    if (challenger.score > incumbent.score ||
        (challenger.score == incumbent.score && challenger.pod < incumbent.pod)) {
      it->second = i;
    }
  }
  DeploymentOutcome out;
  for (size_t i = 0; i < proposals.size(); ++i) {
    if (winner.at(proposals[i].host) == i) {
      out.committed.push_back(proposals[i]);
    } else {
      out.redispatched.push_back(proposals[i]);
    }
  }
  return out;
}

}  // namespace optum::core
