#include "src/core/optum_scheduler.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/obs/timer.h"
#include "src/sched/common.h"

namespace optum::core {

OptumScheduler::OptumScheduler(OptumProfiles profiles, OptumConfig config)
    : profiles_(std::make_unique<OptumProfiles>(std::move(profiles))),
      config_(config),
      usage_predictor_(profiles_.get(),
                       config.use_triple_ero
                           ? ResourceUsagePredictor::Grouping::kTripleWise
                           : ResourceUsagePredictor::Grouping::kPairwise),
      interference_predictor_(profiles_.get(), /*cache_buckets=*/64,
                              /*use_host_app_counts=*/config.use_incremental_cache),
      rng_(config.seed) {
  if (config_.num_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
    // One private prediction-cache shard per lane (workers + the calling
    // thread), so parallel scoring shares no mutable cache state.
    interference_predictor_.set_num_lanes(pool_->num_lanes());
  }
  usage_predictor_.set_cache_enabled(config_.use_incremental_cache);
}

OptumScheduler::~OptumScheduler() = default;

OptumScheduler::HostEvaluation OptumScheduler::EvaluateHost(const PodSpec& pod,
                                                            const Host& host,
                                                            size_t lane) const {
  HostEvaluation eval;
  const Resources predicted = usage_predictor_.PredictHost(host, &pod);
  const double cpu_util = predicted.cpu / host.capacity.cpu;
  const double mem_util = predicted.mem / host.capacity.mem;
  // Feasibility: estimated utilization below one (Eq. 6 constraint) and the
  // memory cap of §5.1. The same thresholds classify the shortfall for
  // wait-reason accounting on rejection.
  eval.cpu_blocked = cpu_util > 1.0;
  eval.mem_blocked = mem_util > config_.mem_util_limit;
  if (eval.cpu_blocked || eval.mem_blocked || !AffinityAllows(pod, host)) {
    return eval;
  }
  double interference = 0.0;
  if (config_.score_mode == ScoreMode::kPaperAbsolute) {
    interference = interference_predictor_.TotalInterference(
        host, pod, cpu_util, mem_util, config_.omega_o, config_.omega_b, lane);
  } else {
    const Resources before = usage_predictor_.PredictHost(host, nullptr);
    interference = interference_predictor_.MarginalInterference(
        host, pod, before.cpu / host.capacity.cpu, before.mem / host.capacity.mem,
        cpu_util, mem_util, config_.omega_o, config_.omega_b, lane);
  }
  eval.feasible = true;
  eval.cpu_util = cpu_util;
  eval.mem_util = mem_util;
  eval.interference = interference;
  eval.score = cpu_util * mem_util - interference;
  return eval;
}

bool OptumScheduler::ScoreHost(const PodSpec& pod, const Host& host, double* score) const {
  const HostEvaluation eval = EvaluateHost(pod, host);
  if (!eval.feasible) {
    return false;
  }
  *score = eval.score;
  return true;
}

PlacementDecision OptumScheduler::Place(const PodSpec& pod, const AppProfile& app,
                                        const ClusterState& cluster) {
  (void)app;
  double unused_score = 0.0;
  return PlaceScored(pod, cluster, &unused_score);
}

PlacementDecision OptumScheduler::PlaceScored(const PodSpec& pod,
                                              const ClusterState& cluster,
                                              double* best_score) {
  {
    // Sampling draws from the scheduler's own serial rng_ stream before any
    // parallel work, so the candidate set is identical for every num_threads.
    obs::ScopedTimer timer(sample_timer_, metrics_lane_base_);
    SampleHostsInto(cluster, config_.sample_fraction, config_.min_candidates, rng_,
                    &sample_scratch_, &candidates_);
  }
  scored_.resize(candidates_.size());

  // Candidates are sampled without replacement, so parallel scoring touches
  // distinct per-host cache slots; pre-size the cache so no worker resizes.
  usage_predictor_.ReserveHosts(cluster.num_hosts());

  // Each worker scores through its own lane's prediction-cache shard; the
  // scores are lane-independent, so any work distribution yields the same
  // scored_ array as a serial pass. With a decision log attached, each
  // candidate is additionally tagged with the lane-local miss delta its
  // scoring caused — reading two lane-private counters, which cannot
  // perturb the scores themselves.
  const bool tag_misses = decision_log_ != nullptr;
  auto score_candidate = [&](size_t lane, size_t i) {
    if (tag_misses) {
      const uint64_t misses_before = interference_predictor_.lane_misses(lane);
      scored_[i] = EvaluateHost(pod, cluster.host(candidates_[i]), lane);
      scored_[i].cache_misses =
          interference_predictor_.lane_misses(lane) - misses_before;
    } else {
      scored_[i] = EvaluateHost(pod, cluster.host(candidates_[i]), lane);
    }
  };

  {
    obs::ScopedTimer timer(score_timer_, metrics_lane_base_);
    if (pool_ != nullptr && candidates_.size() >= 2 * pool_->num_threads()) {
      pool_->ParallelForLane(candidates_.size(), score_candidate);
    } else {
      for (size_t i = 0; i < candidates_.size(); ++i) {
        score_candidate(0, i);
      }
    }
  }

  // Serial reduction in candidate order: ties break toward the earlier
  // sampled candidate regardless of which lane scored which index.
  size_t best = candidates_.size();
  int64_t feasible = 0;
  bool any_cpu = false, any_mem = false;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (scored_[i].feasible) {
      ++feasible;
      if (best == candidates_.size() || scored_[i].score > scored_[best].score) {
        best = i;
      }
    } else {
      any_cpu |= scored_[i].cpu_blocked;
      any_mem |= scored_[i].mem_blocked;
    }
  }
  PlacementDecision decision;
  if (best == candidates_.size()) {
    decision = PlacementDecision::Reject(ClassifyShortfall(any_cpu, any_mem));
    if (rejections_counter_ != nullptr) {
      rejections_counter_->Inc(metrics_lane_base_);
    }
  } else {
    *best_score = scored_[best].score;
    decision = PlacementDecision::Accept(candidates_[best]);
    if (placements_counter_ != nullptr) {
      placements_counter_->Inc(metrics_lane_base_);
    }
  }
  if (span_log_ != nullptr) {
    // Serial path: the scored_ reduction above is complete, so both spans
    // are pure functions of the (thread-count-invariant) candidate scores.
    span_log_->Append({.tick = cluster.now(),
                       .pod = pod.id,
                       .phase = obs::SpanPhase::kSampled,
                       .count = static_cast<int64_t>(candidates_.size())});
    obs::SpanEvent scored_span{.tick = cluster.now(),
                               .pod = pod.id,
                               .phase = obs::SpanPhase::kScored,
                               .count = feasible};
    if (best != candidates_.size()) {
      scored_span.has_score = true;
      scored_span.score = scored_[best].score;
    }
    span_log_->Append(scored_span);
  }
  if (decision_log_ != nullptr) {
    LogDecision(pod, cluster, decision);
  }
  return decision;
}

void OptumScheduler::AttachMetrics(obs::MetricRegistry* registry, size_t lane_base,
                                   const std::string& prefix) {
  metrics_ = registry;
  metrics_lane_base_ = lane_base;
  if (registry == nullptr) {
    sample_timer_ = nullptr;
    score_timer_ = nullptr;
    placements_counter_ = nullptr;
    rejections_counter_ = nullptr;
    interference_predictor_.set_forest_timer(nullptr);
    return;
  }
  if (pool_ != nullptr) {
    // Parallel scoring records at the pool's lane ids, so the base must be
    // zero and the registry must cover every lane.
    OPTUM_CHECK_MSG(lane_base == 0,
                    "a scheduler with its own scoring pool must attach at lane 0");
    registry->set_num_lanes(pool_->num_lanes());
  } else {
    registry->set_num_lanes(lane_base + 1);
  }
  sample_timer_ = registry->histogram(prefix + ".sample_seconds");
  score_timer_ = registry->histogram(prefix + ".score_seconds");
  placements_counter_ = registry->counter(prefix + ".placements");
  rejections_counter_ = registry->counter(prefix + ".rejections");
  interference_predictor_.set_forest_timer(
      registry->histogram(prefix + ".forest_eval_seconds"), lane_base);
  // Pull-style cache statistics: refreshed from the predictor's lane-merged
  // tallies at every registry sample/export, so the per-tick series tracks
  // hit-rate evolution without per-probe registry calls. The collector
  // holds a pointer to this scheduler: attach once, and keep the scheduler
  // alive until the registry's final export.
  const InterferencePredictor* predictor = &interference_predictor_;
  registry->AddCollector([predictor, prefix](obs::MetricRegistry* r) {
    const InterferencePredictor::CacheStats s = predictor->cache_stats();
    const auto rate = [](uint64_t hits, uint64_t misses) {
      const uint64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
    };
    r->gauge(prefix + ".pred_cache_hits")->Set(static_cast<double>(s.predict_hits));
    r->gauge(prefix + ".pred_cache_misses")
        ->Set(static_cast<double>(s.predict_misses));
    r->gauge(prefix + ".pred_cache_hit_rate")->Set(rate(s.predict_hits, s.predict_misses));
    r->gauge(prefix + ".raw_cache_hit_rate")->Set(rate(s.raw_hits, s.raw_misses));
    r->gauge(prefix + ".slope_cache_hits")->Set(static_cast<double>(s.slope_hits));
    r->gauge(prefix + ".slope_cache_misses")
        ->Set(static_cast<double>(s.slope_misses));
    r->gauge(prefix + ".slope_cache_hit_rate")->Set(rate(s.slope_hits, s.slope_misses));
    r->gauge(prefix + ".forest_evals")->Set(static_cast<double>(s.forest_evals()));
  });
}

void OptumScheduler::LogDecision(const PodSpec& pod, const ClusterState& cluster,
                                 const PlacementDecision& decision) {
  obs::DecisionTrace trace;
  trace.tick = cluster.now();
  trace.pod = pod.id;
  trace.app = pod.app;
  trace.slo = pod.slo;
  trace.candidates_sampled = candidates_.size();
  trace.chosen = decision.host;
  trace.reject_reason = ToString(decision.reason);

  // Top-k selection by score (ties toward the earlier candidate, matching
  // the reduction); k is small, so insertion into a fixed window is fine.
  const size_t k = decision_log_->top_k();
  std::vector<size_t> top;
  top.reserve(k + 1);
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (!scored_[i].feasible) {
      continue;
    }
    ++trace.candidates_feasible;
    size_t pos = top.size();
    while (pos > 0 && scored_[top[pos - 1]].score < scored_[i].score) {
      --pos;
    }
    if (pos < k) {
      top.insert(top.begin() + static_cast<ptrdiff_t>(pos), i);
      if (top.size() > k) {
        top.pop_back();
      }
    }
  }
  // The reduction's winner is always the top-ranked candidate: both orders
  // are by score with ties toward the earlier sample.
  if (decision.placed() && !top.empty()) {
    trace.chosen_score = scored_[top[0]].score;
  }
  for (const size_t i : top) {
    obs::CandidateTrace c;
    c.host = candidates_[i];
    c.feasible = true;
    c.score = scored_[i].score;
    c.cpu_util = scored_[i].cpu_util;
    c.mem_util = scored_[i].mem_util;
    c.usage_fit = scored_[i].cpu_util * scored_[i].mem_util;
    c.interference = scored_[i].interference;
    c.cache_misses = scored_[i].cache_misses;
    trace.top.push_back(c);
  }
  decision_log_->Append(trace);
}

void OptumScheduler::ReplaceProfiles(OptumProfiles profiles) {
  *profiles_ = std::move(profiles);
  interference_predictor_.ClearCache();
  // The ERO table and memory profiles changed wholesale (and the fresh
  // table's version counter may collide with the old one), so every cached
  // host baseline is stale.
  usage_predictor_.InvalidateAll();
}

void OptumScheduler::ObserveColocation(const ClusterState& cluster, Tick now) {
  if (config_.observe_period <= 0 || (last_observe_ >= 0 &&
                                      now - last_observe_ < config_.observe_period)) {
    return;
  }
  last_observe_ = now;
  // Per host, the two highest-usage pods per application, then pairwise RO
  // updates (including same-application pairs) — mirroring the offline
  // Resource Usage Profiler.
  struct Rep {
    AppId app;
    double cpu;
    double cpu_request;
    double cpu2 = -1.0;  // second-best usage; < 0 when absent
    double cpu2_request = 0.0;
  };
  std::vector<Rep> reps;
  for (const Host& host : cluster.hosts()) {
    if (host.pods.size() < 2) {
      continue;
    }
    reps.clear();
    for (const PodRuntime* pod : host.pods) {
      bool merged = false;
      for (auto& r : reps) {
        if (r.app == pod->spec.app) {
          if (pod->cpu_usage > r.cpu) {
            r.cpu2 = r.cpu;
            r.cpu2_request = r.cpu_request;
            r.cpu = pod->cpu_usage;
            r.cpu_request = pod->spec.request.cpu;
          } else if (pod->cpu_usage > r.cpu2) {
            r.cpu2 = pod->cpu_usage;
            r.cpu2_request = pod->spec.request.cpu;
          }
          merged = true;
          break;
        }
      }
      if (!merged) {
        reps.push_back(Rep{pod->spec.app, pod->cpu_usage, pod->spec.request.cpu});
      }
    }
    for (size_t a = 0; a < reps.size(); ++a) {
      if (reps[a].cpu2 >= 0.0) {
        const double denom = reps[a].cpu_request + reps[a].cpu2_request;
        if (denom > 0) {
          profiles_->ero.Observe(reps[a].app, reps[a].app,
                                 (reps[a].cpu + reps[a].cpu2) / denom);
        }
      }
      for (size_t b = a + 1; b < reps.size(); ++b) {
        const double denom = reps[a].cpu_request + reps[b].cpu_request;
        if (denom <= 0) {
          continue;
        }
        profiles_->ero.Observe(reps[a].app, reps[b].app,
                               (reps[a].cpu + reps[b].cpu) / denom);
        if (config_.use_triple_ero) {
          for (size_t c = b + 1; c < reps.size(); ++c) {
            const double denom3 =
                reps[a].cpu_request + reps[b].cpu_request + reps[c].cpu_request;
            if (denom3 <= 0) {
              continue;
            }
            profiles_->ero.ObserveTriple(reps[a].app, reps[b].app, reps[c].app,
                                         (reps[a].cpu + reps[b].cpu + reps[c].cpu) /
                                             denom3);
          }
        }
      }
    }
  }
}

}  // namespace optum::core
