#include "src/core/optum_scheduler.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/obs/timer.h"
#include "src/sched/common.h"

namespace optum::core {

OptumScheduler::OptumScheduler(OptumProfiles profiles, OptumConfig config)
    : profiles_(std::make_unique<OptumProfiles>(std::move(profiles))),
      config_(config),
      usage_predictor_(profiles_.get(),
                       config.use_triple_ero
                           ? ResourceUsagePredictor::Grouping::kTripleWise
                           : ResourceUsagePredictor::Grouping::kPairwise),
      interference_predictor_(profiles_.get(), /*cache_buckets=*/64,
                              /*use_host_app_counts=*/config.use_incremental_cache),
      rng_(config.seed) {
  if (config_.num_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
    // One private prediction-cache shard per lane (workers + the calling
    // thread), so parallel scoring shares no mutable cache state.
    interference_predictor_.set_num_lanes(pool_->num_lanes());
  }
  usage_predictor_.set_cache_enabled(config_.use_incremental_cache);
}

OptumScheduler::~OptumScheduler() = default;

OptumScheduler::HostEvaluation OptumScheduler::EvaluateHost(const PodSpec& pod,
                                                            const Host& host,
                                                            size_t lane) const {
  HostEvaluation eval;
  const Resources predicted = usage_predictor_.PredictHost(host, &pod);
  const double cpu_util = predicted.cpu / host.capacity.cpu;
  const double mem_util = predicted.mem / host.capacity.mem;
  // Feasibility: estimated utilization below one (Eq. 6 constraint) and the
  // memory cap of §5.1. The same thresholds classify the shortfall for
  // wait-reason accounting on rejection.
  eval.cpu_blocked = cpu_util > 1.0;
  eval.mem_blocked = mem_util > config_.mem_util_limit;
  if (eval.cpu_blocked || eval.mem_blocked || !AffinityAllows(pod, host)) {
    return eval;
  }
  double interference = 0.0;
  if (config_.score_mode == ScoreMode::kPaperAbsolute) {
    interference = interference_predictor_.TotalInterference(
        host, pod, cpu_util, mem_util, config_.omega_o, config_.omega_b, lane);
  } else {
    const Resources before = usage_predictor_.PredictHost(host, nullptr);
    interference = interference_predictor_.MarginalInterference(
        host, pod, before.cpu / host.capacity.cpu, before.mem / host.capacity.mem,
        cpu_util, mem_util, config_.omega_o, config_.omega_b, lane);
  }
  eval.feasible = true;
  eval.cpu_util = cpu_util;
  eval.mem_util = mem_util;
  eval.interference = interference;
  eval.score = cpu_util * mem_util - interference;
  return eval;
}

bool OptumScheduler::ScoreHost(const PodSpec& pod, const Host& host, double* score) const {
  const HostEvaluation eval = EvaluateHost(pod, host);
  if (!eval.feasible) {
    return false;
  }
  *score = eval.score;
  return true;
}

PlacementDecision OptumScheduler::Place(const PodSpec& pod, const AppProfile& app,
                                        const ClusterState& cluster) {
  (void)app;
  double unused_score = 0.0;
  return PlaceScored(pod, cluster, &unused_score);
}

PlacementDecision OptumScheduler::PlaceScored(const PodSpec& pod,
                                              const ClusterState& cluster,
                                              double* best_score) {
  {
    // Sampling draws from the scheduler's own serial rng_ stream before any
    // parallel work, so the candidate set is identical for every num_threads.
    obs::ScopedTimer timer(sample_timer_, metrics_lane_base_);
    SampleHostsInto(cluster, config_.sample_fraction, config_.min_candidates, rng_,
                    &sample_scratch_, &candidates_);
  }
  scored_.resize(candidates_.size());

  // Candidates are sampled without replacement, so parallel scoring touches
  // distinct per-host cache slots; pre-size the cache so no worker resizes.
  usage_predictor_.ReserveHosts(cluster.num_hosts());

  // Each worker scores through its own lane's prediction-cache shard; the
  // scores are lane-independent, so any work distribution yields the same
  // scored_ array as a serial pass. With a decision log attached, each
  // candidate is additionally tagged with the lane-local miss delta its
  // scoring caused — reading two lane-private counters, which cannot
  // perturb the scores themselves.
  const bool tag_misses = decision_log_ != nullptr;
  auto score_candidate = [&](size_t lane, size_t i) {
    if (tag_misses) {
      const uint64_t misses_before = interference_predictor_.lane_misses(lane);
      scored_[i] = EvaluateHost(pod, cluster.host(candidates_[i]), lane);
      scored_[i].cache_misses =
          interference_predictor_.lane_misses(lane) - misses_before;
    } else {
      scored_[i] = EvaluateHost(pod, cluster.host(candidates_[i]), lane);
    }
  };

  {
    obs::ScopedTimer timer(score_timer_, metrics_lane_base_);
    if (pool_ != nullptr && candidates_.size() >= 2 * pool_->num_threads()) {
      pool_->ParallelForLane(candidates_.size(), score_candidate);
    } else {
      for (size_t i = 0; i < candidates_.size(); ++i) {
        score_candidate(0, i);
      }
    }
  }

  return ReduceAndLog(pod, cluster, candidates_, scored_, best_score,
                      /*emit_decision_log=*/true);
}

PlacementDecision OptumScheduler::ReduceAndLog(
    const PodSpec& pod, const ClusterState& cluster,
    const std::vector<HostId>& candidates,
    const std::vector<HostEvaluation>& evals, double* best_score,
    bool emit_decision_log) {
  // Serial reduction in candidate order: ties break toward the earlier
  // sampled candidate regardless of which lane scored which index.
  size_t best = candidates.size();
  int64_t feasible = 0;
  bool any_cpu = false, any_mem = false;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (evals[i].feasible) {
      ++feasible;
      if (best == candidates.size() || evals[i].score > evals[best].score) {
        best = i;
      }
    } else {
      any_cpu |= evals[i].cpu_blocked;
      any_mem |= evals[i].mem_blocked;
    }
  }
  PlacementDecision decision;
  if (best == candidates.size()) {
    decision = PlacementDecision::Reject(ClassifyShortfall(any_cpu, any_mem));
    if (rejections_counter_ != nullptr) {
      rejections_counter_->Inc(metrics_lane_base_);
    }
  } else {
    *best_score = evals[best].score;
    decision = PlacementDecision::Accept(candidates[best]);
    if (placements_counter_ != nullptr) {
      placements_counter_->Inc(metrics_lane_base_);
    }
  }
  if (span_log_ != nullptr) {
    // Serial path: the reduction above is complete, so both spans are pure
    // functions of the (thread-count-invariant) candidate scores.
    span_log_->Append({.tick = cluster.now(),
                       .pod = pod.id,
                       .phase = obs::SpanPhase::kSampled,
                       .count = static_cast<int64_t>(candidates.size())});
    obs::SpanEvent scored_span{.tick = cluster.now(),
                               .pod = pod.id,
                               .phase = obs::SpanPhase::kScored,
                               .count = feasible};
    if (best != candidates.size()) {
      scored_span.has_score = true;
      scored_span.score = evals[best].score;
    }
    span_log_->Append(scored_span);
  }
  // LogDecision reads the candidates_/scored_ members, so the decision log
  // is only emitted from PlaceScored, where `candidates`/`evals` ARE those
  // members; speculative finalization never runs with a decision log
  // attached (speculation_supported() gates it).
  if (emit_decision_log && decision_log_ != nullptr) {
    LogDecision(pod, cluster, decision);
  }
  return decision;
}

void OptumScheduler::AttachSinks(const obs::Sinks& sinks, size_t lane_base,
                                 const std::string& prefix) {
  sinks_ = sinks;
  span_log_ = sinks.span_log;
  decision_log_ = sinks.decision_log;
  obs::MetricRegistry* registry = sinks.metrics;
  metrics_ = registry;
  metrics_lane_base_ = lane_base;
  if (registry == nullptr) {
    sample_timer_ = nullptr;
    score_timer_ = nullptr;
    placements_counter_ = nullptr;
    rejections_counter_ = nullptr;
    interference_predictor_.set_forest_timer(nullptr);
    return;
  }
  if (pool_ != nullptr) {
    // Parallel scoring records at the pool's lane ids, so the base must be
    // zero and the registry must cover every lane.
    OPTUM_CHECK_MSG(lane_base == 0,
                    "a scheduler with its own scoring pool must attach at lane 0");
    registry->set_num_lanes(pool_->num_lanes());
  } else {
    registry->set_num_lanes(lane_base + 1);
  }
  sample_timer_ = registry->histogram(prefix + ".sample_seconds");
  score_timer_ = registry->histogram(prefix + ".score_seconds");
  placements_counter_ = registry->counter(prefix + ".placements");
  rejections_counter_ = registry->counter(prefix + ".rejections");
  interference_predictor_.set_forest_timer(
      registry->histogram(prefix + ".forest_eval_seconds"), lane_base);
  // Pull-style cache statistics: refreshed from the predictor's lane-merged
  // tallies at every registry sample/export, so the per-tick series tracks
  // hit-rate evolution without per-probe registry calls. The collector
  // holds a pointer to this scheduler: attach once, and keep the scheduler
  // alive until the registry's final export.
  const InterferencePredictor* predictor = &interference_predictor_;
  registry->AddCollector([predictor, prefix](obs::MetricRegistry* r) {
    const InterferencePredictor::CacheStats s = predictor->cache_stats();
    const auto rate = [](uint64_t hits, uint64_t misses) {
      const uint64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
    };
    r->gauge(prefix + ".pred_cache_hits")->Set(static_cast<double>(s.predict_hits));
    r->gauge(prefix + ".pred_cache_misses")
        ->Set(static_cast<double>(s.predict_misses));
    r->gauge(prefix + ".pred_cache_hit_rate")->Set(rate(s.predict_hits, s.predict_misses));
    r->gauge(prefix + ".raw_cache_hit_rate")->Set(rate(s.raw_hits, s.raw_misses));
    r->gauge(prefix + ".slope_cache_hits")->Set(static_cast<double>(s.slope_hits));
    r->gauge(prefix + ".slope_cache_misses")
        ->Set(static_cast<double>(s.slope_misses));
    r->gauge(prefix + ".slope_cache_hit_rate")->Set(rate(s.slope_hits, s.slope_misses));
    r->gauge(prefix + ".forest_evals")->Set(static_cast<double>(s.forest_evals()));
  });
}

void OptumScheduler::LogDecision(const PodSpec& pod, const ClusterState& cluster,
                                 const PlacementDecision& decision) {
  obs::DecisionTrace trace;
  trace.tick = cluster.now();
  trace.pod = pod.id;
  trace.app = pod.app;
  trace.slo = pod.slo;
  trace.candidates_sampled = candidates_.size();
  trace.chosen = decision.host;
  trace.reject_reason = ToString(decision.reason);

  // Top-k selection by score (ties toward the earlier candidate, matching
  // the reduction); k is small, so insertion into a fixed window is fine.
  const size_t k = decision_log_->top_k();
  std::vector<size_t> top;
  top.reserve(k + 1);
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (!scored_[i].feasible) {
      continue;
    }
    ++trace.candidates_feasible;
    size_t pos = top.size();
    while (pos > 0 && scored_[top[pos - 1]].score < scored_[i].score) {
      --pos;
    }
    if (pos < k) {
      top.insert(top.begin() + static_cast<ptrdiff_t>(pos), i);
      if (top.size() > k) {
        top.pop_back();
      }
    }
  }
  // The reduction's winner is always the top-ranked candidate: both orders
  // are by score with ties toward the earlier sample.
  if (decision.placed() && !top.empty()) {
    trace.chosen_score = scored_[top[0]].score;
  }
  for (const size_t i : top) {
    obs::CandidateTrace c;
    c.host = candidates_[i];
    c.feasible = true;
    c.score = scored_[i].score;
    c.cpu_util = scored_[i].cpu_util;
    c.mem_util = scored_[i].mem_util;
    c.usage_fit = scored_[i].cpu_util * scored_[i].mem_util;
    c.interference = scored_[i].interference;
    c.cache_misses = scored_[i].cache_misses;
    trace.top.push_back(c);
  }
  decision_log_->Append(trace);
}

void OptumScheduler::ReplaceProfiles(OptumProfiles profiles) {
  *profiles_ = std::move(profiles);
  interference_predictor_.ClearCache();
  // The ERO table and memory profiles changed wholesale (and the fresh
  // table's version counter may collide with the old one), so every cached
  // host baseline is stale.
  usage_predictor_.InvalidateAll();
  // Retire every evaluation-memo entry at once: memoized scores depend on
  // the profile set, and the fresh ERO version may collide with the old.
  ++memo_generation_;
}

void OptumScheduler::EnsureMemo(size_t num_hosts) {
  if (!memo_.empty()) {
    return;
  }
  // ~64 slots per host keeps the direct-mapped collision rate low across
  // the population of applications scoring each host (the live key set is
  // hosts × apps, and a single hot collision pair thrashes both keys for
  // as long as they stay hot); clamped so tiny clusters still get a useful
  // table and huge ones stay bounded (512Ki entries ≈ 48 MiB — the probe
  // loop prefetches ahead, so capacity buys hit rate without paying the
  // extra LLC latency on the critical path).
  const size_t want = std::clamp<size_t>(num_hosts * 64, size_t{1} << 12,
                                         size_t{1} << 19);
  size_t slots = 1;
  while (slots < want) {
    slots <<= 1;
  }
  memo_.assign(slots, MemoEntry{});
  memo_mask_ = slots - 1;
}

OptumScheduler::MemoEntry* OptumScheduler::MemoSlot(HostId host, AppId app) {
  // Direct-mapped: one multiplicative-hash probe, stale entries overwritten
  // in place. Collisions only cost a recompute, never a wrong answer (the
  // entry stores its full key).
  uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(app)) << 32) ^
               static_cast<uint64_t>(static_cast<uint32_t>(host));
  x *= 0x9e3779b97f4a7c15ULL;
  x ^= x >> 29;
  return &memo_[static_cast<size_t>(x) & memo_mask_];
}

void OptumScheduler::ScoreThroughMemo(const PodSpec& pod,
                                      const ClusterState& cluster,
                                      const std::vector<HostId>& candidates,
                                      const std::vector<uint8_t>* skip,
                                      std::vector<uint64_t>* epochs,
                                      std::vector<HostEvaluation>* evals) {
  const size_t n = candidates.size();
  epochs->resize(n);
  evals->resize(n);
  const uint64_t ero_version = profiles_->ero.version();

  // Serial probe pass: collect the indices the memo cannot answer. Each
  // probe touches two cold lines — a random slot of the multi-MiB memo and
  // the candidate's Host header for the epoch check — so issue both
  // prefetches a few iterations ahead; the probe itself is only a handful
  // of compares and the LLC round-trips would otherwise dominate the hit
  // path.
  // Distance tuned for a hit-dominated loop: iterations are ~20 ns of
  // compares, so 16 ahead covers a full DRAM round-trip on the big table.
  constexpr size_t kProbeAhead = 16;
  memo_miss_scratch_.clear();
  for (size_t i = 0; i < n; ++i) {
    if (i + kProbeAhead < n) {
      const HostId ahead = candidates[i + kProbeAhead];
      __builtin_prefetch(MemoSlot(ahead, pod.app));
      __builtin_prefetch(&cluster.host(ahead));
    }
    if (skip != nullptr && (*skip)[i] != 0) {
      continue;  // caller-validated entry, epoch/eval already current
    }
    const HostId id = candidates[i];
    const Host& host = cluster.host(id);
    (*epochs)[i] = host.change_epoch;
    const MemoEntry* slot = MemoSlot(id, pod.app);
    if (slot->host == id && slot->epoch == host.change_epoch &&
        slot->generation == memo_generation_ &&
        slot->ero_version == ero_version && slot->app == pod.app &&
        slot->slo == pod.slo &&
        slot->max_pods_per_host == pod.max_pods_per_host &&
        slot->req_cpu == pod.request.cpu && slot->req_mem == pod.request.mem) {
      ++memo_hits_;
      // Reconstruct the reduced evaluation; the Eq. 11 breakdown is absent
      // from the memo by design (see MemoEntry) and unused on this path.
      HostEvaluation& eval = (*evals)[i];
      eval = HostEvaluation{};
      eval.feasible = slot->feasible;
      eval.cpu_blocked = slot->cpu_blocked;
      eval.mem_blocked = slot->mem_blocked;
      eval.score = slot->score;
    } else {
      ++memo_misses_;
      memo_miss_scratch_.push_back(static_cast<uint32_t>(i));
    }
  }

  // Evaluate the misses — through the scoring pool when the shard has one
  // and the batch justifies it. Results are lane-invariant (EvaluateHost is
  // a pure function of its key; PR 2's caches are lane-pure), so the memo
  // stays bit-identical to uncached evaluation either way.
  auto eval_miss = [&](size_t lane, size_t k) {
    const size_t i = memo_miss_scratch_[k];
    (*evals)[i] = EvaluateHost(pod, cluster.host(candidates[i]), lane);
  };
  if (pool_ != nullptr && memo_miss_scratch_.size() >= 2 * pool_->num_threads()) {
    pool_->ParallelForLane(memo_miss_scratch_.size(), eval_miss);
  } else {
    for (size_t k = 0; k < memo_miss_scratch_.size(); ++k) {
      eval_miss(0, k);
    }
  }

  // Serial publish pass: install the fresh evaluations.
  for (const uint32_t k : memo_miss_scratch_) {
    const HostId id = candidates[k];
    MemoEntry* slot = MemoSlot(id, pod.app);
    slot->host = id;
    slot->epoch = (*epochs)[k];
    slot->ero_version = ero_version;
    slot->generation = memo_generation_;
    slot->app = pod.app;
    slot->slo = pod.slo;
    slot->max_pods_per_host = pod.max_pods_per_host;
    slot->req_cpu = pod.request.cpu;
    slot->req_mem = pod.request.mem;
    const HostEvaluation& eval = (*evals)[k];
    slot->feasible = eval.feasible;
    slot->cpu_blocked = eval.cpu_blocked;
    slot->mem_blocked = eval.mem_blocked;
    slot->score = eval.score;
  }
}

void OptumScheduler::BeginSpeculative(const PodSpec& pod,
                                      const ClusterState& cluster,
                                      SpeculativeScore* out) {
  OPTUM_CHECK_MSG(speculation_supported(),
                  "speculative scoring is unavailable with a decision log attached");
  out->pod = pod.id;
  {
    // Exactly the PlaceScored sampling step: one draw from the serial rng_
    // stream, so speculate-then-finalize and plain PlaceScored see identical
    // candidate sequences.
    obs::ScopedTimer timer(sample_timer_, metrics_lane_base_);
    SampleHostsInto(cluster, config_.sample_fraction, config_.min_candidates, rng_,
                    &sample_scratch_, &out->candidates);
  }
  usage_predictor_.ReserveHosts(cluster.num_hosts());
  EnsureMemo(cluster.num_hosts());
  obs::ScopedTimer timer(score_timer_, metrics_lane_base_);
  ScoreThroughMemo(pod, cluster, out->candidates, /*skip=*/nullptr,
                   &out->epochs, &out->evals);
}

PlacementDecision OptumScheduler::FinalizeSpeculative(const PodSpec& pod,
                                                      const ClusterState& cluster,
                                                      SpeculativeScore* spec,
                                                      double* best_score) {
  OPTUM_CHECK_MSG(speculation_supported(),
                  "speculative scoring is unavailable with a decision log attached");
  OPTUM_CHECK_EQ(spec->pod, pod.id);
  const size_t n = spec->candidates.size();
  // Revalidate the epoch snapshot: a candidate whose change_epoch still
  // matches was untouched by every commit since BeginSpeculative (only
  // commits mutate hosts during a batch), so its evaluation stands.
  memo_skip_scratch_.assign(n, 1);
  bool any_stale = false;
  for (size_t i = 0; i < n; ++i) {
    if (i + 16 < n) {
      __builtin_prefetch(&cluster.host(spec->candidates[i + 16]));
    }
    if (cluster.host(spec->candidates[i]).change_epoch != spec->epochs[i]) {
      memo_skip_scratch_[i] = 0;
      any_stale = true;
    }
  }
  if (any_stale) {
    obs::ScopedTimer timer(score_timer_, metrics_lane_base_);
    ScoreThroughMemo(pod, cluster, spec->candidates, &memo_skip_scratch_,
                     &spec->epochs, &spec->evals);
  }
  return ReduceAndLog(pod, cluster, spec->candidates, spec->evals, best_score,
                      /*emit_decision_log=*/false);
}

void OptumScheduler::ObserveColocation(const ClusterState& cluster, Tick now) {
  if (config_.observe_period <= 0 || (last_observe_ >= 0 &&
                                      now - last_observe_ < config_.observe_period)) {
    return;
  }
  last_observe_ = now;
  // Per host, the two highest-usage pods per application, then pairwise RO
  // updates (including same-application pairs) — mirroring the offline
  // Resource Usage Profiler.
  struct Rep {
    AppId app;
    double cpu;
    double cpu_request;
    double cpu2 = -1.0;  // second-best usage; < 0 when absent
    double cpu2_request = 0.0;
  };
  std::vector<Rep> reps;
  for (const Host& host : cluster.hosts()) {
    if (host.pods.size() < 2) {
      continue;
    }
    reps.clear();
    for (const PodRuntime* pod : host.pods) {
      bool merged = false;
      for (auto& r : reps) {
        if (r.app == pod->spec.app) {
          if (pod->cpu_usage > r.cpu) {
            r.cpu2 = r.cpu;
            r.cpu2_request = r.cpu_request;
            r.cpu = pod->cpu_usage;
            r.cpu_request = pod->spec.request.cpu;
          } else if (pod->cpu_usage > r.cpu2) {
            r.cpu2 = pod->cpu_usage;
            r.cpu2_request = pod->spec.request.cpu;
          }
          merged = true;
          break;
        }
      }
      if (!merged) {
        reps.push_back(Rep{pod->spec.app, pod->cpu_usage, pod->spec.request.cpu});
      }
    }
    for (size_t a = 0; a < reps.size(); ++a) {
      if (reps[a].cpu2 >= 0.0) {
        const double denom = reps[a].cpu_request + reps[a].cpu2_request;
        if (denom > 0) {
          profiles_->ero.Observe(reps[a].app, reps[a].app,
                                 (reps[a].cpu + reps[a].cpu2) / denom);
        }
      }
      for (size_t b = a + 1; b < reps.size(); ++b) {
        const double denom = reps[a].cpu_request + reps[b].cpu_request;
        if (denom <= 0) {
          continue;
        }
        profiles_->ero.Observe(reps[a].app, reps[b].app,
                               (reps[a].cpu + reps[b].cpu) / denom);
        if (config_.use_triple_ero) {
          for (size_t c = b + 1; c < reps.size(); ++c) {
            const double denom3 =
                reps[a].cpu_request + reps[b].cpu_request + reps[c].cpu_request;
            if (denom3 <= 0) {
              continue;
            }
            profiles_->ero.ObserveTriple(reps[a].app, reps[b].app, reps[c].app,
                                         (reps[a].cpu + reps[b].cpu + reps[c].cpu) /
                                             denom3);
          }
        }
      }
    }
  }
}

}  // namespace optum::core
