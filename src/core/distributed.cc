#include "src/core/distributed.h"

#include <algorithm>
#include <deque>
#include <string>

#include "src/common/check.h"
#include "src/obs/profiler.h"
#include "src/obs/timer.h"

namespace optum::core {

DistributedCoordinator::DistributedCoordinator(const OptumProfiles& profiles,
                                               DistributedConfig config)
    : pool_(std::max<size_t>(1, config.num_schedulers)),
      max_attempts_per_pod_(std::max<size_t>(1, config.max_attempts_per_pod)),
      pipeline_depth_(std::max<size_t>(1, config.pipeline_depth)) {
  OPTUM_CHECK_GE(config.num_schedulers, 1u);
  pipelines_.resize(config.num_schedulers);
  shards_.reserve(config.num_schedulers);
  for (size_t i = 0; i < config.num_schedulers; ++i) {
    OptumConfig shard_config = config.scheduler_config;
    // Salt the sampling seed so shards examine different host subsets —
    // conflicts stay possible (hot hosts score high for everyone) but the
    // shards do not trivially collide on every decision.
    shard_config.seed = config.scheduler_config.seed + 0x9e3779b9u * (i + 1);
    // Shards themselves run concurrently here; candidate scoring within a
    // shard parallelizes only when the caller asks for it explicitly.
    shard_config.num_threads = config.shard_num_threads;
    shards_.push_back(std::make_unique<OptumScheduler>(profiles, shard_config));
  }
}

DistributedCoordinator::~DistributedCoordinator() = default;

void DistributedCoordinator::AttachSinks(const obs::Sinks& sinks) {
  sinks_ = sinks;
  span_log_ = sinks.span_log;
  profiler_ = sinks.profile;
  if (profiler_ != nullptr) {
    // One profiler lane per shard: each shard task records its barrier
    // phases into its own lane; the serial phases use lane 0.
    profiler_->set_num_lanes(shards_.size());
  }
  obs::MetricRegistry* registry = sinks.metrics;
  // Shard s scores on its own coordinator-pool task; giving it registry
  // lane s keeps concurrent shard updates on distinct metric shards. The
  // coordinator's own counters (lane 0) are only touched in the serial
  // resolution phase, never while shards are deciding. Shards receive the
  // metrics sink only — span/decision logs must not be written from
  // parallel shard tasks (see AttachSinks contract in the header), so any
  // sinks a caller attached via shard(i) directly are preserved as-is.
  if (registry != nullptr) {
    registry->set_num_lanes(shards_.size());
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    obs::Sinks shard_sinks = shards_[s]->attached_sinks();
    shard_sinks.metrics = registry;
    shards_[s]->AttachSinks(shard_sinks, /*lane_base=*/s,
                            "optum.shard" + std::to_string(s));
  }
  if (registry == nullptr) {
    rounds_counter_ = nullptr;
    commits_counter_ = nullptr;
    conflicts_counter_ = nullptr;
    round_timer_ = nullptr;
    return;
  }
  rounds_counter_ = registry->counter("dist.rounds");
  commits_counter_ = registry->counter("dist.commits");
  conflicts_counter_ = registry->counter("dist.conflicts");
  round_timer_ = registry->histogram("dist.round_seconds");
}

DistributedOutcome DistributedCoordinator::ScheduleBatch(
    const std::vector<const PodSpec*>& pods, const ClusterState& cluster,
    const std::function<void(const ScheduleProposal&)>& commit) {
  DistributedOutcome outcome;

  struct PendingEntry {
    const PodSpec* pod = nullptr;
    size_t attempts = 0;
    WaitReason last_reason = WaitReason::kOther;
  };
  // Per-shard FIFO queues: round-robin split of the batch.
  const size_t num_shards = shards_.size();
  std::vector<std::deque<PendingEntry>> queues(num_shards);
  for (size_t i = 0; i < pods.size(); ++i) {
    OPTUM_CHECK(pods[i] != nullptr);
    queues[i % num_shards].push_back(PendingEntry{pods[i]});
  }

  auto any_pending = [&queues] {
    for (const auto& q : queues) {
      if (!q.empty()) {
        return true;
      }
    }
    return false;
  };

  while (any_pending()) {
    ++outcome.rounds_used;
    obs::ScopedTimer round_timer(round_timer_);
    if (rounds_counter_ != nullptr) {
      rounds_counter_->Inc();
    }

    // Phase 1 (parallel): each shard decides for the pod at the head of
    // its own queue, all against the same cluster snapshot — the moment a
    // conflict can occur in a fleet of parallel schedulers. With pipelining
    // the shard first settles its head — finalizing a speculative score if
    // one is staged (revalidating only epoch-moved candidates), falling back
    // to a fresh PlaceScored otherwise — then tops up speculation for the
    // next pipeline_depth-1 pods still queued, against this same frozen
    // snapshot. Each attempt draws from the shard's sampling stream exactly
    // once, in queue order (= pop order), so the draw sequence — and with it
    // every candidate set, score, and decision — matches the serial loop
    // bit for bit.
    struct ShardDecision {
      bool active = false;
      PendingEntry entry;
      PlacementDecision decision;
      double score = 0.0;
    };
    std::vector<ShardDecision> decisions(num_shards);
    // Barrier wall for the profiler's critical-path rule: measured serially
    // around Submit..Wait so it is the true round-bounding time even when
    // shard tasks time-slice on few cores (DESIGN.md §14).
    std::chrono::steady_clock::time_point barrier_start;
    if (profiler_ != nullptr) {
      barrier_start = std::chrono::steady_clock::now();
    }
    for (size_t s = 0; s < num_shards; ++s) {
      if (queues[s].empty()) {
        continue;
      }
      decisions[s].active = true;
      decisions[s].entry = queues[s].front();
      queues[s].pop_front();
      pool_.Submit([&, s] {
        OptumScheduler& shard = *shards_[s];
        ShardPipeline& pipe = pipelines_[s];
        ShardDecision& d = decisions[s];
        {
          // Head settle: finalize a staged speculation or score fresh. Both
          // paths run under the same phase scope so the scope count (pods
          // settled) is identical for every pipeline_depth.
          obs::RoundProfiler::Scope settle(
              profiler_, obs::ProfilePhase::kFinalizeRevalidate, s);
          if (!pipe.specs.empty()) {
            // Head was speculated in an earlier round (specs[0] ↔ old queue
            // front, the pod just popped).
            OptumScheduler::SpeculativeScore spec = std::move(pipe.specs.front());
            pipe.specs.pop_front();
            d.decision = shard.FinalizeSpeculative(*d.entry.pod, cluster, &spec, &d.score);
            spec.Clear();
            pipe.free.push_back(std::move(spec));
          } else {
            d.decision = shard.PlaceScored(*d.entry.pod, cluster, &d.score);
          }
        }
        // Speculative top-up: always scoped — empty work at depth 1 or on
        // speculation-declining shards — so the scope count (active
        // shard-rounds) is depth-invariant too.
        obs::RoundProfiler::Scope spec_scope(profiler_,
                                             obs::ProfilePhase::kSpecScore, s);
        if (pipeline_depth_ > 1 && shard.speculation_supported()) {
          while (pipe.specs.size() + 1 < pipeline_depth_ &&
                 pipe.specs.size() < queues[s].size()) {
            OptumScheduler::SpeculativeScore spec;
            if (!pipe.free.empty()) {
              spec = std::move(pipe.free.back());
              pipe.free.pop_back();
            }
            shard.BeginSpeculative(*queues[s][pipe.specs.size()].pod, cluster, &spec);
            pipe.specs.push_back(std::move(spec));
          }
        }
      });
    }
    pool_.Wait();
    int64_t barrier_ns = 0;
    if (profiler_ != nullptr) {
      barrier_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - barrier_start)
                       .count();
    }

    // Phase 2 (sequential): conflict resolution, commits, re-dispatch.
    std::vector<ScheduleProposal> proposals;
    const DeploymentOutcome resolved = [&] {
      obs::RoundProfiler::Scope resolve_scope(profiler_,
                                              obs::ProfilePhase::kResolve, 0);
      for (const ShardDecision& d : decisions) {
        if (d.active && d.decision.placed()) {
          proposals.push_back(
              ScheduleProposal{d.entry.pod->id, d.decision.host, d.score});
        }
      }
      return deployment_.Resolve(std::move(proposals));
    }();
    // Commit phase timed explicitly (not RAII) so the record lands before
    // EndRound closes the round at the bottom of this iteration.
    std::chrono::steady_clock::time_point commit_start;
    if (profiler_ != nullptr) {
      commit_start = std::chrono::steady_clock::now();
    }
    for (const ScheduleProposal& winner : resolved.committed) {
      commit(winner);
      outcome.placed.push_back(winner);
      if (span_log_ != nullptr) {
        // The winner came from exactly one shard's in-flight decision this
        // round; recover its spec for the submit → placed wait.
        Tick wait_ticks = -1;
        for (const ShardDecision& d : decisions) {
          if (d.active && d.entry.pod->id == winner.pod) {
            wait_ticks = cluster.now() - d.entry.pod->submit_tick;
            break;
          }
        }
        span_log_->Append({.tick = cluster.now(),
                           .pod = winner.pod,
                           .phase = obs::SpanPhase::kPlaced,
                           .host = winner.host,
                           .wait_ticks = wait_ticks,
                           .has_score = true,
                           .score = winner.score});
      }
    }
    outcome.conflicts_resolved += static_cast<int64_t>(resolved.redispatched.size());
    if (commits_counter_ != nullptr) {
      commits_counter_->Inc(0, resolved.committed.size());
      conflicts_counter_->Inc(0, resolved.redispatched.size());
    }

    auto requeue = [&](size_t shard, PendingEntry entry, WaitReason reason) {
      entry.last_reason = reason;
      if (++entry.attempts >= max_attempts_per_pod_) {
        outcome.unplaced.emplace_back(entry.pod, entry.last_reason);
        return;
      }
      queues[shard].push_back(entry);
    };
    for (size_t s = 0; s < num_shards; ++s) {
      const ShardDecision& d = decisions[s];
      if (!d.active) {
        continue;
      }
      if (!d.decision.placed()) {
        requeue(s, d.entry, d.decision.reason);
        continue;
      }
      const bool committed = std::any_of(
          resolved.committed.begin(), resolved.committed.end(),
          [&](const ScheduleProposal& p) { return p.pod == d.entry.pod->id; });
      if (!committed) {
        if (span_log_ != nullptr) {
          span_log_->Append({.tick = cluster.now(),
                             .pod = d.entry.pod->id,
                             .phase = obs::SpanPhase::kConflictRetried,
                             .host = d.decision.host});
        }
        requeue(s, d.entry, WaitReason::kOther);  // lost the conflict
      }
    }
    if (profiler_ != nullptr) {
      profiler_->RecordNs(obs::ProfilePhase::kCommit, 0,
                          std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - commit_start)
                              .count());
      profiler_->EndRound(barrier_ns);
    }
  }
  return outcome;
}

}  // namespace optum::core
