// Pairwise Effective Resource usage cOefficient table (paper §4.2.2).
//
// For applications A and B, ERO(A, B) is the maximum over time and over all
// co-located pod pairs (p in A, q in B) of
//     RO_{p,q}(t) = (Cu_p(t) + Cu_q(t)) / (Cr_p + Cr_q)  <= 1,
// i.e. the worst observed joint usage-to-request ratio. The key insight
// (Eq. 3) is that the peak of a sum is far below the sum of peaks, so ERO
// yields much tighter usage predictions than per-pod peak methods.
// Unseen application pairs default to 1.0 (fully conservative).
#ifndef OPTUM_SRC_CORE_ERO_TABLE_H_
#define OPTUM_SRC_CORE_ERO_TABLE_H_

#include <cstdint>
#include <unordered_map>

#include "src/common/types.h"

namespace optum {

class EroTable {
 public:
  // Records one co-location observation; keeps the running maximum.
  // ratio must already be RO_{p,q}(t); values are clamped to [0, 1].
  void Observe(AppId a, AppId b, double ratio);

  // ERO(A, B); symmetric; 1.0 for never-observed pairs.
  double Get(AppId a, AppId b) const;

  // Returns true when the pair has at least one observation.
  bool Contains(AppId a, AppId b) const;

  size_t size() const { return table_.size(); }

  // ---- Triple-wise extension (paper §4.2.2) --------------------------------
  // "ERO can also be extended to a triple-wise metric, under which the
  // profiling of resource usage is performed for each combination of three
  // applications and achieve more precise resource utilization prediction.
  // However, it can incur large profiling overhead."
  //
  // Triples are optional: when a triple has never been observed, the
  // Resource Usage Predictor falls back to the tightest request-weighted
  // combination of one pairwise ERO plus the leftover pod's full request
  // (the same bound the pairwise predictor would use).

  // Records a joint observation of three co-located pods (order-free).
  void ObserveTriple(AppId a, AppId b, AppId c, double ratio);

  // ERO(A, B, C): the observed triple maximum, or a negative value when
  // the triple has never been observed.
  double GetTriple(AppId a, AppId b, AppId c) const;

  bool ContainsTriple(AppId a, AppId b, AppId c) const;

  size_t triple_size() const { return triple_table_.size(); }

  // Bumped whenever an Observe/ObserveTriple call changes a stored value.
  // Consumers that cache ERO-derived predictions validate against it.
  uint64_t version() const { return version_; }

 private:
  static uint64_t Key(AppId a, AppId b);
  static uint64_t TripleKey(AppId a, AppId b, AppId c);

  std::unordered_map<uint64_t, double> table_;
  std::unordered_map<uint64_t, double> triple_table_;
  uint64_t version_ = 0;
};

}  // namespace optum

#endif  // OPTUM_SRC_CORE_ERO_TABLE_H_
