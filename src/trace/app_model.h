// Application behaviour models. Each application owns the distributions its
// pods draw from; pods of the same application behave consistently
// (paper Fig. 12: CoV < 1 for >90% of applications), which is exactly the
// property Optum's per-application profiles exploit.
#ifndef OPTUM_SRC_TRACE_APP_MODEL_H_
#define OPTUM_SRC_TRACE_APP_MODEL_H_

#include <vector>

#include "src/common/types.h"
#include "src/stats/patterns.h"
#include "src/stats/rng.h"

namespace optum {

// Static per-application behaviour parameters.
struct AppProfile {
  AppId id = kInvalidAppId;
  SloClass slo = SloClass::kUnknown;

  Resources request;  // per-pod resource request
  Resources limit;    // per-pod resource limit (>= request)

  // Anti-affinity: maximum pods of this application per host (0 = no
  // limit). Long-running services spread replicas for fault tolerance;
  // SYSTEM/VMEnv pods behave like per-host daemons (paper §2.1 submits
  // requests "with affinity requirements").
  int max_pods_per_host = 0;

  // Mean fraction of the *request* the pod actually uses (paper Fig. 6:
  // usage is far below request, ~5x gap for LS CPU).
  double cpu_usage_fraction = 0.3;
  double mem_usage_fraction = 0.5;

  // Hard ceiling on instantaneous CPU demand as a fraction of the request.
  // Production pods burst to a bounded multiple of their typical usage,
  // far below the request — this gap is precisely what makes pairwise peak
  // profiling (Eq. 3) profitable.
  double cpu_usage_ceiling = 0.6;

  // Pod-to-pod consistency: multiplicative lognormal jitter CoV.
  double cpu_pod_cov = 0.15;
  double mem_pod_cov = 0.05;

  // --- LS/LSR-specific -------------------------------------------------
  double qps_base = 0.0;               // mean per-pod QPS at diurnal peak
  DiurnalPattern qps_pattern{0.4, 0.0};  // shared per-app phase
  // Sensitivity of CPU PSI to host contention (ground-truth model input).
  double psi_sensitivity = 1.0;
  // Dispersion of the per-pod dependency-chain RT multiplier: a pod's RT
  // includes the processing time of everything it calls (§3.3.1), so pods
  // of one service can have very different baseline RTs.
  double rt_dependency_sigma = 1.0;

  // --- BE-specific -------------------------------------------------------
  double work_mean_ticks = 40.0;  // contention-free completion time
  double work_cov = 0.5;          // input-size variability (CPU CoV is
                                  // higher for BE, Fig. 12b)
  // Sensitivity of completion time to host CPU/memory contention.
  double slowdown_sensitivity = 1.5;
};

// Per-pod draw from an application profile. Multipliers are fixed at pod
// creation; temporal variation comes from the app-level patterns.
struct PodBehavior {
  double cpu_scale = 1.0;   // pod-level multiplier on app cpu usage
  double mem_scale = 1.0;
  double qps_scale = 1.0;   // LS: per-pod load-balancing imbalance (small)
  double rt_scale = 1.0;    // LS: persistent dependency-chain RT multiplier
  double work_ticks = 0.0;  // BE: contention-free work, in ticks
};

// Specification of a single pod as submitted to the scheduler.
struct PodSpec {
  PodId id = kInvalidPodId;
  AppId app = kInvalidAppId;
  SloClass slo = SloClass::kUnknown;
  Resources request;
  Resources limit;
  Tick submit_tick = 0;
  PodBehavior behavior;
  bool long_running = false;  // LS/LSR/System pods run until the horizon
  // Anti-affinity copied from the application profile (0 = unlimited).
  int max_pods_per_host = 0;
};

// Samples a PodBehavior consistent with the application profile.
PodBehavior SamplePodBehavior(const AppProfile& app, Rng& rng);

// A PodSpec carrying the application's request/limit/SLO/affinity, submitted
// at `submit_tick` — the common construction for synthetic placement streams
// (hot-path benches, the serve-layer arrival driver, concurrency tests).
// The behavior draw is left at its defaults; callers that simulate usage
// dynamics sample it separately.
PodSpec MakePodSpec(PodId id, const AppProfile& app, Tick submit_tick = 0);

// Instantaneous CPU usage (fraction of host capacity) of a pod at tick t,
// before any limit clamping, given its app profile and behaviour draw.
double PodCpuDemand(const AppProfile& app, const PodBehavior& behavior, Tick t, Rng& noise);

// Instantaneous memory usage; memory is far more stable than CPU.
double PodMemDemand(const AppProfile& app, const PodBehavior& behavior, Tick t, Rng& noise);

// Instantaneous QPS of an LS pod at tick t (0 for non-LS apps).
double PodQps(const AppProfile& app, const PodBehavior& behavior, Tick t, Rng& noise);

}  // namespace optum

#endif  // OPTUM_SRC_TRACE_APP_MODEL_H_
