#include "src/trace/trace_io.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <vector>

namespace optum {
namespace {

struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<FILE, FileCloser>;

FilePtr OpenFor(const std::string& dir, const char* name, const char* mode) {
  const std::string path = dir + "/" + name;
  return FilePtr(std::fopen(path.c_str(), mode));
}

// Parses one CSV line of doubles into `out`; returns number of fields.
size_t ParseRow(const char* line, std::vector<double>& out) {
  out.clear();
  const char* p = line;
  char* end = nullptr;
  while (*p != '\0' && *p != '\n') {
    const double v = std::strtod(p, &end);
    if (end == p) {
      break;
    }
    out.push_back(v);
    p = end;
    if (*p == ',') {
      ++p;
    }
  }
  return out.size();
}

bool ForEachRow(FILE* f, size_t expected_fields,
                const std::function<void(const std::vector<double>&)>& fn) {
  char line[512];
  std::vector<double> fields;
  bool first = true;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (first) {
      first = false;  // Skip the header row.
      continue;
    }
    if (line[0] == '\n' || line[0] == '\0') {
      continue;
    }
    if (ParseRow(line, fields) != expected_fields) {
      return false;
    }
    fn(fields);
  }
  return true;
}

}  // namespace

bool WriteTraceBundle(const TraceBundle& bundle, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return false;
  }

  {
    FilePtr f = OpenFor(directory, "nodes.csv", "w");
    if (!f) return false;
    std::fprintf(f.get(), "machine_id,cpu_capacity,mem_capacity\n");
    for (const auto& n : bundle.nodes) {
      std::fprintf(f.get(), "%d,%.9g,%.9g\n", n.machine_id, n.capacity.cpu, n.capacity.mem);
    }
  }
  {
    FilePtr f = OpenFor(directory, "pods.csv", "w");
    if (!f) return false;
    std::fprintf(f.get(),
                 "pod_id,app_id,slo,cpu_request,mem_request,cpu_limit,mem_limit,"
                 "submit_tick,original_machine_id\n");
    for (const auto& p : bundle.pods) {
      std::fprintf(f.get(), "%lld,%d,%d,%.9g,%.9g,%.9g,%.9g,%lld,%d\n",
                   static_cast<long long>(p.pod_id), p.app_id, static_cast<int>(p.slo),
                   p.request.cpu, p.request.mem, p.limit.cpu, p.limit.mem,
                   static_cast<long long>(p.submit_tick), p.original_machine_id);
    }
  }
  {
    FilePtr f = OpenFor(directory, "node_usage.csv", "w");
    if (!f) return false;
    std::fprintf(f.get(), "machine_id,tick,cpu,mem,disk,net\n");
    for (const auto& r : bundle.node_usage) {
      std::fprintf(f.get(), "%d,%lld,%.6g,%.6g,%.6g,%.6g\n", r.machine_id,
                   static_cast<long long>(r.collect_tick), r.cpu_usage, r.mem_usage,
                   r.disk_usage, r.net_usage);
    }
  }
  {
    FilePtr f = OpenFor(directory, "pod_usage.csv", "w");
    if (!f) return false;
    std::fprintf(f.get(),
                 "pod_id,host,tick,cpu,mem,disk,cpu_psi_10,cpu_psi_60,cpu_psi_300,"
                 "mem_psi_some_60,mem_psi_full_60,qps,response_time\n");
    for (const auto& r : bundle.pod_usage) {
      std::fprintf(f.get(),
                   "%lld,%d,%lld,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g\n",
                   static_cast<long long>(r.pod_id), r.host,
                   static_cast<long long>(r.collect_tick),
                   r.cpu_usage, r.mem_usage, r.disk_usage, r.cpu_psi_10, r.cpu_psi_60,
                   r.cpu_psi_300, r.mem_psi_some_60, r.mem_psi_full_60, r.qps,
                   r.response_time);
    }
  }
  {
    FilePtr f = OpenFor(directory, "lifecycles.csv", "w");
    if (!f) return false;
    std::fprintf(f.get(),
                 "pod_id,app_id,slo,submit_tick,schedule_tick,finish_tick,host,"
                 "waiting_seconds,ideal_ct,actual_ct,max_cpu_psi\n");
    for (const auto& r : bundle.lifecycles) {
      std::fprintf(f.get(), "%lld,%d,%d,%lld,%lld,%lld,%d,%.6g,%.6g,%.6g,%.6g\n",
                   static_cast<long long>(r.pod_id), r.app_id, static_cast<int>(r.slo),
                   static_cast<long long>(r.submit_tick),
                   static_cast<long long>(r.schedule_tick),
                   static_cast<long long>(r.finish_tick), r.host, r.waiting_seconds,
                   r.ideal_completion_ticks, r.actual_completion_ticks, r.max_cpu_psi);
    }
  }
  return true;
}

bool ReadTraceBundle(const std::string& directory, TraceBundle* out) {
  *out = TraceBundle{};
  {
    FilePtr f = OpenFor(directory, "nodes.csv", "r");
    if (!f) return false;
    if (!ForEachRow(f.get(), 3, [&](const std::vector<double>& v) {
          NodeMeta n;
          n.machine_id = static_cast<HostId>(v[0]);
          n.capacity = {v[1], v[2]};
          out->nodes.push_back(n);
        })) {
      return false;
    }
  }
  {
    FilePtr f = OpenFor(directory, "pods.csv", "r");
    if (!f) return false;
    if (!ForEachRow(f.get(), 9, [&](const std::vector<double>& v) {
          PodMeta p;
          p.pod_id = static_cast<PodId>(v[0]);
          p.app_id = static_cast<AppId>(v[1]);
          p.slo = static_cast<SloClass>(static_cast<int>(v[2]));
          p.request = {v[3], v[4]};
          p.limit = {v[5], v[6]};
          p.submit_tick = static_cast<Tick>(v[7]);
          p.original_machine_id = static_cast<HostId>(v[8]);
          out->pods.push_back(p);
        })) {
      return false;
    }
  }
  {
    FilePtr f = OpenFor(directory, "node_usage.csv", "r");
    if (!f) return false;
    if (!ForEachRow(f.get(), 6, [&](const std::vector<double>& v) {
          NodeUsageRecord r;
          r.machine_id = static_cast<HostId>(v[0]);
          r.collect_tick = static_cast<Tick>(v[1]);
          r.cpu_usage = v[2];
          r.mem_usage = v[3];
          r.disk_usage = v[4];
          r.net_usage = v[5];
          out->node_usage.push_back(r);
        })) {
      return false;
    }
  }
  {
    FilePtr f = OpenFor(directory, "pod_usage.csv", "r");
    if (!f) return false;
    if (!ForEachRow(f.get(), 13, [&](const std::vector<double>& v) {
          PodUsageRecord r;
          r.pod_id = static_cast<PodId>(v[0]);
          r.host = static_cast<HostId>(v[1]);
          r.collect_tick = static_cast<Tick>(v[2]);
          r.cpu_usage = v[3];
          r.mem_usage = v[4];
          r.disk_usage = v[5];
          r.cpu_psi_10 = v[6];
          r.cpu_psi_60 = v[7];
          r.cpu_psi_300 = v[8];
          r.mem_psi_some_60 = v[9];
          r.mem_psi_full_60 = v[10];
          r.qps = v[11];
          r.response_time = v[12];
          out->pod_usage.push_back(r);
        })) {
      return false;
    }
  }
  {
    FilePtr f = OpenFor(directory, "lifecycles.csv", "r");
    if (!f) return false;
    if (!ForEachRow(f.get(), 11, [&](const std::vector<double>& v) {
          PodLifecycleRecord r;
          r.pod_id = static_cast<PodId>(v[0]);
          r.app_id = static_cast<AppId>(v[1]);
          r.slo = static_cast<SloClass>(static_cast<int>(v[2]));
          r.submit_tick = static_cast<Tick>(v[3]);
          r.schedule_tick = static_cast<Tick>(v[4]);
          r.finish_tick = static_cast<Tick>(v[5]);
          r.host = static_cast<HostId>(v[6]);
          r.waiting_seconds = v[7];
          r.ideal_completion_ticks = v[8];
          r.actual_completion_ticks = v[9];
          r.max_cpu_psi = v[10];
          out->lifecycles.push_back(r);
        })) {
      return false;
    }
  }
  return true;
}

}  // namespace optum
