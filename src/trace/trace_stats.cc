#include "src/trace/trace_stats.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/json_writer.h"
#include "src/obs/schema.h"
#include "src/stats/descriptive.h"

namespace optum {

PodIndex::PodIndex(const TraceBundle& trace) {
  by_id_.reserve(trace.pods.size());
  for (const PodMeta& meta : trace.pods) {
    by_id_[meta.pod_id] = &meta;
  }
}

const PodMeta* PodIndex::Find(PodId pod) const {
  const auto it = by_id_.find(pod);
  return it == by_id_.end() ? nullptr : it->second;
}

SloClass PodIndex::SloOf(PodId pod) const {
  const PodMeta* meta = Find(pod);
  return meta == nullptr ? SloClass::kUnknown : meta->slo;
}

uint64_t HostUsageIndex::Key(HostId host, Tick tick) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(host)) << 40) |
         static_cast<uint64_t>(tick & 0xffffffffffLL);
}

HostUsageIndex::HostUsageIndex(const TraceBundle& trace) {
  by_key_.reserve(trace.node_usage.size());
  for (const NodeUsageRecord& rec : trace.node_usage) {
    by_key_[Key(rec.machine_id, rec.collect_tick)] = &rec;
  }
}

const NodeUsageRecord* HostUsageIndex::Find(HostId host, Tick tick) const {
  const auto it = by_key_.find(Key(host, tick));
  return it == by_key_.end() ? nullptr : it->second;
}

TraceSummary Summarize(const TraceBundle& trace) {
  TraceSummary out;
  out.hosts = static_cast<int64_t>(trace.nodes.size());
  out.pods = static_cast<int64_t>(trace.pods.size());
  out.usage_records = static_cast<int64_t>(trace.pod_usage.size());

  if (!trace.node_usage.empty()) {
    out.first_tick = trace.node_usage.front().collect_tick;
    out.last_tick = trace.node_usage.back().collect_tick;
    double cpu = 0, mem = 0;
    for (const auto& rec : trace.node_usage) {
      cpu += rec.cpu_usage;
      mem += rec.mem_usage;
      out.max_host_cpu = std::max(out.max_host_cpu, rec.cpu_usage);
      out.first_tick = std::min(out.first_tick, rec.collect_tick);
      out.last_tick = std::max(out.last_tick, rec.collect_tick);
    }
    out.mean_host_cpu = cpu / static_cast<double>(trace.node_usage.size());
    out.mean_host_mem = mem / static_cast<double>(trace.node_usage.size());
  }

  struct Acc {
    int64_t pods = 0, scheduled = 0, finished = 0, usage_records = 0;
    double cpu_request = 0, mem_request = 0, cpu_usage = 0;
    std::vector<double> waits;
  };
  std::vector<Acc> acc(kNumSloClasses);

  const PodIndex pods(trace);
  for (const PodMeta& meta : trace.pods) {
    Acc& a = acc[static_cast<size_t>(meta.slo)];
    ++a.pods;
    a.cpu_request += meta.request.cpu;
    a.mem_request += meta.request.mem;
  }
  for (const PodUsageRecord& rec : trace.pod_usage) {
    Acc& a = acc[static_cast<size_t>(pods.SloOf(rec.pod_id))];
    a.cpu_usage += rec.cpu_usage;
    ++a.usage_records;
  }
  for (const PodLifecycleRecord& rec : trace.lifecycles) {
    Acc& a = acc[static_cast<size_t>(rec.slo)];
    a.scheduled += rec.schedule_tick >= 0 ? 1 : 0;
    a.finished += rec.finish_tick >= 0 ? 1 : 0;
    a.waits.push_back(rec.waiting_seconds);
  }

  for (int s = 0; s < kNumSloClasses; ++s) {
    const Acc& a = acc[static_cast<size_t>(s)];
    ClassSummary summary;
    summary.slo = static_cast<SloClass>(s);
    summary.pods = a.pods;
    summary.scheduled = a.scheduled;
    summary.finished = a.finished;
    if (a.pods > 0) {
      summary.mean_cpu_request = a.cpu_request / static_cast<double>(a.pods);
      summary.mean_mem_request = a.mem_request / static_cast<double>(a.pods);
    }
    if (a.usage_records > 0) {
      summary.mean_cpu_usage = a.cpu_usage / static_cast<double>(a.usage_records);
    }
    if (!a.waits.empty()) {
      summary.mean_waiting_seconds = Mean(a.waits);
      summary.p99_waiting_seconds = Percentile(a.waits, 99);
    }
    out.classes.push_back(summary);
  }
  return out;
}

std::string RenderSummary(const TraceSummary& summary) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "trace: %lld hosts, %lld pods, %lld usage records, ticks [%lld, %lld]\n",
                static_cast<long long>(summary.hosts),
                static_cast<long long>(summary.pods),
                static_cast<long long>(summary.usage_records),
                static_cast<long long>(summary.first_tick),
                static_cast<long long>(summary.last_tick));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "host utilization: mean cpu %.3f, mean mem %.3f, max cpu %.3f\n",
                summary.mean_host_cpu, summary.mean_host_mem, summary.max_host_cpu);
  out += buf;
  out += "class     pods     sched    done     cpuReq   memReq   cpuUse   "
         "waitMean  waitP99\n";
  for (const ClassSummary& c : summary.classes) {
    if (c.pods == 0) {
      continue;
    }
    std::snprintf(buf, sizeof(buf),
                  "%-8s  %-7lld  %-7lld  %-7lld  %.4f   %.4f   %.4f   %-8.4g  %.4g\n",
                  ToString(c.slo), static_cast<long long>(c.pods),
                  static_cast<long long>(c.scheduled), static_cast<long long>(c.finished),
                  c.mean_cpu_request, c.mean_mem_request, c.mean_cpu_usage,
                  c.mean_waiting_seconds, c.p99_waiting_seconds);
    out += buf;
  }
  return out;
}

std::string RenderSummaryJson(const TraceSummary& summary) {
  obs::JsonWriter w;
  w.BeginObject();
  w.KV("schema", obs::kSummarySchema);
  w.KV("hosts", summary.hosts);
  w.KV("pods", summary.pods);
  w.KV("usage_records", summary.usage_records);
  w.KV("first_tick", summary.first_tick);
  w.KV("last_tick", summary.last_tick);
  w.KV("mean_host_cpu", summary.mean_host_cpu);
  w.KV("mean_host_mem", summary.mean_host_mem);
  w.KV("max_host_cpu", summary.max_host_cpu);
  w.Key("classes");
  w.BeginArray();
  for (const ClassSummary& c : summary.classes) {
    if (c.pods == 0) {
      continue;
    }
    w.BeginObject();
    w.KV("slo", ToString(c.slo));
    w.KV("pods", c.pods);
    w.KV("scheduled", c.scheduled);
    w.KV("finished", c.finished);
    w.KV("mean_cpu_request", c.mean_cpu_request);
    w.KV("mean_mem_request", c.mean_mem_request);
    w.KV("mean_cpu_usage", c.mean_cpu_usage);
    w.KV("mean_waiting_seconds", c.mean_waiting_seconds);
    w.KV("p99_waiting_seconds", c.p99_waiting_seconds);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

EmpiricalCdf WaitingTimeCdf(const TraceBundle& trace, SloClass slo) {
  EmpiricalCdf cdf;
  for (const PodLifecycleRecord& rec : trace.lifecycles) {
    if (rec.slo == slo) {
      cdf.Add(rec.waiting_seconds);
    }
  }
  cdf.Finalize();
  return cdf;
}

}  // namespace optum
