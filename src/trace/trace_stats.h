// Reusable trace-analysis helpers: the joins and aggregations every
// characterization consumer needs (pod metadata lookup, host-usage lookup,
// per-class summaries). Works on any TraceBundle — simulator output or a
// converted real trace.
#ifndef OPTUM_SRC_TRACE_TRACE_STATS_H_
#define OPTUM_SRC_TRACE_TRACE_STATS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/stats/cdf.h"
#include "src/trace/schema.h"

namespace optum {

// O(1) pod-metadata lookup; the last record wins for rescheduled pods.
class PodIndex {
 public:
  explicit PodIndex(const TraceBundle& trace);

  const PodMeta* Find(PodId pod) const;
  SloClass SloOf(PodId pod) const;  // kUnknown when absent
  size_t size() const { return by_id_.size(); }

 private:
  std::unordered_map<PodId, const PodMeta*> by_id_;
};

// O(1) (host, tick) -> node usage lookup.
class HostUsageIndex {
 public:
  explicit HostUsageIndex(const TraceBundle& trace);

  // Returns nullptr when the sample is absent.
  const NodeUsageRecord* Find(HostId host, Tick tick) const;

 private:
  static uint64_t Key(HostId host, Tick tick);
  std::unordered_map<uint64_t, const NodeUsageRecord*> by_key_;
};

// Aggregate summary of one trace, per SLO class.
struct ClassSummary {
  SloClass slo = SloClass::kUnknown;
  int64_t pods = 0;
  int64_t scheduled = 0;
  int64_t finished = 0;
  double mean_cpu_request = 0.0;
  double mean_mem_request = 0.0;
  double mean_cpu_usage = 0.0;  // over usage records
  double mean_waiting_seconds = 0.0;
  double p99_waiting_seconds = 0.0;
};

struct TraceSummary {
  int64_t hosts = 0;
  int64_t pods = 0;
  int64_t usage_records = 0;
  Tick first_tick = 0;
  Tick last_tick = 0;
  double mean_host_cpu = 0.0;
  double mean_host_mem = 0.0;
  double max_host_cpu = 0.0;
  std::vector<ClassSummary> classes;  // in SloClass enum order
};

// Computes the full summary in two passes over the bundle.
TraceSummary Summarize(const TraceBundle& trace);

// Renders the summary as a human-readable report.
std::string RenderSummary(const TraceSummary& summary);

// Renders the summary as a JSON object (schema optum.summary.v1) — the
// machine-readable twin of RenderSummary, shared by `runsim --json` and
// `trace_summary --json` so both tools emit the same export format.
std::string RenderSummaryJson(const TraceSummary& summary);

// Waiting-time CDF for one SLO class (scheduled and censored pods).
EmpiricalCdf WaitingTimeCdf(const TraceBundle& trace, SloClass slo);

}  // namespace optum

#endif  // OPTUM_SRC_TRACE_TRACE_STATS_H_
