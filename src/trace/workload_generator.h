// Synthetic workload generator calibrated against the distributions the
// paper reports for Alibaba's unified-scheduling trace:
//   * SLO mix per Fig. 2b (BE/LS/LSR ~70% of pods; Unknown/System/VMEnv rest)
//   * LS/LSR submissions near-constant; BE submissions bursty with a
//     heavy-tailed per-minute count (Fig. 3a, Fig. 7)
//   * diurnal LS QPS (Fig. 3b) and anti-diurnal BE pressure (Fig. 4a)
//   * request >> usage gaps (Fig. 6): LS CPU ~5x, BE memory nearly full
//   * per-application pod consistency (Fig. 12)
#ifndef OPTUM_SRC_TRACE_WORKLOAD_GENERATOR_H_
#define OPTUM_SRC_TRACE_WORKLOAD_GENERATOR_H_

#include <vector>

#include "src/trace/app_model.h"

namespace optum {

struct WorkloadConfig {
  // Cluster scale; arrival volumes are proportional to this.
  int num_hosts = 200;
  Tick horizon = 2 * kTicksPerDay;

  // Application population.
  int num_ls_apps = 40;
  int num_lsr_apps = 12;
  int num_be_apps = 80;
  int num_system_apps = 4;
  int num_vmenv_apps = 3;
  int num_unknown_apps = 20;

  // Initial LS/LSR fleet: target total CPU *request* load as a fraction of
  // cluster capacity at t=0 (over-commitment then comes from BE arrivals).
  double initial_ls_request_load = 0.8;

  // Steady-state LS replacement/scale-out submissions per tick per 100 hosts.
  double ls_arrivals_per_tick_per_100_hosts = 0.08;

  // BE pressure: target instantaneous CPU request load from BE pods as a
  // fraction of cluster capacity (drives the Poisson/Pareto arrival mix).
  double be_target_request_load = 0.25;

  // Heavy-tail burst shape for BE arrivals (Pareto alpha; smaller = heavier).
  double be_burst_alpha = 1.9;

  // Multiplier on every application's memory request (and limit); > 1
  // makes memory the binding scheduling dimension (scenario knob).
  double mem_request_scale = 1.0;

  uint64_t seed = 42;
};

struct Workload {
  WorkloadConfig config;
  std::vector<AppProfile> apps;       // indexed by AppId
  std::vector<PodSpec> pods;          // sorted by submit_tick
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  // Generates the full application population and pod arrival stream.
  Workload Generate();

 private:
  std::vector<AppProfile> GenerateApps(Rng& rng) const;
  AppProfile MakeLsApp(AppId id, bool reserved, Rng& rng) const;
  AppProfile MakeBeApp(AppId id, Rng& rng) const;
  AppProfile MakeAuxApp(AppId id, SloClass slo, Rng& rng) const;

  WorkloadConfig config_;
};

// Returns the profile lookup for a workload (apps indexed by id).
inline const AppProfile& AppOf(const Workload& w, AppId id) {
  return w.apps[static_cast<size_t>(id)];
}

// Applications that flow through the scheduler hot path (BE/LS/LSR — the
// classes with explicit SLO requirements). Pointers reference w.apps, so
// the workload must outlive the returned catalog.
std::vector<const AppProfile*> SchedulableApps(const Workload& w);

}  // namespace optum

#endif  // OPTUM_SRC_TRACE_WORKLOAD_GENERATOR_H_
