#include "src/trace/scenarios.h"

namespace optum {

const char* ToString(Scenario scenario) {
  switch (scenario) {
    case Scenario::kCalibrated:
      return "calibrated";
    case Scenario::kLsHeavy:
      return "ls-heavy";
    case Scenario::kBeSaturated:
      return "be-saturated";
    case Scenario::kBursty:
      return "bursty";
    case Scenario::kFlatDiurnal:
      return "flat-diurnal";
    case Scenario::kMemoryTight:
      return "memory-tight";
  }
  return "?";
}

std::vector<Scenario> AllScenarios() {
  return {Scenario::kCalibrated,  Scenario::kLsHeavy, Scenario::kBeSaturated,
          Scenario::kBursty,      Scenario::kFlatDiurnal, Scenario::kMemoryTight};
}

WorkloadConfig MakeScenarioConfig(Scenario scenario, int num_hosts, Tick horizon,
                                  uint64_t seed) {
  WorkloadConfig config;
  config.num_hosts = num_hosts;
  config.horizon = horizon;
  config.seed = seed;
  switch (scenario) {
    case Scenario::kCalibrated:
      break;
    case Scenario::kLsHeavy:
      config.initial_ls_request_load = 1.15;
      config.be_target_request_load = 0.15;
      break;
    case Scenario::kBeSaturated:
      config.initial_ls_request_load = 0.6;
      config.be_target_request_load = 1.2;
      break;
    case Scenario::kBursty:
      config.be_target_request_load = 0.4;
      config.be_burst_alpha = 1.35;  // much heavier burst tail
      break;
    case Scenario::kFlatDiurnal:
      // The generator's diurnal floors live in the app models; squeezing
      // the BE arrival modulation and raising LS load flattens the cluster
      // pattern (per-app floors are drawn by the generator itself, so this
      // scenario mainly removes the valley BE would fill).
      config.initial_ls_request_load = 0.9;
      config.be_target_request_load = 0.12;
      break;
    case Scenario::kMemoryTight:
      config.initial_ls_request_load = 0.75;
      config.be_target_request_load = 0.25;
      config.mem_request_scale = 1.9;
      break;
  }
  return config;
}

}  // namespace optum
