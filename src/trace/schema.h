// Trace record schema mirroring the information content of the Alibaba
// unified-scheduling trace (paper Fig. 2a): node basic/running information
// and pod basic/running information, including PSI columns. The simulator
// emits these records and the profilers/benches consume them, so loading a
// real trace CSV is a drop-in replacement for the synthetic generator.
#ifndef OPTUM_SRC_TRACE_SCHEMA_H_
#define OPTUM_SRC_TRACE_SCHEMA_H_

#include <vector>

#include "src/common/types.h"

namespace optum {

// -- Node basic information ------------------------------------------------
struct NodeMeta {
  HostId machine_id = kInvalidHostId;
  Resources capacity = kUnitResources;  // normalized CPU/mem capacity
};

// -- Node running information (sampled every 30 s) ---------------------------
struct NodeUsageRecord {
  HostId machine_id = kInvalidHostId;
  Tick collect_tick = 0;
  double cpu_usage = 0.0;  // fraction of capacity
  double mem_usage = 0.0;
  double disk_usage = 0.0;
  double net_usage = 0.0;
};

// -- Pod basic information ---------------------------------------------------
struct PodMeta {
  PodId pod_id = kInvalidPodId;
  AppId app_id = kInvalidAppId;
  SloClass slo = SloClass::kUnknown;
  Resources request;            // resources the pod asks to run
  Resources limit;              // maximum the pod may use
  Tick submit_tick = 0;
  HostId original_machine_id = kInvalidHostId;  // host at first scheduling
};

// -- Pod running information (30 s OS-level, 1 min app-level) ----------------
struct PodUsageRecord {
  PodId pod_id = kInvalidPodId;
  HostId host = kInvalidHostId;  // host running the pod at collection time
  Tick collect_tick = 0;
  double cpu_usage = 0.0;  // fraction of host capacity
  double mem_usage = 0.0;
  double disk_usage = 0.0;
  // PSI ("some" pressure) over the three kernel windows (10/60/300 s).
  double cpu_psi_10 = 0.0;
  double cpu_psi_60 = 0.0;
  double cpu_psi_300 = 0.0;
  double mem_psi_some_60 = 0.0;
  double mem_psi_full_60 = 0.0;
  // Application-level metrics (LS pods only; zero otherwise).
  double qps = 0.0;
  double response_time = 0.0;
};

// -- Pod lifecycle outcome ----------------------------------------------------
struct PodLifecycleRecord {
  PodId pod_id = kInvalidPodId;
  AppId app_id = kInvalidAppId;
  SloClass slo = SloClass::kUnknown;
  Tick submit_tick = 0;
  Tick schedule_tick = -1;   // -1 when never scheduled within the horizon
  Tick finish_tick = -1;     // -1 when still running at the horizon
  HostId host = kInvalidHostId;
  double waiting_seconds = 0.0;
  // For BE pods: the contention-free (ideal) and observed completion times.
  double ideal_completion_ticks = 0.0;
  double actual_completion_ticks = 0.0;
  // For LS pods: worst CPU PSI observed during execution.
  double max_cpu_psi = 0.0;
};

// A complete trace bundle as produced by one simulation run.
struct TraceBundle {
  std::vector<NodeMeta> nodes;
  std::vector<PodMeta> pods;
  std::vector<NodeUsageRecord> node_usage;
  std::vector<PodUsageRecord> pod_usage;
  std::vector<PodLifecycleRecord> lifecycles;
};

}  // namespace optum

#endif  // OPTUM_SRC_TRACE_SCHEMA_H_
