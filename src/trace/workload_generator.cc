#include "src/trace/workload_generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace optum {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config) : config_(config) {
  OPTUM_CHECK_GT(config_.num_hosts, 0);
  OPTUM_CHECK_GT(config_.horizon, 0);
}

AppProfile WorkloadGenerator::MakeLsApp(AppId id, bool reserved, Rng& rng) const {
  AppProfile app;
  app.id = id;
  app.slo = reserved ? SloClass::kLsr : SloClass::kLs;
  // LS request sizes: lognormal around a few percent of a host.
  const double cpu_req = std::clamp(rng.LogNormal(std::log(0.04), 0.5), 0.01, 0.25);
  const double mem_req = std::clamp(rng.LogNormal(std::log(0.028), 0.5), 0.005, 0.15);
  app.request = {cpu_req, mem_req};
  app.limit = {std::min(1.0, cpu_req * rng.Uniform(1.5, 2.5)),
               std::min(1.0, mem_req * rng.Uniform(1.1, 1.5))};
  // Fig. 6a: LS usage ~5x below request on average.
  app.cpu_usage_fraction = std::clamp(rng.LogNormal(std::log(0.18), 0.35), 0.05, 0.5);
  // Fig. 6b: LS memory under-utilized.
  app.mem_usage_fraction = std::clamp(rng.LogNormal(std::log(0.45), 0.3), 0.1, 0.9);
  app.cpu_usage_ceiling = std::min(1.0, app.cpu_usage_fraction * rng.Uniform(1.4, 2.0));
  app.cpu_pod_cov = rng.Uniform(0.05, 0.35);  // consistent pods (Fig. 12a)
  app.mem_pod_cov = rng.Uniform(0.0005, 0.015);
  app.qps_base = rng.LogNormal(std::log(150.0), 0.6);  // Fig. 3b scale
  // Shared diurnal phase with small per-app offsets; floors vary so some
  // services are flatter than others.
  app.qps_pattern = DiurnalPattern(rng.Uniform(0.3, 0.55), rng.Uniform(-0.15, 0.15));
  app.psi_sensitivity = rng.Uniform(0.6, 1.6);
  app.rt_dependency_sigma = rng.Uniform(0.4, 1.4);
  app.max_pods_per_host = static_cast<int>(rng.UniformInt(2, 4));
  return app;
}

AppProfile WorkloadGenerator::MakeBeApp(AppId id, Rng& rng) const {
  AppProfile app;
  app.id = id;
  app.slo = SloClass::kBe;
  // BE requests are small (Fig. 6a: ~0.03 normalized cores requested).
  const double cpu_req = std::clamp(rng.LogNormal(std::log(0.03), 0.7), 0.005, 0.15);
  const double mem_req = std::clamp(rng.LogNormal(std::log(0.008), 0.6), 0.001, 0.05);
  app.request = {cpu_req, mem_req};
  app.limit = {std::min(1.0, cpu_req * rng.Uniform(2.0, 4.0)),
               std::min(1.0, mem_req * rng.Uniform(1.0, 1.2))};
  // Fig. 6a: >75% of BE pods use <= ~1/3 of their CPU request.
  app.cpu_usage_fraction = std::clamp(rng.LogNormal(std::log(0.28), 0.4), 0.05, 0.6);
  // Fig. 6b: memory almost fully utilized by BE pods.
  app.mem_usage_fraction = std::clamp(rng.LogNormal(std::log(0.9), 0.1), 0.5, 1.0);
  // BE CPU varies more pod-to-pod than memory (Fig. 12b): data-dependent.
  app.cpu_usage_ceiling = std::min(1.0, app.cpu_usage_fraction * rng.Uniform(1.3, 2.0));
  app.cpu_pod_cov = rng.Uniform(0.15, 0.55);
  app.mem_pod_cov = rng.Uniform(0.001, 0.02);
  // Contention-free completion time: tens of minutes, lognormal.
  app.work_mean_ticks = std::clamp(rng.LogNormal(std::log(30.0), 0.8), 2.0, 400.0);
  app.work_cov = rng.Uniform(0.1, 0.6);
  app.slowdown_sensitivity = rng.Uniform(0.8, 2.5);
  return app;
}

AppProfile WorkloadGenerator::MakeAuxApp(AppId id, SloClass slo, Rng& rng) const {
  AppProfile app;
  app.id = id;
  app.slo = slo;
  const double cpu_req = std::clamp(rng.LogNormal(std::log(0.02), 0.5), 0.005, 0.1);
  const double mem_req = std::clamp(rng.LogNormal(std::log(0.02), 0.5), 0.005, 0.1);
  app.request = {cpu_req, mem_req};
  app.limit = {cpu_req * 1.5, mem_req * 1.2};
  app.cpu_usage_fraction = rng.Uniform(0.15, 0.4);
  app.cpu_usage_ceiling = std::min(1.0, app.cpu_usage_fraction * 1.4);
  app.mem_usage_fraction = rng.Uniform(0.3, 0.8);
  // Daemon-like system pods: at most one per host.
  app.max_pods_per_host = slo == SloClass::kUnknown ? 2 : 1;
  app.cpu_pod_cov = 0.1;
  app.mem_pod_cov = 0.02;
  return app;
}

std::vector<AppProfile> WorkloadGenerator::GenerateApps(Rng& rng) const {
  std::vector<AppProfile> apps;
  AppId next = 0;
  for (int i = 0; i < config_.num_ls_apps; ++i) {
    apps.push_back(MakeLsApp(next++, /*reserved=*/false, rng));
  }
  for (int i = 0; i < config_.num_lsr_apps; ++i) {
    apps.push_back(MakeLsApp(next++, /*reserved=*/true, rng));
  }
  for (int i = 0; i < config_.num_be_apps; ++i) {
    apps.push_back(MakeBeApp(next++, rng));
  }
  for (int i = 0; i < config_.num_system_apps; ++i) {
    apps.push_back(MakeAuxApp(next++, SloClass::kSystem, rng));
  }
  for (int i = 0; i < config_.num_vmenv_apps; ++i) {
    apps.push_back(MakeAuxApp(next++, SloClass::kVmEnv, rng));
  }
  for (int i = 0; i < config_.num_unknown_apps; ++i) {
    apps.push_back(MakeAuxApp(next++, SloClass::kUnknown, rng));
  }
  return apps;
}

Workload WorkloadGenerator::Generate() {
  Rng rng(config_.seed);
  Workload out;
  out.config = config_;
  out.apps = GenerateApps(rng);
  if (config_.mem_request_scale != 1.0) {
    for (AppProfile& app : out.apps) {
      app.request.mem = std::min(1.0, app.request.mem * config_.mem_request_scale);
      app.limit.mem = std::min(1.0, app.limit.mem * config_.mem_request_scale);
    }
  }

  // Partition the app list by class for arrival generation.
  std::vector<const AppProfile*> ls_apps, be_apps, aux_apps;
  for (const auto& app : out.apps) {
    if (IsLatencySensitive(app.slo)) {
      ls_apps.push_back(&app);
    } else if (app.slo == SloClass::kBe) {
      be_apps.push_back(&app);
    } else {
      aux_apps.push_back(&app);
    }
  }
  OPTUM_CHECK(!ls_apps.empty() && !be_apps.empty());

  PodId next_pod = 0;
  auto emit = [&](const AppProfile& app, Tick t) {
    PodSpec pod;
    pod.id = next_pod++;
    pod.app = app.id;
    pod.slo = app.slo;
    pod.request = app.request;
    pod.limit = app.limit;
    pod.submit_tick = t;
    pod.behavior = SamplePodBehavior(app, rng);
    pod.long_running = app.slo != SloClass::kBe;
    pod.max_pods_per_host = app.max_pods_per_host;
    out.pods.push_back(pod);
  };

  // --- Initial LS/LSR fleet at t=0 -----------------------------------------
  const double cluster_cpu = static_cast<double>(config_.num_hosts);
  double placed_request = 0.0;
  const double target = config_.initial_ls_request_load * cluster_cpu;
  size_t ls_cursor = 0;
  while (placed_request < target) {
    const AppProfile& app = *ls_apps[ls_cursor % ls_apps.size()];
    ++ls_cursor;
    // Each application deploys a replica group (services run many pods).
    const int replicas = static_cast<int>(rng.UniformInt(4, 24));
    for (int r = 0; r < replicas && placed_request < target; ++r) {
      emit(app, 0);
      placed_request += app.request.cpu;
    }
  }

  // Auxiliary pods (System/VMEnv/Unknown): a thin static layer per Fig. 2b.
  for (const AppProfile* app : aux_apps) {
    const int replicas = static_cast<int>(rng.UniformInt(
        config_.num_hosts / 8 + 1, config_.num_hosts / 4 + 1));
    for (int r = 0; r < replicas; ++r) {
      emit(*app, 0);
    }
  }

  // --- Ongoing arrivals -----------------------------------------------------
  // LS: near-constant trickle (Fig. 3a).
  const double ls_rate =
      config_.ls_arrivals_per_tick_per_100_hosts * config_.num_hosts / 100.0;

  // BE: arrival rate chosen so that instantaneous BE request load hovers at
  // be_target_request_load; Little's law with the mean BE lifetime.
  double mean_be_request = 0.0, mean_be_work = 0.0;
  for (const AppProfile* app : be_apps) {
    mean_be_request += app->request.cpu;
    mean_be_work += app->work_mean_ticks;
  }
  mean_be_request /= static_cast<double>(be_apps.size());
  mean_be_work /= static_cast<double>(be_apps.size());
  const double be_rate_base = config_.be_target_request_load * cluster_cpu /
                              (mean_be_request * mean_be_work);

  // Anti-diurnal modulation: unified scheduling runs batch in LS valleys
  // (paper Implication 1); the submission pipeline itself follows suit.
  const AntiDiurnalPattern be_pressure(0.35, 0.0);

  for (Tick t = 1; t < config_.horizon; ++t) {
    // LS trickle: Poisson-thinned Bernoulli per tick.
    double ls_expect = ls_rate;
    while (ls_expect > 0.0) {
      if (rng.NextDouble() < std::min(1.0, ls_expect)) {
        const AppProfile& app = *ls_apps[rng.NextBelow(ls_apps.size())];
        emit(app, t);
      }
      ls_expect -= 1.0;
    }

    // BE bursts: heavy-tailed burst sizes arriving at a modulated rate.
    const double rate_now = be_rate_base * be_pressure.At(t);
    // Expected pods this tick = rate_now; draw bursts until budget spent.
    double budget = rate_now;
    while (budget > 0.0) {
      // Burst size ~ Pareto (heavy tail, Fig. 7); mean alpha/(alpha-1).
      const double burst_mean = config_.be_burst_alpha / (config_.be_burst_alpha - 1.0);
      const double p_burst = std::min(1.0, budget / burst_mean);
      if (rng.NextDouble() >= p_burst) {
        break;
      }
      int burst = static_cast<int>(
          std::llround(rng.Pareto(1.0, config_.be_burst_alpha)));
      burst = std::clamp(burst, 1, 500);
      const AppProfile& app = *be_apps[rng.NextBelow(be_apps.size())];
      for (int b = 0; b < burst; ++b) {
        emit(app, t);
      }
      budget -= burst_mean;
    }
  }

  std::stable_sort(out.pods.begin(), out.pods.end(),
                   [](const PodSpec& a, const PodSpec& b) {
                     return a.submit_tick < b.submit_tick;
                   });
  return out;
}

std::vector<const AppProfile*> SchedulableApps(const Workload& w) {
  std::vector<const AppProfile*> catalog;
  for (const AppProfile& app : w.apps) {
    if (app.slo == SloClass::kBe || app.slo == SloClass::kLs ||
        app.slo == SloClass::kLsr) {
      catalog.push_back(&app);
    }
  }
  return catalog;
}

}  // namespace optum
