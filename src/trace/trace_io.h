// CSV serialization for trace bundles. The column layout matches the record
// structs in schema.h one-to-one, so real cluster traces can be massaged
// into the same files and replayed through the benches.
#ifndef OPTUM_SRC_TRACE_TRACE_IO_H_
#define OPTUM_SRC_TRACE_TRACE_IO_H_

#include <string>

#include "src/trace/schema.h"

namespace optum {

// Writes the bundle as a set of CSVs under `directory` (created if needed):
// nodes.csv, pods.csv, node_usage.csv, pod_usage.csv, lifecycles.csv.
// Returns false (with errno intact) on I/O failure.
bool WriteTraceBundle(const TraceBundle& bundle, const std::string& directory);

// Reads a bundle previously written by WriteTraceBundle. Returns false on
// missing files or malformed rows.
bool ReadTraceBundle(const std::string& directory, TraceBundle* out);

}  // namespace optum

#endif  // OPTUM_SRC_TRACE_TRACE_IO_H_
