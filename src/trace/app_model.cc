#include "src/trace/app_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace optum {
namespace {

// Lognormal multiplier with mean 1 and the requested coefficient of
// variation: sigma^2 = ln(1 + cov^2), mu = -sigma^2/2.
double LogNormalUnitMean(double cov, Rng& rng) {
  if (cov <= 0.0) {
    return 1.0;
  }
  const double sigma2 = std::log(1.0 + cov * cov);
  const double mu = -0.5 * sigma2;
  return rng.LogNormal(mu, std::sqrt(sigma2));
}

}  // namespace

PodBehavior SamplePodBehavior(const AppProfile& app, Rng& rng) {
  PodBehavior b;
  b.cpu_scale = LogNormalUnitMean(app.cpu_pod_cov, rng);
  b.mem_scale = LogNormalUnitMean(app.mem_pod_cov, rng);
  if (IsLatencySensitive(app.slo)) {
    // QPS is well balanced across pods of an app (Fig. 12a: CoV < 0.1).
    b.qps_scale = LogNormalUnitMean(0.05, rng);
    // Dependency-chain position is fixed per pod (Fig. 12a: RT is the one
    // inconsistent metric within an application).
    b.rt_scale = rng.LogNormal(0.0, app.rt_dependency_sigma);
  }
  if (app.slo == SloClass::kBe) {
    b.work_ticks = std::max(1.0, app.work_mean_ticks * LogNormalUnitMean(app.work_cov, rng));
    // Larger inputs need both more CPU and more time (Fig. 16: completion
    // time correlates with pod CPU utilization).
    b.work_ticks *= 0.5 + 0.5 * b.cpu_scale;
  }
  return b;
}

double PodCpuDemand(const AppProfile& app, const PodBehavior& behavior, Tick t, Rng& noise) {
  const double base = app.request.cpu * app.cpu_usage_fraction * behavior.cpu_scale;
  double temporal = 1.0;
  if (IsLatencySensitive(app.slo)) {
    // LS CPU tracks QPS: diurnal (Fig. 4a).
    temporal = app.qps_pattern.At(t);
  }
  // Small measurement/runtime noise, bounded by the app's burst ceiling.
  const double jitter = std::max(0.0, noise.Gaussian(1.0, 0.06));
  const double ceiling = app.cpu_usage_ceiling * app.request.cpu;
  return std::clamp(base * temporal * jitter, 0.0, ceiling);
}

double PodMemDemand(const AppProfile& app, const PodBehavior& behavior, Tick t, Rng& noise) {
  (void)t;  // Memory usage is stable over time (paper Fig. 4b).
  const double base = app.request.mem * app.mem_usage_fraction * behavior.mem_scale;
  const double jitter = std::max(0.0, noise.Gaussian(1.0, 0.005));
  return std::max(0.0, base * jitter);
}

PodSpec MakePodSpec(PodId id, const AppProfile& app, Tick submit_tick) {
  PodSpec spec;
  spec.id = id;
  spec.app = app.id;
  spec.slo = app.slo;
  spec.request = app.request;
  spec.limit = app.limit;
  spec.submit_tick = submit_tick;
  spec.max_pods_per_host = app.max_pods_per_host;
  return spec;
}

double PodQps(const AppProfile& app, const PodBehavior& behavior, Tick t, Rng& noise) {
  if (!IsLatencySensitive(app.slo) || app.qps_base <= 0.0) {
    return 0.0;
  }
  const double jitter = std::max(0.0, noise.Gaussian(1.0, 0.05));
  return app.qps_base * app.qps_pattern.At(t) * behavior.qps_scale * jitter;
}

}  // namespace optum
