// Named workload scenarios: calibrated presets that perturb the default
// (trace-matched) generator along the axes that matter for scheduling —
// LS request pressure, BE backlog, burstiness, diurnal amplitude, memory
// tightness. Used by the robustness ablation and available to users who
// want to stress a scheduler beyond the paper's operating point.
#ifndef OPTUM_SRC_TRACE_SCENARIOS_H_
#define OPTUM_SRC_TRACE_SCENARIOS_H_

#include <string>
#include <vector>

#include "src/trace/workload_generator.h"

namespace optum {

enum class Scenario {
  // The trace-calibrated default (DESIGN.md §2).
  kCalibrated,
  // LS requests alone over-commit the cluster (Fig. 5's deep tail).
  kLsHeavy,
  // Sustained BE backlog: throughput-bound operation.
  kBeSaturated,
  // Heavier, burstier BE arrivals (Fig. 7's extreme minutes).
  kBursty,
  // Flatter diurnal pattern: less valley to fill.
  kFlatDiurnal,
  // Larger memory requests: memory becomes the binding dimension.
  kMemoryTight,
};

const char* ToString(Scenario scenario);

// All scenarios, in declaration order.
std::vector<Scenario> AllScenarios();

// Returns the generator configuration for a scenario at the given scale.
WorkloadConfig MakeScenarioConfig(Scenario scenario, int num_hosts, Tick horizon,
                                  uint64_t seed = 42);

}  // namespace optum

#endif  // OPTUM_SRC_TRACE_SCENARIOS_H_
