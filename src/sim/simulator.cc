#include "src/sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/obs/profiler.h"
#include "src/obs/timer.h"

namespace optum {

const char* ToString(WaitReason reason) {
  switch (reason) {
    case WaitReason::kNone:
      return "None";
    case WaitReason::kInsufficientCpu:
      return "CPU";
    case WaitReason::kInsufficientMem:
      return "Mem";
    case WaitReason::kInsufficientCpuAndMem:
      return "CPU&Mem";
    case WaitReason::kOther:
      return "Other";
  }
  return "?";
}

double SimResult::MeanCpuUtilNonIdle() const {
  if (util_series.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (const auto& s : util_series) {
    acc += s.avg_cpu_nonidle;
  }
  return acc / static_cast<double>(util_series.size());
}

double SimResult::MeanMemUtilNonIdle() const {
  if (util_series.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (const auto& s : util_series) {
    acc += s.avg_mem_nonidle;
  }
  return acc / static_cast<double>(util_series.size());
}

Simulator::Simulator(const Workload& workload, SimConfig config, PlacementPolicy& policy)
    : workload_(workload),
      config_(config),
      policy_(policy),
      psi_model_(config.psi),
      cluster_(workload.config.num_hosts, config.host_capacity,
               config.nsigma_history_window),
      rng_(config.seed) {
  if (config_.num_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
  OPTUM_CHECK_MSG(config_.sinks.series == nullptr || config_.sinks.metrics != nullptr,
                  "SimConfig::series requires SimConfig::metrics");
  wait_by_pod_.resize(workload.pods.size());
  tick_scratch_.resize(static_cast<size_t>(workload.config.num_hosts));
  if (config_.sinks.metrics != nullptr) {
    obs::MetricRegistry* m = config_.sinks.metrics;
    sim_metrics_.tick_timer = m->histogram("sim.tick_seconds");
    sim_metrics_.cpu_util = m->gauge("sim.avg_cpu_util_nonidle");
    sim_metrics_.mem_util = m->gauge("sim.avg_mem_util_nonidle");
    sim_metrics_.frac_nonidle = m->gauge("sim.frac_hosts_nonidle");
    sim_metrics_.pending = m->gauge("sim.pending_pods");
    sim_metrics_.running = m->gauge("sim.running_pods");
    sim_metrics_.scheduled = m->gauge("sim.scheduled_pods");
    sim_metrics_.oom_kills = m->gauge("sim.oom_kills");
    sim_metrics_.preemptions = m->gauge("sim.preemptions");
    sim_metrics_.violations = m->gauge("sim.violation_host_ticks");
  }
  result_.trace.nodes.reserve(static_cast<size_t>(workload.config.num_hosts));
  for (int h = 0; h < workload.config.num_hosts; ++h) {
    result_.trace.nodes.push_back(NodeMeta{h, config.host_capacity});
  }
}

void Simulator::AddRunning(PodRuntime* pod) {
  pod->running_index = running_.size();
  running_.push_back(pod);
}

void Simulator::RemoveFromRunning(PodRuntime* pod) {
  const size_t idx = pod->running_index;
  OPTUM_CHECK(idx < running_.size() && running_[idx] == pod);
  PodRuntime* moved = running_.back();
  running_[idx] = moved;
  moved->running_index = idx;
  running_.pop_back();
  pod->running_index = static_cast<size_t>(-1);
}

void Simulator::ParallelOverN(size_t n, const std::function<void(size_t)>& fn) {
  if (pool_ != nullptr && n >= 2 * pool_->num_threads()) {
    pool_->ParallelFor(n, fn);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    fn(i);
  }
}

void Simulator::EnqueueArrivals() {
  while (next_arrival_ < workload_.pods.size() &&
         workload_.pods[next_arrival_].submit_tick <= now_) {
    const PodSpec* spec = &workload_.pods[next_arrival_];
    const int prio = SchedulingPriority(spec->slo);
    pending_[prio].push_back(PendingPod{spec, now_});
    ++next_arrival_;
    if (config_.sinks.span_log != nullptr) {
      config_.sinks.span_log->Append(
          {.tick = now_, .pod = spec->id, .phase = obs::SpanPhase::kSubmitted});
    }
  }
}

void Simulator::NoteWaitReason(const PodSpec& pod, WaitReason reason) {
  WaitSample& w = wait_by_pod_[static_cast<size_t>(pod.id)];
  w.pod = pod.id;
  w.slo = pod.slo;
  w.request = pod.request;
  w.reason = reason;
}

void Simulator::CommitPlacement(const PodSpec& spec, const AppProfile& app, HostId host) {
  PodRuntime* pod = cluster_.Place(spec, &app, host, now_);
  AddRunning(pod);
  ++result_.scheduled_pods;
  policy_.OnPodPlaced(*pod, cluster_);
  if (config_.sinks.span_log != nullptr) {
    config_.sinks.span_log->Append({.tick = now_,
                              .pod = spec.id,
                              .phase = obs::SpanPhase::kPlaced,
                              .host = host,
                              .wait_ticks = now_ - spec.submit_tick});
  }

  PodMeta meta;
  meta.pod_id = spec.id;
  meta.app_id = spec.app;
  meta.slo = spec.slo;
  meta.request = spec.request;
  meta.limit = spec.limit;
  meta.submit_tick = spec.submit_tick;
  meta.original_machine_id = host;
  result_.trace.pods.push_back(meta);
}

bool Simulator::TryPreemptForLsr(const PodSpec& pod, const AppProfile& app) {
  // Find the host whose evictable BE request mass best covers the shortfall,
  // then evict newest-first until the LSR pod's request fits the capacity.
  // Only hosts with at least one BE pod can help, and their evictable mass
  // is maintained incrementally, so the scan skips the rest of the cluster.
  HostId best = kInvalidHostId;
  double best_score = -1.0;
  for (const HostId hid : cluster_.hosts_with_be()) {
    const Host& h = cluster_.host(hid);
    if (!AffinityAllows(pod, h)) {
      continue;
    }
    const double be_request = h.be_request_cpu;
    const double after_cpu = h.request_sum.cpu - be_request + pod.request.cpu;
    const double after_mem = h.demand.mem + pod.request.mem;  // conservative
    if (after_cpu <= h.capacity.cpu && after_mem <= h.capacity.mem &&
        be_request > best_score) {
      best_score = be_request;
      best = h.id;
    }
  }
  if (best == kInvalidHostId) {
    return false;
  }
  Host& h = cluster_.mutable_host(best);
  // Evict newest BE pods until the request fits.
  while (h.request_sum.cpu + pod.request.cpu > h.capacity.cpu) {
    PodRuntime* victim = nullptr;
    for (auto it = h.pods.rbegin(); it != h.pods.rend(); ++it) {
      if ((*it)->spec.slo == SloClass::kBe) {
        victim = *it;
        break;
      }
    }
    if (victim == nullptr) {
      break;
    }
    ++result_.preemptions;
    policy_.OnPodFinished(*victim, cluster_);
    if (config_.sinks.span_log != nullptr) {
      config_.sinks.span_log->Append({.tick = now_,
                                .pod = victim->spec.id,
                                .phase = obs::SpanPhase::kEvicted,
                                .host = victim->host,
                                .reason = "Preempt"});
    }
    // Resubmit the victim: progress is lost, waiting restarts now.
    pending_[SchedulingPriority(victim->spec.slo)].push_back(PendingPod{
        &workload_.pods[static_cast<size_t>(victim->spec.id)], now_});
    RemoveFromRunning(victim);
    cluster_.Remove(victim);
  }
  if (h.request_sum.cpu + pod.request.cpu > h.capacity.cpu) {
    return false;  // Not enough evictable mass after all.
  }
  CommitPlacement(pod, app, best);
  return true;
}

void Simulator::SchedulePending() {
  size_t attempts = 0;
  for (int prio = 3; prio >= 1; --prio) {
    auto& queue = pending_[prio];
    size_t remaining = queue.size();
    while (remaining-- > 0 && attempts < config_.max_attempts_per_tick) {
      PendingPod item = queue.front();
      queue.pop_front();
      ++attempts;
      const PodSpec& spec = *item.spec;
      const AppProfile& app = AppOf(workload_, spec.app);
      const PlacementDecision decision = policy_.Place(spec, app, cluster_);
      if (decision.placed()) {
        CommitPlacement(spec, app, decision.host);
        continue;
      }
      // LSR pods may preempt BE pods rather than wait (paper §3.1.3).
      if (spec.slo == SloClass::kLsr && config_.enable_lsr_preemption &&
          TryPreemptForLsr(spec, app)) {
        continue;
      }
      NoteWaitReason(spec, decision.reason);
      if (config_.sinks.span_log != nullptr) {
        config_.sinks.span_log->Append({.tick = now_,
                                  .pod = spec.id,
                                  .phase = obs::SpanPhase::kQueued,
                                  .reason = ToString(decision.reason)});
      }
      queue.push_back(item);  // Retry next tick.
    }
  }
}

void Simulator::UpdateUsageAndPerformance() {
  // Four phases, with the two expensive ones parallel over independent
  // state. Determinism for any thread count: every stochastic draw comes
  // from a per-pod stream, each pod/host is touched by exactly one task per
  // phase, and the shared counters are reduced serially in host order.

  // Phase 1 (parallel over pods): raw demands from per-pod noise streams.
  ParallelOverN(running_.size(), [&](size_t i) {
    PodRuntime* pod = running_[i];
    const AppProfile& app = *pod->app;
    double cpu = PodCpuDemand(app, pod->spec.behavior, now_, pod->noise);
    double mem = PodMemDemand(app, pod->spec.behavior, now_, pod->noise);
    cpu = std::min(cpu, pod->spec.limit.cpu);
    mem = std::min(mem, pod->spec.limit.mem);
    pod->cpu_demand = cpu;
    pod->mem_usage = mem;
    pod->qps = PodQps(app, pod->spec.behavior, now_, pod->noise);
  });

  // Phase 2 (parallel over hosts): per-host demand sums.
  const size_t num_hosts = cluster_.num_hosts();
  ParallelOverN(num_hosts, [&](size_t hi) {
    const Host& host = cluster_.host(static_cast<HostId>(hi));
    TickScratch& scratch = tick_scratch_[hi];
    scratch.demand = kZeroResources;
    scratch.violation = false;
    scratch.had_pods = !host.pods.empty();
    for (const PodRuntime* pod : host.pods) {
      scratch.demand += Resources{pod->cpu_demand, pod->mem_usage};
    }
  });

  // Phase 3 (serial, rare): memory over-capacity triggers OOM kills of the
  // newest BE pods ("running out-of-memory can kill all programs on the
  // host", §3.1.2; we model the kernel killing best-effort victims first).
  // Mutates pending_/running_/cluster_, so it stays on the calling thread.
  for (size_t hi = 0; hi < num_hosts; ++hi) {
    Resources& demand = tick_scratch_[hi].demand;
    if (demand.mem <= cluster_.host(static_cast<HostId>(hi)).capacity.mem) {
      continue;
    }
    Host& host = cluster_.mutable_host(static_cast<HostId>(hi));
    while (demand.mem > host.capacity.mem) {
      PodRuntime* victim = nullptr;
      for (auto it = host.pods.rbegin(); it != host.pods.rend(); ++it) {
        if ((*it)->spec.slo == SloClass::kBe) {
          victim = *it;
          break;
        }
      }
      if (victim == nullptr) {
        victim = host.pods.back();  // Pathological: no BE to kill.
      }
      ++result_.oom_kills;
      demand -= Resources{victim->cpu_demand, victim->mem_usage};
      policy_.OnPodFinished(*victim, cluster_);
      if (config_.sinks.span_log != nullptr) {
        config_.sinks.span_log->Append({.tick = now_,
                                  .pod = victim->spec.id,
                                  .phase = obs::SpanPhase::kEvicted,
                                  .host = victim->host,
                                  .reason = "OOM"});
      }
      pending_[SchedulingPriority(victim->spec.slo)].push_back(
          PendingPod{&workload_.pods[static_cast<size_t>(victim->spec.id)], now_});
      RemoveFromRunning(victim);
      cluster_.Remove(victim);
      if (host.pods.empty()) {
        break;
      }
    }
  }

  // Phase 4 (parallel over hosts): capacity scaling, per-pod usage, PSI,
  // BE progress, and the host history window.
  ParallelOverN(num_hosts, [&](size_t hi) {
    Host& host = cluster_.mutable_host(static_cast<HostId>(hi));
    TickScratch& scratch = tick_scratch_[hi];
    if (host.pods.empty()) {
      host.demand = kZeroResources;
      host.usage = kZeroResources;
      host.PushHistory(0.0, config_.nsigma_history_window);
      return;
    }
    const Resources demand = scratch.demand;
    host.demand = demand;
    scratch.violation = demand.cpu > host.capacity.cpu + 1e-9;

    // CPU is work-conserving: when demand exceeds capacity every pod is
    // throttled proportionally and contention (PSI) rises.
    const double scale =
        demand.cpu > host.capacity.cpu ? host.capacity.cpu / demand.cpu : 1.0;
    const double demand_ratio = demand.cpu / host.capacity.cpu;
    const double mem_ratio = demand.mem / host.capacity.mem;

    Resources usage = kZeroResources;
    for (PodRuntime* pod : host.pods) {
      pod->cpu_usage = pod->cpu_demand * scale;
      pod->max_cpu_usage = std::max(pod->max_cpu_usage, pod->cpu_usage);
      pod->max_mem_usage = std::max(pod->max_mem_usage, pod->mem_usage);
      pod->RecordCpuSample(pod->cpu_usage, pod->reservoir_rng);
      usage += Resources{pod->cpu_usage, pod->mem_usage};

      const AppProfile& app = *pod->app;
      if (IsLatencySensitive(app.slo)) {
        const double pod_util =
            pod->spec.request.cpu > 0 ? pod->cpu_usage / pod->spec.request.cpu : 0.0;
        const double qps_fraction = app.qps_pattern.At(now_);
        pod->psi60 = psi_model_.CpuPsi60(app, demand_ratio, pod_util, qps_fraction,
                                         pod->noise);
        pod->psi300 = psi_model_.CpuPsi300(pod->psi300, pod->psi60);
        pod->max_psi = std::max(pod->max_psi, pod->psi60);
      } else if (app.slo == SloClass::kBe) {
        pod->progress += psi_model_.BeProgressRate(app, demand_ratio, mem_ratio);
      }
    }
    host.usage = usage;
    host.PushHistory(usage.cpu / host.capacity.cpu, config_.nsigma_history_window);
  });

  // Phase 5 (serial reduce): shared counters, in host order.
  for (size_t hi = 0; hi < num_hosts; ++hi) {
    result_.nonidle_host_ticks += tick_scratch_[hi].had_pods ? 1 : 0;
    result_.violation_host_ticks += tick_scratch_[hi].violation ? 1 : 0;
  }
}

void Simulator::FinishPod(PodRuntime* pod, Tick finish_tick) {
  PodLifecycleRecord rec;
  rec.pod_id = pod->spec.id;
  rec.app_id = pod->spec.app;
  rec.slo = pod->spec.slo;
  rec.submit_tick = pod->spec.submit_tick;
  rec.schedule_tick = pod->scheduled_at;
  rec.finish_tick = finish_tick;
  rec.host = pod->host;
  rec.waiting_seconds =
      static_cast<double>(pod->scheduled_at - pod->spec.submit_tick) * kSecondsPerTick;
  if (pod->spec.slo == SloClass::kBe) {
    rec.ideal_completion_ticks = pod->spec.behavior.work_ticks;
    rec.actual_completion_ticks = static_cast<double>(finish_tick - pod->scheduled_at);
  }
  rec.max_cpu_psi = pod->max_psi;
  result_.trace.lifecycles.push_back(rec);

  policy_.OnPodFinished(*pod, cluster_);
  if (config_.sinks.span_log != nullptr) {
    config_.sinks.span_log->Append({.tick = finish_tick,
                              .pod = pod->spec.id,
                              .phase = obs::SpanPhase::kFinished,
                              .host = pod->host});
  }
  RemoveFromRunning(pod);
  cluster_.Remove(pod);
}

void Simulator::HandleCompletions() {
  // Collect first: FinishPod mutates running_.
  std::vector<PodRuntime*> done;
  for (PodRuntime* pod : running_) {
    if (pod->spec.slo == SloClass::kBe &&
        pod->progress + 1e-9 >= pod->spec.behavior.work_ticks) {
      done.push_back(pod);
    }
  }
  for (PodRuntime* pod : done) {
    FinishPod(pod, now_);
  }
}

void Simulator::RecordRunningState() {
  if (config_.node_usage_period > 0 && now_ % config_.node_usage_period == 0) {
    double cpu_acc = 0.0, mem_acc = 0.0, cpu_max = 0.0;
    int nonidle = 0;
    for (const Host& host : cluster_.hosts()) {
      const double cpu_util = host.usage.cpu / host.capacity.cpu;
      const double mem_util = host.usage.mem / host.capacity.mem;
      cpu_max = std::max(cpu_max, cpu_util);
      if (host.HasSloWorkload()) {
        ++nonidle;
        cpu_acc += cpu_util;
        mem_acc += mem_util;
        result_.trace.node_usage.push_back(NodeUsageRecord{
            host.id, now_, cpu_util, mem_util,
            /*disk=*/0.3 * mem_util, /*net=*/0.2 * cpu_util});
      }
    }
    UtilSample sample;
    sample.tick = now_;
    sample.avg_cpu_nonidle = nonidle > 0 ? cpu_acc / nonidle : 0.0;
    sample.avg_mem_nonidle = nonidle > 0 ? mem_acc / nonidle : 0.0;
    sample.max_cpu = cpu_max;
    sample.frac_hosts_nonidle =
        static_cast<double>(nonidle) / static_cast<double>(cluster_.num_hosts());
    result_.util_series.push_back(sample);
  }

  if (config_.pod_usage_period > 0 && now_ % config_.pod_usage_period == 0) {
    for (PodRuntime* pod : running_) {
      PodUsageRecord rec;
      rec.pod_id = pod->spec.id;
      rec.host = pod->host;
      rec.collect_tick = now_;
      rec.cpu_usage = pod->cpu_usage;
      rec.mem_usage = pod->mem_usage;
      rec.disk_usage = 0.2 * pod->mem_usage;
      rec.cpu_psi_60 = pod->psi60;
      rec.cpu_psi_10 = psi_model_.CpuPsi10(pod->psi60, pod->noise);
      rec.cpu_psi_300 = pod->psi300;
      const Host& host = cluster_.host(pod->host);
      rec.mem_psi_some_60 = psi_model_.MemPsiSome60(host.MemRatio(), pod->noise);
      rec.mem_psi_full_60 = psi_model_.MemPsiFull60(rec.mem_psi_some_60);
      if (IsLatencySensitive(pod->spec.slo)) {
        rec.qps = pod->qps;
        rec.response_time = psi_model_.ResponseTime(
            *pod->app, pod->psi60, pod->spec.behavior.rt_scale, pod->noise);
      }
      result_.trace.pod_usage.push_back(rec);
    }
  }
}

void Simulator::FinalizeAtHorizon() {
  // Long-running pods (and unfinished BE pods): record their lifecycle with
  // finish_tick = -1.
  std::vector<PodRuntime*> still_running = running_;
  for (PodRuntime* pod : still_running) {
    PodLifecycleRecord rec;
    rec.pod_id = pod->spec.id;
    rec.app_id = pod->spec.app;
    rec.slo = pod->spec.slo;
    rec.submit_tick = pod->spec.submit_tick;
    rec.schedule_tick = pod->scheduled_at;
    rec.finish_tick = -1;
    rec.host = pod->host;
    rec.waiting_seconds =
        static_cast<double>(pod->scheduled_at - pod->spec.submit_tick) * kSecondsPerTick;
    if (pod->spec.slo == SloClass::kBe) {
      rec.ideal_completion_ticks = pod->spec.behavior.work_ticks;
      rec.actual_completion_ticks = 0.0;  // unfinished
    }
    rec.max_cpu_psi = pod->max_psi;
    result_.trace.lifecycles.push_back(rec);
  }

  // Never-scheduled pods.
  for (int prio = 1; prio <= 3; ++prio) {
    for (const PendingPod& item : pending_[prio]) {
      const PodSpec& spec = *item.spec;
      ++result_.never_scheduled_pods;
      PodLifecycleRecord rec;
      rec.pod_id = spec.id;
      rec.app_id = spec.app;
      rec.slo = spec.slo;
      rec.submit_tick = spec.submit_tick;
      rec.schedule_tick = -1;
      rec.finish_tick = -1;
      rec.waiting_seconds =
          static_cast<double>(workload_.config.horizon - spec.submit_tick) *
          kSecondsPerTick;
      result_.trace.lifecycles.push_back(rec);
    }
  }

  // Flush wait samples: every pod with a recorded reason waited >= 1 tick.
  for (auto& w : wait_by_pod_) {
    if (w.pod == kInvalidPodId) {
      continue;
    }
    // Fill in the final waiting time from the lifecycle data later; here we
    // approximate it from the recorded pod state (computed below).
    result_.waits.push_back(w);
  }
  // Attach waiting durations from lifecycle records.
  std::vector<double> waited(wait_by_pod_.size(), 0.0);
  for (const auto& rec : result_.trace.lifecycles) {
    if (rec.pod_id >= 0 && static_cast<size_t>(rec.pod_id) < waited.size()) {
      waited[static_cast<size_t>(rec.pod_id)] = rec.waiting_seconds;
    }
  }
  for (auto& w : result_.waits) {
    w.waited_seconds = waited[static_cast<size_t>(w.pod)];
  }
}

void Simulator::SampleMetrics() {
  double cpu_acc = 0.0, mem_acc = 0.0;
  int nonidle = 0;
  for (const Host& host : cluster_.hosts()) {
    if (host.pods.empty()) {
      continue;
    }
    ++nonidle;
    cpu_acc += host.usage.cpu / host.capacity.cpu;
    mem_acc += host.usage.mem / host.capacity.mem;
  }
  size_t pending = 0;
  for (const auto& queue : pending_) {
    pending += queue.size();
  }
  sim_metrics_.cpu_util->Set(nonidle > 0 ? cpu_acc / nonidle : 0.0);
  sim_metrics_.mem_util->Set(nonidle > 0 ? mem_acc / nonidle : 0.0);
  sim_metrics_.frac_nonidle->Set(static_cast<double>(nonidle) /
                                 static_cast<double>(cluster_.num_hosts()));
  sim_metrics_.pending->Set(static_cast<double>(pending));
  sim_metrics_.running->Set(static_cast<double>(running_.size()));
  sim_metrics_.scheduled->Set(static_cast<double>(result_.scheduled_pods));
  sim_metrics_.oom_kills->Set(static_cast<double>(result_.oom_kills));
  sim_metrics_.preemptions->Set(static_cast<double>(result_.preemptions));
  sim_metrics_.violations->Set(static_cast<double>(result_.violation_host_ticks));
}

void Simulator::SamplePressure() {
  obs::HostPressureMonitor* monitor = config_.pressure;
  monitor->BeginTick(now_);
  for (const Host& host : cluster_.hosts()) {
    obs::HostPressureInput in;
    in.cpu_util = host.CpuDemandRatio();
    in.mem_util = host.MemRatio();
    int32_t counts[kNumSloClasses];
    CountPodsBySlo(host, counts);
    in.pods_be = counts[static_cast<size_t>(SloClass::kBe)];
    in.pods_ls = counts[static_cast<size_t>(SloClass::kLs)];
    in.pods_lsr = counts[static_cast<size_t>(SloClass::kLsr)];
    const int32_t ls_pods = in.pods_ls + in.pods_lsr;
    if (ls_pods > 0 && config_.pressure_interference) {
      in.interference =
          config_.pressure_interference(host, in.cpu_util, in.mem_util) /
          static_cast<double>(ls_pods);
    }
    monitor->ObserveHost(host.id, in);
  }
  monitor->EndTick();
}

SimResult Simulator::Run() {
  OPTUM_CHECK_MSG(!ran_, "Simulator::Run may only be called once");
  ran_ = true;
  const Tick horizon = workload_.config.horizon;
  // Tick-phase profiling (DESIGN.md §14): arrivals → ingest_wait, scheduling
  // → spec_score (the sim has no speculation split — all scoring is "fresh"),
  // usage/performance → resolve, completions + state capture → commit, the
  // pressure/series sweep → pressure_sweep. One lane, one EndRound per tick
  // (barrier_ns 0 ⇒ the scheduling busy time substitutes for the wall).
  obs::RoundProfiler* profiler = config_.sinks.profile;
  for (now_ = 0; now_ < horizon; ++now_) {
    cluster_.set_now(now_);
    {
      obs::ScopedTimer tick_timer(sim_metrics_.tick_timer);
      {
        obs::RoundProfiler::Scope s(profiler, obs::ProfilePhase::kIngestWait, 0);
        EnqueueArrivals();
      }
      {
        obs::RoundProfiler::Scope s(profiler, obs::ProfilePhase::kSpecScore, 0);
        SchedulePending();
      }
      {
        obs::RoundProfiler::Scope s(profiler, obs::ProfilePhase::kResolve, 0);
        UpdateUsageAndPerformance();
      }
      obs::RoundProfiler::Scope s(profiler, obs::ProfilePhase::kCommit, 0);
      HandleCompletions();
      RecordRunningState();
    }
    if (config_.sinks.metrics != nullptr) {
      SampleMetrics();
    }
    {
      obs::RoundProfiler::Scope s(profiler, obs::ProfilePhase::kPressureSweep, 0);
      if (config_.pressure != nullptr) {
        SamplePressure();
      }
      if (config_.sinks.series != nullptr) {
        config_.sinks.series->Sample(now_);
      }
    }
    if (config_.on_tick_end) {
      config_.on_tick_end(cluster_, now_);
    }
    if (profiler != nullptr) {
      profiler->EndRound();
    }
  }
  FinalizeAtHorizon();
  if (config_.pressure != nullptr) {
    config_.pressure->Finalize();
  }
  if (config_.sinks.span_log != nullptr) {
    config_.sinks.span_log->Flush();
  }
  if (config_.sinks.series != nullptr) {
    config_.sinks.series->Flush();
  }
  if (profiler != nullptr) {
    profiler->Finalize();
  }
  return std::move(result_);
}

}  // namespace optum
