// The interface every scheduler implements — baselines in src/sched and
// Optum's online scheduler in src/core. The simulator calls Place() for
// each pending pod in priority order and applies the returned decision.
#ifndef OPTUM_SRC_SIM_PLACEMENT_POLICY_H_
#define OPTUM_SRC_SIM_PLACEMENT_POLICY_H_

#include <string>

#include "src/obs/sinks.h"
#include "src/sim/cluster.h"

namespace optum {

// Why a pod could not be placed this round (paper Fig. 9b taxonomy).
enum class WaitReason : uint8_t {
  kNone = 0,
  kInsufficientCpu,
  kInsufficientMem,
  kInsufficientCpuAndMem,
  kOther,  // affinity, temporary storage, conflicts, ...
};

const char* ToString(WaitReason reason);

struct PlacementDecision {
  HostId host = kInvalidHostId;
  WaitReason reason = WaitReason::kNone;

  static PlacementDecision Reject(WaitReason why) { return {kInvalidHostId, why}; }
  static PlacementDecision Accept(HostId h) { return {h, WaitReason::kNone}; }
  bool placed() const { return host != kInvalidHostId; }
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Chooses a host for the pod, or rejects with a reason. Must not mutate
  // cluster state; the simulator applies the decision.
  virtual PlacementDecision Place(const PodSpec& pod, const AppProfile& app,
                                  const ClusterState& cluster) = 0;

  // Lifecycle hooks (optional): called after the simulator commits a
  // placement or removes a pod, letting stateful policies update caches.
  virtual void OnPodPlaced(const PodRuntime& pod, const ClusterState& cluster) {
    (void)pod;
    (void)cluster;
  }
  virtual void OnPodFinished(const PodRuntime& pod, const ClusterState& cluster) {
    (void)pod;
    (void)cluster;
  }

  // Unified observability attach point (obs::Sinks contract): policies that
  // support instrumentation adopt the sinks they understand — e.g. emit
  // sampled/scored span transitions from their serial paths into
  // sinks.span_log — and ignore the rest. Default is a no-op so stateless
  // baselines need not care. Pass the same span log the simulator uses so
  // one file holds the full submitted→placed chain. Overrides call the base
  // first so `sinks_` always reflects the last attach.
  virtual void AttachSinks(const obs::Sinks& sinks) { sinks_ = sinks; }

  // Last-attached sinks. To change one slot, copy this, edit the field,
  // and re-attach the whole bundle.
  const obs::Sinks& attached_sinks() const { return sinks_; }

 protected:
  // Last-attached sinks, maintained by derived AttachSinks overrides that
  // call this base.
  obs::Sinks sinks_;

 public:

  virtual std::string name() const = 0;
};

}  // namespace optum

#endif  // OPTUM_SRC_SIM_PLACEMENT_POLICY_H_
