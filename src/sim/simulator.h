// Tick-driven cluster simulator. Plays a Workload against a PlacementPolicy
// and produces a TraceBundle plus scheduling/performance aggregates. This is
// the trace-driven testbed of paper §5.1, with ground-truth interference
// supplied by PsiModel.
#ifndef OPTUM_SRC_SIM_SIMULATOR_H_
#define OPTUM_SRC_SIM_SIMULATOR_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/pressure.h"
#include "src/obs/sinks.h"
#include "src/obs/span_log.h"
#include "src/obs/timeseries.h"
#include "src/sim/cluster.h"
#include "src/sim/placement_policy.h"
#include "src/sim/psi_model.h"
#include "src/trace/schema.h"
#include "src/trace/workload_generator.h"

namespace optum {

struct SimConfig {
  Resources host_capacity = kUnitResources;

  // Record cadence (in ticks) for node/pod running records; 0 disables.
  Tick node_usage_period = 2;
  Tick pod_usage_period = 10;

  // LSR pods may preempt BE pods when no host fits (paper §3.1.3).
  bool enable_lsr_preemption = true;

  // N-sigma window: host usage history length (paper: last 24 hours).
  size_t nsigma_history_window = static_cast<size_t>(kTicksPerDay);

  // Upper bound on placement attempts per tick, to bound per-tick work when
  // the pending queue is deep.
  size_t max_attempts_per_tick = 4000;

  // Worker threads for the per-host usage/performance update; 0 runs the
  // tick loop on the calling thread. Results are bit-identical for every
  // thread count: all stochastic draws come from per-pod streams and
  // cross-host aggregation is reduced in host order.
  size_t num_threads = 0;

  // Stop draining a priority queue after this many consecutive rejections
  // in one tick (head-of-line batching; bounds per-tick work when the
  // cluster is saturated).
  size_t max_consecutive_failures = 64;

  PsiModelParams psi;
  uint64_t seed = 7;

  // Optional observer invoked at the end of every tick, after usage and
  // performance updates. Benches use it to snapshot predictor inputs.
  std::function<void(const ClusterState&, Tick)> on_tick_end;

  // Observability sinks (obs::Sinks contract), all optional:
  //   * sinks.metrics — every tick updates the sim.* gauges (cluster
  //     CPU/mem utilization, pending-queue depth, running pods, cumulative
  //     violations/OOM kills/preemptions) and records the tick's wall time
  //     into the sim.tick_seconds histogram (DESIGN.md §9). Metrics never
  //     feed back into scheduling, so results are identical with or
  //     without.
  //   * sinks.span_log — pod-lifecycle spans (DESIGN.md §11): the simulator
  //     emits submitted/queued/placed/finished/evicted transitions from its
  //     serial phases; sampled/scored come from the placement policy (pass
  //     the same Sinks to PlacementPolicy::AttachSinks). Span output
  //     carries only tick timestamps, so the file is bit-identical for
  //     every num_threads.
  //   * sinks.series — streaming gauge time series, sampled once per tick
  //     after the sim.* gauges update. Requires sinks.metrics (the recorder
  //     snapshots that registry's gauges); the constructor enforces this.
  // sinks.decision_log / sinks.hotspot_log are ignored here — attach them
  // to the scheduler and the pressure monitor respectively.
  obs::Sinks sinks;

  // Optional host-pressure monitor (DESIGN.md §13). When set, every tick
  // feeds each host's demand-based utilization, the optional
  // predicted-interference term below, and its resident class counts
  // through the monitor on the serial tick path (hosts in id order), then
  // force-closes open hotspot episodes at the horizon. The caller owns the
  // monitor and its sinks; attach sim.pressure.*/sim.slo.* gauges via the
  // monitor's AttachSinks before the run.
  obs::HostPressureMonitor* pressure = nullptr;

  // Optional interference term for the pressure signal: total predicted RI
  // of the pods resident on `host` at the given utilization (e.g.
  // InterferencePredictor::ResidentInterference from the policy's
  // predictor). Called per host per tick on the serial path; the monitor
  // normalizes by the LS/LSR pod count. Unset ⇒ pressure is capacity-only.
  std::function<double(const Host&, double cpu_util, double mem_util)>
      pressure_interference;
};

// A pod that experienced scheduling delay, with the (final) blocking reason.
struct WaitSample {
  PodId pod = kInvalidPodId;
  SloClass slo = SloClass::kUnknown;
  Resources request;
  WaitReason reason = WaitReason::kNone;
  double waited_seconds = 0.0;
};

// Cluster-wide utilization snapshot.
struct UtilSample {
  Tick tick = 0;
  double avg_cpu_nonidle = 0.0;  // mean CPU util over hosts with >=1 pod
  double avg_mem_nonidle = 0.0;
  double max_cpu = 0.0;  // max host CPU util this tick
  double frac_hosts_nonidle = 0.0;
};

struct SimResult {
  TraceBundle trace;

  std::vector<WaitSample> waits;       // pods that waited at least one tick
  std::vector<UtilSample> util_series;

  int64_t oom_kills = 0;
  int64_t preemptions = 0;
  int64_t scheduled_pods = 0;
  int64_t never_scheduled_pods = 0;
  // Host-ticks where raw CPU demand exceeded capacity (usage violation,
  // Fig. 19b), over all non-idle host-ticks.
  int64_t violation_host_ticks = 0;
  int64_t nonidle_host_ticks = 0;

  double violation_rate() const {
    return nonidle_host_ticks > 0
               ? static_cast<double>(violation_host_ticks) /
                     static_cast<double>(nonidle_host_ticks)
               : 0.0;
  }
  // Time-averaged CPU utilization over non-idle hosts.
  double MeanCpuUtilNonIdle() const;
  double MeanMemUtilNonIdle() const;
};

class Simulator {
 public:
  // The workload must outlive the simulator.
  Simulator(const Workload& workload, SimConfig config, PlacementPolicy& policy);

  // Runs the whole horizon and returns the result. Call once.
  SimResult Run();

  const ClusterState& cluster() const { return cluster_; }

 private:
  struct PendingPod {
    const PodSpec* spec = nullptr;
    Tick enqueued_at = 0;
  };

  // Per-host per-tick scratch, filled by the parallel demand pass and
  // consumed by the serial OOM pass and the parallel usage pass.
  struct TickScratch {
    Resources demand;
    bool had_pods = false;   // host was non-idle at the start of the tick
    bool violation = false;  // raw CPU demand exceeded capacity
  };

  void EnqueueArrivals();
  void SchedulePending();
  bool TryPreemptForLsr(const PodSpec& pod, const AppProfile& app);
  void CommitPlacement(const PodSpec& spec, const AppProfile& app, HostId host);
  void UpdateUsageAndPerformance();
  void HandleCompletions();
  void RecordRunningState();
  void FinalizeAtHorizon();
  void NoteWaitReason(const PodSpec& pod, WaitReason reason);
  void FinishPod(PodRuntime* pod, Tick finish_tick);

  // Updates the sim.* gauges; called once per tick, serially, when
  // config_.metrics is set (the streaming series recorder, if any, samples
  // them right after).
  void SampleMetrics();

  // Feeds the host-pressure monitor; called once per tick, serially, when
  // config_.pressure is set.
  void SamplePressure();

  // O(1) membership maintenance for running_ via PodRuntime::running_index.
  void AddRunning(PodRuntime* pod);
  void RemoveFromRunning(PodRuntime* pod);

  // Runs fn(i) for i in [0, n): on the pool when configured, else inline.
  void ParallelOverN(size_t n, const std::function<void(size_t)>& fn);

  const Workload& workload_;
  SimConfig config_;
  PlacementPolicy& policy_;
  PsiModel psi_model_;
  ClusterState cluster_;
  Rng rng_;
  std::unique_ptr<ThreadPool> pool_;

  Tick now_ = 0;
  size_t next_arrival_ = 0;
  // Pending queues by scheduling priority (index = priority, 3 highest).
  std::deque<PendingPod> pending_[4];
  std::vector<PodRuntime*> running_;  // all currently running pods
  std::vector<TickScratch> tick_scratch_;
  std::vector<HostId> oom_hosts_;  // scratch: hosts needing OOM handling

  // Final wait reason per pod id (kNone if the pod never waited).
  std::vector<WaitSample> wait_by_pod_;
  SimResult result_;
  bool ran_ = false;

  // Cached observability sinks, resolved once from config_.metrics (all
  // null when metrics are off — each use is a single branch).
  struct SimMetrics {
    obs::Histogram* tick_timer = nullptr;
    obs::Gauge* cpu_util = nullptr;
    obs::Gauge* mem_util = nullptr;
    obs::Gauge* frac_nonidle = nullptr;
    obs::Gauge* pending = nullptr;
    obs::Gauge* running = nullptr;
    obs::Gauge* scheduled = nullptr;
    obs::Gauge* oom_kills = nullptr;
    obs::Gauge* preemptions = nullptr;
    obs::Gauge* violations = nullptr;
  };
  SimMetrics sim_metrics_;
};

}  // namespace optum

#endif  // OPTUM_SRC_SIM_SIMULATOR_H_
