// Cluster state: hosts, running pods, and the read view schedulers consume.
#ifndef OPTUM_SRC_SIM_CLUSTER_H_
#define OPTUM_SRC_SIM_CLUSTER_H_

#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/stats/descriptive.h"
#include "src/stats/rng.h"
#include "src/trace/app_model.h"

namespace optum {

// Runtime state of one scheduled pod. Owned by ClusterState; schedulers see
// const pointers only.
struct PodRuntime {
  PodSpec spec;
  const AppProfile* app = nullptr;

  HostId host = kInvalidHostId;
  Tick scheduled_at = -1;
  bool finished = false;

  // Instantaneous state (updated every tick by the simulator).
  double cpu_usage = 0.0;   // actual, after host capacity scaling
  double cpu_demand = 0.0;  // raw demand before scaling
  double mem_usage = 0.0;
  double qps = 0.0;
  double psi60 = 0.0;
  double psi300 = 0.0;

  // Aggregates over the pod lifetime.
  double max_psi = 0.0;
  double max_cpu_usage = 0.0;
  double max_mem_usage = 0.0;
  double progress = 0.0;  // BE work completed, in idle-host ticks

  // Bounded reservoir of CPU usage samples for percentile queries
  // (Resource Central's p99 predictor).
  std::vector<double> cpu_samples;
  OnlineStats cpu_stats;

  // Per-pod deterministic noise stream.
  Rng noise{1};
  // Separate stream for reservoir slot selection, so RecordCpuSample is
  // independent of host/pod iteration order (parallel-tick determinism)
  // and never perturbs the demand-noise stream.
  Rng reservoir_rng{1};

  // Position in the simulator's running-pod list; maintained by the
  // simulator for O(1) swap-removal.
  size_t running_index = static_cast<size_t>(-1);

  // Percentile of observed CPU usage; falls back to current usage when no
  // samples have been collected yet. Cached per (q, sample count): the
  // reservoir is queried by schedulers far more often than it changes.
  double CpuUsagePercentile(double q) const;

  mutable double percentile_cache_ = 0.0;
  mutable double percentile_cache_q_ = -1.0;
  mutable int64_t percentile_cache_count_ = -1;

  void RecordCpuSample(double value, Rng& slot_rng);
};

// Pod count for one application on one host, with the SLO class of the
// first-seen pod (matches what interference weighting needs).
struct HostAppCount {
  AppId app = kInvalidAppId;
  SloClass slo = SloClass::kUnknown;
  int count = 0;
};

// One physical host.
struct Host {
  HostId id = kInvalidHostId;
  Resources capacity = kUnitResources;

  // Pods in scheduling order (Optum's pairwise predictor consumes this
  // order, paper §4.3.2).
  std::vector<PodRuntime*> pods;

  // Monotone counter bumped on every pod placement/removal. Consumers that
  // cache per-host derived state (e.g. the incremental host-scoring cache)
  // validate against it instead of rescanning `pods`.
  uint64_t change_epoch = 0;

  // Per-application pod counts, kept sorted by AppId and maintained
  // incrementally on place/remove. Interference prediction iterates this
  // instead of rebuilding a flat map per candidate.
  std::vector<HostAppCount> app_counts;

  // Resident pod counts by SLO class, maintained incrementally alongside
  // app_counts. The pressure sweep reads this for every host every sampled
  // tick, so it must be a plain load, not a histogram walk.
  int32_t slo_pods[kNumSloClasses] = {};

  // Evictable best-effort mass: sum of CPU requests and count of BE pods,
  // maintained incrementally so LSR preemption never scans pod lists.
  double be_request_cpu = 0.0;
  int be_pod_count = 0;

  // Cached aggregates, maintained incrementally on place/remove and refreshed
  // each tick for usage.
  Resources request_sum;
  Resources limit_sum;
  Resources demand;  // raw demand this tick (can exceed capacity)
  Resources usage;   // actual usage (CPU capped at capacity)

  // Rolling window of host CPU usage (fraction of capacity) for N-sigma,
  // with incremental sums so HistoryStats is O(1).
  std::vector<double> cpu_history;
  size_t history_next = 0;
  size_t history_count = 0;
  double history_sum = 0.0;
  double history_sum_sq = 0.0;

  void PushHistory(double cpu_util, size_t window);
  // Mean and population stddev over the recorded window.
  void HistoryStats(double* mean, double* stddev) const;

  double CpuDemandRatio() const { return capacity.cpu > 0 ? demand.cpu / capacity.cpu : 0.0; }
  double MemRatio() const { return capacity.mem > 0 ? demand.mem / capacity.mem : 0.0; }
  bool IsIdle() const { return pods.empty(); }

  // True when the host runs at least one pod with an explicit SLO
  // (BE/LS/LSR). Hosts carrying only system daemons count as idle for the
  // utilization metric (the paper's characterization focuses on pods with
  // explicit SLO requirements, §2.2).
  bool HasSloWorkload() const;
};

// Resident pod counts by SLO class — a copy of the incrementally maintained
// Host::slo_pods array (O(1), no histogram walk). The pressure sensor's host
// loop uses this to fill HostPressureInput.
void CountPodsBySlo(const Host& host, int32_t out[kNumSloClasses]);

// Anti-affinity check: true when placing `pod` on `host` would not exceed
// the pod's same-application per-host limit. Every scheduler (and the
// simulator's preemption path) honors this — affinity requirements are part
// of the unified request (paper §2.1).
bool AffinityAllows(const PodSpec& pod, const Host& host);

// Mutable cluster state; the simulator owns it, schedulers receive a const
// reference.
class ClusterState {
 public:
  ClusterState(int num_hosts, Resources capacity, size_t history_window);

  size_t num_hosts() const { return hosts_.size(); }
  const Host& host(HostId h) const { return hosts_[static_cast<size_t>(h)]; }
  Host& mutable_host(HostId h) { return hosts_[static_cast<size_t>(h)]; }
  std::span<const Host> hosts() const { return hosts_; }

  Tick now() const { return now_; }
  void set_now(Tick t) { now_ = t; }

  // Places a pod; the caller guarantees `host` is valid. Returns the new
  // runtime record.
  PodRuntime* Place(const PodSpec& spec, const AppProfile* app, HostId host, Tick at);

  // Removes a pod from its host (on completion, preemption, or OOM kill).
  void Remove(PodRuntime* pod);

  size_t num_running_pods() const { return num_running_; }
  size_t history_window() const { return history_window_; }

  // Hosts currently running at least one BE pod (arbitrary order); LSR
  // preemption scans only these.
  std::span<const HostId> hosts_with_be() const { return hosts_with_be_; }

 private:
  std::vector<Host> hosts_;
  // Deque keeps PodRuntime addresses stable across growth.
  std::deque<PodRuntime> pods_;
  std::vector<PodRuntime*> free_list_;
  // Dense index of hosts with be_pod_count > 0, plus each host's position in
  // it (-1 when absent) for O(1) swap-removal.
  std::vector<HostId> hosts_with_be_;
  std::vector<int32_t> be_index_pos_;
  size_t num_running_ = 0;
  size_t history_window_;
  Tick now_ = 0;
};

}  // namespace optum

#endif  // OPTUM_SRC_SIM_CLUSTER_H_
