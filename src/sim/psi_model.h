// Ground-truth interference model of the simulated hosts.
//
// The paper treats PSI (Pressure Stall Information) as the performance proxy
// for LS pods (§3.3.2) and completion-time inflation as the proxy for BE
// pods (§3.3.3), and reports the correlation structure in Fig. 13-16:
//   * CPU PSI correlates strongly with host CPU utilization and pod CPU
//     utilization, and positively with QPS;
//   * memory PSI is largely uncorrelated with response time;
//   * BE completion time correlates with node CPU (r>0.5 for 75% of apps)
//     and node memory utilization (r>0.25 for 50% of apps).
// The functions below generate exactly that structure, so profilers trained
// on simulator output face the same learning problem the paper's do.
#ifndef OPTUM_SRC_SIM_PSI_MODEL_H_
#define OPTUM_SRC_SIM_PSI_MODEL_H_

#include "src/stats/rng.h"
#include "src/trace/app_model.h"

namespace optum {

struct PsiModelParams {
  // Host CPU demand ratio at which contention begins to build.
  double cpu_knee = 0.55;
  // Host memory ratio at which memory pressure begins.
  double mem_knee = 0.85;
  // Observation noise on PSI samples.
  double psi_noise = 0.008;
};

class PsiModel {
 public:
  explicit PsiModel(PsiModelParams params = {}) : params_(params) {}

  // Normalized CPU contention in [0, inf): 0 below the knee, then rising
  // linearly with the host demand ratio (demand may exceed capacity).
  double CpuContention(double host_cpu_demand_ratio) const;

  // Memory contention in [0, 1].
  double MemContention(double host_mem_ratio) const;

  // "Some" CPU PSI over a 60 s window for an LS pod.
  //   pod_util: pod cpu usage / pod cpu request (its own busyness)
  //   qps_fraction: current QPS relative to the app peak, in [0, 1]
  double CpuPsi60(const AppProfile& app, double host_cpu_demand_ratio, double pod_util,
                  double qps_fraction, Rng& noise) const;

  // The 10 s window is a noisier view of the same pressure; 300 s is an
  // exponentially smoothed one (caller passes the previous smoothed value).
  double CpuPsi10(double psi60, Rng& noise) const;
  double CpuPsi300(double previous_psi300, double psi60) const;

  // Memory PSI ("some"/"full" 60 s) — small and only driven by memory.
  double MemPsiSome60(double host_mem_ratio, Rng& noise) const;
  double MemPsiFull60(double mem_psi_some) const;

  // Response time of an LS pod. `rt_scale` is the pod's persistent
  // dependency-chain multiplier, so that RT is an unreliable per-pod
  // performance indicator across pods (Fig. 12a: only ~40% of apps have RT
  // CoV < 1) while still tracking PSI within one pod (Fig. 13).
  double ResponseTime(const AppProfile& app, double psi60, double rt_scale,
                      Rng& noise) const;

  // Progress rate multiplier for BE pods in (0, 1]: 1 on an idle host,
  // shrinking as CPU and memory contention rise. Completion time is
  // work / mean-rate, which yields Fig. 16's correlations.
  double BeProgressRate(const AppProfile& app, double host_cpu_demand_ratio,
                        double host_mem_ratio) const;

  const PsiModelParams& params() const { return params_; }

 private:
  PsiModelParams params_;
};

}  // namespace optum

#endif  // OPTUM_SRC_SIM_PSI_MODEL_H_
