#include "src/sim/cluster.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace optum {

namespace {
// Reservoir size for per-pod CPU percentile queries.
constexpr size_t kCpuReservoir = 128;
}  // namespace

double PodRuntime::CpuUsagePercentile(double q) const {
  if (cpu_samples.empty()) {
    return cpu_usage;
  }
  if (percentile_cache_q_ == q && percentile_cache_count_ == cpu_stats.count()) {
    return percentile_cache_;
  }
  percentile_cache_ = Percentile(cpu_samples, q);
  percentile_cache_q_ = q;
  percentile_cache_count_ = cpu_stats.count();
  return percentile_cache_;
}

void PodRuntime::RecordCpuSample(double value, Rng& slot_rng) {
  cpu_stats.Add(value);
  if (cpu_samples.size() < kCpuReservoir) {
    cpu_samples.push_back(value);
    return;
  }
  // Vitter's Algorithm R keeps a uniform sample of the whole stream.
  const uint64_t seen = static_cast<uint64_t>(cpu_stats.count());
  const uint64_t slot = slot_rng.NextBelow(seen);
  if (slot < kCpuReservoir) {
    cpu_samples[slot] = value;
  }
}

void Host::PushHistory(double cpu_util, size_t window) {
  if (cpu_history.size() < window) {
    cpu_history.resize(window, 0.0);
  }
  if (history_count == window) {
    const double evicted = cpu_history[history_next];
    history_sum -= evicted;
    history_sum_sq -= evicted * evicted;
  } else {
    ++history_count;
  }
  cpu_history[history_next] = cpu_util;
  history_sum += cpu_util;
  history_sum_sq += cpu_util * cpu_util;
  history_next = (history_next + 1) % window;
}

void Host::HistoryStats(double* mean, double* stddev) const {
  if (history_count == 0) {
    *mean = 0.0;
    *stddev = 0.0;
    return;
  }
  const double n = static_cast<double>(history_count);
  const double m = history_sum / n;
  // Incremental sums can drift slightly negative near zero variance.
  const double var = std::max(0.0, history_sum_sq / n - m * m);
  *mean = m;
  *stddev = std::sqrt(var);
}

bool Host::HasSloWorkload() const {
  for (const PodRuntime* pod : pods) {
    const SloClass slo = pod->spec.slo;
    if (slo == SloClass::kBe || slo == SloClass::kLs || slo == SloClass::kLsr) {
      return true;
    }
  }
  return false;
}

void CountPodsBySlo(const Host& host, int32_t out[kNumSloClasses]) {
  for (int c = 0; c < kNumSloClasses; ++c) {
    out[c] = host.slo_pods[c];
  }
}

bool AffinityAllows(const PodSpec& pod, const Host& host) {
  if (pod.max_pods_per_host <= 0) {
    return true;
  }
  // Host::app_counts is sorted by AppId, so the same-app count is a binary
  // search away instead of a pod-list scan.
  const auto it = std::lower_bound(
      host.app_counts.begin(), host.app_counts.end(), pod.app,
      [](const HostAppCount& c, AppId a) { return c.app < a; });
  return it == host.app_counts.end() || it->app != pod.app ||
         it->count < pod.max_pods_per_host;
}

ClusterState::ClusterState(int num_hosts, Resources capacity, size_t history_window)
    : history_window_(history_window) {
  OPTUM_CHECK_GT(num_hosts, 0);
  hosts_.resize(static_cast<size_t>(num_hosts));
  be_index_pos_.assign(static_cast<size_t>(num_hosts), -1);
  for (int h = 0; h < num_hosts; ++h) {
    hosts_[static_cast<size_t>(h)].id = h;
    hosts_[static_cast<size_t>(h)].capacity = capacity;
  }
}

namespace {

// Insert-or-increment into the AppId-sorted per-host count list.
void BumpAppCount(std::vector<HostAppCount>& counts, AppId app, SloClass slo) {
  auto it = std::lower_bound(
      counts.begin(), counts.end(), app,
      [](const HostAppCount& c, AppId a) { return c.app < a; });
  if (it != counts.end() && it->app == app) {
    ++it->count;
    return;
  }
  counts.insert(it, HostAppCount{app, slo, 1});
}

void DropAppCount(std::vector<HostAppCount>& counts, AppId app) {
  auto it = std::lower_bound(
      counts.begin(), counts.end(), app,
      [](const HostAppCount& c, AppId a) { return c.app < a; });
  OPTUM_CHECK(it != counts.end() && it->app == app);
  if (--it->count == 0) {
    counts.erase(it);
  }
}

}  // namespace

PodRuntime* ClusterState::Place(const PodSpec& spec, const AppProfile* app, HostId host,
                                Tick at) {
  OPTUM_CHECK(host >= 0 && static_cast<size_t>(host) < hosts_.size());
  PodRuntime* pod;
  if (!free_list_.empty()) {
    pod = free_list_.back();
    free_list_.pop_back();
    *pod = PodRuntime{};
  } else {
    pods_.emplace_back();
    pod = &pods_.back();
  }
  pod->spec = spec;
  pod->app = app;
  pod->host = host;
  pod->scheduled_at = at;
  pod->noise = Rng(0x9e3779b9u ^ static_cast<uint64_t>(spec.id) * 0x2545f4914f6cdd1dULL);
  pod->reservoir_rng =
      Rng(0xda3e39cb94b95bdbULL ^ static_cast<uint64_t>(spec.id) * 0x9e3779b97f4a7c15ULL);

  Host& h = mutable_host(host);
  h.pods.push_back(pod);
  h.request_sum += spec.request;
  h.limit_sum += spec.limit;
  ++h.change_epoch;
  BumpAppCount(h.app_counts, spec.app, spec.slo);
  ++h.slo_pods[static_cast<size_t>(spec.slo)];
  if (spec.slo == SloClass::kBe) {
    h.be_request_cpu += spec.request.cpu;
    if (++h.be_pod_count == 1) {
      be_index_pos_[static_cast<size_t>(host)] =
          static_cast<int32_t>(hosts_with_be_.size());
      hosts_with_be_.push_back(host);
    }
  }
  ++num_running_;
  return pod;
}

void ClusterState::Remove(PodRuntime* pod) {
  OPTUM_CHECK(pod != nullptr && pod->host != kInvalidHostId);
  Host& h = mutable_host(pod->host);
  auto it = std::find(h.pods.begin(), h.pods.end(), pod);
  OPTUM_CHECK(it != h.pods.end());
  h.pods.erase(it);
  h.request_sum -= pod->spec.request;
  h.limit_sum -= pod->spec.limit;
  // Numerical hygiene: sums drift toward zero, never below.
  h.request_sum = h.request_sum.Max(kZeroResources);
  h.limit_sum = h.limit_sum.Max(kZeroResources);
  ++h.change_epoch;
  DropAppCount(h.app_counts, pod->spec.app);
  OPTUM_CHECK_GT(h.slo_pods[static_cast<size_t>(pod->spec.slo)], 0);
  --h.slo_pods[static_cast<size_t>(pod->spec.slo)];
  if (pod->spec.slo == SloClass::kBe) {
    h.be_request_cpu = std::max(0.0, h.be_request_cpu - pod->spec.request.cpu);
    if (--h.be_pod_count == 0) {
      h.be_request_cpu = 0.0;
      const int32_t pos = be_index_pos_[static_cast<size_t>(h.id)];
      const HostId moved = hosts_with_be_.back();
      hosts_with_be_[static_cast<size_t>(pos)] = moved;
      be_index_pos_[static_cast<size_t>(moved)] = pos;
      hosts_with_be_.pop_back();
      be_index_pos_[static_cast<size_t>(h.id)] = -1;
    }
  }
  pod->host = kInvalidHostId;
  --num_running_;
  free_list_.push_back(pod);
}

}  // namespace optum
