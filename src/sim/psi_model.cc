#include "src/sim/psi_model.h"

#include <algorithm>
#include <cmath>

namespace optum {
namespace {

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

double PsiModel::CpuContention(double host_cpu_demand_ratio) const {
  const double excess = host_cpu_demand_ratio - params_.cpu_knee;
  if (excess <= 0.0) {
    return 0.0;
  }
  return excess / (1.0 - params_.cpu_knee);
}

double PsiModel::MemContention(double host_mem_ratio) const {
  const double excess = host_mem_ratio - params_.mem_knee;
  if (excess <= 0.0) {
    return 0.0;
  }
  return Clamp01(excess / (1.0 - params_.mem_knee));
}

double PsiModel::CpuPsi60(const AppProfile& app, double host_cpu_demand_ratio,
                          double pod_util, double qps_fraction, Rng& noise) const {
  // Some scheduling pressure exists at any load (run-queue waits, cache
  // interference); it saturates sharply past the knee. A pod only stalls if
  // the host is loaded and the pod itself wants CPU; demanding pods at high
  // QPS stall more (Fig. 15).
  const double sub_knee = 0.1 * std::min(host_cpu_demand_ratio, 1.2);
  const double contention = CpuContention(host_cpu_demand_ratio);
  const double pod_factor = 0.3 + 0.7 * Clamp01(pod_util);
  const double qps_factor = 0.4 + 0.6 * Clamp01(qps_fraction);
  const double base =
      app.psi_sensitivity * (sub_knee + contention) * pod_factor * qps_factor;
  return Clamp01(base + noise.Gaussian(0.0, params_.psi_noise));
}

double PsiModel::CpuPsi10(double psi60, Rng& noise) const {
  return Clamp01(psi60 * std::max(0.0, noise.Gaussian(1.0, 0.25)) +
                 noise.Gaussian(0.0, params_.psi_noise));
}

double PsiModel::CpuPsi300(double previous_psi300, double psi60) const {
  // EMA with the ~300 s/60 s window ratio.
  constexpr double kAlpha = 0.2;
  return Clamp01(previous_psi300 * (1.0 - kAlpha) + psi60 * kAlpha);
}

double PsiModel::MemPsiSome60(double host_mem_ratio, Rng& noise) const {
  const double contention = MemContention(host_mem_ratio);
  return Clamp01(0.5 * contention + noise.Gaussian(0.0, 0.5 * params_.psi_noise));
}

double PsiModel::MemPsiFull60(double mem_psi_some) const { return 0.4 * mem_psi_some; }

double PsiModel::ResponseTime(const AppProfile& app, double psi60, double rt_scale,
                              Rng& noise) const {
  // Base service time scaled by stall pressure and the pod's persistent
  // dependency-chain multiplier (calls fan out to other services, §3.3.1),
  // plus light per-request jitter.
  const double base_ms = 5.0 + 2000.0 / std::max(1.0, app.qps_base);
  const double stall = 1.0 + 6.0 * psi60;
  const double jitter = noise.LogNormal(0.0, 0.1);
  return base_ms * stall * rt_scale * jitter;
}

double PsiModel::BeProgressRate(const AppProfile& app, double host_cpu_demand_ratio,
                                double host_mem_ratio) const {
  const double cpu_c = CpuContention(host_cpu_demand_ratio);
  const double mem_c = MemContention(host_mem_ratio);
  // Mild sub-knee slowdown (cache/scheduler interference grows with load
  // well before saturation) plus the saturating contention terms.
  const double pressure =
      0.04 * std::min(1.5, host_cpu_demand_ratio) + 0.7 * cpu_c + 0.3 * mem_c;
  return 1.0 / (1.0 + app.slowdown_sensitivity * pressure);
}

}  // namespace optum
