// Bagged ensemble of regression trees with per-tree feature subsampling.
// ForestParams lives in model_params.h so RegressorSpec can embed it.
#ifndef OPTUM_SRC_ML_RANDOM_FOREST_H_
#define OPTUM_SRC_ML_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "src/ml/compiled_forest.h"
#include "src/ml/decision_tree.h"
#include "src/ml/model_params.h"
#include "src/ml/regressor.h"
#include "src/stats/rng.h"

namespace optum::ml {

class RandomForestRegressor : public Regressor {
 public:
  explicit RandomForestRegressor(ForestParams params = {}, uint64_t seed = 1);

  void Fit(const Dataset& data) override;

  // Row-at-a-time pointer-tree descent. Kept on the original node layout so
  // it doubles as the reference (and benchmark baseline) the compiled
  // engine's bit-identity is verified against. When
  // ForestParams::quantized_inference is set, this delegates to the
  // quantized compiled engine instead, so Predict and PredictBatch remain
  // mutually bit-identical (only tolerance-close to exact mode).
  double Predict(std::span<const double> features) const override;

  // Served by the compiled SoA engine built at the end of Fit();
  // bit-identical to looping Predict but several times faster per row
  // (interleaved multi-row descent, see CompiledForest).
  void PredictBatch(std::span<const double> rows, size_t stride,
                    std::span<double> out) const override;

  std::string name() const override { return "RF"; }

  size_t num_trees() const { return trees_.size(); }
  const DecisionTreeRegressor& tree(size_t i) const { return *trees_[i]; }
  const CompiledForest& compiled() const { return compiled_; }

 private:
  ForestParams params_;
  Rng rng_;
  std::vector<std::unique_ptr<DecisionTreeRegressor>> trees_;
  CompiledForest compiled_;
};

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_RANDOM_FOREST_H_
