// Bagged ensemble of regression trees with per-tree feature subsampling.
#ifndef OPTUM_SRC_ML_RANDOM_FOREST_H_
#define OPTUM_SRC_ML_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "src/ml/decision_tree.h"
#include "src/ml/regressor.h"
#include "src/stats/rng.h"

namespace optum::ml {

struct ForestParams {
  size_t num_trees = 30;
  TreeParams tree;
  // When true each tree trains on a bootstrap resample; otherwise all trees
  // see the full data (pure feature-subsampled ensemble).
  bool bootstrap = true;
};

class RandomForestRegressor : public Regressor {
 public:
  explicit RandomForestRegressor(ForestParams params = {}, uint64_t seed = 1);

  void Fit(const Dataset& data) override;
  double Predict(std::span<const double> features) const override;
  std::string name() const override { return "RF"; }

  size_t num_trees() const { return trees_.size(); }

 private:
  ForestParams params_;
  Rng rng_;
  std::vector<std::unique_ptr<DecisionTreeRegressor>> trees_;
};

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_RANDOM_FOREST_H_
