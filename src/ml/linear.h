// Ordinary least squares and ridge regression via normal equations.
#ifndef OPTUM_SRC_ML_LINEAR_H_
#define OPTUM_SRC_ML_LINEAR_H_

#include <vector>

#include "src/ml/regressor.h"

namespace optum::ml {

// Ridge regression; alpha == 0 reduces to ordinary least squares (with a
// tiny numerical jitter added only if the Gram matrix is singular). The
// intercept column is never penalized.
class RidgeRegressor : public Regressor {
 public:
  explicit RidgeRegressor(double alpha = 1.0) : alpha_(alpha) {}

  void Fit(const Dataset& data) override;
  double Predict(std::span<const double> features) const override;
  std::string name() const override { return alpha_ == 0.0 ? "LR" : "Ridge"; }

  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  double alpha_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
};

// Ordinary least squares is ridge with alpha = 0.
class LinearRegressor : public RidgeRegressor {
 public:
  LinearRegressor() : RidgeRegressor(0.0) {}
};

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_LINEAR_H_
