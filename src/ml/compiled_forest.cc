#include "src/ml/compiled_forest.h"

#include <algorithm>
#include <array>

#include "src/common/check.h"
#include "src/ml/random_forest.h"

namespace optum::ml {

namespace {

// Rows evaluated per inner block of PredictBatch: small enough that the
// rows and per-row accumulators stay in L1 while one tree's nodes stream
// through, large enough to amortize the per-tree loop overhead.
constexpr size_t kRowBlock = 64;

}  // namespace

CompiledForest CompiledForest::Compile(const RandomForestRegressor& forest) {
  OPTUM_CHECK_GT(forest.num_trees(), 0u);
  CompiledForest out;
  size_t total_nodes = 0;
  for (size_t t = 0; t < forest.num_trees(); ++t) {
    total_nodes += forest.tree(t).node_count();
  }
  out.feature_.reserve(total_nodes);
  out.split_.reserve(total_nodes);
  out.right_.reserve(total_nodes);
  out.roots_.reserve(forest.num_trees());

  for (size_t t = 0; t < forest.num_trees(); ++t) {
    const std::span<const DecisionTreeRegressor::Node> nodes = forest.tree(t).nodes();
    OPTUM_CHECK(!nodes.empty());
    const int32_t base = static_cast<int32_t>(out.feature_.size());
    out.roots_.push_back(base);
    // Trees are already stored in preorder (left child == own index + 1), so
    // flattening is a relabeled copy; the invariant is asserted below because
    // descent relies on it.
    for (size_t i = 0; i < nodes.size(); ++i) {
      const DecisionTreeRegressor::Node& n = nodes[i];
      if (n.feature < 0) {
        out.feature_.push_back(-1);
        out.split_.push_back(n.value);
        out.right_.push_back(-1);
        continue;
      }
      OPTUM_CHECK_EQ(static_cast<size_t>(n.left), i + 1);
      OPTUM_CHECK_GT(n.right, n.left);
      OPTUM_CHECK_LT(static_cast<size_t>(n.right), nodes.size());
      out.feature_.push_back(n.feature);
      out.split_.push_back(n.threshold);
      out.right_.push_back(base + n.right);
    }
  }
  return out;
}

void CompiledForest::Fit(const Dataset& data) {
  (void)data;
  OPTUM_CHECK_MSG(false,
                  "CompiledForest is inference-only; Fit a RandomForestRegressor "
                  "and Compile() it");
}

double CompiledForest::DescendTree(int32_t root, const double* row) const {
  int32_t node = root;
  int32_t f = feature_[static_cast<size_t>(node)];
  while (f >= 0) {
    // Identical comparison to the pointer tree: NaN features compare false
    // and take the right branch.
    const bool go_left = row[f] <= split_[static_cast<size_t>(node)];
    node = go_left ? node + 1 : right_[static_cast<size_t>(node)];
    f = feature_[static_cast<size_t>(node)];
  }
  return split_[static_cast<size_t>(node)];
}

double CompiledForest::Predict(std::span<const double> features) const {
  OPTUM_CHECK(compiled());
  double acc = 0.0;
  for (const int32_t root : roots_) {
    acc += DescendTree(root, features.data());
  }
  return acc / static_cast<double>(roots_.size());
}

void CompiledForest::PredictBatch(std::span<const double> rows, size_t stride,
                                  std::span<double> out) const {
  OPTUM_CHECK(compiled());
  OPTUM_CHECK_GT(stride, 0u);
  OPTUM_CHECK_GE(rows.size(), out.size() * stride);
  std::array<double, kRowBlock> acc;
  for (size_t begin = 0; begin < out.size(); begin += kRowBlock) {
    const size_t n = std::min(kRowBlock, out.size() - begin);
    acc.fill(0.0);
    // Tree-outer, row-inner: one tree's nodes stay hot across the whole
    // block. Per row the accumulation still runs in tree order, so the sum
    // (and thus the result) is bit-identical to row-at-a-time Predict.
    for (const int32_t root : roots_) {
      const double* row = rows.data() + begin * stride;
      for (size_t r = 0; r < n; ++r, row += stride) {
        acc[r] += DescendTree(root, row);
      }
    }
    for (size_t r = 0; r < n; ++r) {
      out[begin + r] = acc[r] / static_cast<double>(roots_.size());
    }
  }
}

}  // namespace optum::ml
