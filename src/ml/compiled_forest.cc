#include "src/ml/compiled_forest.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/ml/random_forest.h"

namespace optum::ml {

namespace {

// Rows evaluated per inner block of PredictBatch: small enough that the
// rows and per-row accumulators stay in L1 while one tree's nodes stream
// through, large enough to amortize the per-tree loop overhead.
constexpr size_t kRowBlock = 64;

constexpr double kLeafThreshold = std::numeric_limits<double>::quiet_NaN();

}  // namespace

CompiledForest CompiledForest::Compile(const RandomForestRegressor& forest) {
  return Compile(forest, Options{});
}

CompiledForest CompiledForest::Compile(const RandomForestRegressor& forest,
                                       const Options& options) {
  OPTUM_CHECK_GT(forest.num_trees(), 0u);
  CompiledForest out;
  out.quantized_ = options.quantized_thresholds;
  size_t total_nodes = 0;
  size_t max_tree_nodes = 0;
  for (size_t t = 0; t < forest.num_trees(); ++t) {
    total_nodes += forest.tree(t).node_count();
    max_tree_nodes = std::max(max_tree_nodes, forest.tree(t).node_count());
  }
  out.feature_.reserve(total_nodes);
  out.value_.reserve(total_nodes);
  out.roots_.reserve(forest.num_trees());
  const bool narrow =
      out.quantized_ && !options.force_wide_links &&
      max_tree_nodes <= static_cast<size_t>(std::numeric_limits<uint16_t>::max());
  if (out.quantized_) {
    out.qthresh_.reserve(total_nodes);
  } else {
    out.thresh_.reserve(total_nodes);
  }
  if (narrow) {
    out.right16_.reserve(total_nodes);
  } else {
    out.right_.reserve(total_nodes);
  }

  for (size_t t = 0; t < forest.num_trees(); ++t) {
    const std::span<const DecisionTreeRegressor::Node> nodes = forest.tree(t).nodes();
    OPTUM_CHECK(!nodes.empty());
    const int32_t base = static_cast<int32_t>(out.feature_.size());
    out.roots_.push_back(base);
    // Trees are already stored in preorder (left child == own index + 1), so
    // flattening is a relabeled copy; the invariant is asserted below because
    // descent relies on it.
    for (size_t i = 0; i < nodes.size(); ++i) {
      const DecisionTreeRegressor::Node& n = nodes[i];
      const bool leaf = n.feature < 0;
      if (!leaf) {
        OPTUM_CHECK_EQ(static_cast<size_t>(n.left), i + 1);
        OPTUM_CHECK_GT(n.right, n.left);
        OPTUM_CHECK_LT(static_cast<size_t>(n.right), nodes.size());
      }
      // Leaves self-loop: feature 0, NaN threshold (compares false, so the
      // descent step goes right), right link = own index. See file comment.
      out.feature_.push_back(leaf ? 0 : n.feature);
      out.value_.push_back(leaf ? n.value : 0.0);
      const double threshold = leaf ? kLeafThreshold : n.threshold;
      if (out.quantized_) {
        out.qthresh_.push_back(static_cast<float>(threshold));
      } else {
        out.thresh_.push_back(threshold);
      }
      const int32_t right_rel = leaf ? static_cast<int32_t>(i) : n.right;
      if (narrow) {
        out.right16_.push_back(static_cast<uint16_t>(right_rel));
      } else {
        out.right_.push_back(base + right_rel);
      }
    }
  }
  return out;
}

void CompiledForest::Fit(const Dataset& data) {
  (void)data;
  OPTUM_CHECK_MSG(false,
                  "CompiledForest is inference-only; Fit a RandomForestRegressor "
                  "and Compile() it");
}

int32_t CompiledForest::DescendExact(int32_t root, const double* row) const {
  int32_t node = root;
  for (;;) {
    const int32_t r = right_[static_cast<size_t>(node)];
    if (r == node) {
      return node;  // leaf (self-loop)
    }
    // Identical comparison to the pointer tree: NaN features compare false
    // and take the right branch.
    const bool go_left =
        row[feature_[static_cast<size_t>(node)]] <= thresh_[static_cast<size_t>(node)];
    node = go_left ? node + 1 : r;
  }
}

int32_t CompiledForest::DescendQuantized(int32_t root, const double* row) const {
  // The row value stays double and the float32 threshold is promoted (an
  // exact conversion), so descent differs from exact mode only where the
  // row lies between a threshold and its float rounding — and never hits
  // the UB of narrowing an out-of-float-range feature.
  int32_t node = root;
  if (narrow_links()) {
    for (;;) {
      const int32_t r = root + right16_[static_cast<size_t>(node)];
      if (r == node) {
        return node;
      }
      const bool go_left =
          row[feature_[static_cast<size_t>(node)]] <=
          static_cast<double>(qthresh_[static_cast<size_t>(node)]);
      node = go_left ? node + 1 : r;
    }
  }
  for (;;) {
    const int32_t r = right_[static_cast<size_t>(node)];
    if (r == node) {
      return node;
    }
    const bool go_left = row[feature_[static_cast<size_t>(node)]] <=
                         static_cast<double>(qthresh_[static_cast<size_t>(node)]);
    node = go_left ? node + 1 : r;
  }
}

// The interleaved kernels below all have the same shape: kInterleave lanes
// descend one tree in lockstep, one level per iteration. Per level each
// lane issues independent feature/threshold/right loads (the gather loop),
// then a fixed-trip compare/select loop the compiler can vectorize picks
// each lane's next node. Lanes at a leaf self-loop (NaN threshold compares
// false, right link points at the node itself), so no per-lane exit
// branching is needed; the level loop ends when no lane moved. Descending
// an already-finished lane costs only re-loads of its (L1-hot) leaf entry.
template <size_t W>
void CompiledForest::DescendExactBlock(int32_t root, const double* rows,
                                       size_t stride, double* acc) const {
  const int32_t* const feat = feature_.data();
  const double* const th = thresh_.data();
  const int32_t* const rt = right_.data();
  int32_t node[W];
  for (size_t l = 0; l < W; ++l) {
    node[l] = root;
  }
  for (int32_t moved = 1; moved != 0;) {
    double x[W];
    double t[W];
    int32_t right_next[W];
    for (size_t l = 0; l < W; ++l) {
      const int32_t n = node[l];
      x[l] = rows[l * stride + static_cast<size_t>(feat[n])];
      t[l] = th[n];
      right_next[l] = rt[n];
    }
    moved = 0;
    for (size_t l = 0; l < W; ++l) {
      // Mask select, not ?:, so the compiler cannot lower the data-dependent
      // pick into a branch — tree descent branches are ~coin flips, and one
      // mispredict costs more than a whole level of this loop.
      const int32_t take_left = -static_cast<int32_t>(x[l] <= t[l]);
      const int32_t next =
          ((node[l] + 1) & take_left) | (right_next[l] & ~take_left);
      moved |= next ^ node[l];
      node[l] = next;
    }
  }
  for (size_t l = 0; l < W; ++l) {
    acc[l] += value_[static_cast<size_t>(node[l])];
  }
}

template <size_t W>
void CompiledForest::DescendQuantizedBlock(int32_t root, const double* rows,
                                           size_t stride, double* acc) const {
  const int32_t* const feat = feature_.data();
  const float* const th = qthresh_.data();
  const uint16_t* const rt16 = right16_.empty() ? nullptr : right16_.data();
  const int32_t* const rt32 = right_.empty() ? nullptr : right_.data();
  int32_t node[W];
  for (size_t l = 0; l < W; ++l) {
    node[l] = root;
  }
  for (int32_t moved = 1; moved != 0;) {
    double x[W];
    double t[W];
    int32_t right_next[W];
    for (size_t l = 0; l < W; ++l) {
      const int32_t n = node[l];
      x[l] = rows[l * stride + static_cast<size_t>(feat[n])];
      t[l] = static_cast<double>(th[n]);  // exact promotion, see DescendQuantized
      right_next[l] = rt16 != nullptr ? root + rt16[n] : rt32[n];
    }
    moved = 0;
    for (size_t l = 0; l < W; ++l) {
      // Branchless mask select — see DescendExactBlock.
      const int32_t take_left = -static_cast<int32_t>(x[l] <= t[l]);
      const int32_t next =
          ((node[l] + 1) & take_left) | (right_next[l] & ~take_left);
      moved |= next ^ node[l];
      node[l] = next;
    }
  }
  for (size_t l = 0; l < W; ++l) {
    acc[l] += value_[static_cast<size_t>(node[l])];
  }
}

double CompiledForest::Predict(std::span<const double> features) const {
  OPTUM_CHECK(compiled());
  double acc = 0.0;
  for (const int32_t root : roots_) {
    acc += value_[static_cast<size_t>(quantized_
                                          ? DescendQuantized(root, features.data())
                                          : DescendExact(root, features.data()))];
  }
  return acc / static_cast<double>(roots_.size());
}

void CompiledForest::PredictBatch(std::span<const double> rows, size_t stride,
                                  std::span<double> out) const {
  OPTUM_CHECK(compiled());
  OPTUM_CHECK_GT(stride, 0u);
  OPTUM_CHECK_GE(rows.size(), out.size() * stride);
  std::array<double, kRowBlock> acc;
  for (size_t begin = 0; begin < out.size(); begin += kRowBlock) {
    const size_t n = std::min(kRowBlock, out.size() - begin);
    acc.fill(0.0);
    const double* const block = rows.data() + begin * stride;
    // Tree-outer, row-inner: one tree's nodes stay hot across the whole
    // block while groups of kInterleave rows descend it in lockstep. Per
    // row the accumulation still runs in tree order, so the sum (and thus
    // the result in exact mode) is bit-identical to row-at-a-time Predict.
    for (const int32_t root : roots_) {
      size_t r = 0;
      if (quantized_) {
        for (; r + kInterleave <= n; r += kInterleave) {
          DescendQuantizedBlock<kInterleave>(root, block + r * stride, stride,
                                             acc.data() + r);
        }
        if (r + kHalfInterleave <= n) {
          DescendQuantizedBlock<kHalfInterleave>(root, block + r * stride,
                                                 stride, acc.data() + r);
          r += kHalfInterleave;
        }
        for (; r < n; ++r) {
          acc[r] +=
              value_[static_cast<size_t>(DescendQuantized(root, block + r * stride))];
        }
      } else {
        for (; r + kInterleave <= n; r += kInterleave) {
          DescendExactBlock<kInterleave>(root, block + r * stride, stride,
                                         acc.data() + r);
        }
        if (r + kHalfInterleave <= n) {
          DescendExactBlock<kHalfInterleave>(root, block + r * stride, stride,
                                             acc.data() + r);
          r += kHalfInterleave;
        }
        for (; r < n; ++r) {
          acc[r] += value_[static_cast<size_t>(DescendExact(root, block + r * stride))];
        }
      }
    }
    for (size_t r = 0; r < n; ++r) {
      out[begin + r] = acc[r] / static_cast<double>(roots_.size());
    }
  }
}

}  // namespace optum::ml
