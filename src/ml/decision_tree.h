// CART-style regression tree with variance-reduction splits. Used standalone
// and as the base learner of RandomForestRegressor (the model the paper's
// Interference Profiler adopts, §4.2.1: "Optum adopts Random Forest as it
// can yield the highest accuracy"). TreeParams lives in model_params.h so
// RegressorSpec can embed it.
#ifndef OPTUM_SRC_ML_DECISION_TREE_H_
#define OPTUM_SRC_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "src/ml/model_params.h"
#include "src/ml/regressor.h"
#include "src/stats/rng.h"

namespace optum::ml {

class DecisionTreeRegressor : public Regressor {
 public:
  // Node storage, exposed so CompiledForest can flatten trained trees into
  // its SoA layout. Nodes are stored in preorder: an internal node's left
  // child is always the next node (left == own index + 1).
  struct Node {
    // Leaf iff feature < 0.
    int32_t feature = -1;
    double threshold = 0.0;
    double value = 0.0;  // leaf prediction (mean of targets)
    int32_t left = -1;
    int32_t right = -1;
  };

  explicit DecisionTreeRegressor(TreeParams params = {}, uint64_t seed = 1);

  void Fit(const Dataset& data) override;

  // Fit on a row subset of `data` (used by the forest for bootstraps without
  // copying feature rows).
  void FitOnIndices(const Dataset& data, std::vector<size_t> indices);

  double Predict(std::span<const double> features) const override;
  std::string name() const override { return "DecisionTree"; }

  size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }
  std::span<const Node> nodes() const { return nodes_; }

 private:
  int32_t Build(const Dataset& data, std::vector<size_t>& indices, size_t begin, size_t end,
                int depth);

  TreeParams params_;
  Rng rng_;
  std::vector<Node> nodes_;
  int depth_ = 0;
};

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_DECISION_TREE_H_
