// CART-style regression tree with variance-reduction splits. Used standalone
// and as the base learner of RandomForestRegressor (the model the paper's
// Interference Profiler adopts, §4.2.1: "Optum adopts Random Forest as it
// can yield the highest accuracy").
#ifndef OPTUM_SRC_ML_DECISION_TREE_H_
#define OPTUM_SRC_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "src/ml/regressor.h"
#include "src/stats/rng.h"

namespace optum::ml {

struct TreeParams {
  int max_depth = 12;
  size_t min_samples_leaf = 2;
  size_t min_samples_split = 4;
  // Number of candidate features examined per split; 0 = all features.
  size_t max_features = 0;
  // Candidate thresholds tried per feature (quantile grid); keeps training
  // O(n · candidates) per node instead of O(n log n) exhaustive scans.
  size_t num_thresholds = 16;
};

class DecisionTreeRegressor : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeParams params = {}, uint64_t seed = 1);

  void Fit(const Dataset& data) override;

  // Fit on a row subset of `data` (used by the forest for bootstraps without
  // copying feature rows).
  void FitOnIndices(const Dataset& data, std::vector<size_t> indices);

  double Predict(std::span<const double> features) const override;
  std::string name() const override { return "DecisionTree"; }

  size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }

 private:
  struct Node {
    // Leaf iff feature < 0.
    int32_t feature = -1;
    double threshold = 0.0;
    double value = 0.0;  // leaf prediction (mean of targets)
    int32_t left = -1;
    int32_t right = -1;
  };

  int32_t Build(const Dataset& data, std::vector<size_t>& indices, size_t begin, size_t end,
                int depth);

  TreeParams params_;
  Rng rng_;
  std::vector<Node> nodes_;
  int depth_ = 0;
};

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_DECISION_TREE_H_
