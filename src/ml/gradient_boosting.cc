#include "src/ml/gradient_boosting.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"
#include "src/stats/descriptive.h"

namespace optum::ml {

GradientBoostingRegressor::GradientBoostingRegressor(BoostingParams params, uint64_t seed)
    : params_(params), rng_(seed) {
  OPTUM_CHECK_GT(params_.num_rounds, 0u);
  OPTUM_CHECK(params_.subsample > 0.0 && params_.subsample <= 1.0);
}

void GradientBoostingRegressor::Fit(const Dataset& data) {
  OPTUM_CHECK(!data.empty());
  trees_.clear();
  base_prediction_ = Mean(data.targets());

  // Current ensemble prediction per training row, and a scratch block for
  // each new tree's batched predictions.
  std::vector<double> prediction(data.size(), base_prediction_);
  std::vector<double> tree_pred(data.size());

  for (size_t round = 0; round < params_.num_rounds; ++round) {
    // Least-squares boosting: fit the next tree to the residuals.
    Dataset residuals(data.num_features(), data.feature_names());
    for (size_t i = 0; i < data.size(); ++i) {
      residuals.Add(data.Features(i), data.Target(i) - prediction[i]);
    }
    auto tree = std::make_unique<DecisionTreeRegressor>(params_.tree, rng_.NextU64());
    if (params_.subsample < 1.0) {
      std::vector<size_t> rows;
      rows.reserve(data.size());
      for (size_t i = 0; i < data.size(); ++i) {
        if (rng_.Bernoulli(params_.subsample)) {
          rows.push_back(i);
        }
      }
      if (rows.empty()) {
        rows.push_back(rng_.NextBelow(data.size()));
      }
      tree->FitOnIndices(residuals, std::move(rows));
    } else {
      tree->Fit(residuals);
    }
    // Batched residual update: one PredictBatch over the training matrix
    // instead of a per-row Predict loop (see Regressor interface comment).
    tree->PredictBatch(data.flat_features(), data.num_features(), tree_pred);
    for (size_t i = 0; i < data.size(); ++i) {
      prediction[i] += params_.learning_rate * tree_pred[i];
    }
    trees_.push_back(std::move(tree));
  }
}

double GradientBoostingRegressor::Predict(std::span<const double> features) const {
  OPTUM_CHECK(!trees_.empty());
  double acc = base_prediction_;
  for (const auto& tree : trees_) {
    acc += params_.learning_rate * tree->Predict(features);
  }
  return acc;
}

void GradientBoostingRegressor::PredictBatch(std::span<const double> rows,
                                             size_t stride,
                                             std::span<double> out) const {
  OPTUM_CHECK(!trees_.empty());
  OPTUM_CHECK_GT(stride, 0u);
  OPTUM_CHECK_GE(rows.size(), out.size() * stride);
  std::fill(out.begin(), out.end(), base_prediction_);
  std::vector<double> tree_pred(out.size());
  for (const auto& tree : trees_) {
    tree->PredictBatch(rows, stride, tree_pred);
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += params_.learning_rate * tree_pred[i];
    }
  }
}

}  // namespace optum::ml
