// Compiled-forest inference engine: flattens a trained RandomForestRegressor
// into a contiguous structure-of-arrays node layout and evaluates blocks of
// rows with the node arrays hot in cache. Outputs are bit-identical to the
// pointer-tree forest (see DESIGN.md §10), so swapping it onto the scoring
// hot path cannot perturb placements, lane-sharded caches, or parallel
// determinism.
//
// Layout: all trees' nodes live in three parallel arrays, emitted per tree
// in preorder so an internal node's left child is the next node — descent
// only loads feature_[n] and split_[n] plus right_[n] when it goes right.
// Leaves are resolved into the same arrays: feature_[n] < 0 marks a leaf and
// split_[n] then holds the leaf value instead of a threshold.
#ifndef OPTUM_SRC_ML_COMPILED_FOREST_H_
#define OPTUM_SRC_ML_COMPILED_FOREST_H_

#include <cstdint>
#include <vector>

#include "src/ml/regressor.h"

namespace optum::ml {

class RandomForestRegressor;

class CompiledForest final : public Regressor {
 public:
  // Empty engine; Predict/PredictBatch require a Compile()d one.
  CompiledForest() = default;

  // Flattens a fitted forest. The compiled engine is self-contained: the
  // source forest may be destroyed afterwards.
  static CompiledForest Compile(const RandomForestRegressor& forest);

  // Inference-only engine: Fit always CHECK-fails. Train a
  // RandomForestRegressor and Compile() it instead.
  void Fit(const Dataset& data) override;

  double Predict(std::span<const double> features) const override;
  void PredictBatch(std::span<const double> rows, size_t stride,
                    std::span<double> out) const override;
  std::string name() const override { return "RF(compiled)"; }

  bool compiled() const { return !roots_.empty(); }
  size_t num_trees() const { return roots_.size(); }
  size_t num_nodes() const { return feature_.size(); }

 private:
  // Descends one tree from `root` for one row; returns the leaf value.
  double DescendTree(int32_t root, const double* row) const;

  // SoA node arrays across all trees (see file comment). For internal nodes
  // split_ is the threshold and the left child is the next node; for leaves
  // (feature_ < 0) split_ is the leaf value and right_ is unused.
  std::vector<int32_t> feature_;
  std::vector<double> split_;
  std::vector<int32_t> right_;
  std::vector<int32_t> roots_;  // root node index of each tree, in tree order
};

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_COMPILED_FOREST_H_
