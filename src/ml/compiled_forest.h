// Compiled-forest inference engine: flattens a trained RandomForestRegressor
// into contiguous structure-of-arrays node layouts and evaluates blocks of
// rows with the node arrays hot in cache. The exact (double) layout is
// bit-identical to the pointer-tree forest (see DESIGN.md §10), so swapping
// it onto the scoring hot path cannot perturb placements, lane-sharded
// caches, or parallel determinism. A second, quantized layout stores
// float32 thresholds (and 16-bit right-child links when every tree fits)
// for a ~40% smaller descent footprint at the cost of possible descent
// flips on threshold-straddling rows — selected via Options /
// ForestParams::quantized_inference and pinned by a tolerance test, never
// by bit-identity.
//
// Layout: all trees' nodes live in parallel arrays, emitted per tree in
// preorder so an internal node's left child is the next node. Leaves are
// made self-looping — feature 0, a NaN threshold (every comparison is
// false), and a right link pointing at the node itself — so the descent
// step `node = row[f] <= thresh ? node + 1 : right[node]` is a no-op at a
// leaf. That lets PredictBatch interleave the descents of kInterleave rows
// per tree with no per-lane leaf branching: lanes that reach their leaf
// simply idle in place while the others keep descending, the independent
// feature/threshold/right loads of all lanes overlap (the single-row
// load-to-load dependency chain no longer serializes the core), and the
// per-level compare/select across lanes is a fixed-trip-count loop the
// compiler can vectorize. Leaf values live in a separate array read once
// per (row, tree) after descent.
#ifndef OPTUM_SRC_ML_COMPILED_FOREST_H_
#define OPTUM_SRC_ML_COMPILED_FOREST_H_

#include <cstdint>
#include <vector>

#include "src/ml/regressor.h"

namespace optum::ml {

class RandomForestRegressor;

class CompiledForest final : public Regressor {
 public:
  struct Options {
    // Store thresholds as float32 and right-child links as tree-relative
    // uint16 (when every tree has < 65536 nodes). Descent compares
    // row[f] <= double(float(threshold)) — the promotion is exact, so a row
    // flips branches only when it lies between a threshold and that
    // threshold's float rounding; leaf values stay double and accumulate in
    // the same order, so the error of a flip is bounded by
    // (leaf spread) / num_trees per flipped tree.
    bool quantized_thresholds = false;
    // Testing escape hatch: keep 32-bit absolute links even when 16-bit
    // ones would fit, so the wide-link quantized kernel stays covered.
    bool force_wide_links = false;
  };

  // Empty engine; Predict/PredictBatch require a Compile()d one.
  CompiledForest() = default;

  // Flattens a fitted forest. The compiled engine is self-contained: the
  // source forest may be destroyed afterwards. The one-argument overload
  // compiles the default exact layout.
  static CompiledForest Compile(const RandomForestRegressor& forest);
  static CompiledForest Compile(const RandomForestRegressor& forest,
                                const Options& options);

  // Inference-only engine: Fit always CHECK-fails. Train a
  // RandomForestRegressor and Compile() it instead.
  void Fit(const Dataset& data) override;

  double Predict(std::span<const double> features) const override;
  void PredictBatch(std::span<const double> rows, size_t stride,
                    std::span<double> out) const override;
  std::string name() const override {
    return quantized_ ? "RF(compiled,q32)" : "RF(compiled)";
  }

  bool compiled() const { return !roots_.empty(); }
  bool quantized() const { return quantized_; }
  // True when the quantized layout uses 16-bit tree-relative links.
  bool narrow_links() const { return !right16_.empty(); }
  size_t num_trees() const { return roots_.size(); }
  size_t num_nodes() const { return feature_.size(); }

 private:
  // Rows interleaved per descent kernel call: enough independent
  // feature/threshold/right load chains to cover L2 latency, small enough
  // that the lane state stays in registers. Tails of kHalfInterleave rows
  // still get an interleaved descent before the scalar fallback.
  static constexpr size_t kInterleave = 16;
  static constexpr size_t kHalfInterleave = kInterleave / 2;

  // Scalar descent from `root` for one row; returns the leaf node index.
  int32_t DescendExact(int32_t root, const double* row) const;
  int32_t DescendQuantized(int32_t root, const double* row) const;

  // Interleaved descent of W rows (row i at rows + i * stride) down the
  // tree at `root`, accumulating each row's leaf value into acc[i].
  // Instantiated for kInterleave and kHalfInterleave in the .cc.
  template <size_t W>
  void DescendExactBlock(int32_t root, const double* rows, size_t stride,
                         double* acc) const;
  template <size_t W>
  void DescendQuantizedBlock(int32_t root, const double* rows, size_t stride,
                             double* acc) const;

  // SoA node arrays across all trees (see file comment). Internal node n:
  // feature_[n] >= 0 is the split feature, thresh_/qthresh_[n] the
  // threshold, left child n + 1, right child right_[n] (absolute) or
  // roots_[t] + right16_[n] (tree-relative). Leaf n: feature_[n] = 0,
  // threshold NaN, right link = n (self-loop), value_[n] the leaf value.
  std::vector<int32_t> feature_;
  std::vector<double> thresh_;    // exact mode only
  std::vector<float> qthresh_;    // quantized mode only
  std::vector<int32_t> right_;    // exact mode, and quantized wide-link mode
  std::vector<uint16_t> right16_; // quantized narrow-link mode only
  std::vector<double> value_;
  std::vector<int32_t> roots_;  // root node index of each tree, in tree order
  bool quantized_ = false;
};

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_COMPILED_FOREST_H_
