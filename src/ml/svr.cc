#include "src/ml/svr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.h"
#include "src/stats/descriptive.h"

namespace optum::ml {

LinearSvr::LinearSvr(SvrParams params, uint64_t seed) : params_(params), rng_(seed) {}

void LinearSvr::Fit(const Dataset& raw) {
  OPTUM_CHECK(!raw.empty());
  input_standardizer_ = raw.FitStandardizer();
  const Dataset data = raw.Standardized(input_standardizer_);

  target_mean_ = Mean(data.targets());
  const double sd = StdDev(data.targets());
  target_scale_ = sd > 1e-9 ? sd : 1.0;

  const size_t d = data.num_features();
  weights_.assign(d, 0.0);
  bias_ = 0.0;

  const double lambda = 1.0 / (params_.c * static_cast<double>(data.size()));
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0u);

  // Averaged SGD: per-epoch decaying step, tail-averaged iterates (the
  // epsilon-insensitive subgradient has constant magnitude, so the raw
  // final iterate oscillates around the optimum).
  std::vector<double> avg_weights(d, 0.0);
  double avg_bias = 0.0;
  int64_t avg_count = 0;
  const size_t tail_start_epoch = params_.epochs / 2;

  int64_t t = 0;
  for (size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    const double eta = 0.5 / (1.0 + static_cast<double>(epoch));
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng_.NextBelow(i)]);
    }
    for (size_t idx : order) {
      ++t;
      const auto x = data.Features(idx);
      const double y = (data.Target(idx) - target_mean_) / target_scale_;
      double pred = bias_;
      for (size_t c = 0; c < d; ++c) {
        pred += weights_[c] * x[c];
      }
      const double err = pred - y;
      // Subgradient of epsilon-insensitive loss.
      double g = 0.0;
      if (err > params_.epsilon) {
        g = 1.0;
      } else if (err < -params_.epsilon) {
        g = -1.0;
      }
      for (size_t c = 0; c < d; ++c) {
        weights_[c] -= eta * (lambda * weights_[c] + g * x[c]);
      }
      bias_ -= eta * g;
      if (epoch >= tail_start_epoch) {
        for (size_t c = 0; c < d; ++c) {
          avg_weights[c] += weights_[c];
        }
        avg_bias += bias_;
        ++avg_count;
      }
    }
  }
  if (avg_count > 0) {
    for (size_t c = 0; c < d; ++c) {
      weights_[c] = avg_weights[c] / static_cast<double>(avg_count);
    }
    bias_ = avg_bias / static_cast<double>(avg_count);
  }
}

double LinearSvr::Predict(std::span<const double> features) const {
  OPTUM_CHECK_EQ(features.size(), weights_.size());
  const std::vector<double> x = input_standardizer_.Apply(features);
  double acc = bias_;
  for (size_t c = 0; c < x.size(); ++c) {
    acc += weights_[c] * x[c];
  }
  return acc * target_scale_ + target_mean_;
}

}  // namespace optum::ml
