// Gradient-boosted regression trees (least-squares boosting). Not part of
// the paper's Fig. 18 model zoo — provided as a library extension and
// compared against Random Forest in bench/ablation_models.
#ifndef OPTUM_SRC_ML_GRADIENT_BOOSTING_H_
#define OPTUM_SRC_ML_GRADIENT_BOOSTING_H_

#include <memory>
#include <vector>

#include "src/ml/decision_tree.h"
#include "src/ml/regressor.h"
#include "src/stats/rng.h"

namespace optum::ml {

struct BoostingParams {
  size_t num_rounds = 60;
  double learning_rate = 0.1;
  // Row subsampling per round (stochastic gradient boosting); 1.0 disables.
  double subsample = 0.8;
  TreeParams tree{.max_depth = 4, .min_samples_leaf = 4, .min_samples_split = 8};
};

class GradientBoostingRegressor : public Regressor {
 public:
  explicit GradientBoostingRegressor(BoostingParams params = {}, uint64_t seed = 1);

  void Fit(const Dataset& data) override;
  double Predict(std::span<const double> features) const override;

  // Tree-outer accumulation over the whole block: each round's tree is
  // evaluated for every row before moving to the next, so per row the
  // additions run in the same order as Predict (bit-identical) while each
  // tree's nodes stay hot across the block.
  void PredictBatch(std::span<const double> rows, size_t stride,
                    std::span<double> out) const override;

  std::string name() const override { return "GBT"; }

  size_t num_rounds() const { return trees_.size(); }

 private:
  BoostingParams params_;
  Rng rng_;
  double base_prediction_ = 0.0;
  std::vector<std::unique_ptr<DecisionTreeRegressor>> trees_;
};

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_GRADIENT_BOOSTING_H_
