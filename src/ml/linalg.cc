#include "src/ml/linalg.h"

#include <cmath>

#include "src/common/check.h"

namespace optum::ml {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

Matrix Matrix::Mul(const Matrix& other) const {
  OPTUM_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) {
        continue;
      }
      for (size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix out(cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const auto row = Row(r);
    for (size_t i = 0; i < cols_; ++i) {
      const double xi = row[i];
      if (xi == 0.0) {
        continue;
      }
      for (size_t j = i; j < cols_; ++j) {
        out(i, j) += xi * row[j];
      }
    }
  }
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = 0; j < i; ++j) {
      out(i, j) = out(j, i);
    }
  }
  return out;
}

std::vector<double> Matrix::MulVec(std::span<const double> v) const {
  OPTUM_CHECK_EQ(cols_, v.size());
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const auto row = Row(r);
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) {
      acc += row[c] * v[c];
    }
    out[r] = acc;
  }
  return out;
}

std::vector<double> Matrix::TransposedMulVec(std::span<const double> v) const {
  OPTUM_CHECK_EQ(rows_, v.size());
  std::vector<double> out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double vr = v[r];
    if (vr == 0.0) {
      continue;
    }
    const auto row = Row(r);
    for (size_t c = 0; c < cols_; ++c) {
      out[c] += row[c] * vr;
    }
  }
  return out;
}

bool CholeskySolveInPlace(Matrix& a, std::vector<double>& b) {
  const size_t n = a.rows();
  OPTUM_CHECK_EQ(a.cols(), n);
  OPTUM_CHECK_EQ(b.size(), n);
  // In-place lower Cholesky factorization.
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) {
      diag -= a(j, k) * a(j, k);
    }
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return false;
    }
    a(j, j) = std::sqrt(diag);
    for (size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (size_t k = 0; k < j; ++k) {
        v -= a(i, k) * a(j, k);
      }
      a(i, j) = v / a(j, j);
    }
  }
  // Forward substitution: L y = b.
  for (size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (size_t k = 0; k < i; ++k) {
      v -= a(i, k) * b[k];
    }
    b[i] = v / a(i, i);
  }
  // Back substitution: L^T x = y.
  for (size_t ii = n; ii-- > 0;) {
    double v = b[ii];
    for (size_t k = ii + 1; k < n; ++k) {
      v -= a(k, ii) * b[k];
    }
    b[ii] = v / a(ii, ii);
  }
  return true;
}

std::vector<double> SolveSpd(const Matrix& a, std::span<const double> b, double ridge) {
  double lambda = ridge;
  for (int attempt = 0; attempt < 12; ++attempt) {
    Matrix work = a;
    for (size_t i = 0; i < work.rows(); ++i) {
      work(i, i) += lambda;
    }
    std::vector<double> x(b.begin(), b.end());
    if (CholeskySolveInPlace(work, x)) {
      return x;
    }
    lambda = lambda == 0.0 ? 1e-10 : lambda * 10.0;
  }
  OPTUM_CHECK_MSG(false, "SolveSpd: matrix not positive definite even after regularization");
  return {};
}

}  // namespace optum::ml
