// Common interface for the regression models compared in paper Fig. 18
// (RF, LR, Ridge, SVR, MLP) and used by Optum's Interference Profiler.
#ifndef OPTUM_SRC_ML_REGRESSOR_H_
#define OPTUM_SRC_ML_REGRESSOR_H_

#include <memory>
#include <span>
#include <string>

#include "src/ml/dataset.h"

namespace optum::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  // Fits the model to the dataset. Must be called before Predict.
  virtual void Fit(const Dataset& data) = 0;

  // Predicts the target for one feature vector.
  virtual double Predict(std::span<const double> features) const = 0;

  virtual std::string name() const = 0;
};

enum class RegressorKind {
  kLinear,
  kRidge,
  kRandomForest,
  kMlp,
  kSvr,
};

const char* ToString(RegressorKind kind);

// Factory with the default hyperparameters used by the fig18 bench. The
// seed controls every stochastic element (bootstrap, init weights).
std::unique_ptr<Regressor> MakeRegressor(RegressorKind kind, uint64_t seed);

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_REGRESSOR_H_
