// Common interface for the regression models compared in paper Fig. 18
// (RF, LR, Ridge, SVR, MLP) and used by Optum's Interference Profiler.
//
// The interface is batch-first: the scheduler scores ~300 candidate hosts
// per pod, so callers hand PredictBatch a whole row-major block and models
// amortize their per-call fixed costs across it (the same argument Resource
// Central makes for serving predictions at scheduler rates). Predict stays
// as the one-row convenience; PredictBatch defaults to looping it, so only
// models with a genuinely faster kernel (the compiled forest) override it.
#ifndef OPTUM_SRC_ML_REGRESSOR_H_
#define OPTUM_SRC_ML_REGRESSOR_H_

#include <memory>
#include <span>
#include <string>

#include "src/ml/dataset.h"
#include "src/ml/model_params.h"

namespace optum::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  // Fits the model to the dataset. Must be called before Predict.
  virtual void Fit(const Dataset& data) = 0;

  // Predicts the target for one feature vector.
  virtual double Predict(std::span<const double> features) const = 0;

  // Predicts out.size() rows stored row-major in `rows`: row i occupies
  // rows[i * stride, i * stride + stride) and its first num-features entries
  // are the model inputs (stride >= the feature count the model was fitted
  // on; rows.size() >= out.size() * stride). Writes one prediction per row
  // into `out`, bit-identical to calling Predict row by row.
  virtual void PredictBatch(std::span<const double> rows, size_t stride,
                            std::span<double> out) const;

  virtual std::string name() const = 0;
};

enum class RegressorKind {
  kLinear,
  kRidge,
  kRandomForest,
  kMlp,
  kSvr,
};

const char* ToString(RegressorKind kind);

// Full model specification: family, seed, and per-family hyperparameter
// overrides (only the block matching `kind` is read). Sweeps and the
// profiler pass a spec instead of hard-coding hyperparameters at each
// construction site.
struct RegressorSpec {
  RegressorKind kind = RegressorKind::kRandomForest;
  // Controls every stochastic element (bootstrap, init weights).
  uint64_t seed = 1;
  double ridge_alpha = 1.0;  // kRidge only
  ForestParams forest;       // kRandomForest only
  MlpParams mlp;             // kMlp only
  SvrParams svr;             // kSvr only
};

std::unique_ptr<Regressor> MakeRegressor(const RegressorSpec& spec);

// Thin wrapper over the spec factory with default hyperparameters, kept for
// call sites that only choose a family (e.g. the fig18 bench).
std::unique_ptr<Regressor> MakeRegressor(RegressorKind kind, uint64_t seed);

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_REGRESSOR_H_
