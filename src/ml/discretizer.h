// Target discretization per paper §4.2.1: "Optum divides the space of
// prediction into multiple buckets, and then takes the upper bound of the
// bucket as the final prediction" (e.g. a PSI prediction in [0.2, 0.3) maps
// to 0.3). The evaluation uses 25 buckets (§5.2).
#ifndef OPTUM_SRC_ML_DISCRETIZER_H_
#define OPTUM_SRC_ML_DISCRETIZER_H_

#include <cstddef>

namespace optum::ml {

class Discretizer {
 public:
  // Uniform buckets over [lo, hi]; values outside are clamped.
  Discretizer(double lo, double hi, size_t num_buckets);

  // Maps a raw value to the upper bound of its bucket.
  double ToUpperBound(double value) const;

  // Bucket index in [0, num_buckets).
  size_t BucketOf(double value) const;

  size_t num_buckets() const { return num_buckets_; }
  double bucket_width() const { return width_; }

 private:
  double lo_;
  double hi_;
  size_t num_buckets_;
  double width_;
};

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_DISCRETIZER_H_
