#include "src/ml/random_forest.h"

#include <cmath>
#include <numeric>

#include "src/common/check.h"

namespace optum::ml {

RandomForestRegressor::RandomForestRegressor(ForestParams params, uint64_t seed)
    : params_(params), rng_(seed) {
  OPTUM_CHECK_GT(params_.num_trees, 0u);
}

void RandomForestRegressor::Fit(const Dataset& data) {
  OPTUM_CHECK(!data.empty());
  trees_.clear();
  trees_.reserve(params_.num_trees);

  TreeParams tree_params = params_.tree;
  if (tree_params.max_features == 0) {
    // Default to the classic ~d/3 heuristic for regression forests.
    tree_params.max_features =
        std::max<size_t>(1, static_cast<size_t>(std::ceil(data.num_features() / 3.0)));
  }

  for (size_t t = 0; t < params_.num_trees; ++t) {
    auto tree = std::make_unique<DecisionTreeRegressor>(tree_params, rng_.NextU64());
    if (params_.bootstrap) {
      std::vector<size_t> indices(data.size());
      for (auto& idx : indices) {
        idx = rng_.NextBelow(data.size());
      }
      tree->FitOnIndices(data, std::move(indices));
    } else {
      tree->Fit(data);
    }
    trees_.push_back(std::move(tree));
  }
  compiled_ = CompiledForest::Compile(
      *this, {.quantized_thresholds = params_.quantized_inference});
}

double RandomForestRegressor::Predict(std::span<const double> features) const {
  OPTUM_CHECK(!trees_.empty());
  // Quantized mode delegates to the compiled engine so Predict and
  // PredictBatch stay mutually bit-identical (the Regressor contract);
  // pointer descent remains the reference for the default exact mode.
  if (compiled_.quantized()) {
    return compiled_.Predict(features);
  }
  double acc = 0.0;
  for (const auto& tree : trees_) {
    acc += tree->Predict(features);
  }
  return acc / static_cast<double>(trees_.size());
}

void RandomForestRegressor::PredictBatch(std::span<const double> rows, size_t stride,
                                         std::span<double> out) const {
  OPTUM_CHECK(compiled_.compiled());
  compiled_.PredictBatch(rows, stride, out);
}

}  // namespace optum::ml
