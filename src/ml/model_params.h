// Hyperparameter structs for the regression model zoo. Kept in one
// dependency-free header so RegressorSpec (src/ml/regressor.h) can embed
// per-family overrides by value without pulling in the model headers.
#ifndef OPTUM_SRC_ML_MODEL_PARAMS_H_
#define OPTUM_SRC_ML_MODEL_PARAMS_H_

#include <cstddef>
#include <vector>

namespace optum::ml {

struct TreeParams {
  int max_depth = 12;
  size_t min_samples_leaf = 2;
  size_t min_samples_split = 4;
  // Number of candidate features examined per split; 0 = all features.
  size_t max_features = 0;
  // Candidate thresholds tried per feature (quantile grid); keeps training
  // O(n · candidates) per node instead of O(n log n) exhaustive scans.
  size_t num_thresholds = 16;
};

struct ForestParams {
  size_t num_trees = 30;
  TreeParams tree;
  // When true each tree trains on a bootstrap resample; otherwise all trees
  // see the full data (pure feature-subsampled ensemble).
  bool bootstrap = true;
  // Selects the quantized compiled-inference layout (float32 thresholds,
  // 16-bit node links where trees fit): ~40% smaller descent footprint,
  // predictions within a small tolerance of — not bit-identical to — the
  // default exact engine. Training is unaffected. See CompiledForest.
  bool quantized_inference = false;
};

struct MlpParams {
  std::vector<size_t> hidden = {32, 16};
  size_t epochs = 60;
  size_t batch_size = 32;
  double learning_rate = 1e-2;
  double l2 = 1e-5;
};

struct SvrParams {
  double epsilon = 0.01;  // insensitive-tube half-width
  double c = 1.0;         // inverse regularization strength
  size_t epochs = 40;
};

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_MODEL_PARAMS_H_
