#include "src/ml/discretizer.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace optum::ml {

Discretizer::Discretizer(double lo, double hi, size_t num_buckets)
    : lo_(lo), hi_(hi), num_buckets_(num_buckets) {
  OPTUM_CHECK_LT(lo, hi);
  OPTUM_CHECK_GT(num_buckets, 0u);
  width_ = (hi - lo) / static_cast<double>(num_buckets);
}

size_t Discretizer::BucketOf(double value) const {
  const double clamped = std::clamp(value, lo_, hi_);
  const double pos = (clamped - lo_) / width_;
  // Bucket k covers (lo + k*w, lo + (k+1)*w]: boundary values belong to the
  // lower bucket, which makes ToUpperBound idempotent on its own outputs.
  double bucket = std::ceil(pos - 1e-9) - 1.0;
  if (bucket < 0.0) {
    bucket = 0.0;
  }
  return std::min(static_cast<size_t>(bucket), num_buckets_ - 1);
}

double Discretizer::ToUpperBound(double value) const {
  const size_t bucket = BucketOf(value);
  // The bottom bucket maps to the lower bound: values there mean "no
  // measurable degradation", and flooring them at a positive upper bound
  // would bias every interference sum by bucket_width * pod_count.
  if (bucket == 0) {
    return lo_;
  }
  return lo_ + static_cast<double>(bucket + 1) * width_;
}

}  // namespace optum::ml
