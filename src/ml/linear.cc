#include "src/ml/linear.h"

#include "src/common/check.h"
#include "src/ml/linalg.h"

namespace optum::ml {

void RidgeRegressor::Fit(const Dataset& data) {
  OPTUM_CHECK(!data.empty());
  const size_t d = data.num_features();
  // Design matrix with a trailing intercept column of ones.
  Matrix x(data.size(), d + 1);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto row = data.Features(i);
    for (size_t c = 0; c < d; ++c) {
      x(i, c) = row[c];
    }
    x(i, d) = 1.0;
  }
  Matrix gram = x.Gram();
  // Penalize weights but not the intercept.
  for (size_t c = 0; c < d; ++c) {
    gram(c, c) += alpha_;
  }
  const std::vector<double> xty = x.TransposedMulVec(data.targets());
  std::vector<double> solution = SolveSpd(gram, xty, /*ridge=*/0.0);
  intercept_ = solution[d];
  solution.resize(d);
  weights_ = std::move(solution);
}

double RidgeRegressor::Predict(std::span<const double> features) const {
  OPTUM_CHECK_EQ(features.size(), weights_.size());
  double acc = intercept_;
  for (size_t i = 0; i < features.size(); ++i) {
    acc += weights_[i] * features[i];
  }
  return acc;
}

}  // namespace optum::ml
