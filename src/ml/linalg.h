// Minimal dense linear algebra: just enough for closed-form linear/ridge
// regression (normal equations + Cholesky) and MLP training. Row-major.
#ifndef OPTUM_SRC_ML_LINALG_H_
#define OPTUM_SRC_ML_LINALG_H_

#include <cstddef>
#include <span>
#include <vector>

namespace optum::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  std::span<double> Row(size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> Row(size_t r) const { return {data_.data() + r * cols_, cols_}; }

  Matrix Transposed() const;

  // this * other.
  Matrix Mul(const Matrix& other) const;

  // this^T * this (Gram matrix), computed without forming the transpose.
  Matrix Gram() const;

  // this * v.
  std::vector<double> MulVec(std::span<const double> v) const;

  // this^T * v.
  std::vector<double> TransposedMulVec(std::span<const double> v) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// Solves A x = b for symmetric positive-definite A via Cholesky. A is
// modified in place (holds the factor afterwards). Returns false when A is
// not positive definite (caller should regularize and retry).
bool CholeskySolveInPlace(Matrix& a, std::vector<double>& b);

// Convenience wrapper: solves (A + ridge*I) x = b, escalating the ridge term
// until the factorization succeeds. A is copied.
std::vector<double> SolveSpd(const Matrix& a, std::span<const double> b, double ridge = 0.0);

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_LINALG_H_
