#include "src/ml/metrics.h"

#include <cmath>

#include "src/common/check.h"
#include "src/stats/descriptive.h"

namespace optum::ml {

double Mape(std::span<const double> truth, std::span<const double> predicted,
            double floor_truth) {
  OPTUM_CHECK_EQ(truth.size(), predicted.size());
  OPTUM_CHECK(!truth.empty());
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double denom = std::max(std::fabs(truth[i]), floor_truth);
    acc += std::fabs(predicted[i] - truth[i]) / denom;
  }
  return acc / static_cast<double>(truth.size());
}

double MeanAbsoluteError(std::span<const double> truth, std::span<const double> predicted) {
  OPTUM_CHECK_EQ(truth.size(), predicted.size());
  OPTUM_CHECK(!truth.empty());
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    acc += std::fabs(predicted[i] - truth[i]);
  }
  return acc / static_cast<double>(truth.size());
}

double RootMeanSquaredError(std::span<const double> truth,
                            std::span<const double> predicted) {
  OPTUM_CHECK_EQ(truth.size(), predicted.size());
  OPTUM_CHECK(!truth.empty());
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double d = predicted[i] - truth[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

double RSquared(std::span<const double> truth, std::span<const double> predicted) {
  OPTUM_CHECK_EQ(truth.size(), predicted.size());
  OPTUM_CHECK(!truth.empty());
  const double mean = Mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot == 0.0) {
    return ss_res == 0.0 ? 1.0 : 0.0;
  }
  return 1.0 - ss_res / ss_tot;
}

std::vector<double> PredictAll(const Regressor& model, const Dataset& data) {
  std::vector<double> out(data.size());
  if (!data.empty()) {
    model.PredictBatch(data.flat_features(), data.num_features(), out);
  }
  return out;
}

double EvaluateMape(const Regressor& model, const Dataset& data) {
  return Mape(data.targets(), PredictAll(model, data));
}

}  // namespace optum::ml
