// Linear epsilon-insensitive support vector regression trained by
// stochastic subgradient descent (Pegasos-style schedule). Inputs are
// standardized internally.
#ifndef OPTUM_SRC_ML_SVR_H_
#define OPTUM_SRC_ML_SVR_H_

#include <vector>

#include "src/ml/model_params.h"
#include "src/ml/regressor.h"
#include "src/stats/rng.h"

namespace optum::ml {

class LinearSvr : public Regressor {
 public:
  explicit LinearSvr(SvrParams params = {}, uint64_t seed = 1);

  void Fit(const Dataset& data) override;
  double Predict(std::span<const double> features) const override;
  std::string name() const override { return "SVR"; }

 private:
  SvrParams params_;
  Rng rng_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  Dataset::Standardizer input_standardizer_;
  double target_mean_ = 0.0;
  double target_scale_ = 1.0;
};

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_SVR_H_
