#include "src/ml/regressor.h"

#include "src/common/check.h"
#include "src/ml/linear.h"
#include "src/ml/mlp.h"
#include "src/ml/random_forest.h"
#include "src/ml/svr.h"

namespace optum::ml {

void Regressor::PredictBatch(std::span<const double> rows, size_t stride,
                             std::span<double> out) const {
  OPTUM_CHECK_GT(stride, 0u);
  OPTUM_CHECK_GE(rows.size(), out.size() * stride);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = Predict(rows.subspan(i * stride, stride));
  }
}

const char* ToString(RegressorKind kind) {
  switch (kind) {
    case RegressorKind::kLinear:
      return "LR";
    case RegressorKind::kRidge:
      return "Ridge";
    case RegressorKind::kRandomForest:
      return "RF";
    case RegressorKind::kMlp:
      return "MLP";
    case RegressorKind::kSvr:
      return "SVR";
  }
  return "?";
}

std::unique_ptr<Regressor> MakeRegressor(const RegressorSpec& spec) {
  switch (spec.kind) {
    case RegressorKind::kLinear:
      return std::make_unique<LinearRegressor>();
    case RegressorKind::kRidge:
      return std::make_unique<RidgeRegressor>(spec.ridge_alpha);
    case RegressorKind::kRandomForest:
      return std::make_unique<RandomForestRegressor>(spec.forest, spec.seed);
    case RegressorKind::kMlp:
      return std::make_unique<MlpRegressor>(spec.mlp, spec.seed);
    case RegressorKind::kSvr:
      return std::make_unique<LinearSvr>(spec.svr, spec.seed);
  }
  OPTUM_CHECK_MSG(false, "unknown RegressorKind");
  return nullptr;
}

std::unique_ptr<Regressor> MakeRegressor(RegressorKind kind, uint64_t seed) {
  RegressorSpec spec;
  spec.kind = kind;
  spec.seed = seed;
  return MakeRegressor(spec);
}

}  // namespace optum::ml
