#include "src/ml/regressor.h"

#include "src/common/check.h"
#include "src/ml/linear.h"
#include "src/ml/mlp.h"
#include "src/ml/random_forest.h"
#include "src/ml/svr.h"

namespace optum::ml {

const char* ToString(RegressorKind kind) {
  switch (kind) {
    case RegressorKind::kLinear:
      return "LR";
    case RegressorKind::kRidge:
      return "Ridge";
    case RegressorKind::kRandomForest:
      return "RF";
    case RegressorKind::kMlp:
      return "MLP";
    case RegressorKind::kSvr:
      return "SVR";
  }
  return "?";
}

std::unique_ptr<Regressor> MakeRegressor(RegressorKind kind, uint64_t seed) {
  switch (kind) {
    case RegressorKind::kLinear:
      return std::make_unique<LinearRegressor>();
    case RegressorKind::kRidge:
      return std::make_unique<RidgeRegressor>(1.0);
    case RegressorKind::kRandomForest:
      return std::make_unique<RandomForestRegressor>(ForestParams{}, seed);
    case RegressorKind::kMlp:
      return std::make_unique<MlpRegressor>(MlpParams{}, seed);
    case RegressorKind::kSvr:
      return std::make_unique<LinearSvr>(SvrParams{}, seed);
  }
  OPTUM_CHECK_MSG(false, "unknown RegressorKind");
  return nullptr;
}

}  // namespace optum::ml
