#include "src/ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.h"
#include "src/stats/descriptive.h"

namespace optum::ml {
namespace {

double Relu(double x) { return x > 0.0 ? x : 0.0; }
double ReluGrad(double x) { return x > 0.0 ? 1.0 : 0.0; }

}  // namespace

MlpRegressor::MlpRegressor(MlpParams params, uint64_t seed)
    : params_(std::move(params)), rng_(seed) {}

std::vector<double> MlpRegressor::Forward(
    std::span<const double> x, std::vector<std::vector<double>>* activations) const {
  std::vector<double> current(x.begin(), x.end());
  if (activations != nullptr) {
    activations->clear();
    activations->push_back(current);
  }
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const bool is_output = l + 1 == layers_.size();
    std::vector<double> next(layer.biases.size());
    for (size_t o = 0; o < next.size(); ++o) {
      double acc = layer.biases[o];
      const auto& w = layer.weights[o];
      for (size_t i = 0; i < current.size(); ++i) {
        acc += w[i] * current[i];
      }
      next[o] = is_output ? acc : Relu(acc);
    }
    current = std::move(next);
    if (activations != nullptr) {
      activations->push_back(current);
    }
  }
  return current;
}

void MlpRegressor::Fit(const Dataset& raw) {
  OPTUM_CHECK(!raw.empty());
  input_standardizer_ = raw.FitStandardizer();
  const Dataset data = raw.Standardized(input_standardizer_);

  target_mean_ = Mean(data.targets());
  const double sd = StdDev(data.targets());
  target_scale_ = sd > 1e-9 ? sd : 1.0;

  // Build layer dimensions: input -> hidden... -> 1.
  std::vector<size_t> dims;
  dims.push_back(data.num_features());
  for (size_t h : params_.hidden) {
    dims.push_back(h);
  }
  dims.push_back(1);

  layers_.clear();
  for (size_t l = 0; l + 1 < dims.size(); ++l) {
    Layer layer;
    const size_t fan_in = dims[l];
    const size_t fan_out = dims[l + 1];
    const double scale = std::sqrt(2.0 / static_cast<double>(fan_in));
    layer.weights.assign(fan_out, std::vector<double>(fan_in, 0.0));
    layer.biases.assign(fan_out, 0.0);
    for (auto& row : layer.weights) {
      for (auto& w : row) {
        w = rng_.Gaussian(0.0, scale);
      }
    }
    layers_.push_back(std::move(layer));
  }

  // Adam state mirrors the layer structure.
  struct AdamState {
    std::vector<std::vector<double>> mw, vw;
    std::vector<double> mb, vb;
  };
  std::vector<AdamState> adam(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    adam[l].mw.assign(layers_[l].weights.size(),
                      std::vector<double>(layers_[l].weights[0].size(), 0.0));
    adam[l].vw = adam[l].mw;
    adam[l].mb.assign(layers_[l].biases.size(), 0.0);
    adam[l].vb = adam[l].mb;
  }
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  int64_t step = 0;

  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0u);

  for (size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng_.NextBelow(i)]);
    }
    for (size_t start = 0; start < order.size(); start += params_.batch_size) {
      const size_t stop = std::min(order.size(), start + params_.batch_size);
      const double batch_n = static_cast<double>(stop - start);

      // Accumulated gradients.
      std::vector<Layer> grads(layers_.size());
      for (size_t l = 0; l < layers_.size(); ++l) {
        grads[l].weights.assign(layers_[l].weights.size(),
                                std::vector<double>(layers_[l].weights[0].size(), 0.0));
        grads[l].biases.assign(layers_[l].biases.size(), 0.0);
      }

      for (size_t bi = start; bi < stop; ++bi) {
        const size_t idx = order[bi];
        std::vector<std::vector<double>> acts;
        const std::vector<double> out = Forward(data.Features(idx), &acts);
        const double target = (data.Target(idx) - target_mean_) / target_scale_;
        // dL/dout for squared loss (factor 2 folded into learning rate).
        std::vector<double> delta = {out[0] - target};

        for (size_t li = layers_.size(); li-- > 0;) {
          const auto& input = acts[li];
          auto& g = grads[li];
          std::vector<double> prev_delta(input.size(), 0.0);
          for (size_t o = 0; o < delta.size(); ++o) {
            g.biases[o] += delta[o];
            for (size_t i2 = 0; i2 < input.size(); ++i2) {
              g.weights[o][i2] += delta[o] * input[i2];
              prev_delta[i2] += layers_[li].weights[o][i2] * delta[o];
            }
          }
          if (li > 0) {
            // Backprop through the ReLU of the previous layer's output.
            for (size_t i2 = 0; i2 < prev_delta.size(); ++i2) {
              prev_delta[i2] *= ReluGrad(acts[li][i2]);
            }
            delta = std::move(prev_delta);
          }
        }
      }

      // Adam update.
      ++step;
      const double corr1 = 1.0 - std::pow(beta1, static_cast<double>(step));
      const double corr2 = 1.0 - std::pow(beta2, static_cast<double>(step));
      for (size_t l = 0; l < layers_.size(); ++l) {
        for (size_t o = 0; o < layers_[l].weights.size(); ++o) {
          for (size_t i2 = 0; i2 < layers_[l].weights[o].size(); ++i2) {
            const double g =
                grads[l].weights[o][i2] / batch_n + params_.l2 * layers_[l].weights[o][i2];
            auto& m = adam[l].mw[o][i2];
            auto& v = adam[l].vw[o][i2];
            m = beta1 * m + (1.0 - beta1) * g;
            v = beta2 * v + (1.0 - beta2) * g * g;
            layers_[l].weights[o][i2] -=
                params_.learning_rate * (m / corr1) / (std::sqrt(v / corr2) + eps);
          }
          const double gb = grads[l].biases[o] / batch_n;
          auto& mb = adam[l].mb[o];
          auto& vb = adam[l].vb[o];
          mb = beta1 * mb + (1.0 - beta1) * gb;
          vb = beta2 * vb + (1.0 - beta2) * gb * gb;
          layers_[l].biases[o] -=
              params_.learning_rate * (mb / corr1) / (std::sqrt(vb / corr2) + eps);
        }
      }
    }
  }
}

double MlpRegressor::Predict(std::span<const double> features) const {
  OPTUM_CHECK(!layers_.empty());
  const std::vector<double> x = input_standardizer_.Apply(features);
  const std::vector<double> out = Forward(x, nullptr);
  return out[0] * target_scale_ + target_mean_;
}

}  // namespace optum::ml
