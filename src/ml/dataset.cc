#include "src/ml/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.h"

namespace optum::ml {

Dataset::Dataset(size_t num_features, std::vector<std::string> feature_names)
    : num_features_(num_features), feature_names_(std::move(feature_names)) {
  OPTUM_CHECK_GT(num_features, 0u);
  if (!feature_names_.empty()) {
    OPTUM_CHECK_EQ(feature_names_.size(), num_features_);
  }
}

void Dataset::Add(std::span<const double> features, double target) {
  OPTUM_CHECK_EQ(features.size(), num_features_);
  features_.insert(features_.end(), features.begin(), features.end());
  targets_.push_back(target);
}

Dataset::Split Dataset::TrainTestSplit(double test_fraction, Rng& rng) const {
  OPTUM_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  std::vector<size_t> order(size());
  std::iota(order.begin(), order.end(), 0u);
  // Fisher-Yates with the deterministic Rng.
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBelow(i)]);
  }
  const size_t test_count = std::max<size_t>(1, static_cast<size_t>(
                                                    std::llround(test_fraction * size())));
  Split out{Dataset(num_features_, feature_names_), Dataset(num_features_, feature_names_)};
  for (size_t i = 0; i < order.size(); ++i) {
    const size_t idx = order[i];
    if (i < test_count) {
      out.test.Add(Features(idx), Target(idx));
    } else {
      out.train.Add(Features(idx), Target(idx));
    }
  }
  return out;
}

Dataset Dataset::Bootstrap(Rng& rng) const {
  Dataset out(num_features_, feature_names_);
  for (size_t i = 0; i < size(); ++i) {
    const size_t idx = rng.NextBelow(size());
    out.Add(Features(idx), Target(idx));
  }
  return out;
}

std::vector<double> Dataset::Standardizer::Apply(std::span<const double> x) const {
  std::vector<double> out(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    out[i] = (x[i] - mean[i]) / stddev[i];
  }
  return out;
}

Dataset::Standardizer Dataset::FitStandardizer() const {
  Standardizer s;
  s.mean.assign(num_features_, 0.0);
  s.stddev.assign(num_features_, 1.0);
  if (empty()) {
    return s;
  }
  for (size_t i = 0; i < size(); ++i) {
    const auto row = Features(i);
    for (size_t c = 0; c < num_features_; ++c) {
      s.mean[c] += row[c];
    }
  }
  for (double& m : s.mean) {
    m /= static_cast<double>(size());
  }
  std::vector<double> var(num_features_, 0.0);
  for (size_t i = 0; i < size(); ++i) {
    const auto row = Features(i);
    for (size_t c = 0; c < num_features_; ++c) {
      const double d = row[c] - s.mean[c];
      var[c] += d * d;
    }
  }
  for (size_t c = 0; c < num_features_; ++c) {
    const double sd = std::sqrt(var[c] / static_cast<double>(size()));
    s.stddev[c] = sd > 1e-12 ? sd : 1.0;
  }
  return s;
}

Dataset Dataset::Standardized(const Standardizer& s) const {
  Dataset out(num_features_, feature_names_);
  for (size_t i = 0; i < size(); ++i) {
    out.Add(s.Apply(Features(i)), Target(i));
  }
  return out;
}

}  // namespace optum::ml
