// Feature-matrix/target datasets for the profilers (paper §4.2.1).
#ifndef OPTUM_SRC_ML_DATASET_H_
#define OPTUM_SRC_ML_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/stats/rng.h"

namespace optum::ml {

// A dense supervised-learning dataset: row i has `num_features` inputs and
// one target. Feature names are optional metadata for diagnostics.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(size_t num_features, std::vector<std::string> feature_names = {});

  size_t num_features() const { return num_features_; }
  size_t size() const { return targets_.size(); }
  bool empty() const { return targets_.empty(); }

  void Add(std::span<const double> features, double target);

  std::span<const double> Features(size_t i) const {
    return {features_.data() + i * num_features_, num_features_};
  }
  // The whole feature matrix, row-major with stride num_features() — exactly
  // the block layout Regressor::PredictBatch consumes.
  std::span<const double> flat_features() const { return features_; }
  double Target(size_t i) const { return targets_[i]; }
  std::span<const double> targets() const { return targets_; }
  const std::vector<std::string>& feature_names() const { return feature_names_; }

  // Deterministic shuffled split; test_fraction in (0, 1). Declared below.
  struct Split;
  Split TrainTestSplit(double test_fraction, Rng& rng) const;

  // Bootstrap resample of the same size (sampling with replacement).
  Dataset Bootstrap(Rng& rng) const;

  // Column-wise standardization parameters (for MLP / SVR conditioning).
  struct Standardizer {
    std::vector<double> mean;
    std::vector<double> stddev;  // >= epsilon, never zero
    std::vector<double> Apply(std::span<const double> x) const;
  };
  Standardizer FitStandardizer() const;
  Dataset Standardized(const Standardizer& s) const;

 private:
  size_t num_features_ = 0;
  std::vector<double> features_;  // row-major, size() * num_features_
  std::vector<double> targets_;
  std::vector<std::string> feature_names_;
};

struct Dataset::Split {
  Dataset train;
  Dataset test;
};

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_DATASET_H_
