// Multi-layer perceptron regressor trained with mini-batch Adam. Inputs are
// standardized internally, so callers can feed raw features.
#ifndef OPTUM_SRC_ML_MLP_H_
#define OPTUM_SRC_ML_MLP_H_

#include <vector>

#include "src/ml/model_params.h"
#include "src/ml/regressor.h"
#include "src/stats/rng.h"

namespace optum::ml {

class MlpRegressor : public Regressor {
 public:
  explicit MlpRegressor(MlpParams params = {}, uint64_t seed = 1);

  void Fit(const Dataset& data) override;
  double Predict(std::span<const double> features) const override;
  std::string name() const override { return "MLP"; }

 private:
  struct Layer {
    // weights[out][in], biases[out].
    std::vector<std::vector<double>> weights;
    std::vector<double> biases;
  };

  std::vector<double> Forward(std::span<const double> x,
                              std::vector<std::vector<double>>* activations) const;

  MlpParams params_;
  Rng rng_;
  std::vector<Layer> layers_;
  Dataset::Standardizer input_standardizer_;
  double target_mean_ = 0.0;
  double target_scale_ = 1.0;
};

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_MLP_H_
