// Regression quality metrics. The paper evaluates profiling accuracy with
// MAPE (§5.2) and predictor quality with signed relative error (§3.2.2).
#ifndef OPTUM_SRC_ML_METRICS_H_
#define OPTUM_SRC_ML_METRICS_H_

#include <span>

#include "src/ml/regressor.h"

namespace optum::ml {

// Mean absolute percentage error; ground-truth zeros are floored at
// `floor_truth` to keep the metric finite (matching common practice).
double Mape(std::span<const double> truth, std::span<const double> predicted,
            double floor_truth = 1e-6);

double MeanAbsoluteError(std::span<const double> truth, std::span<const double> predicted);

double RootMeanSquaredError(std::span<const double> truth, std::span<const double> predicted);

// Coefficient of determination; 1 is perfect, 0 matches predicting the mean.
double RSquared(std::span<const double> truth, std::span<const double> predicted);

// Predicts every row of `data` through one PredictBatch call. The single
// per-row evaluation loop shared by the profiler's holdout scoring, the
// fig18-style benches, and the model tests.
std::vector<double> PredictAll(const Regressor& model, const Dataset& data);

// Runs `model` over a dataset and returns its MAPE against the targets.
double EvaluateMape(const Regressor& model, const Dataset& data);

}  // namespace optum::ml

#endif  // OPTUM_SRC_ML_METRICS_H_
