#include "src/ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.h"

namespace optum::ml {
namespace {

double MeanOf(const Dataset& data, const std::vector<size_t>& indices, size_t begin,
              size_t end) {
  double acc = 0.0;
  for (size_t i = begin; i < end; ++i) {
    acc += data.Target(indices[i]);
  }
  return acc / static_cast<double>(end - begin);
}

}  // namespace

DecisionTreeRegressor::DecisionTreeRegressor(TreeParams params, uint64_t seed)
    : params_(params), rng_(seed) {}

void DecisionTreeRegressor::Fit(const Dataset& data) {
  std::vector<size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0u);
  FitOnIndices(data, std::move(indices));
}

void DecisionTreeRegressor::FitOnIndices(const Dataset& data, std::vector<size_t> indices) {
  OPTUM_CHECK(!indices.empty());
  nodes_.clear();
  depth_ = 0;
  Build(data, indices, 0, indices.size(), 0);
}

int32_t DecisionTreeRegressor::Build(const Dataset& data, std::vector<size_t>& indices,
                                     size_t begin, size_t end, int depth) {
  depth_ = std::max(depth_, depth);
  const size_t n = end - begin;
  const int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].value = MeanOf(data, indices, begin, end);

  if (depth >= params_.max_depth || n < params_.min_samples_split) {
    return node_id;
  }

  // Parent impurity (sum of squared deviations) for the gain test.
  double parent_sse = 0.0;
  {
    const double mean = nodes_[node_id].value;
    for (size_t i = begin; i < end; ++i) {
      const double d = data.Target(indices[i]) - mean;
      parent_sse += d * d;
    }
  }
  if (parent_sse <= 1e-12) {
    return node_id;  // Pure node.
  }

  const size_t num_features = data.num_features();
  size_t features_to_try = params_.max_features == 0
                               ? num_features
                               : std::min(params_.max_features, num_features);

  // Random feature order (supports forest-style feature subsampling).
  std::vector<size_t> feature_order(num_features);
  std::iota(feature_order.begin(), feature_order.end(), 0u);
  for (size_t i = num_features; i > 1; --i) {
    std::swap(feature_order[i - 1], feature_order[rng_.NextBelow(i)]);
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_sse = parent_sse;

  for (size_t fi = 0; fi < features_to_try; ++fi) {
    const size_t f = feature_order[fi];
    // Candidate thresholds from a quantile grid over this node's values.
    double fmin = std::numeric_limits<double>::infinity();
    double fmax = -std::numeric_limits<double>::infinity();
    for (size_t i = begin; i < end; ++i) {
      const double v = data.Features(indices[i])[f];
      fmin = std::min(fmin, v);
      fmax = std::max(fmax, v);
    }
    if (fmax - fmin <= 1e-12) {
      continue;  // Constant feature at this node.
    }
    const size_t num_thresholds = std::max<size_t>(1, params_.num_thresholds);
    for (size_t t = 0; t < num_thresholds; ++t) {
      const double frac =
          (static_cast<double>(t) + 1.0) / (static_cast<double>(num_thresholds) + 1.0);
      const double threshold = fmin + frac * (fmax - fmin);
      // One pass: accumulate left/right sums to compute the split SSE.
      double left_sum = 0.0, left_sq = 0.0;
      double right_sum = 0.0, right_sq = 0.0;
      size_t left_n = 0;
      for (size_t i = begin; i < end; ++i) {
        const double y = data.Target(indices[i]);
        if (data.Features(indices[i])[f] <= threshold) {
          left_sum += y;
          left_sq += y * y;
          ++left_n;
        } else {
          right_sum += y;
          right_sq += y * y;
        }
      }
      const size_t right_n = n - left_n;
      if (left_n < params_.min_samples_leaf || right_n < params_.min_samples_leaf) {
        continue;
      }
      const double left_sse = left_sq - left_sum * left_sum / static_cast<double>(left_n);
      const double right_sse = right_sq - right_sum * right_sum / static_cast<double>(right_n);
      const double total = left_sse + right_sse;
      if (total < best_sse - 1e-12) {
        best_sse = total;
        best_feature = static_cast<int>(f);
        best_threshold = threshold;
      }
    }
  }

  if (best_feature < 0) {
    return node_id;
  }

  // Partition indices in place around the chosen split.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<ptrdiff_t>(begin),
      indices.begin() + static_cast<ptrdiff_t>(end), [&](size_t idx) {
        return data.Features(idx)[static_cast<size_t>(best_feature)] <= best_threshold;
      });
  const size_t mid = static_cast<size_t>(mid_it - indices.begin());
  OPTUM_CHECK(mid > begin && mid < end);

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int32_t left = Build(data, indices, begin, mid, depth + 1);
  nodes_[node_id].left = left;
  const int32_t right = Build(data, indices, mid, end, depth + 1);
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTreeRegressor::Predict(std::span<const double> features) const {
  OPTUM_CHECK(!nodes_.empty());
  int32_t node = 0;
  for (;;) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    if (n.feature < 0) {
      return n.value;
    }
    node = features[static_cast<size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
}

}  // namespace optum::ml
