#include "src/sched/common.h"

#include <algorithm>
#include <cstddef>
#include <numeric>

#include "src/common/check.h"

namespace optum {

WaitReason ClassifyShortfall(bool cpu_short, bool mem_short) {
  if (cpu_short && mem_short) {
    return WaitReason::kInsufficientCpuAndMem;
  }
  if (cpu_short) {
    return WaitReason::kInsufficientCpu;
  }
  if (mem_short) {
    return WaitReason::kInsufficientMem;
  }
  return WaitReason::kOther;
}

double AlignmentScore(const Resources& pod_request, const Resources& host_load) {
  return pod_request.Dot(host_load);
}

size_t AlignmentRank(const Resources& pod_request, const std::vector<Resources>& loads,
                     HostId selected) {
  OPTUM_CHECK(selected >= 0 && static_cast<size_t>(selected) < loads.size());
  const double selected_score =
      AlignmentScore(pod_request, loads[static_cast<size_t>(selected)]);
  size_t rank = 1;
  for (size_t h = 0; h < loads.size(); ++h) {
    if (static_cast<HostId>(h) == selected) {
      continue;
    }
    if (AlignmentScore(pod_request, loads[h]) > selected_score) {
      ++rank;
    }
  }
  return rank;
}

std::vector<HostId> SampleHosts(const ClusterState& cluster, double fraction,
                                size_t min_count, Rng& rng) {
  std::vector<HostId> scratch;
  std::vector<HostId> out;
  SampleHostsInto(cluster, fraction, min_count, rng, &scratch, &out);
  return out;
}

void SampleHostsInto(const ClusterState& cluster, double fraction, size_t min_count,
                     Rng& rng, std::vector<HostId>* scratch, std::vector<HostId>* out) {
  const size_t n = cluster.num_hosts();
  size_t k = static_cast<size_t>(fraction * static_cast<double>(n));
  k = std::clamp(k, std::min(min_count, n), n);
  std::vector<HostId>& ids = *scratch;
  if (ids.size() != n) {
    ids.resize(n);
    std::iota(ids.begin(), ids.end(), 0);
  }
  if (k < n) {
    // Partial Fisher-Yates over host indices; k == n is a full scan, where
    // order does not matter to the callers (and no random draws happen, so
    // the rng stream matches the pre-scratch implementation exactly).
    //
    // The swaps are recorded and undone after the sample is copied out,
    // restoring `ids` to the identity array: starting every call from
    // identity is what makes the draw sequence equal to the allocating
    // overload's, and undoing k swaps costs O(k) where re-running iota
    // would cost O(n) — the dominant per-pod overhead at fleet scale
    // (6,000 hosts, ~300 candidates). Thread-local because shards sample
    // concurrently, each with its own rng and scratch.
    thread_local std::vector<uint32_t> undo;
    undo.clear();
    for (size_t i = 0; i < k; ++i) {
      const size_t j = i + rng.NextBelow(n - i);
      undo.push_back(static_cast<uint32_t>(j));
      std::swap(ids[i], ids[j]);
    }
    out->assign(ids.begin(), ids.begin() + static_cast<ptrdiff_t>(k));
    for (size_t i = k; i-- > 0;) {
      std::swap(ids[i], ids[undo[i]]);
    }
    return;
  }
  out->assign(ids.begin(), ids.begin() + static_cast<ptrdiff_t>(k));
}

}  // namespace optum
