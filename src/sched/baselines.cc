#include "src/sched/baselines.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "src/common/check.h"
#include "src/obs/span_log.h"

namespace optum {
namespace {

// Shared span emission for the serial baseline Place() paths: one sampled
// span (candidates drawn) and one scored span (feasible count, plus the
// winner's ranking value when a host was chosen).
void EmitPlacementSpans(obs::SpanLog* log, const ClusterState& cluster,
                        const PodSpec& pod, size_t sampled, int64_t feasible,
                        bool placed, double best_value) {
  if (log == nullptr) {
    return;
  }
  log->Append({.tick = cluster.now(),
               .pod = pod.id,
               .phase = obs::SpanPhase::kSampled,
               .count = static_cast<int64_t>(sampled)});
  obs::SpanEvent scored{.tick = cluster.now(),
                        .pod = pod.id,
                        .phase = obs::SpanPhase::kScored,
                        .count = feasible};
  if (placed) {
    scored.has_score = true;
    scored.score = best_value;
  }
  log->Append(scored);
}

}  // namespace

AlibabaBaseline::AlibabaBaseline(BaselineOptions options)
    : options_(options), rng_(options.seed) {}

PlacementDecision AlibabaBaseline::Place(const PodSpec& pod, const AppProfile& app,
                                         const ClusterState& cluster) {
  (void)app;
  const std::vector<HostId> candidates =
      SampleHosts(cluster, options_.sample_fraction, options_.min_candidates, rng_);

  HostId best = kInvalidHostId;
  double best_score = -std::numeric_limits<double>::infinity();
  int64_t feasible = 0;
  bool any_cpu_short = false, any_mem_short = false;

  bool any_affinity = false;
  for (HostId id : candidates) {
    const Host& h = cluster.host(id);
    if (!AffinityAllows(pod, h)) {
      any_affinity = true;
      continue;
    }
    // Memory is always committed against requests (conservative).
    const bool mem_ok =
        h.request_sum.mem + pod.request.mem <= options_.mem_guard * h.capacity.mem;

    bool cpu_ok;
    Resources load;
    if (pod.slo == SloClass::kBe) {
      // BE: over-commit against the host's actual usage in the last
      // scheduling interval (aggressive policy, §3.2.1 / Fig. 10a).
      cpu_ok = h.usage.cpu + pod.request.cpu <=
               options_.be_usage_budget * h.capacity.cpu;
      load = h.usage;
    } else {
      // LS/LSR: request-based, effectively no over-commitment (Fig. 10b).
      cpu_ok = h.request_sum.cpu + pod.request.cpu <= h.capacity.cpu;
      load = h.request_sum;
    }
    if (!cpu_ok) {
      any_cpu_short = true;
    }
    if (!mem_ok) {
      any_mem_short = true;
    }
    if (!cpu_ok || !mem_ok) {
      continue;
    }
    ++feasible;
    const double score = AlignmentScore(pod.request, load);
    if (score > best_score) {
      best_score = score;
      best = id;
    }
  }
  EmitPlacementSpans(span_log_, cluster, pod, candidates.size(), feasible,
                     best != kInvalidHostId, best_score);
  if (best == kInvalidHostId) {
    if (!any_cpu_short && !any_mem_short && any_affinity) {
      return PlacementDecision::Reject(WaitReason::kOther);
    }
    return PlacementDecision::Reject(ClassifyShortfall(any_cpu_short, any_mem_short));
  }
  return PlacementDecision::Accept(best);
}

PredictorBestFit::PredictorBestFit(std::unique_ptr<UsagePredictor> predictor,
                                   std::string policy_name, double cpu_budget,
                                   double overcommit_cap, BaselineOptions options)
    : predictor_(std::move(predictor)),
      name_(std::move(policy_name)),
      cpu_budget_(cpu_budget),
      overcommit_cap_(overcommit_cap),
      options_(options),
      rng_(options.seed) {
  OPTUM_CHECK(predictor_ != nullptr);
}

PlacementDecision PredictorBestFit::Place(const PodSpec& pod, const AppProfile& app,
                                          const ClusterState& cluster) {
  (void)app;
  const std::vector<HostId> candidates =
      SampleHosts(cluster, options_.sample_fraction, options_.min_candidates, rng_);

  HostId best = kInvalidHostId;
  double best_headroom = std::numeric_limits<double>::infinity();
  int64_t feasible = 0;
  bool any_cpu_short = false, any_mem_short = false;

  bool any_affinity = false;
  for (HostId id : candidates) {
    const Host& h = cluster.host(id);
    if (!AffinityAllows(pod, h)) {
      any_affinity = true;
      continue;
    }
    const double predicted = predictor_->PredictHostCpu(h);
    const double cpu_cap = cpu_budget_ * h.capacity.cpu;
    const bool cpu_ok = predicted + pod.request.cpu <= cpu_cap;
    const bool ratio_ok =
        overcommit_cap_ <= 0.0 ||
        h.request_sum.cpu + pod.request.cpu <= overcommit_cap_ * h.capacity.cpu;
    const bool mem_ok =
        h.request_sum.mem + pod.request.mem <= options_.mem_guard * h.capacity.mem;
    if (!cpu_ok || !ratio_ok) {
      any_cpu_short = true;
    }
    if (!mem_ok) {
      any_mem_short = true;
    }
    if (!cpu_ok || !ratio_ok || !mem_ok) {
      continue;
    }
    ++feasible;
    // Best fit: minimize remaining headroom after placement.
    const double headroom = cpu_cap - predicted - pod.request.cpu;
    if (headroom < best_headroom) {
      best_headroom = headroom;
      best = id;
    }
  }
  EmitPlacementSpans(span_log_, cluster, pod, candidates.size(), feasible,
                     best != kInvalidHostId, -best_headroom);
  if (best == kInvalidHostId) {
    if (!any_cpu_short && !any_mem_short && any_affinity) {
      return PlacementDecision::Reject(WaitReason::kOther);
    }
    return PlacementDecision::Reject(ClassifyShortfall(any_cpu_short, any_mem_short));
  }
  return PlacementDecision::Accept(best);
}

std::unique_ptr<PlacementPolicy> MakeBorgLike(BaselineOptions options) {
  return std::make_unique<PredictorBestFit>(std::make_unique<BorgDefaultPredictor>(0.9),
                                            "Borg-like", /*cpu_budget=*/1.0,
                                            /*overcommit_cap=*/0.0, options);
}

std::unique_ptr<PlacementPolicy> MakeNSigmaScheduler(BaselineOptions options) {
  return std::make_unique<PredictorBestFit>(std::make_unique<NSigmaPredictor>(5.0),
                                            "N-sigma", /*cpu_budget=*/1.0,
                                            /*overcommit_cap=*/0.0, options);
}

std::unique_ptr<PlacementPolicy> MakeResourceCentralLike(BaselineOptions options) {
  // Resource Central: sum of pod p99 usage below 0.8 * capacity and the
  // over-commitment ratio capped at 1.2 (paper §5.1).
  return std::make_unique<PredictorBestFit>(
      std::make_unique<ResourceCentralPredictor>(99.0), "RC-like", /*cpu_budget=*/0.8,
      /*overcommit_cap=*/1.2, options);
}

}  // namespace optum
