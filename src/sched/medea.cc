#include "src/sched/medea.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"

namespace optum {

Medea::Medea(MedeaOptions options) : options_(options), rng_(options.seed) {}

bool Medea::Fits(const PodSpec& pod, const Host& host) const {
  return AffinityAllows(pod, host) &&
         host.request_sum.cpu + pod.request.cpu <= host.capacity.cpu &&
         host.request_sum.mem + pod.request.mem <=
             options_.mem_guard * host.capacity.mem;
}

PlacementDecision Medea::PlaceShortRunning(const PodSpec& pod,
                                           const ClusterState& cluster) {
  // Traditional low-latency scheduler: request-based best fit (Medea is a
  // YARN-style system — no usage prediction for either pod class).
  HostId best = kInvalidHostId;
  double best_headroom = std::numeric_limits<double>::infinity();
  bool any_cpu = false, any_mem = false;
  for (const Host& h : cluster.hosts()) {
    if (!AffinityAllows(pod, h)) {
      continue;
    }
    const bool cpu_ok = h.request_sum.cpu + pod.request.cpu <= h.capacity.cpu;
    const bool mem_ok =
        h.request_sum.mem + pod.request.mem <= options_.mem_guard * h.capacity.mem;
    any_cpu |= !cpu_ok;
    any_mem |= !mem_ok;
    if (!cpu_ok || !mem_ok) {
      continue;
    }
    const double headroom = h.capacity.cpu - h.request_sum.cpu - pod.request.cpu;
    if (headroom < best_headroom) {
      best_headroom = headroom;
      best = h.id;
    }
  }
  if (best == kInvalidHostId) {
    return PlacementDecision::Reject(ClassifyShortfall(any_cpu, any_mem));
  }
  return PlacementDecision::Accept(best);
}

void Medea::SolveBatch(const ClusterState& cluster) {
  if (batch_.empty()) {
    return;
  }
  // Candidate hosts: sample up to max_hosts, preferring non-idle hosts so
  // the ILP can pack (idle hosts are trivially feasible anyway).
  std::vector<HostId> hosts =
      SampleHosts(cluster, 1.0, cluster.num_hosts(), rng_);  // shuffled all
  if (hosts.size() > options_.max_hosts) {
    hosts.resize(options_.max_hosts);
  }

  solver::AssignmentProblem problem;
  problem.capacities.reserve(hosts.size());
  for (HostId id : hosts) {
    const Host& h = cluster.host(id);
    problem.capacities.push_back(Resources{
        std::max(0.0, h.capacity.cpu - h.request_sum.cpu),
        std::max(0.0, options_.mem_guard * h.capacity.mem - h.request_sum.mem)});
  }
  constexpr double kForbidden = -1e18;
  for (const BatchEntry& entry : batch_) {
    problem.demands.push_back(entry.pod.request);
    std::vector<double> row(hosts.size(), kForbidden);
    for (size_t b = 0; b < hosts.size(); ++b) {
      const Host& h = cluster.host(hosts[b]);
      if (!Fits(entry.pod, h)) {
        continue;
      }
      // Prefer packing onto loaded hosts: constant assignment reward plus
      // the alignment score against committed requests.
      row[b] = 1.0 + AlignmentScore(entry.pod.request, h.request_sum);
    }
    problem.scores.push_back(std::move(row));
  }

  const solver::AssignmentSolution solution =
      solver::AssignmentSolver(options_.node_budget).Solve(problem);
  for (size_t i = 0; i < batch_.size(); ++i) {
    if (solution.assignment[i] >= 0) {
      solved_[batch_[i].pod.id] = hosts[static_cast<size_t>(solution.assignment[i])];
    }
  }
  batch_.clear();
}

PlacementDecision Medea::Place(const PodSpec& pod, const AppProfile& app,
                               const ClusterState& cluster) {
  (void)app;
  if (pod.slo == SloClass::kBe) {
    return PlaceShortRunning(pod, cluster);
  }

  // Previously solved? Validate against the current state and commit.
  if (const auto it = solved_.find(pod.id); it != solved_.end()) {
    const HostId host = it->second;
    solved_.erase(it);
    if (Fits(pod, cluster.host(host))) {
      return PlacementDecision::Accept(host);
    }
    // The solution went stale (conflicting placements since the solve);
    // fall through and re-batch.
  }

  // Add to the batch unless already queued.
  const bool queued = std::any_of(batch_.begin(), batch_.end(), [&](const BatchEntry& e) {
    return e.pod.id == pod.id;
  });
  if (!queued) {
    batch_.push_back(BatchEntry{pod, cluster.now()});
  }

  const bool batch_full = batch_.size() >= options_.max_pods;
  const bool batch_aged =
      !batch_.empty() && cluster.now() - batch_.front().added_at >= options_.max_batch_delay;
  if (batch_full || batch_aged) {
    SolveBatch(cluster);
    if (const auto it = solved_.find(pod.id); it != solved_.end()) {
      const HostId host = it->second;
      solved_.erase(it);
      if (Fits(pod, cluster.host(host))) {
        return PlacementDecision::Accept(host);
      }
    }
    // ILP could not place this pod: genuine resource shortage.
    return PlacementDecision::Reject(WaitReason::kInsufficientCpuAndMem);
  }
  // Still batching: the pod waits one round for a better global solution.
  return PlacementDecision::Reject(WaitReason::kOther);
}

}  // namespace optum
