// Shared helpers for scheduler implementations.
#ifndef OPTUM_SRC_SCHED_COMMON_H_
#define OPTUM_SRC_SCHED_COMMON_H_

#include <vector>

#include "src/sim/placement_policy.h"
#include "src/stats/rng.h"

namespace optum {

// Classifies why a pod cannot fit, given per-dimension shortfalls.
WaitReason ClassifyShortfall(bool cpu_short, bool mem_short);

// Multi-resource alignment score (paper §3.2.1, following Tetris [21]):
// inner product between the pod's request vector and the host's load
// vector. Production schedulers pick the host with the largest score.
double AlignmentScore(const Resources& pod_request, const Resources& host_load);

// Rank (1 = best) of `selected` among all hosts when ordered by descending
// alignment score against `loads`; used to reproduce Fig. 10.
size_t AlignmentRank(const Resources& pod_request, const std::vector<Resources>& loads,
                     HostId selected);

// Samples `fraction` of all hosts (at least min_count) without replacement.
std::vector<HostId> SampleHosts(const ClusterState& cluster, double fraction,
                                size_t min_count, Rng& rng);

// As SampleHosts, but writes the sample into `out` and keeps the full host-id
// identity array in `scratch`, so a scheduler calling it per pod allocates
// nothing in steady state and pays O(sample) per call, not O(hosts): the
// partial Fisher-Yates swaps are undone before returning, leaving `scratch`
// as 0..n-1 for the next call instead of rebuilding it. Identical draws from
// `rng` and an identical resulting sample to the allocating overload. Treat
// `scratch` as opaque between calls — hand-written contents are overwritten
// only when the cluster size changes.
void SampleHostsInto(const ClusterState& cluster, double fraction, size_t min_count,
                     Rng& rng, std::vector<HostId>* scratch, std::vector<HostId>* out);

}  // namespace optum

#endif  // OPTUM_SRC_SCHED_COMMON_H_
