// Baseline schedulers evaluated in the paper (§5.1):
//   * AlibabaBaseline — emulates the production unified scheduler as
//     characterized in §3.2.1: over-commits BE pods against actual usage,
//     is conservative (request-based) for LS/LSR, and ranks candidates by
//     alignment score.
//   * BorgLike — predicts host usage as 0.9 * sum(requests), best-fit.
//   * NSigmaScheduler — mean + 5 sigma of host usage history, best-fit.
//   * ResourceCentralLike — sum of per-pod p99 usage must stay below
//     0.8 * capacity, with the over-commitment ratio capped at 1.2.
#ifndef OPTUM_SRC_SCHED_BASELINES_H_
#define OPTUM_SRC_SCHED_BASELINES_H_

#include <string>

#include "src/predict/usage_predictor.h"
#include "src/sched/common.h"
#include "src/sim/placement_policy.h"
#include "src/stats/rng.h"

namespace optum {

// Shared memory guard: all baselines treat memory conservatively
// (request-based, hosts rarely over-commit memory — paper Fig. 5b).
struct BaselineOptions {
  double mem_guard = 1.0;  // max fraction of host memory committable
  // Budget for usage-based BE over-commitment in AlibabaBaseline: BE pods
  // fit while current_usage + request <= be_usage_budget * capacity.
  double be_usage_budget = 0.85;
  // Candidate sampling fraction; 1.0 scans every host (the production
  // default for these baselines).
  double sample_fraction = 1.0;
  size_t min_candidates = 16;
  uint64_t seed = 17;
};

class AlibabaBaseline : public PlacementPolicy {
 public:
  explicit AlibabaBaseline(BaselineOptions options = {});
  PlacementDecision Place(const PodSpec& pod, const AppProfile& app,
                          const ClusterState& cluster) override;
  // Adopts sinks.span_log: emits sampled/scored lifecycle spans per Place()
  // call (DESIGN.md §11); Place() runs serially, so emission is in-line.
  // score = best alignment score when a host was chosen.
  void AttachSinks(const obs::Sinks& sinks) override {
    PlacementPolicy::AttachSinks(sinks);
    span_log_ = sinks.span_log;
  }
  std::string name() const override { return "Alibaba"; }

 private:
  BaselineOptions options_;
  Rng rng_;
  obs::SpanLog* span_log_ = nullptr;
};

// Generic predictor-driven best-fit scheduler: feasible iff
// predicted_cpu + pod.request.cpu <= cpu_budget * capacity, memory is
// request-based; picks the feasible host with the least remaining budget
// ("minimum available resources that can fit the pod", §3.2).
class PredictorBestFit : public PlacementPolicy {
 public:
  PredictorBestFit(std::unique_ptr<UsagePredictor> predictor, std::string policy_name,
                   double cpu_budget, double overcommit_cap, BaselineOptions options);

  PlacementDecision Place(const PodSpec& pod, const AppProfile& app,
                          const ClusterState& cluster) override;
  // As AlibabaBaseline::AttachSinks; score = negated best-fit headroom of
  // the chosen host (larger is tighter fit).
  void AttachSinks(const obs::Sinks& sinks) override {
    PlacementPolicy::AttachSinks(sinks);
    span_log_ = sinks.span_log;
  }
  std::string name() const override { return name_; }

 private:
  std::unique_ptr<UsagePredictor> predictor_;
  std::string name_;
  double cpu_budget_;      // fraction of capacity usable by predicted usage
  double overcommit_cap_;  // max sum(requests)/capacity; <=0 disables
  BaselineOptions options_;
  Rng rng_;
  obs::SpanLog* span_log_ = nullptr;
};

// Factory helpers with the paper's parameterizations.
std::unique_ptr<PlacementPolicy> MakeBorgLike(BaselineOptions options = {});
std::unique_ptr<PlacementPolicy> MakeNSigmaScheduler(BaselineOptions options = {});
std::unique_ptr<PlacementPolicy> MakeResourceCentralLike(BaselineOptions options = {});

}  // namespace optum

#endif  // OPTUM_SRC_SCHED_BASELINES_H_
