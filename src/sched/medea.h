// Medea [Garefalakis et al., EuroSys'18] baseline: long-running pods are
// placed by an ILP-based scheduler (batched, solved exactly by branch and
// bound over a bounded sub-problem of <= 40 hosts x 15 pods, paper §5.1);
// short-running (BE) pods go through a traditional low-latency best-fit
// scheduler.
#ifndef OPTUM_SRC_SCHED_MEDEA_H_
#define OPTUM_SRC_SCHED_MEDEA_H_

#include <unordered_map>
#include <vector>

#include "src/sched/common.h"
#include "src/sim/placement_policy.h"
#include "src/solver/assignment_solver.h"
#include "src/stats/rng.h"

namespace optum {

struct MedeaOptions {
  size_t max_hosts = 40;    // ILP sub-problem width
  size_t max_pods = 15;     // ILP batch size
  Tick max_batch_delay = 1;  // force a solve after this many ticks
  double mem_guard = 1.0;
  int64_t node_budget = 200'000;
  uint64_t seed = 23;
};

class Medea : public PlacementPolicy {
 public:
  explicit Medea(MedeaOptions options = {});

  PlacementDecision Place(const PodSpec& pod, const AppProfile& app,
                          const ClusterState& cluster) override;
  std::string name() const override { return "Medea"; }

  // Exposed for the overhead bench: solves one ILP batch immediately.
  void SolveBatch(const ClusterState& cluster);

 private:
  struct BatchEntry {
    PodSpec pod;
    Tick added_at = 0;
  };

  PlacementDecision PlaceShortRunning(const PodSpec& pod, const ClusterState& cluster);
  bool Fits(const PodSpec& pod, const Host& host) const;

  MedeaOptions options_;
  Rng rng_;
  std::vector<BatchEntry> batch_;
  std::unordered_map<PodId, HostId> solved_;
};

}  // namespace optum

#endif  // OPTUM_SRC_SCHED_MEDEA_H_
