#include "src/serve/admission_queue.h"

#include <algorithm>

#include "src/common/check.h"

namespace optum::serve {

AdmissionQueue::AdmissionQueue(size_t capacity_per_shard, size_t num_shards)
    : shards_(num_shards), capacity_per_shard_(capacity_per_shard) {
  OPTUM_CHECK_GT(num_shards, 0u);
  OPTUM_CHECK_GT(capacity_per_shard, 0u);
}

bool AdmissionQueue::Offer(ServePod* pod) {
  ++stats_.offered;
  auto& shard = shards_[ShardOf(*pod)];
  if (shard.size() >= capacity_per_shard_) {
    ++stats_.rejected_full;
    return false;
  }
  shard.push_back(pod);
  ++stats_.admitted;
  NotePeak();
  return true;
}

void AdmissionQueue::Requeue(ServePod* pod) {
  shards_[ShardOf(*pod)].push_back(pod);
  ++stats_.requeued;
  NotePeak();
}

size_t AdmissionQueue::PopBatch(size_t max_pods, std::vector<ServePod*>* out) {
  size_t popped = 0;
  while (popped < max_pods && !empty()) {
    auto& shard = shards_[cursor_];
    cursor_ = (cursor_ + 1) % shards_.size();
    if (shard.empty()) {
      continue;
    }
    out->push_back(shard.front());
    shard.pop_front();
    ++popped;
  }
  return popped;
}

size_t AdmissionQueue::depth() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.size();
  }
  return total;
}

void AdmissionQueue::NotePeak() {
  stats_.peak_depth = std::max(stats_.peak_depth, depth());
}

}  // namespace optum::serve
