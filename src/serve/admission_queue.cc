#include "src/serve/admission_queue.h"

#include <algorithm>

#include "src/common/check.h"

namespace optum::serve {

AdmissionQueue::AdmissionQueue(size_t capacity_per_shard, size_t num_shards)
    : shards_(num_shards), capacity_per_shard_(capacity_per_shard) {
  OPTUM_CHECK_GT(num_shards, 0u);
  OPTUM_CHECK_GT(capacity_per_shard, 0u);
}

bool AdmissionQueue::Offer(ServePod* pod) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shards_[ShardOf(*pod)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.queue.size() >= capacity_per_shard_) {
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    shard.queue.push_back(pod);
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  NotePeak(depth_.fetch_add(1, std::memory_order_relaxed) + 1);
  return true;
}

void AdmissionQueue::Requeue(ServePod* pod) {
  Shard& shard = shards_[ShardOf(*pod)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.queue.push_back(pod);
  }
  requeued_.fetch_add(1, std::memory_order_relaxed);
  NotePeak(depth_.fetch_add(1, std::memory_order_relaxed) + 1);
}

size_t AdmissionQueue::PopBatch(size_t max_pods, std::vector<ServePod*>* out) {
  size_t popped = 0;
  // `empty()` is a racy read under concurrent Offer, but only in the safe
  // direction: a pod offered mid-drain is picked up next call.
  while (popped < max_pods && !empty()) {
    Shard& shard = shards_[cursor_];
    cursor_ = (cursor_ + 1) % shards_.size();
    ServePod* pod = nullptr;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.queue.empty()) {
        continue;
      }
      pod = shard.queue.front();
      shard.queue.pop_front();
    }
    depth_.fetch_sub(1, std::memory_order_relaxed);
    out->push_back(pod);
    ++popped;
  }
  return popped;
}

size_t AdmissionQueue::shard_depth(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard].mu);
  return shards_[shard].queue.size();
}

AdmissionStats AdmissionQueue::stats() const {
  AdmissionStats s;
  s.offered = offered_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.requeued = requeued_.load(std::memory_order_relaxed);
  s.peak_depth = peak_depth_.load(std::memory_order_relaxed);
  return s;
}

void AdmissionQueue::NotePeak(size_t depth_now) {
  size_t peak = peak_depth_.load(std::memory_order_relaxed);
  while (depth_now > peak &&
         !peak_depth_.compare_exchange_weak(peak, depth_now,
                                            std::memory_order_relaxed)) {
  }
}

}  // namespace optum::serve
