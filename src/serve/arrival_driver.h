// Open-loop arrival driver for the placement service (DESIGN.md §12).
//
// Replays the application population of a generated Workload as an
// open-loop pod-arrival stream at a configurable offered load: arrivals
// keep coming at the configured rate whether or not the service keeps up —
// the property that makes placement latency under load measurable at all
// (a closed-loop driver self-throttles and only ever reports throughput).
//
// Two arrival processes, both exact and deterministic per seed:
//   * kPoisson — homogeneous Poisson at offered_pods_per_sec. Per-round
//     counts are drawn by summing unit-exponential gaps until they exceed
//     the round's expected arrivals, which is numerically stable for any
//     rate (no exp(-lambda) underflow at thousands of pods per second).
//   * kDiurnal — nonhomogeneous Poisson whose rate follows the same
//     DiurnalPattern shape the workload generator gives LS QPS (paper
//     Fig. 3b), normalized so offered_pods_per_sec stays the mean rate
//     across a day. The modulation is stepwise-constant per round.
//
// Pods cycle deterministically through the workload's schedulable
// applications (BE/LS/LSR — the classes that flow through the scheduler hot
// path), so the stream exercises the same profiles the service's shards
// were trained on.
#ifndef OPTUM_SRC_SERVE_ARRIVAL_DRIVER_H_
#define OPTUM_SRC_SERVE_ARRIVAL_DRIVER_H_

#include <cstdint>
#include <vector>

#include "src/stats/patterns.h"
#include "src/stats/rng.h"
#include "src/trace/workload_generator.h"

namespace optum::serve {

enum class ArrivalProcess : uint8_t {
  kPoisson = 0,
  kDiurnal,
};

const char* ToString(ArrivalProcess process);

struct ArrivalConfig {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  // Mean offered load. For kDiurnal this is the day-average rate; the
  // instantaneous rate swings between roughly floor/mean and 2/(1+floor)
  // times it.
  double offered_pods_per_sec = 100.0;
  // Model-time length of one service round; arrivals per round average
  // offered_pods_per_sec * round_seconds.
  double round_seconds = 1.0;
  // Trough-to-peak ratio of the diurnal modulation (generator default 0.4).
  double diurnal_floor = 0.4;
  uint64_t seed = 17;
};

class ArrivalDriver {
 public:
  // The workload supplies the application population; it must outlive the
  // driver. Requires at least one schedulable (BE/LS/LSR) application.
  ArrivalDriver(const Workload& workload, ArrivalConfig config);

  // Appends this round's arrivals to *out as fully formed PodSpecs with
  // submit_tick = round and monotonically increasing ids (starting at 0).
  // Returns the number appended. Rounds must be fed in nondecreasing order
  // for the diurnal phase to be meaningful, but each call draws only from
  // the driver's own stream, so equal configs replay identical streams.
  size_t EmitRound(int64_t round, std::vector<PodSpec>* out);

  // Expected arrivals per second during `round` (the stepwise rate the
  // Poisson draw uses).
  double RoundRate(int64_t round) const;

  int64_t pods_emitted() const { return next_id_; }
  const ArrivalConfig& config() const { return config_; }

 private:
  const Workload& workload_;
  ArrivalConfig config_;
  std::vector<const AppProfile*> catalog_;
  DiurnalPattern pattern_;
  double pattern_mean_;  // day-average of the pattern, for normalization
  Rng rng_;
  PodId next_id_ = 0;
};

// Exact Poisson(lambda) draw via unit-exponential gap summation: the count
// of renewals before the cumulative gap exceeds lambda. O(lambda) time,
// stable for large lambda. Exposed for tests.
int64_t PoissonDraw(Rng& rng, double lambda);

}  // namespace optum::serve

#endif  // OPTUM_SRC_SERVE_ARRIVAL_DRIVER_H_
