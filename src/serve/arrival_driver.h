// Open-loop arrival driver for the placement service (DESIGN.md §12).
//
// Replays the application population of a generated Workload as an
// open-loop pod-arrival stream at a configurable offered load: arrivals
// keep coming at the configured rate whether or not the service keeps up —
// the property that makes placement latency under load measurable at all
// (a closed-loop driver self-throttles and only ever reports throughput).
//
// Two arrival processes, both exact and deterministic per seed:
//   * kPoisson — homogeneous Poisson at offered_pods_per_sec. Per-round
//     counts are drawn by summing unit-exponential gaps until they exceed
//     the round's expected arrivals, which is numerically stable for any
//     rate (no exp(-lambda) underflow at thousands of pods per second).
//   * kDiurnal — nonhomogeneous Poisson whose rate follows the same
//     DiurnalPattern shape the workload generator gives LS QPS (paper
//     Fig. 3b), normalized so offered_pods_per_sec stays the mean rate
//     across a day. The modulation is stepwise-constant per round.
//
// Pods cycle deterministically through the workload's schedulable
// applications (BE/LS/LSR — the classes that flow through the scheduler hot
// path), so the stream exercises the same profiles the service's shards
// were trained on.
#ifndef OPTUM_SRC_SERVE_ARRIVAL_DRIVER_H_
#define OPTUM_SRC_SERVE_ARRIVAL_DRIVER_H_

#include <cstdint>
#include <vector>

#include "src/stats/patterns.h"
#include "src/stats/rng.h"
#include "src/trace/workload_generator.h"

namespace optum::serve {

enum class ArrivalProcess : uint8_t {
  kPoisson = 0,
  kDiurnal,
};

const char* ToString(ArrivalProcess process);

struct ArrivalConfig {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  // Mean offered load. For kDiurnal this is the day-average rate; the
  // instantaneous rate swings between roughly floor/mean and 2/(1+floor)
  // times it.
  double offered_pods_per_sec = 100.0;
  // Model-time length of one service round; arrivals per round average
  // offered_pods_per_sec * round_seconds.
  double round_seconds = 1.0;
  // Trough-to-peak ratio of the diurnal modulation (generator default 0.4).
  double diurnal_floor = 0.4;
  uint64_t seed = 17;

  // Anomaly-storm overlay (correlated arrival spikes, the hotspot-inducing
  // scenario of the Ren et al. anomaly study in PAPERS.md). Every
  // burst_interval_rounds-wide window contains exactly one storm of
  // burst_duration_rounds rounds during which the base rate is multiplied
  // by burst_amplitude; the storm's offset inside its window is a hash of
  // (burst_seed, window index), so storm placement is a pure function of
  // the round — RoundRate stays side-effect-free and equal configs replay
  // identical storm schedules. Disabled unless amplitude > 0 and both
  // duration and interval are positive (duration <= interval required).
  double burst_amplitude = 0.0;
  int64_t burst_duration_rounds = 0;
  int64_t burst_interval_rounds = 0;
  uint64_t burst_seed = 1031;

  bool burst_enabled() const {
    return burst_amplitude > 0.0 && burst_duration_rounds > 0 &&
           burst_interval_rounds > 0;
  }
};

class ArrivalDriver {
 public:
  // The workload supplies the application population; it must outlive the
  // driver. Requires at least one schedulable (BE/LS/LSR) application.
  ArrivalDriver(const Workload& workload, ArrivalConfig config);

  // Appends this round's arrivals to *out as fully formed PodSpecs with
  // submit_tick = round and monotonically increasing ids (starting at 0).
  // Returns the number appended. Rounds must be fed in nondecreasing order
  // for the diurnal phase to be meaningful, but each call draws only from
  // the driver's own stream, so equal configs replay identical streams.
  size_t EmitRound(int64_t round, std::vector<PodSpec>* out);

  // Expected arrivals per second during `round` (the stepwise rate the
  // Poisson draw uses), including the storm overlay when one is active.
  double RoundRate(int64_t round) const;

  // True when the burst overlay is enabled and `round` falls inside its
  // window's storm. Pure function of (config, round); exposed for tests and
  // telemetry.
  bool InBurst(int64_t round) const;

  int64_t pods_emitted() const { return next_id_; }
  const ArrivalConfig& config() const { return config_; }

 private:
  const Workload& workload_;
  ArrivalConfig config_;
  std::vector<const AppProfile*> catalog_;
  DiurnalPattern pattern_;
  double pattern_mean_;  // day-average of the pattern, for normalization
  Rng rng_;
  PodId next_id_ = 0;
};

// Exact Poisson(lambda) draw via unit-exponential gap summation: the count
// of renewals before the cumulative gap exceeds lambda. O(lambda) time,
// stable for large lambda. Exposed for tests.
int64_t PoissonDraw(Rng& rng, double lambda);

// Injects the anomaly-storm overlay into a generated simulator workload:
// appends extra pod arrivals (one driver round per tick) during storm
// windows only, at burst_amplitude x offered_pods_per_sec, with fresh dense
// ids continuing the workload's sequence and behaviors drawn from the burst
// seed. `cpu_scale` inflates each storm pod's CPU demand behavior beyond
// its application profile — the anomaly the Ren et al. study observes
// (crash loops, hot partitions): requests and the trained usage model stay
// calm-shaped, so the Eq. 6 gate admits the pods and the colocated hosts'
// demand, not their requests, is what spikes. With cpu_scale = 1 the
// overlay is a pure arrival surge, which an admission-gated scheduler
// absorbs into queueing delay instead of host pressure. Pods stay sorted by
// submit_tick. Returns the number of pods added. Requires
// config.burst_enabled(); this is the `runsim --burst-*` path — the
// open-loop service instead feeds the driver round-by-round.
int64_t AppendStormOverlay(const ArrivalConfig& config, Tick horizon,
                           double cpu_scale, Workload* workload);

}  // namespace optum::serve

#endif  // OPTUM_SRC_SERVE_ARRIVAL_DRIVER_H_
