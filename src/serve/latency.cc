#include "src/serve/latency.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/obs/json_writer.h"
#include "src/obs/schema.h"

namespace optum::serve {

ExactLatencyRing::ExactLatencyRing(size_t capacity)
    : ring_(std::max<size_t>(1, capacity)) {}

void ExactLatencyRing::Record(double v) {
  ring_[next_] = v;
  next_ = (next_ + 1) % ring_.size();
  size_ = std::min(size_ + 1, ring_.size());
  ++total_;
}

double ExactLatencyRing::Percentile(double q) const {
  if (size_ == 0) {
    return 0.0;
  }
  sorted_scratch_.assign(ring_.begin(), ring_.begin() + static_cast<long>(size_));
  std::sort(sorted_scratch_.begin(), sorted_scratch_.end());
  const double fraction = std::clamp(q, 0.0, 100.0) / 100.0;
  const size_t rank = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(fraction * static_cast<double>(size_))));
  return sorted_scratch_[std::min(rank, size_) - 1];
}

LatencyHistogram::LatencyHistogram(Options options) : options_(options) {
  OPTUM_CHECK_GT(options_.min_value, 0.0);
  OPTUM_CHECK_GT(options_.growth, 1.0);
  OPTUM_CHECK_GE(options_.num_buckets, 1u);
  inv_log_growth_ = 1.0 / std::log(options_.growth);
  buckets_.assign(options_.num_buckets + 2, 0);
}

size_t LatencyHistogram::BucketIndex(double v) const {
  if (!(v >= options_.min_value)) {  // negatives, zero, sub-min, NaN-safe
    return 0;
  }
  const double offset = std::log(v / options_.min_value) * inv_log_growth_;
  const auto bucket = static_cast<size_t>(offset) + 1;  // floor + 1
  return std::min(bucket, options_.num_buckets + 1);
}

void LatencyHistogram::Record(double v) {
  if (std::isnan(v)) {
    return;
  }
  ++buckets_[BucketIndex(v)];
  ++count_;
  max_recorded_ = count_ == 1 ? v : std::max(max_recorded_, v);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  OPTUM_CHECK(options_.min_value == other.options_.min_value &&
              options_.growth == other.options_.growth &&
              options_.num_buckets == other.options_.num_buckets);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    max_recorded_ =
        count_ > 0 ? std::max(max_recorded_, other.max_recorded_) : other.max_recorded_;
  }
  count_ += other.count_;
}

double LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  const double fraction = std::clamp(q, 0.0, 100.0) / 100.0;
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(fraction * static_cast<double>(count_))));
  int64_t cumulative = 0;
  size_t bucket = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      bucket = i;
      break;
    }
  }
  if (bucket == 0) {
    return 0.0;  // underflow: abs error <= min_value by contract
  }
  if (bucket == options_.num_buckets + 1) {
    // Overflow: clamp to the range edge (documented underestimate).
    return options_.min_value *
           std::pow(options_.growth, static_cast<double>(options_.num_buckets));
  }
  // Geometric midpoint of [min * g^(b-1), min * g^b).
  return options_.min_value *
         std::pow(options_.growth, static_cast<double>(bucket) - 0.5);
}

std::string RenderLatencyHeader() {
  obs::JsonWriter w;
  w.BeginObject();
  w.KV("schema", obs::kLatencySchema);
  w.KV("unit", "seconds");
  w.EndObject();
  return w.str();
}

std::string RenderLatencyRow(const LatencyRow& row) {
  obs::JsonWriter w;
  w.BeginObject();
  w.KV("hosts", static_cast<int64_t>(row.hosts));
  w.KV("shards", static_cast<uint64_t>(row.shards));
  w.KV("offered_pods_per_sec", row.offered_pods_per_sec);
  w.KV("process", row.process);
  w.KV("rounds", row.rounds);
  w.KV("round_seconds", row.round_seconds);
  w.KV("arrivals", row.arrivals);
  w.KV("admitted", row.admitted);
  w.KV("rejected_full", row.rejected_full);
  w.KV("placed", row.placed);
  w.KV("dropped", row.dropped);
  w.KV("conflicts", row.conflicts);
  w.KV("latency_s_p50", row.latency_s_p50);
  w.KV("latency_s_p99", row.latency_s_p99);
  w.KV("latency_s_p999", row.latency_s_p999);
  w.KV("latency_s_max", row.latency_s_max);
  w.KV("latency_s_mean", row.latency_s_mean);
  w.EndObject();
  return w.str();
}

void FillLatencyPercentiles(const LatencyHistogram& merged, double mean_seconds,
                            LatencyRow* row) {
  row->latency_s_p50 = merged.Percentile(50.0);
  row->latency_s_p99 = merged.Percentile(99.0);
  row->latency_s_p999 = merged.Percentile(99.9);
  row->latency_s_max = merged.max_recorded();
  row->latency_s_mean = mean_seconds;
}

}  // namespace optum::serve
