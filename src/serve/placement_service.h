// Long-lived open-loop placement service (DESIGN.md §12): the layer that
// turns the batch-oriented DistributedCoordinator into a running service.
//
//   ArrivalDriver → AdmissionQueue → coordinator shards → §4.4 conflict
//   round → commit into ClusterState → latency percentiles + span log
//
// Time advances in *rounds*: one round = ArrivalConfig::round_seconds of
// model time, and the cluster clock ticks once per round (in this layer one
// tick == one round, unlike the simulator's fixed 30 s ticks). Every
// latency is derived from round arithmetic — placement latency of a pod is
// (placed_round - submit_round) * round_seconds — so all exported rows are
// bit-deterministic for a given config: independent of wall-clock, of
// OptumConfig::num_threads inside the shards (scoring is bit-identical
// across thread counts), and of the shard-histogram merge order.
//
// Each service round:
//   1. arrivals  — the open-loop driver emits this round's pods; each is
//      offered to the bounded admission queue (rejection = backpressure,
//      counted, never blocks the driver — that is what keeps the loop open).
//      With ServeConfig::ingest_threads == 1 the emission runs on a
//      producer thread during the previous round and is applied at a
//      hand-off barrier here — same offers, same spans, same counters.
//   2. schedule  — up to max_schedule_per_round pods pop round-robin across
//      queue shards and go through one DistributedCoordinator batch
//      (parallel shard decisions, serial conflict resolution). Winners
//      commit into the cluster and record their latency; losers requeue
//      until their cross-round requeue budget runs out, then drop. With
//      ServeConfig::pipeline_depth > 1 each shard additionally keeps its
//      next head pods speculatively scored against an epoch-snapshotted
//      host view (DESIGN.md §12) — bit-identical decisions, fewer fresh
//      evaluations per round.
//   3. departures — pods whose exponential residency expired free their
//      hosts. Residency is drawn from a per-pod-id-seeded stream, so depart
//      rounds are identical regardless of placement order or shard count.
#ifndef OPTUM_SRC_SERVE_PLACEMENT_SERVICE_H_
#define OPTUM_SRC_SERVE_PLACEMENT_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "src/core/distributed.h"
#include "src/obs/pressure.h"
#include "src/obs/timeseries.h"
#include "src/serve/admission_queue.h"
#include "src/serve/arrival_driver.h"
#include "src/serve/latency.h"
#include "src/sim/cluster.h"

namespace optum::serve {

struct ServeConfig {
  ArrivalConfig arrival;
  // Shard fleet: distributed.num_schedulers is also the admission-queue
  // shard count, so queue partitioning matches scheduler ownership.
  core::DistributedConfig distributed;
  // Conflict-round pipelining depth (DESIGN.md §12): with depth D > 1 each
  // coordinator shard keeps up to D-1 future head pods speculatively scored
  // against an epoch-snapshotted host view while the serial resolver
  // commits the current round. Rows, placed sets, and SLO counters are
  // bit-identical for every depth; depth 1 is the classic serial loop.
  // Forwarded into distributed.pipeline_depth (the larger of the two wins).
  size_t pipeline_depth = 1;
  // Ingest threads: 1 moves arrival generation onto a producer thread that
  // pre-builds the next round's pods while the current round schedules, and
  // applies them (pod registration, submitted spans, queue offers) at a
  // hand-off barrier — so backpressure decisions and every exported row
  // stay bit-identical to inline ingest (0). The Poisson arrival stream is
  // a single serial rng, so at most one ingest thread is supported.
  size_t ingest_threads = 0;
  // Bounded ingest: Offer() rejects once a shard's sub-queue holds this many.
  size_t queue_capacity_per_shard = 4096;
  // Service-rate cap: pods handed to the coordinator per round. Offered
  // load above this builds queue depth — the regime where tail latency
  // becomes interesting.
  size_t max_schedule_per_round = 512;
  // Cross-round retries for a pod the coordinator returned unplaced (its
  // own intra-batch attempts are separate); exhausted ⇒ dropped.
  int max_requeues = 8;
  // Mean pod residency in rounds (exponential); 0 = pods never depart.
  double mean_residency_rounds = 0.0;
  uint64_t residency_seed = 97;
  // Streaming estimator shape (one histogram per shard, merged on export).
  LatencyHistogram::Options latency;
  // Side-by-side exact ring for tests; leave off for long runs.
  bool keep_exact_latencies = false;
  size_t exact_capacity = 1 << 16;
};

struct ServeCounters {
  int64_t rounds = 0;
  int64_t arrivals = 0;         // pods emitted by the driver
  int64_t placed = 0;
  int64_t dropped = 0;          // requeue budget exhausted
  int64_t departed = 0;
  int64_t conflicts = 0;        // §4.4 re-dispatches across all batches
  int64_t schedule_rounds = 0;  // coordinator conflict rounds used
};

class PlacementService {
 public:
  // `workload` supplies the application population (the same one `profiles`
  // was trained on); `cluster` is the fleet the service places into. Both
  // must outlive the service.
  PlacementService(const Workload& workload, const core::OptumProfiles& profiles,
                   ClusterState* cluster, ServeConfig config);

  // Runs `rounds` full service rounds (arrivals + scheduling + departures).
  void RunRounds(int64_t rounds);

  // Runs arrival-free rounds until the admission queue is empty (shutdown
  // semantics: stop ingesting, finish or drop everything in flight).
  // Terminates because the requeue budget bounds every pod's retries.
  // Returns the number of drain rounds used.
  int64_t Drain();

  const ServeCounters& counters() const { return counters_; }
  AdmissionStats admission_stats() const { return queue_.stats(); }
  int64_t round() const { return round_; }
  size_t queue_depth() const { return queue_.depth(); }

  // Per-shard streaming estimators (shard = pod id % num_shards) and their
  // merge. Merging is commutative/associative integer addition, so the
  // merged percentiles are identical for every shard order.
  const LatencyHistogram& shard_latency(size_t shard) const {
    return shard_latency_[shard];
  }
  size_t num_shards() const { return shard_latency_.size(); }
  LatencyHistogram MergedLatency() const;
  // Non-null only with ServeConfig::keep_exact_latencies.
  const ExactLatencyRing* exact_latencies() const { return exact_.get(); }

  // Ids of every pod placed so far, ascending. The cross-thread/shard
  // invariance tests compare these sets directly.
  std::vector<PodId> PlacedPodIds() const;

  // One optum.latency.v1 row describing the run so far.
  LatencyRow MakeLatencyRow() const;

  // Unified sink attach (obs::Sinks contract). Adopts:
  //   * sinks.metrics — serve.* counters (arrivals/admitted/rejected/
  //     placed/dropped/departed, lane 0 — the round loop is serial) plus
  //     the coordinator's dist.* and per-shard metrics.
  //   * sinks.span_log — the service appends submitted spans for arrivals
  //     and finished spans for departures; the coordinator appends placed
  //     (with wait_ticks in rounds) and conflict_retried. With ingest
  //     threads, submitted spans are appended by the producer strictly
  //     while the round loop is parked at the hand-off barrier, honoring
  //     the SpanLog serial contract.
  //   * sinks.series — streaming gauge series, sampled once per round after
  //     the pressure gauges update (requires sinks.metrics).
  //   * sinks.profile — phase-level round profiler (DESIGN.md §14). The
  //     round loop times arrivals (ingest_wait — the whole step, inline
  //     emit or hand-off barrier wait alike, so the scope count is one per
  //     arrivals round regardless of ingest_threads), departures (folded
  //     into commit), and the pressure/series sweep (pressure_sweep), all
  //     at lane 0; the coordinator times the barrier phases per shard lane
  //     and closes each conflict round. The caller owns the profiler and
  //     calls Finalize() on it after the last round.
  // Other fields are ignored here (attach a decision log per shard via
  // coordinator().shard(i) — which also disables that shard's speculation —
  // and a hotspot log via the pressure monitor). Fields left nullptr
  // detach.
  void AttachSinks(const obs::Sinks& sinks);

  // Host-pressure monitor (DESIGN.md §13; nullptr detaches). At the end of
  // every round the service feeds each host — in id order, on the serial
  // round loop — its request-based utilization, the shard-0 predictor's
  // resident-interference estimate (mean RI per LS/LSR pod, lane 0; key-pure
  // caches keep it bit-identical across shard_num_threads), and the resident
  // class counts. serve.pressure.* / serve.slo.* gauges come from the
  // monitor's AttachSinks; the caller owns the monitor and calls Finalize()
  // on it after the last round.
  void set_pressure_monitor(obs::HostPressureMonitor* monitor) {
    pressure_ = monitor;
  }

  core::DistributedCoordinator& coordinator() { return coordinator_; }

  const ArrivalDriver& driver() const { return driver_; }

 private:
  void RunRound(bool with_arrivals);
  void RecordPlacement(const core::ScheduleProposal& winner);
  void ProcessDepartures();
  void SamplePressure();
  // Registers one round's arrivals: pod storage, submitted spans, queue
  // offers, counters. Called inline (ingest_threads == 0) or by the ingest
  // producer while the round loop is parked at the barrier.
  void ApplyArrivals(int64_t round, const std::vector<PodSpec>& specs);
  // Producer body for rounds [first, last]: pre-generates round r+1's
  // arrivals while the consumer schedules round r, applies them once the
  // consumer opens round r+1's barrier, then signals readiness.
  void IngestLoop(int64_t first, int64_t last);

  const Workload& workload_;
  ClusterState* cluster_;
  ServeConfig config_;
  ArrivalDriver driver_;
  core::DistributedCoordinator coordinator_;
  AdmissionQueue queue_;

  // Pod storage: deque keeps addresses stable; ids are dense from 0, so
  // pods_by_id_[id] is the lookup the commit callback uses.
  std::deque<ServePod> pods_;
  std::vector<ServePod*> pods_by_id_;

  // Departure schedule ordered by (depart_round, pod id) — deterministic.
  using Departure = std::pair<int64_t, PodId>;
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>>
      departures_;

  std::vector<LatencyHistogram> shard_latency_;
  std::unique_ptr<ExactLatencyRing> exact_;
  double latency_seconds_sum_ = 0.0;

  ServeCounters counters_;
  int64_t round_ = -1;  // last completed round; first RunRound executes 0

  // Scratch reused across rounds.
  std::vector<PodSpec> arrival_scratch_;
  std::vector<ServePod*> batch_scratch_;
  std::vector<const PodSpec*> spec_scratch_;

  // Ingest hand-off state (ingest_threads == 1). The consumer publishes
  // `allow` (arrivals for rounds <= allow may be applied) and waits for
  // `ready` (arrivals through this round are applied); the producer applies
  // a round's arrivals only inside that window, while the consumer is
  // parked — so all shared mutation is barrier-serialized and every
  // counter, span, and backpressure decision lands exactly as inline
  // ingest would order it.
  bool ingest_active_ = false;  // consumer-owned
  std::mutex ingest_mu_;
  std::condition_variable ingest_cv_;
  int64_t ingest_allow_ = -1;  // guarded by ingest_mu_
  int64_t ingest_ready_ = -1;  // guarded by ingest_mu_

  obs::Sinks sinks_;
  obs::SpanLog* span_log_ = nullptr;
  obs::HostPressureMonitor* pressure_ = nullptr;
  obs::TimeSeriesRecorder* series_ = nullptr;
  obs::RoundProfiler* profiler_ = nullptr;
  obs::Counter* arrivals_counter_ = nullptr;
  obs::Counter* admitted_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Counter* placed_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* departed_counter_ = nullptr;
};

}  // namespace optum::serve

#endif  // OPTUM_SRC_SERVE_PLACEMENT_SERVICE_H_
