#include "src/serve/arrival_driver.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace optum::serve {

const char* ToString(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kDiurnal:
      return "diurnal";
  }
  return "unknown";
}

int64_t PoissonDraw(Rng& rng, double lambda) {
  if (!(lambda > 0.0)) {
    return 0;
  }
  // Renewals of a unit-rate exponential process in [0, lambda): the count k
  // with S_k < lambda <= S_{k+1} is Poisson(lambda)-distributed.
  double cumulative = 0.0;
  int64_t count = -1;
  while (cumulative < lambda) {
    cumulative += rng.Exponential(1.0);
    ++count;
  }
  return count;
}

ArrivalDriver::ArrivalDriver(const Workload& workload, ArrivalConfig config)
    : workload_(workload),
      config_(config),
      catalog_(SchedulableApps(workload)),
      pattern_(config.diurnal_floor, /*phase_fraction=*/0.0),
      rng_(config.seed) {
  OPTUM_CHECK_MSG(!catalog_.empty(),
                  "ArrivalDriver needs at least one BE/LS/LSR application");
  OPTUM_CHECK_GT(config_.offered_pods_per_sec, 0.0);
  OPTUM_CHECK_GT(config_.round_seconds, 0.0);
  if (config_.burst_enabled()) {
    OPTUM_CHECK_MSG(config_.burst_duration_rounds <= config_.burst_interval_rounds,
                    "ArrivalDriver: storm duration must fit its window");
  }
  // Normalize the diurnal modulation empirically so offered_pods_per_sec is
  // the mean rate regardless of the pattern's exact shape.
  double sum = 0.0;
  for (Tick t = 0; t < kTicksPerDay; ++t) {
    sum += pattern_.At(t);
  }
  pattern_mean_ = sum / static_cast<double>(kTicksPerDay);
}

bool ArrivalDriver::InBurst(int64_t round) const {
  if (!config_.burst_enabled() || round < 0) {
    return false;
  }
  const int64_t window = round / config_.burst_interval_rounds;
  // One deterministic draw per window: the storm's start offset within it.
  Rng window_rng(config_.burst_seed +
                 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(window) + 1));
  const int64_t offset = static_cast<int64_t>(window_rng.NextBelow(
      static_cast<uint64_t>(config_.burst_interval_rounds -
                            config_.burst_duration_rounds + 1)));
  const int64_t position = round - window * config_.burst_interval_rounds;
  return position >= offset && position < offset + config_.burst_duration_rounds;
}

double ArrivalDriver::RoundRate(int64_t round) const {
  double rate = config_.offered_pods_per_sec;
  if (config_.process == ArrivalProcess::kDiurnal) {
    const Tick tick = static_cast<Tick>(
        static_cast<double>(round) * config_.round_seconds / kSecondsPerTick);
    rate *= pattern_.At(tick) / pattern_mean_;
  }
  if (InBurst(round)) {
    rate *= config_.burst_amplitude;
  }
  return rate;
}

size_t ArrivalDriver::EmitRound(int64_t round, std::vector<PodSpec>* out) {
  const double lambda = RoundRate(round) * config_.round_seconds;
  const int64_t count = PoissonDraw(rng_, lambda);
  for (int64_t i = 0; i < count; ++i) {
    const AppProfile& app =
        *catalog_[static_cast<size_t>(next_id_) % catalog_.size()];
    out->push_back(MakePodSpec(next_id_, app, /*submit_tick=*/round));
    ++next_id_;
  }
  return static_cast<size_t>(count);
}

int64_t AppendStormOverlay(const ArrivalConfig& config, Tick horizon,
                           double cpu_scale, Workload* workload) {
  OPTUM_CHECK_MSG(config.burst_enabled(),
                  "AppendStormOverlay needs an enabled burst config");
  OPTUM_CHECK_GT(cpu_scale, 0.0);
  ArrivalDriver driver(*workload, config);
  // Behavior draws get their own stream so the overlay's pod mix is a pure
  // function of the burst config, independent of the base workload's seed.
  Rng behavior_rng(config.burst_seed ^ 0x6c62272e07bb0142ULL);
  PodId next_id = 0;
  for (const PodSpec& pod : workload->pods) {
    next_id = std::max(next_id, pod.id + 1);
  }
  std::vector<PodSpec> round;
  int64_t appended = 0;
  for (Tick t = 0; t < horizon; ++t) {
    round.clear();
    driver.EmitRound(t, &round);
    if (!driver.InBurst(t)) {
      continue;  // overlay semantics: extra arrivals in storm windows only
    }
    for (PodSpec pod : round) {
      pod.id = next_id++;
      pod.behavior = SamplePodBehavior(workload->apps[static_cast<size_t>(pod.app)],
                                       behavior_rng);
      // The anomaly: actual CPU demand beyond what the profile (and thus
      // the trained usage predictor) expects. Requests are untouched.
      pod.behavior.cpu_scale *= cpu_scale;
      pod.long_running = pod.slo != SloClass::kBe;
      workload->pods.push_back(pod);
      ++appended;
    }
  }
  std::stable_sort(workload->pods.begin(), workload->pods.end(),
                   [](const PodSpec& a, const PodSpec& b) {
                     return a.submit_tick < b.submit_tick;
                   });
  return appended;
}

}  // namespace optum::serve
