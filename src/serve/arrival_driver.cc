#include "src/serve/arrival_driver.h"

#include <cmath>

#include "src/common/check.h"

namespace optum::serve {

const char* ToString(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kDiurnal:
      return "diurnal";
  }
  return "unknown";
}

int64_t PoissonDraw(Rng& rng, double lambda) {
  if (!(lambda > 0.0)) {
    return 0;
  }
  // Renewals of a unit-rate exponential process in [0, lambda): the count k
  // with S_k < lambda <= S_{k+1} is Poisson(lambda)-distributed.
  double cumulative = 0.0;
  int64_t count = -1;
  while (cumulative < lambda) {
    cumulative += rng.Exponential(1.0);
    ++count;
  }
  return count;
}

ArrivalDriver::ArrivalDriver(const Workload& workload, ArrivalConfig config)
    : workload_(workload),
      config_(config),
      catalog_(SchedulableApps(workload)),
      pattern_(config.diurnal_floor, /*phase_fraction=*/0.0),
      rng_(config.seed) {
  OPTUM_CHECK_MSG(!catalog_.empty(),
                  "ArrivalDriver needs at least one BE/LS/LSR application");
  OPTUM_CHECK_GT(config_.offered_pods_per_sec, 0.0);
  OPTUM_CHECK_GT(config_.round_seconds, 0.0);
  // Normalize the diurnal modulation empirically so offered_pods_per_sec is
  // the mean rate regardless of the pattern's exact shape.
  double sum = 0.0;
  for (Tick t = 0; t < kTicksPerDay; ++t) {
    sum += pattern_.At(t);
  }
  pattern_mean_ = sum / static_cast<double>(kTicksPerDay);
}

double ArrivalDriver::RoundRate(int64_t round) const {
  if (config_.process == ArrivalProcess::kPoisson) {
    return config_.offered_pods_per_sec;
  }
  const Tick tick = static_cast<Tick>(
      static_cast<double>(round) * config_.round_seconds / kSecondsPerTick);
  return config_.offered_pods_per_sec * pattern_.At(tick) / pattern_mean_;
}

size_t ArrivalDriver::EmitRound(int64_t round, std::vector<PodSpec>* out) {
  const double lambda = RoundRate(round) * config_.round_seconds;
  const int64_t count = PoissonDraw(rng_, lambda);
  for (int64_t i = 0; i < count; ++i) {
    const AppProfile& app =
        *catalog_[static_cast<size_t>(next_id_) % catalog_.size()];
    out->push_back(MakePodSpec(next_id_, app, /*submit_tick=*/round));
    ++next_id_;
  }
  return static_cast<size_t>(count);
}

}  // namespace optum::serve
