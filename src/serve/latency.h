// Streaming placement-latency percentile estimation for the open-loop
// placement service (DESIGN.md §12).
//
// Two estimators share one percentile definition — the nearest-rank order
// statistic (k = ceil(q/100 * n), value = k-th smallest) — chosen over the
// linear-interpolated form used elsewhere in src/stats because it is the
// only definition with a provable per-sample error bound under bucketing:
// interpolation across a gap in a bimodal distribution can land arbitrarily
// far from any bucket midpoint, while the k-th order statistic always lives
// in exactly one bucket.
//
//   * ExactLatencyRing keeps the most recent `capacity` samples verbatim and
//     answers percentiles exactly over that window. Tests use it as the
//     ground truth; long service runs leave it detached.
//   * LatencyHistogram is the production estimator: a fixed geometric-bucket
//     histogram (HDR-style) whose state is pure integer counts, so merging
//     per-shard histograms is commutative and associative — percentile rows
//     are bit-identical for every merge order, which the property tests pin.
//
// Error contract of LatencyHistogram::Percentile (value v = true nearest-rank
// order statistic, g = Options::growth):
//   * v in [min_value, min_value * g^num_buckets): the estimate is the
//     geometric midpoint of v's bucket, so  estimate / v ∈ [g^-1/2, g^1/2]
//     — relative error at most sqrt(g) - 1 (~2.5% at the default g = 1.05).
//   * v < min_value (the underflow bucket, including the common
//     zero-queue-wait case): the estimate is exactly 0.0 — absolute error
//     at most min_value.
//   * v >= min_value * g^num_buckets: the estimate clamps to the overflow
//     edge min_value * g^num_buckets (an underestimate; size num_buckets so
//     this never happens for plausible latencies — the default range is
//     [1, 1.05^512) ≈ [1, 7e10) seconds).
#ifndef OPTUM_SRC_SERVE_LATENCY_H_
#define OPTUM_SRC_SERVE_LATENCY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace optum::serve {

// Exact nearest-rank percentiles over a bounded ring of the latest samples.
class ExactLatencyRing {
 public:
  explicit ExactLatencyRing(size_t capacity);

  void Record(double v);

  // Total samples ever recorded (not capped by the ring).
  int64_t count() const { return total_; }
  // Samples currently retained: min(count, capacity).
  size_t retained() const { return size_; }
  size_t capacity() const { return ring_.size(); }

  // Exact nearest-rank percentile over the retained window; q in [0, 100].
  // Returns 0.0 when empty.
  double Percentile(double q) const;

 private:
  std::vector<double> ring_;
  size_t next_ = 0;
  size_t size_ = 0;
  int64_t total_ = 0;
  // Percentile sorts into this scratch so queries allocate only on growth.
  mutable std::vector<double> sorted_scratch_;
};

// Fixed geometric-bucket streaming histogram; O(num_buckets) memory for
// unbounded runs, mergeable across shards (see the error contract above).
class LatencyHistogram {
 public:
  struct Options {
    // Lower edge of the first value bucket; everything below lands in the
    // underflow bucket and is estimated as exactly 0.0.
    double min_value = 1.0;
    // Bucket width ratio; relative error bound is sqrt(growth) - 1.
    double growth = 1.05;
    // Value buckets between underflow and overflow.
    size_t num_buckets = 512;
  };

  LatencyHistogram() : LatencyHistogram(Options()) {}
  explicit LatencyHistogram(Options options);

  // Records one sample. Negative values count as underflow; NaN is dropped.
  void Record(double v);

  // Adds `other`'s counts into this histogram. Both must have been built
  // with identical Options (checked).
  void Merge(const LatencyHistogram& other);

  int64_t count() const { return count_; }
  const Options& options() const { return options_; }

  // Nearest-rank percentile estimate; q in [0, 100]. Returns 0.0 when
  // empty. Derived purely from integer bucket counts, so the result is
  // bit-identical for every shard merge order.
  double Percentile(double q) const;

  // Largest recorded sample (commutative under Merge via max). 0.0 when
  // empty.
  double max_recorded() const { return count_ > 0 ? max_recorded_ : 0.0; }

 private:
  size_t BucketIndex(double v) const;

  Options options_;
  double inv_log_growth_ = 0.0;
  // [0] = underflow, [1 .. num_buckets] = value buckets, [num_buckets + 1]
  // = overflow.
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double max_recorded_ = 0.0;
};

// One exported optum.latency.v1 row: the identity of a service run plus its
// placement-latency percentiles and queue accounting. All latency fields
// are in (model) seconds.
struct LatencyRow {
  int hosts = 0;
  size_t shards = 0;
  double offered_pods_per_sec = 0.0;
  const char* process = "poisson";  // arrival process name
  int64_t rounds = 0;
  double round_seconds = 1.0;
  int64_t arrivals = 0;
  int64_t admitted = 0;
  int64_t rejected_full = 0;  // backpressure: admission queue at capacity
  int64_t placed = 0;
  int64_t dropped = 0;  // requeue budget exhausted
  int64_t conflicts = 0;
  double latency_s_p50 = 0.0;
  double latency_s_p99 = 0.0;
  double latency_s_p999 = 0.0;
  double latency_s_max = 0.0;
  double latency_s_mean = 0.0;
};

// JSONL export: one header line carrying the optum.latency.v1 schema tag,
// then one RenderLatencyRow line per service configuration. Deterministic
// (std::to_chars rendering, no wall-clock fields).
std::string RenderLatencyHeader();
std::string RenderLatencyRow(const LatencyRow& row);

// Fills a row's latency_s_* fields from a merged histogram (p50/p99/p999 /
// max) plus the serially accumulated mean.
void FillLatencyPercentiles(const LatencyHistogram& merged, double mean_seconds,
                            LatencyRow* row);

}  // namespace optum::serve

#endif  // OPTUM_SRC_SERVE_LATENCY_H_
