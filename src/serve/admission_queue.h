// Bounded, sharded admission queue for the placement service
// (DESIGN.md §12).
//
// Arrivals are partitioned across per-shard FIFO sub-queues by pod id, one
// sub-queue per scheduler shard, each with its own capacity — so a burst
// aimed at one shard backpressures that shard without starving the others.
// Offer() is the backpressure point: when the target sub-queue is at
// capacity the pod is rejected (counted, never silently dropped), which is
// the open-loop driver's signal that the fleet is past saturation.
// PopBatch() drains shards round-robin, one pod per shard per step, so a
// deep shard cannot monopolize a scheduling round.
//
// The queue stores raw ServePod pointers; PlacementService owns the pods
// (append-only deque, so addresses are stable for the service's lifetime).
//
// Threading: Offer()/Requeue() may be called from the service's ingest
// thread concurrently with depth()/stats() readers — each sub-queue is
// guarded by its own mutex and every statistic is an atomic, so concurrent
// offers are never lost or double-counted. PopBatch() keeps a single
// consumer: it is safe against concurrent Offer() but must not race another
// PopBatch() (the rotation cursor is consumer-owned). The service's
// hand-off barrier additionally serializes producer and consumer phases,
// which is what keeps admitted/rejected counts and peak depth
// bit-deterministic — the locks guarantee safety for any interleaving, the
// barrier pins down the one interleaving the deterministic rows need.
#ifndef OPTUM_SRC_SERVE_ADMISSION_QUEUE_H_
#define OPTUM_SRC_SERVE_ADMISSION_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "src/trace/app_model.h"

namespace optum {
struct PodRuntime;
}  // namespace optum

namespace optum::serve {

// One pod moving through the service: the spec handed to the schedulers
// plus the lifecycle bookkeeping the service layers on top.
struct ServePod {
  PodSpec spec;
  int64_t submit_round = 0;
  int64_t placed_round = -1;
  int64_t depart_round = -1;  // -1 = still running (or never placed)
  int requeues = 0;           // cross-round placement retries consumed
  PodRuntime* runtime = nullptr;
};

// Point-in-time snapshot of the queue's counters (plain values, safe to
// copy around; taken with relaxed loads — exact once producer and consumer
// are quiesced, e.g. at a round barrier or after a run).
struct AdmissionStats {
  int64_t offered = 0;        // Offer() calls
  int64_t admitted = 0;       // accepted into a sub-queue
  int64_t rejected_full = 0;  // backpressure: target sub-queue at capacity
  int64_t requeued = 0;       // placement retries re-entering the queue
  size_t peak_depth = 0;      // max total depth ever observed
};

class AdmissionQueue {
 public:
  AdmissionQueue(size_t capacity_per_shard, size_t num_shards);

  // Admits the pod into its shard's sub-queue (shard = pod id modulo shard
  // count — deterministic, so replays shard identically). Returns false and
  // counts a rejection when that sub-queue is full. Thread-safe.
  bool Offer(ServePod* pod);

  // Re-enqueues a pod whose placement attempt failed (rejection or lost
  // conflict). Retries are already-admitted work, so they bypass the
  // capacity check — backpressure applies at the front door only; the
  // service bounds retries with its requeue budget instead. Thread-safe.
  void Requeue(ServePod* pod);

  // Pops up to max_pods, round-robin one pod per non-empty shard per step,
  // appending to *out. Returns the number popped. The rotation cursor
  // persists across calls so no shard is structurally favored.
  // Single-consumer: safe against concurrent Offer(), not against a second
  // PopBatch().
  size_t PopBatch(size_t max_pods, std::vector<ServePod*>* out);

  size_t depth() const { return depth_.load(std::memory_order_relaxed); }
  size_t shard_depth(size_t shard) const;
  size_t num_shards() const { return shards_.size(); }
  size_t capacity_per_shard() const { return capacity_per_shard_; }
  bool empty() const { return depth() == 0; }
  AdmissionStats stats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::deque<ServePod*> queue;
  };

  size_t ShardOf(const ServePod& pod) const {
    return static_cast<size_t>(pod.spec.id) % shards_.size();
  }
  void NotePeak(size_t depth_now);

  // Constructed once to the shard count and never resized (Shard holds a
  // mutex, so the vector must not reallocate).
  std::vector<Shard> shards_;
  size_t capacity_per_shard_;
  size_t cursor_ = 0;  // PopBatch rotation; consumer-owned

  std::atomic<size_t> depth_{0};
  std::atomic<int64_t> offered_{0};
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> rejected_full_{0};
  std::atomic<int64_t> requeued_{0};
  std::atomic<size_t> peak_depth_{0};
};

}  // namespace optum::serve

#endif  // OPTUM_SRC_SERVE_ADMISSION_QUEUE_H_
