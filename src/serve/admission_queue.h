// Bounded, sharded admission queue for the placement service
// (DESIGN.md §12).
//
// Arrivals are partitioned across per-shard FIFO sub-queues by pod id, one
// sub-queue per scheduler shard, each with its own capacity — so a burst
// aimed at one shard backpressures that shard without starving the others.
// Offer() is the backpressure point: when the target sub-queue is at
// capacity the pod is rejected (counted, never silently dropped), which is
// the open-loop driver's signal that the fleet is past saturation.
// PopBatch() drains shards round-robin, one pod per shard per step, so a
// deep shard cannot monopolize a scheduling round.
//
// The queue stores raw ServePod pointers; PlacementService owns the pods
// (append-only deque, so addresses are stable for the service's lifetime).
// Everything here runs on the service's serial round loop — no locking.
#ifndef OPTUM_SRC_SERVE_ADMISSION_QUEUE_H_
#define OPTUM_SRC_SERVE_ADMISSION_QUEUE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/trace/app_model.h"

namespace optum {
struct PodRuntime;
}  // namespace optum

namespace optum::serve {

// One pod moving through the service: the spec handed to the schedulers
// plus the lifecycle bookkeeping the service layers on top.
struct ServePod {
  PodSpec spec;
  int64_t submit_round = 0;
  int64_t placed_round = -1;
  int64_t depart_round = -1;  // -1 = still running (or never placed)
  int requeues = 0;           // cross-round placement retries consumed
  PodRuntime* runtime = nullptr;
};

struct AdmissionStats {
  int64_t offered = 0;        // Offer() calls
  int64_t admitted = 0;       // accepted into a sub-queue
  int64_t rejected_full = 0;  // backpressure: target sub-queue at capacity
  int64_t requeued = 0;       // placement retries re-entering the queue
  size_t peak_depth = 0;      // max total depth ever observed
};

class AdmissionQueue {
 public:
  AdmissionQueue(size_t capacity_per_shard, size_t num_shards);

  // Admits the pod into its shard's sub-queue (shard = pod id modulo shard
  // count — deterministic, so replays shard identically). Returns false and
  // counts a rejection when that sub-queue is full.
  bool Offer(ServePod* pod);

  // Re-enqueues a pod whose placement attempt failed (rejection or lost
  // conflict). Retries are already-admitted work, so they bypass the
  // capacity check — backpressure applies at the front door only; the
  // service bounds retries with its requeue budget instead.
  void Requeue(ServePod* pod);

  // Pops up to max_pods, round-robin one pod per non-empty shard per step,
  // appending to *out. Returns the number popped. The rotation cursor
  // persists across calls so no shard is structurally favored.
  size_t PopBatch(size_t max_pods, std::vector<ServePod*>* out);

  size_t depth() const;
  size_t shard_depth(size_t shard) const { return shards_[shard].size(); }
  size_t num_shards() const { return shards_.size(); }
  size_t capacity_per_shard() const { return capacity_per_shard_; }
  bool empty() const { return depth() == 0; }
  const AdmissionStats& stats() const { return stats_; }

 private:
  size_t ShardOf(const ServePod& pod) const {
    return static_cast<size_t>(pod.spec.id) % shards_.size();
  }
  void NotePeak();

  std::vector<std::deque<ServePod*>> shards_;
  size_t capacity_per_shard_;
  size_t cursor_ = 0;
  AdmissionStats stats_;
};

}  // namespace optum::serve

#endif  // OPTUM_SRC_SERVE_ADMISSION_QUEUE_H_
